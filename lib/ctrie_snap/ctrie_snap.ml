(* Snapshotting Ctrie (PPoPP 2012): the baseline Ctrie extended with
   generation tokens, GCAS and an RDCSS-swapped root.

   - Every I-node carries a [gen] token (a unique [unit ref]).
   - GCAS replaces an I-node's main node only if the trie's root
     generation still equals the I-node's generation at commit time:
     the new main box is linked to the old one through its [prev]
     field, published with CAS, and then committed (prev := No_prev)
     or rolled back (prev := Failed, main restored) depending on the
     root generation.  This makes every update invisible to
     generations it does not belong to.
   - [snapshot] swaps the root I-node for a copy with a fresh
     generation using an RDCSS descriptor (double-compare on root and
     root's main, single-swap of root).  Both tries then lazily copy
     ("renew") I-nodes whose generation is stale as they descend.

   Compared to the Scala original we omit the per-CNode generation
   stamp: it accelerates renewal but is not needed for correctness,
   because a stale-generation write is always caught by the GCAS
   commit check against the current root generation. *)

module Hashing = Ct_util.Hashing
module Bits = Ct_util.Bits
module Yp = Ct_util.Yieldpoint
module Metrics = Ct_util.Metrics
module Prefetch = Ct_util.Prefetch

(* Yield points (DESIGN.md "Fault injection & robustness").  GCAS and
   RDCSS are multi-CAS protocols, so every step is a distinct site: a
   domain crashed between publish and commit leaves a descriptor that
   any later reader must complete. *)
let yp_gcas_publish = Yp.register "ctrie_snap.gcas.publish"
let yp_gcas_commit = Yp.register "ctrie_snap.gcas.commit"
let yp_gcas_abort = Yp.register "ctrie_snap.gcas.abort"
let yp_gcas_rollback = Yp.register "ctrie_snap.gcas.rollback"
let yp_rdcss_publish = Yp.register "ctrie_snap.rdcss.publish"
let yp_rdcss_commit = Yp.register "ctrie_snap.rdcss.commit"
let yp_rdcss_abort = Yp.register "ctrie_snap.rdcss.abort"

(* Read-path yield point: the deterministic scheduler must be able to
   park a reader between the writes it races, or read/write
   interleavings collapse to read-at-the-end. *)
let yp_read_walk = Yp.register_read "ctrie_snap.read.walk"

let yp_cas m site slot expected repl =
  Metrics.incr m Metrics.Cas_attempts;
  Yp.here Yp.Before site;
  let ok = Atomic.compare_and_set slot expected repl in
  if ok then Yp.here Yp.After site else Metrics.incr m Metrics.Cas_retries;
  ok

let w = 5
let branching = 1 lsl w

module Make (H : Hashing.HASHABLE) = struct
  type key = H.t

  let name = "ctrie-snap"

  type gen = unit ref

  type 'v leaf = { hash : int; key : key; value : 'v }

  type 'v main =
    | CNode of { bmp : int; arr : 'v branch array }
    | TNode of 'v leaf
    | LNode of { lhash : int; entries : (key * 'v) list }

  and 'v branch = IN of 'v inode | SN of 'v leaf

  and 'v inode = { gen : gen; main : 'v main_box Atomic.t }

  and 'v main_box = { node : 'v main; prev : 'v prev Atomic.t }

  and 'v prev =
    | No_prev  (** committed *)
    | Prev of 'v main_box  (** pending: roll back to this on failure *)
    | Failed of 'v main_box  (** decided: must roll back *)

  type 'v root_state = Root of 'v inode | Desc of 'v rdcss_desc

  and 'v rdcss_desc = {
    ov : 'v inode;
    exp : 'v main_box;
    nv : 'v inode;
    committed : bool Atomic.t;
  }

  (* Staged-batch traversal state (DESIGN.md §13), pooled per domain so
     steady-state [find_batch] allocates nothing. *)
  type 'v scratch = {
    s_h : int array;
    s_lev : int array;
    s_cur : 'v inode array;
    s_par : 'v inode array;  (** parent inode of [s_cur] (root: itself) *)
    s_box : 'v main_box array;  (** main box read in pass A *)
    s_act : int array;  (** active chunk positions, compacted in place *)
    mutable s_nact : int;
    mutable s_hits : int;
  }

  type 'v t = {
    root : 'v root_state Atomic.t;
    metrics : Metrics.t;
    scratch_pool : 'v scratch Atomic.t array;
    scratch_dummy : 'v scratch;
  }

  let boxed node = { node; prev = Atomic.make No_prev }
  let empty_main () = boxed (CNode { bmp = 0; arr = [||] })
  let chunk_cap = 64

  let pool_slots =
    let n = Domain.recommended_domain_count () in
    let rec p2 x = if x >= n then x else p2 (x * 2) in
    p2 1

  let with_pools root metrics =
    let scratch_dummy =
      {
        s_h = [||];
        s_lev = [||];
        s_cur = [||];
        s_par = [||];
        s_box = [||];
        s_act = [||];
        s_nact = 0;
        s_hits = 0;
      }
    in
    {
      root;
      metrics;
      scratch_pool = Array.init pool_slots (fun _ -> Atomic.make scratch_dummy);
      scratch_dummy;
    }

  let create () =
    with_pools
      (Atomic.make (Root { gen = ref (); main = Atomic.make (empty_main ()) }))
      (Metrics.create ~family:name)

  let hash_of k = H.hash k land Hashing.mask

  (* ------------------------- GCAS and RDCSS -------------------------- *)

  (* A reader tripping over another operation's pending GCAS box or
     RDCSS descriptor completes it on its behalf — those entry points
     count as [Helps]; the owner's own commit does not. *)
  let rec gcas_read_box t (i : 'v inode) : 'v main_box =
    let m = Atomic.get i.main in
    match Atomic.get m.prev with
    | No_prev -> m
    | _ ->
        Metrics.incr t.metrics Metrics.Helps;
        gcas_commit t i m

  and gcas_commit t (i : 'v inode) (m : 'v main_box) : 'v main_box =
    match Atomic.get m.prev with
    | No_prev -> m
    | Failed fb ->
        (* Roll the failed update back to the previous main node. *)
        if yp_cas t.metrics yp_gcas_rollback i.main m fb then fb
        else gcas_commit t i (Atomic.get i.main)
    | Prev pb as p ->
        let root = rdcss_read_root t ~abort:true in
        if root.gen == i.gen then begin
          (* Still the same generation: commit. *)
          if yp_cas t.metrics yp_gcas_commit m.prev p No_prev then m
          else gcas_commit t i m
        end
        else begin
          (* A snapshot intervened: mark failed and retry (rolls back). *)
          ignore (yp_cas t.metrics yp_gcas_abort m.prev p (Failed pb));
          gcas_commit t i (Atomic.get i.main)
        end

  and rdcss_read_root t ~abort : 'v inode =
    match Atomic.get t.root with
    | Root r -> r
    | Desc _ ->
        Metrics.incr t.metrics Metrics.Helps;
        rdcss_complete t ~abort;
        rdcss_read_root t ~abort

  and rdcss_complete t ~abort =
    match Atomic.get t.root with
    | Root _ -> ()
    | Desc d as cur ->
        if abort then ignore (yp_cas t.metrics yp_rdcss_abort t.root cur (Root d.ov))
        else begin
          let oldmain = gcas_read_box t d.ov in
          if oldmain == d.exp then begin
            if yp_cas t.metrics yp_rdcss_commit t.root cur (Root d.nv) then
              Atomic.set d.committed true
          end
          else ignore (yp_cas t.metrics yp_rdcss_abort t.root cur (Root d.ov))
        end

  (* Publish [new_main] into [i] expecting [old_box]; true iff the
     update committed under the current generation. *)
  let gcas t (i : 'v inode) (old_box : 'v main_box) (new_main : 'v main) : bool =
    let nb = { node = new_main; prev = Atomic.make (Prev old_box) } in
    if yp_cas t.metrics yp_gcas_publish i.main old_box nb then begin
      ignore (gcas_commit t i nb);
      match Atomic.get nb.prev with No_prev -> true | Prev _ | Failed _ -> false
    end
    else false

  let rdcss_root t (ov : 'v inode) (exp : 'v main_box) (nv : 'v inode) : bool =
    let d = { ov; exp; nv; committed = Atomic.make false } in
    match Atomic.get t.root with
    | Root r as cur when r == ov ->
        if yp_cas t.metrics yp_rdcss_publish t.root cur (Desc d) then begin
          rdcss_complete t ~abort:false;
          Atomic.get d.committed
        end
        else false
    | Root _ -> false
    | Desc _ ->
        rdcss_complete t ~abort:false;
        false

  (* --------------------------- node helpers -------------------------- *)

  let flagpos h lev bmp =
    let idx = (h lsr lev) land (branching - 1) in
    let flag = 1 lsl idx in
    let pos = Bits.popcount (bmp land (flag - 1)) in
    (flag, pos)

  let cnode_inserted bmp arr pos flag branch =
    let n = Array.length arr in
    let narr = Array.make (n + 1) branch in
    Array.blit arr 0 narr 0 pos;
    Array.blit arr pos narr (pos + 1) (n - pos);
    CNode { bmp = bmp lor flag; arr = narr }

  let cnode_updated bmp arr pos branch =
    let narr = Array.copy arr in
    narr.(pos) <- branch;
    CNode { bmp; arr = narr }

  let cnode_removed bmp arr pos flag =
    let n = Array.length arr in
    let narr = Array.make (max 0 (n - 1)) arr.(0) in
    Array.blit arr 0 narr 0 pos;
    Array.blit arr (pos + 1) narr pos (n - 1 - pos);
    CNode { bmp = bmp lxor flag; arr = narr }

  (* Copy an I-node into a new generation (lazy copy-on-write step). *)
  let copy_inode t (i : 'v inode) (gen : gen) : 'v inode =
    { gen; main = Atomic.make (boxed (gcas_read_box t i).node) }

  (* Copy a CNode, regenerating its I-node children. *)
  let renewed t bmp arr (gen : gen) : 'v main =
    let narr =
      Array.map
        (function IN child -> IN (copy_inode t child gen) | SN _ as b -> b)
        arr
    in
    CNode { bmp; arr = narr }

  let rec dual (l1 : 'v leaf) (l2 : 'v leaf) lev (gen : gen) : 'v main =
    if lev >= Hashing.hash_bits then begin
      assert (l1.hash = l2.hash);
      LNode { lhash = l1.hash; entries = [ (l2.key, l2.value); (l1.key, l1.value) ] }
    end
    else begin
      let i1 = (l1.hash lsr lev) land (branching - 1)
      and i2 = (l2.hash lsr lev) land (branching - 1) in
      if i1 <> i2 then begin
        let bmp = (1 lsl i1) lor (1 lsl i2) in
        let arr = if i1 < i2 then [| SN l1; SN l2 |] else [| SN l2; SN l1 |] in
        CNode { bmp; arr }
      end
      else
        CNode
          {
            bmp = 1 lsl i1;
            arr = [| IN { gen; main = Atomic.make (boxed (dual l1 l2 (lev + w) gen)) } |];
          }
    end

  (* Compaction. *)

  let resurrect t (branch : 'v branch) : 'v branch =
    match branch with
    | IN i -> (
        match (gcas_read_box t i).node with TNode leaf -> SN leaf | _ -> branch)
    | SN _ -> branch

  let to_contracted (main : 'v main) lev : 'v main =
    match main with
    | CNode { arr = [| SN leaf |]; _ } when lev > 0 -> TNode leaf
    | CNode _ | TNode _ | LNode _ -> main

  let clean t (i : 'v inode) lev =
    let mb = gcas_read_box t i in
    match mb.node with
    | CNode { bmp; arr } ->
        let narr = Array.map (resurrect t) arr in
        if gcas t i mb (to_contracted (CNode { bmp; arr = narr }) lev) then
          Metrics.incr t.metrics Metrics.Helps
    | TNode _ | LNode _ -> ()

  let rec clean_parent t (p : 'v inode) (i : 'v inode) h plev (startgen : gen) =
    let mb = gcas_read_box t p in
    match mb.node with
    | CNode { bmp; arr } -> (
        let flag, pos = flagpos h plev bmp in
        if bmp land flag <> 0 then
          match arr.(pos) with
          | IN child when child == i -> (
              match (gcas_read_box t i).node with
              | TNode leaf ->
                  if p.gen == startgen then begin
                    let ncn = cnode_updated bmp arr pos (SN leaf) in
                    if gcas t p mb (to_contracted ncn plev) then
                      Metrics.incr t.metrics Metrics.Compressions
                    else
                      (* Retry only while the root generation still
                         matches [startgen].  Once a snapshot commits,
                         this GCAS can never succeed — [gcas_commit]
                         fails any update whose I-node generation
                         differs from the root's — so an unconditional
                         retry livelocks.  The entombed node is
                         collapsed anyway by whichever operation next
                         renews this path. *)
                      if (rdcss_read_root t ~abort:false).gen == startgen
                      then clean_parent t p i h plev startgen
                  end
              | CNode _ | LNode _ -> ())
          | IN _ | SN _ -> ())
    | TNode _ | LNode _ -> ()

  (* ------------------------------ lookup ----------------------------- *)

  type 'v outcome = Done of 'v option | Restart

  (* Association-list lookup with the structure's own key equality (the
     [List.assoc_opt] it replaces used polymorphic [=]). *)
  let rec lassoc k = function
    | [] -> raise_notrace Not_found
    | (k', v) :: rest -> if H.equal k' k then v else lassoc k rest

  let rec lassoc_opt k = function
    | [] -> None
    | (k', v) :: rest -> if H.equal k' k then Some v else lassoc_opt k rest

  let rec lremove_assoc k = function
    | [] -> []
    | ((k', _) as pair) :: rest ->
        if H.equal k' k then rest else pair :: lremove_assoc k rest

  exception Restart_find

  (* Allocation-free read (on the no-renewal path): a miss raises
     (notrace) instead of boxing an option, the bitmap position is
     computed inline instead of through [flagpos]'s tuple, and the
     parent travels as a bare inode — the root is its own parent, which
     is sound because [to_contracted] never entombs at level 0, so the
     TNode branch implies [lev > 0]. *)
  let rec ifind t (i : 'v inode) k h lev (parent : 'v inode) (startgen : gen) : 'v =
    Yp.here Yp.Before yp_read_walk;
    let mb = gcas_read_box t i in
    match mb.node with
    | CNode { bmp; arr } -> (
        let idx = (h lsr lev) land (branching - 1) in
        let flag = 1 lsl idx in
        if bmp land flag = 0 then raise_notrace Not_found
        else
          match arr.(Bits.popcount (bmp land (flag - 1))) with
          | IN child ->
              if child.gen == startgen then ifind t child k h (lev + w) i startgen
              else if gcas t i mb (renewed t bmp arr startgen) then
                ifind t i k h lev parent startgen
              else raise_notrace Restart_find
          | SN leaf ->
              if H.equal leaf.key k then leaf.value else raise_notrace Not_found)
    | TNode _ ->
        if lev > 0 then clean t parent (lev - w);
        raise_notrace Restart_find
    | LNode ln ->
        if ln.lhash = h then lassoc k ln.entries else raise_notrace Not_found

  let rec find_loop t k h =
    let r = rdcss_read_root t ~abort:false in
    match ifind t r k h 0 r r.gen with
    | v -> v
    | exception Restart_find -> find_loop t k h

  let find t k = find_loop t k (hash_of k)
  let lookup t k = match find t k with v -> Some v | exception Not_found -> None
  let mem t k = match find t k with _ -> true | exception Not_found -> false

  (* ------------------------------ updates ---------------------------- *)

  type 'v mode = Always | If_absent | If_present | If_value of 'v

  let rec iinsert t (i : 'v inode) k v h lev (parent : 'v inode option) mode
      (startgen : gen) : 'v outcome =
    let mb = gcas_read_box t i in
    match mb.node with
    | CNode { bmp; arr } -> (
        let flag, pos = flagpos h lev bmp in
        if bmp land flag = 0 then begin
          match mode with
          | If_present | If_value _ -> Done None
          | Always | If_absent ->
              let ncn =
                cnode_inserted bmp arr pos flag (SN { hash = h; key = k; value = v })
              in
              if gcas t i mb ncn then Done None else Restart
        end
        else
          match arr.(pos) with
          | IN child ->
              if child.gen == startgen then
                iinsert t child k v h (lev + w) (Some i) mode startgen
              else if gcas t i mb (renewed t bmp arr startgen) then
                iinsert t i k v h lev parent mode startgen
              else Restart
          | SN leaf ->
              if H.equal leaf.key k then begin
                match mode with
                | If_absent -> Done (Some leaf.value)
                | If_value expected when leaf.value != expected ->
                    Done (Some leaf.value)
                | Always | If_present | If_value _ ->
                    let ncn =
                      cnode_updated bmp arr pos (SN { hash = h; key = k; value = v })
                    in
                    if gcas t i mb ncn then Done (Some leaf.value) else Restart
              end
              else if
                match mode with
                | If_present | If_value _ -> true
                | Always | If_absent -> false
              then Done None
              else begin
                let child =
                  IN
                    {
                      gen = startgen;
                      main =
                        Atomic.make
                          (boxed
                             (dual leaf
                                { hash = h; key = k; value = v }
                                (lev + w) startgen));
                    }
                in
                let ncn = cnode_updated bmp arr pos child in
                if gcas t i mb ncn then Done None else Restart
              end)
    | TNode _ ->
        (match parent with Some p -> clean t p (lev - w) | None -> ());
        Restart
    | LNode ln ->
        assert (ln.lhash = h);
        let previous = lassoc_opt k ln.entries in
        let proceed =
          match (mode, previous) with
          | If_absent, Some _ -> false
          | (If_present | If_value _), None -> false
          | If_value expected, Some p -> p == expected
          | (Always | If_absent | If_present), _ -> true
        in
        if not proceed then Done previous
        else begin
          let nln =
            LNode { ln with entries = (k, v) :: lremove_assoc k ln.entries }
          in
          if gcas t i mb nln then Done previous else Restart
        end

  let rec update t k v mode =
    let h = hash_of k in
    let r = rdcss_read_root t ~abort:false in
    match iinsert t r k v h 0 None mode r.gen with
    | Done prev -> prev
    | Restart -> update t k v mode

  let insert t k v = ignore (update t k v Always)
  let add t k v = update t k v Always
  let put_if_absent t k v = update t k v If_absent
  let replace t k v = update t k v If_present

  let replace_if t k ~expected v =
    match update t k v (If_value expected) with
    | Some p -> p == expected
    | None -> false

  (* ------------------------------ remove ----------------------------- *)

  let rmode_allows rmode v =
    match rmode with `Always -> true | `If_value expected -> v == expected

  let rec iremove t (i : 'v inode) k h lev (parent : 'v inode option) rmode
      (startgen : gen) : 'v outcome =
    let mb = gcas_read_box t i in
    match mb.node with
    | CNode { bmp; arr } -> (
        let flag, pos = flagpos h lev bmp in
        if bmp land flag = 0 then Done None
        else
          let res =
            match arr.(pos) with
            | IN child -> (
                if child.gen == startgen then begin
                  match iremove t child k h (lev + w) (Some i) rmode startgen with
                  | Done (Some _) as r ->
                      (match (gcas_read_box t child).node with
                      | TNode _ -> clean_parent t i child h lev startgen
                      | CNode _ | LNode _ -> ());
                      r
                  | r -> r
                end
                else if gcas t i mb (renewed t bmp arr startgen) then
                  iremove t i k h lev parent rmode startgen
                else Restart)
            | SN leaf ->
                if not (H.equal leaf.key k) then Done None
                else if not (rmode_allows rmode leaf.value) then
                  Done (Some leaf.value)
                else begin
                  let ncn = cnode_removed bmp arr pos flag in
                  let nmain = to_contracted ncn lev in
                  if gcas t i mb nmain then begin
                    (match nmain with
                    | TNode _ -> Metrics.incr t.metrics Metrics.Entombments
                    | CNode _ | LNode _ -> ());
                    Done (Some leaf.value)
                  end
                  else Restart
                end
          in
          res)
    | TNode _ ->
        (match parent with Some p -> clean t p (lev - w) | None -> ());
        Restart
    | LNode ln ->
        if ln.lhash <> h then Done None
        else begin
          match lassoc_opt k ln.entries with
          | None -> Done None
          | Some prev when not (rmode_allows rmode prev) -> Done (Some prev)
          | Some prev ->
              let entries = lremove_assoc k ln.entries in
              let nmain =
                match entries with
                | [ (k1, v1) ] -> TNode { hash = h; key = k1; value = v1 }
                | _ -> LNode { ln with entries }
              in
              if gcas t i mb nmain then begin
                (match nmain with
                | TNode _ -> Metrics.incr t.metrics Metrics.Entombments
                | CNode _ | LNode _ -> ());
                Done (Some prev)
              end
              else Restart
        end

  let rec remove_with t k rmode =
    let h = hash_of k in
    let r = rdcss_read_root t ~abort:false in
    match iremove t r k h 0 None rmode r.gen with
    | Done prev -> prev
    | Restart -> remove_with t k rmode

  let remove t k = remove_with t k `Always

  let remove_if t k ~expected =
    match remove_with t k (`If_value expected) with
    | Some p -> p == expected
    | None -> false

  (* --------------------------- batch operations ---------------------- *)

  (* Staged traversal (DESIGN.md §13).  The lockstep walk stages only
     the fast path — committed main boxes, same-generation children,
     live CNodes/LNodes — and defers anything complicated (a pending
     GCAS box, a stale-generation child needing renewal, an entombed
     branch) to the scalar [find_loop], which already carries the full
     helping machinery.  Under quiescent or read-mostly traffic every
     key stays on the staged path. *)

  let scratch_make t =
    let r = rdcss_read_root t ~abort:false in
    {
      s_h = Array.make chunk_cap 0;
      s_lev = Array.make chunk_cap 0;
      s_cur = Array.make chunk_cap r;
      s_par = Array.make chunk_cap r;
      s_box = Array.make chunk_cap (Atomic.get r.main);
      s_act = Array.make chunk_cap 0;
      s_nact = 0;
      s_hits = 0;
    }

  (* Per-domain scratch pool: [exchange] with the shared dummy instead
     of an option so take/release allocate nothing. *)
  let scratch_take t =
    let slot = (Domain.self () :> int) land (Array.length t.scratch_pool - 1) in
    let s = Atomic.exchange t.scratch_pool.(slot) t.scratch_dummy in
    if Array.length s.s_h = chunk_cap then s else scratch_make t

  let scratch_release t s =
    let slot = (Domain.self () :> int) land (Array.length t.scratch_pool - 1) in
    Atomic.set t.scratch_pool.(slot) s

  let find_chunk t scr keys ~miss (out : 'v array) base n =
    let r = rdcss_read_root t ~abort:false in
    let startgen = r.gen in
    for p = 0 to n - 1 do
      scr.s_h.(p) <- hash_of (Array.unsafe_get keys (base + p));
      scr.s_lev.(p) <- 0;
      scr.s_cur.(p) <- r;
      scr.s_act.(p) <- p
    done;
    scr.s_nact <- n;
    while scr.s_nact > 0 do
      (* Pass A: pull in every active key's main box. *)
      for a = 0 to scr.s_nact - 1 do
        let p = Array.unsafe_get scr.s_act a in
        Yp.here Yp.Before yp_read_walk;
        let mb = Atomic.get scr.s_cur.(p).main in
        scr.s_box.(p) <- mb;
        Prefetch.read mb
      done;
      (* Pass B: dispatch; fast-path survivors re-enqueue, everything
         else resolves here or drops to the scalar walk. *)
      let nact = scr.s_nact in
      scr.s_nact <- 0;
      for a = 0 to nact - 1 do
        let p = Array.unsafe_get scr.s_act a in
        let h = scr.s_h.(p) in
        let k = Array.unsafe_get keys (base + p) in
        let mb = scr.s_box.(p) in
        let deferred =
          match Atomic.get mb.prev with
          | No_prev -> (
              match mb.node with
              | CNode { bmp; arr } -> (
                  let lev = scr.s_lev.(p) in
                  let idx = (h lsr lev) land (branching - 1) in
                  let flag = 1 lsl idx in
                  if bmp land flag = 0 then begin
                    Array.unsafe_set out (base + p) miss;
                    false
                  end
                  else
                    match arr.(Bits.popcount (bmp land (flag - 1))) with
                    | IN child ->
                        if child.gen == startgen then begin
                          Prefetch.read child;
                          scr.s_cur.(p) <- child;
                          scr.s_lev.(p) <- lev + w;
                          scr.s_act.(scr.s_nact) <- p;
                          scr.s_nact <- scr.s_nact + 1;
                          false
                        end
                        else true (* stale generation: renew via scalar *)
                    | SN leaf ->
                        (if H.equal leaf.key k then begin
                           Array.unsafe_set out (base + p) leaf.value;
                           scr.s_hits <- scr.s_hits + 1
                         end
                         else Array.unsafe_set out (base + p) miss);
                        false)
              | TNode _ -> true (* entombed: scalar path cleans *)
              | LNode ln ->
                  (if ln.lhash <> h then Array.unsafe_set out (base + p) miss
                   else
                     match lassoc k ln.entries with
                     | v ->
                         Array.unsafe_set out (base + p) v;
                         scr.s_hits <- scr.s_hits + 1
                     | exception Not_found ->
                         Array.unsafe_set out (base + p) miss);
                  false)
          | Prev _ | Failed _ -> true (* pending GCAS: scalar path helps *)
        in
        if deferred then
          match find_loop t k h with
          | v ->
              Array.unsafe_set out (base + p) v;
              scr.s_hits <- scr.s_hits + 1
          | exception Not_found -> Array.unsafe_set out (base + p) miss
      done
    done

  let rec find_chunks t scr keys ~miss out base total =
    if base < total then begin
      let n = min chunk_cap (total - base) in
      find_chunk t scr keys ~miss out base n;
      find_chunks t scr keys ~miss out (base + n) total
    end

  let find_batch t keys ~miss out =
    let total = Array.length keys in
    if Array.length out < total then
      invalid_arg "Ctrie_snap.find_batch: out array shorter than keys";
    let scr = scratch_take t in
    scr.s_hits <- 0;
    find_chunks t scr keys ~miss out 0 total;
    let hits = scr.s_hits in
    scratch_release t scr;
    hits

  (* Warm-up descent for batched writers: walk each key down while the
     path is committed, same-generation CNode→IN links, then finish
     with the scalar GCAS machinery from the recorded inode.  Starting
     mid-path is sound: a recorded inode that was detached (by renewal
     or compaction) either holds a terminal TNode — on which [iinsert]
     and [iremove] restart — or was replaced because the root
     generation changed, in which case the GCAS commit check fails the
     update and we restart from the root. *)
  let locate_chunk t scr keys base n =
    let r = rdcss_read_root t ~abort:false in
    let startgen = r.gen in
    for p = 0 to n - 1 do
      scr.s_h.(p) <- hash_of (Array.unsafe_get keys (base + p));
      scr.s_lev.(p) <- 0;
      scr.s_cur.(p) <- r;
      scr.s_par.(p) <- r;
      scr.s_act.(p) <- p
    done;
    scr.s_nact <- n;
    while scr.s_nact > 0 do
      for a = 0 to scr.s_nact - 1 do
        let p = Array.unsafe_get scr.s_act a in
        let mb = Atomic.get scr.s_cur.(p).main in
        scr.s_box.(p) <- mb;
        Prefetch.read mb
      done;
      let nact = scr.s_nact in
      scr.s_nact <- 0;
      for a = 0 to nact - 1 do
        let p = Array.unsafe_get scr.s_act a in
        let mb = scr.s_box.(p) in
        match Atomic.get mb.prev with
        | No_prev -> (
            match mb.node with
            | CNode { bmp; arr } -> (
                let lev = scr.s_lev.(p) in
                let h = scr.s_h.(p) in
                let idx = (h lsr lev) land (branching - 1) in
                let flag = 1 lsl idx in
                if bmp land flag <> 0 then
                  match arr.(Bits.popcount (bmp land (flag - 1))) with
                  | IN child when child.gen == startgen ->
                      Prefetch.read child;
                      scr.s_par.(p) <- scr.s_cur.(p);
                      scr.s_cur.(p) <- child;
                      scr.s_lev.(p) <- lev + w;
                      scr.s_act.(scr.s_nact) <- p;
                      scr.s_nact <- scr.s_nact + 1
                  | IN _ | SN _ -> ())
            | TNode _ | LNode _ -> ())
        | Prev _ | Failed _ -> ()
      done
    done;
    r

  let rec insert_chunks t scr keys vals base total =
    if base < total then begin
      let n = min chunk_cap (total - base) in
      let r = locate_chunk t scr keys base n in
      for p = 0 to n - 1 do
        let k = Array.unsafe_get keys (base + p) in
        let v = Array.unsafe_get vals (base + p) in
        let h = scr.s_h.(p) in
        let lev = scr.s_lev.(p) in
        let parent = if lev = 0 then None else Some scr.s_par.(p) in
        match iinsert t scr.s_cur.(p) k v h lev parent Always r.gen with
        | Done _ -> ()
        | Restart -> ignore (update t k v Always)
      done;
      insert_chunks t scr keys vals (base + n) total
    end

  let insert_batch t keys vals =
    if Array.length keys <> Array.length vals then
      invalid_arg "Ctrie_snap.insert_batch: keys and vals differ in length";
    let scr = scratch_take t in
    insert_chunks t scr keys vals 0 (Array.length keys);
    scratch_release t scr

  let rec remove_chunks t scr keys base total =
    if base < total then begin
      let n = min chunk_cap (total - base) in
      let r = locate_chunk t scr keys base n in
      for p = 0 to n - 1 do
        let k = Array.unsafe_get keys (base + p) in
        let h = scr.s_h.(p) in
        let lev = scr.s_lev.(p) in
        let parent = if lev = 0 then None else Some scr.s_par.(p) in
        match
          match iremove t scr.s_cur.(p) k h lev parent `Always r.gen with
          | Done prev -> prev
          | Restart -> remove_with t k `Always
        with
        | Some _ -> scr.s_hits <- scr.s_hits + 1
        | None -> ()
      done;
      remove_chunks t scr keys (base + n) total
    end

  let remove_batch t keys =
    let scr = scratch_take t in
    scr.s_hits <- 0;
    remove_chunks t scr keys 0 (Array.length keys);
    let removed = scr.s_hits in
    scratch_release t scr;
    removed

  (* ------------------------------ snapshot --------------------------- *)

  let rec snapshot t =
    let r = rdcss_read_root t ~abort:false in
    let mb = gcas_read_box t r in
    (* Swap our root to a fresh generation; hand the old structure to
       the snapshot under another fresh generation. *)
    if rdcss_root t r mb { gen = ref (); main = Atomic.make (boxed mb.node) } then
      with_pools
        (Atomic.make (Root { gen = ref (); main = Atomic.make (boxed mb.node) }))
        (Metrics.create ~family:name)
    else snapshot t

  (* ------------------------- aggregate queries ----------------------- *)

  let fold f acc t =
    let rec go_main acc (main : 'v main) =
      match main with
      | CNode { arr; _ } -> Array.fold_left go_branch acc arr
      | TNode leaf -> f acc leaf.key leaf.value
      | LNode ln -> List.fold_left (fun acc (k, v) -> f acc k v) acc ln.entries
    and go_branch acc = function
      | IN i -> go_main acc (gcas_read_box t i).node
      | SN leaf -> f acc leaf.key leaf.value
    in
    let r = rdcss_read_root t ~abort:false in
    go_main acc (gcas_read_box t r).node

  let fold_snapshot f acc t = fold f acc (snapshot t)
  let iter f t = fold (fun () k v -> f k v) () t
  let size t = fold (fun n _ _ -> n + 1) 0 t
  let is_empty t = size t = 0
  let to_list t = fold (fun acc k v -> (k, v) :: acc) [] t

  (* Word-cost model: as the plain Ctrie plus one gen word per I-node
     and a 2-word prev box per main node. *)
  let footprint_words t =
    let rec go_main (main : 'v main) =
      match main with
      | CNode { arr; _ } ->
          Array.fold_left
            (fun acc b -> acc + 2 + go_branch b)
            (3 + 1 + Array.length arr)
            arr
      | TNode _ -> 2 + 4
      | LNode ln -> 3 + (3 * List.length ln.entries)
    and go_branch = function
      | IN i -> 3 + 4 + go_main (gcas_read_box t i).node
      | SN _ -> 4
    in
    let r = rdcss_read_root t ~abort:false in
    2 + 3 + 4 + go_main (gcas_read_box t r).node

  (* Scrub: active residue sweep (DESIGN.md §9).  Completes a pending
     RDCSS root swap, commits or rolls back every reachable GCAS box,
     and compacts entombed branches — the exact helping steps the read
     and update paths perform on encounter, so scrubbing is safe under
     live traffic.  Returns the number of repairs: 0 means the trie
     was already residue-free. *)
  let scrub t =
    let repairs = ref 0 in
    (match Atomic.get t.root with
    | Desc _ ->
        rdcss_complete t ~abort:false;
        incr repairs
    | Root _ -> ());
    let pass () =
      let fixed = ref 0 in
      let r = rdcss_read_root t ~abort:false in
      let startgen = r.gen in
      let rec go (i : 'v inode) lev prefix (parent : 'v inode option) =
        let m = Atomic.get i.main in
        let mb =
          match Atomic.get m.prev with
          | No_prev -> m
          | Prev _ | Failed _ ->
              (* Pending or failed update abandoned mid-GCAS: decide it. *)
              incr fixed;
              gcas_commit t i m
        in
        match mb.node with
        | TNode _ -> (
            match parent with
            | Some p ->
                (* [prefix] replays the hash bits of the path down to [i],
                   which is all [clean_parent] reads of the hash. *)
                clean_parent t p i prefix (lev - w) startgen;
                incr fixed
            | None -> ())
        | LNode _ -> ()
        | CNode { bmp; arr } ->
            let pos = ref 0 in
            for idx = 0 to branching - 1 do
              if bmp land (1 lsl idx) <> 0 then begin
                (match arr.(!pos) with
                | SN _ -> ()
                | IN child ->
                    go child (lev + w) (prefix lor (idx lsl lev)) (Some i));
                incr pos
              end
            done
      in
      go r 0 0 None;
      !fixed
    in
    (* Cleaning cascades exactly as in the plain Ctrie: contracting a
       single-leaf CNode entombs its I-node one level up behind the
       walk's back, so sweep to fixpoint (depth-bounded at
       quiescence). *)
    let max_passes = (Hashing.hash_bits / w) + 2 in
    let passes = ref 0 in
    let continue = ref true in
    while !continue && !passes < max_passes do
      incr passes;
      let n = pass () in
      repairs := !repairs + n;
      continue := n > 0
    done;
    Metrics.add t.metrics Metrics.Scrub_repairs !repairs;
    !repairs

  let metrics t = t.metrics
  let stats t = Metrics.snapshot t.metrics
  let reset_stats t = Metrics.reset t.metrics

  (* Structural invariants, checked during quiescence.  Read-only: a
     pending GCAS box or RDCSS descriptor is reported as an error, not
     helped to completion, so the chaos tests can observe the residue a
     crashed domain leaves behind and then show that any ordinary
     operation clears it. *)
  let validate t =
    let errors = ref [] in
    let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
    let check_leaf what (leaf : 'v leaf) lev prefix pmask =
      if leaf.hash <> hash_of leaf.key then
        err "%s: stored hash %#x differs from key hash %#x" what leaf.hash
          (hash_of leaf.key);
      if leaf.hash land pmask <> prefix then
        err "%s at level %d violates the prefix invariant" what lev
    in
    let rec go_inode (i : 'v inode) lev prefix pmask =
      let mb = Atomic.get i.main in
      (match Atomic.get mb.prev with
      | No_prev -> ()
      | Prev _ -> err "uncommitted GCAS box at level %d during quiescence" lev
      | Failed _ -> err "failed GCAS box not rolled back at level %d" lev);
      go_main mb.node lev prefix pmask
    and go_main (main : 'v main) lev prefix pmask =
      match main with
      | TNode _ -> err "reachable TNode at level %d during quiescence" lev
      | LNode ln ->
          if List.length ln.entries < 2 then err "LNode with fewer than 2 entries";
          List.iter
            (fun (k, _) ->
              if hash_of k <> ln.lhash then err "LNode entry hash mismatch")
            ln.entries;
          if ln.lhash land pmask <> prefix then
            err "LNode at level %d violates the prefix invariant" lev
      | CNode { bmp; arr } ->
          if bmp < 0 || bmp >= 1 lsl branching then err "bitmap out of range";
          if Bits.popcount bmp <> Array.length arr then
            err "bitmap cardinality %d does not match array length %d"
              (Bits.popcount bmp) (Array.length arr);
          let pos = ref 0 in
          for idx = 0 to branching - 1 do
            if bmp land (1 lsl idx) <> 0 then begin
              let child = arr.(!pos) in
              incr pos;
              let prefix' = prefix lor (idx lsl lev) in
              let pmask' = pmask lor ((branching - 1) lsl lev) in
              match child with
              | SN leaf -> check_leaf "SNode" leaf (lev + w) prefix' pmask'
              | IN i -> go_inode i (lev + w) prefix' pmask'
            end
          done
    in
    (match Atomic.get t.root with
    | Desc _ -> err "pending RDCSS descriptor at the root during quiescence"
    | Root r -> go_inode r 0 0 0);
    match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))
end
