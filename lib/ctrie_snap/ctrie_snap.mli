(** Ctrie with constant-time lazy snapshots (Prokopec, Bronson,
    Bagwell & Odersky, {e Concurrent Tries with Efficient Non-blocking
    Snapshots}, PPoPP 2012).

    This is the full snapshotting variant of the Ctrie baseline: every
    I-node carries a generation token, all main-node replacements go
    through GCAS (generation-compare-and-swap, a restartable
    double-compare-single-swap keyed on the root generation), and
    {!Make.snapshot} atomically swaps the root to a fresh generation
    with an RDCSS descriptor.  Both the original and the snapshot then
    lazily copy I-nodes on first access per generation — so a snapshot
    is O(1) and subsequent operations pay amortized copy-on-write.

    The cache-trie paper's conclusion names an efficient linearizable
    snapshot as the deciding feature tries hold over hash tables; this
    module reproduces that capability for the baseline, and its cost
    is measured by the [snapshot] benchmark.

    All operations are lock-free and linearizable; [snapshot] is
    linearizable with respect to every other operation. *)

module Make (H : Ct_util.Hashing.HASHABLE) : sig
  include Ct_util.Map_intf.CONCURRENT_MAP with type key = H.t

  val snapshot : 'v t -> 'v t
  (** [snapshot t] returns, in O(1), a map holding exactly the
      bindings of [t] at the linearization point.  The result and [t]
      evolve independently afterwards. *)

  val fold_snapshot : ('a -> key -> 'v -> 'a) -> 'a -> 'v t -> 'a
  (** [fold_snapshot f acc t] folds over a linearizable snapshot of
      [t] (unlike {!fold}, which is weakly consistent). *)

  (** [validate] (from {!Ct_util.Map_intf.CONCURRENT_MAP}) checks, for
      a quiescent trie: bitmap/array agreement, hash-prefix
      consistency, LNode sanity, no reachable TNode, every GCAS box
      committed and no pending RDCSS root descriptor.  Read-only —
      residue left by a crashed domain is reported, not repaired —
      which is what the chaos/crash-recovery tests rely on.  [scrub]
      performs the repairs: it completes any pending RDCSS root
      descriptor, commits every reachable GCAS box, and compacts
      entombed branches. *)
end
