(* Ctrie (Prokopec et al., PPoPP 2012) without snapshots: INodes are
   CAS-able boxes holding main nodes; CNodes branch on 5 hash bits with
   a 32-bit bitmap; removal entombs single leaves into TNodes which are
   compacted by clean/cleanParent.  This is the baseline data structure
   the cache-trie paper compares against (its I-node indirection is
   exactly the overhead cache-tries remove). *)

module Hashing = Ct_util.Hashing
module Bits = Ct_util.Bits
module Yp = Ct_util.Yieldpoint
module Metrics = Ct_util.Metrics
module Prefetch = Ct_util.Prefetch

(* Yield points (DESIGN.md "Fault injection & robustness"). *)
let yp_insert_cas = Yp.register "ctrie.insert.cas"
let yp_remove_cas = Yp.register "ctrie.remove.cas"
let yp_clean_cas = Yp.register "ctrie.clean.cas"
let yp_cleanparent_cas = Yp.register "ctrie.cleanparent.cas"

(* Read-path yield point at every INode the lookup walks through, so
   the deterministic scheduler (lib/mc) can park a read between two
   writers' CASes.  Read sites commute with each other under
   exploration. *)
let yp_read_walk = Yp.register_read "ctrie.read.walk"

let yp_cas m site slot expected repl =
  Metrics.incr m Metrics.Cas_attempts;
  Yp.here Yp.Before site;
  let ok = Atomic.compare_and_set slot expected repl in
  if ok then Yp.here Yp.After site else Metrics.incr m Metrics.Cas_retries;
  ok

let w = 5 (* bits per level *)
let branching = 1 lsl w

module Make (H : Hashing.HASHABLE) = struct
  type key = H.t

  let name = "ctrie"

  type 'v leaf = { hash : int; key : key; value : 'v }

  type 'v main =
    | CNode of { bmp : int; arr : 'v branch array }
    | TNode of 'v leaf  (** entombed leaf awaiting compaction *)
    | LNode of { lhash : int; entries : (key * 'v) list }

  and 'v branch = IN of 'v inode | SN of 'v leaf
  and 'v inode = 'v main Atomic.t

  (* Staged-batch traversal state (DESIGN.md §13), pooled per domain so
     steady-state [find_batch] allocates nothing. *)
  type 'v scratch = {
    s_h : int array;
    s_lev : int array;
    s_cur : 'v inode array;
    s_par : 'v inode array;  (** parent inode of [s_cur] (root: itself) *)
    s_main : 'v main array;  (** main node read in pass A *)
    s_act : int array;  (** active chunk positions, compacted in place *)
    mutable s_nact : int;
    mutable s_hits : int;
  }

  type 'v t = {
    root : 'v inode;
    metrics : Metrics.t;
    scratch_pool : 'v scratch Atomic.t array;
    scratch_dummy : 'v scratch;
  }

  let empty_cnode = CNode { bmp = 0; arr = [||] }
  let chunk_cap = 64

  let pool_slots =
    let n = Domain.recommended_domain_count () in
    let rec p2 x = if x >= n then x else p2 (x * 2) in
    p2 1

  let create () =
    let scratch_dummy =
      {
        s_h = [||];
        s_lev = [||];
        s_cur = [||];
        s_par = [||];
        s_main = [||];
        s_act = [||];
        s_nact = 0;
        s_hits = 0;
      }
    in
    {
      root = Atomic.make empty_cnode;
      metrics = Metrics.create ~family:name;
      scratch_pool = Array.init pool_slots (fun _ -> Atomic.make scratch_dummy);
      scratch_dummy;
    }
  let hash_of k = H.hash k land Hashing.mask

  (* Position of hash [h] within a CNode at level [lev]: [flag] is the
     bitmap bit, [pos] the compressed array index. *)
  let flagpos h lev bmp =
    let idx = (h lsr lev) land (branching - 1) in
    let flag = 1 lsl idx in
    let pos = Bits.popcount (bmp land (flag - 1)) in
    (flag, pos)

  let cnode_inserted bmp arr pos flag branch =
    let n = Array.length arr in
    let narr = Array.make (n + 1) branch in
    Array.blit arr 0 narr 0 pos;
    Array.blit arr pos narr (pos + 1) (n - pos);
    CNode { bmp = bmp lor flag; arr = narr }

  let cnode_updated bmp arr pos branch =
    let narr = Array.copy arr in
    narr.(pos) <- branch;
    CNode { bmp; arr = narr }

  let cnode_removed bmp arr pos flag =
    let n = Array.length arr in
    let narr = Array.make (max 0 (n - 1)) arr.(0) in
    Array.blit arr 0 narr 0 pos;
    Array.blit arr (pos + 1) narr pos (n - 1 - pos);
    CNode { bmp = bmp lxor flag; arr = narr }

  (* Build the subtree joining two leaves below level [lev] (the 2012
     paper's CNode.dual).  Equal hashes sink to a bottom-level LNode
     through a chain of single-child CNodes, so an LNode always means
     "all keys share the full 32-bit hash". *)
  let rec dual (l1 : 'v leaf) (l2 : 'v leaf) lev : 'v main =
    if lev >= Hashing.hash_bits then begin
      assert (l1.hash = l2.hash);
      LNode { lhash = l1.hash; entries = [ (l2.key, l2.value); (l1.key, l1.value) ] }
    end
    else begin
      let i1 = (l1.hash lsr lev) land (branching - 1)
      and i2 = (l2.hash lsr lev) land (branching - 1) in
      if i1 <> i2 then begin
        let bmp = (1 lsl i1) lor (1 lsl i2) in
        let arr =
          if i1 < i2 then [| SN l1; SN l2 |] else [| SN l2; SN l1 |]
        in
        CNode { bmp; arr }
      end
      else CNode { bmp = 1 lsl i1; arr = [| IN (Atomic.make (dual l1 l2 (lev + w))) |] }
    end

  (* Compaction helpers (paper Figure 6). *)

  let resurrect (branch : 'v branch) : 'v branch =
    match branch with
    | IN i -> ( match Atomic.get i with TNode leaf -> SN leaf | _ -> branch)
    | SN _ -> branch

  let to_contracted (main : 'v main) lev : 'v main =
    match main with
    | CNode { arr = [| SN leaf |]; _ } when lev > 0 -> TNode leaf
    | CNode _ | TNode _ | LNode _ -> main

  let to_compressed (bmp : int) arr lev : 'v main =
    let narr = Array.map resurrect arr in
    to_contracted (CNode { bmp; arr = narr }) lev

  (* Both cleaning entry points are helping steps: the thread tripping
     over the tomb completes compaction on behalf of whoever entombed
     it, so successful cleans count as [Helps]. *)
  let clean m (i : 'v inode) lev =
    match Atomic.get i with
    | CNode { bmp; arr } as main ->
        if yp_cas m yp_clean_cas i main (to_compressed bmp arr lev) then
          Metrics.incr m Metrics.Helps
    | TNode _ | LNode _ -> ()

  let rec clean_parent m (p : 'v inode) (i : 'v inode) h plev =
    match Atomic.get p with
    | CNode { bmp; arr } as main -> (
        let flag, pos = flagpos h plev bmp in
        if bmp land flag <> 0 then
          match arr.(pos) with
          | IN child when child == i -> (
              match Atomic.get i with
              | TNode leaf ->
                  let ncn = cnode_updated bmp arr pos (SN leaf) in
                  if yp_cas m yp_cleanparent_cas p main (to_contracted ncn plev)
                  then Metrics.incr m Metrics.Compressions
                  else clean_parent m p i h plev
              | CNode _ | LNode _ -> ())
          | IN _ | SN _ -> ())
    | TNode _ | LNode _ -> ()

  (* ------------------------------ lookup ---------------------------- *)

  type 'v outcome = Done of 'v option | Restart

  (* Association-list operations with the structure's own key equality
     (the [List.assoc_opt]/[List.remove_assoc] they replace used
     polymorphic [=]; with an [H.equal] coarser than [(=)] the LNode
     update paths accumulated duplicate entries — same bug family the
     lib/mc hostile-equality scenarios flushed out of the cachetrie). *)
  let rec lassoc k = function
    | [] -> raise_notrace Not_found
    | (k', v) :: rest -> if H.equal k' k then v else lassoc k rest

  let lassoc_opt k entries =
    match lassoc k entries with v -> Some v | exception Not_found -> None

  let rec lremove_assoc k = function
    | [] -> []
    | ((k', _) as pair) :: rest ->
        if H.equal k' k then rest else pair :: lremove_assoc k rest

  exception Restart_find

  (* Allocation-free read: a miss raises (notrace) instead of boxing an
     option, the bitmap position is computed inline instead of through
     [flagpos]'s tuple, and the parent travels as a bare inode — the
     root is its own parent, which is sound because [to_contracted]
     never entombs at level 0, so the TNode branch implies [lev > 0]. *)
  let rec ifind m (i : 'v inode) k h lev (parent : 'v inode) : 'v =
    Yp.here Yp.Before yp_read_walk;
    match Atomic.get i with
    | CNode { bmp; arr } -> (
        let idx = (h lsr lev) land (branching - 1) in
        let flag = 1 lsl idx in
        if bmp land flag = 0 then raise_notrace Not_found
        else
          match arr.(Bits.popcount (bmp land (flag - 1))) with
          | IN child -> ifind m child k h (lev + w) i
          | SN leaf ->
              if H.equal leaf.key k then leaf.value else raise_notrace Not_found)
    | TNode _ ->
        if lev > 0 then clean m parent (lev - w);
        raise_notrace Restart_find
    | LNode ln ->
        if ln.lhash = h then lassoc k ln.entries else raise_notrace Not_found

  let rec find_loop t k h =
    match ifind t.metrics t.root k h 0 t.root with
    | v -> v
    | exception Restart_find -> find_loop t k h

  let find t k = find_loop t k (hash_of k)
  let lookup t k = match find t k with v -> Some v | exception Not_found -> None
  let mem t k = match find t k with _ -> true | exception Not_found -> false

  (* ------------------------------ insert ---------------------------- *)

  type 'v mode = Always | If_absent | If_present | If_value of 'v

  let rec iinsert m (i : 'v inode) k v h lev (parent : 'v inode option) mode :
      'v outcome =
    match Atomic.get i with
    | CNode { bmp; arr } as main -> (
        let flag, pos = flagpos h lev bmp in
        if bmp land flag = 0 then begin
          match mode with
          | If_present | If_value _ -> Done None
          | Always | If_absent ->
              let ncn =
                cnode_inserted bmp arr pos flag (SN { hash = h; key = k; value = v })
              in
              if yp_cas m yp_insert_cas i main ncn then Done None else Restart
        end
        else
          match arr.(pos) with
          | IN child -> iinsert m child k v h (lev + w) (Some i) mode
          | SN leaf ->
              if H.equal leaf.key k then begin
                match mode with
                | If_absent -> Done (Some leaf.value)
                | If_value expected when leaf.value != expected ->
                    Done (Some leaf.value)
                | Always | If_present | If_value _ ->
                    let ncn =
                      cnode_updated bmp arr pos (SN { hash = h; key = k; value = v })
                    in
                    if yp_cas m yp_insert_cas i main ncn then
                      Done (Some leaf.value)
                    else Restart
              end
              else if
                match mode with
                | If_present | If_value _ -> true
                | Always | If_absent -> false
              then Done None
              else begin
                let child =
                  IN (Atomic.make (dual leaf { hash = h; key = k; value = v } (lev + w)))
                in
                let ncn = cnode_updated bmp arr pos child in
                if yp_cas m yp_insert_cas i main ncn then begin
                  Metrics.incr m Metrics.Expansions;
                  Done None
                end
                else Restart
              end)
    | TNode _ ->
        (match parent with Some p -> clean m p (lev - w) | None -> ());
        Restart
    | LNode ln as main ->
        assert (ln.lhash = h);
        let previous = lassoc_opt k ln.entries in
        let proceed =
          match (mode, previous) with
          | If_absent, Some _ -> false
          | (If_present | If_value _), None -> false
          | If_value expected, Some p -> p == expected
          | (Always | If_absent | If_present), _ -> true
        in
        if not proceed then Done previous
        else begin
          let nln =
            LNode { ln with entries = (k, v) :: lremove_assoc k ln.entries }
          in
          if yp_cas m yp_insert_cas i main nln then Done previous else Restart
        end

  let rec update_loop t k v h mode =
    match iinsert t.metrics t.root k v h 0 None mode with
    | Done prev -> prev
    | Restart -> update_loop t k v h mode

  let update t k v mode = update_loop t k v (hash_of k) mode

  let insert t k v = ignore (update t k v Always)
  let add t k v = update t k v Always
  let put_if_absent t k v = update t k v If_absent
  let replace t k v = update t k v If_present

  let replace_if t k ~expected v =
    match update t k v (If_value expected) with
    | Some p -> p == expected
    | None -> false

  (* ------------------------------ remove ---------------------------- *)

  let rmode_allows rmode v =
    match rmode with `Always -> true | `If_value expected -> v == expected

  (* A successful removal CAS that publishes a TNode is an entombment. *)
  let entombed m (nmain : 'v main) =
    match nmain with
    | TNode _ -> Metrics.incr m Metrics.Entombments
    | CNode _ | LNode _ -> ()

  let rec iremove m (i : 'v inode) k h lev (parent : 'v inode option) rmode :
      'v outcome =
    match Atomic.get i with
    | CNode { bmp; arr } as main -> (
        let flag, pos = flagpos h lev bmp in
        if bmp land flag = 0 then Done None
        else
          let res =
            match arr.(pos) with
            | IN child -> (
                match iremove m child k h (lev + w) (Some i) rmode with
                | Done (Some _) as r ->
                    (* The removal may have entombed [child]. *)
                    (match Atomic.get child with
                    | TNode _ -> clean_parent m i child h lev
                    | CNode _ | LNode _ -> ());
                    r
                | r -> r)
            | SN leaf ->
                if not (H.equal leaf.key k) then Done None
                else if not (rmode_allows rmode leaf.value) then Done (Some leaf.value)
                else begin
                  let ncn = cnode_removed bmp arr pos flag in
                  let nmain = to_contracted ncn lev in
                  if yp_cas m yp_remove_cas i main nmain then begin
                    entombed m nmain;
                    Done (Some leaf.value)
                  end
                  else Restart
                end
          in
          res)
    | TNode _ ->
        (match parent with Some p -> clean m p (lev - w) | None -> ());
        Restart
    | LNode ln as main ->
        if ln.lhash <> h then Done None
        else begin
          match lassoc_opt k ln.entries with
          | None -> Done None
          | Some prev when not (rmode_allows rmode prev) -> Done (Some prev)
          | Some prev ->
              let entries = lremove_assoc k ln.entries in
              let nmain =
                match entries with
                | [ (k1, v1) ] -> TNode { hash = h; key = k1; value = v1 }
                | _ -> LNode { ln with entries }
              in
              if yp_cas m yp_remove_cas i main nmain then begin
                entombed m nmain;
                Done (Some prev)
              end
              else Restart
        end

  let rec remove_loop t k h rmode =
    match iremove t.metrics t.root k h 0 None rmode with
    | Done prev -> prev
    | Restart -> remove_loop t k h rmode

  let remove_with t k rmode = remove_loop t k (hash_of k) rmode

  let remove t k = remove_with t k `Always

  let remove_if t k ~expected =
    match remove_with t k (`If_value expected) with
    | Some p -> p == expected
    | None -> false

  (* --------------------------- batch operations --------------------- *)

  (* Staged traversal (DESIGN.md §13): process a chunk of keys in
     lockstep, one trie level per round.  Pass A reads and prefetches
     every active key's main node; pass B dispatches on the value pass
     A already pulled in, so the dependent loads of up to [chunk_cap]
     independent walks overlap instead of serializing.  The active set
     compacts in place — writes trail reads, so reusing [s_act] is
     safe.  No closures, no refs: the read path must allocate nothing. *)

  let scratch_make t =
    {
      s_h = Array.make chunk_cap 0;
      s_lev = Array.make chunk_cap 0;
      s_cur = Array.make chunk_cap t.root;
      s_par = Array.make chunk_cap t.root;
      s_main = Array.make chunk_cap empty_cnode;
      s_act = Array.make chunk_cap 0;
      s_nact = 0;
      s_hits = 0;
    }

  (* Per-domain scratch pool: [exchange] with the shared dummy instead
     of an option so take/release allocate nothing.  The dummy is
     recognized by its zero-length arrays. *)
  let scratch_take t =
    let slot = (Domain.self () :> int) land (Array.length t.scratch_pool - 1) in
    let s = Atomic.exchange t.scratch_pool.(slot) t.scratch_dummy in
    if Array.length s.s_h = chunk_cap then s else scratch_make t

  let scratch_release t s =
    let slot = (Domain.self () :> int) land (Array.length t.scratch_pool - 1) in
    Atomic.set t.scratch_pool.(slot) s

  let find_chunk t scr keys ~miss (out : 'v array) base n =
    for p = 0 to n - 1 do
      scr.s_h.(p) <- hash_of (Array.unsafe_get keys (base + p));
      scr.s_lev.(p) <- 0;
      scr.s_cur.(p) <- t.root;
      scr.s_par.(p) <- t.root;
      scr.s_act.(p) <- p
    done;
    scr.s_nact <- n;
    while scr.s_nact > 0 do
      (* Pass A: pull in every active key's main node. *)
      for a = 0 to scr.s_nact - 1 do
        let p = Array.unsafe_get scr.s_act a in
        Yp.here Yp.Before yp_read_walk;
        let m = Atomic.get scr.s_cur.(p) in
        scr.s_main.(p) <- m;
        Prefetch.read m
      done;
      (* Pass B: dispatch on what pass A read; survivors re-enqueue. *)
      let nact = scr.s_nact in
      scr.s_nact <- 0;
      for a = 0 to nact - 1 do
        let p = Array.unsafe_get scr.s_act a in
        let h = scr.s_h.(p) in
        let k = Array.unsafe_get keys (base + p) in
        match scr.s_main.(p) with
        | CNode { bmp; arr } -> (
            let lev = scr.s_lev.(p) in
            let idx = (h lsr lev) land (branching - 1) in
            let flag = 1 lsl idx in
            if bmp land flag = 0 then Array.unsafe_set out (base + p) miss
            else
              match arr.(Bits.popcount (bmp land (flag - 1))) with
              | IN child ->
                  Prefetch.read child;
                  scr.s_par.(p) <- scr.s_cur.(p);
                  scr.s_cur.(p) <- child;
                  scr.s_lev.(p) <- lev + w;
                  scr.s_act.(scr.s_nact) <- p;
                  scr.s_nact <- scr.s_nact + 1
              | SN leaf ->
                  if H.equal leaf.key k then begin
                    Array.unsafe_set out (base + p) leaf.value;
                    scr.s_hits <- scr.s_hits + 1
                  end
                  else Array.unsafe_set out (base + p) miss)
        | TNode _ -> (
            (* Tripped over a tomb mid-walk: help compact, then resolve
               this key alone from the root — restarting it inside the
               chunk would stall the whole wavefront. *)
            let lev = scr.s_lev.(p) in
            if lev > 0 then clean t.metrics scr.s_par.(p) (lev - w);
            match find_loop t k h with
            | v ->
                Array.unsafe_set out (base + p) v;
                scr.s_hits <- scr.s_hits + 1
            | exception Not_found -> Array.unsafe_set out (base + p) miss)
        | LNode ln -> (
            if ln.lhash <> h then Array.unsafe_set out (base + p) miss
            else
              match lassoc k ln.entries with
              | v ->
                  Array.unsafe_set out (base + p) v;
                  scr.s_hits <- scr.s_hits + 1
              | exception Not_found -> Array.unsafe_set out (base + p) miss)
      done
    done

  let rec find_chunks t scr keys ~miss out base total =
    if base < total then begin
      let n = min chunk_cap (total - base) in
      find_chunk t scr keys ~miss out base n;
      find_chunks t scr keys ~miss out (base + n) total
    end

  let find_batch t keys ~miss out =
    let total = Array.length keys in
    if Array.length out < total then
      invalid_arg "Ctrie.find_batch: out array shorter than keys";
    let scr = scratch_take t in
    scr.s_hits <- 0;
    find_chunks t scr keys ~miss out 0 total;
    let hits = scr.s_hits in
    scratch_release t scr;
    hits

  (* Warm-up descent for batched writers: walk each key down while the
     path is a pure CNode→IN chain, prefetching the next level, then
     finish with the scalar CAS machinery from the recorded inode.
     Starting mid-path is sound: an inode only becomes unreachable
     after its main transitions to a terminal TNode, and both [iinsert]
     and [iremove] restart on TNode — so a CAS that succeeds against an
     unchanged main implies the inode was still reachable. *)
  let locate_chunk t scr keys base n =
    for p = 0 to n - 1 do
      scr.s_h.(p) <- hash_of (Array.unsafe_get keys (base + p));
      scr.s_lev.(p) <- 0;
      scr.s_cur.(p) <- t.root;
      scr.s_par.(p) <- t.root;
      scr.s_act.(p) <- p
    done;
    scr.s_nact <- n;
    while scr.s_nact > 0 do
      for a = 0 to scr.s_nact - 1 do
        let p = Array.unsafe_get scr.s_act a in
        let m = Atomic.get scr.s_cur.(p) in
        scr.s_main.(p) <- m;
        Prefetch.read m
      done;
      let nact = scr.s_nact in
      scr.s_nact <- 0;
      for a = 0 to nact - 1 do
        let p = Array.unsafe_get scr.s_act a in
        match scr.s_main.(p) with
        | CNode { bmp; arr } -> (
            let lev = scr.s_lev.(p) in
            let h = scr.s_h.(p) in
            let idx = (h lsr lev) land (branching - 1) in
            let flag = 1 lsl idx in
            if bmp land flag <> 0 then
              match arr.(Bits.popcount (bmp land (flag - 1))) with
              | IN child ->
                  Prefetch.read child;
                  scr.s_par.(p) <- scr.s_cur.(p);
                  scr.s_cur.(p) <- child;
                  scr.s_lev.(p) <- lev + w;
                  scr.s_act.(scr.s_nact) <- p;
                  scr.s_nact <- scr.s_nact + 1
              | SN _ -> ())
        | TNode _ | LNode _ -> ()
      done
    done

  let rec insert_chunks t scr keys vals base total =
    if base < total then begin
      let n = min chunk_cap (total - base) in
      locate_chunk t scr keys base n;
      for p = 0 to n - 1 do
        let k = Array.unsafe_get keys (base + p) in
        let v = Array.unsafe_get vals (base + p) in
        let h = scr.s_h.(p) in
        let lev = scr.s_lev.(p) in
        let parent = if lev = 0 then None else Some scr.s_par.(p) in
        match iinsert t.metrics scr.s_cur.(p) k v h lev parent Always with
        | Done _ -> ()
        | Restart -> ignore (update_loop t k v h Always)
      done;
      insert_chunks t scr keys vals (base + n) total
    end

  let insert_batch t keys vals =
    if Array.length keys <> Array.length vals then
      invalid_arg "Ctrie.insert_batch: keys and vals differ in length";
    let scr = scratch_take t in
    insert_chunks t scr keys vals 0 (Array.length keys);
    scratch_release t scr

  let rec remove_chunks t scr keys base total =
    if base < total then begin
      let n = min chunk_cap (total - base) in
      locate_chunk t scr keys base n;
      for p = 0 to n - 1 do
        let k = Array.unsafe_get keys (base + p) in
        let h = scr.s_h.(p) in
        let lev = scr.s_lev.(p) in
        let parent = if lev = 0 then None else Some scr.s_par.(p) in
        match
          match iremove t.metrics scr.s_cur.(p) k h lev parent `Always with
          | Done prev -> prev
          | Restart -> remove_loop t k h `Always
        with
        | Some _ -> scr.s_hits <- scr.s_hits + 1
        | None -> ()
      done;
      remove_chunks t scr keys (base + n) total
    end

  let remove_batch t keys =
    let scr = scratch_take t in
    scr.s_hits <- 0;
    remove_chunks t scr keys 0 (Array.length keys);
    let removed = scr.s_hits in
    scratch_release t scr;
    removed

  (* ------------------------- aggregate queries ---------------------- *)

  let fold f acc t =
    let rec go_main acc (main : 'v main) =
      match main with
      | CNode { arr; _ } -> Array.fold_left go_branch acc arr
      | TNode leaf -> f acc leaf.key leaf.value
      | LNode ln -> List.fold_left (fun acc (k, v) -> f acc k v) acc ln.entries
    and go_branch acc = function
      | IN i -> go_main acc (Atomic.get i)
      | SN leaf -> f acc leaf.key leaf.value
    in
    go_main acc (Atomic.get t.root)

  let iter f t = fold (fun () k v -> f k v) () t
  let size t = fold (fun n _ _ -> n + 1) 0 t
  let is_empty t = size t = 0
  let to_list t = fold (fun acc k v -> (k, v) :: acc) [] t

  let depth_histogram t =
    let hist = Array.make 12 0 in
    let bump d n =
      let d = min d (Array.length hist - 1) in
      hist.(d) <- hist.(d) + n
    in
    let rec go_main (main : 'v main) depth =
      match main with
      | CNode { arr; _ } ->
          Array.iter
            (function
              | IN i -> go_main (Atomic.get i) (depth + 1)
              | SN _ -> bump (depth + 1) 1)
            arr
      | TNode _ -> bump depth 1
      | LNode ln -> bump depth (List.length ln.entries)
    in
    go_main (Atomic.get t.root) 0;
    hist

  (* Structural invariants, checked during quiescence. *)
  let validate t =
    let errors = ref [] in
    let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
    let check_leaf what (leaf : 'v leaf) lev prefix pmask =
      if leaf.hash <> hash_of leaf.key then
        err "%s: stored hash %#x differs from key hash %#x" what leaf.hash
          (hash_of leaf.key);
      if leaf.hash land pmask <> prefix then
        err "%s at level %d violates the prefix invariant" what lev
    in
    let rec go_main (main : 'v main) lev prefix pmask =
      match main with
      | TNode _ -> err "reachable TNode at level %d during quiescence" lev
      | LNode ln ->
          if List.length ln.entries < 2 then err "LNode with fewer than 2 entries";
          List.iter
            (fun (k, _) ->
              if hash_of k <> ln.lhash then err "LNode entry hash mismatch")
            ln.entries;
          if ln.lhash land pmask <> prefix then
            err "LNode at level %d violates the prefix invariant" lev
      | CNode { bmp; arr } ->
          if bmp < 0 || bmp >= 1 lsl branching then err "bitmap out of range";
          if Bits.popcount bmp <> Array.length arr then
            err "bitmap cardinality %d does not match array length %d"
              (Bits.popcount bmp) (Array.length arr);
          (* Children appear in ascending index order. *)
          let pos = ref 0 in
          for idx = 0 to branching - 1 do
            if bmp land (1 lsl idx) <> 0 then begin
              let child = arr.(!pos) in
              incr pos;
              let prefix' = prefix lor (idx lsl lev) in
              let pmask' = pmask lor ((branching - 1) lsl lev) in
              match child with
              | SN leaf -> check_leaf "SNode" leaf (lev + w) prefix' pmask'
              | IN i -> go_main (Atomic.get i) (lev + w) prefix' pmask'
            end
          done
    in
    go_main (Atomic.get t.root) 0 0 0;
    match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))

  (* Scrub: compact every reachable entombed branch (DESIGN.md §9).
     The only residue a crashed Ctrie operation can leave is a TNode
     whose [clean_parent] never ran — the remove itself committed with
     one CAS.  Each repair is exactly the helping step a traversal
     tripping over the TNode would perform, so scrubbing is safe under
     live traffic. *)
  let scrub t =
    let repairs = ref 0 in
    let pass () =
      let fixed = ref 0 in
      let rec go (i : 'v inode) lev prefix =
        match Atomic.get i with
        | TNode _ | LNode _ -> ()
        | CNode { bmp; arr } ->
            let pos = ref 0 in
            for idx = 0 to branching - 1 do
              if bmp land (1 lsl idx) <> 0 then begin
                (match arr.(!pos) with
                | SN _ -> ()
                | IN child -> (
                    let prefix' = prefix lor (idx lsl lev) in
                    (match Atomic.get child with
                    | TNode _ ->
                        (* [prefix'] replays the hash bits of the path, which
                           is all [clean_parent] reads of the hash. *)
                        clean_parent t.metrics i child prefix' lev;
                        incr fixed
                    | CNode _ | LNode _ -> ());
                    match Atomic.get child with
                    | CNode _ | LNode _ -> go child (lev + w) prefix'
                    | TNode _ -> ()));
                incr pos
              end
            done
      in
      go t.root 0 0;
      !fixed
    in
    (* Cleaning cascades: contracting a now-single-leaf CNode entombs
       it into a fresh TNode one level up, behind the walk's back.
       Sweep to fixpoint — each pass strictly shrinks pre-existing
       residue, and the cascade length is bounded by the trie depth
       (the pass bound only guards against concurrent writers
       manufacturing new tombs forever). *)
    let max_passes = (Hashing.hash_bits / w) + 2 in
    let passes = ref 0 in
    let continue = ref true in
    while !continue && !passes < max_passes do
      incr passes;
      let n = pass () in
      repairs := !repairs + n;
      continue := n > 0
    done;
    Metrics.add t.metrics Metrics.Scrub_repairs !repairs;
    !repairs

  let metrics t = t.metrics
  let stats t = Metrics.snapshot t.metrics
  let reset_stats t = Metrics.reset t.metrics

  (* Word-cost model (DESIGN.md): leaf = 4 (header + hash + key + value);
     CNode = 3 + array (1 + n) + n branch wrappers (2 each);
     INode = atomic box 2. *)
  let footprint_words t =
    let rec go_main (main : 'v main) =
      match main with
      | CNode { arr; _ } ->
          Array.fold_left
            (fun acc b -> acc + 2 + go_branch b)
            (3 + 1 + Array.length arr)
            arr
      | TNode _ -> 2 + 4
      | LNode ln -> 3 + (3 * List.length ln.entries)
    and go_branch = function IN i -> 2 + go_main (Atomic.get i) | SN _ -> 4 in
    2 + go_main (Atomic.get t.root)
end
