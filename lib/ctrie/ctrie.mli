(** Ctrie: the original lock-free concurrent hash trie (Prokopec,
    Bagwell, Bronson & Odersky, PPoPP 2012), re-implemented as the
    primary baseline the cache-trie paper compares against.

    Structure: indirection nodes ([INode]) point to main nodes; a main
    node is either a bitmapped branching node ([CNode], up to 32
    children selected by 5 hash bits per level), an entombed leaf
    ([TNode]) awaiting compaction, or a hash-collision list ([LNode]).
    Every mutation replaces an INode's main node with CAS; tombing and
    contraction keep the trie compact after removals.

    This implementation omits the generation-stamped GCAS/RDCSS used
    for O(1) snapshots (the cache-trie paper does not benchmark
    snapshots); all operations here are lock-free and linearizable. *)

module Make (H : Ct_util.Hashing.HASHABLE) : sig
  include Ct_util.Map_intf.CONCURRENT_MAP with type key = H.t

  val depth_histogram : 'v t -> int array
  (** [depth_histogram t].(d) counts keys whose leaf hangs off a CNode
      chain of length [d] (root CNode children are depth 1). *)

  (** [validate] (from {!Ct_util.Map_intf.CONCURRENT_MAP}) checks, for
      a quiescent trie: bitmap cardinality matches the child array,
      hash prefixes match paths, no entombed nodes remain reachable,
      collision lists are sane.  [scrub] compacts every reachable
      entombed ([TNode]) branch. *)
end
