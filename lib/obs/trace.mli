(** End-to-end request tracing with tail-latency exemplars
    (DESIGN.md §16).

    A {!ctx} is one immediate int carrying a 62-bit trace id and a
    sampled flag; it is minted at the load generator or client, rides a
    trace extension of the protocol frame, and crosses the server's
    dispatch queue inside the request.  Sampled requests record
    {!stage} spans into per-domain lock-free rings (the {!Flight}
    layout: parallel int arrays, stamp written last, torn rewrites
    tolerated by the dump).  Head-based sampling bounds the recording
    rate; {!Latency} tail exemplars keep the trace id of each bucket's
    most recent occupant so the span tree of a p99+ request is
    retrievable after the fact.

    Overhead budget (enforced by [bench obs] → [BENCH_obs.json]):
    carrying an unsampled context through a find costs ≤1%; a sampled
    request's full span recording amortizes to ≤5%. *)

(** {1 Trace context} *)

type ctx = int
(** Bit 0 = sampled flag, bits 1..62 = trace id, 0 = {!none}.  An
    immediate, so propagation never allocates. *)

val none : ctx
(** The untraced context. *)

val make : sampled:bool -> int -> ctx
(** [make ~sampled id] packs a context.  [id] is masked to 62 bits and
    coerced away from 0 (0 must remain unambiguously "untraced"). *)

val is_traced : ctx -> bool
val sampled : ctx -> bool

val id : ctx -> int
(** The trace id (0 iff untraced). *)

val to_wire : ctx -> int * bool
(** [(raw id, sampled)] — the two fields the protocol serializes. *)

val of_wire : wire_id:int -> sampled:bool -> ctx
(** Inverse of {!to_wire}; a zero wire id decodes to {!none}. *)

(** {1 Stages} *)

(** The pipeline stage a span covers.  [Admission], [Queue_wait],
    [Exec] and [Fsync_wait] partition the request's server-side wall
    time; [Map_op], [Wal_append], [Cache_lookup] and [Cache_load] nest
    inside [Exec]; [Wal_fsync] is a background span (trace id 0)
    covering one group-commit fsync; [Request] is the root span. *)
type stage =
  | Admission
  | Queue_wait
  | Exec
  | Map_op
  | Wal_append
  | Fsync_wait
  | Wal_fsync
  | Cache_lookup
  | Cache_load
  | Request

val n_stages : int
val all_stages : stage list
val stage_index : stage -> int
val stage_of_index : int -> stage

val stage_name : stage -> string
(** Stable snake_case name used by the exporters ("queue_wait"). *)

(** {1 Span collector} *)

type span = {
  trace_id : int;  (** 0 = background span (e.g. a WAL group fsync) *)
  stage : stage;
  start_ns : int;  (** monotonic ns ({!Ct_util.Clock}) *)
  dur_ns : int;
  a : int;  (** stage-specific annotation — [Map_op]: CAS retries *)
  b : int;  (** stage-specific annotation — [Map_op]: cache misses *)
  slot : int;  (** ring slot (domain) that recorded the span *)
  stamp : int;  (** global recording order *)
}

type t

val create : ?size:int -> unit -> t
(** [create ~size ()] sizes each per-domain ring to [size] spans
    (rounded up to a power of two; default 512).  With 1-in-N head
    sampling the rings hold the last [size×slots/spans-per-request]
    sampled requests — a window, sized so tail exemplars still
    resolve. *)

val size : t -> int

val record :
  t -> ctx -> stage -> start_ns:int -> dur_ns:int -> a:int -> b:int -> unit
(** Record one span on the calling domain's ring.  Lock-free,
    allocation-free: six int stores plus one fetch-and-add on the
    stamp clock.  Callers guard with [sampled ctx] — [record] itself
    does not check, so background spans (ctx {!none}) can be forced
    in. *)

val recorded : t -> int
(** Total spans ever recorded (including overwritten ones). *)

val spans : t -> span list
(** Every resident span, stamp-ordered.  Safe concurrently with
    recording: a mid-write slot is skipped or read torn, never
    faulted. *)

val spans_of : t -> id:int -> span list
(** The resident span tree of one trace id, stamp-ordered. *)

val stage_summary : t -> (string * int * int) list
(** Per-stage [(name, count, total_ns)] over resident spans, in stage
    order, empty stages omitted — what the exporters serialize. *)

val span_to_string : span -> string
val reset : t -> unit

(** {1 Process-global sink}

    Layers that cannot be handed a collector (the WAL's group-commit
    fsync loop, the cache tier's read-through) record through the
    installed sink.  With none installed, {!record_sink} is one atomic
    load and a branch. *)

val install : t -> unit
val uninstall : unit -> unit
val sink : unit -> t option

val record_sink :
  ctx -> stage -> start_ns:int -> dur_ns:int -> a:int -> b:int -> unit

(** {1 Ambient context}

    The executing request's context, stored domain-locally by the
    server worker for the duration of one request so nested layers
    (cache tier, WAL append) can attribute their spans without API
    plumbing.  Sound because a worker domain executes one request at a
    time. *)

val current : unit -> ctx
val set_current : ctx -> unit

val with_ctx : ctx -> (unit -> 'a) -> 'a
(** [with_ctx ctx f] runs [f] with [ctx] ambient, restoring the
    previous context on exit (also on raise). *)

val timed_ambient : stage -> (unit -> 'a) -> 'a
(** Time [f] and record a [stage] span against the ambient context via
    the sink — but only when the ambient context is sampled; otherwise
    the cost is a domain-local read and a branch, no clock calls. *)
