(** Prometheus-style text exposition of the metrics registry and
    latency histograms (DESIGN.md §11).

    Output is deterministic for equal counter states: families come
    from {!Ct_util.Metrics.aggregate} (sorted by name), counters keep
    the fixed {!Ct_util.Metrics.all} order, and no timestamps are
    emitted.  The JSON twin lives in {!Harness.Obs_report}, next to
    the benchmark JSON emitter it reuses. *)

val derived : (string * int) list -> (string * int) list
(** Derived series computed from one family's counter snapshot —
    currently [cache_lookups = cache_hits + cache_misses], the
    denominator the hit-ratio invariant checks against. *)

val prometheus : ?histograms:(string * Latency.t) list -> unit -> string
(** Render every live metrics family as
    [ct_counter_total{family=...,counter=...}] samples (plus
    [ct_live_instances] gauges and [ct_derived_total] series), and
    each labelled histogram as a Prometheus histogram —
    [ct_latency_ns_bucket{op=...,le=...}] with cumulative counts, a
    [+Inf] bucket, and exact [_sum]/[_count]. *)
