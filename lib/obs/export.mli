(** Prometheus-style text exposition of the metrics registry and
    latency histograms (DESIGN.md §11).

    Output is deterministic for equal counter states: families come
    from {!Ct_util.Metrics.aggregate} (sorted by name), counters keep
    the fixed {!Ct_util.Metrics.all} order, and no timestamps are
    emitted.  The JSON twin lives in {!Harness.Obs_report}, next to
    the benchmark JSON emitter it reuses. *)

val escape_label : string -> string
(** Escape a label value per the Prometheus text exposition format:
    backslash, double quote and newline each become their two-character
    backslash escape.  Applied to every interpolated label value —
    family names arrive from user code and an unescaped quote
    desynchronizes the whole scrape.  Returns the argument unchanged
    (no copy) when already clean. *)

val derived : (string * int) list -> (string * int) list
(** Derived series computed from one family's counter snapshot —
    currently [cache_lookups = cache_hits + cache_misses], the
    denominator the hit-ratio invariant checks against. *)

val prometheus :
  ?histograms:(string * Latency.t) list -> ?spans:Trace.t -> unit -> string
(** Render every live metrics family as
    [ct_counter_total{family=...,counter=...}] samples (plus
    [ct_live_instances] gauges and [ct_derived_total] series), and
    each labelled histogram as a Prometheus histogram —
    [ct_latency_ns_bucket{op=...,le=...}] with cumulative counts, a
    [+Inf] bucket, and exact [_sum]/[_count].  With [?spans], also a
    [ct_span_duration_ns] summary per trace stage
    ([_sum]/[_count]{stage=...}) over the collector's resident
    window. *)
