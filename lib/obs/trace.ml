(* End-to-end request tracing (DESIGN.md §16).

   A trace context is one OCaml int: bit 0 is the sampled flag, bits
   1..62 the trace id, and 0 means "untraced".  Packing the whole
   context into an immediate keeps every propagation step — through
   the protocol frame, the dispatch queue item, the ambient
   domain-local — allocation-free, and makes the hot-path guard a
   single register test ([ctx land 1]).

   Spans land in per-domain lock-free rings with the same parallel-
   array layout as {!Flight}: recording a span is a handful of unboxed
   int stores plus one fetch-and-add on the global stamp clock, and a
   concurrent dump at worst sees a slot mid-rewrite (stamp written
   last, exactly Flight's torn-read discipline).  The rings are a
   window, not a log: sampling keeps the recording rate low enough
   that a request's spans are still resident when a tail exemplar
   points at them. *)

module Clock = Ct_util.Clock

(* ------------------------------ context ----------------------------- *)

type ctx = int

let none = 0

let max_id = (1 lsl 62) - 1

let make ~sampled id =
  let id = id land max_id in
  let id = if id = 0 then 1 else id in
  (id lsl 1) lor (if sampled then 1 else 0)

let is_traced ctx = ctx <> 0
let sampled ctx = ctx land 1 = 1
let id ctx = ctx lsr 1

(* Wire form: the id and the sampled flag travel separately (u64 +
   flags-byte bit 0), so the protocol layer never needs to know the
   packing. *)
let to_wire ctx = (id ctx, sampled ctx)

let of_wire ~wire_id ~sampled:s =
  let wid = wire_id land max_id in
  if wid = 0 then none else (wid lsl 1) lor (if s then 1 else 0)

(* ------------------------------- stages ----------------------------- *)

type stage =
  | Admission
  | Queue_wait
  | Exec
  | Map_op
  | Wal_append
  | Fsync_wait
  | Wal_fsync
  | Cache_lookup
  | Cache_load
  | Request

let n_stages = 10

let stage_index = function
  | Admission -> 0
  | Queue_wait -> 1
  | Exec -> 2
  | Map_op -> 3
  | Wal_append -> 4
  | Fsync_wait -> 5
  | Wal_fsync -> 6
  | Cache_lookup -> 7
  | Cache_load -> 8
  | Request -> 9

let all_stages =
  [
    Admission; Queue_wait; Exec; Map_op; Wal_append; Fsync_wait; Wal_fsync;
    Cache_lookup; Cache_load; Request;
  ]

let stage_of_index = function
  | 0 -> Admission
  | 1 -> Queue_wait
  | 2 -> Exec
  | 3 -> Map_op
  | 4 -> Wal_append
  | 5 -> Fsync_wait
  | 6 -> Wal_fsync
  | 7 -> Cache_lookup
  | 8 -> Cache_load
  | _ -> Request

let stage_name = function
  | Admission -> "admission"
  | Queue_wait -> "queue_wait"
  | Exec -> "exec"
  | Map_op -> "map_op"
  | Wal_append -> "wal_append"
  | Fsync_wait -> "fsync_wait"
  | Wal_fsync -> "wal_fsync"
  | Cache_lookup -> "cache_lookup"
  | Cache_load -> "cache_load"
  | Request -> "request"

(* ------------------------------- rings ------------------------------ *)

type span = {
  trace_id : int;  (* 0 = a background span (WAL group fsync) *)
  stage : stage;
  start_ns : int;
  dur_ns : int;
  a : int;  (* stage-specific annotation (map_op: CAS retries) *)
  b : int;  (* stage-specific annotation (map_op: cache misses) *)
  slot : int;  (* recording domain's ring slot *)
  stamp : int;  (* global recording order *)
}

let cursor_stride = 8

type t = {
  size : int;
  ring_mask : int;
  slot_mask : int;
  clock : int Atomic.t;
  ids : int array array;
  stages : int array array;
  starts : int array array;
  durs : int array array;
  ann_a : int array array;
  ann_b : int array array;
  stamps : int array array;  (* -1 = never written *)
  cursors : int array;
}

let ceil_pow2 n =
  let r = ref 1 in
  while !r < n do
    r := !r * 2
  done;
  !r

let create ?(size = 512) () =
  if size < 1 then invalid_arg "Trace.create: size < 1";
  let size = ceil_pow2 size in
  let slots = ceil_pow2 (Domain.recommended_domain_count ()) in
  let mk () = Array.init slots (fun _ -> Array.make size 0) in
  {
    size;
    ring_mask = size - 1;
    slot_mask = slots - 1;
    clock = Atomic.make 0;
    ids = mk ();
    stages = mk ();
    starts = mk ();
    durs = mk ();
    ann_a = mk ();
    ann_b = mk ();
    stamps = Array.init slots (fun _ -> Array.make size (-1));
    cursors = Array.make (slots * cursor_stride) 0;
  }

let size t = t.size

let record t ctx stage ~start_ns ~dur_ns ~a ~b =
  let slot = (Domain.self () :> int) land t.slot_mask in
  let stamp = Atomic.fetch_and_add t.clock 1 in
  let c = slot * cursor_stride in
  let pos = t.cursors.(c) land t.ring_mask in
  t.ids.(slot).(pos) <- id ctx;
  t.stages.(slot).(pos) <- stage_index stage;
  t.starts.(slot).(pos) <- start_ns;
  t.durs.(slot).(pos) <- (if dur_ns < 0 then 0 else dur_ns);
  t.ann_a.(slot).(pos) <- a;
  t.ann_b.(slot).(pos) <- b;
  (* Stamp last, mirroring Flight: a dump racing a first write skips
     the -1 slot, and a rewrite is at worst one torn span. *)
  t.stamps.(slot).(pos) <- stamp;
  t.cursors.(c) <- t.cursors.(c) + 1

let recorded t = Atomic.get t.clock

let spans t =
  let acc = ref [] in
  for slot = Array.length t.ids - 1 downto 0 do
    for i = t.size - 1 downto 0 do
      let stamp = t.stamps.(slot).(i) in
      if stamp >= 0 then
        acc :=
          {
            trace_id = t.ids.(slot).(i);
            stage = stage_of_index t.stages.(slot).(i);
            start_ns = t.starts.(slot).(i);
            dur_ns = t.durs.(slot).(i);
            a = t.ann_a.(slot).(i);
            b = t.ann_b.(slot).(i);
            slot;
            stamp;
          }
          :: !acc
    done
  done;
  List.sort (fun x y -> compare x.stamp y.stamp) !acc

let spans_of t ~id:want = List.filter (fun s -> s.trace_id = want) (spans t)

(* Per-stage (count, total ns) over everything still resident — the
   summary the exporters serialize. *)
let stage_summary t =
  let counts = Array.make n_stages 0 and sums = Array.make n_stages 0 in
  List.iter
    (fun s ->
      let i = stage_index s.stage in
      counts.(i) <- counts.(i) + 1;
      sums.(i) <- sums.(i) + s.dur_ns)
    (spans t);
  List.filter_map
    (fun st ->
      let i = stage_index st in
      if counts.(i) = 0 then None
      else Some (stage_name st, counts.(i), sums.(i)))
    all_stages

let span_to_string s =
  Printf.sprintf "[%8d] d%-2d trace=%016x %-12s start=%d dur=%dns a=%d b=%d"
    s.stamp s.slot s.trace_id (stage_name s.stage) s.start_ns s.dur_ns s.a s.b

let reset t =
  Array.iter (fun a -> Array.fill a 0 (Array.length a) (-1)) t.stamps;
  Array.fill t.cursors 0 (Array.length t.cursors) 0;
  Atomic.set t.clock 0

(* ------------------------------- sink ------------------------------- *)

(* The process-global collector.  Layers that record spans without
   plumbing (the WAL's group commit, the cache tier) reach it here;
   with no sink installed a record is one atomic load and a branch. *)
let sink_slot : t option Atomic.t = Atomic.make None

let install t = Atomic.set sink_slot (Some t)
let uninstall () = Atomic.set sink_slot None
let sink () = Atomic.get sink_slot

let record_sink ctx stage ~start_ns ~dur_ns ~a ~b =
  match Atomic.get sink_slot with
  | None -> ()
  | Some t -> record t ctx stage ~start_ns ~dur_ns ~a ~b

(* --------------------------- ambient context ------------------------ *)

(* The current request's context, per domain.  The server worker sets
   it for the duration of one request's execution so layers it calls
   into (the cache tier's read-through, principally) can attribute
   their own spans without an API change.  Domain-local, not
   thread-local: a worker domain runs exactly one executing request at
   a time, which is the invariant that makes this sound. *)
let current_key : ctx Domain.DLS.key = Domain.DLS.new_key (fun () -> none)

let current () = Domain.DLS.get current_key
let set_current ctx = Domain.DLS.set current_key ctx

let with_ctx ctx f =
  let prev = current () in
  set_current ctx;
  Fun.protect ~finally:(fun () -> set_current prev) f

(* Convenience used by instrumented layers: time [f] and record the
   span against the ambient context when it is sampled.  The unsampled
   path is the DLS read plus one branch — no clock calls. *)
let timed_ambient stage f =
  let ctx = current () in
  if sampled ctx then begin
    let t0 = Clock.monotonic_ns () in
    let finish () =
      record_sink ctx stage ~start_ns:t0
        ~dur_ns:(Clock.monotonic_ns () - t0)
        ~a:0 ~b:0
    in
    match f () with
    | r ->
        finish ();
        r
    | exception e ->
        finish ();
        raise e
  end
  else f ()
