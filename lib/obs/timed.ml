(* Opt-in latency wrapper: [Timed.Make (M)] is a CONCURRENT_MAP that
   times every single-key operation into three per-instance log-scale
   histograms — reads (lookup/find/mem), inserts (insert/add/
   put_if_absent/replace/replace_if) and removes (remove/remove_if) —
   and otherwise delegates.  Batch operations record one whole-batch
   sample into the matching histogram.  Aggregate queries are passed
   through untimed: their cost is O(n) and would drown the bucket
   range the histograms are sized for.

   The wrapper costs two clock reads and one histogram bump per op,
   which is why it is opt-in rather than always-on like the counters:
   benchmarks wrap the structure only when the run asks for latency
   distributions. *)

module Clock = Ct_util.Clock

module Make (M : Ct_util.Map_intf.CONCURRENT_MAP) = struct
  type key = M.key

  type 'v t = {
    map : 'v M.t;
    reads : Latency.t;
    inserts : Latency.t;
    removes : Latency.t;
  }

  let name = M.name ^ "+timed"

  let of_map map =
    {
      map;
      reads = Latency.create ~label:"read";
      inserts = Latency.create ~label:"insert";
      removes = Latency.create ~label:"remove";
    }

  let create () = of_map (M.create ())
  let base t = t.map

  let latencies t =
    [ ("read", t.reads); ("insert", t.inserts); ("remove", t.removes) ]

  let lookup t k =
    let start = Clock.monotonic_ns () in
    let r = M.lookup t.map k in
    Latency.record_span t.reads ~start;
    r

  (* [find]'s miss path raises; time it on both exits so a read-mostly
     workload's misses do not vanish from the distribution. *)
  let find t k =
    let start = Clock.monotonic_ns () in
    match M.find t.map k with
    | v ->
        Latency.record_span t.reads ~start;
        v
    | exception Not_found ->
        Latency.record_span t.reads ~start;
        raise_notrace Not_found

  let mem t k =
    let start = Clock.monotonic_ns () in
    let r = M.mem t.map k in
    Latency.record_span t.reads ~start;
    r

  let insert t k v =
    let start = Clock.monotonic_ns () in
    M.insert t.map k v;
    Latency.record_span t.inserts ~start

  let add t k v =
    let start = Clock.monotonic_ns () in
    let r = M.add t.map k v in
    Latency.record_span t.inserts ~start;
    r

  let put_if_absent t k v =
    let start = Clock.monotonic_ns () in
    let r = M.put_if_absent t.map k v in
    Latency.record_span t.inserts ~start;
    r

  let replace t k v =
    let start = Clock.monotonic_ns () in
    let r = M.replace t.map k v in
    Latency.record_span t.inserts ~start;
    r

  let replace_if t k ~expected v =
    let start = Clock.monotonic_ns () in
    let r = M.replace_if t.map k ~expected v in
    Latency.record_span t.inserts ~start;
    r

  let remove t k =
    let start = Clock.monotonic_ns () in
    let r = M.remove t.map k in
    Latency.record_span t.removes ~start;
    r

  let remove_if t k ~expected =
    let start = Clock.monotonic_ns () in
    let r = M.remove_if t.map k ~expected in
    Latency.record_span t.removes ~start;
    r

  (* Batch operations time the whole batch as one sample into the same
     histogram as their scalar counterpart.  Per-key samples would cost
     2k clock reads and defeat the staged traversal the batch exists
     for; one whole-batch sample keeps the wrapper's contract (every op
     that touches the map leaves a mark in a histogram) at two clock
     reads regardless of k. *)
  let find_batch t keys ~miss out =
    let start = Clock.monotonic_ns () in
    let r = M.find_batch t.map keys ~miss out in
    Latency.record_span t.reads ~start;
    r

  let insert_batch t keys vals =
    let start = Clock.monotonic_ns () in
    M.insert_batch t.map keys vals;
    Latency.record_span t.inserts ~start

  let remove_batch t keys =
    let start = Clock.monotonic_ns () in
    let r = M.remove_batch t.map keys in
    Latency.record_span t.removes ~start;
    r

  let size t = M.size t.map
  let is_empty t = M.is_empty t.map
  let fold f acc t = M.fold f acc t.map
  let iter f t = M.iter f t.map
  let to_list t = M.to_list t.map
  let footprint_words t = M.footprint_words t.map
  let validate t = M.validate t.map
  let metrics t = M.metrics t.map
  let stats t = M.stats t.map
  let reset_stats t = M.reset_stats t.map
  let scrub t = M.scrub t.map
end
