(** Lock-free flight recorder: the last N yield-point events per
    domain, for post-mortem dumps (DESIGN.md §11).

    Each domain slot owns a private ring buffer of (site, phase,
    stamp) triples, written from the yield-point {e observer} slot —
    the slot that fires before the chaos hook and the domain-local
    hook, so the recorder captures the site even when an injector
    parks or kills the domain right there.  Recording allocates
    nothing: three array stores plus one [Atomic.fetch_and_add] on the
    global logical clock that gives every event a unique stamp and the
    merged dump a strict total order.

    [dump] may run concurrently with recorders (that is its point: it
    runs from watchdog stall callbacks and failing-test handlers).  It
    is best-effort on the entries being overwritten at that instant —
    a ring slot mid-rewrite can pair a fresh site with a stale stamp —
    but the result is always stamp-sorted and never mixes up entries
    that were quiescent when the dump started. *)

type t

type entry = {
  slot : int;  (** domain slot (domain id masked by the slot count) *)
  stamp : int;  (** global logical time; unique, totally ordered *)
  site : Ct_util.Yieldpoint.site;
  phase : Ct_util.Yieldpoint.phase;
}

val create : ?size:int -> unit -> t
(** [create ()] — rings of [size] entries (default 256, rounded up to
    a power of two) for every domain slot. *)

val size : t -> int
(** Ring capacity per domain slot. *)

val record : t -> Ct_util.Yieldpoint.phase -> Ct_util.Yieldpoint.site -> unit
(** Append one event to the calling domain's ring, overwriting the
    oldest.  Allocation-free; safe from any domain. *)

val recorded : t -> int
(** Total events ever recorded (the logical clock's value). *)

val install : t -> unit
(** Put [record t] in the yield-point observer slot, replacing any
    previous observer. *)

val install_with_progress : t -> Ct_util.Progress.t -> unit
(** Compose with the progress tracker: the observer first feeds
    [Progress.observe] (heartbeats for the watchdog), then records —
    both consumers share the single observer slot. *)

val uninstall : unit -> unit
(** Clear the observer slot. *)

val dump : t -> entry list
(** Every live entry across all rings, sorted by stamp (oldest
    first). *)

val dump_to_string : ?limit:int -> t -> string
(** Render the dump one event per line, oldest first; with [limit],
    only the most recent [limit] events.  Empty dump renders as a
    single explanatory line. *)

val reset : t -> unit
(** Forget all recorded events (racy against concurrent recorders). *)
