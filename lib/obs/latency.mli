(** Log-scale latency histograms (DESIGN.md §11).

    A [Latency.t] holds 64 power-of-two nanosecond buckets — bucket
    [b] counts samples in [[2^b, 2^(b+1))], bucket 0 absorbs 0 and
    1 ns — striped per domain like {!Ct_util.Metrics}, so recording is
    a plain read-add-write of two ints in the calling domain's block:
    no CAS, no allocation.  Each stripe also accumulates the raw
    nanosecond sum, so the Prometheus exporter can emit an exact
    [_sum] alongside the bucketed counts.

    Percentiles interpolate linearly inside the winning bucket, which
    bounds the error by the bucket width (a factor of two) — the usual
    HdrHistogram-style trade.  For exact percentiles over a bounded
    run, collect raw samples and use {!Ct_util.Stats.percentile}; the
    trace replayer does both.

    Histograms from different domains/runs merge by bucket-wise sum
    via {!Analysis.Histogram.merge}. *)

type t

val n_buckets : int
(** 64 — enough for [2^63] ns, i.e. any [int] sample. *)

val create : label:string -> t
(** [create ~label] — a zeroed histogram; [label] names the op type
    ("find", "insert", ...) in reports. *)

val label : t -> string

val bucket_of_ns : int -> int
(** Index of the bucket a sample falls in ([floor (log2 ns)], clamped
    to [[0, n_buckets)]). *)

val bucket_upper_ns : int -> float
(** Exclusive upper bound of a bucket, the Prometheus [le] label. *)

val record_ns : t -> int -> unit
(** Record one sample.  Allocation-free; negative samples (a clock
    hiccup) count as 0. *)

val record_span : t -> start:int -> unit
(** [record_span t ~start] records [Clock.monotonic_ns () - start]. *)

val record_ns_traced : t -> int -> trace_id:int -> unit
(** Like {!record_ns} and, when [trace_id <> 0], additionally stamps
    the id as the winning bucket's tail exemplar — the most recent
    sampled occupant of that latency band, whose span tree is then
    retrievable from {!Trace}.  The exemplar cells are unstriped and
    racy: last-writer-wins is the wanted semantics. *)

val record_span_traced : t -> start:int -> trace_id:int -> unit

val exemplar : t -> int -> int
(** [exemplar t b] — the trace id last stamped into bucket [b], or 0.
    @raise Invalid_argument if [b] is outside [[0, n_buckets)]. *)

val exemplars : t -> (int * int) list
(** Every [(bucket, trace_id)] with an exemplar, ascending bucket. *)

val top_exemplar : t -> int array -> (int * int) option
(** [top_exemplar t counts] — the exemplar covering the tail: the id
    stamped in the highest non-empty bucket of [counts], falling back
    to the nearest lower bucket that has one (the top occupant may
    never have been sampled).  [counts] is a {!counts} (or
    {!diff_counts} window) snapshot, passed in so callers choose the
    window. *)

val counts : t -> int array
(** Per-bucket totals summed across domain stripes (racy reads). *)

val diff_counts : prev:int array -> now:int array -> int array
(** [diff_counts ~prev ~now] — per-bucket [now - prev], clamped at 0.
    The window histogram a duty-cycle controller (the server ticker)
    diffs between two {!counts} snapshots: clamping keeps a concurrent
    {!reset} or a torn cross-stripe read from injecting negative
    bucket counts into the control decision.
    @raise Invalid_argument if the arrays differ in length. *)

val merged_counts : t list -> int array
(** Bucket-wise sum over several histograms
    ({!Analysis.Histogram.merge} folded). *)

val total : t -> int
(** Number of recorded samples. *)

val sum_ns : t -> int
(** Exact sum of all recorded samples in nanoseconds. *)

val percentile_of_counts : int array -> float -> float
(** [percentile_of_counts counts p] with [p] in [[0,100]]: the
    interpolated nanosecond value at cumulative count [p/100 * n]
    (nearest-rank, Prometheus-style — p99 of five samples lands in the
    bucket holding the largest one).
    @raise Invalid_argument on an empty histogram or [p] outside
    [[0,100]]. *)

val percentile : t -> float -> float
(** [percentile t p] over this histogram's merged stripes. *)

val reset : t -> unit
(** Zero every bucket and sum (racy against concurrent records). *)
