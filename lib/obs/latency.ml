module Clock = Ct_util.Clock
module Histogram = Analysis.Histogram

let n_buckets = 64

(* Striping mirrors Ct_util.Metrics: one block per domain slot, with a
   leading pad and a block tail pad so two domains' hot words never
   share a cache line.  The raw-ns sum lives at [n_buckets] inside the
   block. *)
let lead = 16
let block = n_buckets + 16
let sum_off = n_buckets

let ceil_pow2 n =
  let r = ref 1 in
  while !r < n do
    r := !r * 2
  done;
  !r

(* [exem] holds one trace id per bucket — the tail exemplar: the most
   recent sampled request that landed there (0 = none yet).  Unstriped
   and racy by design: last-writer-wins across domains is exactly the
   "most recent occupant" the post-mortem wants, and a torn overwrite
   costs one exemplar, not correctness. *)
type t = { label : string; mask : int; data : int array; exem : int array }

let create ~label =
  let stripes = ceil_pow2 (Domain.recommended_domain_count ()) in
  {
    label;
    mask = stripes - 1;
    data = Array.make (lead + (stripes * block)) 0;
    exem = Array.make n_buckets 0;
  }

let label t = t.label

let[@inline] bucket_of_ns ns =
  if ns <= 1 then 0
  else begin
    let b = ref 0 and v = ref ns in
    if !v lsr 32 <> 0 then begin b := !b + 32; v := !v lsr 32 end;
    if !v lsr 16 <> 0 then begin b := !b + 16; v := !v lsr 16 end;
    if !v lsr 8 <> 0 then begin b := !b + 8; v := !v lsr 8 end;
    if !v lsr 4 <> 0 then begin b := !b + 4; v := !v lsr 4 end;
    if !v lsr 2 <> 0 then begin b := !b + 2; v := !v lsr 2 end;
    if !v lsr 1 <> 0 then incr b;
    if !b >= n_buckets then n_buckets - 1 else !b
  end

let bucket_lower_ns b = if b = 0 then 0.0 else ldexp 1.0 b
let bucket_upper_ns b = ldexp 1.0 (b + 1)

let record_ns t ns =
  let ns = if ns < 0 then 0 else ns in
  let base = lead + (((Domain.self () :> int) land t.mask) * block) in
  let i = base + bucket_of_ns ns in
  t.data.(i) <- t.data.(i) + 1;
  t.data.(base + sum_off) <- t.data.(base + sum_off) + ns

let record_span t ~start = record_ns t (Clock.monotonic_ns () - start)

(* Traced variant: same histogram update, plus — when the request was
   sampled — stamp its trace id as the bucket's exemplar.  The extra
   cost on the untraced path is one branch. *)
let record_ns_traced t ns ~trace_id =
  let ns = if ns < 0 then 0 else ns in
  let base = lead + (((Domain.self () :> int) land t.mask) * block) in
  let b = bucket_of_ns ns in
  let i = base + b in
  t.data.(i) <- t.data.(i) + 1;
  t.data.(base + sum_off) <- t.data.(base + sum_off) + ns;
  if trace_id <> 0 then t.exem.(b) <- trace_id

let record_span_traced t ~start ~trace_id =
  record_ns_traced t (Clock.monotonic_ns () - start) ~trace_id

let exemplar t b =
  if b < 0 || b >= n_buckets then invalid_arg "Latency.exemplar: bucket";
  t.exem.(b)

(* (bucket, trace id) for every bucket holding an exemplar, ascending —
   the post-mortem walks this from the top to find the slowest traced
   request still resolvable. *)
let exemplars t =
  let acc = ref [] in
  for b = n_buckets - 1 downto 0 do
    if t.exem.(b) <> 0 then acc := (b, t.exem.(b)) :: !acc
  done;
  !acc

(* The exemplar of the highest non-empty bucket of [counts] or, when
   that bucket's occupant was never sampled, the nearest lower bucket
   with one.  [counts] is passed in (not re-read) so callers can use a
   window diff. *)
let top_exemplar t cnts =
  let top = ref (-1) in
  let n = min (Array.length cnts) n_buckets in
  for b = 0 to n - 1 do
    if cnts.(b) > 0 then top := b
  done;
  let rec down b = if b < 0 then None
    else if t.exem.(b) <> 0 then Some (b, t.exem.(b))
    else down (b - 1)
  in
  down !top

let counts t =
  let out = Array.make n_buckets 0 in
  for s = 0 to t.mask do
    let base = lead + (s * block) in
    for b = 0 to n_buckets - 1 do
      out.(b) <- out.(b) + t.data.(base + b)
    done
  done;
  out

(* Window diff for duty-cycle control loops (the server ticker).  Each
   cell of [counts] is a sum of racy per-stripe reads; a concurrent
   [reset] (or a torn read mixing ticks) can make [now.(b) < prev.(b)],
   and a control decision made on a negative bucket count is garbage.
   Clamping per bucket keeps the window a valid histogram: at worst a
   clamped window under-counts one interval, which only delays the
   controller by a tick. *)
let diff_counts ~prev ~now =
  if Array.length prev <> Array.length now then
    invalid_arg "Latency.diff_counts: length mismatch";
  Array.init (Array.length now) (fun b ->
      let d = now.(b) - prev.(b) in
      if d < 0 then 0 else d)

let merged_counts ts =
  List.fold_left (fun acc t -> Histogram.merge acc (counts t)) [||] ts

let total t = Array.fold_left ( + ) 0 (counts t)

let sum_ns t =
  let s = ref 0 in
  for stripe = 0 to t.mask do
    s := !s + t.data.(lead + (stripe * block) + sum_off)
  done;
  !s

let percentile_of_counts counts p =
  if p < 0.0 || p > 100.0 then
    invalid_arg "Latency.percentile: p outside [0,100]";
  let n = Array.fold_left ( + ) 0 counts in
  if n = 0 then invalid_arg "Latency.percentile: empty histogram";
  (* Nearest-rank over the bucketised distribution: the percentile is
     the value at cumulative count p/100 * n, interpolated linearly
     within its bucket's span.  p = 99 over 5 samples targets rank
     4.95, which lands in the bucket holding the largest sample, as a
     histogram consumer expects (Prometheus uses the same convention). *)
  let target = p /. 100.0 *. float_of_int n in
  let cum = ref 0.0 and b = ref 0 and result = ref 0.0 and found = ref false in
  while not !found && !b < Array.length counts do
    let c = float_of_int counts.(!b) in
    if c > 0.0 && !cum +. c >= target then begin
      let lo = bucket_lower_ns !b and hi = bucket_upper_ns !b in
      let frac = (target -. !cum) /. c in
      let frac = if frac < 0.0 then 0.0 else frac in
      result := lo +. (frac *. (hi -. lo));
      found := true
    end
    else begin
      cum := !cum +. c;
      incr b
    end
  done;
  if !found then !result
  else bucket_upper_ns (Array.length counts - 1)

let percentile t p = percentile_of_counts (counts t) p

let reset t =
  Array.fill t.data 0 (Array.length t.data) 0;
  Array.fill t.exem 0 n_buckets 0
