module Metrics = Ct_util.Metrics

let derived counters =
  let get l = match List.assoc_opt l counters with Some n -> n | None -> 0 in
  [ ("cache_lookups", get "cache_hits" + get "cache_misses") ]

(* [le] labels as integers ("2", "4", ... ) rather than %g floats, so
   the exposition is stable across printf implementations. *)
let le_label b =
  let up = Latency.bucket_upper_ns b in
  if up <= 1e18 then Printf.sprintf "%.0f" up else "+Inf"

let add_histogram buf (op, h) =
  let counts = Latency.counts h in
  let last =
    let i = ref (-1) in
    Array.iteri (fun b c -> if c > 0 then i := b) counts;
    !i
  in
  let cum = ref 0 in
  for b = 0 to last do
    cum := !cum + counts.(b);
    Buffer.add_string buf
      (Printf.sprintf "ct_latency_ns_bucket{op=\"%s\",le=\"%s\"} %d\n" op
         (le_label b) !cum)
  done;
  Buffer.add_string buf
    (Printf.sprintf "ct_latency_ns_bucket{op=\"%s\",le=\"+Inf\"} %d\n" op !cum);
  Buffer.add_string buf
    (Printf.sprintf "ct_latency_ns_sum{op=\"%s\"} %d\n" op (Latency.sum_ns h));
  Buffer.add_string buf
    (Printf.sprintf "ct_latency_ns_count{op=\"%s\"} %d\n" op !cum)

let prometheus ?(histograms = []) () =
  let buf = Buffer.create 4096 in
  let families = Metrics.aggregate () in
  Buffer.add_string buf
    "# HELP ct_counter_total Structure counters summed per family.\n\
     # TYPE ct_counter_total counter\n";
  List.iter
    (fun (family, _, counters) ->
      List.iter
        (fun (label, total) ->
          Buffer.add_string buf
            (Printf.sprintf "ct_counter_total{family=\"%s\",counter=\"%s\"} %d\n"
               family label total))
        counters)
    families;
  Buffer.add_string buf
    "# HELP ct_derived_total Series derived from the raw counters.\n\
     # TYPE ct_derived_total counter\n";
  List.iter
    (fun (family, _, counters) ->
      List.iter
        (fun (label, total) ->
          Buffer.add_string buf
            (Printf.sprintf "ct_derived_total{family=\"%s\",derived=\"%s\"} %d\n"
               family label total))
        (derived counters))
    families;
  Buffer.add_string buf
    "# HELP ct_live_instances Live structure instances per family.\n\
     # TYPE ct_live_instances gauge\n";
  List.iter
    (fun (family, live, _) ->
      Buffer.add_string buf
        (Printf.sprintf "ct_live_instances{family=\"%s\"} %d\n" family live))
    families;
  if histograms <> [] then begin
    Buffer.add_string buf
      "# HELP ct_latency_ns Operation latency in nanoseconds.\n\
       # TYPE ct_latency_ns histogram\n";
    List.iter (add_histogram buf) histograms
  end;
  Buffer.contents buf
