module Metrics = Ct_util.Metrics

(* Prometheus text-format label values escape backslash, double quote
   and newline (exposition format spec).  Family names come from user
   code ([Metrics.create ~family]) so they are hostile until proven
   otherwise — an unescaped quote does not just corrupt one sample, it
   desynchronizes the whole scrape. *)
let escape_label s =
  let n = String.length s in
  let rec clean i =
    if i >= n then true
    else
      match s.[i] with '\\' | '"' | '\n' -> false | _ -> clean (i + 1)
  in
  if clean 0 then s
  else begin
    let buf = Buffer.create (n + 8) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let derived counters =
  let get l = match List.assoc_opt l counters with Some n -> n | None -> 0 in
  [ ("cache_lookups", get "cache_hits" + get "cache_misses") ]

(* [le] labels as integers ("2", "4", ... ) rather than %g floats, so
   the exposition is stable across printf implementations. *)
let le_label b =
  let up = Latency.bucket_upper_ns b in
  if up <= 1e18 then Printf.sprintf "%.0f" up else "+Inf"

let add_histogram buf (op, h) =
  let op = escape_label op in
  let counts = Latency.counts h in
  let last =
    let i = ref (-1) in
    Array.iteri (fun b c -> if c > 0 then i := b) counts;
    !i
  in
  let cum = ref 0 in
  for b = 0 to last do
    cum := !cum + counts.(b);
    Buffer.add_string buf
      (Printf.sprintf "ct_latency_ns_bucket{op=\"%s\",le=\"%s\"} %d\n" op
         (le_label b) !cum)
  done;
  Buffer.add_string buf
    (Printf.sprintf "ct_latency_ns_bucket{op=\"%s\",le=\"+Inf\"} %d\n" op !cum);
  Buffer.add_string buf
    (Printf.sprintf "ct_latency_ns_sum{op=\"%s\"} %d\n" op (Latency.sum_ns h));
  Buffer.add_string buf
    (Printf.sprintf "ct_latency_ns_count{op=\"%s\"} %d\n" op !cum)

let prometheus ?(histograms = []) ?spans () =
  let buf = Buffer.create 4096 in
  let families = Metrics.aggregate () in
  Buffer.add_string buf
    "# HELP ct_counter_total Structure counters summed per family.\n\
     # TYPE ct_counter_total counter\n";
  List.iter
    (fun (family, _, counters) ->
      let family = escape_label family in
      List.iter
        (fun (label, total) ->
          Buffer.add_string buf
            (Printf.sprintf "ct_counter_total{family=\"%s\",counter=\"%s\"} %d\n"
               family (escape_label label) total))
        counters)
    families;
  Buffer.add_string buf
    "# HELP ct_derived_total Series derived from the raw counters.\n\
     # TYPE ct_derived_total counter\n";
  List.iter
    (fun (family, _, counters) ->
      let family = escape_label family in
      List.iter
        (fun (label, total) ->
          Buffer.add_string buf
            (Printf.sprintf "ct_derived_total{family=\"%s\",derived=\"%s\"} %d\n"
               family (escape_label label) total))
        (derived counters))
    families;
  Buffer.add_string buf
    "# HELP ct_live_instances Live structure instances per family.\n\
     # TYPE ct_live_instances gauge\n";
  List.iter
    (fun (family, live, _) ->
      Buffer.add_string buf
        (Printf.sprintf "ct_live_instances{family=\"%s\"} %d\n"
           (escape_label family) live))
    families;
  if histograms <> [] then begin
    Buffer.add_string buf
      "# HELP ct_latency_ns Operation latency in nanoseconds.\n\
       # TYPE ct_latency_ns histogram\n";
    List.iter (add_histogram buf) histograms
  end;
  (match spans with
  | None -> ()
  | Some tr ->
      let summary = Trace.stage_summary tr in
      if summary <> [] then begin
        Buffer.add_string buf
          "# HELP ct_span_duration_ns Traced span durations per stage \
           (resident ring window).\n\
           # TYPE ct_span_duration_ns summary\n";
        List.iter
          (fun (stage, count, sum) ->
            let stage = escape_label stage in
            Buffer.add_string buf
              (Printf.sprintf "ct_span_duration_ns_sum{stage=\"%s\"} %d\n" stage
                 sum);
            Buffer.add_string buf
              (Printf.sprintf "ct_span_duration_ns_count{stage=\"%s\"} %d\n"
                 stage count))
          summary
      end);
  Buffer.contents buf
