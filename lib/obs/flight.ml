module Yp = Ct_util.Yieldpoint
module Progress = Ct_util.Progress

type entry = { slot : int; stamp : int; site : Yp.site; phase : Yp.phase }

(* Rings are parallel arrays rather than an entry array so a record is
   three unboxed stores — no tuple/record allocation on the hot path.
   A slot's cursor lives in a shared int array at a padded stride so
   two domains' cursors never share a cache line. *)
let cursor_stride = 8

type t = {
  size : int;
  ring_mask : int;
  slot_mask : int;
  clock : int Atomic.t;
  sites : Yp.site array array;  (* per slot; [filler] means empty *)
  phases : int array array;  (* 0 = Before, 1 = After *)
  stamps : int array array;  (* -1 means the ring slot was never written *)
  cursors : int array;
}

(* Placeholder for never-written ring slots: a registered read-only
   site, so a torn dump racing a first write still yields a valid
   site value rather than a dangling sentinel. *)
let filler = Yp.register_read "obs.flight.idle"

let ceil_pow2 n =
  let r = ref 1 in
  while !r < n do
    r := !r * 2
  done;
  !r

let create ?(size = 256) () =
  if size < 1 then invalid_arg "Flight.create: size < 1";
  let size = ceil_pow2 size in
  let slots = ceil_pow2 (Domain.recommended_domain_count ()) in
  {
    size;
    ring_mask = size - 1;
    slot_mask = slots - 1;
    clock = Atomic.make 0;
    sites = Array.init slots (fun _ -> Array.make size filler);
    phases = Array.init slots (fun _ -> Array.make size 0);
    stamps = Array.init slots (fun _ -> Array.make size (-1));
    cursors = Array.make (slots * cursor_stride) 0;
  }

let size t = t.size

let record t phase site =
  let slot = (Domain.self () :> int) land t.slot_mask in
  let stamp = Atomic.fetch_and_add t.clock 1 in
  let c = slot * cursor_stride in
  let pos = t.cursors.(c) land t.ring_mask in
  (* Stamp written last: a concurrent dump skips slots still at -1 and
     at worst reads a fresh site with the previous stamp mid-rewrite. *)
  t.sites.(slot).(pos) <- site;
  t.phases.(slot).(pos) <- (match phase with Yp.Before -> 0 | Yp.After -> 1);
  t.stamps.(slot).(pos) <- stamp;
  t.cursors.(c) <- t.cursors.(c) + 1

let recorded t = Atomic.get t.clock

let install t = Yp.install_observer (fun phase site -> record t phase site)

let install_with_progress t progress =
  Yp.install_observer (fun phase site ->
      Progress.observe progress phase site;
      record t phase site)

let uninstall () = Yp.clear_observer ()

let dump t =
  let acc = ref [] in
  for slot = Array.length t.sites - 1 downto 0 do
    for i = t.size - 1 downto 0 do
      let stamp = t.stamps.(slot).(i) in
      if stamp >= 0 then
        acc :=
          {
            slot;
            stamp;
            site = t.sites.(slot).(i);
            phase = (if t.phases.(slot).(i) = 0 then Yp.Before else Yp.After);
          }
          :: !acc
    done
  done;
  List.sort (fun a b -> compare a.stamp b.stamp) !acc

let entry_to_string e =
  Printf.sprintf "[%8d] d%-2d %s/%s" e.stamp e.slot (Yp.name e.site)
    (match e.phase with Yp.Before -> "before" | Yp.After -> "after")

let dump_to_string ?limit t =
  let entries = dump t in
  let entries =
    match limit with
    | None -> entries
    | Some n ->
        let len = List.length entries in
        if len <= n then entries else List.filteri (fun i _ -> i >= len - n) entries
  in
  match entries with
  | [] -> "<flight recorder: no events recorded>"
  | es -> String.concat "\n" (List.map entry_to_string es)

let reset t =
  Array.iter (fun a -> Array.fill a 0 (Array.length a) (-1)) t.stamps;
  Array.iter (fun a -> Array.fill a 0 (Array.length a) filler) t.sites;
  Array.fill t.cursors 0 (Array.length t.cursors) 0;
  Atomic.set t.clock 0
