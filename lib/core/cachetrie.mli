(** Cache-trie: a concurrent lock-free hash trie with expected
    constant-time operations.

    This is the primary data structure of Prokopec, {e Cache-Tries:
    Concurrent Lock-Free Hash Tries with Constant-Time Operations}
    (PPoPP 2018).  A cache-trie is a 16-way hash trie whose inner nodes
    ([ANode]s) come in two sizes (narrow: 4 slots, wide: 16 slots), with
    leaf nodes ([SNode]s) carrying one binding each.  All operations are
    lock-free; lookups that do not encounter concurrent structural
    changes are wait-free.  An auxiliary, quiescently-consistent
    {e cache} keeps pointers to nodes at the trie level where most keys
    live, which makes [lookup], [insert] and [remove] run in expected
    O(1) time (paper, Theorems 4.1-4.4).

    Concurrency contract: any number of domains may call any operation
    concurrently.  Aggregate queries ([size], [fold], [iter],
    [to_list], [depth_histogram], [footprint_words], [validate]) are
    weakly consistent and intended for quiescent or read-mostly use. *)

(** Tuning knobs.  The defaults correspond to the constants reported in
    the paper (Sections 3.5-3.6). *)
type config = {
  enable_cache : bool;  (** [false] gives the paper's "w/o cache" ablation variant *)
  max_misses : int;  (** cache misses per counter stripe before a sampling pass (paper: 2048) *)
  sample_paths : int;  (** random root-to-leaf paths walked per sampling pass *)
  min_cache_level : int;  (** level of the first cache installed (paper: 8) *)
  cache_trigger_level : int;  (** trie level whose nodes trigger cache creation (paper: 12) *)
  max_cache_level : int;  (** upper bound on the cache level (bounds cache memory) *)
  miss_stripes : int;
      (** upper bound on the number of miss-counter stripes; the actual
          count is [min (Domain.recommended_domain_count ()) miss_stripes]
          rounded up to a power of two, fixed when the cache is created.
          Each stripe is padded to its own cache line
          ([Ct_util.Stripe]). *)
  narrow_nodes : bool;  (** [false] always allocates 16-slot nodes (ablation) *)
  dual_level_cache : bool;
      (** keep the chain's fallback level inhabited too — the paper's
          Section 7 "cache two levels at once" suggestion; [false]
          restricts inhabiting to the head level (ablation) *)
}

val default_config : config

(** Counters describing cache behaviour; see {!Make.cache_stats}. *)
type stats = {
  cache_level : int option;  (** current deepest cache level, if a cache exists *)
  cache_chain : int list;  (** levels in the cache chain, deepest first *)
  expansions : int;  (** completed narrow-to-wide expansions *)
  compressions : int;  (** completed remove-side compressions *)
  sampling_passes : int;
  cache_installs : int;
  cache_adjustments : int;  (** cache level changes decided by sampling *)
}

module Make (H : Ct_util.Hashing.HASHABLE) : sig
  include Ct_util.Map_intf.CONCURRENT_MAP with type key = H.t

  val create_with : config:config -> unit -> 'v t
  (** [create_with ~config ()] makes an empty cache-trie with explicit
      tuning (use [{ default_config with enable_cache = false }] for
      the paper's cache-less baseline). *)

  val to_seq : 'v t -> (key * 'v) Seq.t
  (** Lazy, weakly consistent iteration over the bindings: slots are
      read as the sequence is consumed, so the unconsumed suffix
      observes concurrent updates.  Each binding present for the whole
      traversal is produced exactly once. *)

  val cache_stats : 'v t -> stats
  (** Cache-trie-specific view over the telemetry counters, plus the
      cache chain shape.  The raw counters are the same ones [stats]
      (the uniform {!Ct_util.Map_intf.CONCURRENT_MAP} snapshot)
      reports under the registry labels. *)

  val depth_histogram : 'v t -> int array
  (** [depth_histogram t].(d) is the number of keys whose leaf sits at
      trie depth [d] (level [4*d]).  Index 0 is always 0 (the root is
      an ANode); the last slot aggregates any deeper keys.  This is the
      artifact's "BirthdaySimulations" histogram. *)

  (** [validate] (from {!Ct_util.Map_intf.CONCURRENT_MAP}) checks, for
      a quiescent trie: hash-prefix consistency, node widths, absence
      of freeze markers and descriptors, narrow-node content
      restrictions, LNode sanity, and cache coherence — every cache
      entry either reaches the recorded level from the root or is
      self-invalidating stale (frozen/dead), never a live-looking
      detached node.  [scrub] walks the trie help-completing expansion
      and compression descriptors and pending [txn]s, then drops
      incoherent cache entries. *)
end
