module Slots = Ct_util.Slots
(* ^ Line 1 is load-bearing: lib/core/dune generates cachetrie_boxed.ml
   by replacing exactly this line with an alias to Atomic_slots.Boxed,
   so the boxed seed layout stays benchmarkable against the flat one in
   the same binary.  Keep the alias on line 1, alone. *)

(* Cache-trie: lock-free concurrent hash trie with a quiescently
   consistent cache (Prokopec, PPoPP'18).

   The implementation follows the paper's pseudocode (Figures 2-8)
   with the OCaml-specific decisions documented in DESIGN.md:

   - ANodes are [Slots.t] arrays (Ct_util.Atomic_slots): by default a
     single flat array CASed field-by-field through the runtime's
     [caml_atomic_cas_field], with the seed's one-[Atomic.t]-box-per-
     slot layout kept as the [Boxed] fallback behind the same
     interface.  Either way a slot is a stable location for the
     lifetime of its ANode, so CAS identities work exactly as in the
     paper (DESIGN.md "Slot layout").
   - The SNode [txn] field is a closed variant instead of [Any].
   - Full 32-bit hash collisions are resolved with immutable LNodes
     (association lists), updated by direct slot CAS and frozen by
     wrapping in FNode.
   - Remove-side compression uses an explicit XNode descriptor that
     mirrors ENode, so every restarted operation finds a descriptor to
     help (the paper describes this step in prose in Section 3.7).
   - The cache entry arrays are plain (non-atomic) arrays: the cache is
     quiescently consistent and every fast-path read is validated
     against the trie, so racy cache reads are benign (the paper's
     inhabit uses a plain WRITE for the same reason).
   - [find] is the primitive read ([raise_notrace Not_found] on a
     miss); [lookup]/[mem] wrap it, so a hit allocates nothing. *)

module Hashing = Ct_util.Hashing
module Bits = Ct_util.Bits
module Rng = Ct_util.Rng
module Stripe = Ct_util.Stripe
module Yp = Ct_util.Yieldpoint
module Metrics = Ct_util.Metrics
module Prefetch = Ct_util.Prefetch

(* Yield points (DESIGN.md "Fault injection & robustness"): one site
   per distinct CAS/write, registered once per program.  [yp_cas]
   brackets a CAS on an [Atomic.t] (txn fields, descriptor cells, the
   cache head) and [yp_cas_slot] a CAS on an ANode slot, so that After
   fires only when the value was actually published. *)
let yp_freeze_null = Yp.register "cachetrie.freeze.null"
let yp_freeze_txn = Yp.register "cachetrie.freeze.txn"
let yp_freeze_wrap = Yp.register "cachetrie.freeze.wrap"
let yp_txn_announce = Yp.register "cachetrie.txn.announce"
let yp_txn_commit = Yp.register "cachetrie.txn.commit"
let yp_txn_help = Yp.register "cachetrie.txn.help"
let yp_expand_publish = Yp.register "cachetrie.expand.publish"
let yp_expand_wide = Yp.register "cachetrie.expand.wide"
let yp_expand_commit = Yp.register "cachetrie.expand.commit"
let yp_compress_publish = Yp.register "cachetrie.compress.publish"
let yp_compress_repl = Yp.register "cachetrie.compress.repl"
let yp_compress_commit = Yp.register "cachetrie.compress.commit"
let yp_insert_null = Yp.register "cachetrie.insert.null"
let yp_insert_lnode = Yp.register "cachetrie.insert.lnode"
let yp_remove_lnode = Yp.register "cachetrie.remove.lnode"
let yp_cache_install = Yp.register "cachetrie.cache.install"
let yp_cache_adjust = Yp.register "cachetrie.cache.adjust"

(* Read-path yield point, fired at every level step of the slow-path
   walk.  Production cost with nothing installed is the atomic loads in
   [Yp.here]; the deterministic scheduler (lib/mc) needs it so a read
   can be parked mid-walk between two writers' CASes — without it reads
   execute atomically under exploration and read/write races are
   untestable.  Registered as a read site: two parked reads commute, so
   the explorer prunes one of the two orders. *)
let yp_read_walk = Yp.register_read "cachetrie.read.walk"

(* Both wrappers also feed the metrics registry: every call is a CAS
   attempt, every failure a retry the caller is about to re-drive. *)
let yp_cas m site slot expected repl =
  Metrics.incr m Metrics.Cas_attempts;
  Yp.here Yp.Before site;
  let ok = Atomic.compare_and_set slot expected repl in
  if ok then Yp.here Yp.After site else Metrics.incr m Metrics.Cas_retries;
  ok

let yp_cas_slot m site an pos expected repl =
  Metrics.incr m Metrics.Cas_attempts;
  Yp.here Yp.Before site;
  let ok = Slots.cas an pos expected repl in
  if ok then Yp.here Yp.After site else Metrics.incr m Metrics.Cas_retries;
  ok

type config = {
  enable_cache : bool;  (** if false, behaves as the paper's "w/o cache" variant *)
  max_misses : int;  (** misses per counter stripe before a sampling pass (paper: 2048) *)
  sample_paths : int;  (** random paths walked per sampling pass *)
  min_cache_level : int;  (** first cache level installed (paper: 8) *)
  cache_trigger_level : int;  (** trie level whose nodes trigger cache creation (paper: 12) *)
  max_cache_level : int;  (** cap on the cache level, bounding cache memory *)
  miss_stripes : int;
      (** upper bound on the number of miss-counter stripes; the actual
          count is [min (Domain.recommended_domain_count ()) miss_stripes]
          rounded up to a power of two, fixed at cache creation *)
  narrow_nodes : bool;  (** if false, always allocate wide ANodes (ablation) *)
  dual_level_cache : bool;
      (** keep the fallback cache level fresh too (paper Section 7's
          two-level-cache suggestion); if false only the head level is
          inhabited *)
}

let default_config =
  {
    enable_cache = true;
    max_misses = 2048;
    sample_paths = 64;
    min_cache_level = 8;
    cache_trigger_level = 12;
    max_cache_level = 20;
    miss_stripes = 64;
    narrow_nodes = true;
    dual_level_cache = true;
  }

type stats = {
  cache_level : int option;
  cache_chain : int list;
  expansions : int;
  compressions : int;
  sampling_passes : int;
  cache_installs : int;
  cache_adjustments : int;
}

module Make (H : Hashing.HASHABLE) = struct
  type key = H.t

  let name = "cachetrie"

  (* ---------------------------------------------------------------- *)
  (* Node types (paper Figure 1 and Table 1).                          *)
  (* ---------------------------------------------------------------- *)

  type 'v node =
    | Null  (** empty ANode slot *)
    | FVNode  (** frozen empty slot *)
    | SNode of 'v snode  (** leaf holding one binding *)
    | ANode of 'v anode  (** inner node: 4 (narrow) or 16 (wide) slots *)
    | LNode of 'v lnode  (** list of bindings whose 32-bit hashes collide *)
    | FNode of 'v node  (** freeze wrapper for an ANode or LNode *)
    | ENode of 'v enode  (** expansion descriptor *)
    | XNode of 'v xnode  (** compression descriptor *)

  and 'v snode = { hash : int; key : key; value : 'v; txn : 'v txn Atomic.t }

  and 'v txn =
    | No_txn
    | Frozen_snode
    | Replace of 'v node  (** announced replacement (SNode, ANode or LNode) *)
    | Removed  (** announced removal: parent slot will become Null *)

  and 'v anode = 'v node Slots.t

  and 'v lnode = { lhash : int; entries : (key * 'v) list }

  and 'v enode = {
    e_parent : 'v anode;
    e_parentpos : int;
    e_narrow : 'v anode;
    e_level : int;  (** level of the narrow node being expanded *)
    e_wide : 'v anode option Atomic.t;
  }

  and 'v xnode = {
    x_parent : 'v anode;
    x_parentpos : int;
    x_stale : 'v anode;
    x_level : int;  (** level of the node being compressed *)
    x_repl : 'v node option Atomic.t;
  }

  (* Cache (paper Figure 5): a list of levels, deepest first.  Entry
     arrays are plain: see the header comment.  Miss counters are a
     padded [Stripe.t] (one counter per cache line) sized from the
     domain count — with a bare [int array] eight domains' counters
     share one line and every miss ping-pongs it. *)
  type 'v cache_level = {
    c_level : int;  (** trie level covered, multiple of 4 *)
    c_entries : 'v node array;  (** length [2^c_level] *)
    c_misses : Stripe.t;  (** striped per-domain miss counters *)
    c_parent : 'v cache_level option;
  }

  (* Per-call state of a staged batch traversal (DESIGN.md §13),
     indexed by chunk position.  Pooled per domain so a steady-state
     [find_batch] allocates nothing: all loop counters live in the
     mutable fields, not in refs. *)
  type 'v scratch = {
    s_h : int array;  (** mixed hash per chunk position *)
    s_lev : int array;  (** current trie level; -1 = already resolved *)
    s_cur : 'v anode array;  (** node the next step reads *)
    s_prev : 'v anode array;  (** parent of [s_cur]; valid when s_lev > 0 *)
    s_act : int array;  (** active chunk positions, compacted in place *)
    mutable s_nact : int;
    mutable s_hits : int;
  }

  type 'v t = {
    root : 'v anode;
    cache_head : 'v cache_level option Atomic.t;
    config : config;
    metrics : Metrics.t;
        (* single source of truth for every maintenance counter; the
           [cache_stats] record is a view over it *)
    seed : int Atomic.t;
    scratch_pool : 'v scratch Atomic.t array;
        (* one slot per domain (power-of-two, indexed by domain id);
           holds [scratch_dummy] while the domain's scratch is in use *)
    scratch_dummy : 'v scratch;
  }

  let narrow_width = 4
  let wide_width = 16

  (* Keys per staged chunk: enough lookups in flight to overlap their
     cache misses, small enough that the per-level state stays in L1. *)
  let chunk_cap = 64

  let pool_slots =
    let n = Domain.recommended_domain_count () in
    let rec p2 x = if x >= n then x else p2 (x * 2) in
    p2 1

  let new_anode n : 'v anode = Slots.make n Null

  let create_with ~config () =
    let scratch_dummy =
      {
        s_h = [||];
        s_lev = [||];
        s_cur = [||];
        s_prev = [||];
        s_act = [||];
        s_nact = 0;
        s_hits = 0;
      }
    in
    {
      root = new_anode wide_width;
      cache_head = Atomic.make None;
      config;
      metrics = Metrics.create ~family:name;
      seed = Atomic.make 0x9E3779B9;
      scratch_pool = Array.init pool_slots (fun _ -> Atomic.make scratch_dummy);
      scratch_dummy;
    }

  let create () = create_with ~config:default_config ()
  let hash_of k = H.hash k land Hashing.mask
  let apos (an : 'v anode) h lev = (h lsr lev) land (Slots.length an - 1)
  let is_narrow (an : 'v anode) = Slots.length an = narrow_width

  let fresh_snode h k v = SNode { hash = h; key = k; value = v; txn = Atomic.make No_txn }

  (* Association-list operations with the structure's own key equality
     (the [List.assoc_opt]/[List.remove_assoc] they replace used
     polymorphic [=], which both disagrees with the [H.equal] the SNode
     paths use and compiles to a [caml_equal] C call).  The mismatch
     was a real bug, found by the lib/mc explorer's hostile-equality
     scenarios: with a key type whose [H.equal] is coarser than [(=)],
     the LNode insert path failed to replace the existing entry and
     accumulated duplicates, and the LNode remove path left an
     H.equal-matching entry behind after reporting a successful
     removal. *)
  let rec lassoc k = function
    | [] -> raise_notrace Not_found
    | (k', v) :: rest -> if H.equal k' k then v else lassoc k rest

  let lassoc_opt k entries =
    match lassoc k entries with v -> Some v | exception Not_found -> None

  let rec lremove_assoc k = function
    | [] -> []
    | ((k', _) as pair) :: rest ->
        if H.equal k' k then rest else pair :: lremove_assoc k rest

  (* ---------------------------------------------------------------- *)
  (* Sequential construction on private nodes.                         *)
  (*                                                                    *)
  (* These run on nodes not yet published (expansion/compression       *)
  (* targets, children built for a txn announcement), so plain          *)
  (* Slots.set is race-free here.                                       *)
  (* ---------------------------------------------------------------- *)

  (* Build the node that holds two bindings whose hashes differ,
     starting at [lev] (paper's createANode).  Always allocates fresh
     SNodes: a published SNode must never be reinstalled elsewhere,
     because its txn field would no longer mean "reachable". *)
  let rec join_disjoint cfg h1 k1 v1 h2 k2 v2 lev : 'v node =
    assert (h1 <> h2);
    let np1 = (h1 lsr lev) land (narrow_width - 1)
    and np2 = (h2 lsr lev) land (narrow_width - 1) in
    if cfg.narrow_nodes && np1 <> np2 then begin
      let an = new_anode narrow_width in
      Slots.set an np1 (fresh_snode h1 k1 v1);
      Slots.set an np2 (fresh_snode h2 k2 v2);
      ANode an
    end
    else begin
      let wp1 = (h1 lsr lev) land (wide_width - 1)
      and wp2 = (h2 lsr lev) land (wide_width - 1) in
      let an = new_anode wide_width in
      if wp1 <> wp2 then begin
        Slots.set an wp1 (fresh_snode h1 k1 v1);
        Slots.set an wp2 (fresh_snode h2 k2 v2)
      end
      else Slots.set an wp1 (join_disjoint cfg h1 k1 v1 h2 k2 v2 (lev + 4));
      ANode an
    end

  (* Insert into a private (unpublished) subtree.  [build_insert node
     lev h k v] returns the node that replaces [node], where [node]
     sits at pointer level [lev] (an ANode result indexes hash bits
     [lev, lev+4)).  Narrow nodes with an occupied target slot are
     promoted to wide ones, preserving the invariant that narrow
     ANodes contain only SNodes. *)
  let rec build_insert cfg (node : 'v node) lev h k v : 'v node =
    match node with
    | Null -> fresh_snode h k v
    | SNode sn ->
        if sn.hash = h && H.equal sn.key k then fresh_snode h k v
        else if sn.hash = h then
          LNode { lhash = h; entries = [ (k, v); (sn.key, sn.value) ] }
        else join_disjoint cfg sn.hash sn.key sn.value h k v lev
    | LNode ln ->
        if ln.lhash = h then
          LNode { ln with entries = (k, v) :: lremove_assoc k ln.entries }
        else begin
          (* Push the whole list one level down next to the new key. *)
          let an = new_anode wide_width in
          Slots.set an ((ln.lhash lsr lev) land (wide_width - 1)) (LNode ln);
          build_into_anode cfg an lev h k v
        end
    | ANode an ->
        if is_narrow an then begin
          let pos = (h lsr lev) land (narrow_width - 1) in
          match Slots.get an pos with
          | Null ->
              Slots.set an pos (fresh_snode h k v);
              ANode an
          | _ ->
              (* Promote the narrow node to a wide one, then insert. *)
              let wide = new_anode wide_width in
              Slots.iter
                (fun child ->
                  match child with
                  | Null -> ()
                  | SNode sn as leaf ->
                      Slots.set wide ((sn.hash lsr lev) land (wide_width - 1)) leaf
                  | LNode _ | ANode _ | FVNode | FNode _ | ENode _ | XNode _ ->
                      (* narrow nodes hold only SNodes *)
                      assert false)
                an;
              build_into_anode cfg wide lev h k v
        end
        else build_into_anode cfg an lev h k v
    | FVNode | FNode _ | ENode _ | XNode _ ->
        (* Private subtrees contain only committed node kinds. *)
        assert false

  and build_into_anode cfg (an : 'v anode) lev h k v : 'v node =
    let pos = apos an h lev in
    Slots.set an pos (build_insert cfg (Slots.get an pos) (lev + 4) h k v);
    ANode an

  (* Collect all bindings of a frozen subtree (used by compression and
     as the generic expansion-copy fallback). *)
  let rec collect_frozen (node : 'v node) acc =
    match node with
    | Null | FVNode -> acc
    | SNode sn -> (sn.hash, sn.key, sn.value) :: acc
    | LNode ln -> List.fold_left (fun acc (k, v) -> (ln.lhash, k, v) :: acc) acc ln.entries
    | FNode inner -> collect_frozen inner acc
    | ANode an -> Slots.fold (fun acc child -> collect_frozen child acc) acc an
    | ENode _ | XNode _ ->
        (* freeze completes nested descriptors before wrapping *)
        assert false

  (* Copy a frozen narrow node into a fresh wide node (paper's copy
     subroutine).  The narrow-node invariant means entries are frozen
     SNodes, FNode-wrapped LNodes, or FVNode; the generic collect +
     build_into_anode also covers any deeper content defensively. *)
  let transfer cfg (narrow : 'v anode) (wide : 'v anode) lev =
    let bindings = Slots.fold (fun acc child -> collect_frozen child acc) [] narrow in
    List.iter (fun (h, k, v) -> ignore (build_into_anode cfg wide lev h k v)) bindings

  (* ---------------------------------------------------------------- *)
  (* Freezing, expansion, compression (paper Figure 4 + Section 3.7).  *)
  (* ---------------------------------------------------------------- *)

  let rec freeze t (cur : 'v anode) =
    let m = t.metrics in
    let i = ref 0 in
    while !i < Slots.length cur do
      (match Slots.get cur !i with
      | Null ->
          if yp_cas_slot m yp_freeze_null cur !i Null FVNode then begin
            Metrics.incr m Metrics.Freezes;
            incr i
          end
      | FVNode -> incr i
      | SNode sn as old -> begin
          match Atomic.get sn.txn with
          | No_txn ->
              if yp_cas m yp_freeze_txn sn.txn No_txn Frozen_snode then begin
                Metrics.incr m Metrics.Freezes;
                incr i
              end
          | Frozen_snode -> incr i
          | Replace repl ->
              (* Commit the pending transaction first, then re-examine. *)
              if yp_cas_slot m yp_txn_help cur !i old repl then
                Metrics.incr m Metrics.Helps
          | Removed ->
              if yp_cas_slot m yp_txn_help cur !i old Null then
                Metrics.incr m Metrics.Helps
        end
      | ANode _ as old ->
          if yp_cas_slot m yp_freeze_wrap cur !i old (FNode old) then
            Metrics.incr m Metrics.Freezes
      | LNode _ as old ->
          if yp_cas_slot m yp_freeze_wrap cur !i old (FNode old) then
            Metrics.incr m Metrics.Freezes
      | FNode (ANode an) ->
          freeze t an;
          incr i
      | FNode _ -> incr i
      | ENode en as self -> complete_expansion t self en
      | XNode xn as self -> complete_compression t self xn);
      ()
    done

  (* [self] must be the physical ENode value read from the parent slot
     (the commit CAS compares identities). *)
  and complete_expansion t (self : 'v node) (en : 'v enode) =
    freeze t en.e_narrow;
    (match Atomic.get en.e_wide with
    | Some _ -> ()
    | None ->
        let wide = new_anode wide_width in
        transfer t.config en.e_narrow wide en.e_level;
        if yp_cas t.metrics yp_expand_wide en.e_wide None (Some wide) then
          Metrics.incr t.metrics Metrics.Expansions);
    match Atomic.get en.e_wide with
    | Some wide ->
        ignore
          (yp_cas_slot t.metrics yp_expand_commit en.e_parent en.e_parentpos
             self (ANode wide))
    | None -> assert false

  and complete_compression t (self : 'v node) (xn : 'v xnode) =
    freeze t xn.x_stale;
    (match Atomic.get xn.x_repl with
    | Some _ -> ()
    | None ->
        let bindings = Slots.fold (fun acc child -> collect_frozen child acc) [] xn.x_stale in
        let repl =
          match bindings with
          | [] -> Null
          | [ (h, k, v) ] -> fresh_snode h k v
          | many ->
              let an = new_anode wide_width in
              List.iter (fun (h, k, v) -> ignore (build_into_anode t.config an xn.x_level h k v)) many;
              ANode an
        in
        if yp_cas t.metrics yp_compress_repl xn.x_repl None (Some repl) then
          Metrics.incr t.metrics Metrics.Compressions);
    match Atomic.get xn.x_repl with
    | Some repl ->
        ignore
          (yp_cas_slot t.metrics yp_compress_commit xn.x_parent xn.x_parentpos
             self repl)
    | None -> assert false

  (* ---------------------------------------------------------------- *)
  (* Cache maintenance (paper Figures 5-8).                             *)
  (* ---------------------------------------------------------------- *)

  let make_cache_level t level parent =
    let stripes = min (Domain.recommended_domain_count ()) t.config.miss_stripes in
    {
      c_level = level;
      c_entries = Array.make (1 lsl level) Null;
      c_misses = Stripe.create ~stripes ();
      c_parent = parent;
    }

  let write_entry cl (nv : 'v node) h =
    let pos = h land (Array.length cl.c_entries - 1) in
    Yp.here Yp.Before yp_cache_install;
    cl.c_entries.(pos) <- nv;
    Yp.here Yp.After yp_cache_install

  (* Install a node into the cache (paper Figure 7).  [nv] is a live
     SNode whose trie level is [lev].  With [dual_level_cache] the
     fallback level in the chain keeps being refreshed too — the
     paper's Section 7 suggestion of caching two levels at once, which
     serves both of the populated adjacent levels without the extra
     trie hop. *)
  let inhabit t (nv : 'v node) h lev =
    if t.config.enable_cache then begin
      match Atomic.get t.cache_head with
      | None ->
          if lev >= t.config.cache_trigger_level then begin
            let fresh = make_cache_level t t.config.min_cache_level None in
            if yp_cas t.metrics yp_cache_install t.cache_head None (Some fresh)
            then Metrics.incr t.metrics Metrics.Cache_installs
          end
      | Some head -> (
          if head.c_level = lev then write_entry head nv h
          else if t.config.dual_level_cache then
            match head.c_parent with
            | Some cl when cl.c_level = lev -> write_entry cl nv h
            | Some _ | None -> ())
    end

  (* [inhabit] for the ANode the traversal is standing on.  Skips both
     the [ANode] wrapper allocation and the entry store when the cache
     already points at this exact node — the steady state for every
     cache-served read, which would otherwise allocate 2 words and
     dirty the entry's cache line on each hit. *)
  let write_anode_entry cl (an : 'v anode) h =
    let pos = h land (Array.length cl.c_entries - 1) in
    match cl.c_entries.(pos) with
    | ANode a when a == an -> ()
    | _ ->
        Yp.here Yp.Before yp_cache_install;
        cl.c_entries.(pos) <- ANode an;
        Yp.here Yp.After yp_cache_install

  let inhabit_anode t (an : 'v anode) h lev =
    match Atomic.get t.cache_head with
    | None -> ()
    | Some head -> (
        if head.c_level = lev then write_anode_entry head an h
        else if t.config.dual_level_cache then
          match head.c_parent with
          | Some cl when cl.c_level = lev -> write_anode_entry cl an h
          | Some _ | None -> ())

  (* Does any cache level in the chain cover trie level [lev]? *)
  let cache_covers t lev =
    match Atomic.get t.cache_head with
    | None -> false
    | Some head -> (
        head.c_level = lev
        ||
        (t.config.dual_level_cache
        && match head.c_parent with Some cl -> cl.c_level = lev | None -> false))

  (* Walk one random path and accumulate, per level, how many SNode /
     LNode children the ANodes along the path hold (Section 3.6). *)
  (* Count the SNode/LNode children of [an] without the closure and
     ref a [Slots.iter] formulation would allocate per call (sampling
     runs inside otherwise allocation-free reads). *)
  let rec count_leaves (an : 'v anode) i acc =
    if i >= Slots.length an then acc
    else
      let acc =
        match Slots.get an i with
        | SNode _ | LNode _ -> acc + 1
        | Null | FVNode | ANode _ | FNode _ | ENode _ | XNode _ -> acc
      in
      count_leaves an (i + 1) acc

  (* Top-level recursion (a nested [let rec] capturing [hist] would
     allocate a closure per sampled path). *)
  let rec sample_walk (hist : int array) h (an : 'v anode) lev =
    let child_depth = (lev + 4) / 4 in
    if child_depth < Array.length hist then begin
      hist.(child_depth) <- hist.(child_depth) + count_leaves an 0 0;
      match Slots.get an (apos an h lev) with
      | ANode child -> sample_walk hist h child (lev + 4)
      | ENode en -> sample_walk hist h en.e_narrow (lev + 4)
      | XNode xn -> sample_walk hist h xn.x_stale (lev + 4)
      | FNode (ANode child) -> sample_walk hist h child (lev + 4)
      | Null | FVNode | SNode _ | LNode _ | FNode _ -> ()
    end

  let sample_path t rng (hist : int array) =
    sample_walk hist (Rng.next_int32 rng) t.root 0

  let chain_levels head =
    let rec go acc = function
      | None -> List.rev acc
      | Some cl -> go (cl.c_level :: acc) cl.c_parent
    in
    go [] head

  let sample_and_adjust t =
    Metrics.incr t.metrics Metrics.Sampling_passes;
    let seed = Atomic.fetch_and_add t.seed 0x61C88647 in
    let rng = Rng.create (Rng.mix64 (seed lxor (Domain.self () :> int))) in
    let hist = Array.make 10 0 in
    for _ = 1 to t.config.sample_paths do
      sample_path t rng hist
    done;
    (* Most populated pair of adjacent depths; the cache targets the
       first of the pair. *)
    let best = ref 1 and best_count = ref (-1) in
    for d = 1 to Array.length hist - 2 do
      let c = hist.(d) + hist.(d + 1) in
      if c > !best_count then begin
        best := d;
        best_count := c
      end
    done;
    let target =
      let lv = 4 * !best in
      min t.config.max_cache_level (max t.config.min_cache_level lv)
    in
    match Atomic.get t.cache_head with
    | None -> ()
    | Some head as old ->
        if head.c_level <> target then begin
          (* Keep at most one fallback level below the new head. *)
          let rec fallback c =
            match c with
            | None -> None
            | Some cl when cl.c_level < target -> Some { cl with c_parent = None }
            | Some cl -> fallback cl.c_parent
          in
          let fresh = make_cache_level t target (fallback (Some head)) in
          if yp_cas t.metrics yp_cache_adjust t.cache_head old (Some fresh) then
            Metrics.incr t.metrics Metrics.Cache_adjustments
        end

  (* Count a miss against the striped counters (paper Figure 8).  The
     stripe index comes from the domain id; [Stripe] masks it and pads
     each counter to its own cache line. *)
  let record_miss t =
    match Atomic.get t.cache_head with
    | None -> ()
    | Some cl ->
        let stripe = Rng.mix64 (Domain.self () :> int) in
        let count = Stripe.get cl.c_misses stripe in
        if count >= t.config.max_misses then begin
          Stripe.set cl.c_misses stripe 0;
          sample_and_adjust t
        end
        else Stripe.set cl.c_misses stripe (count + 1)

  let cache_level_of t =
    match Atomic.get t.cache_head with None -> -1 | Some cl -> cl.c_level

  (* Cache bookkeeping when the slow path reaches an SNode/LNode at
     pointer level [plev] (paper Figure 6, lines 9-13). *)
  let leaf_housekeeping t (leaf : 'v node) h plev =
    if t.config.enable_cache then begin
      let cl = cache_level_of t in
      if cl < 0 then inhabit t leaf h plev (* may create the cache *)
      else if plev = cl || (t.config.dual_level_cache && cache_covers t plev)
      then begin
        match leaf with SNode _ -> inhabit t leaf h plev | _ -> ()
      end
      else if plev < cl || plev > cl + 4 then record_miss t
    end

  (* ---------------------------------------------------------------- *)
  (* Reads (paper Figure 2, with Figure 6's fast path + housekeeping). *)
  (*                                                                    *)
  (* [find] is the primitive: a hit returns the value directly, a miss *)
  (* raises (notrace) — no [option] box, and no closures: the cache    *)
  (* probe is a top-level recursion over the level chain.              *)
  (* ---------------------------------------------------------------- *)

  let rec find_at t k h lev (cur : 'v anode) : 'v =
    Yp.here Yp.Before yp_read_walk;
    if t.config.enable_cache && lev > 0 && Slots.length cur = wide_width then
      inhabit_anode t cur h lev;
    match Slots.get cur (apos cur h lev) with
    | Null | FVNode -> raise_notrace Not_found
    | ANode an -> find_at t k h (lev + 4) an
    | SNode sn as leaf ->
        leaf_housekeeping t leaf h (lev + 4);
        if H.equal sn.key k then sn.value else raise_notrace Not_found
    | LNode ln as leaf ->
        leaf_housekeeping t leaf h (lev + 4);
        if ln.lhash = h then lassoc k ln.entries else raise_notrace Not_found
    | ENode en -> find_at t k h (lev + 4) en.e_narrow
    | XNode xn -> find_at t k h (lev + 4) xn.x_stale
    | FNode (ANode an) -> find_at t k h (lev + 4) an
    | FNode (LNode ln) ->
        if ln.lhash = h then lassoc k ln.entries else raise_notrace Not_found
    | FNode _ -> raise_notrace Not_found

  (* Fast read through the cache (paper Figure 6): try each cache level
     deepest-first, fall back to the root walk.  Each probed read is
     classified exactly once for the metrics registry: a {e hit} is
     served through a cache entry (directly from a cached SNode, or by
     descending from a cached ANode), a {e miss} fell through the whole
     level chain to the root walk.  This probe-level accounting is
     independent of [record_miss], whose striped counters are the
     sampling {e trigger} of paper Figure 8, reset on every pass. *)
  (* [mcur] is a {!Metrics.cursor} captured once in [find]: the bump
     itself must stay a pure array add, because a [Domain.self] C call
     here clobbers the probe's live registers and shows up directly in
     the find-overhead budget. *)
  let rec probe_find t k h mcur = function
    | None ->
        Metrics.incr_at t.metrics mcur Metrics.Cache_misses;
        find_at t k h 0 t.root
    | Some cl -> (
        let pos = h land (Array.length cl.c_entries - 1) in
        match cl.c_entries.(pos) with
        | SNode sn -> (
            match Atomic.get sn.txn with
            | No_txn ->
                Metrics.incr_at t.metrics mcur Metrics.Cache_hits;
                if H.equal sn.key k then sn.value else raise_notrace Not_found
            | Frozen_snode | Replace _ | Removed ->
                probe_find t k h mcur cl.c_parent)
        | ANode an -> (
            let cpos = (h lsr cl.c_level) land (Slots.length an - 1) in
            match Slots.get an cpos with
            | FVNode | FNode _ -> probe_find t k h mcur cl.c_parent
            | SNode s2
              when (match Atomic.get s2.txn with
                   | Frozen_snode -> true
                   | No_txn | Replace _ | Removed -> false) ->
                probe_find t k h mcur cl.c_parent
            | Null | SNode _ | ANode _ | LNode _ | ENode _ | XNode _ ->
                Metrics.incr_at t.metrics mcur Metrics.Cache_hits;
                find_at t k h cl.c_level an)
        | Null | FVNode | LNode _ | FNode _ | ENode _ | XNode _ ->
            probe_find t k h mcur cl.c_parent)

  let find t k =
    let h = hash_of k in
    match Atomic.get t.cache_head with
    | None -> find_at t k h 0 t.root
    | Some _ as head -> probe_find t k h (Metrics.cursor t.metrics) head

  let lookup t k = match find t k with v -> Some v | exception Not_found -> None
  let mem t k = match find t k with _ -> true | exception Not_found -> false

  (* ---------------------------------------------------------------- *)
  (* Updates (paper Figure 3 generalized to put/putIfAbsent/replace/   *)
  (* remove).                                                           *)
  (* ---------------------------------------------------------------- *)

  (* Three-way result instead of [Done of 'v option]: the common "hit"
     outcome carries the previous value unboxed, and callers that
     discard the previous value ([insert], [replace_if], [remove_if])
     never materialize an option at all. *)
  type 'v outcome = Done_none | Done_some of 'v | Restart

  let done_of_opt = function None -> Done_none | Some v -> Done_some v

  type 'v mode =
    | Always  (** JDK put *)
    | If_absent  (** JDK putIfAbsent *)
    | If_present  (** JDK replace(k,v) *)
    | If_value of 'v  (** JDK replace(k,old,new): physical equality on the old value *)

  (* Announce a transaction on [old] and commit it into slot [pos] of
     [cur].  [old_node] must be the value physically read from the slot
     (CAS compares identities).  The first CAS invalidates cache
     entries pointing at [old]; the second publishes the change in the
     trie. *)
  let announce_and_commit m (cur : 'v anode) pos (old : 'v snode)
      (old_node : 'v node) txn_value repl =
    if yp_cas m yp_txn_announce old.txn No_txn txn_value then begin
      ignore (yp_cas_slot m yp_txn_commit cur pos old_node repl);
      true
    end
    else false

  let rec insert_at t k v h lev (cur : 'v anode) (prev : 'v anode option) mode :
      'v outcome =
    if t.config.enable_cache && lev > 0 && Slots.length cur = wide_width then
      inhabit_anode t cur h lev;
    let pos = apos cur h lev in
    match Slots.get cur pos with
    | Null -> (
        match mode with
        | If_present | If_value _ -> Done_none
        | Always | If_absent ->
            if
              yp_cas_slot t.metrics yp_insert_null cur pos Null
                (fresh_snode h k v)
            then Done_none
            else insert_at t k v h lev cur prev mode)
    | ANode an -> insert_at t k v h (lev + 4) an (Some cur) mode
    | SNode old as old_node -> begin
        match Atomic.get old.txn with
        | No_txn ->
            leaf_housekeeping t old_node h (lev + 4);
            if H.equal old.key k then begin
              match mode with
              | If_absent -> Done_some old.value
              | If_value expected when old.value != expected -> Done_some old.value
              | Always | If_present | If_value _ ->
                  let repl = fresh_snode h k v in
                  if
                    announce_and_commit t.metrics cur pos old old_node
                      (Replace repl) repl
                  then Done_some old.value
                  else insert_at t k v h lev cur prev mode
            end
            else if (match mode with If_present | If_value _ -> true | Always | If_absent -> false)
            then Done_none
            else if old.hash = h && not (is_narrow cur) then begin
              (* Full hash collision: replace the SNode with an LNode.
                 Narrow nodes expand first, so LNodes (and ANode
                 children) only ever live inside wide nodes. *)
              let ln = LNode { lhash = h; entries = [ (k, v); (old.key, old.value) ] } in
              if announce_and_commit t.metrics cur pos old old_node (Replace ln) ln
              then Done_none
              else insert_at t k v h lev cur prev mode
            end
            else if is_narrow cur then begin
              (* Narrow node must be expanded first (scenario 3). *)
              match prev with
              | None -> Restart (* fast path entered here without a parent *)
              | Some parent -> (
                  let ppos = apos parent h (lev - 4) in
                  (* CAS compares physical identity, so re-read the
                     parent slot to obtain the exact node wrapping
                     [cur]. *)
                  match Slots.get parent ppos with
                  | ANode a as pnode when a == cur ->
                      let en =
                        {
                          e_parent = parent;
                          e_parentpos = ppos;
                          e_narrow = cur;
                          e_level = lev;
                          e_wide = Atomic.make None;
                        }
                      in
                      let self = ENode en in
                      if
                        yp_cas_slot t.metrics yp_expand_publish parent ppos
                          pnode self
                      then begin
                        complete_expansion t self en;
                        match Slots.get parent ppos with
                        | ANode wide -> insert_at t k v h lev wide (Some parent) mode
                        | _ -> Restart
                      end
                      else Restart
                  | ENode e as self ->
                      Metrics.incr t.metrics Metrics.Helps;
                      complete_expansion t self e;
                      Restart
                  | XNode x as self ->
                      Metrics.incr t.metrics Metrics.Helps;
                      complete_compression t self x;
                      Restart
                  | _ -> Restart)
            end
            else begin
              (* Wide node: push both bindings one level down. *)
              let child = join_disjoint t.config old.hash old.key old.value h k v (lev + 4) in
              if
                announce_and_commit t.metrics cur pos old old_node
                  (Replace child) child
              then Done_none
              else insert_at t k v h lev cur prev mode
            end
        | Frozen_snode -> Restart
        | Replace repl ->
            if yp_cas_slot t.metrics yp_txn_help cur pos old_node repl then
              Metrics.incr t.metrics Metrics.Helps;
            insert_at t k v h lev cur prev mode
        | Removed ->
            if yp_cas_slot t.metrics yp_txn_help cur pos old_node Null then
              Metrics.incr t.metrics Metrics.Helps;
            insert_at t k v h lev cur prev mode
      end
    | LNode ln as old_node ->
        if ln.lhash = h then begin
          let previous = lassoc_opt k ln.entries in
          let proceed =
            match (mode, previous) with
            | If_absent, Some _ -> false
            | (If_present | If_value _), None -> false
            | If_value expected, Some p -> p == expected
            | (Always | If_absent | If_present), _ -> true
          in
          if not proceed then done_of_opt previous
          else begin
            let entries = (k, v) :: lremove_assoc k ln.entries in
            let fresh = LNode { ln with entries } in
            if yp_cas_slot t.metrics yp_insert_lnode cur pos old_node fresh then
              done_of_opt previous
            else insert_at t k v h lev cur prev mode
          end
        end
        else if (match mode with If_present | If_value _ -> true | Always | If_absent -> false)
        then Done_none
        else begin
          (* Different hash shares this slot prefix: grow downward. *)
          let child = new_anode wide_width in
          let lpos = (ln.lhash lsr (lev + 4)) land (wide_width - 1) in
          Slots.set child lpos old_node;
          let repl = build_into_anode t.config child (lev + 4) h k v in
          if yp_cas_slot t.metrics yp_insert_lnode cur pos old_node repl then
            Done_none
          else insert_at t k v h lev cur prev mode
        end
    | ENode en as self ->
        Metrics.incr t.metrics Metrics.Helps;
        complete_expansion t self en;
        insert_at t k v h lev cur prev mode
    | XNode xn as self ->
        Metrics.incr t.metrics Metrics.Helps;
        complete_compression t self xn;
        insert_at t k v h lev cur prev mode
    | FVNode | FNode _ -> Restart

  (* Attempt compression of [cur] (which just lost an entry) into its
     parent (Section 3.7).  Best effort: triggers when the node looks
     empty, or holds a single leaf (SNode or LNode), which the rebuild
     lifts one level up — this is what lets survivors float back
     towards the root after mass removals, so that depth sampling can
     move the cache to a shallower level.  The freeze + rebuild inside
     complete_compression recomputes the truth, so a stale trigger is
     harmless. *)
  let try_compress t (cur : 'v anode) lev h (prev : 'v anode option) =
    match prev with
    | None -> ()
    | Some parent ->
        if lev > 0 then begin
          let live = ref 0 and only_leaves = ref true in
          Slots.iter
            (fun child ->
              match child with
              | Null -> ()
              | SNode _ | LNode _ -> incr live
              | ANode _ | FVNode | FNode _ | ENode _ | XNode _ ->
                  incr live;
                  only_leaves := false)
            cur;
          if !live = 0 || (!live = 1 && !only_leaves) then begin
            let ppos = apos parent h (lev - 4) in
            match Slots.get parent ppos with
            | ANode a as pnode when a == cur ->
                let xn =
                  {
                    x_parent = parent;
                    x_parentpos = ppos;
                    x_stale = cur;
                    x_level = lev;
                    x_repl = Atomic.make None;
                  }
                in
                let self = XNode xn in
                if yp_cas_slot t.metrics yp_compress_publish parent ppos pnode self
                then complete_compression t self xn
            | _ -> ()
          end
        end

  (* [rmode] mirrors the JDK remove variants: unconditional, or only
     when the current value is physically [expected]. *)
  let rmode_allows rmode v =
    match rmode with `Always -> true | `If_value expected -> v == expected

  let rec remove_at t k h lev (cur : 'v anode) (prev : 'v anode option) rmode :
      'v outcome =
    let pos = apos cur h lev in
    match Slots.get cur pos with
    | Null -> Done_none
    | ANode an ->
        let res = remove_at t k h (lev + 4) an (Some cur) rmode in
        (* Cascade compaction up the removal path: the child may have
           contracted into [cur], leaving [cur] itself with at most one
           leaf. *)
        (match res with
        | Done_some _ -> try_compress t cur lev h prev
        | Done_none | Restart -> ());
        res
    | SNode old as old_node -> begin
        match Atomic.get old.txn with
        | No_txn ->
            if not (H.equal old.key k) then Done_none
            else if not (rmode_allows rmode old.value) then Done_some old.value
            else if
              announce_and_commit t.metrics cur pos old old_node Removed Null
            then begin
              try_compress t cur lev h prev;
              Done_some old.value
            end
            else remove_at t k h lev cur prev rmode
        | Frozen_snode -> Restart
        | Replace repl ->
            if yp_cas_slot t.metrics yp_txn_help cur pos old_node repl then
              Metrics.incr t.metrics Metrics.Helps;
            remove_at t k h lev cur prev rmode
        | Removed ->
            if yp_cas_slot t.metrics yp_txn_help cur pos old_node Null then
              Metrics.incr t.metrics Metrics.Helps;
            remove_at t k h lev cur prev rmode
      end
    | LNode ln as old_node ->
        if ln.lhash <> h then Done_none
        else begin
          match lassoc_opt k ln.entries with
          | None -> Done_none
          | Some prev_v when not (rmode_allows rmode prev_v) -> Done_some prev_v
          | Some prev_v ->
              let entries = lremove_assoc k ln.entries in
              (* Contract on the way down: a surviving singleton becomes
                 a plain SNode and an emptied list becomes Null — an
                 LNode with fewer than 2 entries must never be
                 published ([validate] rejects it as residue). *)
              let fresh =
                match entries with
                | [] -> Null
                | [ (k1, v1) ] -> fresh_snode ln.lhash k1 v1
                | _ -> LNode { ln with entries }
              in
              if yp_cas_slot t.metrics yp_remove_lnode cur pos old_node fresh
              then begin
                (* The contraction may have left [cur] holding a single
                   leaf (or nothing): cascade compaction exactly like
                   the SNode removal path does. *)
                try_compress t cur lev h prev;
                Done_some prev_v
              end
              else remove_at t k h lev cur prev rmode
        end
    | ENode en as self ->
        Metrics.incr t.metrics Metrics.Helps;
        complete_expansion t self en;
        remove_at t k h lev cur prev rmode
    | XNode xn as self ->
        Metrics.incr t.metrics Metrics.Helps;
        complete_compression t self xn;
        remove_at t k h lev cur prev rmode
    | FVNode | FNode _ -> Restart

  (* Cache-probed fast paths for updates (paper Figure 6 applied to
     updates): walk the cache chain for a wide ANode whose relevant
     slot is not frozen and start the operation there.  Fused with the
     operation drivers so the probe allocates nothing (the previous
     shape returned [('v anode * int) option] — a tuple and an option
     per update). *)
  let rec probe_insert t k v h mode = function
    | None -> insert_at t k v h 0 t.root None mode
    | Some cl -> (
        let pos = h land (Array.length cl.c_entries - 1) in
        match cl.c_entries.(pos) with
        | ANode an -> (
            let cpos = (h lsr cl.c_level) land (Slots.length an - 1) in
            match Slots.get an cpos with
            | FVNode | FNode _ -> probe_insert t k v h mode cl.c_parent
            | SNode s2
              when (match Atomic.get s2.txn with
                   | Frozen_snode -> true
                   | No_txn | Replace _ | Removed -> false) ->
                probe_insert t k v h mode cl.c_parent
            | Null | SNode _ | ANode _ | LNode _ | ENode _ | XNode _ ->
                insert_at t k v h cl.c_level an None mode)
        | Null | FVNode | SNode _ | LNode _ | FNode _ | ENode _ | XNode _ ->
            probe_insert t k v h mode cl.c_parent)

  let rec insert_slow t k v h mode =
    match insert_at t k v h 0 t.root None mode with
    | Restart -> insert_slow t k v h mode
    | res -> res

  (* Never returns [Restart]. *)
  let update_outcome t k v mode : 'v outcome =
    let h = hash_of k in
    let first =
      match Atomic.get t.cache_head with
      | None -> insert_at t k v h 0 t.root None mode
      | Some _ as head -> probe_insert t k v h mode head
    in
    match first with Restart -> insert_slow t k v h mode | res -> res

  let update t k v mode : 'v option =
    match update_outcome t k v mode with
    | Done_none -> None
    | Done_some p -> Some p
    | Restart -> assert false

  let insert t k v = ignore (update_outcome t k v Always)
  let add t k v = update t k v Always
  let put_if_absent t k v = update t k v If_absent
  let replace t k v = update t k v If_present

  let replace_if t k ~expected v =
    match update_outcome t k v (If_value expected) with
    | Done_some p -> p == expected
    | Done_none | Restart -> false

  let rec probe_remove t k h rmode = function
    | None -> remove_at t k h 0 t.root None rmode
    | Some cl -> (
        let pos = h land (Array.length cl.c_entries - 1) in
        match cl.c_entries.(pos) with
        | ANode an -> (
            let cpos = (h lsr cl.c_level) land (Slots.length an - 1) in
            match Slots.get an cpos with
            | FVNode | FNode _ -> probe_remove t k h rmode cl.c_parent
            | SNode s2
              when (match Atomic.get s2.txn with
                   | Frozen_snode -> true
                   | No_txn | Replace _ | Removed -> false) ->
                probe_remove t k h rmode cl.c_parent
            | Null | SNode _ | ANode _ | LNode _ | ENode _ | XNode _ ->
                remove_at t k h cl.c_level an None rmode)
        | Null | FVNode | SNode _ | LNode _ | FNode _ | ENode _ | XNode _ ->
            probe_remove t k h rmode cl.c_parent)

  let rec remove_slow t k h rmode =
    match remove_at t k h 0 t.root None rmode with
    | Restart -> remove_slow t k h rmode
    | res -> res

  let remove_outcome t k rmode : 'v outcome =
    let h = hash_of k in
    let first =
      match Atomic.get t.cache_head with
      | None -> remove_at t k h 0 t.root None rmode
      | Some _ as head -> probe_remove t k h rmode head
    in
    match first with Restart -> remove_slow t k h rmode | res -> res

  let remove t k =
    match remove_outcome t k `Always with
    | Done_none -> None
    | Done_some p -> Some p
    | Restart -> assert false

  let remove_if t k ~expected =
    match remove_outcome t k (`If_value expected) with
    | Done_some p -> p == expected
    | Done_none | Restart -> false

  (* ---------------------------------------------------------------- *)
  (* Batch operations (DESIGN.md §13): staged lockstep traversals.      *)
  (*                                                                    *)
  (* A chunk of up to [chunk_cap] keys walks the trie one level at a    *)
  (* time, all keys together: pass A issues a prefetch hint for every   *)
  (* active key's next slot, pass B dispatches on the (by then likely   *)
  (* resident) slots.  Each key's read sequence is exactly the scalar   *)
  (* walk's, merely interleaved with other keys' reads, so every       *)
  (* per-key result is linearizable exactly as the scalar operation     *)
  (* is; there is no atomicity across the batch.                        *)
  (* ---------------------------------------------------------------- *)

  let scratch_make t =
    {
      s_h = Array.make chunk_cap 0;
      s_lev = Array.make chunk_cap 0;
      s_cur = Array.make chunk_cap t.root;
      s_prev = Array.make chunk_cap t.root;
      s_act = Array.make chunk_cap 0;
      s_nact = 0;
      s_hits = 0;
    }

  (* Take/release through [Atomic.exchange]: if two sys-threads on one
     domain ever race for the slot, the loser just allocates a fresh
     scratch — correctness never depends on the pool. *)
  let scratch_take t =
    let slot = (Domain.self () :> int) land (Array.length t.scratch_pool - 1) in
    let s = Atomic.exchange t.scratch_pool.(slot) t.scratch_dummy in
    if Array.length s.s_h = chunk_cap then s else scratch_make t

  let scratch_release t s =
    let slot = (Domain.self () :> int) land (Array.length t.scratch_pool - 1) in
    Atomic.set t.scratch_pool.(slot) s

  (* Out-of-line helpers for the lockstep loops (module-level so the
     loops allocate no closures). *)
  let step_descend scr p an lev =
    scr.s_cur.(p) <- an;
    scr.s_lev.(p) <- lev;
    scr.s_act.(scr.s_nact) <- p;
    scr.s_nact <- scr.s_nact + 1

  let step_hit scr (out : 'v array) base p (v : 'v) =
    out.(base + p) <- v;
    scr.s_hits <- scr.s_hits + 1

  (* Mirror of [probe_find] for chunk position [p]: instead of
     completing the walk it records the (anode, level) the lockstep
     walk starts from — or resolves the key outright from a cached
     SNode (s_lev stays -1). *)
  let rec probe_start t scr (keys : key array) base (out : 'v array) miss mcur
      p chain =
    match chain with
    | None ->
        Metrics.incr_at t.metrics mcur Metrics.Cache_misses;
        scr.s_cur.(p) <- t.root;
        scr.s_lev.(p) <- 0
    | Some cl -> (
        let h = scr.s_h.(p) in
        let pos = h land (Array.length cl.c_entries - 1) in
        match cl.c_entries.(pos) with
        | SNode sn -> (
            match Atomic.get sn.txn with
            | No_txn ->
                Metrics.incr_at t.metrics mcur Metrics.Cache_hits;
                if H.equal sn.key keys.(base + p) then
                  step_hit scr out base p sn.value
                else out.(base + p) <- miss
            | Frozen_snode | Replace _ | Removed ->
                probe_start t scr keys base out miss mcur p cl.c_parent)
        | ANode an -> (
            let cpos = (h lsr cl.c_level) land (Slots.length an - 1) in
            match Slots.get an cpos with
            | FVNode | FNode _ ->
                probe_start t scr keys base out miss mcur p cl.c_parent
            | SNode s2
              when (match Atomic.get s2.txn with
                   | Frozen_snode -> true
                   | No_txn | Replace _ | Removed -> false) ->
                probe_start t scr keys base out miss mcur p cl.c_parent
            | Null | SNode _ | ANode _ | LNode _ | ENode _ | XNode _ ->
                Metrics.incr_at t.metrics mcur Metrics.Cache_hits;
                scr.s_cur.(p) <- an;
                scr.s_lev.(p) <- cl.c_level)
        | Null | FVNode | LNode _ | FNode _ | ENode _ | XNode _ ->
            probe_start t scr keys base out miss mcur p cl.c_parent)

  (* One staged chunk of reads.  Per-key dispatch is [find_at]
     unrolled: same cases, same housekeeping, same metrics. *)
  let find_chunk t (keys : key array) base n ~miss (out : 'v array) scr =
    let head = Atomic.get t.cache_head in
    (* Stage 0: hashes, plus a hint for each key's cache cell — on a
       multi-megabyte cache level the entry array cell itself is the
       expected miss, so hint the cell address without reading it. *)
    (match head with
    | None ->
        for p = 0 to n - 1 do
          scr.s_h.(p) <- hash_of keys.(base + p);
          scr.s_cur.(p) <- t.root;
          scr.s_lev.(p) <- 0
        done
    | Some cl ->
        for p = 0 to n - 1 do
          let h = hash_of keys.(base + p) in
          scr.s_h.(p) <- h;
          scr.s_lev.(p) <- -1;
          Prefetch.cell cl.c_entries (h land (Array.length cl.c_entries - 1))
        done;
        let mcur = Metrics.cursor t.metrics in
        for p = 0 to n - 1 do
          probe_start t scr keys base out miss mcur p head
        done);
    scr.s_nact <- 0;
    for p = 0 to n - 1 do
      if scr.s_lev.(p) >= 0 then begin
        scr.s_act.(scr.s_nact) <- p;
        scr.s_nact <- scr.s_nact + 1
      end
    done;
    while scr.s_nact > 0 do
      let nact = scr.s_nact in
      (* Pass A: hint every active key's next slot. *)
      for j = 0 to nact - 1 do
        let p = scr.s_act.(j) in
        let cur = scr.s_cur.(p) in
        Slots.prefetch cur (apos cur scr.s_h.(p) scr.s_lev.(p))
      done;
      (* Pass B: one [find_at] level step per key; survivors compact
         into the prefix of [s_act] (writes trail reads, so in-place
         is safe). *)
      scr.s_nact <- 0;
      for j = 0 to nact - 1 do
        let p = scr.s_act.(j) in
        let cur = scr.s_cur.(p) in
        let h = scr.s_h.(p) in
        let lev = scr.s_lev.(p) in
        let k = keys.(base + p) in
        Yp.here Yp.Before yp_read_walk;
        if t.config.enable_cache && lev > 0 && Slots.length cur = wide_width
        then inhabit_anode t cur h lev;
        match Slots.get cur (apos cur h lev) with
        | Null | FVNode -> out.(base + p) <- miss
        | ANode an ->
            Prefetch.read an;
            step_descend scr p an (lev + 4)
        | SNode sn as leaf ->
            leaf_housekeeping t leaf h (lev + 4);
            if H.equal sn.key k then step_hit scr out base p sn.value
            else out.(base + p) <- miss
        | LNode ln as leaf ->
            leaf_housekeeping t leaf h (lev + 4);
            if ln.lhash = h then (
              match lassoc k ln.entries with
              | v -> step_hit scr out base p v
              | exception Not_found -> out.(base + p) <- miss)
            else out.(base + p) <- miss
        | ENode en ->
            Prefetch.read en.e_narrow;
            step_descend scr p en.e_narrow (lev + 4)
        | XNode xn ->
            Prefetch.read xn.x_stale;
            step_descend scr p xn.x_stale (lev + 4)
        | FNode (ANode an) ->
            Prefetch.read an;
            step_descend scr p an (lev + 4)
        | FNode (LNode ln) ->
            if ln.lhash = h then (
              match lassoc k ln.entries with
              | v -> step_hit scr out base p v
              | exception Not_found -> out.(base + p) <- miss)
            else out.(base + p) <- miss
        | FNode _ -> out.(base + p) <- miss
      done
    done

  (* Module-level recursion instead of a [ref] cursor: the chunk loop
     itself must not allocate (the 0-words/op budget of DESIGN.md §13
     covers the whole call). *)
  let rec find_chunks t keys base n ~miss out scr =
    if base < n then begin
      let cn = min chunk_cap (n - base) in
      find_chunk t keys base cn ~miss out scr;
      find_chunks t keys (base + cn) n ~miss out scr
    end

  let find_batch t keys ~miss out =
    let n = Array.length keys in
    if Array.length out < n then
      invalid_arg "find_batch: out array shorter than keys";
    let scr = scratch_take t in
    scr.s_hits <- 0;
    find_chunks t keys 0 n ~miss out scr;
    let hits = scr.s_hits in
    scratch_release t scr;
    hits

  (* Locate pass for batched updates: walk each key down in lockstep
     with prefetch for as long as the slot holds a plain ANode child —
     the only step a scalar update would take without acting — and
     leave (s_cur, s_lev, s_prev) at the stop point.  The finishing
     call re-reads the stop slot and handles every transition
     ([Restart] falls back to the root retry, like the scalar cache
     probe does); tracking the real parent keeps the expansion and
     compression paths available, which the scalar fast path (probe
     with [prev = None]) has to give up. *)
  let locate_chunk t (keys : key array) base n scr =
    for p = 0 to n - 1 do
      scr.s_h.(p) <- hash_of keys.(base + p);
      scr.s_lev.(p) <- 0;
      scr.s_cur.(p) <- t.root;
      scr.s_prev.(p) <- t.root;
      scr.s_act.(p) <- p
    done;
    scr.s_nact <- n;
    while scr.s_nact > 0 do
      let nact = scr.s_nact in
      for j = 0 to nact - 1 do
        let p = scr.s_act.(j) in
        let cur = scr.s_cur.(p) in
        Slots.prefetch cur (apos cur scr.s_h.(p) scr.s_lev.(p))
      done;
      scr.s_nact <- 0;
      for j = 0 to nact - 1 do
        let p = scr.s_act.(j) in
        let cur = scr.s_cur.(p) in
        let h = scr.s_h.(p) in
        match Slots.get cur (apos cur h scr.s_lev.(p)) with
        | ANode an ->
            Prefetch.read an;
            scr.s_prev.(p) <- cur;
            step_descend scr p an (scr.s_lev.(p) + 4)
        | Null | FVNode | SNode _ | LNode _ | FNode _ | ENode _ | XNode _ ->
            ()
      done
    done

  let rec insert_chunks t (keys : key array) (vals : 'v array) base n scr =
    if base < n then begin
      let cn = min chunk_cap (n - base) in
      locate_chunk t keys base cn scr;
      for p = 0 to cn - 1 do
        let k = keys.(base + p) and v = vals.(base + p) in
        let h = scr.s_h.(p) and lev = scr.s_lev.(p) in
        let first =
          if lev = 0 then insert_at t k v h 0 t.root None Always
          else insert_at t k v h lev scr.s_cur.(p) (Some scr.s_prev.(p)) Always
        in
        match first with
        | Restart -> ignore (insert_slow t k v h Always)
        | Done_none | Done_some _ -> ()
      done;
      insert_chunks t keys vals (base + cn) n scr
    end

  let insert_batch t keys vals =
    let n = Array.length keys in
    if Array.length vals <> n then
      invalid_arg "insert_batch: keys and vals differ in length";
    let scr = scratch_take t in
    insert_chunks t keys vals 0 n scr;
    scratch_release t scr

  let rec remove_chunks t (keys : key array) base n scr =
    if base < n then begin
      let cn = min chunk_cap (n - base) in
      locate_chunk t keys base cn scr;
      for p = 0 to cn - 1 do
        let k = keys.(base + p) in
        let h = scr.s_h.(p) and lev = scr.s_lev.(p) in
        let first =
          if lev = 0 then remove_at t k h 0 t.root None `Always
          else remove_at t k h lev scr.s_cur.(p) (Some scr.s_prev.(p)) `Always
        in
        let res =
          match first with Restart -> remove_slow t k h `Always | r -> r
        in
        match res with
        | Done_some _ -> scr.s_hits <- scr.s_hits + 1
        | Done_none -> ()
        | Restart -> assert false
      done;
      remove_chunks t keys (base + cn) n scr
    end

  let remove_batch t keys =
    let scr = scratch_take t in
    scr.s_hits <- 0;
    remove_chunks t keys 0 (Array.length keys) scr;
    let removed = scr.s_hits in
    scratch_release t scr;
    removed

  (* ---------------------------------------------------------------- *)
  (* Aggregate queries (weakly consistent).                             *)
  (* ---------------------------------------------------------------- *)

  let fold f acc t =
    let rec go_node acc (node : 'v node) =
      match node with
      | Null | FVNode -> acc
      | SNode sn -> (
          match Atomic.get sn.txn with
          | Removed -> acc
          | Replace repl -> go_node acc repl
          | No_txn | Frozen_snode -> f acc sn.key sn.value)
      | LNode ln -> List.fold_left (fun acc (k, v) -> f acc k v) acc ln.entries
      | FNode inner -> go_node acc inner
      | ANode an -> Slots.fold go_node acc an
      | ENode en -> go_node acc (ANode en.e_narrow)
      | XNode xn -> go_node acc (ANode xn.x_stale)
    in
    go_node acc (ANode t.root)

  let iter f t = fold (fun () k v -> f k v) () t
  let size t = fold (fun n _ _ -> n + 1) 0 t
  let is_empty t = size t = 0
  let to_list t = fold (fun acc k v -> (k, v) :: acc) [] t

  (* Lazy, weakly consistent iteration: slots are read on demand, so an
     unconsumed suffix observes later updates. *)
  let to_seq t =
    let rec seq_node (node : 'v node) (rest : (key * 'v) Seq.t) () =
      match node with
      | Null | FVNode -> rest ()
      | SNode sn -> (
          match Atomic.get sn.txn with
          | Removed -> rest ()
          | Replace repl -> seq_node repl rest ()
          | No_txn | Frozen_snode -> Seq.Cons ((sn.key, sn.value), rest))
      | LNode ln -> Seq.append (List.to_seq ln.entries) rest ()
      | FNode inner -> seq_node inner rest ()
      | ANode an -> seq_slots an 0 rest ()
      | ENode en -> seq_slots en.e_narrow 0 rest ()
      | XNode xn -> seq_slots xn.x_stale 0 rest ()
    and seq_slots (an : 'v anode) i rest () =
      if i >= Slots.length an then rest ()
      else seq_node (Slots.get an i) (seq_slots an (i + 1) rest) ()
    in
    seq_slots t.root 0 Seq.empty

  (* ---------------------------------------------------------------- *)
  (* Introspection: statistics, histograms, footprint, validation.     *)
  (* ---------------------------------------------------------------- *)

  (* Cache-trie-specific view over the metrics registry, plus the cache
     chain shape (which no generic counter can express). *)
  let cache_stats t =
    let head = Atomic.get t.cache_head in
    {
      cache_level = (match head with None -> None | Some cl -> Some cl.c_level);
      cache_chain = chain_levels head;
      expansions = Metrics.get t.metrics Metrics.Expansions;
      compressions = Metrics.get t.metrics Metrics.Compressions;
      sampling_passes = Metrics.get t.metrics Metrics.Sampling_passes;
      cache_installs = Metrics.get t.metrics Metrics.Cache_installs;
      cache_adjustments = Metrics.get t.metrics Metrics.Cache_adjustments;
    }

  let metrics t = t.metrics
  let stats t = Metrics.snapshot t.metrics
  let reset_stats t = Metrics.reset t.metrics

  (* Histogram of key depths: slot [d] counts keys whose SNode sits at
     pointer level [4d] (used by the artifact's BirthdaySimulations). *)
  let depth_histogram t =
    let hist = Array.make 10 0 in
    let bump depth count =
      let d = min depth (Array.length hist - 1) in
      hist.(d) <- hist.(d) + count
    in
    let rec go (node : 'v node) depth =
      match node with
      | Null | FVNode -> ()
      | SNode _ -> bump depth 1
      | LNode ln -> bump depth (List.length ln.entries)
      | FNode inner -> go inner depth
      | ANode an -> Slots.iter (fun child -> go child (depth + 1)) an
      | ENode en -> go (ANode en.e_narrow) depth
      | XNode xn -> go (ANode xn.x_stale) depth
    in
    Slots.iter (fun child -> go child 1) t.root;
    hist

  (* Word-cost model (see DESIGN.md): array = 1 + length; per-slot
     overhead = Slots.overhead_words_per_slot (2 for the boxed layout's
     Atomic box, 0 flat); SNode block = 5 (+ its txn box); list cell =
     3; LNode = 3. *)
  let footprint_words t =
    let rec node_words (node : 'v node) =
      match node with
      | Null | FVNode -> 0
      | SNode _ -> 5 + 2
      | LNode ln -> 3 + (3 * List.length ln.entries)
      | FNode inner -> 2 + node_words inner
      | ANode an ->
          Slots.fold
            (fun acc child -> acc + Slots.overhead_words_per_slot + node_words child)
            (1 + Slots.length an)
            an
      | ENode en -> 6 + node_words (ANode en.e_narrow)
      | XNode xn -> 6 + node_words (ANode xn.x_stale)
    in
    let cache_words =
      let rec go = function
        | None -> 0
        | Some cl ->
            1 + Array.length cl.c_entries
            + Stripe.footprint_words cl.c_misses
            + 4
            + go cl.c_parent
      in
      go (Atomic.get t.cache_head)
    in
    node_words (ANode t.root) + cache_words + 8

  (* ---------------------------------------------------------------- *)
  (* Cache coherence helpers, shared by [validate] and [scrub].        *)
  (* ---------------------------------------------------------------- *)

  (* The node the root walk stands on at pointer level [target] when
     following the index bits of [pos] — i.e. what a slow-path read of
     any hash whose low [target] bits equal [pos] would reach.
     Descriptors and freeze wrappers are looked through, like the read
     path does. *)
  let node_at t pos target =
    let rec go (node : 'v node) lev =
      match node with
      | ENode en -> go (ANode en.e_narrow) lev
      | XNode xn -> go (ANode xn.x_stale) lev
      | FNode inner -> go inner lev
      | ANode an when lev < target ->
          go (Slots.get an ((pos lsr lev) land (Slots.length an - 1))) (lev + 4)
      | node -> if lev = target then Some node else None
    in
    go (ANode t.root) 0

  (* A detached ANode is benign in the cache only if it is fully
     frozen: the probe fast path then rejects every slot on its own
     (FVNode/FNode/frozen-SNode all fall through to the parent level).
     Any live-looking slot in a detached node could serve stale data. *)
  let frozen_anode (an : 'v anode) =
    let ok = ref true in
    Slots.iter
      (fun child ->
        match child with
        | FVNode | FNode _ -> ()
        | SNode sn -> (
            match Atomic.get sn.txn with
            | Frozen_snode -> ()
            | No_txn | Replace _ | Removed -> ok := false)
        | Null | ANode _ | LNode _ | ENode _ | XNode _ -> ok := false)
      an;
    !ok

  (* Coherence of one cache entry, shared by [validate] (report) and
     [scrub] (clear).  [Ok] = still reachable at the recorded level;
     [Stale] = detached but self-invalidating (the probe rejects it);
     [Broken] = live-looking yet detached — would serve stale data. *)
  type coherence = Co_ok | Co_stale | Co_broken of string

  let entry_coherence t level pos (entry : 'v node) =
    match entry with
    | Null -> Co_ok
    | SNode sn -> (
        match node_at t pos level with
        | Some (SNode s) when s == sn -> Co_ok
        | _ -> (
            match Atomic.get sn.txn with
            | No_txn -> Co_broken "live SNode detached from the trie"
            | Frozen_snode | Replace _ | Removed -> Co_stale))
    | ANode an -> (
        match node_at t pos level with
        | Some (ANode a) when a == an -> Co_ok
        | _ -> if frozen_anode an then Co_stale else Co_broken "live ANode detached from the trie")
    | LNode _ -> Co_stale (* dead weight: the probe never uses LNode entries *)
    | FVNode | FNode _ | ENode _ | XNode _ ->
        Co_broken "cache entry holds a freeze marker or descriptor"

  (* Structural invariant checker used by the property tests.  Only
     meaningful during quiescence. *)
  let validate t =
    let errors = ref [] in
    let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
    (* [prefix]/[pmask] are the hash bits determined by the path so far
       (narrow nodes determine only 2 of their 4 level bits). *)
    let check_hash what h lev prefix pmask =
      if h land pmask <> prefix then
        err "%s at level %d violates the prefix invariant (hash %#x, prefix %#x, mask %#x)"
          what lev h prefix pmask
    in
    let rec go (node : 'v node) lev prefix pmask in_narrow =
      match node with
      | Null -> ()
      | FVNode -> err "FVNode reachable at level %d during quiescence" lev
      | FNode _ -> err "FNode reachable at level %d during quiescence" lev
      | ENode _ -> err "ENode reachable at level %d during quiescence" lev
      | XNode _ -> err "XNode reachable at level %d during quiescence" lev
      | SNode sn -> begin
          if sn.hash <> hash_of sn.key then
            err "SNode hash %#x does not match key hash %#x" sn.hash (hash_of sn.key);
          check_hash "SNode" sn.hash lev prefix pmask;
          match Atomic.get sn.txn with
          | No_txn -> ()
          | Frozen_snode -> err "frozen SNode reachable during quiescence"
          | Replace _ -> err "SNode with pending Replace during quiescence"
          | Removed -> err "SNode with pending Removed during quiescence"
        end
      | LNode ln ->
          if in_narrow then err "LNode stored inside a narrow ANode";
          if List.length ln.entries < 2 then err "LNode with fewer than 2 entries";
          check_hash "LNode" ln.lhash lev prefix pmask;
          List.iter
            (fun (k, _) ->
              if hash_of k <> ln.lhash then err "LNode entry with mismatched hash")
            ln.entries
      | ANode an ->
          if in_narrow then err "ANode stored inside a narrow ANode"
          else begin
            let w = Slots.length an in
            if w <> narrow_width && w <> wide_width then
              err "ANode of width %d (must be 4 or 16)" w;
            for i = 0 to w - 1 do
              go (Slots.get an i) (lev + 4)
                (prefix lor (i lsl lev))
                (pmask lor ((w - 1) lsl lev))
                (w = narrow_width)
            done
          end
    in
    for i = 0 to Slots.length t.root - 1 do
      go (Slots.get t.root i) 4 i (wide_width - 1) false
    done;
    (* Cache coherence: every entry still reaches the recorded level
       from the root, or is self-invalidating stale (see
       [entry_coherence]).  A live-looking detached entry would serve
       stale data forever, so it is an error even though the trie
       itself is consistent. *)
    let rec check_cache = function
      | None -> ()
      | Some cl ->
          if Array.length cl.c_entries <> 1 lsl cl.c_level then
            err "cache level %d has %d entries (expected %d)" cl.c_level
              (Array.length cl.c_entries) (1 lsl cl.c_level);
          Array.iteri
            (fun pos entry ->
              match entry_coherence t cl.c_level pos entry with
              | Co_ok | Co_stale -> ()
              | Co_broken what ->
                  err "cache level %d entry %#x: %s" cl.c_level pos what)
            cl.c_entries;
          check_cache cl.c_parent
    in
    check_cache (Atomic.get t.cache_head);
    match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))

  (* ---------------------------------------------------------------- *)
  (* Scrub: active residue sweep (DESIGN.md §9).                        *)
  (* ---------------------------------------------------------------- *)

  (* Walk the whole trie and help-complete every descriptor and pending
     transaction a crashed/abandoned operation left behind, then drop
     stale cache entries.  Each repair is exactly a helping step a
     regular operation would perform on encounter, so scrubbing is safe
     under live traffic; the return value counts repairs, and a second
     scrub of a quiescent trie finds nothing left and returns 0. *)
  let scrub t =
    let repairs = ref 0 in
    (* [budget] bounds re-examination of one slot: every repair removes
       the residue it found, but concurrent writers can keep a slot
       busy forever — scrub only promises to clear pre-existing
       residue. *)
    let rec scrub_slot (an : 'v anode) i budget =
      if budget > 0 then
        match Slots.get an i with
        | Null | FVNode | FNode _ | LNode _ -> ()
        | SNode sn as old -> (
            match Atomic.get sn.txn with
            | No_txn | Frozen_snode -> ()
            | Replace repl ->
                if yp_cas_slot t.metrics yp_txn_help an i old repl then
                  Metrics.incr t.metrics Metrics.Helps;
                incr repairs;
                scrub_slot an i (budget - 1)
            | Removed ->
                if yp_cas_slot t.metrics yp_txn_help an i old Null then
                  Metrics.incr t.metrics Metrics.Helps;
                incr repairs;
                scrub_slot an i (budget - 1))
        | ANode child -> scrub_anode child
        | ENode en as self ->
            complete_expansion t self en;
            incr repairs;
            scrub_slot an i (budget - 1)
        | XNode xn as self ->
            complete_compression t self xn;
            incr repairs;
            scrub_slot an i (budget - 1)
    and scrub_anode (an : 'v anode) =
      for i = 0 to Slots.length an - 1 do
        scrub_slot an i 8
      done
    in
    scrub_anode t.root;
    (* Cache pass: clear every entry that no longer reaches its
       recorded level — both broken ones and benign self-invalidating
       stale ones (the latter cost a probe fallback per read until
       overwritten).  Entries are plain writes, like every cache
       install. *)
    let rec scrub_cache = function
      | None -> ()
      | Some cl ->
          for pos = 0 to Array.length cl.c_entries - 1 do
            match entry_coherence t cl.c_level pos cl.c_entries.(pos) with
            | Co_ok -> ()
            | Co_stale | Co_broken _ ->
                cl.c_entries.(pos) <- Null;
                Metrics.incr t.metrics Metrics.Cache_invalidations;
                incr repairs
          done;
          scrub_cache cl.c_parent
    in
    scrub_cache (Atomic.get t.cache_head);
    Metrics.add t.metrics Metrics.Scrub_repairs !repairs;
    !repairs
end
