(** Lock-free concurrent skip list, the [ConcurrentSkipListMap]
    baseline from the paper's evaluation.

    The algorithm is the Herlihy–Shavit / Fraser lock-free skip list:
    towers of forward links with logical deletion marks, lazy physical
    unlinking during [find], and wait-free read traversal.  OCaml has
    no pointer tagging, so each (pointer, mark) pair is a small
    immutable record swapped with CAS — the extra allocation on unlink
    mirrors what a JVM implementation pays for its marker nodes.

    Nodes are ordered by the key's 32-bit mixed hash; all bindings that
    share one hash live in a single node's binding list (the same
    convention the tries use for full collisions), so only hash
    equality and key equality are required of keys. *)

val set_deterministic_heights : bool -> unit
(** [set_deterministic_heights true] replaces the domain-local PRNG
    that draws tower heights with a shared counter-driven ruler
    sequence (1,2,1,3,1,2,1,4,...) — the same 1/2^h distribution, but
    a function of insertion order alone, so identical operation
    sequences build identical lists.  The deterministic scheduler
    ([lib/mc]) enables this (and re-enables it at every schedule
    execution, resetting the counter) so schedules replay exactly;
    production code should leave it off.  Affects every [Make]
    instance in the program. *)

module Make (H : Ct_util.Hashing.HASHABLE) : sig
  include Ct_util.Map_intf.CONCURRENT_MAP with type key = H.t

  val height_histogram : 'v t -> int array
  (** [height_histogram t].(l) counts towers of height [l+1]; the
      geometric decay of tower heights is checked by the tests. *)

  (** [validate] (from {!Ct_util.Map_intf.CONCURRENT_MAP}) checks, for
      a quiescent list: level-0 strictly sorted by hash with no marked
      links, every upper-level list a sublist of level 0, tower
      heights within bounds, binding lists non-empty and
      hash-consistent.  [scrub] finishes abandoned removals: towers
      whose binding list emptied are fully marked, and marked links
      are physically unlinked at every level. *)
end
