(* Lock-free skip list with logical deletion marks (Herlihy-Shavit
   style).  Towers are ordered by 32-bit mixed hash; a node carries the
   binding list for its hash, updated by CAS on an immutable list.  A
   node whose binding list becomes empty is logically dead and gets
   marked and unlinked; any thread observing an empty list helps. *)

module Hashing = Ct_util.Hashing
module Rng = Ct_util.Rng
module Yp = Ct_util.Yieldpoint
module Metrics = Ct_util.Metrics

(* Yield points (DESIGN.md "Fault injection & robustness"): one site
   per distinct CAS, so the chaos layer can crash a victim between the
   logical and physical steps of a removal (bindings emptied / upper
   levels marked / level 0 marked / physical unlink) or mid-insert. *)
let yp_insert_splice = Yp.register "skiplist.insert.splice"
let yp_insert_link = Yp.register "skiplist.insert.link"
let yp_update_bindings = Yp.register "skiplist.update.bindings"
let yp_remove_bindings = Yp.register "skiplist.remove.bindings"
let yp_mark_upper = Yp.register "skiplist.mark.upper"
let yp_mark_level0 = Yp.register "skiplist.mark.level0"
let yp_unlink = Yp.register "skiplist.unlink"

(* Read-path yield point at the head of every lookup, so the
   deterministic scheduler (lib/mc) can interleave reads with writer
   CASes.  One site per operation (not per level): a 24-level tower
   walk would multiply the explorer's schedule depth for no extra
   coverage at mc's script sizes. *)
let yp_read_locate = Yp.register_read "skiplist.read.locate"

let yp_cas m site slot expected repl =
  Metrics.incr m Metrics.Cas_attempts;
  Yp.here Yp.Before site;
  let ok = Atomic.compare_and_set slot expected repl in
  if ok then Yp.here Yp.After site else Metrics.incr m Metrics.Cas_retries;
  ok

let max_height = 24

(* Tower heights are normally drawn from a domain-local PRNG whose
   state survives across runs — which makes two executions of the same
   operation sequence build different towers.  The deterministic
   scheduler needs replayable structure, so it can switch heights to a
   shared counter-driven ruler sequence (1,2,1,3,1,2,1,4,...): same
   op order in, same skip list out.  Global across Make instances on
   purpose: mc resets it at the start of every schedule execution. *)
let det_heights : int Atomic.t option Atomic.t = Atomic.make None

let set_deterministic_heights enabled =
  Atomic.set det_heights (if enabled then Some (Atomic.make 0) else None)

(* Height of the [n]-th deterministic tower: 1 + trailing zeros of
   n+1, the ruler sequence — the same 1/2^h height distribution the
   PRNG targets, with no state beyond the counter. *)
let ruler_height n =
  let rec go h m =
    if h >= max_height || m land 1 = 1 then h else go (h + 1) (m lsr 1)
  in
  go 1 (n + 1)

module Make (H : Hashing.HASHABLE) = struct
  type key = H.t

  let name = "skiplist"

  type 'v node = {
    nhash : int;  (* ordering key; head = -1, tail = 2^32 *)
    bindings : (key * 'v) list Atomic.t;
    next : 'v link Atomic.t array;  (* length = tower height *)
  }

  and 'v link = { succ : 'v node; marked : bool }
  (* [succ] of the tail node points to itself and is never followed. *)

  type 'v t = { head : 'v node; tail : 'v node; metrics : Metrics.t }

  let create () =
    (* The tail's own links are never followed (every traversal checks
       [is_tail] first), so its tower can stay empty. *)
    let tail =
      { nhash = 1 lsl Hashing.hash_bits; bindings = Atomic.make []; next = [||] }
    in
    let head =
      {
        nhash = -1;
        bindings = Atomic.make [];
        next =
          Array.init max_height (fun _ -> Atomic.make { succ = tail; marked = false });
      }
    in
    { head; tail; metrics = Metrics.create ~family:name }

  let hash_of k = H.hash k land Hashing.mask
  let is_tail t n = n == t.tail

  (* Domain-local PRNG for tower heights (p = 1/2). *)
  let rng_key =
    Domain.DLS.new_key (fun () ->
        Rng.create (0x5DEECE66D lxor (Domain.self () :> int)))

  let random_height () =
    match Atomic.get det_heights with
    | Some counter -> ruler_height (Atomic.fetch_and_add counter 1)
    | None ->
        let rng = Domain.DLS.get rng_key in
        let r = Rng.next rng in
        let rec go h bits =
          if h >= max_height || bits land 1 = 0 then h else go (h + 1) (bits lsr 1)
        in
        go 1 r

  (* find returns [(preds, succs)] such that at every level
     [preds.(l).nhash < h <= succs.(l).nhash], unlinking marked nodes
     along the way (restarting on CAS interference). *)
  let rec search_towers t h : 'v node array * 'v node array =
    let preds = Array.make max_height t.head in
    let succs = Array.make max_height t.tail in
    let restart = ref false in
    let pred = ref t.head in
    let level = ref (max_height - 1) in
    while !level >= 0 && not !restart do
      let continue_level = ref true in
      let curr = ref (Atomic.get !pred.next.(!level)).succ in
      while !continue_level && not !restart do
        if is_tail t !curr then begin
          preds.(!level) <- !pred;
          succs.(!level) <- !curr;
          continue_level := false
        end
        else begin
          let clink = Atomic.get !curr.next.(!level) in
          if clink.marked then begin
            (* Help unlink the marked node. *)
            let plink = Atomic.get !pred.next.(!level) in
            if plink.marked || plink.succ != !curr then restart := true
            else if
              yp_cas t.metrics yp_unlink !pred.next.(!level) plink
                { succ = clink.succ; marked = false }
            then begin
              Metrics.incr t.metrics Metrics.Helps;
              curr := clink.succ
            end
            else restart := true
          end
          else if !curr.nhash < h then begin
            pred := !curr;
            curr := clink.succ
          end
          else begin
            preds.(!level) <- !pred;
            succs.(!level) <- !curr;
            continue_level := false
          end
        end
      done;
      decr level
    done;
    if !restart then search_towers t h else (preds, succs)

  (* Mark every level of [node], then let [find] unlink it.  The level-0
     mark is the tower's death — the skip list's analogue of an
     entombment, awaiting physical unlink. *)
  let rec mark_node t (node : 'v node) =
    let height = Array.length node.next in
    for level = height - 1 downto 1 do
      let rec mark () =
        let link = Atomic.get node.next.(level) in
        if not link.marked then
          if not (yp_cas t.metrics yp_mark_upper node.next.(level) link
                    { succ = link.succ; marked = true })
          then mark ()
      in
      mark ()
    done;
    (* Level 0 is the linearization point of the tower's death. *)
    let link = Atomic.get node.next.(0) in
    if not link.marked then begin
      if
        yp_cas t.metrics yp_mark_level0 node.next.(0) link
          { succ = link.succ; marked = true }
      then begin
        Metrics.incr t.metrics Metrics.Entombments;
        ignore (search_towers t node.nhash) (* physically unlink *)
      end
      else mark_node t node
    end
    else ignore (search_towers t node.nhash)

  (* Locate the live node for hash [h] (read-only path); raises
     (notrace) when absent.  Top-level recursion — the old local [go]
     closure allocated on every lookup — and no option box on a hit. *)
  let rec locate t h (pred : 'v node) level : 'v node =
    let curr = (Atomic.get pred.next.(level)).succ in
    if is_tail t curr || curr.nhash > h then
      if level = 0 then raise_notrace Not_found else locate t h pred (level - 1)
    else if curr.nhash < h then locate t h curr level
    else begin
      let clink = Atomic.get curr.next.(0) in
      if clink.marked then raise_notrace Not_found else curr
    end

  let find_node t h : 'v node option =
    match locate t h t.head (max_height - 1) with
    | node -> Some node
    | exception Not_found -> None

  (* Association-list operations with the structure's own key equality
     (the [List.assoc_opt]/[List.remove_assoc] they replace used
     polymorphic [=]; with an [H.equal] coarser than [(=)] the binding
     update paths accumulated duplicate entries — same bug family the
     lib/mc hostile-equality scenarios flushed out of the cachetrie). *)
  let rec lassoc k = function
    | [] -> raise_notrace Not_found
    | (k', v) :: rest -> if H.equal k' k then v else lassoc k rest

  let lassoc_opt k entries =
    match lassoc k entries with v -> Some v | exception Not_found -> None

  let rec lremove_assoc k = function
    | [] -> []
    | ((k', _) as pair) :: rest ->
        if H.equal k' k then rest else pair :: lremove_assoc k rest

  let find t k =
    let h = hash_of k in
    Yp.here Yp.Before yp_read_locate;
    lassoc k (Atomic.get (locate t h t.head (max_height - 1)).bindings)

  let lookup t k = match find t k with v -> Some v | exception Not_found -> None
  let mem t k = match find t k with _ -> true | exception Not_found -> false

  (* ------------------------------ updates --------------------------- *)

  type 'v mode = Always | If_absent | If_present | If_value of 'v

  let rec update t k v mode : 'v option =
    let h = hash_of k in
    let preds, succs = search_towers t h in
    let candidate = succs.(0) in
    if (not (is_tail t candidate)) && candidate.nhash = h then begin
      (* Hash already present: update its binding list. *)
      let bindings = Atomic.get candidate.bindings in
      if bindings = [] then begin
        (* Node logically dead; help bury it and retry. *)
        Metrics.incr t.metrics Metrics.Helps;
        mark_node t candidate;
        update t k v mode
      end
      else begin
        let previous = lassoc_opt k bindings in
        let proceed =
          match (mode, previous) with
          | If_absent, Some _ -> false
          | (If_present | If_value _), None -> false
          | If_value expected, Some p -> p == expected
          | (Always | If_absent | If_present), _ -> true
        in
        if not proceed then previous
        else begin
          let nb = (k, v) :: lremove_assoc k bindings in
          (* A successful CAS from a non-empty list is the
             linearization point: the list can only become empty (and
             the node die) by first CASing away the list we swapped,
             so no post-hoc mark check is needed — and retrying here
             would wrongly apply the operation twice. *)
          if yp_cas t.metrics yp_update_bindings candidate.bindings bindings nb
          then previous
          else update t k v mode
        end
      end
    end
    else if
      match mode with If_present | If_value _ -> true | Always | If_absent -> false
    then None
    else begin
      (* Splice in a fresh tower. *)
      let height = random_height () in
      let node =
        {
          nhash = h;
          bindings = Atomic.make [ (k, v) ];
          next =
            Array.init height (fun l ->
                Atomic.make { succ = succs.(l); marked = false });
        }
      in
      let plink = Atomic.get preds.(0).next.(0) in
      if plink.marked || plink.succ != succs.(0) then update t k v mode
      else if not (yp_cas t.metrics yp_insert_splice preds.(0).next.(0) plink
                     { succ = node; marked = false })
      then update t k v mode
      else begin
        (* Level 0 linked: the insert is linearized.  Link the upper
           levels best-effort, re-finding on interference. *)
        let rec link_level level preds succs =
          if level < height then begin
            let nlink = Atomic.get node.next.(level) in
            if nlink.marked then () (* concurrently removed; stop *)
            else begin
              if nlink.succ != succs.(level) then
                ignore
                  (Atomic.compare_and_set node.next.(level) nlink
                     { succ = succs.(level); marked = false });
              let plink = Atomic.get preds.(level).next.(level) in
              if
                (not plink.marked)
                && plink.succ == succs.(level)
                && yp_cas t.metrics yp_insert_link preds.(level).next.(level)
                     plink { succ = node; marked = false }
              then link_level (level + 1) preds succs
              else begin
                let preds', succs' = search_towers t h in
                if succs'.(0) == node then link_level level preds' succs'
                (* else the node was removed concurrently; stop *)
              end
            end
          end
        in
        link_level 1 preds succs;
        None
      end
    end

  let insert t k v = ignore (update t k v Always)
  let add t k v = update t k v Always
  let put_if_absent t k v = update t k v If_absent
  let replace t k v = update t k v If_present

  let replace_if t k ~expected v =
    match update t k v (If_value expected) with
    | Some p -> p == expected
    | None -> false

  let rec remove_with t k cond : 'v option =
    let h = hash_of k in
    match find_node t h with
    | None -> None
    | Some node -> (
        let bindings = Atomic.get node.bindings in
        match lassoc_opt k bindings with
        | None ->
            if bindings = [] then begin
              Metrics.incr t.metrics Metrics.Helps;
              mark_node t node;
              remove_with t k cond
            end
            else None
        | Some prev when not (cond prev) -> Some prev
        | Some prev ->
            let nb = lremove_assoc k bindings in
            if yp_cas t.metrics yp_remove_bindings node.bindings bindings nb
            then begin
              if nb = [] then mark_node t node;
              Some prev
            end
            else remove_with t k cond)

  let remove t k = remove_with t k (fun _ -> true)

  let remove_if t k ~expected =
    match remove_with t k (fun v -> v == expected) with
    | Some p -> p == expected
    | None -> false

  (* ------------------------- aggregate queries ---------------------- *)

  let fold f acc t =
    let rec go acc (node : 'v node) =
      if is_tail t node then acc
      else begin
        let link = Atomic.get node.next.(0) in
        let acc =
          if link.marked then acc
          else
            List.fold_left (fun acc (k, v) -> f acc k v) acc (Atomic.get node.bindings)
        in
        go acc link.succ
      end
    in
    go acc (Atomic.get t.head.next.(0)).succ

  let iter f t = fold (fun () k v -> f k v) () t
  let size t = fold (fun n _ _ -> n + 1) 0 t
  let is_empty t = size t = 0
  let to_list t = fold (fun acc k v -> (k, v) :: acc) [] t

  let height_histogram t =
    let hist = Array.make max_height 0 in
    let rec go (node : 'v node) =
      if not (is_tail t node) then begin
        let link = Atomic.get node.next.(0) in
        if not link.marked then begin
          let h = Array.length node.next in
          hist.(h - 1) <- hist.(h - 1) + 1
        end;
        go link.succ
      end
    in
    go (Atomic.get t.head.next.(0)).succ;
    hist

  (* Structural invariants, checked during quiescence. *)
  let validate t =
    let errors = ref [] in
    let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
    (* Level 0: strictly ascending hashes, unmarked, sane bindings. *)
    let level0 = Hashtbl.create 64 in
    let rec walk0 (node : 'v node) last =
      if not (is_tail t node) then begin
        let link = Atomic.get node.next.(0) in
        if link.marked then err "marked node reachable at level 0 during quiescence";
        if node.nhash <= last then err "level-0 hashes not strictly ascending";
        let h = Array.length node.next in
        if h < 1 || h > max_height then err "tower height %d out of bounds" h;
        (match Atomic.get node.bindings with
        | [] -> err "reachable node with empty bindings"
        | entries ->
            List.iter
              (fun (k, _) ->
                if hash_of k <> node.nhash then err "binding hash mismatch")
              entries);
        Hashtbl.replace level0 node.nhash ();
        walk0 link.succ node.nhash
      end
    in
    walk0 (Atomic.get t.head.next.(0)).succ (-1);
    (* Upper levels: sorted sublists of level 0. *)
    for level = 1 to max_height - 1 do
      let rec walk (node : 'v node) last =
        if not (is_tail t node) then begin
          if node.nhash <= last then err "level-%d hashes not ascending" level;
          if not (Hashtbl.mem level0 node.nhash) then
            err "level-%d node missing from level 0" level;
          if Array.length node.next <= level then
            err "node reachable above its tower height"
          else walk (Atomic.get node.next.(level)).succ node.nhash
        end
      in
      walk (Atomic.get t.head.next.(level)).succ (-1)
    done;
    match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))

  (* Scrub: active residue sweep (DESIGN.md §9).  An abandoned removal
     can strand a tower in three states: bindings emptied but the tower
     never marked, upper levels marked but not level 0, or fully marked
     but still physically linked.  Pass 1 walks level 0 and finishes
     each of them ([mark_node] is idempotent and [search_towers]
     physically unlinks at every level); pass 2 sweeps the upper levels
     for any remaining marked links.  Every step is the helping a
     regular operation performs on encounter, so scrubbing is safe
     under live traffic; a residue-free structure yields 0. *)
  let scrub t =
    let repairs = ref 0 in
    let rec sweep0 (node : 'v node) =
      if not (is_tail t node) then begin
        let link = Atomic.get node.next.(0) in
        if link.marked then begin
          (* Dead tower still reachable: physically unlink it. *)
          ignore (search_towers t node.nhash);
          incr repairs
        end
        else if Atomic.get node.bindings = [] then begin
          (* Logically dead (last binding removed) but never buried. *)
          mark_node t node;
          incr repairs
        end;
        sweep0 link.succ
      end
    in
    sweep0 (Atomic.get t.head.next.(0)).succ;
    for level = max_height - 1 downto 1 do
      let rec sweepl (pred : 'v node) =
        let plink = Atomic.get pred.next.(level) in
        if not (is_tail t plink.succ) then begin
          let curr = plink.succ in
          let clink = Atomic.get curr.next.(level) in
          if clink.marked && not plink.marked then begin
            if
              yp_cas t.metrics yp_unlink pred.next.(level) plink
                { succ = clink.succ; marked = false }
            then incr repairs;
            (* Re-examine [pred] whether we or a helper unlinked. *)
            sweepl pred
          end
          else sweepl curr
        end
      in
      sweepl t.head
    done;
    Metrics.add t.metrics Metrics.Scrub_repairs !repairs;
    !repairs

  let metrics t = t.metrics
  let stats t = Metrics.snapshot t.metrics
  let reset_stats t = Metrics.reset t.metrics

  (* Word-cost model (DESIGN.md): node = 4 + tower (1 + h link boxes of
     2 + link records of 3) + bindings atomic 2 + list cells 3 each. *)
  let footprint_words t =
    let node_words (node : 'v node) =
      let h = Array.length node.next in
      4 + 1 + (h * 5) + 2 + (3 * List.length (Atomic.get node.bindings))
    in
    let rec go acc (node : 'v node) =
      if is_tail t node then acc + node_words node
      else go (acc + node_words node) (Atomic.get node.next.(0)).succ
    in
    go 0 t.head

  (* A tower walk re-derives its path from the marks it meets, so there
     is no per-level state to stage across keys: batches take the
     scalar loop. *)
  include Ct_util.Map_intf.Batch_fallback (struct
    type nonrec key = key
    type nonrec 'v t = 'v t

    let find = find
    let insert = insert
    let remove = remove
  end)
end
