(** Wire protocol of the KV serving layer (DESIGN.md §12).

    Length-prefixed binary frames over a byte stream: every message is
    a 4-byte big-endian payload length followed by the payload.  A
    request payload is

    {v
      opcode      u8     bits 0-5: 0 ping, 1 get, 2 put, 3 remove
                         bit 6: trace extension present
      id          u32    client-chosen correlation id
      deadline    u64    nanosecond budget, 0 = none (requests only)
      key         i64    OCaml int, sign-extended
      [trace]     u8+u64 only when opcode bit 6 is set: flags byte
                         (bit 0 = sampled) + 62-bit trace id
      value       rest   put only
    v}

    The trace extension is best-effort metadata: frames without the
    bit (the pre-trace format) parse exactly as before, and a frame
    {e with} the bit but too short to hold the 9 extension bytes
    decodes as an untraced request — never a decode error, so a
    corrupted or truncated extension cannot poison the connection.

    A reply payload is

    {v
      status      u8
      id          u32    echoes the request id
      detail      u8     status-specific (shed reason, replaced flag)
      value       rest   get hits and server errors only
    v}

    The protocol is strictly request/reply but {e pipelined}: a client
    may have any number of requests in flight on one connection, and
    replies carry the request id precisely because overload shedding,
    deadline expiry and per-key worker sharding all reorder them.
    Every accepted frame gets exactly one reply — load shedding is a
    typed {!reply} ([Overloaded], [Deadline_exceeded],
    [Shutting_down]), never a silent drop. *)

type op =
  | Ping
  | Get of int
  | Put of int * string
  | Remove of int

type request = {
  id : int;  (** correlation id, 32-bit unsigned *)
  deadline_ns : int;
      (** nanosecond budget measured from server-side arrival;
          0 = no deadline *)
  op : op;
  trace : int;
      (** packed trace context ({!Obs.Trace.ctx} layout: bit 0 =
          sampled, bits 1..62 = trace id); 0 = untraced.  Kept as a
          plain int so the protocol layer stays free of the obs
          dependency. *)
}

(** Why an [Overloaded] reply was shed (the [detail] byte). *)
type shed_reason =
  | Queue_full  (** the target worker queue stayed full past the
                    budgeted enqueue retries *)
  | Latency_breach  (** admission control: served p99 over the bound *)

type reply =
  | Value of string  (** get hit *)
  | Nil  (** get/remove miss *)
  | Stored of bool  (** put done; [true] = replaced an existing binding *)
  | Removed  (** remove hit *)
  | Pong
  | Overloaded of shed_reason  (** typed load shed; the request was
                                   {e not} executed *)
  | Deadline_exceeded  (** the deadline expired before execution;
                           not executed *)
  | Shutting_down  (** arrived after drain began; not executed *)
  | Bad_request of string
  | Server_error of string
  | Read_only
      (** durable mode only: the write-ahead log degraded (fsync retry
          budget exhausted) and the server refuses writes rather than
          acknowledge data it cannot make durable; not executed *)

val max_frame : int
(** Hard cap on accepted payload size (1 MiB); larger announced
    lengths poison the connection ({!Reader.read_frame} raises
    {!Protocol_error}). *)

exception Protocol_error of string

val encode_request : request -> Bytes.t
(** Full frame, length prefix included. *)

val decode_request : Bytes.t -> (request, string) result
(** Decode one request payload (no length prefix). *)

val encode_reply : id:int -> reply -> Bytes.t

val decode_reply : Bytes.t -> (int * reply, string) result

val reply_label : reply -> string
(** Stable snake_case tag for ledgers and stats ("ok_value",
    "overloaded_queue_full", ...). *)

(** Buffered frame extraction from a file descriptor.  One [Reader.t]
    per connection; not thread-safe (each connection has exactly one
    reading thread). *)
module Reader : sig
  type t

  val create : unit -> t

  val read_frame : t -> Unix.file_descr -> Bytes.t option
  (** Next payload, blocking on the fd as needed.  [None] on orderly
      EOF at a frame boundary.  Raises {!Protocol_error} on a
      truncated stream, an oversized frame, or EOF mid-frame, and
      lets [Unix.Unix_error] (including [EAGAIN] from a receive
      timeout) escape to the caller. *)

  val pending : t -> bool
  (** A partially received frame is buffered — used by the server's
      slow-loris defence: a receive timeout with [pending] true means
      the peer is trickling a frame, not idling between frames. *)
end
