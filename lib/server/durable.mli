(** Durable KV store: the snapshotting ctrie + group-commit WAL +
    background checkpointer, packaged as {!Server.durable} hooks
    (DESIGN.md §14).

    Open with {!open_} (which recovers from disk), serve with
    [Server.Make (Durable.Map)] passing [~durable:(hooks t)] and
    [map t], shut down with {!close}.  The checkpointer thread rotates
    the WAL and serializes an O(1) [fold_snapshot] every
    [checkpoint_every] records — writers never pause. *)

module Map : sig
  include Ct_util.Map_intf.CONCURRENT_MAP with type key = int

  val snapshot : 'v t -> 'v t
  val fold_snapshot : ('a -> key -> 'v -> 'a) -> 'a -> 'v t -> 'a
end

type config = {
  wal : Persist.Wal.config;
  checkpoint_every : int;
      (** records appended since the last checkpoint that trigger the
          next one (default 8192) *)
  checkpoint_interval : float;
      (** checkpointer poll period, seconds (default 0.01) *)
}

val default_config : config

type t

val open_ :
  ?config:config ->
  ?salvage:bool ->
  dir:string ->
  unit ->
  (t * Persist.Recovery.stats, Persist.Recovery.error) result
(** Recover the store from [dir] (created if missing), open the WAL at
    the next LSN and start the checkpointer.  Strict by default: a
    torn WAL tail refuses with [Torn_tail]; pass [~salvage:true] to
    truncate it (see {!Persist.Recovery.load}). *)

val map : t -> string Map.t
val wal : t -> Persist.Wal.t
val metrics : t -> Ct_util.Metrics.t

val hooks : t -> Server.durable
(** The record to pass as [Server.Make(Map).start ~durable]. *)

val read_only : t -> bool
(** The WAL degraded (fsync budget exhausted); writes refuse typed. *)

val last_checkpoint_lsn : t -> int

val checkpoint_now :
  t ->
  ( int option,
    [ `Degraded | `Closed | `Halted | `Io_error of string ] )
  result
(** Force one rotate-and-checkpoint cycle now.  [Ok (Some boundary)]
    on publish, [Ok None] when nothing new needed covering. *)

val close : t -> (unit, [ `Degraded | `Closed | `Halted ]) result
(** Stop the checkpointer and close the WAL (final flush: [Ok] means
    everything appended is on disk).  Call after draining the server. *)

val abandon : t -> unit
(** Post-crash teardown ([Persist.Io.halt] already called): join
    threads, close fds, flush nothing. *)
