(** Minimal synchronous KV client: one connection, one request in
    flight at a time.  The examples and the tests use it for the
    request/reply corners (typed sheds, deadlines, drain); the
    open-loop {!Loadgen} has its own pipelined machinery. *)

type t

exception Disconnected of string
(** The server closed or reset the connection (also raised on a reply
    that cannot be decoded). *)

val connect : ?recv_timeout:float -> port:int -> unit -> t
(** TCP to 127.0.0.1:[port].  [recv_timeout] (default 5s) bounds every
    wait for a reply; expiry raises {!Disconnected}. *)

val request :
  t -> ?deadline_ns:int -> ?trace:Obs.Trace.ctx -> Protocol.op -> Protocol.reply
(** Send one operation and wait for its reply (matched by id).
    [?trace] (default {!Obs.Trace.none}) rides the frame's trace
    extension; a sampled context makes the server record spans for
    this request. *)

val ping : t -> bool

val get : t -> ?deadline_ns:int -> ?trace:Obs.Trace.ctx -> int -> Protocol.reply

val put :
  t -> ?deadline_ns:int -> ?trace:Obs.Trace.ctx -> int -> string ->
  Protocol.reply

val remove :
  t -> ?deadline_ns:int -> ?trace:Obs.Trace.ctx -> int -> Protocol.reply

val close : t -> unit
(** Idempotent. *)
