(** Overload-hardened KV server over any [CONCURRENT_MAP]
    (DESIGN.md §12).

    One TCP listener on loopback, one lightweight reader thread per
    connection, and [workers] {e domains} each owning a bounded
    request queue ({!Bqueue}) — requests are sharded to workers by
    key, so per-key operations stay FIFO while domains never contend
    on a shared dispatch point.

    The overload-resilience layer, outside-in:

    - {b admission control}: while the served p99 (over a sliding
      window of the {!Obs.Latency} histogram) exceeds
      [p99_bound_ns], new requests are shed immediately with
      [Overloaded Latency_breach];
    - {b backpressure}: a full worker queue refuses the push; the
      dispatcher retries on a budgeted {!Ct_util.Backoff} (bumping the
      map's [Retry_exhausted] counter when the budget burns out) and
      then sheds with [Overloaded Queue_full].  Every shed is a typed
      reply — nothing is silently dropped;
    - {b deadlines}: a request whose [deadline_ns] budget expired
      between arrival and execution is answered [Deadline_exceeded]
      without touching the map;
    - {b slow-peer defence}: a receive timeout in the middle of a
      frame (slow-loris) or a send timeout against a non-reading peer
      drops that connection, bounding how long one bad client can
      hold a thread or a worker;
    - {b graceful drain}: {!drain} stops accepting, answers new
      requests with [Shutting_down], flushes every queued request to
      a real reply, then joins workers and closes connections.

    Workers cross {!Ct_util.Yieldpoint} sites ([server.worker.exec])
    around every map operation and heartbeat an optional
    {!Ct_util.Progress} when idle, so the existing chaos injectors,
    flight recorder and {!Harness.Watchdog} see the serving path
    exactly like they see the structures. *)

type config = {
  workers : int;  (** worker domains (default: available cores - 1, min 1) *)
  queue_capacity : int;  (** per-worker queue bound (default 256) *)
  batch : int;  (** max requests a worker dequeues at once (default 32) *)
  enqueue_budget : int;
      (** backoff retries before a full queue sheds (default 4, min 1) *)
  p99_bound_ns : int;
      (** admission bound on served p99 (default 100ms) *)
  p99_window : int;
      (** min samples per control interval before p99 acts (default 64) *)
  tick_interval : float;
      (** control-loop period, seconds (default 0.02) *)
  idle_timeout : float;
      (** receive timeout; mid-frame expiry drops the peer
          (default 0.25s) *)
  write_timeout : float;
      (** send timeout against non-reading peers (default 0.5s) *)
}

val default_config : unit -> config

(** The sites workers cross, for chaos targeting:
    ["server.worker.exec"] brackets every map operation. *)
val exec_site : Ct_util.Yieldpoint.site

(** Durable-mode hooks (DESIGN.md §14), typically built by
    {!Durable.hooks}.  A worker applies a write to the map, then
    [d_append]s it to the write-ahead log and withholds the reply until
    [d_subscribe] reports the covering fsync — or the request deadline,
    a degraded log ([Read_only]) or simulated process death, whichever
    comes first.  The apply-before-append order is load-bearing: a WAL
    rotation boundary then always covers fully-applied state, which is
    what makes background checkpoints consistent. *)
type durable = {
  d_append :
    Persist.Wal.op -> (int, [ `Degraded | `Closed | `Halted ]) result;
  d_subscribe :
    lsn:int -> deadline_ns:int -> (Persist.Wal.ack -> unit) -> unit;
  d_flush : unit -> unit;
  d_read_only : unit -> bool;
}

(** Bounded-cache-mode hooks (DESIGN.md §15), typically built over a
    [Cache.Make] tier: workers route every Get/Put/Remove through the
    tier instead of the raw map, which makes the server a
    memcached-shaped bounded store — entries carry TTLs, a word budget
    evicts under pressure, and admission control may refuse a Put
    outright.  Reply mapping: [c_get] miss (evicted, expired, or
    negative-cached) → [Nil]; [c_put] returning [false] (admission
    refused) → [Stored false]; [c_remove] [false] → [Nil].  Exclusive
    with [durable]: a tier evicts entries a WAL already acked, so
    replaying such a log would resurrect them. *)
type cache_ops = {
  c_get : int -> string option;
  c_put : int -> string -> bool;
  c_remove : int -> bool;
}

module Make (M : Ct_util.Map_intf.CONCURRENT_MAP with type key = int) : sig
  type t

  val start :
    ?config:config ->
    ?progress:Ct_util.Progress.t ->
    ?durable:durable ->
    ?cache:cache_ops ->
    ?port:int ->
    string M.t ->
    t
  (** Bind 127.0.0.1 (ephemeral port unless [port] given), spawn the
      accept thread, ticker thread and worker domains, and serve
      [map].  With [progress], worker [i] attaches slot
      [i mod slots] and heartbeats even when idle, so a watchdog over
      the same [progress] flags genuinely stuck workers only.  With
      [durable], write acks are withheld until the WAL's covering
      fsync (see {!durable}); a degraded log turns writes into typed
      [Read_only] refusals while reads keep serving.  With [cache],
      operations route through the bounded tier (see {!cache_ops});
      [map] is then only the identity the server registers metrics
      under — the tier owns the resident data.
      @raise Invalid_argument if both [durable] and [cache] are
      given. *)

  val port : t -> int

  val latency : t -> Obs.Latency.t
  (** Served-request end-to-end latency (arrival to reply) — executed
      requests only; sheds and deadline misses are excluded so the
      histogram measures what accepted traffic experienced. *)

  val shedding : t -> bool
  (** Is admission control currently shedding on the p99 bound? *)

  val stats : t -> (string * int) list
  (** Serving counters, fixed order: connections, dispatches, typed
      sheds by reason, deadline misses, executed replies, write
      failures, ... *)

  val stat : t -> string -> int
  (** One counter by label; 0 if unknown. *)

  val draining : t -> bool

  val drain : ?timeout:float -> t -> bool
  (** Graceful shutdown: stop accepting, answer new requests with
      [Shutting_down], wait up to [timeout] (default 10s) for every
      queued request to be answered, then close queues, join the
      worker domains, close every connection and join its reader.
      Returns [true] when the flush completed inside the timeout
      ([false] means queued requests were abandoned — their
      connections are closed, which a client observes as a dropped
      connection, never as a silent non-reply on a live one).
      Idempotent; concurrent calls share one shutdown. *)

  val kill : t -> unit
  (** Crash-simulation teardown: sever every connection immediately
      (peers see EOF — in-flight requests become visible connection
      drops, never silent non-replies on live sockets) and reap the
      threads.  The recovery harness calls this right after
      [Persist.Io.halt]: together they are an in-process [kill -9],
      minus the fd leak.  No flush, no final replies.  Shares the
      drain latch (idempotent against {!drain} and itself). *)
end
