(* Durable KV store (DESIGN.md §14): the snapshotting ctrie, a
   group-commit WAL, and a background checkpointer, glued into the
   {!Server.durable} hook record.

   The division of labour: the {e server worker} applies an operation
   to the map and appends it to the WAL (apply-before-append, per key,
   because one key always lands on one worker).  This module owns
   everything else — recovery at open, the WAL's lifecycle, and the
   checkpointer thread that periodically:

     1. {!Wal.rotate}s — sealing the current segment at a boundary LSN
        every record of which is both durable and applied;
     2. serializes a {!Map.fold_snapshot} (the paper's O(1)
        linearizable snapshot — writers never pause) taken {e after}
        the rotation, so the checkpoint covers at least the boundary;
     3. publishes it crash-atomically and garbage-collects the sealed
        segments and superseded checkpoints.

   The snapshot may also contain effects of records {e beyond} the
   boundary; recovery's replay is idempotent, so the overlap is
   harmless — that is the invariant that buys checkpointing without a
   stop-the-world. *)

module Metrics = Ct_util.Metrics
module Wal = Persist.Wal
module Checkpoint = Persist.Checkpoint
module Recovery = Persist.Recovery
module Io = Persist.Io

(* The served map type: the snapshotting ctrie over int keys.  Server
   users instantiate [Server.Make (Durable.Map)] so the functor and
   this module agree on the representation. *)
module Map = Ctrie_snap.Make (Ct_util.Hashing.Int_key)

type config = {
  wal : Wal.config;
  checkpoint_every : int;  (* records appended between checkpoints *)
  checkpoint_interval : float;  (* checkpointer poll period, seconds *)
}

let default_config =
  {
    wal = Wal.default_config;
    checkpoint_every = 8192;
    checkpoint_interval = 0.01;
  }

type t = {
  dir : string;
  cfg : config;
  map : string Map.t;
  wal : Wal.t;
  metrics : Metrics.t;
  ckpt_mu : Mutex.t;  (* one checkpoint at a time (thread + manual) *)
  mutable last_ckpt : int;  (* boundary LSN of the newest checkpoint *)
  stop : bool Atomic.t;
  mutable checkpointer : Thread.t option;
}

let map t = t.map
let wal t = t.wal
let metrics t = t.metrics
let last_checkpoint_lsn t = t.last_ckpt
let read_only t = Wal.degraded t.wal

(* ---------------------------- checkpointing ------------------------- *)

(* One checkpoint attempt.  [Ok (Some boundary)] on publish, [Ok None]
   when there was nothing new to cover. *)
let checkpoint_now t =
  Mutex.lock t.ckpt_mu;
  let r =
    match Wal.rotate t.wal with
    | Error e ->
        Error
          (e
            :> [ `Degraded | `Closed | `Halted | `Io_error of string ])
    | Ok boundary ->
        if boundary <= t.last_ckpt then Ok None
        else begin
          let iter emit =
            Map.fold_snapshot (fun () k v -> emit k v) () t.map
          in
          match
            Checkpoint.write ~metrics:t.metrics ~dir:t.dir ~lsn:boundary ~iter
              ()
          with
          | Ok _count ->
              t.last_ckpt <- boundary;
              ignore (Checkpoint.gc ~dir:t.dir ~keep:boundary);
              ignore (Wal.drop_segments_below t.wal ~lsn:boundary);
              Ok (Some boundary)
          | Error `Halted -> Error `Halted
          | Error (`Io_error _ as e) -> Error e
        end
  in
  Mutex.unlock t.ckpt_mu;
  r

let checkpointer t () =
  let rec loop () =
    Unix.sleepf t.cfg.checkpoint_interval;
    if Atomic.get t.stop || Io.is_halted () then ()
    else if Wal.last_lsn t.wal - t.last_ckpt >= t.cfg.checkpoint_every then begin
      match checkpoint_now t with
      | Ok _ -> loop ()
      | Error `Halted -> ()
      | Error (`Degraded | `Closed) -> ()  (* the log is done writing *)
      | Error (`Io_error _) -> loop ()  (* retry next period *)
    end
    else loop ()
  in
  loop ()

(* ------------------------------ lifecycle --------------------------- *)

let open_ ?(config = default_config) ?(salvage = false) ~dir () =
  if config.checkpoint_every < 1 || config.checkpoint_interval <= 0.0 then
    invalid_arg "Durable.open_";
  let metrics = Metrics.create ~family:"durable" in
  let map = Map.create () in
  match
    Recovery.load ~salvage ~metrics ~dir
      ~put:(fun k v -> ignore (Map.add map k v))
      ~remove:(fun k -> ignore (Map.remove map k))
      ()
  with
  | Error e -> Error e
  | Ok stats ->
      let wal =
        Wal.open_ ~config:config.wal ~metrics ~dir
          ~next_lsn:(stats.Recovery.last_lsn + 1) ()
      in
      let t =
        {
          dir;
          cfg = config;
          map;
          wal;
          metrics;
          ckpt_mu = Mutex.create ();
          last_ckpt = stats.Recovery.checkpoint_lsn;
          stop = Atomic.make false;
          checkpointer = None;
        }
      in
      t.checkpointer <- Some (Thread.create (checkpointer t) ());
      Ok (t, stats)

let hooks t =
  {
    Server.d_append = (fun op -> Wal.append t.wal op);
    d_subscribe = (fun ~lsn ~deadline_ns cb -> Wal.subscribe t.wal ~lsn ~deadline_ns cb);
    d_flush = (fun () -> ignore (Wal.flush t.wal));
    d_read_only = (fun () -> Wal.degraded t.wal);
  }

let join_checkpointer t =
  Atomic.set t.stop true;
  (match t.checkpointer with Some th -> Thread.join th | None -> ());
  t.checkpointer <- None

let close t =
  join_checkpointer t;
  Wal.close t.wal

(* Post-crash teardown: reap threads, close fds, flush nothing — the
   incarnation is dead and the next one starts from the disk. *)
let abandon t =
  join_checkpointer t;
  Wal.abandon t.wal
