(* Length-prefixed binary framing.  Fixed header fields use the
   big-endian Bytes accessors; the variable tail (put values, error
   messages) is raw bytes.  Encoders produce one contiguous frame so a
   single [write] publishes the whole message — interleaving between
   concurrent writers on one fd is then a per-frame affair, which the
   per-connection write mutex in the server enforces anyway. *)

type op =
  | Ping
  | Get of int
  | Put of int * string
  | Remove of int

type request = { id : int; deadline_ns : int; op : op; trace : int }

type shed_reason = Queue_full | Latency_breach

type reply =
  | Value of string
  | Nil
  | Stored of bool
  | Removed
  | Pong
  | Overloaded of shed_reason
  | Deadline_exceeded
  | Shutting_down
  | Bad_request of string
  | Server_error of string
  | Read_only

let max_frame = 1 lsl 20

exception Protocol_error of string

(* ----------------------------- requests ---------------------------- *)

let opcode = function Ping -> 0 | Get _ -> 1 | Put _ -> 2 | Remove _ -> 3

(* Bit 6 of the opcode byte announces the optional trace extension:
   9 bytes (flags u8, trace id u64) spliced between the fixed header
   and the value.  Old-format frames never set the bit, so they parse
   unchanged; decoders that see the bit but not the 9 bytes degrade to
   an untraced request rather than a decode error — tracing is
   best-effort metadata and must never poison a connection. *)
let trace_flag = 0x40
let trace_ext = 1 + 8
let id62_mask = (1 lsl 62) - 1

let req_fixed = 1 + 4 + 8 + 8 (* opcode, id, deadline, key *)

let encode_request r =
  if r.id < 0 || r.id > 0xFFFF_FFFF then
    invalid_arg "Protocol.encode_request: id out of u32 range";
  if r.deadline_ns < 0 then
    invalid_arg "Protocol.encode_request: negative deadline";
  let value = match r.op with Put (_, v) -> v | _ -> "" in
  let traced = r.trace <> 0 in
  let ext = if traced then trace_ext else 0 in
  let len = req_fixed + ext + String.length value in
  if len > max_frame then invalid_arg "Protocol.encode_request: oversized";
  let b = Bytes.create (4 + len) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.set_uint8 b 4 (opcode r.op lor if traced then trace_flag else 0);
  Bytes.set_int32_be b 5 (Int32.of_int r.id);
  Bytes.set_int64_be b 9 (Int64.of_int r.deadline_ns);
  let key = match r.op with Ping -> 0 | Get k | Put (k, _) | Remove k -> k in
  Bytes.set_int64_be b 17 (Int64.of_int key);
  if traced then begin
    Bytes.set_uint8 b 25 (r.trace land 1);
    Bytes.set_int64_be b 26 (Int64.of_int (r.trace lsr 1))
  end;
  Bytes.blit_string value 0 b (4 + req_fixed + ext) (String.length value);
  b

let u32 b off = Int32.to_int (Bytes.get_int32_be b off) land 0xFFFF_FFFF

let decode_request payload =
  let n = Bytes.length payload in
  if n < req_fixed then Error "short request frame"
  else
    let raw = Bytes.get_uint8 payload 0 in
    let has_ext = raw land trace_flag <> 0 in
    let id = u32 payload 1 in
    let deadline_ns = Int64.to_int (Bytes.get_int64_be payload 5) in
    let key = Int64.to_int (Bytes.get_int64_be payload 13) in
    (* Truncated extension: fall back to an untraced request with the
       body where the old format put it.  [trace = 0] downstream means
       "no context", which is the correct degradation. *)
    let trace, body =
      if has_ext && n >= req_fixed + trace_ext then begin
        let flags = Bytes.get_uint8 payload req_fixed in
        let wid =
          Int64.to_int (Bytes.get_int64_be payload (req_fixed + 1)) land id62_mask
        in
        let trace = if wid = 0 then 0 else (wid lsl 1) lor (flags land 1) in
        (trace, req_fixed + trace_ext)
      end
      else (0, req_fixed)
    in
    if deadline_ns < 0 then Error "negative deadline"
    else
      match raw land lnot trace_flag with
      | 0 -> Ok { id; deadline_ns; op = Ping; trace }
      | 1 -> Ok { id; deadline_ns; op = Get key; trace }
      | 2 ->
          let value = Bytes.sub_string payload body (n - body) in
          Ok { id; deadline_ns; op = Put (key, value); trace }
      | 3 -> Ok { id; deadline_ns; op = Remove key; trace }
      | c -> Error (Printf.sprintf "unknown opcode %d" c)

(* ------------------------------ replies ---------------------------- *)

let status_of = function
  | Value _ -> 0
  | Nil -> 1
  | Stored _ -> 2
  | Removed -> 3
  | Pong -> 4
  | Overloaded _ -> 5
  | Deadline_exceeded -> 6
  | Shutting_down -> 7
  | Bad_request _ -> 8
  | Server_error _ -> 9
  | Read_only -> 10

let rep_fixed = 1 + 4 + 1 (* status, id, detail *)

let encode_reply ~id reply =
  if id < 0 || id > 0xFFFF_FFFF then
    invalid_arg "Protocol.encode_reply: id out of u32 range";
  let detail =
    match reply with
    | Overloaded Queue_full -> 0
    | Overloaded Latency_breach -> 1
    | Stored replaced -> if replaced then 1 else 0
    | _ -> 0
  in
  let value =
    match reply with
    | Value v -> v
    | Bad_request m | Server_error m -> m
    | _ -> ""
  in
  let len = rep_fixed + String.length value in
  if len > max_frame then invalid_arg "Protocol.encode_reply: oversized";
  let b = Bytes.create (4 + len) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.set_uint8 b 4 (status_of reply);
  Bytes.set_int32_be b 5 (Int32.of_int id);
  Bytes.set_uint8 b 9 detail;
  Bytes.blit_string value 0 b 10 (String.length value);
  b

let decode_reply payload =
  let n = Bytes.length payload in
  if n < rep_fixed then Error "short reply frame"
  else
    let id = u32 payload 1 in
    let detail = Bytes.get_uint8 payload 5 in
    let value () = Bytes.sub_string payload rep_fixed (n - rep_fixed) in
    match Bytes.get_uint8 payload 0 with
    | 0 -> Ok (id, Value (value ()))
    | 1 -> Ok (id, Nil)
    | 2 -> Ok (id, Stored (detail = 1))
    | 3 -> Ok (id, Removed)
    | 4 -> Ok (id, Pong)
    | 5 -> (
        match detail with
        | 0 -> Ok (id, Overloaded Queue_full)
        | 1 -> Ok (id, Overloaded Latency_breach)
        | d -> Error (Printf.sprintf "unknown shed reason %d" d))
    | 6 -> Ok (id, Deadline_exceeded)
    | 7 -> Ok (id, Shutting_down)
    | 8 -> Ok (id, Bad_request (value ()))
    | 9 -> Ok (id, Server_error (value ()))
    | 10 -> Ok (id, Read_only)
    | s -> Error (Printf.sprintf "unknown status %d" s)

let reply_label = function
  | Value _ -> "ok_value"
  | Nil -> "ok_nil"
  | Stored _ -> "ok_stored"
  | Removed -> "ok_removed"
  | Pong -> "ok_pong"
  | Overloaded Queue_full -> "overloaded_queue_full"
  | Overloaded Latency_breach -> "overloaded_latency_breach"
  | Deadline_exceeded -> "deadline_exceeded"
  | Shutting_down -> "shutting_down"
  | Bad_request _ -> "bad_request"
  | Server_error _ -> "server_error"
  | Read_only -> "read_only"

(* ------------------------------ reader ----------------------------- *)

module Reader = struct
  (* A growable staging buffer: [read] appends raw bytes at [fill],
     [read_frame] consumes complete frames from [start].  Compaction
     happens when the consumed prefix dominates, so steady-state
     pipelined traffic shifts bytes rarely. *)
  type t = {
    mutable buf : Bytes.t;
    mutable start : int;  (* first unconsumed byte *)
    mutable fill : int;  (* end of valid data *)
  }

  let create () = { buf = Bytes.create 8192; start = 0; fill = 0 }

  let available t = t.fill - t.start

  let pending t = available t > 0

  let compact t =
    if t.start > 0 then begin
      Bytes.blit t.buf t.start t.buf 0 (available t);
      t.fill <- available t;
      t.start <- 0
    end

  let ensure_room t need =
    if t.fill + need > Bytes.length t.buf then begin
      compact t;
      if t.fill + need > Bytes.length t.buf then begin
        let cap = ref (Bytes.length t.buf) in
        while t.fill + need > !cap do
          cap := !cap * 2
        done;
        let b = Bytes.create !cap in
        Bytes.blit t.buf 0 b 0 t.fill;
        t.buf <- b
      end
    end

  (* Pull more bytes; true on progress, false on EOF. *)
  let refill t fd =
    ensure_room t 4096;
    let n = Unix.read fd t.buf t.fill (Bytes.length t.buf - t.fill) in
    if n = 0 then false
    else begin
      t.fill <- t.fill + n;
      true
    end

  let rec read_frame t fd =
    if available t >= 4 then begin
      let len = Int32.to_int (Bytes.get_int32_be t.buf t.start) in
      if len < 0 || len > max_frame then
        raise (Protocol_error (Printf.sprintf "frame length %d" len));
      if available t >= 4 + len then begin
        let payload = Bytes.sub t.buf (t.start + 4) len in
        t.start <- t.start + 4 + len;
        if t.start = t.fill then begin
          t.start <- 0;
          t.fill <- 0
        end;
        Some payload
      end
      else if refill t fd then read_frame t fd
      else raise (Protocol_error "eof inside frame body")
    end
    else if refill t fd then read_frame t fd
    else if available t = 0 then None
    else raise (Protocol_error "eof inside frame header")
end
