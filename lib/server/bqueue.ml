type 'a t = {
  buf : 'a option array;
  mutable head : int;  (* next pop position *)
  mutable len : int;
  mutable is_closed : bool;
  mutable tick_pending : bool;  (* one-shot empty wakeup requested *)
  mutex : Mutex.t;
  nonempty : Condition.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create";
  {
    buf = Array.make capacity None;
    head = 0;
    len = 0;
    is_closed = false;
    tick_pending = false;
    mutex = Mutex.create ();
    nonempty = Condition.create ();
  }

let capacity t = Array.length t.buf

let length t = t.len

let try_push t x =
  Mutex.lock t.mutex;
  let cap = Array.length t.buf in
  let ok = (not t.is_closed) && t.len < cap in
  if ok then begin
    t.buf.((t.head + t.len) mod cap) <- Some x;
    t.len <- t.len + 1;
    if t.len = 1 then Condition.signal t.nonempty
  end;
  Mutex.unlock t.mutex;
  ok

(* The wait loop admits three exits: items queued, closed, or a
   pending tick — the one-shot empty wakeup the server's ticker uses
   to let an idle worker heartbeat (stdlib [Condition] has no timed
   wait).  A tick is consumed exactly once, by one consumer. *)
let pop_batch t ~max ~into =
  Mutex.lock t.mutex;
  while t.len = 0 && (not t.is_closed) && not t.tick_pending do
    Condition.wait t.nonempty t.mutex
  done;
  let result =
    if t.len = 0 then
      if t.tick_pending then begin
        t.tick_pending <- false;
        Some 0
      end
      else None (* closed and drained *)
    else begin
      let n = min max t.len in
      let cap = Array.length t.buf in
      for i = 0 to n - 1 do
        let j = (t.head + i) mod cap in
        into.(i) <- t.buf.(j);
        t.buf.(j) <- None
      done;
      t.head <- (t.head + n) mod cap;
      t.len <- t.len - n;
      Some n
    end
  in
  Mutex.unlock t.mutex;
  result

let tick t =
  Mutex.lock t.mutex;
  t.tick_pending <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex

let close t =
  Mutex.lock t.mutex;
  t.is_closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex

let closed t =
  Mutex.lock t.mutex;
  let c = t.is_closed in
  Mutex.unlock t.mutex;
  c
