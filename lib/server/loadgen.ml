module Trace = Harness.Trace
module Net = Chaos.Net
module Clock = Ct_util.Clock
module Stats = Ct_util.Stats

type plan = {
  seed : int;
  n : int;
  conns : int;
  rate : float;
  profile : Trace.profile;
  deadline_ns : int;
  value_bytes : int;
  partition : bool;
  net : Net.plan;
  trace_one_in : int;
}

let default_plan =
  {
    seed = 0xC0FFEE;
    n = 20_000;
    conns = 8;
    rate = 20_000.0;
    profile = Trace.read_mostly;
    deadline_ns = 250_000_000;
    value_bytes = 32;
    partition = false;
    net = Net.quiet;
    trace_one_in = 0;
  }

(* Deterministic trace context for request [i]: with tracing on every
   request carries an id (so the ledger row ↔ span tree correlation
   never depends on timing), and every [trace_one_in]-th is sampled —
   head-based sampling decided at mint time.  The id packs the seed
   above the request index, so two plans' ids don't collide and a
   replay regenerates the same ids. *)
let ctx_for p i =
  if p.trace_one_in <= 0 then Obs.Trace.none
  else
    let id = ((p.seed land 0x3FFF_FFFF) lsl 30) lor ((i + 1) land 0x3FFF_FFFF) in
    Obs.Trace.make ~sampled:(i mod p.trace_one_in = 0) id

let trace_id_for p i = Obs.Trace.id (ctx_for p i)

(* ------------------------------ trace text -------------------------- *)

let header = "kvload-trace v1"

let to_string p =
  let b = Buffer.create 256 in
  let line fmt = Printf.bprintf b fmt in
  line "%s\n" header;
  line "seed=%d\n" p.seed;
  line "n=%d\n" p.n;
  line "conns=%d\n" p.conns;
  line "rate=%.17g\n" p.rate;
  line "reads=%d\n" p.profile.Trace.reads;
  line "inserts=%d\n" p.profile.Trace.inserts;
  line "removes=%d\n" p.profile.Trace.removes;
  line "universe=%d\n" p.profile.Trace.universe;
  line "skew=%.17g\n" p.profile.Trace.skew;
  line "deadline_ns=%d\n" p.deadline_ns;
  line "value_bytes=%d\n" p.value_bytes;
  line "partition=%d\n" (if p.partition then 1 else 0);
  line "net.seed=%d\n" p.net.Net.seed;
  line "net.drop_one_in=%d\n" p.net.Net.drop_one_in;
  line "net.loris_one_in=%d\n" p.net.Net.loris_one_in;
  line "net.loris_chunk=%d\n" p.net.Net.loris_chunk;
  line "net.loris_delay=%.17g\n" p.net.Net.loris_delay;
  line "net.pause_reads_one_in=%d\n" p.net.Net.pause_reads_one_in;
  line "net.pause_reads_s=%.17g\n" p.net.Net.pause_reads_s;
  line "trace_one_in=%d\n" p.trace_one_in;
  Buffer.contents b

let of_string s =
  match String.split_on_char '\n' (String.trim s) with
  | [] -> Error "empty trace"
  | hd :: rest when String.trim hd = header -> (
      let p = ref default_plan in
      let err = ref None in
      let seti f v = match int_of_string_opt (String.trim v) with
        | Some i -> f i
        | None -> err := Some (Printf.sprintf "bad int %S" v)
      and setf f v = match float_of_string_opt (String.trim v) with
        | Some x -> f x
        | None -> err := Some (Printf.sprintf "bad float %S" v)
      in
      List.iter
        (fun raw ->
          let l = String.trim raw in
          if l <> "" && !err = None then
            match String.index_opt l '=' with
            | None -> err := Some (Printf.sprintf "bad line %S" l)
            | Some i -> (
                let k = String.sub l 0 i
                and v = String.sub l (i + 1) (String.length l - i - 1) in
                let prof f = p := { !p with profile = f !p.profile }
                and net f = p := { !p with net = f !p.net } in
                match k with
                | "seed" -> seti (fun x -> p := { !p with seed = x }) v
                | "n" -> seti (fun x -> p := { !p with n = x }) v
                | "conns" -> seti (fun x -> p := { !p with conns = x }) v
                | "rate" -> setf (fun x -> p := { !p with rate = x }) v
                | "reads" -> seti (fun x -> prof (fun pr -> { pr with Trace.reads = x })) v
                | "inserts" -> seti (fun x -> prof (fun pr -> { pr with Trace.inserts = x })) v
                | "removes" -> seti (fun x -> prof (fun pr -> { pr with Trace.removes = x })) v
                | "universe" -> seti (fun x -> prof (fun pr -> { pr with Trace.universe = x })) v
                | "skew" -> setf (fun x -> prof (fun pr -> { pr with Trace.skew = x })) v
                | "deadline_ns" -> seti (fun x -> p := { !p with deadline_ns = x }) v
                | "value_bytes" -> seti (fun x -> p := { !p with value_bytes = x }) v
                | "partition" ->
                    seti (fun x -> p := { !p with partition = x <> 0 }) v
                | "net.seed" -> seti (fun x -> net (fun np -> { np with Net.seed = x })) v
                | "net.drop_one_in" -> seti (fun x -> net (fun np -> { np with Net.drop_one_in = x })) v
                | "net.loris_one_in" -> seti (fun x -> net (fun np -> { np with Net.loris_one_in = x })) v
                | "net.loris_chunk" -> seti (fun x -> net (fun np -> { np with Net.loris_chunk = x })) v
                | "net.loris_delay" -> setf (fun x -> net (fun np -> { np with Net.loris_delay = x })) v
                | "net.pause_reads_one_in" ->
                    seti (fun x -> net (fun np -> { np with Net.pause_reads_one_in = x })) v
                | "net.pause_reads_s" -> setf (fun x -> net (fun np -> { np with Net.pause_reads_s = x })) v
                | "trace_one_in" ->
                    seti (fun x -> p := { !p with trace_one_in = x }) v
                | _ -> err := Some (Printf.sprintf "unknown key %S" k)))
        rest;
      match !err with Some e -> Error e | None -> Ok !p)
  | hd :: _ -> Error (Printf.sprintf "bad header %S (want %S)" (String.trim hd) header)

(* ------------------------------ summary ----------------------------- *)

(* The ledger: one slot per scheduled request.  In durable mode, an ok
   [Replied] on a write IS the durable-ack column — the server only
   sends it after the covering WAL fsync — which is what
   {!verify_recovered} keys on. *)
type outcome = Pending | Dropped | Replied of Protocol.reply

type summary = {
  plan : plan;
  elapsed : float;
  sent : int;
  ok : int;
  shed_queue_full : int;
  shed_latency_breach : int;
  deadline_exceeded : int;
  shutting_down : int;
  read_only : int;
  rejected : int;
  dropped : int;
  pending : int;
  reconnects : int;
  fault_drops : int;
  fault_lorises : int;
  fault_pauses : int;
  offered_rate : float;
  achieved_rate : float;
  ok_rate : float;
  client_p50_ns : float;
  client_p99_ns : float;
  outcomes : outcome array;  (* the full ledger, one slot per request *)
  trace_ids : int array;
      (* trace id carried by request i (0 = untraced), regenerated
         deterministically from the plan so a --replay correlates the
         same ledger row with the same exported span tree *)
}

let shed s =
  s.shed_queue_full + s.shed_latency_breach + s.deadline_exceeded
  + s.shutting_down + s.read_only

let accounted s = s.ok + shed s + s.rejected + s.dropped

let verify s =
  if s.pending > 0 then
    Error
      (Printf.sprintf
         "%d silent drop(s): requests sent on live connections were never \
          answered"
         s.pending)
  else if accounted s <> s.plan.n then
    Error
      (Printf.sprintf "ledger does not add up: %d accounted of %d requests"
         (accounted s) s.plan.n)
  else Ok ()

let pp_summary fmt s =
  Format.fprintf fmt
    "@[<v>offered %.0f req/s, achieved %.0f req/s, goodput %.0f req/s \
     (%.2fs)@,\
     sent %d: ok %d, shed %d (queue_full %d, latency_breach %d, deadline %d, \
     shutting_down %d, read_only %d), rejected %d, dropped %d, pending %d@,\
     reconnects %d; faults: drops %d, lorises %d, read-pauses %d@,\
     client latency ok-replies: p50 %.0fus p99 %.0fus@]"
    s.offered_rate s.achieved_rate s.ok_rate s.elapsed s.sent s.ok (shed s)
    s.shed_queue_full s.shed_latency_breach s.deadline_exceeded
    s.shutting_down s.read_only s.rejected s.dropped s.pending s.reconnects
    s.fault_drops s.fault_lorises s.fault_pauses
    (s.client_p50_ns /. 1e3)
    (s.client_p99_ns /. 1e3)

(* ------------------------------- engine ----------------------------- *)

type conn_state = {
  idx : int;
  mutex : Mutex.t;  (* guards inflight + this conn's ledger/sample slots *)
  inflight : (int, unit) Hashtbl.t;
  mutable alive : bool;  (* receiver clears on EOF / read error *)
  mutable sent : int;
  mutable reconnects : int;
  samples : float array;  (* client-observed ns, ok replies only *)
  mutable nsamples : int;
  net : Net.t;
}

let value_for bytes v =
  let s = string_of_int v in
  let bytes = max 1 bytes in
  if String.length s >= bytes then String.sub s 0 bytes
  else s ^ String.make (bytes - String.length s) '.'

(* [partition] remaps request [i]'s key so each final key is only ever
   touched by one connection ([k * conns + i mod conns]).  Replies on
   one connection preserve per-key send order (one conn → one reader →
   one worker queue), which gives every key a total operation order —
   the precondition for {!verify_recovered}'s windowed check. *)
let key_for p i k = if p.partition then (k * p.conns) + (i mod p.conns) else k

let op_for p (trace : Trace.op array) i =
  match trace.(i) with
  | Trace.Lookup k -> Protocol.Get (key_for p i k)
  | Trace.Insert (k, v) ->
      Protocol.Put (key_for p i k, value_for p.value_bytes v)
  | Trace.Remove k -> Protocol.Remove (key_for p i k)

let requests p =
  let trace = Trace.generate ~seed:p.seed p.profile p.n in
  Array.init p.n (fun i -> op_for p trace i)

let is_ok = function
  | Protocol.Value _ | Protocol.Nil | Protocol.Stored _ | Protocol.Removed
  | Protocol.Pong ->
      true
  | Protocol.Overloaded _ | Protocol.Deadline_exceeded
  | Protocol.Shutting_down | Protocol.Bad_request _ | Protocol.Server_error _
  | Protocol.Read_only ->
      false

(* Receiver thread: one per connection incarnation.  Marks ledger
   entries under the connection mutex; exits (clearing [alive]) on EOF
   or any read error — the sender owns recovery. *)
let receiver cs (ledger : outcome array) (send_ns : int array) fd () =
  let reader = Protocol.Reader.create () in
  let rec loop () =
    Net.maybe_pause_read cs.net;
    match Protocol.Reader.read_frame reader fd with
    | None -> ()
    | Some payload -> (
        match Protocol.decode_reply payload with
        | Error _ -> ()  (* undecodable reply: treat as connection failure *)
        | Ok (id, reply) ->
            Mutex.lock cs.mutex;
            if id >= 1 && id <= Array.length ledger && Hashtbl.mem cs.inflight id
            then begin
              Hashtbl.remove cs.inflight id;
              ledger.(id - 1) <- Replied reply;
              if is_ok reply && cs.nsamples < Array.length cs.samples then begin
                cs.samples.(cs.nsamples) <-
                  float_of_int (Clock.monotonic_ns () - send_ns.(id - 1));
                cs.nsamples <- cs.nsamples + 1
              end
            end;
            Mutex.unlock cs.mutex;
            loop ())
    | exception _ -> ()
  in
  loop ();
  cs.alive <- false

(* Mark everything still in flight on this connection as dropped.
   Call only with the receiver joined (no concurrent marker). *)
let drop_inflight cs ledger =
  Mutex.lock cs.mutex;
  Hashtbl.iter (fun id () -> ledger.(id - 1) <- Dropped) cs.inflight;
  Hashtbl.reset cs.inflight;
  Mutex.unlock cs.mutex

let connect_fd port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
  | () ->
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
      Some fd
  | exception _ ->
      (try Unix.close fd with _ -> ());
      None

let rec connect_retry port tries =
  match connect_fd port with
  | Some fd -> Some fd
  | None ->
      if tries <= 1 then None
      else begin
        Unix.sleepf 0.05;
        connect_retry port (tries - 1)
      end

(* Sender thread for one connection: paces its share of the schedule
   (requests [k] with [k mod conns = idx]) against the global clock,
   owns the connection lifecycle, and accounts every request it could
   not deliver. *)
let sender plan cs ledger send_ns (trace : Trace.op array) ~port ~t0 () =
  let rate = plan.rate in
  let fd = ref (connect_retry port 5) in
  let rthread = ref None in
  let spawn_receiver () =
    match !fd with
    | None -> ()
    | Some d -> rthread := Some (Thread.create (receiver cs ledger send_ns d) ())
  in
  let kill_conn () =
    (match !fd with
    | None -> ()
    | Some d -> ( try Unix.shutdown d Unix.SHUTDOWN_ALL with _ -> ()));
    (match !rthread with None -> () | Some t -> Thread.join t);
    rthread := None;
    (match !fd with
    | None -> ()
    | Some d -> ( try Unix.close d with _ -> ()));
    fd := None;
    cs.alive <- false
  in
  let dead = ref false in
  let reconnect () =
    kill_conn ();
    drop_inflight cs ledger;
    (match connect_retry port 3 with
    | Some d ->
        fd := Some d;
        cs.alive <- true;
        cs.reconnects <- cs.reconnects + 1;
        spawn_receiver ()
    | None ->
        fd := None;
        (* Server unreachable: stop burning reconnect timeouts and
           fast-account the rest of the schedule as drops. *)
        dead := true)
  in
  cs.alive <- !fd <> None;
  if !fd = None then dead := true;
  spawn_receiver ();
  let k = ref cs.idx in
  while !k < plan.n do
    let id = !k + 1 in
    (* Open loop: request k fires at t0 + k/rate, ready or not. *)
    if not !dead then begin
      let target = t0 + int_of_float (float_of_int !k /. rate *. 1e9) in
      let delay = target - Clock.monotonic_ns () in
      if delay > 10_000 then Unix.sleepf (float_of_int delay /. 1e9)
    end;
    if !fd = None && not !dead then reconnect ();
    (match !fd with
    | None ->
        (* Server unreachable: the request cannot even be offered.
           Account it as a connection-level drop, never leave it
           pending. *)
        Mutex.lock cs.mutex;
        ledger.(id - 1) <- Dropped;
        Mutex.unlock cs.mutex
    | Some d ->
        let req =
          {
            Protocol.id;
            deadline_ns = plan.deadline_ns;
            op = op_for plan trace !k;
            trace = ctx_for plan !k;
          }
        in
        let frame = Protocol.encode_request req in
        Mutex.lock cs.mutex;
        send_ns.(id - 1) <- Clock.monotonic_ns ();
        Hashtbl.replace cs.inflight id ();
        Mutex.unlock cs.mutex;
        cs.sent <- cs.sent + 1;
        let delivered = Net.send cs.net d frame in
        if (not delivered) || not cs.alive then reconnect ());
    k := !k + plan.conns
  done;
  (* Linger for stragglers: bounded by the deadline budget plus slack,
     so a wedged server cannot hang the generator. *)
  let linger_s = (float_of_int plan.deadline_ns /. 1e9) +. 2.0 in
  let stop_at = Clock.monotonic_ns () + int_of_float (linger_s *. 1e9) in
  let inflight_left () =
    Mutex.lock cs.mutex;
    let n = Hashtbl.length cs.inflight in
    Mutex.unlock cs.mutex;
    n
  in
  while inflight_left () > 0 && cs.alive && Clock.monotonic_ns () < stop_at do
    Unix.sleepf 0.01
  done;
  let was_alive = cs.alive in
  kill_conn ();
  (* A dead connection accounts its stragglers as drops; a live one
     leaves them pending — that is the silent-drop signal {!verify}
     exists to catch. *)
  if not was_alive then drop_inflight cs ledger

let run ~port plan =
  if plan.n <= 0 || plan.conns <= 0 || plan.rate <= 0.0 then
    invalid_arg "Loadgen.run: n, conns and rate must be positive";
  let trace = Trace.generate ~seed:plan.seed plan.profile plan.n in
  let ledger = Array.make plan.n Pending in
  let send_ns = Array.make plan.n 0 in
  let states =
    Array.init plan.conns (fun idx ->
        {
          idx;
          mutex = Mutex.create ();
          inflight = Hashtbl.create 64;
          alive = false;
          sent = 0;
          reconnects = 0;
          samples = Array.make ((plan.n / plan.conns) + 1) 0.0;
          nsamples = 0;
          net = Net.create ~salt:idx plan.net;
        })
  in
  let t0 = Clock.monotonic_ns () in
  let threads =
    Array.map
      (fun cs ->
        Thread.create (sender plan cs ledger send_ns trace ~port ~t0) ())
      states
  in
  Array.iter Thread.join threads;
  let elapsed = float_of_int (Clock.monotonic_ns () - t0) /. 1e9 in
  let ok = ref 0
  and qf = ref 0
  and lb = ref 0
  and dl = ref 0
  and sd = ref 0
  and ro = ref 0
  and rej = ref 0
  and dropped = ref 0
  and pending = ref 0 in
  Array.iter
    (function
      | Pending -> incr pending
      | Dropped -> incr dropped
      | Replied r -> (
          match r with
          | Protocol.Value _ | Protocol.Nil | Protocol.Stored _
          | Protocol.Removed | Protocol.Pong ->
              incr ok
          | Protocol.Overloaded Protocol.Queue_full -> incr qf
          | Protocol.Overloaded Protocol.Latency_breach -> incr lb
          | Protocol.Deadline_exceeded -> incr dl
          | Protocol.Shutting_down -> incr sd
          | Protocol.Read_only -> incr ro
          | Protocol.Bad_request _ | Protocol.Server_error _ -> incr rej))
    ledger;
  let nsamples = Array.fold_left (fun a cs -> a + cs.nsamples) 0 states in
  let samples = Array.make (max 1 nsamples) 0.0 in
  let off = ref 0 in
  Array.iter
    (fun cs ->
      Array.blit cs.samples 0 samples !off cs.nsamples;
      off := !off + cs.nsamples)
    states;
  let p50, p99 =
    if nsamples = 0 then (0.0, 0.0)
    else (Stats.percentile samples 50.0, Stats.percentile samples 99.0)
  in
  let sent = Array.fold_left (fun a cs -> a + cs.sent) 0 states in
  {
    plan;
    elapsed;
    sent;
    ok = !ok;
    shed_queue_full = !qf;
    shed_latency_breach = !lb;
    deadline_exceeded = !dl;
    shutting_down = !sd;
    read_only = !ro;
    rejected = !rej;
    dropped = !dropped;
    pending = !pending;
    reconnects = Array.fold_left (fun a cs -> a + cs.reconnects) 0 states;
    fault_drops = Array.fold_left (fun a cs -> a + Net.drops cs.net) 0 states;
    fault_lorises =
      Array.fold_left (fun a cs -> a + Net.lorises cs.net) 0 states;
    fault_pauses =
      Array.fold_left (fun a cs -> a + Net.pauses cs.net) 0 states;
    offered_rate = plan.rate;
    achieved_rate = (if elapsed > 0.0 then float_of_int sent /. elapsed else 0.0);
    ok_rate = (if elapsed > 0.0 then float_of_int !ok /. elapsed else 0.0);
    client_p50_ns = p50;
    client_p99_ns = p99;
    outcomes = ledger;
    trace_ids = Array.init plan.n (fun i -> trace_id_for plan i);
  }

(* ------------------------- recovery verification --------------------- *)

(* The windowed per-key check behind the crash-recovery acceptance:
   with [partition] on, every key has a total operation order, so after
   a crash + recovery the recovered binding must be the effect of SOME
   suffix position at or after the last durably-acked operation:

   - the last acked op (ack = ok reply = the WAL fsync covered it) is
     certainly in the recovered log — "every durably-acked op
     survives";
   - unacked ops after it may or may not have reached the disk before
     the kill — each is an admissible final state;
   - nothing else is: a recovered value outside the window means the
     store either lost an acked write or invented one that was never
     sent ("no unacked op invented" for untouched keys: they must
     carry their [base] binding exactly).

   [base] is the store's content when this incarnation started (what
   recovery loaded last time); [bindings] is its content after this
   crash + recovery. *)
let verify_recovered s ~base ~bindings =
  if not s.plan.partition then
    Error "verify_recovered requires plan.partition = true"
  else begin
    let ops = requests s.plan in
    let tbl n l =
      let t = Hashtbl.create (max 16 n) in
      List.iter (fun (k, v) -> Hashtbl.replace t k v) l;
      t
    in
    let base_t = tbl (List.length base) base in
    let bind_t = tbl (List.length bindings) bindings in
    (* Per-key history, oldest first: (effect, durably_acked). *)
    let hist : (int, (string option * bool) list) Hashtbl.t =
      Hashtbl.create 1024
    in
    for i = 0 to s.plan.n - 1 do
      let entry =
        match ops.(i) with
        | Protocol.Put (k, v) -> Some (k, Some v)
        | Protocol.Remove k -> Some (k, None)
        | Protocol.Get _ | Protocol.Ping -> None
      in
      match entry with
      | None -> ()
      | Some (k, eff) ->
          let acked =
            match s.outcomes.(i) with Replied r -> is_ok r | _ -> false
          in
          Hashtbl.replace hist k
            ((eff, acked) :: (try Hashtbl.find hist k with Not_found -> []))
    done;
    let keys = Hashtbl.create 1024 in
    Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) base_t;
    Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) bind_t;
    Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) hist;
    let describe = function
      | Some v -> Printf.sprintf "%S" v
      | None -> "absent"
    in
    let failure = ref None in
    Hashtbl.iter
      (fun k () ->
        if !failure = None then begin
          let actual = Hashtbl.find_opt bind_t k in
          let seq =
            List.rev (try Hashtbl.find hist k with Not_found -> [])
          in
          let admissible =
            if seq = [] then [ Hashtbl.find_opt base_t k ]
            else begin
              (* Effects from the last acked position onward; the base
                 binding joins the window only when nothing was acked. *)
              let effs = List.map fst seq in
              let last_ack = ref (-1) in
              List.iteri
                (fun i (_, acked) -> if acked then last_ack := i)
                seq;
              if !last_ack >= 0 then
                List.filteri (fun i _ -> i >= !last_ack) effs
              else Hashtbl.find_opt base_t k :: effs
            end
          in
          if not (List.mem actual admissible) then
            failure :=
              Some
                (Printf.sprintf
                   "key %d: recovered %s is outside the admissible window \
                    (%d state op(s), %d durably acked, window %s)"
                   k (describe actual) (List.length seq)
                   (List.length
                      (List.filter (fun (_, acked) -> acked) seq))
                   (String.concat ", " (List.map describe admissible)))
        end)
      keys;
    match !failure with Some msg -> Error msg | None -> Ok ()
  end
