(* KV server: accept thread + reader thread per connection (cheap,
   I/O-bound, on the spawning domain) + worker domains each owning a
   bounded queue (the CPU side).  Requests shard to workers by key, so
   one key's operations stay FIFO and workers share nothing on the
   dispatch path.

   File-descriptor ownership protocol: ONLY a connection's reader
   thread ever [Unix.close]s its fd (right before exiting); every
   other party — a worker hitting a write error, the drain path — may
   only [Unix.shutdown] it under the connection's write mutex while
   [alive] still holds, which wakes the blocked reader with EOF.  This
   keeps a closed fd number from being reused by an unrelated socket
   while someone still pokes at it. *)

module Yp = Ct_util.Yieldpoint
module Clock = Ct_util.Clock
module Backoff = Ct_util.Backoff
module Metrics = Ct_util.Metrics
module Progress = Ct_util.Progress

type config = {
  workers : int;
  queue_capacity : int;
  batch : int;
  enqueue_budget : int;
  p99_bound_ns : int;
  p99_window : int;
  tick_interval : float;
  idle_timeout : float;
  write_timeout : float;
}

let default_config () =
  {
    workers = max 1 (Domain.recommended_domain_count () - 1);
    queue_capacity = 256;
    batch = 32;
    enqueue_budget = 4;
    p99_bound_ns = 100_000_000;
    p99_window = 64;
    tick_interval = 0.02;
    idle_timeout = 0.25;
    write_timeout = 0.5;
  }

let exec_site = Yp.register "server.worker.exec"

(* A peer closing mid-write must surface as EPIPE, not kill the
   process.  Signal dispositions are process-global; set once. *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ())

(* Serving counters.  Fixed label order so [stats] output is stable
   for reports and CI checks. *)
let stat_labels =
  [|
    "conns_opened";
    "conns_closed";
    "conns_dropped_slow";
    "bad_requests";
    "pings";
    "dispatched";
    "executed";
    "shed_queue_full";
    "shed_latency_breach";
    "shed_shutdown";
    "deadline_expired";
    "retry_exhausted";
    "server_errors";
    "write_failures";
    "durable_acks";
    "durable_timeouts";
    "read_only";
  |]

let c_conns_opened = 0
let c_conns_closed = 1
let c_conns_dropped_slow = 2
let c_bad_requests = 3
let c_pings = 4
let c_dispatched = 5
let c_executed = 6
let c_shed_queue_full = 7
let c_shed_latency_breach = 8
let c_shed_shutdown = 9
let c_deadline_expired = 10
let c_retry_exhausted = 11
let c_server_errors = 12
let c_write_failures = 13
let c_durable_acks = 14
let c_durable_timeouts = 15
let c_read_only = 16

(* Durable mode (DESIGN.md §14), as hooks rather than a hard
   dependency on a concrete store: the worker applies the operation to
   the map, appends it to a write-ahead log, and withholds the reply
   until the covering group-commit fsync — or until the request's own
   deadline expires, whichever comes first.  The apply-before-append
   order is a checkpointing invariant: a WAL rotation boundary then
   always covers fully-applied state. *)
type durable = {
  d_append :
    Persist.Wal.op -> (int, [ `Degraded | `Closed | `Halted ]) result;
      (* log the (already applied) write; Ok lsn *)
  d_subscribe : lsn:int -> deadline_ns:int -> (Persist.Wal.ack -> unit) -> unit;
      (* fire exactly once with the lsn's fate *)
  d_flush : unit -> unit;  (* graceful drain: force a group commit *)
  d_read_only : unit -> bool;  (* the log degraded; refuse writes *)
}

(* Bounded-cache mode (DESIGN.md §15), as hooks like [durable]: the
   worker routes Get/Put/Remove through the tier instead of the raw
   map, so entries gain TTL, eviction and admission control.  A
   memcached-shaped store: a Put the tier refuses to admit replies
   [Stored false], a Get after eviction/expiry replies [Nil]. *)
type cache_ops = {
  c_get : int -> string option;  (* tier lookup; negative entries read as None *)
  c_put : int -> string -> bool;  (* true = admitted *)
  c_remove : int -> bool;  (* true = was resident *)
}

module Make (M : Ct_util.Map_intf.CONCURRENT_MAP with type key = int) = struct
  type conn = {
    fd : Unix.file_descr;
    wmutex : Mutex.t;
    mutable alive : bool;  (* fd not yet closed by its reader *)
    mutable broken : bool;  (* a write failed; stop writing replies *)
  }

  type item = { iconn : conn; req : Protocol.request; arrival : int }

  (* 0 = running, 1 = draining, 2 = stopped *)
  type t = {
    cfg : config;
    map : string M.t;
    listen_fd : Unix.file_descr;
    lport : int;
    queues : item Bqueue.t array;
    mutable worker_domains : unit Domain.t array;
    mutable accept_thread : Thread.t option;
    mutable ticker_thread : Thread.t option;
    state : int Atomic.t;
    inflight : int Atomic.t;
    shed_p99 : bool Atomic.t;
    lat : Obs.Latency.t;
    counters : int Atomic.t array;
    conns : conn list ref;
    readers : Thread.t list ref;
    conn_mutex : Mutex.t;
    ticker_stop : bool Atomic.t;
    progress : Progress.t option;
    durable : durable option;
    cache : cache_ops option;
    drain_mutex : Mutex.t;
    mutable drain_done : bool;
    mutable drain_flushed : bool;
  }

  let bump t c = Atomic.incr t.counters.(c)

  let port t = t.lport
  let latency t = t.lat
  let shedding t = Atomic.get t.shed_p99
  let draining t = Atomic.get t.state > 0

  let stats t =
    Array.to_list
      (Array.mapi (fun i l -> (l, Atomic.get t.counters.(i))) stat_labels)

  let stat t label =
    match List.assoc_opt label (stats t) with Some v -> v | None -> 0

  (* ---------------------------- writing ----------------------------- *)

  let shutdown_conn conn =
    Mutex.lock conn.wmutex;
    if conn.alive then (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with _ -> ());
    Mutex.unlock conn.wmutex

  let write_reply t conn (b : Bytes.t) =
    Mutex.lock conn.wmutex;
    if conn.alive && not conn.broken then begin
      let ok =
        try
          let len = Bytes.length b in
          let off = ref 0 in
          while !off < len do
            let n = Unix.write conn.fd b !off (len - !off) in
            if n <= 0 then raise Exit;
            off := !off + n
          done;
          true
        with _ -> false
      in
      if not ok then begin
        (* Includes the send-timeout case: a peer that stopped reading
           long enough for SO_SNDTIMEO to fire loses its connection —
           a worker is never parked indefinitely on one bad client. *)
        conn.broken <- true;
        bump t c_write_failures;
        try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with _ -> ()
      end
    end;
    Mutex.unlock conn.wmutex

  let send_reply t conn ~id reply =
    write_reply t conn (Protocol.encode_reply ~id reply)

  (* ---------------------------- workers ----------------------------- *)

  let wal_op = function
    | Protocol.Put (k, v) -> Some (Persist.Wal.Put (k, v))
    | Protocol.Remove k -> Some (Persist.Wal.Remove k)
    | Protocol.Get _ | Protocol.Ping -> None

  (* Withhold [reply] until the WAL covers [lsn] with an fsync.  The
     connection reply (and the inflight decrement drain waits on)
     moves to the ack callback — fired by the WAL's pump thread, which
     runs even when the disk stalls, so the deadline still binds.
     [exec_end] is the worker's post-execution timestamp, so the
     sampled request's fsync-wait span starts exactly where its exec
     span ended and the stage durations sum to the recorded end-to-end
     latency. *)
  let finish_durable t it d reply lsn ~exec_end =
    let tr = it.req.trace in
    let traced = Obs.Trace.sampled tr in
    let deadline_ns =
      if it.req.deadline_ns > 0 then it.arrival + it.req.deadline_ns
      else max_int
    in
    d.d_subscribe ~lsn ~deadline_ns (fun ack ->
        (match ack with
        | Persist.Wal.Durable ->
            bump t c_durable_acks;
            let fin = Clock.monotonic_ns () in
            let e2e = fin - it.arrival in
            Obs.Latency.record_ns_traced t.lat e2e
              ~trace_id:(if traced then Obs.Trace.id tr else 0);
            if traced then begin
              Obs.Trace.record_sink tr Obs.Trace.Fsync_wait ~start_ns:exec_end
                ~dur_ns:(fin - exec_end) ~a:lsn ~b:0;
              Obs.Trace.record_sink tr Obs.Trace.Request ~start_ns:it.arrival
                ~dur_ns:e2e ~a:0 ~b:0
            end;
            send_reply t it.iconn ~id:it.req.id reply
        | Persist.Wal.Timed_out ->
            bump t c_deadline_expired;
            bump t c_durable_timeouts;
            send_reply t it.iconn ~id:it.req.id Protocol.Deadline_exceeded
        | Persist.Wal.Degraded ->
            bump t c_read_only;
            send_reply t it.iconn ~id:it.req.id Protocol.Read_only
        | Persist.Wal.Lost ->
            (* Simulated process death: a dead server sends nothing. *)
            ());
        Atomic.decr t.inflight)

  let serve t it =
    let tr = it.req.trace in
    let traced = Obs.Trace.sampled tr in
    let now = Clock.monotonic_ns () in
    if traced then
      Obs.Trace.record_sink tr Obs.Trace.Queue_wait ~start_ns:it.arrival
        ~dur_ns:(now - it.arrival) ~a:0 ~b:0;
    if it.req.deadline_ns > 0 && now - it.arrival > it.req.deadline_ns then begin
      bump t c_deadline_expired;
      send_reply t it.iconn ~id:it.req.id Protocol.Deadline_exceeded;
      Atomic.decr t.inflight
    end
    else begin
      (* Sampled requests snapshot this domain's own counter cells
         around the operation: the get_at deltas are the CAS retries
         and cache misses this request alone burned, which is what the
         map-op span carries as annotations. *)
      let mtr = M.metrics t.map in
      let mcur = if traced then Metrics.cursor mtr else -1 in
      let retries0 = Metrics.get_at mtr mcur Metrics.Cas_retries in
      let misses0 = Metrics.get_at mtr mcur Metrics.Cache_misses in
      if traced then Obs.Trace.set_current tr;
      let reply =
        match
          Yp.here Yp.Before exec_site;
          let r =
            match t.cache with
            | Some c -> (
                match it.req.op with
                | Protocol.Get k -> (
                    match c.c_get k with
                    | Some v -> Protocol.Value v
                    | None -> Protocol.Nil)
                | Protocol.Put (k, v) -> Protocol.Stored (c.c_put k v)
                | Protocol.Remove k ->
                    if c.c_remove k then Protocol.Removed else Protocol.Nil
                | Protocol.Ping -> Protocol.Pong)
            | None -> (
                match it.req.op with
                | Protocol.Get k -> (
                    match M.lookup t.map k with
                    | Some v -> Protocol.Value v
                    | None -> Protocol.Nil)
                | Protocol.Put (k, v) ->
                    Protocol.Stored (M.add t.map k v <> None)
                | Protocol.Remove k -> (
                    match M.remove t.map k with
                    | Some _ -> Protocol.Removed
                    | None -> Protocol.Nil)
                | Protocol.Ping -> Protocol.Pong)
          in
          Yp.here Yp.After exec_site;
          r
        with
        | r ->
            bump t c_executed;
            Ok r
        | exception e ->
            (* An injected crash (or a real bug) abandoned the
               operation mid-flight.  The residue is the scrubber's
               problem; the client still gets a typed answer. *)
            bump t c_server_errors;
            Error (Protocol.Server_error (Printexc.to_string e))
      in
      if traced then begin
        Obs.Trace.set_current Obs.Trace.none;
        Obs.Trace.record_sink tr Obs.Trace.Map_op ~start_ns:now
          ~dur_ns:(Clock.monotonic_ns () - now)
          ~a:(Metrics.get_at mtr mcur Metrics.Cas_retries - retries0)
          ~b:(Metrics.get_at mtr mcur Metrics.Cache_misses - misses0)
      end;
      (* Finish paths share one [fin] capture, so the exec span, the
         request root span and the latency histogram sample agree to
         the nanosecond — the 5% span-sum acceptance check in
         [repro trace] leans on this. *)
      let finish r =
        let fin = Clock.monotonic_ns () in
        let e2e = fin - it.arrival in
        Obs.Latency.record_ns_traced t.lat e2e
          ~trace_id:(if traced then Obs.Trace.id tr else 0);
        if traced then begin
          Obs.Trace.record_sink tr Obs.Trace.Exec ~start_ns:now
            ~dur_ns:(fin - now) ~a:0 ~b:0;
          Obs.Trace.record_sink tr Obs.Trace.Request ~start_ns:it.arrival
            ~dur_ns:e2e ~a:0 ~b:0
        end;
        send_reply t it.iconn ~id:it.req.id r;
        Atomic.decr t.inflight
      in
      match (reply, t.durable) with
      | Ok r, Some d -> (
          match wal_op it.req.op with
          | Some w -> (
              (* Applied; now log it.  Apply-before-append is what lets
                 a rotation boundary checkpoint fully-applied state. *)
              let a0 = if traced then Clock.monotonic_ns () else 0 in
              match d.d_append w with
              | Ok lsn ->
                  let exec_end =
                    if traced then begin
                      let e = Clock.monotonic_ns () in
                      Obs.Trace.record_sink tr Obs.Trace.Wal_append
                        ~start_ns:a0 ~dur_ns:(e - a0) ~a:lsn ~b:0;
                      Obs.Trace.record_sink tr Obs.Trace.Exec ~start_ns:now
                        ~dur_ns:(e - now) ~a:0 ~b:0;
                      e
                    end
                    else 0
                  in
                  finish_durable t it d r lsn ~exec_end
              | Error `Halted ->
                  (* Dead processes send nothing. *)
                  Atomic.decr t.inflight
              | Error (`Degraded | `Closed) ->
                  bump t c_read_only;
                  send_reply t it.iconn ~id:it.req.id Protocol.Read_only;
                  Atomic.decr t.inflight)
          | None -> finish r)
      | Ok r, None -> finish r
      | Error r, _ ->
          send_reply t it.iconn ~id:it.req.id r;
          Atomic.decr t.inflight
    end

  let worker t w_idx =
    (match t.progress with
    | Some p -> Progress.attach p (w_idx mod Progress.slots p)
    | None -> ());
    let q = t.queues.(w_idx) in
    let batch : item option array = Array.make t.cfg.batch None in
    let rec go () =
      match Bqueue.pop_batch q ~max:t.cfg.batch ~into:batch with
      | None -> ()
      | Some 0 ->
          (* Ticker wakeup on an empty queue: prove liveness so the
             watchdog only ever flags genuinely stuck workers. *)
          (match t.progress with Some p -> Progress.beat p | None -> ());
          go ()
      | Some n ->
          for i = 0 to n - 1 do
            (match batch.(i) with Some it -> serve t it | None -> ());
            batch.(i) <- None
          done;
          go ()
    in
    go ();
    match t.progress with Some p -> Progress.detach p | None -> ()

  (* --------------------------- dispatching -------------------------- *)

  let key_of = function
    | Protocol.Get k | Protocol.Put (k, _) | Protocol.Remove k -> k
    | Protocol.Ping -> 0

  let dispatch t conn bo req =
    let tr = req.Protocol.trace in
    let traced = Obs.Trace.sampled tr in
    let adm0 = if traced then Clock.monotonic_ns () else 0 in
    let reply_now r = send_reply t conn ~id:req.Protocol.id r in
    if Atomic.get t.state > 0 then begin
      bump t c_shed_shutdown;
      reply_now Protocol.Shutting_down
    end
    else if
      (* Degraded log: refuse writes at admission rather than ack data
         that can no longer be made durable.  Reads keep flowing. *)
      match t.durable with
      | Some d -> wal_op req.Protocol.op <> None && d.d_read_only ()
      | None -> false
    then begin
      bump t c_read_only;
      reply_now Protocol.Read_only
    end
    else if Atomic.get t.shed_p99 then begin
      bump t c_shed_latency_breach;
      reply_now (Protocol.Overloaded Protocol.Latency_breach)
    end
    else begin
      let arrival = Clock.monotonic_ns () in
      (* The admission span covers the shed checks above; it ends where
         the request's measured lifetime (arrival) begins, so it sits
         outside the queue_wait/exec/fsync_wait partition of the root
         request span. *)
      if traced then
        Obs.Trace.record_sink tr Obs.Trace.Admission ~start_ns:adm0
          ~dur_ns:(arrival - adm0) ~a:0 ~b:0;
      let w = key_of req.Protocol.op land max_int mod Array.length t.queues in
      let q = t.queues.(w) in
      Atomic.incr t.inflight;
      let it = { iconn = conn; req; arrival } in
      let rec attempt () =
        if Bqueue.try_push q it then true
        else if Backoff.over_budget bo then false
        else begin
          Backoff.once bo;
          attempt ()
        end
      in
      let pushed = attempt () in
      Backoff.reset bo;
      if pushed then bump t c_dispatched
      else begin
        Atomic.decr t.inflight;
        bump t c_shed_queue_full;
        bump t c_retry_exhausted;
        reply_now (Protocol.Overloaded Protocol.Queue_full)
      end
    end

  let handle_payload t conn bo payload =
    match Protocol.decode_request payload with
    | Error msg ->
        bump t c_bad_requests;
        send_reply t conn ~id:0 (Protocol.Bad_request msg)
    | Ok req -> (
        match req.Protocol.op with
        | Protocol.Ping ->
            bump t c_pings;
            send_reply t conn ~id:req.Protocol.id Protocol.Pong
        | _ -> dispatch t conn bo req)

  (* ----------------------------- readers ---------------------------- *)

  let retire t conn =
    Mutex.lock conn.wmutex;
    conn.alive <- false;
    (try Unix.close conn.fd with _ -> ());
    Mutex.unlock conn.wmutex;
    bump t c_conns_closed;
    Mutex.lock t.conn_mutex;
    t.conns := List.filter (fun c -> c != conn) !(t.conns);
    Mutex.unlock t.conn_mutex

  let reader t conn =
    let r = Protocol.Reader.create () in
    (* One budgeted backoff per connection: its exhaustion hook charges
       the served structure's [Retry_exhausted] counter, so queue-full
       sheds show up in the same uniform stats surface as the maps'
       own contention telemetry. *)
    let bo =
      Backoff.create ~min_wait:32 ~max_wait:2048
        ~budget:(max 1 t.cfg.enqueue_budget)
        ~on_exhaust:(fun () ->
          Metrics.incr (M.metrics t.map) Metrics.Retry_exhausted)
        ()
    in
    let rec loop () =
      match Protocol.Reader.read_frame r conn.fd with
      | None -> ()
      | Some payload ->
          handle_payload t conn bo payload;
          loop ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT), _, _)
        ->
          if Protocol.Reader.pending r then
            (* Receive timeout in the middle of a frame: slow-loris.
               Cut the peer loose instead of holding the thread. *)
            bump t c_conns_dropped_slow
          else if not conn.broken then loop ()
      | exception Protocol.Protocol_error _ -> bump t c_bad_requests
      | exception _ -> ()
    in
    loop ();
    retire t conn

  let accept_loop t =
    let rec go () =
      if Atomic.get t.state = 0 then
        match Unix.accept t.listen_fd with
        | fd, _ ->
            (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
            (try
               Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.idle_timeout;
               Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.write_timeout
             with _ -> ());
            let conn = { fd; wmutex = Mutex.create (); alive = true; broken = false } in
            bump t c_conns_opened;
            Mutex.lock t.conn_mutex;
            t.conns := conn :: !(t.conns);
            let th = Thread.create (fun () -> reader t conn) () in
            t.readers := th :: !(t.readers);
            Mutex.unlock t.conn_mutex;
            go ()
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT), _, _)
          ->
            (* SO_RCVTIMEO on the listener: periodic wakeup to observe
               a drain request without racing fd teardown. *)
            go ()
        | exception Unix.Unix_error (ECONNABORTED, _, _) -> go ()
        | exception _ -> ()
    in
    go ()

  (* ------------------------------ ticker ---------------------------- *)

  (* Control loop: wake idle workers so they heartbeat, and run the
     p99 admission check over the latest histogram window.  When the
     window is too thin to judge (often because admission is already
     shedding everything), shedding turns back off — the duty-cycle
     probe that lets the server discover the episode is over. *)
  let ticker t =
    let prev = ref (Obs.Latency.counts t.lat) in
    while not (Atomic.get t.ticker_stop) do
      Unix.sleepf t.cfg.tick_interval;
      Array.iter Bqueue.tick t.queues;
      let now = Obs.Latency.counts t.lat in
      (* Clamped per-bucket diff: [counts] sums per-stripe cells with
         racy reads, so a concurrent [reset] (benches do this between
         phases) or a torn read straddling two ticks can yield
         now < prev for a bucket.  A negative bucket count poisons both
         the window total and the p99 — admission would then shed (or
         un-shed) on garbage.  Clamping loses at most one interval's
         samples for that bucket, which just delays the duty cycle by a
         tick. *)
      let diff = Obs.Latency.diff_counts ~prev:!prev ~now in
      let total = Array.fold_left ( + ) 0 diff in
      if total >= t.cfg.p99_window then begin
        let p99 = Obs.Latency.percentile_of_counts diff 99.0 in
        Atomic.set t.shed_p99 (p99 > float_of_int t.cfg.p99_bound_ns);
        prev := now
      end
      else begin
        Atomic.set t.shed_p99 false;
        if total > 0 then prev := now
      end
    done

  (* ------------------------------ lifecycle ------------------------- *)

  let start ?(config = default_config ()) ?progress ?durable ?cache ?(port = 0)
      map =
    if
      config.workers < 1 || config.queue_capacity < 1 || config.batch < 1
      || config.p99_window < 1 || config.tick_interval <= 0.0
    then invalid_arg "Server.start: bad config";
    (* A tier evicts entries the WAL already acked — replaying such a
       log would resurrect them.  Bounded-cache serving is volatile by
       contract; refuse the combination instead of corrupting either. *)
    if durable <> None && cache <> None then
      invalid_arg "Server.start: durable and cache modes are exclusive";
    Lazy.force ignore_sigpipe;
    let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    let t =
      try
        Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
        Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen listen_fd 128;
        Unix.setsockopt_float listen_fd Unix.SO_RCVTIMEO 0.05;
        let lport =
          match Unix.getsockname listen_fd with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> assert false
        in
        {
          cfg = config;
          map;
          listen_fd;
          lport;
          queues =
            Array.init config.workers (fun _ ->
                Bqueue.create ~capacity:config.queue_capacity);
          worker_domains = [||];
          accept_thread = None;
          ticker_thread = None;
          state = Atomic.make 0;
          inflight = Atomic.make 0;
          shed_p99 = Atomic.make false;
          lat = Obs.Latency.create ~label:"server-request";
          counters =
            Array.init (Array.length stat_labels) (fun _ -> Atomic.make 0);
          conns = ref [];
          readers = ref [];
          conn_mutex = Mutex.create ();
          ticker_stop = Atomic.make false;
          progress;
          durable;
          cache;
          drain_mutex = Mutex.create ();
          drain_done = false;
          drain_flushed = false;
        }
      with e ->
        (try Unix.close listen_fd with _ -> ());
        raise e
    in
    t.worker_domains <-
      Array.init config.workers (fun i -> Domain.spawn (fun () -> worker t i));
    t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
    t.ticker_thread <- Some (Thread.create (fun () -> ticker t) ());
    t

  let drain ?(timeout = 10.0) t =
    Mutex.lock t.drain_mutex;
    if t.drain_done then begin
      let r = t.drain_flushed in
      Mutex.unlock t.drain_mutex;
      r
    end
    else begin
      Atomic.set t.state 1;
      (* Readers now answer every new request [Shutting_down]; the
         accept loop notices on its next timeout tick and exits, after
         which the listener can be closed without racing it. *)
      (match t.accept_thread with Some th -> Thread.join th | None -> ());
      (try Unix.close t.listen_fd with _ -> ());
      (* Durable mode: force a group commit so already-appended writes
         ack on the flush instead of waiting out a commit interval.
         Later appends ride the committer's normal cadence; the
         inflight wait below covers their acks too. *)
      (match t.durable with Some d -> d.d_flush () | None -> ());
      (* Monotonic deadline (Clock.now_ns, mockable in tests): with
         wall-clock time a backwards NTP step made this loop spin past
         its timeout and a forward step truncated the flush window. *)
      let deadline = Clock.now_ns () + int_of_float (timeout *. 1e9) in
      let flushed () =
        Atomic.get t.inflight = 0
        && Array.for_all (fun q -> Bqueue.length q = 0) t.queues
      in
      while (not (flushed ())) && Clock.now_ns () < deadline do
        Unix.sleepf 0.002
      done;
      let ok = flushed () in
      (* Closed queues still deliver what they hold: even on a flush
         timeout every queued request is answered before its worker
         exits — abandonment would be a silent drop. *)
      Array.iter Bqueue.close t.queues;
      Array.iter Domain.join t.worker_domains;
      Atomic.set t.ticker_stop true;
      (match t.ticker_thread with Some th -> Thread.join th | None -> ());
      Mutex.lock t.conn_mutex;
      let conns = !(t.conns) and readers = !(t.readers) in
      Mutex.unlock t.conn_mutex;
      List.iter shutdown_conn conns;
      List.iter Thread.join readers;
      Atomic.set t.state 2;
      t.drain_done <- true;
      t.drain_flushed <- ok;
      Mutex.unlock t.drain_mutex;
      ok
    end

  (* Crash-simulation teardown: sever every connection NOW (peers see
     EOF, so in-flight requests become visible connection drops, never
     silent non-replies on a live socket), then reap threads.  Used by
     the recovery harness right after [Persist.Io.halt]: queued writes
     reach a halted WAL, which refuses instantly, and [Lost] acks send
     nothing — exactly a killed process, minus the fd leak. *)
  let kill t =
    Mutex.lock t.drain_mutex;
    if t.drain_done then Mutex.unlock t.drain_mutex
    else begin
      Atomic.set t.state 1;
      (match t.accept_thread with Some th -> Thread.join th | None -> ());
      (try Unix.close t.listen_fd with _ -> ());
      Mutex.lock t.conn_mutex;
      let conns = !(t.conns) in
      Mutex.unlock t.conn_mutex;
      List.iter shutdown_conn conns;
      Array.iter Bqueue.close t.queues;
      Array.iter Domain.join t.worker_domains;
      Atomic.set t.ticker_stop true;
      (match t.ticker_thread with Some th -> Thread.join th | None -> ());
      Mutex.lock t.conn_mutex;
      let readers = !(t.readers) in
      Mutex.unlock t.conn_mutex;
      List.iter Thread.join readers;
      Atomic.set t.state 2;
      t.drain_done <- true;
      t.drain_flushed <- false;
      Mutex.unlock t.drain_mutex
    end
end
