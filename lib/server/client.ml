type t = {
  fd : Unix.file_descr;
  reader : Protocol.Reader.t;
  mutable next_id : int;
  mutable open_ : bool;
}

exception Disconnected of string

let connect ?(recv_timeout = 5.0) ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO recv_timeout;
    { fd; reader = Protocol.Reader.create (); next_id = 1; open_ = true }
  with e ->
    (try Unix.close fd with _ -> ());
    raise e

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with _ -> ()
  end

let fail t msg =
  close t;
  raise (Disconnected msg)

let write_all t b =
  let len = Bytes.length b in
  let off = ref 0 in
  try
    while !off < len do
      let n = Unix.write t.fd b !off (len - !off) in
      if n <= 0 then raise Exit;
      off := !off + n
    done
  with _ -> fail t "write failed"

let request t ?(deadline_ns = 0) ?(trace = Obs.Trace.none) op =
  if not t.open_ then raise (Disconnected "closed");
  let id = t.next_id in
  t.next_id <- (t.next_id + 1) land 0xFFFF_FFFF;
  write_all t (Protocol.encode_request { Protocol.id; deadline_ns; op; trace });
  (* Strictly one in flight, so the next reply is ours — but skip any
     stale id defensively (e.g. a reply that raced a timeout). *)
  let rec await () =
    match Protocol.Reader.read_frame t.reader t.fd with
    | None -> fail t "server closed the connection"
    | Some payload -> (
        match Protocol.decode_reply payload with
        | Error msg -> fail t ("bad reply: " ^ msg)
        | Ok (rid, reply) -> if rid = id then reply else await ())
    | exception Protocol.Protocol_error msg -> fail t msg
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT), _, _) ->
        fail t "timed out waiting for reply"
    | exception Unix.Unix_error (e, _, _) -> fail t (Unix.error_message e)
  in
  await ()

let ping t = match request t Protocol.Ping with Protocol.Pong -> true | _ -> false

let get t ?deadline_ns ?trace k = request t ?deadline_ns ?trace (Protocol.Get k)

let put t ?deadline_ns ?trace k v =
  request t ?deadline_ns ?trace (Protocol.Put (k, v))

let remove t ?deadline_ns ?trace k =
  request t ?deadline_ns ?trace (Protocol.Remove k)
