(** Seeded open-loop load generator with a reply ledger.

    Open loop means the schedule, not the server, sets the pace:
    request [k] of [n] is sent at [t0 + k/rate] regardless of how many
    replies have come back, so an overloaded server sees the true
    offered rate instead of the closed-loop throttling that hides
    overload (coordinated omission).  The operation mix comes from
    {!Harness.Trace.generate}, so the serving tier is driven by the
    same workload models as the in-process benchmarks.

    Every request is tracked in a {e ledger} until it is accounted
    for: a typed reply, or a connection-level drop (the fault plan or
    the server's slow-peer defence killing the socket — visible to the
    client, hence accounted).  A request sent on a connection that
    stayed alive but never produced a reply is a {e silent drop};
    {!verify} fails the run if any exist.  The whole run is
    deterministic per plan: seeds feed the trace, the fault schedule
    and nothing else ([rate] pacing follows the real clock, so
    {e timings} vary — outcomes of the ledger kind do not depend on
    wall-clock luck for accounting).

    Plans serialize to a one-line-per-field text trace
    (["kvload-trace v1"]) so a failing run's exact traffic can be
    replayed from the command line. *)

type plan = {
  seed : int;  (** feeds the trace and, combined with salts, the fault plan *)
  n : int;  (** total requests *)
  conns : int;  (** concurrent connections; request [k] rides connection [k mod conns] *)
  rate : float;  (** offered rate, requests/second, across all connections *)
  profile : Harness.Trace.profile;  (** operation mix (reads/inserts/removes/universe/skew) *)
  deadline_ns : int;  (** per-request budget stamped on every request; 0 = none *)
  value_bytes : int;  (** payload size for puts *)
  partition : bool;
      (** remap request [i]'s key to [k * conns + i mod conns], so each
          final key is touched by exactly one connection and therefore
          has a total operation order — required by
          {!verify_recovered} *)
  net : Chaos.Net.plan;  (** traffic-path fault plan ({!Chaos.Net.quiet} = faults off) *)
  trace_one_in : int;
      (** 0 = tracing off.  [> 0]: every request carries a
          deterministic trace id (seed packed above the request index)
          and every [trace_one_in]-th is head-sampled, so the server
          records its span tree *)
}

val default_plan : plan
(** 20k requests over 8 connections at 20k req/s, [read_mostly] mix,
    250ms deadlines, 32-byte values, faults off, tracing off. *)

val ctx_for : plan -> int -> Obs.Trace.ctx
(** The trace context request [i] is sent with — deterministic per
    plan, {!Obs.Trace.none} when [trace_one_in = 0]. *)

val trace_id_for : plan -> int -> int
(** [Obs.Trace.id (ctx_for plan i)] — the id a ledger row correlates
    with its exported span tree. *)

val to_string : plan -> string
(** Serialize as a ["kvload-trace v1"] text trace. *)

val of_string : string -> (plan, string) result

(** One ledger slot.  In durable mode an ok [Replied] on a write is
    the durable-ack column: the server sends it only after the
    covering WAL fsync. *)
type outcome = Pending | Dropped | Replied of Protocol.reply

type summary = {
  plan : plan;
  elapsed : float;  (** seconds, first send to last accounting *)
  sent : int;  (** frames fully or partially written (= [plan.n] unless connections failed) *)
  ok : int;  (** successful replies: value/nil/stored/removed/pong *)
  shed_queue_full : int;
  shed_latency_breach : int;
  deadline_exceeded : int;
  shutting_down : int;
  read_only : int;  (** typed write refusals from a degraded WAL *)
  rejected : int;  (** [Bad_request] + [Server_error] replies *)
  dropped : int;  (** requests accounted to a connection-level drop *)
  pending : int;  (** silent drops: live connection, no reply — must be 0 *)
  reconnects : int;
  fault_drops : int;  (** fault-plan connection severs fired *)
  fault_lorises : int;
  fault_pauses : int;
  offered_rate : float;  (** [plan.rate] *)
  achieved_rate : float;  (** [sent / elapsed] *)
  ok_rate : float;  (** [ok / elapsed] — the sustained goodput *)
  client_p50_ns : float;  (** client-observed send-to-reply latency over ok replies *)
  client_p99_ns : float;
  outcomes : outcome array;  (** the full ledger, slot [i] = request [i] *)
  trace_ids : int array;
      (** slot [i] = the trace id request [i] carried (0 = untraced);
          regenerated from the plan, so a [--replay] of the same trace
          file yields the same ids *)
}

val shed : summary -> int
(** Typed sheds: [shed_queue_full + shed_latency_breach +
    deadline_exceeded + shutting_down + read_only]. *)

val accounted : summary -> int
(** [ok + sheds + rejected + dropped] — equals [plan.n] iff nothing is
    left pending (requests abandoned because the server became
    unreachable count as dropped, not pending). *)

val run : port:int -> plan -> summary
(** Drive 127.0.0.1:[port] with the plan and account every request.
    After the schedule completes, lingers briefly for in-flight
    replies; anything still unanswered on a live connection stays
    [pending]. *)

val verify : summary -> (unit, string) result
(** The zero-silent-drop check: every sent request has exactly one
    accounting ([pending = 0] and the ledger adds up). *)

val requests : plan -> Protocol.op array
(** The exact operation sequence the plan sends (trace generation plus
    the [partition] key remap): slot [i] is request [i]'s op, sent on
    connection [i mod conns].  Deterministic per plan — the recovery
    verifier reconstructs history from this. *)

val verify_recovered :
  summary ->
  base:(int * string) list ->
  bindings:(int * string) list ->
  (unit, string) result
(** The crash-recovery acceptance check (requires [plan.partition]).
    [base] is the store content when the run started (what recovery
    loaded from the previous incarnation); [bindings] is the content
    after this run's crash + recovery.  For every key, the recovered
    binding must be the effect of some operation at or after the
    key's last durably-acked one ([ok Replied] = the WAL fsync
    covered it), or — for keys with no acked op — the base binding or
    any of the key's unacked effects.  Fails when an acked write was
    lost, or a binding appears that no operation (or base) explains. *)

val pp_summary : Format.formatter -> summary -> unit
