(** Bounded multi-producer single-consumer queue with {e explicit}
    backpressure: producers never block and never grow the buffer —
    a full queue refuses the push and the caller decides (the server's
    dispatch path retries on a budgeted {!Ct_util.Backoff}, then sheds
    with a typed [Overloaded] reply).

    A plain mutex + condition ring, not a lock-free structure: the
    queue hand-off is two orders of magnitude cheaper than the socket
    I/O around it, and a blocked consumer must sleep, not spin. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Racy snapshot of the current depth. *)

val try_push : 'a t -> 'a -> bool
(** Nonblocking; [false] if the queue is full or closed. *)

val pop_batch : 'a t -> max:int -> into:'a option array -> int option
(** Consume up to [max] items into [into.(0 ..)], oldest first,
    blocking while the queue is open and empty.  [Some 0] is a benign
    wakeup with nothing queued ({!tick} or a spurious signal — the
    server's idle-heartbeat path); [None] means closed {e and}
    drained: no further item will ever arrive.  Items already queued
    when {!close} runs are still delivered. *)

val tick : 'a t -> unit
(** Wake a blocked consumer without delivering anything — lets an idle
    worker publish a heartbeat.  (Stdlib [Condition] has no timed
    wait; the server's ticker thread calls this instead.) *)

val close : 'a t -> unit
(** Refuse future pushes and wake the consumer; idempotent. *)

val closed : 'a t -> bool
