(** Traffic-path fault family for the serving layer (DESIGN.md §12).

    Connection-level faults run on the {e client} side of a socket and
    model hostile or broken peers: vanishing mid-frame (connection
    drop), trickling a frame byte-by-byte (slow-loris write), and
    pausing reads so the server's replies back up against its send
    timeout.  The load generator threads {!send} / {!maybe_pause_read}
    through all its traffic, so a chaos-on run attacks the server with
    exactly the patterns its defences exist for.  All decisions come
    from seeded {!Ct_util.Rng} state: same plan, same salt — same
    faults.

    {!stall_sites} is the server-side member of the family: it parks
    worker domains at their {!Ct_util.Yieldpoint} sites (the global
    injector slot, so the flight/progress {e observer} still records
    what the stalled worker was doing). *)

type plan = {
  seed : int;
  drop_one_in : int;  (** sever the connection mid-frame, 1-in-N sends (0 = never) *)
  loris_one_in : int;  (** slow-loris a frame, 1-in-N sends (0 = never) *)
  loris_chunk : int;  (** bytes per loris trickle *)
  loris_delay : float;  (** seconds between trickles *)
  pause_reads_one_in : int;  (** nap before a read, 1-in-N reads (0 = never) *)
  pause_reads_s : float;  (** nap length, seconds *)
}

val quiet : plan
(** All faults off (rates zero); the chaos-off baseline. *)

val default : plan
(** Mild ambient hostility: drops 1-in-400 sends, lorises 1-in-500,
    pauses reads 1-in-300. *)

type t
(** Per-connection fault state: two independent generators (sender and
    receiver threads must not share RNG state) plus fired counters. *)

val create : ?salt:int -> plan -> t
(** [create ~salt plan] — give each connection a distinct [salt] so
    the fault schedule is deterministic per (plan.seed, salt). *)

val send : t -> Unix.file_descr -> Bytes.t -> bool
(** Send one encoded frame through the fault plan.  [false] means the
    fault (or the server's defence reacting to it — e.g. an idle
    timeout cutting off a loris) killed the connection: the caller
    must account every in-flight request as connection-dropped and
    reconnect.  Never raises on I/O failure. *)

val maybe_pause_read : t -> unit
(** Receiver-side fault: sometimes nap before reading, letting replies
    pile up in the socket buffer. *)

val drops : t -> int
val lorises : t -> int
val pauses : t -> int

(** {2 Worker stalls} *)

type stall
(** Handle for a bounded stall campaign over yield-point sites. *)

val stall_sites :
  ?seed:int ->
  ?one_in:int ->
  ?max_stalls:int ->
  duration:float ->
  string ->
  stall
(** [stall_sites ~duration prefix] installs a global yield-point hook
    that parks any domain crossing a [Before]-phase site whose name
    starts with [prefix] (e.g. ["server.worker."]) for [duration]
    seconds, with probability [1/one_in] (default 1), at most
    [max_stalls] times in total (default 1).  Unlike {!Chaos.stall}
    the stall is bounded and needs no victim registration or release —
    the worker freezes long enough for its queue to fill and the
    watchdog to notice, then the run continues.  Replaces any other
    injector in the global slot; {!Chaos.clear} uninstalls it. *)

val stalls_fired : stall -> int
