(** Chaos layer: fault injection at the tries' yield points.

    The paper's lock-freedom and linearizability arguments rest on
    {e helping}: any domain that finds a frozen slot, a live
    ENode/FNode/XNode descriptor, or an announced SNode transaction
    can complete the stalled operation itself (PAPER.md §3.4–§3.7),
    and likewise for the Ctrie's TNode cleanup and the snapshotting
    Ctrie's GCAS/RDCSS descriptors.  The scheduler alone almost never
    produces the adversarial interleavings those paths exist for, so
    this module forces them: it installs hooks on the
    {!Ct_util.Yieldpoint} sites that bracket every CAS in
    [Cachetrie], [Ctrie] and [Ctrie_snap].

    Three injectors, all driven by seeded {!Ct_util.Rng} state:

    - {!stall} parks a chosen victim domain the first time it reaches
      a chosen yield point, until {!release} — used to show peers
      still make progress whichever single step a domain is suspended
      at (lock-freedom via helping);
    - {!crash} raises {!Injected_crash} in the victim at a chosen
      point, abandoning the operation mid-flight and leaving its
      descriptor/announcement live in the structure — used to show a
      peer's next operation help-completes the residue;
    - {!jitter} randomly pauses {e every} domain at yield points,
      widening race windows for the linearizability battery.

    Only one injector is active at a time (constructors overwrite the
    global hook); call {!clear} when done — tests should do so in a
    [Fun.protect] finalizer so a failing assertion cannot leak a hook
    into later tests. *)

exception Injected_crash of string
(** Raised in the victim domain by {!crash}; the payload is the site
    name.  The abandoned operation's partial state is left in the
    structure on purpose. *)

type t
(** An injector handle. *)

val stall : ?phase:Ct_util.Yieldpoint.phase -> Ct_util.Yieldpoint.site -> t
(** [stall site] installs a stall injector: the first time the victim
    domain (see {!as_victim}) reaches [site] at [phase] (default
    [Before]), it parks in a sleep loop until {!release} (sleeping
    keeps the parked domain in a blocking section, so it cannot block
    other domains' stop-the-world sections).  Fires at most once. *)

val crash : ?phase:Ct_util.Yieldpoint.phase -> ?skip:int -> Ct_util.Yieldpoint.site -> t
(** [crash site] installs a crash injector: the [skip]+1-th time
    (default first) the victim reaches [site] at [phase] (default
    [After] — i.e. just {e after} a successful publication, the
    canonical "died holding a live descriptor" state), raise
    {!Injected_crash}.  Fires at most once. *)

val jitter : ?seed:int -> ?one_in:int -> ?max_spin:int -> unit -> t
(** [jitter ()] installs a delay injector affecting all domains: at
    every yield point, with probability [1/one_in] (default 4), spin
    for a pseudo-random number of [cpu_relax] steps drawn from a
    per-domain seeded {!Ct_util.Backoff} window capped at [max_spin]
    (default 512).  Deterministic per (seed, domain). *)

val as_victim : t -> (unit -> 'a) -> 'a
(** [as_victim inj f] runs [f] with the current domain registered as
    [inj]'s victim (stall/crash injectors only target the victim).
    Always unregisters, including on exception. *)

val stalled : t -> bool
(** Has the stall victim parked at the site yet?  (Stall handles only.) *)

val release : t -> unit
(** Let a parked (or future) stall victim through.  (Stall handles only.) *)

val crashed : t -> bool
(** Did the crash fire?  (Crash handles only.) *)

val clear : unit -> unit
(** Uninstall whatever hook is active; yield points return to the
    production no-op fast path. *)

(** Traffic-path fault family: client-side connection faults
    (drops, slow-loris, read pauses) and bounded worker stalls for
    the serving layer.  See {!Chaos_net}. *)
module Net : module type of Chaos_net

(** Storage-path fault family: torn/short writes, failed and delayed
    fsyncs, deterministic kills on the {!Persist.Io} seam.  See
    {!Chaos_disk}. *)
module Disk : module type of Chaos_disk
