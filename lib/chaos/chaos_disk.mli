(** Storage-path fault family: the production injector for the
    persistence layer's {!Persist.Io} seam (torn writes, short writes,
    failed and delayed fsyncs, deterministic kills).  Seeded and
    replayable, like {!Chaos_net} on the traffic path. *)

type plan = {
  seed : int;
  target : string;
      (** only inject on paths containing this substring; [""] = all *)
  torn_one_in : int;  (** kill -9 mid-write, prefix persisted; 0 = never *)
  short_one_in : int;  (** partial write accepted; the caller loops *)
  fsync_fail_one_in : int;  (** fsync fails with [EIO] *)
  fsync_delay_one_in : int;  (** stalled disk *)
  fsync_delay_s : float;
}

val quiet : plan
(** No faults — the do-no-harm baseline. *)

val default : plan
(** Short writes one-in-7, failed fsyncs one-in-200, stalled fsyncs
    one-in-50.  Torn writes stay off: process kills are {!arm_kill}'s
    job, placed deterministically. *)

type t

val install : ?salt:int -> plan -> t
(** Install as THE process-global {!Persist.Io} injector (last
    installed wins).  [salt] decorrelates the RNG across storm
    iterations sharing one plan seed. *)

val arm_kill : t -> ?target:string -> ?at_fsync:bool -> after:int -> unit -> unit
(** Schedule one deterministic kill: the [after]-th next write (fsync
    when [at_fsync]) whose path contains [target] becomes the crash —
    a torn write persisting a seeded prefix, then {!Persist.Io.halt}.
    Sweeping [after] places crashes at every phase of group commit and
    checkpoint publication. *)

val disarm_kill : t -> unit

val kill_armed : t -> bool
(** [false] once the armed kill has fired (or none was armed). *)

val torn : t -> int
val shorts : t -> int
val fsync_fails : t -> int
val fsync_delays : t -> int

val killed : t -> int
(** Armed kills that actually fired. *)

val clear : unit -> unit
(** Uninstall ({!Persist.Io.clear}); storage I/O returns to the
    production fast path. *)
