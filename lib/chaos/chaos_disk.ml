(* Storage-path fault family (DESIGN.md §14): the production injector
   for the persistence layer's {!Persist.Io} seam.

   Same shape as {!Chaos_net} on the traffic path: a seeded plan of
   one-in-N faults, counters for what actually fired, and determinism
   per (seed, salt) so a failing crash-storm run replays.  The faults
   are what real disks and real kills do to a write-ahead log:

   - torn writes: a prefix of the buffer reaches the file and the
     process dies ([Io.Halted]) — kill -9 mid group-commit;
   - short writes: the kernel takes fewer bytes than asked (the
     caller's write loop must cope);
   - failed fsyncs ([EIO]) — the WAL's retry budget and degraded
     state exist for these;
   - delayed fsyncs — a stalled disk; durable acks must convert to
     typed timeouts, not unbounded latency.

   {!arm_kill} schedules one deterministic kill on the Nth matching
   write (or fsync): the crash-storm harness sweeps N to place crashes
   at every phase of commit and checkpoint.  All randomized decisions
   come from one seeded [Ct_util.Rng] guarded by a mutex — the
   injector is called from committer, checkpointer and harness
   threads. *)

module Rng = Ct_util.Rng
module Io = Persist.Io

type plan = {
  seed : int;
  target : string;  (* only paths containing this substring; "" = all *)
  torn_one_in : int;  (* 0 = never *)
  short_one_in : int;
  fsync_fail_one_in : int;
  fsync_delay_one_in : int;
  fsync_delay_s : float;
}

let quiet =
  {
    seed = 0xD15C;
    target = "";
    torn_one_in = 0;
    short_one_in = 0;
    fsync_fail_one_in = 0;
    fsync_delay_one_in = 0;
    fsync_delay_s = 0.02;
  }

(* Default storm plan: frequent short writes (harmless if the write
   loop is right), occasional stalled and failed fsyncs.  Torn writes
   stay opt-in — they kill the process, which is {!arm_kill}'s job to
   do at a chosen spot. *)
let default =
  {
    quiet with
    short_one_in = 7;
    fsync_fail_one_in = 200;
    fsync_delay_one_in = 50;
  }

type kill = {
  k_target : string;
  k_at_fsync : bool;
  mutable k_after : int;  (* matching ops left before the kill *)
}

type t = {
  plan : plan;
  rng : Rng.t;
  mu : Mutex.t;
  mutable kill : kill option;
  mutable torn : int;
  mutable shorts : int;
  mutable fsync_fails : int;
  mutable fsync_delays : int;
  mutable killed : int;
}

let contains ~sub s =
  sub = ""
  ||
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let hit t one_in = one_in > 0 && Rng.next_int t.rng one_in = 0

(* A kill consumes its countdown only on ops matching its own target
   filter; when the countdown crosses zero the op becomes the crash. *)
let kill_due t ~path ~fsync =
  match t.kill with
  | Some k when k.k_at_fsync = fsync && contains ~sub:k.k_target path ->
      k.k_after <- k.k_after - 1;
      if k.k_after < 0 then begin
        t.kill <- None;
        t.killed <- t.killed + 1;
        true
      end
      else false
  | _ -> false

let on_write t ~path ~len =
  Mutex.lock t.mu;
  let d =
    if not (contains ~sub:t.plan.target path) then Io.W_ok
    else if kill_due t ~path ~fsync:false then begin
      (* Deterministic kill: persist a seeded fraction of the buffer. *)
      Io.W_torn (Rng.next_int t.rng (len + 1))
    end
    else if hit t t.plan.torn_one_in then begin
      t.torn <- t.torn + 1;
      Io.W_torn (Rng.next_int t.rng (len + 1))
    end
    else if hit t t.plan.short_one_in && len > 1 then begin
      t.shorts <- t.shorts + 1;
      Io.W_short (1 + Rng.next_int t.rng (len - 1))
    end
    else Io.W_ok
  in
  Mutex.unlock t.mu;
  d

let on_fsync t ~path =
  Mutex.lock t.mu;
  let d =
    if not (contains ~sub:t.plan.target path) then Io.F_ok
    else if kill_due t ~path ~fsync:true then Io.F_halt
    else if hit t t.plan.fsync_fail_one_in then begin
      t.fsync_fails <- t.fsync_fails + 1;
      Io.F_error
    end
    else if hit t t.plan.fsync_delay_one_in then begin
      t.fsync_delays <- t.fsync_delays + 1;
      Io.F_delay t.plan.fsync_delay_s
    end
    else Io.F_ok
  in
  Mutex.unlock t.mu;
  d

let install ?(salt = 0) plan =
  let t =
    {
      plan;
      rng = Rng.create (Rng.mix64 (plan.seed lxor (salt * 0x9E3779B9)));
      mu = Mutex.create ();
      kill = None;
      torn = 0;
      shorts = 0;
      fsync_fails = 0;
      fsync_delays = 0;
      killed = 0;
    }
  in
  Io.install
    { Io.on_write = (fun ~path ~len -> on_write t ~path ~len);
      on_fsync = (fun ~path -> on_fsync t ~path) };
  t

let arm_kill t ?(target = "") ?(at_fsync = false) ~after () =
  if after < 0 then invalid_arg "Chaos_disk.arm_kill";
  Mutex.lock t.mu;
  t.kill <- Some { k_target = target; k_at_fsync = at_fsync; k_after = after };
  Mutex.unlock t.mu

let disarm_kill t =
  Mutex.lock t.mu;
  t.kill <- None;
  Mutex.unlock t.mu

let kill_armed t =
  Mutex.lock t.mu;
  let b = t.kill <> None in
  Mutex.unlock t.mu;
  b

let counter t f =
  Mutex.lock t.mu;
  let n = f t in
  Mutex.unlock t.mu;
  n

let torn t = counter t (fun t -> t.torn)
let shorts t = counter t (fun t -> t.shorts)
let fsync_fails t = counter t (fun t -> t.fsync_fails)
let fsync_delays t = counter t (fun t -> t.fsync_delays)
let killed t = counter t (fun t -> t.killed)

let clear = Io.clear
