(* Fault injectors on top of Ct_util.Yieldpoint.  Each constructor
   installs itself as THE global yield-point hook (last installed
   wins); [clear] restores the production fast path.  Injectors never
   touch the structure under test — they only park, raise, or spin in
   the calling domain. *)

module Yp = Ct_util.Yieldpoint
module Rng = Ct_util.Rng
module Backoff = Ct_util.Backoff

exception Injected_crash of string

type stall_state = {
  s_reached : bool Atomic.t;
  s_released : bool Atomic.t;
  s_armed : bool Atomic.t;
}

type crash_state = { c_remaining : int Atomic.t; c_crashed : bool Atomic.t }

type kind = Stall of stall_state | Crash of crash_state | Jitter

type t = { kind : kind; victim : int Atomic.t }

let no_victim = -1

let is_victim inj = (Domain.self () :> int) = Atomic.get inj.victim

let stall ?(phase = Yp.Before) site =
  let st =
    {
      s_reached = Atomic.make false;
      s_released = Atomic.make false;
      s_armed = Atomic.make true;
    }
  in
  let inj = { kind = Stall st; victim = Atomic.make no_victim } in
  Yp.install (fun ph s ->
      if
        s == site && ph = phase && is_victim inj
        && Atomic.get st.s_armed
        && Atomic.compare_and_set st.s_armed true false
      then begin
        Atomic.set st.s_reached true;
        (* Sleep, don't spin: a sleeping domain is in a blocking
           section, so its backup thread keeps answering STW requests
           and a long park cannot wedge other domains' GC. *)
        while not (Atomic.get st.s_released) do
          Unix.sleepf 1e-4
        done
      end);
  inj

let crash ?(phase = Yp.After) ?(skip = 0) site =
  let st = { c_remaining = Atomic.make skip; c_crashed = Atomic.make false } in
  let inj = { kind = Crash st; victim = Atomic.make no_victim } in
  Yp.install (fun ph s ->
      if s == site && ph = phase && is_victim inj && not (Atomic.get st.c_crashed)
      then
        if Atomic.fetch_and_add st.c_remaining (-1) <= 0 then begin
          Atomic.set st.c_crashed true;
          raise (Injected_crash (Yp.name site))
        end);
  inj

let jitter ?(seed = 0x00C0FFEE) ?(one_in = 4) ?(max_spin = 512) () =
  if one_in <= 0 || max_spin <= 0 then invalid_arg "Chaos.jitter";
  (* Per-domain state: a seeded decision RNG plus a Backoff controller
     drawing the pause lengths, each domain on its own seed stream. *)
  let key =
    Domain.DLS.new_key (fun () ->
        let id = (Domain.self () :> int) in
        let b =
          Backoff.create ~min_wait:4 ~max_wait:max_spin
            ~seed:(Rng.mix64 (seed lxor (id * 0x9E3779B9)))
            ()
        in
        let rng = Rng.create (Rng.mix64 (seed + id)) in
        (b, rng))
  in
  let inj = { kind = Jitter; victim = Atomic.make no_victim } in
  Yp.install (fun _ _ ->
      let b, rng = Domain.DLS.get key in
      if Rng.next_int rng one_in = 0 then
        for _ = 1 to Backoff.next_wait b do
          Domain.cpu_relax ()
        done);
  inj

let as_victim inj f =
  Atomic.set inj.victim (Domain.self () :> int);
  Fun.protect ~finally:(fun () -> Atomic.set inj.victim no_victim) f

let stalled inj =
  match inj.kind with
  | Stall st -> Atomic.get st.s_reached
  | Crash _ | Jitter -> invalid_arg "Chaos.stalled"

let release inj =
  match inj.kind with
  | Stall st -> Atomic.set st.s_released true
  | Crash _ | Jitter -> invalid_arg "Chaos.release"

let crashed inj =
  match inj.kind with
  | Crash st -> Atomic.get st.c_crashed
  | Stall _ | Jitter -> invalid_arg "Chaos.crashed"

let clear = Yp.clear

(* Traffic-path fault family (connection drops, slow-loris writes,
   read pauses, bounded worker stalls) — see chaos_net.ml. *)
module Net = Chaos_net
module Disk = Chaos_disk
