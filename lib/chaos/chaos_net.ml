(* Traffic-path fault family (DESIGN.md §12): adversarial client
   behaviour for the serving layer, plus a bounded worker-stall
   injector over the server's yield points.

   The connection-level faults run on the CLIENT side of a socket —
   they are what hostile or broken peers do to a server: vanish
   mid-frame (connection drop), trickle a frame byte-by-byte
   (slow-loris write), or stop reading replies so the peer's send
   buffer backs up (read pause).  The load generator threads them
   through every send/receive, so a chaos-on run attacks the server
   with exactly the patterns its defences (receive/send timeouts,
   typed sheds) exist for.  All decisions come from a seeded
   [Ct_util.Rng], so a failing run replays. *)

module Yp = Ct_util.Yieldpoint
module Rng = Ct_util.Rng

type plan = {
  seed : int;
  drop_one_in : int;  (* 0 = never *)
  loris_one_in : int;  (* 0 = never *)
  loris_chunk : int;
  loris_delay : float;
  pause_reads_one_in : int;  (* 0 = never *)
  pause_reads_s : float;
}

let quiet =
  {
    seed = 0x7EA7;
    drop_one_in = 0;
    loris_one_in = 0;
    loris_chunk = 5;
    loris_delay = 0.06;
    pause_reads_one_in = 0;
    pause_reads_s = 0.15;
  }

let default =
  {
    quiet with
    drop_one_in = 400;
    loris_one_in = 500;
    pause_reads_one_in = 300;
  }

type t = {
  plan : plan;
  rng : Rng.t;  (* owned by the connection's sender thread *)
  read_rng : Rng.t;  (* owned by the receiver thread *)
  mutable drops : int;
  mutable lorises : int;
  mutable pauses : int;
}

let create ?(salt = 0) plan =
  {
    plan;
    rng = Rng.create (Rng.mix64 (plan.seed lxor (salt * 0x9E3779B9)));
    read_rng = Rng.create (Rng.mix64 (plan.seed + (salt * 2) + 1));
    drops = 0;
    lorises = 0;
    pauses = 0;
  }

let drops t = t.drops
let lorises t = t.lorises
let pauses t = t.pauses

let hit rng one_in = one_in > 0 && Rng.next_int rng one_in = 0

let write_all fd b off len =
  let off = ref off and stop = off + len in
  while !off < stop do
    let n = Unix.write fd b !off (stop - !off) in
    if n <= 0 then raise Exit;
    off := !off + n
  done

(* Send one frame through the fault plan.  [false] means the fault (or
   the server's defence reacting to it) killed the connection: the
   caller must account every in-flight request as connection-dropped
   and reconnect. *)
let send t fd (b : Bytes.t) =
  if hit t.rng t.plan.drop_one_in then begin
    (* Vanish mid-frame: publish a torn prefix, then drop the line —
       the server must discard the partial frame, not wedge on it. *)
    t.drops <- t.drops + 1;
    let torn = max 1 (Bytes.length b / 2) in
    (try write_all fd b 0 torn with _ -> ());
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ());
    false
  end
  else if hit t.rng t.plan.loris_one_in then begin
    (* Slow-loris: the whole frame, eventually — in tiny chunks with
       long gaps.  When the gaps outlast the server's idle timeout it
       cuts us off mid-frame; that surfaces here as a write error. *)
    t.lorises <- t.lorises + 1;
    let len = Bytes.length b in
    let chunk = max 1 t.plan.loris_chunk in
    match
      let off = ref 0 in
      while !off < len do
        let n = min chunk (len - !off) in
        write_all fd b !off n;
        off := !off + n;
        if !off < len then Unix.sleepf t.plan.loris_delay
      done
    with
    | () -> true
    | exception _ -> false
  end
  else match write_all fd b 0 (Bytes.length b) with
    | () -> true
    | exception _ -> false

(* Receiver-side fault: nap before reading, so the peer's replies pile
   up in the socket buffer (exercises the server's send timeout). *)
let maybe_pause_read t =
  if hit t.read_rng t.plan.pause_reads_one_in then begin
    t.pauses <- t.pauses + 1;
    Unix.sleepf t.plan.pause_reads_s
  end

(* ----------------------------- worker stalls ------------------------ *)

type stall = {
  st_remaining : int Atomic.t;
  st_fired : int Atomic.t;
  st_duration : float;
  st_one_in : int;
  st_seed : int;
}

(* Park any domain that crosses a [prefix] site, for [duration]
   seconds, with probability [1/one_in], at most [max_stalls] times in
   total.  Unlike {!Chaos.stall} this needs no victim registration and
   no release call — the stall is bounded, which is what a soak wants:
   the worker freezes long enough for queues to fill and the watchdog
   to fire, then the run continues.  Installs the global yield-point
   hook (replacing any other injector); [Chaos.clear] removes it. *)
let stall_sites ?(seed = 0x57A11) ?(one_in = 1) ?(max_stalls = 1)
    ~duration prefix =
  if one_in <= 0 || max_stalls < 0 || duration < 0.0 then
    invalid_arg "Chaos_net.stall_sites";
  let st =
    {
      st_remaining = Atomic.make max_stalls;
      st_fired = Atomic.make 0;
      st_duration = duration;
      st_one_in = one_in;
      st_seed = seed;
    }
  in
  let key =
    Domain.DLS.new_key (fun () ->
        Rng.create (Rng.mix64 (seed + (Domain.self () :> int))))
  in
  Yp.install (fun ph site ->
      if
        ph = Yp.Before
        && Atomic.get st.st_remaining > 0
        && String.starts_with ~prefix (Yp.name site)
        && Rng.next_int (Domain.DLS.get key) st.st_one_in = 0
        && Atomic.fetch_and_add st.st_remaining (-1) > 0
      then begin
        Atomic.incr st.st_fired;
        (* Sleep, not spin: a sleeping domain sits in a blocking
           section and cannot wedge other domains' stop-the-world. *)
        Unix.sleepf st.st_duration
      end);
  st

let stalls_fired st = Atomic.get st.st_fired
