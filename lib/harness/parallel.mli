(** Multi-domain benchmark execution.

    Spawns worker domains, synchronizes them on a {!Barrier.t} and
    times the window from release to the last completion — the
    methodology behind the paper's Figures 11-13. *)

val run_timed : domains:int -> (int -> unit) -> float
(** [run_timed ~domains body] runs [body d] on [domains] domains
    (domain index [d] in [0, domains)) starting simultaneously and
    returns the elapsed wall-clock seconds until every domain
    finished. *)

val run_counted :
  domains:int -> (int -> Ct_util.Stripe.t -> unit) -> float * int
(** [run_counted ~domains body] is {!run_timed} plus per-domain
    throughput counters: [body d counters] records the operations it
    completed with [Ct_util.Stripe.add counters d n] (each domain's
    slot is alone on its cache line, so counting never causes false
    sharing between domains).  Returns [(elapsed_seconds, total_ops)]
    with the counters summed after every domain has joined. *)

val run_collect : domains:int -> (int -> 'a) -> 'a list
(** [run_collect ~domains body] runs [body] on each domain after a
    common barrier and returns the per-domain results in index
    order. *)

val available_domains : unit -> int
(** Recommended domain count on this machine. *)
