(** Deterministic JSON exports of the observability layer (the twin of
    the Prometheus text in {!Obs.Export}), built on {!Report.Json} so
    equal counter states serialize byte-identically — no timestamps,
    fixed field order. *)

val metrics_json : unit -> Report.Json.t
(** Every live metrics family ({!Ct_util.Metrics.aggregate}) as
    [{families: [{family; live_instances; counters; derived}]}]. *)

val latency_json : (string * Obs.Latency.t) list -> Report.Json.t
(** Labelled histograms as [{op; count; sum_ns; p50_ns; p99_ns;
    p999_ns; buckets: [{le_ns; count}]}] — percentiles are the
    bucket-interpolated ones, buckets list only non-empty entries. *)

val spans_json : Obs.Trace.t -> Report.Json.t
(** A trace collector's resident window as [{stages: [{stage; count;
    sum_ns}]; spans: [{trace_id; stage; start_ns; dur_ns; a; b; slot;
    stamp}]}], stamp-ordered. *)

val chrome_trace_json : Obs.Trace.t -> Report.Json.t
(** The same window as Chrome trace-event JSON (complete events,
    [ph = "X"], microsecond [ts]/[dur] rebased to the earliest span,
    one [tid] per ring slot) — load the file in Perfetto or
    [chrome://tracing] to see sampled requests' span trees against the
    WAL's background fsync spans. *)

val invariants : unit -> string list
(** Accounting invariants over the aggregated counters; one message
    per violation, empty when all families are consistent.  Checked:
    [cas_retries <= cas_attempts] (a retry is a failed attempt) and
    [cache_hits + cache_misses = cache_lookups] (every probe is
    classified exactly once). *)
