(** Synthetic operation traces and a replay engine.

    The paper's evaluation uses generated workloads (Appendix A.2.4:
    "there are no special datasets used... workloads are generated");
    this module packages that as reusable production-trace simulation:
    a [profile] describes an operation mix, key universe and popularity
    skew; [generate] expands it into a deterministic trace;
    [replay]/[replay_parallel] drive any map with it and report what
    happened.  Used by the [trace] benchmark and the workload tests. *)

type op =
  | Lookup of int
  | Insert of int * int
  | Remove of int

type profile = {
  reads : int;  (** percent of operations that are lookups *)
  inserts : int;  (** percent that are inserts *)
  removes : int;  (** percent that are removes; the three must sum to 100 *)
  universe : int;  (** keys are drawn from [0, universe) *)
  skew : float;  (** Zipf exponent; 0 = uniform *)
}

val read_mostly : profile
(** 95/4/1 over 100k keys, Zipf 0.9 — a cache-friendly serving tier. *)

val churn : profile
(** 50/25/25 over 100k keys, uniform — a session-store-like mix. *)

val write_heavy : profile
(** 10/60/30 over 100k keys, Zipf 0.5 — an ingest pipeline. *)

val generate : ?seed:int -> profile -> int -> op array
(** [generate profile n] — a deterministic trace of [n] operations.
    @raise Invalid_argument if the percentages do not sum to 100. *)

type latency_summary = {
  timed_ops : int;  (** operations timed (= trace length) *)
  p50_ns : float;
  p99_ns : float;
  p999_ns : float;
      (** exact percentiles over the raw per-op samples
          ({!Ct_util.Stats.percentile}, not bucket interpolation) *)
}

type outcome = {
  hits : int;  (** lookups that found a binding *)
  misses : int;
  updates : int;  (** inserts that replaced an existing binding *)
  fresh : int;  (** inserts of a new key *)
  removed : int;  (** removes that found their key *)
  elapsed : float;  (** seconds *)
  latency : latency_summary option;
      (** present iff the replay was asked to time operations *)
}

module Replay (M : Ct_util.Map_intf.CONCURRENT_MAP with type key = int) : sig
  val replay : ?prefill:int -> int M.t -> op array -> outcome
  (** [replay t trace] runs the trace on one domain.  [prefill] inserts
      keys [0, prefill) first (outside the clock). *)

  val replay_parallel :
    ?prefill:int ->
    ?latency:Obs.Latency.t ->
    int M.t ->
    domains:int ->
    op array ->
    outcome
  (** Splits the trace across [domains] (interleaved round-robin so all
      domains see the same mix) and replays concurrently; counters are
      summed.  With [latency], every operation is bracketed by the
      monotonic clock and recorded into the (striped, shared)
      histogram, and the outcome carries exact p50/p99/p999 over the
      raw samples.  Timing costs two clock reads per op, so throughput
      numbers from a timed replay are not comparable to untimed ones. *)
end
