(** Plain-text table rendering for benchmark reports, mirroring the
    row/series layout of the paper's tables and figures. *)

val table : header:string list -> string list list -> string
(** [table ~header rows] — a column-aligned plain-text table. *)

val print_table : header:string list -> string list list -> unit

val fmt_ns : float -> string
(** Nanoseconds with 1 decimal, e.g. ["123.4"]. *)

val fmt_ms : float -> string
(** Seconds rendered as milliseconds with 2 decimals. *)

val fmt_kb : float -> string

val fmt_x : float -> string
(** Multiplier, e.g. ["2.3x"]. *)

val section : string -> unit
(** Print a banner heading. *)

val checked_elapsed : what:string -> float -> float
(** [checked_elapsed ~what s] returns [s] after asserting it is a
    non-negative, finite number of seconds.
    @raise Invalid_argument otherwise, naming [what] — elapsed times
    in this repo come from {!Ct_util.Clock.monotonic_ns}, so a
    negative or NaN elapsed is a harness bug (e.g. a reintroduced
    wall-clock measurement racing an NTP step), never a valid
    measurement to propagate into throughput numbers. *)

(** Minimal JSON emitter for the persisted benchmark files
    ([BENCH_micro.json], [BENCH_sweeps.json]).  Output is deterministic
    for equal inputs: fields keep insertion order, floats render with
    ["%.6g"] (non-finite values become [null]), and no timestamps are
    ever inserted — so files regenerated from identical measurements
    diff clean. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Pretty-printed (2-space indent), trailing newline. *)

  val write_file : string -> t -> unit
  (** Write to a path and log the path to stdout. *)
end
