(** Deterministic workload generation for the benchmarks.

    The paper's workloads are synthetic key sets (Appendix A.2.4):
    uniformly hashed integer keys, inserted either by all threads (high
    contention, Figure 11) or in disjoint ranges (low contention,
    Figure 12), then looked up in shuffled order (Figures 10 and 13).
    Every generator is deterministic in its [seed] so runs are
    reproducible. *)

val shuffled_keys : ?seed:int -> int -> int array
(** [shuffled_keys n] — the keys [0 .. n-1] in a random order.  The
    maps mix hashes, so sequential key values already give uniform
    trie positions; shuffling removes allocation-order artifacts. *)

val disjoint_ranges : domains:int -> total:int -> int array array
(** [disjoint_ranges ~domains ~total] splits [0 .. total-1] into
    [domains] contiguous chunks (sizes differ by at most 1). *)

val lookup_order : ?seed:int -> int array -> int array
(** A shuffled copy of the key set, for lookup passes. *)

val batches : batch:int -> int array -> int array array
(** [batches ~batch keys] slices [keys] into consecutive chunks of
    [batch] keys (the last chunk may be shorter), the shape the
    [find_batch]/[insert_batch] paths consume.  Chunks preserve the
    input order, so [batches ~batch (shuffled_keys n)] is a seeded
    batch-shaped workload.
    @raise Invalid_argument if [batch <= 0]. *)

val batched_lookups : ?seed:int -> batch:int -> int array -> int array array
(** [batched_lookups ~batch keys] — {!lookup_order} of the key set,
    pre-sliced into [batch]-sized chunks for batched lookup passes. *)

val zipf_keys : ?seed:int -> n:int -> universe:int -> float -> int array
(** [zipf_keys ~n ~universe s] — [n] keys drawn from a Zipf([s])
    distribution over [0, universe); used by the skewed-workload
    example and ablations (not part of the paper's figures). *)
