(** Per-figure experiment drivers.

    One function per artifact of the paper's evaluation (Section 5 and
    the artifact appendix).  Each prints the table/series that the
    corresponding figure plots; EXPERIMENTS.md records the outputs
    against the paper's reported shapes.

    [scale] controls problem sizes: [Quick] runs in seconds for smoke
    testing, [Full] uses sizes close to the paper's. *)

type scale = Quick | Full

module type IMAP = Ct_util.Map_intf.CONCURRENT_MAP with type key = int

val structures : (module IMAP) list
(** All maps under test: cachetrie, cachetrie w/o cache, ctrie,
    ctrie-snap (with O(1) snapshots), chm (split-ordered), chm-striped,
    skiplist, cow-hamt (persistent HAMT behind an atomic root), and
    oa-folklore (the "folklore" open-addressing table with help-driven
    migration, the flat-layout contender). *)

val structure_names : string list

val find_structure : string -> (module IMAP) option

val thread_counts : scale -> int list
(** Domain counts exercised by the multi-threaded experiments at the
    given scale. *)

val fig9_footprint : scale -> unit
(** Figure 9: memory footprint per structure and size, with the
    multiplier over the smallest (the paper normalizes to skip lists). *)

val fig10_single_threaded : scale -> unit
(** Figure 10: single-threaded lookup and insert times vs size. *)

val fig11_insert_high_contention : scale -> unit
(** Figure 11: all threads insert the same key sequence. *)

val fig12_insert_low_contention : scale -> unit
(** Figure 12: threads insert disjoint key ranges. *)

val fig13_parallel_lookup : scale -> unit
(** Figure 13: parallel lookup over a prefilled map. *)

val histograms : scale -> unit
(** Artifact A.5.1: level-occupancy histograms ("BirthdaySimulations")
    plus the adjacent-pair coverage check of Theorem 4.2. *)

val theory : scale -> unit
(** Section 4.1: analytic depth distribution vs an empirical trie, the
    mu(n) interval of Theorem 4.2 and the expected depth of 4.3. *)

val ablation_cache : scale -> unit
(** Extension: lookup cost with the cache on/off and across
    [max_misses] settings — quantifies the cache's contribution
    (the paper's "w/o cache" comparison, extended). *)

val ablation_narrow : scale -> unit
(** Extension: narrow (4-slot) nodes on/off — insert time and memory
    footprint with and without the paper's small-node optimization
    (Section 3.2, scenario 3). *)

val mixed_workload : scale -> unit
(** Extension: YCSB-style mixed operation benchmark (90% lookup /
    9% insert / 1% remove, and 50/40/10) across all structures and
    thread counts — the read-mostly regime the paper argues
    dictionaries live in. *)

val zipf_lookup : scale -> unit
(** Extension: lookup throughput under Zipf-skewed key popularity —
    skew concentrates traffic on few keys and shows how the trie cache
    behaves when the hot set is small. *)

val trace_replay : scale -> unit
(** Extension: replay deterministic production-style traces
    (read-mostly / churn / write-heavy profiles from {!Trace}) against
    every structure, single- and multi-domain. *)

val remove_throughput : scale -> unit
(** Extension: single-threaded remove throughput and the cost of
    remove-side compression (Section 3.7), per structure. *)
