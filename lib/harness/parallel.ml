let available_domains () = Domain.recommended_domain_count ()

let run_collect ~domains body =
  if domains <= 0 then invalid_arg "Parallel.run_collect";
  let barrier = Barrier.create domains in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            Barrier.await barrier;
            body d))
  in
  List.map Domain.join workers

let run_counted ~domains body =
  if domains <= 0 then invalid_arg "Parallel.run_counted";
  (* Per-domain op counters live in one cache-line-padded stripe so
     that domains bumping their own counter never invalidate each
     other's lines (Ct_util.Stripe pads every slot). *)
  let counters = Ct_util.Stripe.create ~stripes:domains () in
  let barrier = Barrier.create (domains + 1) in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            Barrier.await barrier;
            body d counters))
  in
  Barrier.await barrier;
  (* Monotonic, not wall-clock: an NTP step during a run must not be
     able to produce a negative or inflated elapsed (and with it a
     nonsense throughput figure). *)
  let t0 = Ct_util.Clock.monotonic_ns () in
  List.iter Domain.join workers;
  let elapsed =
    Report.checked_elapsed ~what:"Parallel.run_counted"
      (float_of_int (Ct_util.Clock.monotonic_ns () - t0) *. 1e-9)
  in
  (elapsed, Ct_util.Stripe.sum counters)

let run_timed ~domains body =
  if domains <= 0 then invalid_arg "Parallel.run_timed";
  (* The main thread participates in the barrier so the clock starts
     when the workers are released, not when they are spawned. *)
  let barrier = Barrier.create (domains + 1) in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            Barrier.await barrier;
            body d))
  in
  Barrier.await barrier;
  let t0 = Ct_util.Clock.monotonic_ns () in
  List.iter Domain.join workers;
  Report.checked_elapsed ~what:"Parallel.run_timed"
    (float_of_int (Ct_util.Clock.monotonic_ns () - t0) *. 1e-9)
