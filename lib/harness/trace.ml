module Rng = Ct_util.Rng

type op = Lookup of int | Insert of int * int | Remove of int

type profile = {
  reads : int;
  inserts : int;
  removes : int;
  universe : int;
  skew : float;
}

let read_mostly = { reads = 95; inserts = 4; removes = 1; universe = 100_000; skew = 0.9 }
let churn = { reads = 50; inserts = 25; removes = 25; universe = 100_000; skew = 0.0 }
let write_heavy = { reads = 10; inserts = 60; removes = 30; universe = 100_000; skew = 0.5 }

let generate ?(seed = 0x7EACE) profile n =
  if profile.reads + profile.inserts + profile.removes <> 100 then
    invalid_arg "Trace.generate: percentages must sum to 100";
  if profile.universe <= 0 then invalid_arg "Trace.generate: empty universe";
  let rng = Rng.create seed in
  let keys =
    if profile.skew = 0.0 then
      Array.init n (fun _ -> Rng.next_int rng profile.universe)
    else
      Workload.zipf_keys ~seed:(seed lxor 0x5A5A) ~n ~universe:profile.universe
        profile.skew
  in
  Array.init n (fun i ->
      let dice = Rng.next_int rng 100 in
      let k = keys.(i) in
      if dice < profile.reads then Lookup k
      else if dice < profile.reads + profile.inserts then Insert (k, i)
      else Remove k)

type latency_summary = {
  timed_ops : int;
  p50_ns : float;
  p99_ns : float;
  p999_ns : float;
}

type outcome = {
  hits : int;
  misses : int;
  updates : int;
  fresh : int;
  removed : int;
  elapsed : float;
  latency : latency_summary option;
}

module Replay (M : Ct_util.Map_intf.CONCURRENT_MAP with type key = int) = struct
  let run_slice t trace lo hi step =
    let hits = ref 0
    and misses = ref 0
    and updates = ref 0
    and fresh = ref 0
    and removed = ref 0 in
    let i = ref lo in
    while !i < hi do
      (match trace.(!i) with
      | Lookup k -> if M.lookup t k = None then incr misses else incr hits
      | Insert (k, v) -> if M.add t k v = None then incr fresh else incr updates
      | Remove k -> if M.remove t k <> None then incr removed);
      i := !i + step
    done;
    (!hits, !misses, !updates, !fresh, !removed)

  (* Timed twin of [run_slice]: brackets each operation with the
     monotonic clock, feeds the shared histogram (striped, so domains
     do not contend) and keeps the raw sample so the summary can use
     exact [Stats.percentile] instead of bucket interpolation. *)
  let run_slice_timed t trace lo hi step hist samples =
    let hits = ref 0
    and misses = ref 0
    and updates = ref 0
    and fresh = ref 0
    and removed = ref 0 in
    let i = ref lo and j = ref 0 in
    while !i < hi do
      let start = Ct_util.Clock.monotonic_ns () in
      (match trace.(!i) with
      | Lookup k -> if M.lookup t k = None then incr misses else incr hits
      | Insert (k, v) -> if M.add t k v = None then incr fresh else incr updates
      | Remove k -> if M.remove t k <> None then incr removed);
      let ns = Ct_util.Clock.monotonic_ns () - start in
      Obs.Latency.record_ns hist ns;
      samples.(!j) <- float_of_int ns;
      incr j;
      i := !i + step
    done;
    (!hits, !misses, !updates, !fresh, !removed)

  let slice_len lo hi step = if lo >= hi then 0 else ((hi - lo - 1) / step) + 1

  let prefill_keys t n =
    for k = 0 to n - 1 do
      M.insert t k k
    done

  let replay ?(prefill = 0) t trace =
    prefill_keys t prefill;
    (* Monotonic: replay throughput must survive an NTP step mid-run
       without going negative or getting skewed. *)
    let t0 = Ct_util.Clock.monotonic_ns () in
    let hits, misses, updates, fresh, removed =
      run_slice t trace 0 (Array.length trace) 1
    in
    let elapsed =
      Report.checked_elapsed ~what:"Trace.replay"
        (float_of_int (Ct_util.Clock.monotonic_ns () - t0) *. 1e-9)
    in
    { hits; misses; updates; fresh; removed; elapsed; latency = None }

  let replay_parallel ?(prefill = 0) ?latency t ~domains trace =
    prefill_keys t prefill;
    let n = Array.length trace in
    let t0 = Ct_util.Clock.monotonic_ns () in
    let results, samples =
      match latency with
      | None ->
          ( Parallel.run_collect ~domains (fun d -> run_slice t trace d n domains),
            [||] )
      | Some hist ->
          let buffers =
            Array.init domains (fun d -> Array.make (slice_len d n domains) 0.0)
          in
          let r =
            Parallel.run_collect ~domains (fun d ->
                run_slice_timed t trace d n domains hist buffers.(d))
          in
          (r, Array.concat (Array.to_list buffers))
    in
    let elapsed =
      Report.checked_elapsed ~what:"Trace.replay_parallel"
        (float_of_int (Ct_util.Clock.monotonic_ns () - t0) *. 1e-9)
    in
    let latency =
      if Array.length samples = 0 then None
      else
        Some
          {
            timed_ops = Array.length samples;
            p50_ns = Ct_util.Stats.percentile samples 50.0;
            p99_ns = Ct_util.Stats.percentile samples 99.0;
            p999_ns = Ct_util.Stats.percentile samples 99.9;
          }
    in
    List.fold_left
      (fun acc (h, m, u, f, r) ->
        {
          acc with
          hits = acc.hits + h;
          misses = acc.misses + m;
          updates = acc.updates + u;
          fresh = acc.fresh + f;
          removed = acc.removed + r;
        })
      {
        hits = 0;
        misses = 0;
        updates = 0;
        fresh = 0;
        removed = 0;
        elapsed;
        latency;
      }
      results
end
