module Metrics = Ct_util.Metrics
module Json = Report.Json

let counters_obj counters =
  Json.Obj (List.map (fun (label, n) -> (label, Json.Int n)) counters)

let family_json (family, live, counters) =
  Json.Obj
    [
      ("family", Json.String family);
      ("live_instances", Json.Int live);
      ("counters", counters_obj counters);
      ("derived", counters_obj (Obs.Export.derived counters));
    ]

let metrics_json () =
  Json.Obj [ ("families", Json.List (List.map family_json (Metrics.aggregate ()))) ]

let histogram_json (op, h) =
  let counts = Obs.Latency.counts h in
  let total = Array.fold_left ( + ) 0 counts in
  let buckets = ref [] in
  for b = Array.length counts - 1 downto 0 do
    if counts.(b) > 0 then
      buckets :=
        Json.Obj
          [
            ("le_ns", Json.Float (Obs.Latency.bucket_upper_ns b));
            ("count", Json.Int counts.(b));
          ]
        :: !buckets
  done;
  let pct p =
    if total = 0 then Json.Null
    else Json.Float (Obs.Latency.percentile_of_counts counts p)
  in
  Json.Obj
    [
      ("op", Json.String op);
      ("count", Json.Int total);
      ("sum_ns", Json.Int (Obs.Latency.sum_ns h));
      ("p50_ns", pct 50.0);
      ("p99_ns", pct 99.0);
      ("p999_ns", pct 99.9);
      ("buckets", Json.List !buckets);
    ]

let latency_json histograms =
  Json.Obj [ ("histograms", Json.List (List.map histogram_json histograms)) ]

let invariants () =
  let violations = ref [] in
  List.iter
    (fun (family, _, counters) ->
      let get l = match List.assoc_opt l counters with Some n -> n | None -> 0 in
      let attempts = get "cas_attempts" and retries = get "cas_retries" in
      if retries > attempts then
        violations :=
          Printf.sprintf "%s: cas_retries %d > cas_attempts %d" family retries
            attempts
          :: !violations;
      let hits = get "cache_hits" and misses = get "cache_misses" in
      (match List.assoc_opt "cache_lookups" (Obs.Export.derived counters) with
      | Some lookups when hits + misses <> lookups ->
          violations :=
            Printf.sprintf "%s: cache_hits %d + cache_misses %d <> cache_lookups %d"
              family hits misses lookups
            :: !violations
      | _ -> ()))
    (Metrics.aggregate ());
  List.rev !violations
