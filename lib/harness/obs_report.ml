module Metrics = Ct_util.Metrics
module Json = Report.Json

let counters_obj counters =
  Json.Obj (List.map (fun (label, n) -> (label, Json.Int n)) counters)

let family_json (family, live, counters) =
  Json.Obj
    [
      ("family", Json.String family);
      ("live_instances", Json.Int live);
      ("counters", counters_obj counters);
      ("derived", counters_obj (Obs.Export.derived counters));
    ]

let metrics_json () =
  Json.Obj [ ("families", Json.List (List.map family_json (Metrics.aggregate ()))) ]

let histogram_json (op, h) =
  let counts = Obs.Latency.counts h in
  let total = Array.fold_left ( + ) 0 counts in
  let buckets = ref [] in
  for b = Array.length counts - 1 downto 0 do
    if counts.(b) > 0 then
      buckets :=
        Json.Obj
          [
            ("le_ns", Json.Float (Obs.Latency.bucket_upper_ns b));
            ("count", Json.Int counts.(b));
          ]
        :: !buckets
  done;
  let pct p =
    if total = 0 then Json.Null
    else Json.Float (Obs.Latency.percentile_of_counts counts p)
  in
  Json.Obj
    [
      ("op", Json.String op);
      ("count", Json.Int total);
      ("sum_ns", Json.Int (Obs.Latency.sum_ns h));
      ("p50_ns", pct 50.0);
      ("p99_ns", pct 99.0);
      ("p999_ns", pct 99.9);
      ("buckets", Json.List !buckets);
    ]

let latency_json histograms =
  Json.Obj [ ("histograms", Json.List (List.map histogram_json histograms)) ]

(* ------------------------------- spans ------------------------------ *)

let span_json (s : Obs.Trace.span) =
  Json.Obj
    [
      ("trace_id", Json.Int s.trace_id);
      ("stage", Json.String (Obs.Trace.stage_name s.stage));
      ("start_ns", Json.Int s.start_ns);
      ("dur_ns", Json.Int s.dur_ns);
      ("a", Json.Int s.a);
      ("b", Json.Int s.b);
      ("slot", Json.Int s.slot);
      ("stamp", Json.Int s.stamp);
    ]

let spans_json tr =
  Json.Obj
    [
      ( "stages",
        Json.List
          (List.map
             (fun (stage, count, sum_ns) ->
               Json.Obj
                 [
                   ("stage", Json.String stage);
                   ("count", Json.Int count);
                   ("sum_ns", Json.Int sum_ns);
                 ])
             (Obs.Trace.stage_summary tr)) );
      ("spans", Json.List (List.map span_json (Obs.Trace.spans tr)));
    ]

(* Chrome trace-event JSON (the catapult format Perfetto loads):
   complete events (ph "X") with microsecond ts/dur, one tid per ring
   slot, trace id and stage annotations in args.  Timestamps are
   rebased to the earliest span so the viewport opens on the data
   rather than hours of monotonic-clock offset. *)
let chrome_trace_json tr =
  let spans = Obs.Trace.spans tr in
  let t0 =
    List.fold_left (fun acc (s : Obs.Trace.span) -> min acc s.start_ns) max_int
      spans
  in
  let us ns = float_of_int ns /. 1e3 in
  let event (s : Obs.Trace.span) =
    Json.Obj
      [
        ("name", Json.String (Obs.Trace.stage_name s.stage));
        ("cat", Json.String "request");
        ("ph", Json.String "X");
        ("ts", Json.Float (us (s.start_ns - t0)));
        ("dur", Json.Float (us s.dur_ns));
        ("pid", Json.Int 1);
        ("tid", Json.Int s.slot);
        ( "args",
          Json.Obj
            [
              ("trace_id", Json.Int s.trace_id);
              ("a", Json.Int s.a);
              ("b", Json.Int s.b);
            ] );
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event spans));
      ("displayTimeUnit", Json.String "ns");
    ]

let invariants () =
  let violations = ref [] in
  List.iter
    (fun (family, _, counters) ->
      let get l = match List.assoc_opt l counters with Some n -> n | None -> 0 in
      let attempts = get "cas_attempts" and retries = get "cas_retries" in
      if retries > attempts then
        violations :=
          Printf.sprintf "%s: cas_retries %d > cas_attempts %d" family retries
            attempts
          :: !violations;
      let hits = get "cache_hits" and misses = get "cache_misses" in
      (match List.assoc_opt "cache_lookups" (Obs.Export.derived counters) with
      | Some lookups when hits + misses <> lookups ->
          violations :=
            Printf.sprintf "%s: cache_hits %d + cache_misses %d <> cache_lookups %d"
              family hits misses lookups
            :: !violations
      | _ -> ()))
    (Metrics.aggregate ());
  List.rev !violations
