(** Progress watchdog over {!Ct_util.Progress} heartbeats.

    Detects worker domains that have stopped {e publishing} — a domain
    parked inside a yield-point hook, crashed mid-operation, or
    spinning in a CAS retry loop all look the same here: an attached
    slot whose heartbeat counter stays frozen across epochs.  The
    report names the last yield-point site the domain was observed at
    (the {!Ct_util.Yieldpoint} observer fires before the main hook, so
    the site is recorded even when the hook never returns).

    The watchdog is advisory: it never unblocks a domain itself.  Its
    escalation hook is meant to run a {e scrub} on the affected
    structures so the survivors stop depending on the stuck domain's
    incidental helping. *)

type report = {
  slot : int;  (** progress slot of the stalled domain *)
  beats : int;  (** heartbeat count frozen since the stall began *)
  epochs_stalled : int;  (** consecutive silent epochs *)
  site : Ct_util.Yieldpoint.site option;
      (** last yield point the domain reached, if any *)
  phase : Ct_util.Yieldpoint.phase option;
}

type t

val create :
  ?stall_epochs:int ->
  ?on_stall:(report -> unit) ->
  ?flight:Obs.Flight.t ->
  ?tracer:Obs.Trace.t * Obs.Latency.t ->
  Ct_util.Progress.t ->
  t
(** [create progress] watches [progress].  A slot is reported stalled
    after [stall_epochs] (default 3) consecutive epochs without a
    heartbeat; slots never attached are ignored.  [on_stall] runs once
    per slot per stall episode, from the stepping thread — it must not
    block on the stalled domain.  [flight] wires in a flight recorder
    whose stamp-ordered dump {!post_mortem} embeds (install it with
    {!Obs.Flight.install_with_progress} so heartbeats and events come
    from the same observer).  [tracer] pairs a span collector with the
    latency histogram whose tail exemplars index into it;
    {!post_mortem} then dumps the span tree of the slowest sampled
    request still resident — what the stalled site was doing to the
    tail. *)

val step : t -> report list
(** Advance one epoch by hand and return every currently stalled slot
    (deterministic mode, used by the tests).  Fresh stalls trigger
    [on_stall]; a slot that beats again re-arms its escalation. *)

val stalled : t -> report list
(** Currently stalled slots, without advancing the epoch. *)

val epoch : t -> int

val report_to_string : report -> string
(** ["slot 2 stalled for 4 epochs at cachetrie.txn.help/before (17 beats)"] *)

val post_mortem : ?flight_limit:int -> t -> string
(** Full diagnostic dump: per-slot heartbeat ages (beats, epochs of
    silence, last yield point) for every attached slot, the current
    stall reports, — when a flight recorder was passed to {!create} —
    its most recent [flight_limit] (default 64) events in stamp order,
    and — with [tracer] — the span tree of the current tail exemplar.
    Safe to call concurrently with running workers. *)

val start : t -> interval:float -> unit
(** Spawn a background monitor thread stepping every [interval]
    seconds.  Raises [Invalid_argument] if already running. *)

val stop : t -> unit
(** Stop and join the monitor thread; idempotent. *)
