let table ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let widths = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let render_row r =
    String.concat "  "
      (List.mapi (fun i cell -> Printf.sprintf "%*s" widths.(i) cell) r)
  in
  let sep =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows) ^ "\n"

let print_table ~header rows = print_string (table ~header rows)
let fmt_ns ns = Printf.sprintf "%.1f" ns
let fmt_ms s = Printf.sprintf "%.2f" (s *. 1000.0)
let fmt_kb kb = Printf.sprintf "%.1f" kb
let fmt_x x = Printf.sprintf "%.2fx" x

let checked_elapsed ~what s =
  if Float.is_nan s || s < 0.0 || s = Float.infinity then
    invalid_arg
      (Printf.sprintf "%s: elapsed %f is not a non-negative duration" what s);
  s

let section title =
  let bar = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n==  %s  ==\n%s\n" bar title bar

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* "%.6g" keeps the files diffable across runs of equal results; JSON
     has no inf/nan, so non-finite floats degrade to null. *)
  let float_repr f =
    if Float.is_nan f || Float.abs f = Float.infinity then "null"
    else
      let s = Printf.sprintf "%.6g" f in
      (* "1e+06" is valid JSON; "1." is not — normalize trailing dot. *)
      if String.length s > 0 && s.[String.length s - 1] = '.' then s ^ "0" else s

  let rec emit buf indent v =
    let pad n = Buffer.add_string buf (String.make n ' ') in
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (indent + 2);
            emit buf (indent + 2) item)
          items;
        Buffer.add_char buf '\n';
        pad indent;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (indent + 2);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\": ";
            emit buf (indent + 2) item)
          fields;
        Buffer.add_char buf '\n';
        pad indent;
        Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 4096 in
    emit buf 0 v;
    Buffer.add_char buf '\n';
    Buffer.contents buf

  let write_file path v =
    let oc = open_out path in
    output_string oc (to_string v);
    close_out oc;
    Printf.printf "wrote %s\n%!" path
end
