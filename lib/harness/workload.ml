module Rng = Ct_util.Rng

let shuffled_keys ?(seed = 0xC0FFEE) n =
  let keys = Array.init n Fun.id in
  Rng.shuffle (Rng.create seed) keys;
  keys

let disjoint_ranges ~domains ~total =
  if domains <= 0 then invalid_arg "Workload.disjoint_ranges";
  let base = total / domains and rem = total mod domains in
  let start = ref 0 in
  Array.init domains (fun d ->
      let len = base + if d < rem then 1 else 0 in
      let r = Array.init len (fun i -> !start + i) in
      start := !start + len;
      r)

let lookup_order ?(seed = 0xFEEDFACE) keys =
  let copy = Array.copy keys in
  Rng.shuffle (Rng.create seed) copy;
  copy

let batches ~batch keys =
  if batch <= 0 then invalid_arg "Workload.batches";
  let n = Array.length keys in
  let nb = (n + batch - 1) / batch in
  Array.init nb (fun b ->
      let lo = b * batch in
      Array.sub keys lo (min batch (n - lo)))

let batched_lookups ?(seed = 0xFEEDFACE) ~batch keys =
  batches ~batch (lookup_order ~seed keys)

let zipf_keys ?(seed = 0x5EED) ~n ~universe s =
  if universe <= 0 || n < 0 || s < 0.0 then invalid_arg "Workload.zipf_keys";
  let rng = Rng.create seed in
  (* Inverse-CDF sampling over the harmonic weights. *)
  let weights = Array.init universe (fun i -> (1.0 /. float_of_int (i + 1)) ** s) in
  let cdf = Array.make universe 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cdf.(i) <- !acc)
    weights;
  let total = !acc in
  Array.init n (fun _ ->
      let x = Rng.next_float rng *. total in
      (* Binary search for the first cdf entry >= x. *)
      let lo = ref 0 and hi = ref (universe - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cdf.(mid) < x then lo := mid + 1 else hi := mid
      done;
      !lo)
