(* Progress watchdog: detects domains that have stopped publishing.

   The watchdog owns no clock of its own — it compares successive
   {!Ct_util.Progress} heartbeat snapshots.  A slot that is attached
   (its domain has reached at least one yield point) but whose beat
   counter has not moved for [stall_epochs] consecutive epochs is
   reported as stalled, together with the last yield-point site the
   domain was observed at.  Because [Progress] listens on the
   yield-point *observer* slot, the site record survives even when the
   chaos stall injector has parked the domain inside the main hook —
   the observer fires first.

   Epochs advance either by explicit [step] calls (deterministic, used
   by the tests) or by a background monitor domain ([start]/[stop])
   that steps every [interval] seconds and runs the [on_stall]
   escalation callback — typically a structure scrub — once per slot
   per stall episode. *)

module Progress = Ct_util.Progress
module Yieldpoint = Ct_util.Yieldpoint

type report = {
  slot : int;
  beats : int;  (* heartbeat count frozen since the stall began *)
  epochs_stalled : int;
  site : Yieldpoint.site option;  (* last yield point reached, if any *)
  phase : Yieldpoint.phase option;
}

type t = {
  progress : Progress.t;
  stall_epochs : int;
  on_stall : report -> unit;
  flight : Obs.Flight.t option;  (* embedded in post-mortem dumps *)
  tracer : (Obs.Trace.t * Obs.Latency.t) option;
      (* tail-exemplar source: the latency histogram names the slowest
         sampled request, the tracer resolves its span tree *)
  prev : int array;
  stalled_for : int array;
  escalated : bool array;  (* on_stall already ran for this episode *)
  mutable epoch : int;
  mutable monitor : Thread.t option;
  stop_requested : bool Atomic.t;
}

let create ?(stall_epochs = 3) ?(on_stall = fun _ -> ()) ?flight ?tracer
    progress =
  if stall_epochs < 1 then invalid_arg "Watchdog.create: stall_epochs < 1";
  let n = Progress.slots progress in
  {
    progress;
    stall_epochs;
    on_stall;
    flight;
    tracer;
    prev = Progress.snapshot progress;
    stalled_for = Array.make n 0;
    escalated = Array.make n false;
    epoch = 0;
    monitor = None;
    stop_requested = Atomic.make false;
  }

let epoch t = t.epoch

let report_of t slot =
  let site, phase =
    match Progress.last t.progress slot with
    | Some (s, p) -> (Some s, Some p)
    | None -> (None, None)
  in
  {
    slot;
    beats = t.prev.(slot);
    epochs_stalled = t.stalled_for.(slot);
    site;
    phase;
  }

let step t =
  t.epoch <- t.epoch + 1;
  let now = Progress.snapshot t.progress in
  let stalled = ref [] in
  for slot = Array.length now - 1 downto 0 do
    if now.(slot) <> t.prev.(slot) then begin
      (* The domain published: episode over, re-arm escalation. *)
      t.prev.(slot) <- now.(slot);
      t.stalled_for.(slot) <- 0;
      t.escalated.(slot) <- false
    end
    else if Progress.last t.progress slot <> None then begin
      (* Attached but silent.  A slot never attached stays ignored —
         idle workers are not stalls. *)
      t.stalled_for.(slot) <- t.stalled_for.(slot) + 1;
      if t.stalled_for.(slot) >= t.stall_epochs then
        stalled := report_of t slot :: !stalled
    end
    else begin
      (* Vacated (the domain detached cleanly): drop any stale episode. *)
      t.stalled_for.(slot) <- 0;
      t.escalated.(slot) <- false
    end
  done;
  let fresh =
    List.filter (fun r -> not t.escalated.(r.slot)) !stalled
  in
  List.iter (fun r -> t.escalated.(r.slot) <- true; t.on_stall r) fresh;
  !stalled

let stalled t =
  let out = ref [] in
  for slot = Array.length t.prev - 1 downto 0 do
    if t.stalled_for.(slot) >= t.stall_epochs then out := report_of t slot :: !out
  done;
  !out

let report_to_string r =
  Printf.sprintf "slot %d stalled for %d epochs at %s (%d beats)" r.slot
    r.epochs_stalled
    (match (r.site, r.phase) with
    | Some s, Some p ->
        Printf.sprintf "%s/%s" (Yieldpoint.name s)
          (match p with Yieldpoint.Before -> "before" | After -> "after")
    | _ -> "<no yield point observed>")
    r.beats

(* Post-mortem: everything the watchdog knows, in one string — the
   per-slot heartbeat ages, the stall reports, and (when a flight
   recorder was wired in at [create]) the stamp-ordered event dump.
   Safe to call while workers are still running or parked: every input
   is a racy-but-safe snapshot. *)
let post_mortem ?(flight_limit = 64) t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "== watchdog post-mortem (epoch %d) ==\n" t.epoch);
  let now = Progress.snapshot t.progress in
  for slot = 0 to Array.length now - 1 do
    match Progress.last t.progress slot with
    | None -> ()  (* never attached: not a worker *)
    | Some (site, phase) ->
        Buffer.add_string buf
          (Printf.sprintf "slot %d: %d beats, silent for %d epochs, last %s/%s\n"
             slot now.(slot) t.stalled_for.(slot) (Yieldpoint.name site)
             (match phase with Yieldpoint.Before -> "before" | After -> "after"))
  done;
  (match stalled t with
  | [] -> Buffer.add_string buf "no slots currently stalled\n"
  | rs ->
      List.iter
        (fun r -> Buffer.add_string buf (report_to_string r ^ "\n"))
        rs);
  (match t.flight with
  | None -> ()
  | Some f ->
      Buffer.add_string buf
        (Printf.sprintf "-- flight recorder (most recent %d of %d events) --\n"
           (min flight_limit (Obs.Flight.recorded f))
           (Obs.Flight.recorded f));
      Buffer.add_string buf (Obs.Flight.dump_to_string ~limit:flight_limit f);
      Buffer.add_char buf '\n');
  (match t.tracer with
  | None -> ()
  | Some (tr, lat) -> (
      match Obs.Latency.top_exemplar lat (Obs.Latency.counts lat) with
      | None -> Buffer.add_string buf "-- no tail exemplar recorded --\n"
      | Some (bucket, id) -> (
          Buffer.add_string buf
            (Printf.sprintf
               "-- tail exemplar: trace %016x (latency bucket %d, <%.0fns) --\n"
               id bucket
               (Obs.Latency.bucket_upper_ns bucket));
          match Obs.Trace.spans_of tr ~id with
          | [] ->
              Buffer.add_string buf
                "spans already overwritten (ring wrapped)\n"
          | spans ->
              List.iter
                (fun s ->
                  Buffer.add_string buf (Obs.Trace.span_to_string s);
                  Buffer.add_char buf '\n')
                spans)));
  Buffer.contents buf

(* The monitor runs on a Thread, not a Domain: it spends its life in
   [Unix.sleepf] and must not steal a core from the workers it is
   watching. *)
let start t ~interval =
  if t.monitor <> None then invalid_arg "Watchdog.start: already running";
  Atomic.set t.stop_requested false;
  t.monitor <-
    Some
      (Thread.create
         (fun () ->
           while not (Atomic.get t.stop_requested) do
             Unix.sleepf interval;
             if not (Atomic.get t.stop_requested) then ignore (step t)
           done)
         ())

let stop t =
  match t.monitor with
  | None -> ()
  | Some th ->
      Atomic.set t.stop_requested true;
      Thread.join th;
      t.monitor <- None
