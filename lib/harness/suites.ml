(* Experiment drivers: one per table/figure of the paper's evaluation.
   See DESIGN.md for the experiment index and EXPERIMENTS.md for the
   recorded outputs. *)

module Hashing = Ct_util.Hashing

type scale = Quick | Full

module type IMAP = Ct_util.Map_intf.CONCURRENT_MAP with type key = int

module CT = Cachetrie.Make (Hashing.Int_key)

module CT_nocache = struct
  include CT

  let name = "cachetrie-nc"

  let create () =
    create_with ~config:{ Cachetrie.default_config with enable_cache = false } ()
end

module Ctrie_map = Ctrie.Make (Hashing.Int_key)
module Ctrie_snap_map = Ctrie_snap.Make (Hashing.Int_key)
module Chm_map = Chm.Split_ordered.Make (Hashing.Int_key)
module Chm_striped = Chm.Striped.Make (Hashing.Int_key)
module Skiplist_map = Skiplist.Make (Hashing.Int_key)
module Cow_map = Hamts.Cow_map.Make (Hashing.Int_key)
module Folklore_map = Oa.Folklore.Make (Hashing.Int_key)

let structures : (module IMAP) list =
  [
    (module CT);
    (module CT_nocache);
    (module Ctrie_map);
    (module Ctrie_snap_map);
    (module Chm_map);
    (module Chm_striped);
    (module Skiplist_map);
    (module Cow_map);
    (module Folklore_map);
  ]

let structure_names =
  List.map (fun (module M : IMAP) -> M.name) structures

let find_structure name =
  List.find_opt (fun (module M : IMAP) -> M.name = name) structures

let thread_counts scale = match scale with Quick -> [ 1; 2; 4 ] | Full -> [ 1; 2; 3; 4; 6; 8 ]

(* ------------------------------------------------------------------ *)
(* Figure 9: memory footprint.                                         *)
(* ------------------------------------------------------------------ *)

let fig9_sizes = function
  | Quick -> [ 50_000 ]
  | Full -> [ 500_000; 1_000_000; 1_500_000; 2_000_000 ]

let fig9_footprint scale =
  Report.section "Figure 9 / Artifact A.5.2: memory footprint";
  let sizes = fig9_sizes scale in
  List.iter
    (fun n ->
      let keys = Workload.shuffled_keys n in
      let rows =
        List.map
          (fun (module M : IMAP) ->
            let t = M.create () in
            Array.iter (fun k -> M.insert t k k) keys;
            let words = Footprint.reachable_words t in
            let model = M.footprint_words t in
            (M.name, words, model))
          structures
      in
      let min_words =
        List.fold_left (fun acc (_, w, _) -> min acc w) max_int rows
      in
      Report.print_table
        ~header:[ "structure"; "kB (heap)"; "kB (model)"; "vs smallest" ]
        (List.map
           (fun (name, words, model) ->
             [
               name;
               Report.fmt_kb (Footprint.words_to_kb words);
               Report.fmt_kb (Footprint.words_to_kb model);
               Report.fmt_x (float_of_int words /. float_of_int min_words);
             ])
           rows);
      Printf.printf "(size %d)\n\n" n)
    sizes

(* ------------------------------------------------------------------ *)
(* Figure 10: single-threaded lookup and insert.                       *)
(* ------------------------------------------------------------------ *)

let fig10_sizes = function
  | Quick -> [ 50_000 ]
  | Full -> [ 50_000; 100_000; 200_000; 300_000; 400_000; 500_000 ]

let fig10_single_threaded scale =
  Report.section "Figure 10: single-threaded lookup and insert (ns/op)";
  let sizes = fig10_sizes scale in
  let reps = match scale with Quick -> 3 | Full -> 5 in
  List.iter
    (fun n ->
      let keys = Workload.shuffled_keys n in
      let probes = Workload.lookup_order keys in
      let rows =
        List.map
          (fun (module M : IMAP) ->
            (* Insert: fresh structure each run. *)
            let target = ref (M.create ()) in
            let insert_res =
              Measure.run ~repetitions:reps ~ops:n
                ~setup:(fun () -> target := M.create ())
                (fun () ->
                  let t = !target in
                  Array.iter (fun k -> M.insert t k k) keys)
            in
            (* Lookup: prefilled structure, warm cache. *)
            let t = M.create () in
            Array.iter (fun k -> M.insert t k k) keys;
            let sink = ref 0 in
            let lookup_res =
              Measure.run ~repetitions:reps ~ops:n (fun () ->
                  Array.iter
                    (fun k ->
                      match M.lookup t k with
                      | Some v -> sink := !sink + v
                      | None -> failwith "benchmark key missing")
                    probes)
            in
            ignore !sink;
            let sd_ns res =
              Printf.sprintf "%.1f"
                (res.Measure.summary.Ct_util.Stats.stddev *. 1e9 /. float_of_int n)
            in
            [
              M.name;
              Report.fmt_ns (Measure.ns_per_op lookup_res);
              sd_ns lookup_res;
              Report.fmt_ns (Measure.ns_per_op insert_res);
              sd_ns insert_res;
            ])
          structures
      in
      Report.print_table
        ~header:[ "structure"; "lookup ns/op"; "+/-sd"; "insert ns/op"; "+/-sd" ]
        rows;
      Printf.printf "(size %d)\n\n" n)
    sizes

(* ------------------------------------------------------------------ *)
(* Figures 11-13: multi-threaded benchmarks.                           *)
(* ------------------------------------------------------------------ *)

let fig11_sizes = function
  | Quick -> [ 50_000 ]
  | Full -> [ 50_000; 200_000; 600_000 ]

let fig11_insert_high_contention scale =
  Report.section "Figure 11: multi-threaded insert, high contention (ms)";
  let threads = thread_counts scale in
  List.iter
    (fun n ->
      let keys = Workload.shuffled_keys n in
      let rows =
        List.map
          (fun (module M : IMAP) ->
            M.name
            :: List.map
                 (fun p ->
                   (* Best of 3 runs, matching short multi-threaded benches. *)
                   let best = ref infinity in
                   for _ = 1 to 3 do
                     let t = M.create () in
                     let dt =
                       Parallel.run_timed ~domains:p (fun _d ->
                           Array.iter (fun k -> M.insert t k k) keys)
                     in
                     if dt < !best then best := dt
                   done;
                   Report.fmt_ms !best)
                 threads)
          structures
      in
      Report.print_table
        ~header:("structure" :: List.map (Printf.sprintf "p=%d") threads)
        rows;
      Printf.printf "(size %d; every thread inserts the same %d keys)\n\n" n n)
    (fig11_sizes scale)

let fig12_sizes = function
  | Quick -> [ 100_000 ]
  | Full -> [ 100_000; 1_000_000; 2_000_000 ]

let fig12_insert_low_contention scale =
  Report.section "Figure 12: multi-threaded insert, low contention (ms)";
  let threads = thread_counts scale in
  List.iter
    (fun total ->
      let rows =
        List.map
          (fun (module M : IMAP) ->
            M.name
            :: List.map
                 (fun p ->
                   let ranges = Workload.disjoint_ranges ~domains:p ~total in
                   let best = ref infinity in
                   for _ = 1 to 3 do
                     let t = M.create () in
                     let dt =
                       Parallel.run_timed ~domains:p (fun d ->
                           Array.iter (fun k -> M.insert t k k) ranges.(d))
                     in
                     if dt < !best then best := dt
                   done;
                   Report.fmt_ms !best)
                 threads)
          structures
      in
      Report.print_table
        ~header:("structure" :: List.map (Printf.sprintf "p=%d") threads)
        rows;
      Printf.printf "(total %d keys split across threads)\n\n" total)
    (fig12_sizes scale)

let fig13_size = function Quick -> 100_000 | Full -> 1_000_000

let fig13_parallel_lookup scale =
  Report.section "Figure 13: multi-threaded lookup (ms)";
  let threads = thread_counts scale in
  let n = fig13_size scale in
  let keys = Workload.shuffled_keys n in
  let rows =
    List.map
      (fun (module M : IMAP) ->
        let t = M.create () in
        Array.iter (fun k -> M.insert t k k) keys;
        (* Warm the cache with one pass. *)
        Array.iter (fun k -> ignore (M.lookup t k)) keys;
        M.name
        :: List.map
             (fun p ->
               let ranges = Workload.disjoint_ranges ~domains:p ~total:n in
               let best = ref infinity in
               for _ = 1 to 3 do
                 let dt =
                   Parallel.run_timed ~domains:p (fun d ->
                       Array.iter
                         (fun k ->
                           if M.lookup t k = None then failwith "missing key")
                         ranges.(d))
                 in
                 if dt < !best then best := dt
               done;
               Report.fmt_ms !best)
             threads)
      structures
  in
  Report.print_table
    ~header:("structure" :: List.map (Printf.sprintf "p=%d") threads)
    rows;
  Printf.printf "(%d keys prefilled; lookups split across threads)\n\n" n

(* ------------------------------------------------------------------ *)
(* Artifact A.5.1: level-occupancy histograms.                         *)
(* ------------------------------------------------------------------ *)

let hist_sizes = function
  | Quick -> [ 50_000; 200_000 ]
  | Full -> [ 50_000; 100_000; 200_000; 400_000; 800_000 ]

let histograms scale =
  Report.section "Artifact A.5.1: level occupancy histograms (cache-trie)";
  List.iter
    (fun n ->
      let t = CT.create () in
      let keys = Workload.shuffled_keys n in
      Array.iter (fun k -> CT.insert t k k) keys;
      let hist = CT.depth_histogram t in
      print_string (Analysis.Histogram.render ~label:(Printf.sprintf "size %d" n) hist);
      let d, frac = Analysis.Histogram.top_pair_fraction hist in
      Printf.printf "top adjacent pair: levels %d+%d hold %.1f%% (Theorem 4.2 expects >= 87%%)\n\n"
        (4 * d) (4 * (d + 1)) (100.0 *. frac))
    (hist_sizes scale)

(* ------------------------------------------------------------------ *)
(* Section 4.1: theory vs measurement.                                 *)
(* ------------------------------------------------------------------ *)

let theory scale =
  Report.section "Section 4.1: depth distribution theory (Theorems 4.1-4.4)";
  let ns =
    match scale with
    | Quick -> [ 1_000; 100_000 ]
    | Full -> [ 1_000; 10_000; 100_000; 1_000_000; 10_000_000 ]
  in
  Report.print_table
    ~header:[ "n"; "E[depth]"; "log16 n"; "best pair d"; "mu(n)" ]
    (List.map
       (fun n ->
         [
           string_of_int n;
           Printf.sprintf "%.3f" (Analysis.Depth_theory.expected_depth n);
           Printf.sprintf "%.3f" (log (float_of_int n) /. log 16.0);
           string_of_int (Analysis.Depth_theory.best_pair n);
           Printf.sprintf "%.4f" (Analysis.Depth_theory.mu n);
         ])
       ns);
  let lo, hi = Analysis.Depth_theory.theorem42_interval in
  Printf.printf "\nTheorem 4.2 interval for mu(n) as n->inf: (%.4f, %.4f)\n" lo hi;
  (* Empirical check of Theorem 4.1 on a real trie. *)
  let n = match scale with Quick -> 100_000 | Full -> 500_000 in
  let t = CT.create () in
  Array.iter (fun k -> CT.insert t k k) (Workload.shuffled_keys n);
  let observed = CT.depth_histogram t in
  let expected =
    Analysis.Depth_theory.distribution_levels n ~max_depth:(Array.length observed - 1)
  in
  Printf.printf "\nempirical vs analytic depth distribution (n = %d):\n" n;
  Report.print_table
    ~header:[ "depth"; "p(d,n)"; "observed" ]
    (List.filteri
       (fun d _ -> expected.(d) > 1e-6 || observed.(d) > 0)
       (List.init (Array.length observed) (fun d ->
            [
              string_of_int d;
              Printf.sprintf "%.5f" expected.(d);
              Printf.sprintf "%.5f"
                (float_of_int observed.(d) /. float_of_int n);
            ])));
  Printf.printf "chi-square distance: %.1f\n\n"
    (Analysis.Depth_theory.chi_square_distance expected observed)

(* ------------------------------------------------------------------ *)
(* Extension: cache ablation.                                          *)
(* ------------------------------------------------------------------ *)

let ablation_narrow scale =
  Report.section "Ablation: narrow (4-slot) nodes on/off";
  let n = match scale with Quick -> 100_000 | Full -> 500_000 in
  let reps = match scale with Quick -> 3 | Full -> 5 in
  let keys = Workload.shuffled_keys n in
  let variants =
    [
      ("narrow on (paper)", Cachetrie.default_config);
      ("narrow off (wide only)", { Cachetrie.default_config with narrow_nodes = false });
    ]
  in
  let rows =
    List.map
      (fun (label, config) ->
        let target = ref (CT.create_with ~config ()) in
        let res =
          Measure.run ~repetitions:reps ~ops:n
            ~setup:(fun () -> target := CT.create_with ~config ())
            (fun () ->
              let t = !target in
              Array.iter (fun k -> CT.insert t k k) keys)
        in
        let t = CT.create_with ~config () in
        Array.iter (fun k -> CT.insert t k k) keys;
        let s = CT.cache_stats t in
        [
          label;
          Report.fmt_ns (Measure.ns_per_op res);
          Report.fmt_kb (Footprint.words_to_kb (Footprint.reachable_words t));
          string_of_int s.Cachetrie.expansions;
        ])
      variants
  in
  Report.print_table
    ~header:[ "variant"; "insert ns/op"; "kB"; "expansions" ]
    rows;
  print_newline ()

let mixed_workload scale =
  Report.section "Extension: mixed workloads (ops/us, higher is better)";
  let n = match scale with Quick -> 50_000 | Full -> 500_000 in
  let total_ops = match scale with Quick -> 200_000 | Full -> 2_000_000 in
  let threads = match scale with Quick -> [ 1; 4 ] | Full -> [ 1; 2; 4; 8 ] in
  let mixes = [ ("90/9/1", 90, 99); ("50/40/10", 50, 90) ] in
  List.iter
    (fun (mix_name, read_cut, insert_cut) ->
      let rows =
        List.map
          (fun (module M : IMAP) ->
            M.name
            :: List.map
                 (fun p ->
                   let t = M.create () in
                   let keys = Workload.shuffled_keys n in
                   Array.iter (fun k -> M.insert t k k) keys;
                   let per = total_ops / p in
                   let dt =
                     Parallel.run_timed ~domains:p (fun d ->
                         let rng = Ct_util.Rng.create (0xABCD + d) in
                         for _ = 1 to per do
                           let k = Ct_util.Rng.next_int rng n in
                           let dice = Ct_util.Rng.next_int rng 100 in
                           if dice < read_cut then ignore (M.lookup t k)
                           else if dice < insert_cut then M.insert t k dice
                           else ignore (M.remove t k)
                         done)
                   in
                   Printf.sprintf "%.2f" (float_of_int total_ops /. dt /. 1e6))
                 threads
          )
          structures
      in
      Report.print_table
        ~header:("structure" :: List.map (Printf.sprintf "p=%d") threads)
        rows;
      Printf.printf "(mix %s over %d keys, %d total ops)\n\n" mix_name n total_ops)
    mixes

let zipf_lookup scale =
  Report.section "Extension: Zipf-skewed lookups (ns/op)";
  let n = match scale with Quick -> 100_000 | Full -> 1_000_000 in
  let probes_n = match scale with Quick -> 200_000 | Full -> 1_000_000 in
  let reps = match scale with Quick -> 3 | Full -> 5 in
  let skews = [ 0.0; 0.9; 1.2 ] in
  let rows =
    List.map
      (fun (module M : IMAP) ->
        let t = M.create () in
        Array.iter (fun k -> M.insert t k k) (Workload.shuffled_keys n);
        M.name
        :: List.map
             (fun s ->
               let probes = Workload.zipf_keys ~n:probes_n ~universe:n s in
               Array.iter (fun k -> ignore (M.lookup t k)) probes;
               let res =
                 Measure.run ~repetitions:reps ~ops:probes_n (fun () ->
                     Array.iter (fun k -> ignore (M.lookup t k)) probes)
               in
               Report.fmt_ns (Measure.ns_per_op res))
             skews)
      structures
  in
  Report.print_table
    ~header:("structure" :: List.map (Printf.sprintf "s=%.1f") skews)
    rows;
  Printf.printf "(%d keys; %d lookups per run; s=0 is uniform)\n\n" n probes_n

let remove_throughput scale =
  Report.section "Extension: single-threaded remove (ns/op)";
  let n = match scale with Quick -> 100_000 | Full -> 500_000 in
  let reps = match scale with Quick -> 3 | Full -> 5 in
  let keys = Workload.shuffled_keys n in
  let order = Workload.lookup_order keys in
  let rows =
    List.map
      (fun (module M : IMAP) ->
        let target = ref (M.create ()) in
        let res =
          Measure.run ~repetitions:reps ~ops:n
            ~setup:(fun () ->
              let t = M.create () in
              Array.iter (fun k -> M.insert t k k) keys;
              target := t)
            (fun () ->
              let t = !target in
              Array.iter (fun k -> ignore (M.remove t k)) order)
        in
        [ M.name; Report.fmt_ns (Measure.ns_per_op res) ])
      structures
  in
  Report.print_table ~header:[ "structure"; "remove ns/op" ] rows;
  (* Compression stats for the cache-trie specifically. *)
  let t = CT.create () in
  Array.iter (fun k -> CT.insert t k k) keys;
  Array.iter (fun k -> ignore (CT.remove t k)) order;
  let s = CT.cache_stats t in
  Printf.printf "(cache-trie compressions during full removal: %d)\n\n"
    s.Cachetrie.compressions

let trace_replay scale =
  Report.section "Extension: production-trace replay (ops/us, higher is better)";
  let n_ops = match scale with Quick -> 200_000 | Full -> 2_000_000 in
  let domains = match scale with Quick -> 2 | Full -> 4 in
  let profiles =
    [ ("read-mostly", Trace.read_mostly); ("churn", Trace.churn);
      ("write-heavy", Trace.write_heavy) ]
  in
  List.iter
    (fun (pname, profile) ->
      let trace = Trace.generate profile n_ops in
      let rows =
        List.map
          (fun (module M : IMAP) ->
            let module R = Trace.Replay (M) in
            let t1 = M.create () in
            let seq = R.replay ~prefill:(profile.Trace.universe / 2) t1 trace in
            let t2 = M.create () in
            let par =
              R.replay_parallel ~prefill:(profile.Trace.universe / 2) t2 ~domains trace
            in
            [
              M.name;
              Printf.sprintf "%.2f" (float_of_int n_ops /. seq.Trace.elapsed /. 1e6);
              Printf.sprintf "%.2f" (float_of_int n_ops /. par.Trace.elapsed /. 1e6);
              Printf.sprintf "%.0f%%"
                (100.0
                *. float_of_int seq.Trace.hits
                /. float_of_int (max 1 (seq.Trace.hits + seq.Trace.misses)));
            ])
          structures
      in
      Report.print_table
        ~header:[ "structure"; "1-domain"; Printf.sprintf "%d-domain" domains; "hit rate" ]
        rows;
      Printf.printf "(profile %s: %d ops, universe %d, half prefilled)\n\n" pname n_ops
        profile.Trace.universe)
    profiles

let ablation_cache scale =
  Report.section "Ablation: cache on/off and max_misses sweep (lookup ns/op)";
  let n = match scale with Quick -> 100_000 | Full -> 500_000 in
  let reps = match scale with Quick -> 3 | Full -> 5 in
  let keys = Workload.shuffled_keys n in
  let probes = Workload.lookup_order keys in
  let variants =
    ("no-cache", { Cachetrie.default_config with enable_cache = false })
    :: ("single-level cache", { Cachetrie.default_config with dual_level_cache = false })
    :: List.map
         (fun mm ->
           ( Printf.sprintf "cache mm=%d" mm,
             { Cachetrie.default_config with max_misses = mm } ))
         [ 256; 2048; 16384 ]
  in
  let rows =
    List.map
      (fun (label, config) ->
        let t = CT.create_with ~config () in
        Array.iter (fun k -> CT.insert t k k) keys;
        Array.iter (fun k -> ignore (CT.lookup t k)) keys;
        let res =
          Measure.run ~repetitions:reps ~ops:n (fun () ->
              Array.iter (fun k -> ignore (CT.lookup t k)) probes)
        in
        let s = CT.cache_stats t in
        [
          label;
          Report.fmt_ns (Measure.ns_per_op res);
          (match s.Cachetrie.cache_level with None -> "-" | Some l -> string_of_int l);
          string_of_int s.Cachetrie.sampling_passes;
        ])
      variants
  in
  Report.print_table ~header:[ "variant"; "lookup ns/op"; "cache level"; "samples" ] rows;
  print_newline ()
