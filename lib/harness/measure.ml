module Stats = Ct_util.Stats

type result = {
  summary : Stats.summary;
  warmup_runs : int;
  ops : int;
}

let time f =
  let t0 = Ct_util.Clock.monotonic_ns () in
  f ();
  float_of_int (Ct_util.Clock.monotonic_ns () - t0) *. 1e-9

let run ?(warmup_limit = 10) ?(repetitions = 5) ?(cov_threshold = 0.10) ~ops
    ?(setup = fun () -> ()) f =
  if ops <= 0 then invalid_arg "Measure.run: ops";
  let warmup = ref [] in
  let warmed = ref false in
  let runs = ref 0 in
  while (not !warmed) && !runs < warmup_limit do
    setup ();
    warmup := time f :: !warmup;
    incr runs;
    let arr = Array.of_list (List.rev !warmup) in
    warmed := Stats.warmed_up ~window:3 ~threshold:cov_threshold arr
  done;
  let samples =
    Array.init repetitions (fun _ ->
        setup ();
        time f)
  in
  { summary = Stats.summarize samples; warmup_runs = !runs; ops }

let ns_per_op r = r.summary.Stats.mean *. 1e9 /. float_of_int r.ops
let mops r = float_of_int r.ops /. r.summary.Stats.mean /. 1e6
