let total hist = Array.fold_left ( + ) 0 hist

let merge a b =
  let n = max (Array.length a) (Array.length b) in
  Array.init n (fun i ->
      (if i < Array.length a then a.(i) else 0)
      + if i < Array.length b then b.(i) else 0)

let render ?label hist =
  let buf = Buffer.create 256 in
  let n = total hist in
  (match label with
  | Some l -> Buffer.add_string buf (Printf.sprintf ":: %s ::\n" l)
  | None -> ());
  Array.iteri
    (fun d count ->
      let pct = if n = 0 then 0.0 else 100.0 *. float_of_int count /. float_of_int n in
      let stars = String.make (int_of_float (pct /. 5.0)) '*' in
      Buffer.add_string buf
        (Printf.sprintf "%4d: %8d (%3.0f%%) %s\n" (4 * d) count pct stars))
    hist;
  Buffer.contents buf

let top_pair_fraction hist =
  let n = total hist in
  if n = 0 then (0, 0.0)
  else begin
    let best = ref 0 and best_count = ref (-1) in
    for d = 0 to Array.length hist - 2 do
      let c = hist.(d) + hist.(d + 1) in
      if c > !best_count then begin
        best := d;
        best_count := c
      end
    done;
    (!best, float_of_int !best_count /. float_of_int n)
  end

let normalize hist =
  let n = total hist in
  if n = 0 then Array.map (fun _ -> 0.0) hist
  else Array.map (fun c -> float_of_int c /. float_of_int n) hist
