(** Rendering and summarising level-occupancy histograms in the format
    used by the paper's artifact (Appendix A.5.1). *)

val merge : int array -> int array -> int array
(** [merge a b] is the bucket-wise sum of two histograms; the shorter
    one is padded with zeros, so histograms of different lengths (e.g.
    per-domain latency buckets trimmed at different depths) combine
    losslessly.  Inputs are not mutated. *)

val render : ?label:string -> int array -> string
(** [render hist] formats a per-depth key histogram as the artifact
    prints it: one line per level (level = 4 * depth index), with the
    absolute count, percentage and a star bar. *)

val top_pair_fraction : int array -> int * float
(** [top_pair_fraction hist] is [(d, frac)] where depths [d] and
    [d+1] jointly hold the largest fraction [frac] of keys. *)

val normalize : int array -> float array
(** Histogram counts as fractions of the total (all zeros if empty). *)
