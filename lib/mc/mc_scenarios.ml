(* Operation scripts for the schedule explorer, instantiated for every
   lock-free map in the repository (DESIGN.md §10).

   Each scenario builds a fresh map, runs 2-3 fibers of small operation
   scripts over at most 4 keys, and checks three oracles at
   quiescence: [validate] (structural invariants, including the "no
   LNode with fewer than 2 entries" rule), linearizability of the
   recorded history against the sequential specification
   ([Lincheck.check] — the scheduler's global step counter gives every
   event a unique stamp, so the real-time order it checks is exact),
   and the §9 self-healing contract (one [scrub] restores [validate],
   a second [scrub] finds nothing).

   The key set is chosen hostile: keys 0 and 1 share a full 32-bit hash
   (LNode / binding-list collisions), key 2 shares only the level-0
   bucket (splits one level down), key 3 lives elsewhere. *)

module Yp = Ct_util.Yieldpoint
open Lincheck

(* Full-collision / same-bucket key geometry, shared by every
   structure.  [Hashing.mask] keeps the values in the canonical 32-bit
   hash domain the structures expect. *)
module Colliding_key = struct
  type t = int

  let equal = Int.equal

  let hash = function
    | 0 | 1 -> 0 (* full collision: forces LNodes / shared towers *)
    | 2 -> 1 lsl 5 (* same level-0 bucket as 0/1, splits at level 1 *)
    | k -> k land Ct_util.Hashing.mask
end

(* Extreme raw hashes: top bit set, all bits set, min_int.  The
   structures must mask these into the 32-bit domain before any shift
   or bit-reversal; a missed mask turns into a negative array index or
   a wrong bucket.  (Used by the hash-sign property tests as well.) *)
module Extreme_hash_key = struct
  type t = int

  let equal = Int.equal

  let hash = function
    | 0 -> min_int
    | 1 -> -1
    | 2 -> max_int
    | 3 -> 1 lsl 31
    | k -> k
end

(* A map module over int keys together with the global determinism
   switches it needs (the skiplist's height PRNG must be replaced by a
   counter for schedules to replay). *)
type target = {
  t_name : string;
  t_map : (module IMAP);
  t_setup : unit -> unit;
  t_teardown : unit -> unit;
}

let plain name m = { t_name = name; t_map = m; t_setup = ignore; t_teardown = ignore }

module CT = Cachetrie.Make (Colliding_key)
module CTR = Ctrie.Make (Colliding_key)
module CSN = Ctrie_snap.Make (Colliding_key)
module SO = Chm.Split_ordered.Make (Colliding_key)
module SL = Skiplist.Make (Colliding_key)

let targets : target list =
  [
    plain "cachetrie" (module CT);
    plain "ctrie" (module CTR);
    plain "ctrie_snap" (module CSN);
    plain "split_ordered" (module SO);
    {
      t_name = "skiplist";
      t_map = (module SL);
      t_setup = (fun () -> Skiplist.set_deterministic_heights true);
      t_teardown = (fun () -> Skiplist.set_deterministic_heights false);
    };
  ]

(* --------------------------- scenario builder ---------------------- *)

(* Same op dispatch as [Lincheck.record], but applied one op at a time
   from inside a fiber. *)
module Apply (M : Ct_util.Map_intf.CONCURRENT_MAP with type key = int) = struct
  let apply t op =
    match op with
    | Lookup k -> M.lookup t k
    | Insert (k, v) -> M.add t k v
    | Remove k -> M.remove t k
    | Put_if_absent (k, v) -> M.put_if_absent t k v
    | Replace (k, v) -> M.replace t k v
    | Replace_if (k, expected, v) ->
        if M.replace_if t k ~expected v then Some 1 else Some 0
    | Remove_if (k, expected) ->
        if M.remove_if t k ~expected then Some 1 else Some 0

  (* The §9 contract, checked at quiescence: one scrub help-completes
     all residue and restores validate; a second scrub finds nothing. *)
  let scrub_contract t =
    let _helped = M.scrub t in
    match M.validate t with
    | Error e -> Error ("validate after scrub: " ^ e)
    | Ok () ->
        let again = M.scrub t in
        if again <> 0 then
          Error (Printf.sprintf "second scrub still found %d residues" again)
        else Ok ()
end

let keys_of_scripts scripts =
  let key_of = function
    | Lookup k | Remove k | Insert (k, _) | Put_if_absent (k, _)
    | Replace (k, _) | Replace_if (k, _, _) | Remove_if (k, _) ->
        k
  in
  List.concat_map (List.map key_of) scripts |> List.sort_uniq compare

(* A scenario running [scripts] (one per fiber) against a fresh map.
   With [?crash_at], the designated fiber dies at its n-th yield and
   the oracle switches from linearizability to the crash-recovery
   contract (a crashed op has no response event, so its effect may
   legally be half-visible until scrubbed). *)
let map_scenario ?crash_at (target : target) ~name (scripts : op list list) :
    Mc_core.scenario =
  let (module M : IMAP) = target.t_map in
  let module A = Apply (M) in
  let sname = Printf.sprintf "%s.%s" target.t_name name in
  let prepare () =
    target.t_setup ();
    let t = M.create () in
    let stamp = ref 0 in
    let next () =
      let s = !stamp in
      incr stamp;
      s
    in
    let events = ref [] in
    let fiber thread script () =
      List.iter
        (fun op ->
          let inv = next () in
          let result = A.apply t op in
          let res = next () in
          events := { thread; op; result; inv; res } :: !events)
        script
    in
    let bodies = List.mapi fiber scripts in
    let keys = keys_of_scripts scripts in
    let oracle ~crashed =
      if crashed then A.scrub_contract t
      else
        match M.validate t with
        | Error e -> Error ("validate: " ^ e)
        | Ok () -> (
            (* Final reads as one pseudo-thread after everything:
               pins the final state to the linearization. *)
            let finals =
              List.map
                (fun k ->
                  let inv = next () in
                  let result = M.lookup t k in
                  let res = next () in
                  { thread = List.length scripts; op = Lookup k; result; inv; res })
                keys
            in
            if not (check (List.rev !events @ finals)) then
              Error "history is not linearizable"
            else A.scrub_contract t)
    in
    { Mc_core.bodies; oracle }
  in
  Mc_core.scenario ?crash_at ~teardown:target.t_teardown sname prepare

let crash_scrub_scenario (target : target) ~name ~crash_yield
    (script : op list) : Mc_core.scenario =
  let (module M : IMAP) = target.t_map in
  let module A = Apply (M) in
  let sname = Printf.sprintf "%s.%s" target.t_name name in
  let prepare () =
    target.t_setup ();
    let t = M.create () in
    (* Pre-populate outside the scheduler so only the racing ops are
       explored. *)
    M.insert t 0 100;
    M.insert t 1 101;
    let op_fiber () = List.iter (fun op -> ignore (A.apply t op)) script in
    (* The scrub fiber races the dying op: it may help-complete the
       very protocol the crash abandons, or run first and find nothing.
       Either way the §9 contract must hold afterwards. *)
    let scrub_fiber () = ignore (M.scrub t) in
    let oracle ~crashed:_ = A.scrub_contract t in
    { Mc_core.bodies = [ op_fiber; scrub_fiber ]; oracle }
  in
  Mc_core.scenario ~crash_at:(0, crash_yield) ~teardown:target.t_teardown sname
    prepare

(* ----------------------------- the scripts ------------------------- *)

(* Kept deliberately tiny: exhaustive exploration is exponential in
   yield points, and the acceptance bar is a 2-fiber script of <= 6
   yields per structure exploring completely inside the CI timeout. *)

let scenarios_for (target : target) : Mc_core.scenario list =
  let s = map_scenario target in
  [
    (* Two writers on one key: the fundamental CAS race. *)
    s ~name:"ins-ins-same-key"
      [ [ Insert (0, 10) ]; [ Insert (0, 20) ] ];
    (* Full-hash collision: builds and mutates LNodes / binding lists
       concurrently. *)
    s ~name:"lnode-build" [ [ Insert (0, 10) ]; [ Insert (1, 20) ] ];
    (* Remove racing remove on colliding keys: the LNode contraction
       path (singleton LNode must become an SNode, empty must vanish). *)
    s ~name:"lnode-remove"
      [ [ Insert (0, 10); Remove 1 ]; [ Insert (1, 20); Remove 0 ] ];
    (* Same level-0 bucket, different hash: bucket split racing an
       insert. *)
    s ~name:"bucket-split" [ [ Insert (0, 1); Insert (2, 2) ]; [ Remove 0 ] ];
    (* Reader racing writers: needs the read-path yield points to
       interleave at all. *)
    s ~name:"read-write"
      [ [ Insert (0, 1); Remove 0 ]; [ Lookup 0; Lookup 1 ] ];
    (* CAS-style conditional ops racing a plain writer. *)
    s ~name:"replace-if"
      [ [ Insert (0, 1); Replace_if (0, 1, 2) ]; [ Replace (0, 3) ] ];
    (* Three virtual domains: two writers on colliding keys plus a
       reader, single-op scripts to keep the 3-way product tractable. *)
    s ~name:"three-domains"
      [ [ Insert (0, 1) ]; [ Insert (1, 2) ]; [ Lookup 0 ] ];
  ]

let crash_scenarios_for (target : target) : Mc_core.scenario list =
  (* One crash scenario per early yield index: the op dies at its 1st,
     2nd, ... yield point, each under every interleaving with the
     scrub fiber.  Indices past the op's last yield degenerate to a
     crash-free run, which the contract also covers. *)
  List.concat_map
    (fun (opname, script) ->
      List.map
        (fun n ->
          crash_scrub_scenario target
            ~name:(Printf.sprintf "crash-%s-at-%d" opname n)
            ~crash_yield:n script)
        [ 1; 2; 3 ])
    [ ("insert", [ Insert (2, 7) ]); ("remove", [ Remove 0 ]) ]

let all : Mc_core.scenario list =
  List.concat_map
    (fun t -> scenarios_for t @ crash_scenarios_for t)
    targets

let find name = List.find_opt (fun s -> s.Mc_core.sname = name) all
