(* Entry point of the model checker: [Mc] is the scheduler/explorer
   (Mc_core) plus the per-structure scenario catalogue under
   [Mc.Scenarios]. *)

include Mc_core
module Scenarios = Mc_scenarios
