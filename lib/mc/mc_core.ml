(* Deterministic schedule exploration over yield points (DESIGN.md
   §10).

   The structures in this repository bracket every CAS (and the entry
   of every read walk) with [Ct_util.Yieldpoint.here].  This module
   runs 2-3 "virtual domains" as cooperatively-scheduled fibers on one
   real domain: a domain-local yield-point hook performs an effect at
   every [here], the scheduler captures the fiber's continuation there,
   and an explorer decides which fiber runs next.  Because a fiber only
   loses control at a yield point, and every shared-memory write is
   bracketed by one, enumerating the fiber interleavings enumerates the
   memory interleavings the real concurrent execution could produce —
   exhaustively, for bounded scripts.

   OCaml's one-shot continuations cannot be forked, so the explorer is
   stateless in the CHESS/dscheck style: a schedule is a list of fiber
   choices, and exploring a branch means re-executing the scenario from
   scratch with a different choice list.  Scenario [prepare] functions
   must therefore be deterministic (the skiplist's height PRNG is
   switched to a counter-driven sequence for exactly this reason). *)

module Yp = Ct_util.Yieldpoint

(* ----------------------------- scenarios --------------------------- *)

type prepared = {
  bodies : (unit -> unit) list;
      (** one thunk per fiber, closed over this execution's fresh
          structure instance *)
  oracle : crashed:bool -> (unit, string) result;
      (** checked once every fiber has finished (or crashed) *)
}

type scenario = {
  sname : string;
  prepare : unit -> prepared;  (** fresh state; called once per execution *)
  crash_at : (int * int) option;
      (** [Some (f, n)]: fiber [f] dies at its [n]-th yield point, as a
          crashed domain would — mid-protocol, leaving residue *)
  teardown : unit -> unit;
      (** restore global switches the scenario flipped (deterministic
          skiplist heights); runs even when execution raises *)
}

let scenario ?crash_at ?(teardown = fun () -> ()) sname prepare =
  { sname; prepare; crash_at; teardown }

(* ----------------------------- execution --------------------------- *)

type stop =
  | Yielded of Yp.phase * Yp.site  (** parked at a yield point *)
  | Completed  (** body returned *)
  | Crashed  (** injected crash consumed the fiber *)

type step = {
  fiber : int;
  stop : stop;  (** where the fiber stopped after being scheduled *)
  enabled : (int * Yp.site option) list;
      (** runnable fibers at this decision point, with the site each is
          parked at ([None] = not started yet) *)
  from : int option;
      (** fiber that ran the previous step, when it is still enabled
          here: choosing anything else is a preemption *)
}

type failure =
  | Oracle of string
  | Fiber_raised of int * string
  | Divergence of int
      (** step bound exceeded: with bounded scripts every lock-free run
          terminates, so this signals a livelock/lock-freedom bug *)

let pp_failure = function
  | Oracle m -> "oracle: " ^ m
  | Fiber_raised (f, e) -> Printf.sprintf "fiber %d raised: %s" f e
  | Divergence n ->
      Printf.sprintf "no quiescence after %d steps (lock-freedom suspect)" n

type run = { steps : step array; failure : failure option; crashed : bool }

exception Crash
(** injected at a fiber's [crash_at] yield; never escapes the scheduler *)

type _ Effect.t += Yield : Yp.phase * Yp.site -> unit Effect.t

type slot =
  | Fresh of (unit -> unit)
  | Parked of (unit, stop) Effect.Deep.continuation * Yp.phase * Yp.site
  | Finished
  | Dead

exception Stuck of failure

(* Execute one schedule.  [choose] is called at every scheduling point
   with the current step index, the enabled fibers (ascending, with
   their parked sites) and the previously-running fiber; it returns the
   fiber to run next and may raise to abort (replay divergence). *)
let execute ?(max_steps = 5000) sc
    ~(choose :
       step:int ->
       enabled:(int * Yp.site option) list ->
       last:int option ->
       int) : run =
  let prep = sc.prepare () in
  let n = List.length prep.bodies in
  let slots = Array.of_list (List.map (fun b -> Fresh b) prep.bodies) in
  let yields = Array.make n 0 in
  let current = ref (-1) in
  let crashed = ref false in
  (* The hook performs the Yield effect only while a fiber is running:
     oracle code (final lookups, scrub, validate) and any other code on
     this domain passes through untouched. *)
  let hook phase site =
    let f = !current in
    if f >= 0 then begin
      yields.(f) <- yields.(f) + 1;
      (match sc.crash_at with
      | Some (cf, cn) when cf = f && yields.(f) = cn -> raise Crash
      | _ -> ());
      Effect.perform (Yield (phase, site))
    end
  in
  let handler f =
    {
      Effect.Deep.retc =
        (fun () ->
          slots.(f) <- Finished;
          Completed);
      exnc =
        (fun e ->
          match e with
          | Crash ->
              slots.(f) <- Dead;
              crashed := true;
              Crashed
          | e ->
              slots.(f) <- Dead;
              raise (Stuck (Fiber_raised (f, Printexc.to_string e))));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield (phase, site) ->
              Some
                (fun (k : (a, stop) Effect.Deep.continuation) ->
                  slots.(f) <- Parked (k, phase, site);
                  Yielded (phase, site))
          | _ -> None);
    }
  in
  let run_fiber f =
    current := f;
    let stop =
      match slots.(f) with
      | Fresh body -> Effect.Deep.match_with body () (handler f)
      | Parked (k, _, _) -> Effect.Deep.continue k ()
      | Finished | Dead -> invalid_arg "Mc: scheduled a finished fiber"
    in
    current := -1;
    stop
  in
  let pending i =
    match slots.(i) with
    | Fresh _ -> Some (i, None)
    | Parked (_, _, s) -> Some (i, Some s)
    | Finished | Dead -> None
  in
  let steps = ref [] in
  let failure = ref None in
  let last = ref None in
  let count = ref 0 in
  let body () =
    try
      let continue_ = ref true in
      while !continue_ do
        let enabled = List.filter_map pending (List.init n Fun.id) in
        if enabled = [] then continue_ := false
        else if !count >= max_steps then raise (Stuck (Divergence !count))
        else begin
          let from =
            match !last with
            | Some l when List.mem_assoc l enabled -> Some l
            | _ -> None
          in
          let f = choose ~step:!count ~enabled ~last:!last in
          if not (List.mem_assoc f enabled) then
            invalid_arg
              (Printf.sprintf "Mc: chose fiber %d which is not enabled" f);
          let stop = run_fiber f in
          steps := { fiber = f; stop; enabled; from } :: !steps;
          last := Some f;
          incr count
        end
      done;
      match prep.oracle ~crashed:!crashed with
      | Ok () -> ()
      | Error m -> failure := Some (Oracle m)
      | exception e ->
          failure := Some (Oracle ("oracle raised " ^ Printexc.to_string e))
    with Stuck f ->
      current := -1;
      failure := Some f
  in
  Yp.set_local hook;
  Fun.protect
    ~finally:(fun () ->
      Yp.clear_local ();
      sc.teardown ())
    body;
  {
    steps = Array.of_list (List.rev !steps);
    failure = !failure;
    crashed = !crashed;
  }

(* Default continuation past a choice prefix: keep running the same
   fiber while it stays enabled, else the lowest id.  Preemption-free,
   so a counterexample's preemptions all live in its explicit prefix. *)
let guided prefix =
 fun ~step ~enabled ~last ->
  if step < Array.length prefix then prefix.(step)
  else
    match last with
    | Some l when List.mem_assoc l enabled -> l
    | _ -> fst (List.hd enabled)

(* Best-effort guide used by the minimizer: follow the choice list,
   dropping entries that are not currently enabled; preemption-free
   default when it runs out.  Candidate reductions perturb the run, so
   the guide must tolerate choices that no longer apply. *)
let lenient choices =
  let q = ref choices in
  fun ~step:_ ~enabled ~last ->
    let rec pick () =
      match !q with
      | c :: rest ->
          q := rest;
          if List.mem_assoc c enabled then c else pick ()
      | [] -> (
          match last with
          | Some l when List.mem_assoc l enabled -> l
          | _ -> fst (List.hd enabled))
    in
    pick ()

let choices_of (r : run) = Array.map (fun s -> s.fiber) r.steps

(* --------------------------- minimization -------------------------- *)

(* Delta-debug the schedule.  [best] is the *guide* — the explicit
   choice list handed to the lenient scheduler, with the preemption-free
   default finishing the run — so shrinking it shrinks the part of the
   schedule that matters: the forced switches.  Candidates: replace the
   guide by each of its prefixes (shortest first), then delete single
   choices; keep any candidate whose re-execution still fails.
   Schedules here are tens of steps, so the quadratic pass is cheap. *)
let minimize ?max_steps sc (choices : int array) : run option * int array =
  let try_run cs =
    let r = execute ?max_steps sc ~choose:(lenient (Array.to_list cs)) in
    match r.failure with Some _ -> Some r | None -> None
  in
  let best = ref choices in
  let best_run = ref (try_run choices) in
  if !best_run <> None then begin
    let improved = ref true in
    while !improved do
      improved := false;
      (* Shortest still-failing prefix of the guide. *)
      (let len = Array.length !best in
       let l = ref 0 in
       let stop = ref false in
       while (not !stop) && !l < len do
         match try_run (Array.sub !best 0 !l) with
         | Some r ->
             best := Array.sub !best 0 !l;
             best_run := Some r;
             improved := true;
             stop := true
         | None -> incr l
       done);
      (* Single deletions. *)
      let i = ref 0 in
      while !i < Array.length !best do
        let cand =
          Array.append (Array.sub !best 0 !i)
            (Array.sub !best (!i + 1) (Array.length !best - !i - 1))
        in
        match try_run cand with
        | Some r ->
            best := cand;
            best_run := Some r;
            improved := true
            (* do not advance [i]: the deleted slot now holds a new
               choice worth attacking again *)
        | None -> incr i
      done
    done
  end;
  (!best_run, !best)

(* --------------------------- exploration --------------------------- *)

type counterexample = {
  c_scenario : string;
  c_choices : int array;  (** minimized schedule, replayable via {!replay} *)
  c_steps : step array;
  c_failure : failure;
}

type verdict =
  | Pass of { executions : int; complete : bool }
      (** [complete] is false when the [max_schedules] budget ran out
          before the bounded space was exhausted *)
  | Fail of counterexample

let preempts step alt =
  match step.from with Some l -> alt <> l | None -> false

(* Exhaustive DFS over schedules, stateless re-execution.  Branching:
   after running a schedule, every step at depth >= |prefix| spawns one
   new prefix per enabled-but-not-chosen fiber (each schedule is
   reached through exactly one prefix, so no deduplication is needed).
   Pruning:
   - preemption bound: a branch whose prefix already preempts
     [preemption_bound] times is dropped (CHESS-style; most concurrency
     bugs need very few preemptions, and the bound makes the space
     polynomial);
   - read-read sleep-set: if both the chosen fiber and the alternative
     are parked at read-only sites, the two upcoming slices are pure
     reads (a slice entered at a read site ends before the next CAS's
     Before yield), so the two orders commute and the alternative's
     subtree is a permutation of states the chosen subtree already
     reaches. *)
let explore ?(preemption_bound = 3) ?(max_schedules = 200_000) ?max_steps sc :
    verdict =
  let stack = ref [ [||] ] in
  let execs = ref 0 in
  let found = ref None in
  let budget_hit = ref false in
  while !stack <> [] && !found = None do
    match !stack with
    | [] -> ()
    | prefix :: rest ->
        stack := rest;
        if !execs >= max_schedules then budget_hit := true
        else begin
          incr execs;
          let r = execute ?max_steps sc ~choose:(guided prefix) in
          match r.failure with
          | Some f -> found := Some (choices_of r, r, f)
          | None ->
              (* Walk the run accumulating the preemption count up to
                 each branch point; branch only past the prefix (each
                 schedule is then generated exactly once). *)
              let pre = ref 0 in
              Array.iteri
                (fun s st ->
                  if s >= Array.length prefix then begin
                    let chosen_site = List.assoc st.fiber st.enabled in
                    List.iter
                      (fun (alt, alt_site) ->
                        if alt <> st.fiber then begin
                          let p = !pre + if preempts st alt then 1 else 0 in
                          let read_read =
                            match (chosen_site, alt_site) with
                            | Some a, Some b -> Yp.is_read a && Yp.is_read b
                            | _ -> false
                          in
                          if p <= preemption_bound && not read_read then begin
                            let branch =
                              Array.append
                                (Array.map (fun x -> x.fiber)
                                   (Array.sub r.steps 0 s))
                                [| alt |]
                            in
                            stack := branch :: !stack
                          end
                        end)
                      st.enabled
                  end;
                  if preempts st st.fiber then incr pre)
                r.steps
        end
  done;
  match !found with
  | None -> Pass { executions = !execs; complete = not !budget_hit }
  | Some (choices, orig_run, orig_failure) -> (
      match minimize ?max_steps sc choices with
      | Some run, min_choices ->
          Fail
            {
              c_scenario = sc.sname;
              c_choices = min_choices;
              c_steps = run.steps;
              c_failure = Option.get run.failure;
            }
      | None, _ ->
          (* Minimization could not even reproduce the original run — a
             nondeterministic scenario; surface the unminimized one. *)
          Fail
            {
              c_scenario = sc.sname;
              c_choices = choices;
              c_steps = orig_run.steps;
              c_failure = orig_failure;
            })

(* Seeded random walk: cheap probabilistic coverage for scripts too
   large to enumerate.  Same oracles, same minimizer. *)
let random_walk ?(schedules = 500) ?max_steps ~seed sc : verdict =
  let rng = Ct_util.Rng.create seed in
  let found = ref None in
  let i = ref 0 in
  while !found = None && !i < schedules do
    incr i;
    let choose ~step:_ ~enabled ~last:_ =
      fst (List.nth enabled (Ct_util.Rng.next_int rng (List.length enabled)))
    in
    let r = execute ?max_steps sc ~choose in
    match r.failure with
    | Some f -> found := Some (choices_of r, r, f)
    | None -> ()
  done;
  match !found with
  | None -> Pass { executions = !i; complete = false }
  | Some (choices, orig_run, orig_failure) -> (
      match minimize ?max_steps sc choices with
      | Some run, min_choices ->
          Fail
            {
              c_scenario = sc.sname;
              c_choices = min_choices;
              c_steps = run.steps;
              c_failure = Option.get run.failure;
            }
      | None, _ ->
          Fail
            {
              c_scenario = sc.sname;
              c_choices = choices;
              c_steps = orig_run.steps;
              c_failure = orig_failure;
            })

(* ------------------------------ traces ----------------------------- *)

(* Replayable trace: one line per step, [<fiber> yield <before|after>
   <site>] / [<fiber> done] / [<fiber> crash], preceded by the scenario
   name.  The trace pins both the schedule (fiber column) and what each
   slice did (site/phase columns); replay re-executes the schedule and
   fails loudly if the structure's behaviour has drifted. *)

let phase_name = function Yp.Before -> "before" | Yp.After -> "after"

let stop_to_string = function
  | Yielded (ph, site) ->
      Printf.sprintf "yield %s %s" (phase_name ph) (Yp.name site)
  | Completed -> "done"
  | Crashed -> "crash"

let trace_to_string (c : counterexample) =
  let b = Buffer.create 256 in
  Buffer.add_string b "mc-trace v1\n";
  Buffer.add_string b ("scenario " ^ c.c_scenario ^ "\n");
  Buffer.add_string b ("failure " ^ pp_failure c.c_failure ^ "\n");
  Array.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "%d %s\n" s.fiber (stop_to_string s.stop)))
    c.c_steps;
  Buffer.contents b

type expected_stop =
  | E_yield of Yp.phase * string  (** site matched by name *)
  | E_done
  | E_crash

type trace_file = { t_scenario : string; t_steps : (int * expected_stop) list }

let trace_of_string s : (trace_file, string) result =
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | header :: rest when String.trim header = "mc-trace v1" -> (
      let scenario_line, rest =
        match rest with
        | l :: r -> (l, r)
        | [] -> ("", [])
      in
      match String.split_on_char ' ' (String.trim scenario_line) with
      | [ "scenario"; name ] -> (
          let parse_step l =
            match String.split_on_char ' ' (String.trim l) with
            | [ f; "done" ] -> Ok (int_of_string f, E_done)
            | [ f; "crash" ] -> Ok (int_of_string f, E_crash)
            | [ f; "yield"; ph; site ] ->
                let phase =
                  if ph = "before" then Ok Yp.Before
                  else if ph = "after" then Ok Yp.After
                  else Error ("bad phase: " ^ ph)
                in
                Result.map (fun p -> (int_of_string f, E_yield (p, site))) phase
            | _ -> Error ("bad trace line: " ^ l)
          in
          let steps =
            rest
            |> List.filter (fun l ->
                   not (String.length (String.trim l) >= 7
                        && String.sub (String.trim l) 0 7 = "failure"))
            |> List.map parse_step
          in
          match
            List.fold_left
              (fun acc s ->
                match (acc, s) with
                | Error e, _ -> Error e
                | Ok l, Ok s -> Ok (s :: l)
                | Ok _, Error e -> Error e)
              (Ok []) steps
          with
          | Ok l -> Ok { t_scenario = name; t_steps = List.rev l }
          | Error e -> Error e)
      | _ -> Error "missing scenario line")
  | _ -> Error "not an mc-trace v1 file"

let stop_matches expected actual =
  match (expected, actual) with
  | E_done, Completed -> true
  | E_crash, Crashed -> true
  | E_yield (ph, site), Yielded (ph', site') ->
      ph = ph' && site = Yp.name site'
  | _ -> false

type replay_outcome =
  | Reproduced of failure  (** the schedule fails again, as recorded *)
  | Vanished  (** schedule replays exactly but no longer fails *)
  | Diverged of string  (** execution no longer follows the trace *)

exception Replay_stop of string

(* Re-execute a recorded schedule step by step, verifying after the run
   that every slice stopped where the trace says it did. *)
let replay sc (t : trace_file) : replay_outcome =
  let expected = Array.of_list t.t_steps in
  let choose ~step ~enabled ~last:_ =
    if step >= Array.length expected then
      raise
        (Replay_stop
           (Printf.sprintf "execution ran past the %d recorded steps"
              (Array.length expected)))
    else
      let f, _ = expected.(step) in
      if List.mem_assoc f enabled then f
      else
        raise
          (Replay_stop
             (Printf.sprintf "step %d: fiber %d is not runnable" step f))
  in
  match execute sc ~choose with
  | exception Replay_stop m -> Diverged m
  | r ->
      let n = min (Array.length expected) (Array.length r.steps) in
      let mismatch = ref None in
      for i = 0 to n - 1 do
        if !mismatch = None then begin
          let ef, es = expected.(i) in
          let a = r.steps.(i) in
          if a.fiber <> ef || not (stop_matches es a.stop) then
            mismatch :=
              Some
                (Printf.sprintf
                   "step %d: trace has fiber %d stopping at %s, run has \
                    fiber %d stopping at %s"
                   i ef
                   (match es with
                   | E_done -> "done"
                   | E_crash -> "crash"
                   | E_yield (ph, s) ->
                       Printf.sprintf "yield %s %s" (phase_name ph) s)
                   a.fiber (stop_to_string a.stop))
        end
      done;
      if !mismatch = None && Array.length r.steps < Array.length expected then
        mismatch :=
          Some
            (Printf.sprintf "run quiesced after %d of %d recorded steps"
               (Array.length r.steps) (Array.length expected));
      (match (!mismatch, r.failure) with
      | Some m, _ -> Diverged m
      | None, Some f -> Reproduced f
      | None, None -> Vanished)
