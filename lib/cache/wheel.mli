(** Hashed timing wheel for TTL expiry (DESIGN.md §15).

    Lock-free bucket insertion, single elected advancer, items more
    than one revolution out re-queue on visit.  The wheel accelerates
    space reclamation; correctness of reads never depends on it (the
    cache checks expiry stamps on the read path too). *)

type 'k t

val create : slots:int -> tick_ns:int -> now:int -> 'k t
(** [create ~slots ~tick_ns ~now] — a wheel of at least [slots]
    buckets (rounded to a power of two) of [tick_ns] width, with its
    cursor at [now].
    @raise Invalid_argument if [tick_ns <= 0]. *)

val slots : 'k t -> int
val tick_ns : 'k t -> int

val add : 'k t -> 'k -> expires_at:int -> unit
(** Schedule [k] for expiry at [expires_at] (same clock as [now]).
    O(1), lock-free.  Duplicates per key are fine — the expire
    callback re-validates against the live entry. *)

val pending : 'k t -> int
(** Scheduled items not yet fired (racy estimate; O(slots + items)). *)

val advance : 'k t -> now:int -> expire:('k -> unit) -> int
(** [advance t ~now ~expire] processes every tick between the cursor
    and [now] (at most one full revolution — enough to have visited
    every bucket), firing [expire] for each due item and re-queuing
    the rest.  At most one caller advances at a time; losers return 0
    immediately.  Returns the number of items fired. *)
