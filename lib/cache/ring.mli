(** Lock-free MPMC key ring: the striped replacement-order substrate
    of the bounded cache tier (DESIGN.md §15).

    Tracks {e eviction candidates} in admission order.  Best-effort by
    design: under races a slot can be abandoned (its key then lives in
    the map untracked by any ring), which the cache covers with a fold
    fallback — the budget invariant never depends on ring
    completeness. *)

type 'k t

val create : capacity:int -> 'k t
(** [create ~capacity] — an empty ring of at least [capacity] slots
    (rounded up to a power of two, min 2). *)

val capacity : 'k t -> int

val length : 'k t -> int
(** Occupancy estimate (racy reads, clamped to [[0, capacity]]). *)

val push : 'k t -> 'k -> on_displace:('k -> unit) -> unit
(** [push t k ~on_displace] appends [k].  Always lands; when the ring
    is full the oldest element is popped and handed to [on_displace]
    first (the cache evicts it), so a ring sized below the resident
    set degrades into eviction pressure, never an error. *)

val pop : 'k t -> 'k option
(** [pop t] removes and returns the oldest element, or [None] when
    empty.  Lock-free; concurrent pops each get distinct elements. *)
