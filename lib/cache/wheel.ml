(* Hashed timing wheel for TTL expiry (DESIGN.md §15).

   [slots] power-of-two buckets of (key, expiry) pairs; an item lands
   in bucket [(expires_at / tick_ns) land mask].  [advance] walks the
   buckets between the last processed tick and [now] (clamped to one
   full revolution — beyond that every bucket has been visited once),
   fires [expire] for due items and re-queues the rest, which a hashed
   wheel must do for items scheduled more than one revolution out.

   Each bucket is a Treiber-stack list CASed on push and exchanged
   empty by the advancer, so insertion is lock-free and O(1); a single
   advancer is elected by CAS on [advancing] and everyone else skips —
   expiry is driven opportunistically from the cache's write paths
   (plus an explicit [expire_now]), never by a dedicated thread.

   The wheel only *accelerates* reclamation: the cache's read path
   checks expiry stamps itself, so a late advance (bounded by one
   revolution) is a space delay, never a stale read. *)

type 'k item = { wkey : 'k; wexp : int }

type 'k t = {
  slots : 'k item list Atomic.t array;
  mask : int;
  tick_ns : int;
  cursor : int Atomic.t;  (* last fully processed absolute tick *)
  advancing : bool Atomic.t;
}

let create ~slots ~tick_ns ~now =
  if tick_ns <= 0 then invalid_arg "Wheel.create: tick_ns must be positive";
  let n = Ct_util.Bits.next_power_of_two (max 2 slots) in
  {
    slots = Array.init n (fun _ -> Atomic.make []);
    mask = n - 1;
    tick_ns;
    cursor = Atomic.make (now / tick_ns);
    advancing = Atomic.make false;
  }

let slots t = t.mask + 1
let tick_ns t = t.tick_ns

let rec push_item cell it =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (it :: cur)) then push_item cell it

let add t k ~expires_at =
  let tick = expires_at / t.tick_ns in
  push_item t.slots.(tick land t.mask) { wkey = k; wexp = expires_at }

let pending t =
  Array.fold_left (fun acc cell -> acc + List.length (Atomic.get cell)) 0 t.slots

let advance t ~now ~expire =
  let target = now / t.tick_ns in
  (* Common case — no tick boundary crossed since the last advance —
     is one atomic load; the CAS election only runs when there is
     work, so concurrent writers don't contend here. *)
  if target > Atomic.get t.cursor
     && Atomic.compare_and_set t.advancing false true
  then begin
    let fired = ref 0 in
    let cur = Atomic.get t.cursor in
    if target > cur then begin
      let steps = min (target - cur) (t.mask + 1) in
      for i = 1 to steps do
        let cell = t.slots.((cur + i) land t.mask) in
        let items = Atomic.exchange cell [] in
        List.iter
          (fun it ->
            if it.wexp <= now then begin
              expire it.wkey;
              incr fired
            end
            else
              (* Scheduled a future revolution (or the entry was
                 refreshed): back in its bucket for the next pass. *)
              push_item cell it)
          items
      done;
      Atomic.set t.cursor target
    end;
    Atomic.set t.advancing false;
    !fired
  end
  else 0
