(** Bounded cache tier: a functor over any [CONCURRENT_MAP] that
    enforces a word budget with pluggable replacement, TTL expiry via
    a hashed timing wheel, and typed negative caching (DESIGN.md §15).

    The budget is a hard invariant, not a goal: admission reserves an
    entry's cost against the budget with a CAS {e before} the entry
    becomes resident, evicting until the reservation fits, so the
    resident footprint never exceeds [budget_words] at any instant of
    any interleaving.  Costs follow the Footprint word model
    ([Obj.reachable_words] of key and value by default, overridable)
    plus a fixed {!entry_overhead_words} metadata charge. *)

(** Replacement policy for the probation rings. *)
type policy =
  | Fifo  (** evict in admission order; overwrite does not refresh *)
  | Clock_hand
      (** FIFO with one second chance for entries read since admission
          (access bit), i.e. CLOCK *)
  | Slru
      (** segmented LRU: hits promote to a protected segment sized
          [protected_frac] of the budget; probation evicts first *)

val policy_name : policy -> string

type config = {
  budget_words : int;  (** resident-cost ceiling, machine words *)
  policy : policy;
  stripes : int;
      (** ring stripes; [<= 0] = one per recommended domain slot *)
  default_ttl_ns : int;  (** TTL applied by {!Make.put} when none is
      given; [0] = entries never expire *)
  negative_ttl_ns : int;  (** TTL for {!Make.put_absent} entries *)
  max_entry_frac : float;
      (** entries costing more than this fraction of the budget are
          rejected at admission rather than flushing the cache *)
  protected_frac : float;  (** SLRU protected-segment share *)
  wheel_slots : int;
  wheel_tick_ns : int;
}

val default_config : budget_words:int -> config
(** CLOCK policy, auto stripes, no default TTL, 1 s negative TTL,
    [max_entry_frac = 0.25], [protected_frac = 0.8], 256-slot wheel of
    100 ms ticks. *)

val entry_overhead_words : int
(** Fixed metadata charge per resident entry (entry record, map leaf,
    ring/wheel slots), added to the caller-visible value cost. *)

val word_cost : 'a -> int
(** [Obj.reachable_words] of a value — the default cost model, same as
    [Harness.Footprint]. *)

(** Counter snapshot; also exported via {!Make.metrics} under the
    [cache-tier] family (Prometheus/JSON). *)
type stats = {
  hits : int;
  misses : int;
  negative_hits : int;
  evictions : int;
  expirations : int;
  rejections : int;
  used_words : int;
  budget_words_ : int;
  resident : int;
}

(** Read outcome distinguishing a cached backing-store miss from an
    unknown key. *)
type 'v lookup =
  | Hit of 'v
  | Negative  (** resident [Absent] entry: the key is known missing *)
  | Miss

module Make (M : Ct_util.Map_intf.CONCURRENT_MAP) : sig
  type key = M.key
  type 'v t

  val create :
    ?config:config ->
    ?now:(unit -> int) ->
    ?cost:(key -> 'v -> int) ->
    unit ->
    'v t
  (** [create ()] — a cache over a fresh [M.t].  [config] defaults to
      [default_config ~budget_words:(1 lsl 20)] (8 MiB on 64-bit);
      [now] is the nanosecond clock driving TTLs (default
      [Ct_util.Clock.monotonic_ns]; inject a fake for deterministic
      expiry tests); [cost] prices a key/value pair in words (default
      {!word_cost} of both).
      @raise Invalid_argument on a budget below one entry's overhead
      or fractions outside their ranges. *)

  val find : 'v t -> key -> 'v lookup
  (** Read path.  Checks the expiry stamp itself (dropping a dead
      entry on sight), sets the access bit, and under SLRU promotes
      probation hits.  Counts a hit, negative hit, or miss. *)

  val get : 'v t -> key -> 'v option
  (** {!find} with [Negative] and [Miss] both collapsed to [None]. *)

  val put : ?ttl_ns:int -> 'v t -> key -> 'v -> bool
  (** [put t k v] admits [k -> v] under the budget, evicting as
      needed.  [false] = admission refused (entry above
      [max_entry_frac], or the budget could not be met), counted as a
      rejection.  [ttl_ns] overrides [config.default_ttl_ns];
      [<= 0] means no expiry.  Overwriting keeps the key's
      replacement-order position (FIFO does not refresh). *)

  val put_absent : ?ttl_ns:int -> 'v t -> key -> bool
  (** Cache "the backing store has no [k]" for [ttl_ns] (default
      [config.negative_ttl_ns]), making repeat lookups {!Negative}
      instead of repeat backing-store loads. *)

  val remove : 'v t -> key -> bool
  (** Explicit invalidation; releases the entry's reservation. *)

  val get_or_load :
    ?ttl_ns:int ->
    ?negative_ttl_ns:int ->
    'v t ->
    key ->
    load:(key -> 'v option) ->
    'v option
  (** Read-through: on {!Miss} calls [load] and caches its answer —
      [Some v] as a value, [None] as an [Absent] entry, so an absent
      key storm costs one load per negative-TTL window rather than a
      stampede. *)

  val expire_now : 'v t -> int
  (** Drive the timing wheel up to the current clock; returns entries
      reclaimed.  Expiry also piggybacks on write paths — this is for
      tests and idle housekeeping. *)

  val used_words : 'v t -> int
  (** Reserved words right now; [used_words t <= budget_words t]
      always, and at quiescence equals the resident cost sum. *)

  val budget_words : 'v t -> int
  val resident : 'v t -> int
  val config : 'v t -> config
  val stats : 'v t -> stats

  val metrics : 'v t -> Ct_util.Metrics.t
  (** The [cache-tier] counter block ([Tier_hits] .. [Tier_rejections])
      — registered globally, so it exports via [Metrics.prometheus] /
      [Metrics.to_json] like every other family. *)

  val validate : 'v t -> (unit, string) result
  (** Quiescent invariant check: [0 <= used <= budget] and [used]
      equals the fold-summed cost of resident entries. *)
end
