(* Lock-free MPMC key ring — the replacement-order substrate of the
   bounded cache tier (DESIGN.md §15).

   A fixed-capacity power-of-two array of slots with monotonically
   increasing head/tail counters: pushers claim a position by CAS on
   [tail] and store into [position land mask]; poppers claim by CAS on
   [head] and exchange the slot out.  FIFO per ring up to the races
   below.  The cache stripes several rings (one per domain slot), so
   admission-order tracking never becomes a single contended queue.

   Best-effort by design: the ring orders *eviction candidates*, it is
   not the source of truth for residency (the map is) or for the
   budget (the reserve counter is).  Two benign races exist and are
   deliberately tolerated rather than fenced:

   - a popper can claim a position whose pusher has not stored yet; it
     spins briefly, then abandons the slot (the element is later
     overwritten by a wrapping pusher, leaving a resident entry
     untracked by any ring);
   - a wrapping pusher can overwrite a slot abandoned that way.

   Untracked entries are still found by the cache's fold fallback when
   every ring runs dry while over budget, so the budget invariant never
   depends on ring completeness. *)

type 'k t = {
  slots : 'k option Atomic.t array;
  mask : int;
  head : int Atomic.t;  (* next position to pop *)
  tail : int Atomic.t;  (* next position to push *)
}

let create ~capacity =
  let cap = Ct_util.Bits.next_power_of_two (max 2 capacity) in
  {
    slots = Array.init cap (fun _ -> Atomic.make None);
    mask = cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = t.mask + 1

let length t =
  let n = Atomic.get t.tail - Atomic.get t.head in
  if n < 0 then 0 else if n > t.mask + 1 then t.mask + 1 else n

let rec pop t =
  let h = Atomic.get t.head in
  let tl = Atomic.get t.tail in
  if h >= tl then None
  else if Atomic.compare_and_set t.head h (h + 1) then begin
    let slot = t.slots.(h land t.mask) in
    let rec take spins =
      match Atomic.exchange slot None with
      | Some _ as k -> k
      | None ->
          if spins = 0 then None
          else begin
            Domain.cpu_relax ();
            take (spins - 1)
          end
    in
    match take 64 with
    | Some _ as k -> k
    | None ->
        (* The pusher of this position stalled between claiming and
           storing; its element is abandoned (see header).  Move on. *)
        pop t
  end
  else pop t

let rec try_claim t =
  let tl = Atomic.get t.tail in
  let h = Atomic.get t.head in
  if tl - h > t.mask then None
  else if Atomic.compare_and_set t.tail tl (tl + 1) then Some tl
  else try_claim t

let push t k ~on_displace =
  let rec go () =
    match try_claim t with
    | Some pos -> Atomic.set t.slots.(pos land t.mask) (Some k)
    | None ->
        (* Full: displace the oldest to the caller (who typically
           evicts it), then retry — push always lands. *)
        (match pop t with Some d -> on_displace d | None -> ());
        go ()
  in
  go ()
