(* Bounded cache tier over any CONCURRENT_MAP (DESIGN.md §15).

   The source paper's cache layer accelerates lookups but never bounds
   memory; this tier is the production complement — the "millions of
   users in bounded RAM" scenario.  Design, outside-in:

   - budget: every resident entry carries a word cost (metadata
     overhead + a caller-supplied key/value cost, by default the
     Footprint reachable-words model).  Admission CAS-reserves cost
     against [used] BEFORE the entry becomes resident and evicts until
     the reservation fits, so [used <= budget] holds at every instant
     of every interleaving — the QCheck churn property samples it
     concurrently — and resident cost never exceeds [used] (cost is
     released only after the entry is out of the map).
   - replacement: striped lock-free rings of keys in admission order
     (Ring).  FIFO pops and evicts; CLOCK gives one second chance to
     entries whose access bit was set by a read; segmented-LRU keeps a
     protected segment fed by promotion-on-hit, demoting FIFO-style
     when the protected share outgrows its fraction, and always evicts
     probation first.
   - TTL: a hashed timing wheel (Wheel) driven opportunistically from
     write paths by the monotonic clock (injectable for tests).  Reads
     check expiry stamps themselves, so wheel lateness is a space
     delay, never a stale read.
   - negative caching: a typed [Absent] payload caches backing-store
     misses under their own (short) TTL, so a miss storm on one absent
     key costs one backing-store load, not a stampede.

   Rings are advisory (see ring.ml): residency truth lives in the map,
   budget truth in [used].  When every ring runs dry while over
   budget — possible only after ring races orphaned entries — a fold
   fallback picks victims straight from the map, so the budget
   invariant survives ring imperfection. *)

module Metrics = Ct_util.Metrics
module Clock = Ct_util.Clock

type policy = Fifo | Clock_hand | Slru

let policy_name = function
  | Fifo -> "fifo"
  | Clock_hand -> "clock"
  | Slru -> "slru"

type config = {
  budget_words : int;  (* resident-cost ceiling, machine words *)
  policy : policy;
  stripes : int;  (* ring stripes; <= 0 = one per domain slot *)
  default_ttl_ns : int;  (* put TTL when none given; 0 = no expiry *)
  negative_ttl_ns : int;  (* Absent-entry TTL *)
  max_entry_frac : float;  (* admission: reject entries above this share *)
  protected_frac : float;  (* SLRU protected-segment share *)
  wheel_slots : int;
  wheel_tick_ns : int;
}

let default_config ~budget_words =
  {
    budget_words;
    policy = Clock_hand;
    stripes = 0;
    default_ttl_ns = 0;
    negative_ttl_ns = 1_000_000_000;
    max_entry_frac = 0.25;
    protected_frac = 0.8;
    wheel_slots = 256;
    wheel_tick_ns = 100_000_000;
  }

(* Fixed per-entry metadata charge, in words: the entry record, its
   payload box, the map's leaf + amortized interior share, and the
   entry's ring/wheel slots.  Deliberately a round, conservative
   constant — the budget is a cost model, not an allocator. *)
let entry_overhead_words = 24

let word_cost v = Obj.reachable_words (Obj.repr v)

type stats = {
  hits : int;
  misses : int;
  negative_hits : int;
  evictions : int;
  expirations : int;
  rejections : int;
  used_words : int;
  budget_words_ : int;
  resident : int;
}

type 'v lookup = Hit of 'v | Negative | Miss

module Make (M : Ct_util.Map_intf.CONCURRENT_MAP) = struct
  type key = M.key

  type 'v payload = Value of 'v | Absent

  type 'v entry = {
    payload : 'v payload;
    cost : int;  (* words reserved against the budget *)
    expires_at : int;  (* cache-clock ns; max_int = never *)
    mutable touched : bool;  (* access bit (CLOCK second chance) *)
    mutable level : int;  (* 0 = probation, 1 = protected (SLRU) *)
  }

  type 'v t = {
    cfg : config;
    map : 'v entry M.t;
    used : int Atomic.t;
    prot_used : int Atomic.t;  (* advisory SLRU protected share *)
    rings : key Ring.t array;  (* probation / admission order *)
    prot_rings : key Ring.t array;  (* SLRU protected segment *)
    smask : int;
    wheel : key Wheel.t;
    now : unit -> int;
    cost_fn : key -> 'v -> int;
    max_entry_words : int;
    protected_budget : int;
    hand : int Atomic.t;  (* round-robin stripe cursor for eviction *)
    metrics : Metrics.t;
  }

  let create ?config ?now ?cost () =
    let cfg =
      match config with Some c -> c | None -> default_config ~budget_words:(1 lsl 20)
    in
    if cfg.budget_words < entry_overhead_words then
      invalid_arg "Cache.create: budget below one entry's overhead";
    if cfg.max_entry_frac <= 0.0 || cfg.max_entry_frac > 1.0 then
      invalid_arg "Cache.create: max_entry_frac outside (0, 1]";
    if cfg.protected_frac <= 0.0 || cfg.protected_frac >= 1.0 then
      invalid_arg "Cache.create: protected_frac outside (0, 1)";
    let now = match now with Some f -> f | None -> Clock.monotonic_ns in
    let cost_fn =
      match cost with
      | Some f -> f
      | None -> fun k v -> word_cost k + word_cost v
    in
    let stripes =
      Ct_util.Bits.next_power_of_two
        (if cfg.stripes > 0 then cfg.stripes
         else Domain.recommended_domain_count ())
    in
    (* Ring capacity: ~2x the largest possible resident population
       (budget / minimum entry cost), split across stripes, so CLOCK
       re-pushes and SLRU demotions rarely displace.  Rings and wheel
       are structure overhead, not charged against the budget. *)
    let per_stripe =
      max 64 (2 * cfg.budget_words / entry_overhead_words / stripes)
    in
    {
      cfg;
      map = M.create ();
      used = Atomic.make 0;
      prot_used = Atomic.make 0;
      rings = Array.init stripes (fun _ -> Ring.create ~capacity:per_stripe);
      prot_rings = Array.init stripes (fun _ -> Ring.create ~capacity:per_stripe);
      smask = stripes - 1;
      wheel =
        Wheel.create ~slots:cfg.wheel_slots ~tick_ns:cfg.wheel_tick_ns
          ~now:(now ());
      now;
      cost_fn;
      max_entry_words =
        max entry_overhead_words
          (int_of_float (cfg.max_entry_frac *. float_of_int cfg.budget_words));
      protected_budget =
        int_of_float (cfg.protected_frac *. float_of_int cfg.budget_words);
      hand = Atomic.make 0;
      metrics = Metrics.create ~family:"cache-tier";
    }

  let config t = t.cfg
  let metrics t = t.metrics
  let budget_words t = t.cfg.budget_words
  let used_words t = Atomic.get t.used
  let resident t = M.size t.map

  let[@inline] stripe_of_domain t = (Domain.self () :> int) land t.smask

  (* ---------------------------- accounting --------------------------- *)

  let[@inline] release t e =
    ignore (Atomic.fetch_and_add t.used (-e.cost));
    if e.level = 1 then ignore (Atomic.fetch_and_add t.prot_used (-e.cost))

  (* Remove [k] for budget pressure.  True iff this call unbound it. *)
  let evict_key t k =
    match M.remove t.map k with
    | Some e ->
        release t e;
        Metrics.incr t.metrics Metrics.Tier_evictions;
        true
    | None -> false

  (* Remove [k] only if it still holds the expired [e]; a racing put
     that refreshed the key must keep its new entry (and its cost). *)
  let drop_expired t k e =
    if M.remove_if t.map k ~expected:e then begin
      release t e;
      Metrics.incr t.metrics Metrics.Tier_expirations;
      true
    end
    else false

  (* ---------------------------- replacement -------------------------- *)

  (* Pop-scan a ring family round-robin from the hand.  [want_level]
     skips entries whose SLRU level moved since they were pushed (the
     live copy is tracked by the other family's ring).  [second_chance]
     is CLOCK: a touched entry gets its bit cleared and one re-push
     instead of eviction — except inside the last stripe-round of the
     scan bound, where eviction is forced so the scan terminates even
     if every resident entry is hot. *)
  let evict_scan t rings ~second_chance ~want_level =
    let n = t.smask + 1 in
    let bound = (4 * n) + 8 in
    let start = Atomic.fetch_and_add t.hand 1 in
    let rec go i dry =
      if dry >= n || i >= bound then false
      else
        let r = rings.((start + i) land t.smask) in
        match Ring.pop r with
        | None -> go (i + 1) (dry + 1)
        | Some k -> (
            match M.lookup t.map k with
            | None -> go (i + 1) 0  (* stale: key already gone *)
            | Some e ->
                if (match want_level with Some l -> e.level <> l | None -> false)
                then go (i + 1) 0
                else if e.expires_at <= t.now () then
                  if drop_expired t k e then true else go (i + 1) 0
                else if second_chance && e.touched && i < bound - n then begin
                  e.touched <- false;
                  Ring.push r k ~on_displace:(fun v -> ignore (evict_key t v));
                  go (i + 1) 0
                end
                else if evict_key t k then true
                else go (i + 1) 0)
    in
    go 0 0

  let demote_key t k =
    match M.lookup t.map k with
    | Some e when e.level = 1 ->
        e.level <- 0;
        e.touched <- false;
        ignore (Atomic.fetch_and_add t.prot_used (-e.cost));
        Ring.push t.rings.(stripe_of_domain t) k
          ~on_displace:(fun v -> ignore (evict_key t v))
    | _ -> ()

  let demote_one t =
    let n = t.smask + 1 in
    let start = Atomic.fetch_and_add t.hand 1 in
    let rec go i =
      if i >= n then false
      else
        match Ring.pop t.prot_rings.((start + i) land t.smask) with
        | Some k ->
            demote_key t k;
            true
        | None -> go (i + 1)
    in
    go 0

  (* Promotion on probation hit (SLRU).  The level flip is a benign
     race: a double promotion double-counts [prot_used], which only
     hastens a demotion — the budget invariant lives in [used]. *)
  let promote t k e =
    e.level <- 1;
    ignore (Atomic.fetch_and_add t.prot_used e.cost);
    Ring.push t.prot_rings.(stripe_of_domain t) k ~on_displace:(demote_key t);
    let rec rebalance guard =
      if guard > 0 && Atomic.get t.prot_used > t.protected_budget then
        if demote_one t then rebalance (guard - 1)
    in
    rebalance 8

  let evict_one t =
    match t.cfg.policy with
    | Fifo -> evict_scan t t.rings ~second_chance:false ~want_level:None
    | Clock_hand -> evict_scan t t.rings ~second_chance:true ~want_level:None
    | Slru ->
        evict_scan t t.rings ~second_chance:false ~want_level:(Some 0)
        || evict_scan t t.prot_rings ~second_chance:false ~want_level:(Some 1)

  exception Found_victim

  (* Rings dry but still over budget: ring races orphaned some
     entries.  Pick a victim straight from the map — O(resident), but
     only reachable after a lost race, so amortized noise. *)
  let fallback_evict t =
    let victim = ref None in
    (try
       M.iter
         (fun k _ ->
           victim := Some k;
           raise_notrace Found_victim)
         t.map
     with Found_victim -> ());
    match !victim with Some k -> evict_key t k | None -> false

  (* CAS-reserve [cost] words, evicting while it does not fit.  The
     reservation is what makes the budget a hard invariant: [used]
     grows only through a compare-and-set that proved the new total
     fits, and entries join the map only after their reservation. *)
  let reserve t cost =
    let max_attempts = (t.cfg.budget_words / entry_overhead_words) + 16 in
    let rec go attempts =
      let u = Atomic.get t.used in
      if u + cost <= t.cfg.budget_words then
        Atomic.compare_and_set t.used u (u + cost) || go attempts
      else if attempts <= 0 then false
      else if evict_one t || fallback_evict t then go (attempts - 1)
      else false
    in
    go max_attempts

  (* ------------------------------- TTL ------------------------------- *)

  let wheel_expire t k =
    match M.lookup t.map k with
    | Some e when e.expires_at <= t.now () -> ignore (drop_expired t k e)
    | _ -> ()

  let maybe_advance t =
    ignore (Wheel.advance t.wheel ~now:(t.now ()) ~expire:(wheel_expire t))

  let expire_now t =
    let dropped = ref 0 in
    let expire k =
      match M.lookup t.map k with
      | Some e when e.expires_at <= t.now () ->
          if drop_expired t k e then incr dropped
      | _ -> ()
    in
    ignore (Wheel.advance t.wheel ~now:(t.now ()) ~expire);
    !dropped

  (* ----------------------------- operations -------------------------- *)

  let find_untraced t k =
    match M.lookup t.map k with
    | None ->
        Metrics.incr t.metrics Metrics.Tier_misses;
        Miss
    | Some e ->
        if e.expires_at <= t.now () then begin
          ignore (drop_expired t k e);
          Metrics.incr t.metrics Metrics.Tier_misses;
          Miss
        end
        else begin
          e.touched <- true;
          match e.payload with
          | Absent ->
              Metrics.incr t.metrics Metrics.Tier_negative_hits;
              Negative
          | Value v ->
              Metrics.incr t.metrics Metrics.Tier_hits;
              (match t.cfg.policy with
              | Slru when e.level = 0 -> promote t k e
              | _ -> ());
              Hit v
        end

  (* A request the server sampled for tracing (its context is ambient
     on this domain) gets its tier lookup recorded as a span; for
     everyone else the check is a domain-local read and a branch —
     written out rather than via [timed_ambient] so the common path
     does not build a closure. *)
  let find t k =
    let ctx = Obs.Trace.current () in
    if Obs.Trace.sampled ctx then begin
      let t0 = Clock.monotonic_ns () in
      let r = find_untraced t k in
      Obs.Trace.record_sink ctx Obs.Trace.Cache_lookup ~start_ns:t0
        ~dur_ns:(Clock.monotonic_ns () - t0)
        ~a:(match r with Hit _ -> 1 | Negative -> 2 | Miss -> 0)
        ~b:0;
      r
    end
    else find_untraced t k

  let get t k = match find t k with Hit v -> Some v | Negative | Miss -> None

  let put_payload t k payload ~ttl_ns ~value_cost =
    maybe_advance t;
    let cost = entry_overhead_words + max 0 value_cost in
    if cost > t.max_entry_words || not (reserve t cost) then begin
      Metrics.incr t.metrics Metrics.Tier_rejections;
      false
    end
    else begin
      let expires_at =
        if ttl_ns <= 0 then max_int
        else
          let e = t.now () + ttl_ns in
          if e < 0 then max_int else e
      in
      let e = { payload; cost; expires_at; touched = false; level = 0 } in
      (match M.add t.map k e with
      | Some prev ->
          (* Overwrite: the old reservation is released and the ring
             position inherited — FIFO order does not refresh on
             update, matching the Nichecache exemplar. *)
          release t prev
      | None ->
          Ring.push t.rings.(stripe_of_domain t) k
            ~on_displace:(fun v -> ignore (evict_key t v)));
      if expires_at <> max_int then Wheel.add t.wheel k ~expires_at;
      true
    end

  let put ?ttl_ns t k v =
    let ttl_ns =
      match ttl_ns with Some n -> n | None -> t.cfg.default_ttl_ns
    in
    put_payload t k (Value v) ~ttl_ns ~value_cost:(t.cost_fn k v)

  let put_absent ?ttl_ns t k =
    let ttl_ns =
      match ttl_ns with Some n -> n | None -> t.cfg.negative_ttl_ns
    in
    put_payload t k Absent ~ttl_ns ~value_cost:0

  let remove t k =
    match M.remove t.map k with
    | Some e ->
        release t e;
        true
    | None -> false

  let get_or_load ?ttl_ns ?negative_ttl_ns t k ~load =
    match find t k with
    | Hit v -> Some v
    | Negative -> None
    | Miss -> (
        (* The backing-store load is the expensive leg of a tier miss;
           a sampled request gets it as its own span so a tail request
           shows load time separately from lookup time. *)
        let loaded =
          let ctx = Obs.Trace.current () in
          if Obs.Trace.sampled ctx then begin
            let t0 = Clock.monotonic_ns () in
            let r = load k in
            Obs.Trace.record_sink ctx Obs.Trace.Cache_load ~start_ns:t0
              ~dur_ns:(Clock.monotonic_ns () - t0)
              ~a:(match r with Some _ -> 1 | None -> 0)
              ~b:0;
            r
          end
          else load k
        in
        match loaded with
        | Some v ->
            ignore (put ?ttl_ns t k v);
            Some v
        | None ->
            ignore (put_absent ?ttl_ns:negative_ttl_ns t k);
            None)

  (* ------------------------------ reports ----------------------------- *)

  let stats t =
    let g c = Metrics.get t.metrics c in
    {
      hits = g Metrics.Tier_hits;
      misses = g Metrics.Tier_misses;
      negative_hits = g Metrics.Tier_negative_hits;
      evictions = g Metrics.Tier_evictions;
      expirations = g Metrics.Tier_expirations;
      rejections = g Metrics.Tier_rejections;
      used_words = Atomic.get t.used;
      budget_words_ = t.cfg.budget_words;
      resident = M.size t.map;
    }

  (* Quiescent cross-check: exact accounting and the budget bound. *)
  let validate t =
    let used = Atomic.get t.used in
    if used > t.cfg.budget_words then
      Error
        (Printf.sprintf "used %d words exceeds budget %d" used
           t.cfg.budget_words)
    else if used < 0 then Error (Printf.sprintf "used %d is negative" used)
    else
      let sum = M.fold (fun acc _ e -> acc + e.cost) 0 t.map in
      if sum <> used then
        Error
          (Printf.sprintf "resident cost %d words != reserved %d" sum used)
      else Ok ()
end
