(* Folklore open-addressing hash table (the "folklore" contender of
   Maier, Sanders & Dementiev, "Concurrent Hash Tables: Fast and
   General(?)!"): a circular linear-probing table over flat atomic
   arrays, specialized to integer keys so a slot is claimed with a
   single CAS on a machine word.

   Layout: two parallel slot arrays.  [tkeys.(i)] holds the claiming
   key ([empty_key] = unclaimed; a claim is permanent until migration).
   [cells.(i)] holds the binding state packed into one word:

     0              FREE   (claimed or unclaimed, no binding)
     1              TOMB   (binding removed; key slot stays claimed)
     vidx + 2       bound, value lives at [store.(vidx)]
     c lor frozen   migration has frozen this slot (bit 62)

   Values are arbitrary ['v], so they cannot live in the flat word
   array; they go into a chunked append-only store and the cell word
   carries the index.  Store indices are never reused, which kills ABA
   on the cell CAS: [replace_if]/[remove_if] compare the current value
   and then CAS the exact cell word they read.

   Migration (growth, tombstone cleanup, store exhaustion) is
   cooperative and help-to-completion: a writer that observes
   [tb.next] or trips over a frozen cell finishes the ENTIRE migration
   (block-claimed parallel copy + idempotent verification sweep + root
   CAS) before retrying on the new table.  This discipline is what
   keeps probes linearizable across migration — writers never operate
   on a half-frozen table, and readers may keep probing the old table
   because freezing is in-place: a frozen table is an immutable
   snapshot of the moment the last cell froze, so a read that started
   before the root swap linearizes before any post-swap write.

   Keys equal to [empty_key] (= [min_int]) cannot claim a slot, so
   that one key is carried in a dedicated side cell with the same
   packed encoding.  Key equality is integer equality — packing keys
   into slot words fixes the key type and its equality; this is why
   the structure exports an [INT_MAKER], not a [MAKER]. *)

module Hashing = Ct_util.Hashing
module Slots = Ct_util.Slots
module Yp = Ct_util.Yieldpoint
module Metrics = Ct_util.Metrics
module Prefetch = Ct_util.Prefetch

(* Yield points (DESIGN.md "Fault injection & robustness"): one site
   per distinct CAS, so the chaos layer can crash a victim between a
   key claim and its cell publication, or mid-migration between a
   freeze and its copy. *)
let yp_claim_cas = Yp.register "oa.claim.cas"
let yp_insert_cas = Yp.register "oa.insert.cas"
let yp_remove_cas = Yp.register "oa.remove.cas"
let yp_freeze_cas = Yp.register "oa.migrate.freeze"
let yp_copy_cas = Yp.register "oa.migrate.copy"
let yp_publish_cas = Yp.register "oa.migrate.publish"

(* Read-path yield point, fired once per probed slot. *)
let yp_read_probe = Yp.register_read "oa.read.probe"

let yp_cas m site slot expected repl =
  Metrics.incr m Metrics.Cas_attempts;
  Yp.here Yp.Before site;
  let ok = Atomic.compare_and_set slot expected repl in
  if ok then Yp.here Yp.After site else Metrics.incr m Metrics.Cas_retries;
  ok

let yp_cas_slot m site slots pos expected repl =
  Metrics.incr m Metrics.Cas_attempts;
  Yp.here Yp.Before site;
  let ok = Slots.cas slots pos expected repl in
  if ok then Yp.here Yp.After site else Metrics.incr m Metrics.Cas_retries;
  ok

(* Packed cell encoding. *)
let empty_key = min_int
let free_cell = 0
let tomb_cell = 1
let frozen_bit = 1 lsl 62
let live_mask = frozen_bit - 1

let initial_cap = 16
let chunk_sz = 256
let mig_block = 64
let chunk_cap = 64 (* batch-op chunk, as in the tries *)

module Make (H : Hashing.HASHABLE with type t = int) = struct
  type key = int

  let name = "oa-folklore"

  type 'v table = {
    cap : int;  (* power of two *)
    tkeys : int Slots.t;
    cells : int Slots.t;
    spine : 'v array Atomic.t array;  (* chunked append-only value store *)
    next_vidx : int Atomic.t;
    store_cap : int;
    min_key_cell : int Atomic.t;  (* binding of [empty_key] itself *)
    used : int Atomic.t;  (* claimed slots (heuristic; see below) *)
    tombs : int Atomic.t;
    live : int Atomic.t;
    next : 'v table option Atomic.t;  (* migration target *)
    mig_cursor : int Atomic.t;  (* next copy block to claim *)
  }

  type 'v t = { root : 'v table Atomic.t; metrics : Metrics.t }

  (* The [used]/[tombs]/[live] counters are bumped after the CAS that
     commits the transition, so a domain crashed between the two
     leaves them undercounting.  They only drive migration heuristics,
     which tolerate drift (sizing uses them conservatively); they are
     deliberately NOT validated against the slots. *)

  let make_table cap =
    let store_cap = cap * 4 in
    let nchunks = (store_cap + chunk_sz - 1) / chunk_sz in
    {
      cap;
      tkeys = Slots.make cap empty_key;
      cells = Slots.make cap free_cell;
      spine = Array.init nchunks (fun _ -> Atomic.make [||]);
      next_vidx = Atomic.make 0;
      store_cap;
      min_key_cell = Atomic.make free_cell;
      used = Atomic.make 0;
      tombs = Atomic.make 0;
      live = Atomic.make 0;
      next = Atomic.make None;
      mig_cursor = Atomic.make 0;
    }

  let create () =
    { root = Atomic.make (make_table initial_cap); metrics = Metrics.create ~family:name }

  let hash_of k = H.hash k land Hashing.mask

  (* --------------------------- value store --------------------------- *)

  (* Chunks are installed by the first writer that needs them (CAS
     against the shared [[||]]), and never move: a published value
     index stays valid for the table's lifetime, so readers index with
     two loads and no lock. *)
  let rec chunk_for (tb : 'v table) ci v =
    let arr = Atomic.get tb.spine.(ci) in
    if Array.length arr > 0 then arr
    else begin
      let fresh = Array.make chunk_sz v in
      if Atomic.compare_and_set tb.spine.(ci) arr fresh then fresh
      else chunk_for tb ci v
    end

  let store_get tb vidx =
    Array.unsafe_get
      (Atomic.get (Array.unsafe_get tb.spine (vidx / chunk_sz)))
      (vidx mod chunk_sz)

  (* Returns the new value's index, or -1 when the store is exhausted
     (the caller triggers a migration, which starts a fresh store).  A
     failed cell CAS abandons its index — bounded leakage that only
     hastens the next migration. *)
  let store_append tb v =
    let idx = Atomic.fetch_and_add tb.next_vidx 1 in
    if idx >= tb.store_cap then -1
    else begin
      let chunk = chunk_for tb (idx / chunk_sz) v in
      chunk.(idx mod chunk_sz) <- v;
      idx
    end

  (* ------------------------------ lookup ----------------------------- *)

  (* Wait-free, allocation-free probe.  Readers ignore [next] and the
     frozen bit (masked off): a table being migrated is frozen in
     place, never emptied, so it remains a consistent snapshot. *)
  let rec probe_find tb k i steps : 'v =
    Yp.here Yp.Before yp_read_probe;
    let ks = Slots.get tb.tkeys i in
    if ks = empty_key then raise_notrace Not_found
    else if ks = k then begin
      let c = Slots.get tb.cells i land live_mask in
      if c < 2 then raise_notrace Not_found else store_get tb (c - 2)
    end
    else if steps + 1 >= tb.cap then raise_notrace Not_found
    else probe_find tb k ((i + 1) land (tb.cap - 1)) (steps + 1)

  let table_find tb k : 'v =
    if k = empty_key then begin
      let c = Atomic.get tb.min_key_cell land live_mask in
      if c < 2 then raise_notrace Not_found else store_get tb (c - 2)
    end
    else probe_find tb k (hash_of k land (tb.cap - 1)) 0

  let find t k = table_find (Atomic.get t.root) k
  let lookup t k = match find t k with v -> Some v | exception Not_found -> None
  let mem t k = match find t k with _ -> true | exception Not_found -> false

  (* ----------------------------- migration --------------------------- *)

  (* Freeze slot [i] (idempotent: loops until the frozen bit sticks)
     and return the frozen word. *)
  let rec freeze_cell t tb i =
    let c = Slots.get tb.cells i in
    if c land frozen_bit <> 0 then c
    else if yp_cas_slot t.metrics yp_freeze_cas tb.cells i c (c lor frozen_bit)
    then c lor frozen_bit
    else freeze_cell t tb i

  (* Copy one binding into the next table.  Idempotent: the cell is
     published only FREE -> vidx, so a second helper copying the same
     slot finds it non-FREE and stops (its appended value index leaks,
     bounded by the number of racing helpers).  During a migration no
     regular writer touches [nt] — every entry point helps to
     completion first — so helpers only race each other here. *)
  let migrate_put t nt k v =
    let rec publish i =
      let c = Slots.get nt.cells i in
      if c = free_cell then begin
        let vidx = store_append nt v in
        (* The new store is sized for the whole live set (see the
           sizing bound in [install_next]); -1 is unreachable. *)
        if vidx >= 0 then
          if yp_cas_slot t.metrics yp_copy_cas nt.cells i free_cell (vidx + 2)
          then Atomic.incr nt.live
          else ()
      end
    and go i steps =
      let ks = Slots.get nt.tkeys i in
      if ks = k then publish i
      else if ks = empty_key then begin
        if yp_cas_slot t.metrics yp_claim_cas nt.tkeys i empty_key k then begin
          Atomic.incr nt.used;
          publish i
        end
        else go i steps
      end
      else if steps + 1 < nt.cap then go ((i + 1) land (nt.cap - 1)) (steps + 1)
      (* [nt] full is unreachable: sizing keeps occupancy <= 1/2. *)
    in
    go (hash_of k land (nt.cap - 1)) 0

  let copy_slot t tb nt i =
    let c = freeze_cell t tb i land live_mask in
    if c >= 2 then
      (* A binding implies the key was claimed (and published by the
         claim CAS) before the cell CAS we just froze. *)
      migrate_put t nt (Slots.get tb.tkeys i) (store_get tb (c - 2))

  let copy_min t tb nt =
    let rec freeze () =
      let c = Atomic.get tb.min_key_cell in
      if c land frozen_bit <> 0 then c
      else if yp_cas t.metrics yp_freeze_cas tb.min_key_cell c (c lor frozen_bit)
      then c lor frozen_bit
      else freeze ()
    in
    let c = freeze () land live_mask in
    if c >= 2 then begin
      let nc = Atomic.get nt.min_key_cell in
      if nc = free_cell then begin
        let vidx = store_append nt (store_get tb (c - 2)) in
        if vidx >= 0 then
          if yp_cas t.metrics yp_copy_cas nt.min_key_cell free_cell (vidx + 2)
          then Atomic.incr nt.live
      end
    end

  (* Help the migration out of [tb] to completion.  Phase 1 claims
     copy blocks through a shared cursor so helpers parallelize;
     phase 2 is a full idempotent verification sweep that re-freezes
     and re-copies every slot, covering blocks whose claimant crashed
     or stalled.  Only after the sweep — every cell provably frozen,
     every binding provably in [nt] — is the root advanced. *)
  let help_migrate t tb =
    match Atomic.get tb.next with
    | None -> ()
    | Some nt ->
        Metrics.incr t.metrics Metrics.Helps;
        let nblocks = (tb.cap + mig_block - 1) / mig_block in
        let rec claim () =
          let b = Atomic.fetch_and_add tb.mig_cursor 1 in
          if b < nblocks then begin
            let lo = b * mig_block in
            let hi = min tb.cap (lo + mig_block) in
            for i = lo to hi - 1 do
              copy_slot t tb nt i
            done;
            claim ()
          end
        in
        claim ();
        for i = 0 to tb.cap - 1 do
          copy_slot t tb nt i
        done;
        copy_min t tb nt;
        if yp_cas t.metrics yp_publish_cas t.root tb nt then
          Metrics.incr t.metrics Metrics.Expansions

  (* Install a migration target if none exists yet.  Sizing: count the
     bindings actually present, add every slot still unclaimed (an
     upper bound on inserts that can still commit into [tb] before
     their slots freeze — claims are the only way in), and double
     unless that bound fits in half the current capacity.  Either way
     the new table's occupancy stays <= 1/2, so [migrate_put] always
     finds a slot and the new table does not re-trigger immediately. *)
  let install_next tb =
    match Atomic.get tb.next with
    | Some _ -> ()
    | None ->
        let bindings = ref 0 in
        for i = 0 to tb.cap - 1 do
          if Slots.get tb.cells i land live_mask >= 2 then incr bindings
        done;
        if Atomic.get tb.min_key_cell land live_mask >= 2 then incr bindings;
        let head = !bindings + (tb.cap - Atomic.get tb.used) in
        let newcap = if head * 2 <= tb.cap then tb.cap else tb.cap * 2 in
        let nt = make_table (max initial_cap newcap) in
        ignore (Atomic.compare_and_set tb.next None (Some nt))

  let trigger_migrate t tb =
    install_next tb;
    help_migrate t tb

  (* Amortized growth triggers: ~70% claimed, or a quarter of the
     table tombstoned, or (checked at append) value store exhausted. *)
  let threshold_breached tb =
    Atomic.get tb.used * 10 >= tb.cap * 7 || Atomic.get tb.tombs * 4 >= tb.cap

  let maybe_trigger t tb = if threshold_breached tb then trigger_migrate t tb

  (* ------------------------------ updates ---------------------------- *)

  type 'v mode = Always | If_absent | If_present | If_value of 'v

  (* [UBlocked]: the slot is frozen or the store is full — help the
     migration, retry on the new table. *)
  type 'v upd = UDone of 'v option | UBlocked

  let rec cell_update t tb i v mode : 'v upd =
    let c = Slots.get tb.cells i in
    if c land frozen_bit <> 0 then UBlocked
    else if c < 2 then begin
      (* FREE or TOMB: no current binding. *)
      match mode with
      | If_present | If_value _ -> UDone None
      | Always | If_absent ->
          let vidx = store_append tb v in
          if vidx < 0 then UBlocked
          else if yp_cas_slot t.metrics yp_insert_cas tb.cells i c (vidx + 2)
          then begin
            Atomic.incr tb.live;
            if c = tomb_cell then Atomic.decr tb.tombs;
            UDone None
          end
          else cell_update t tb i v mode
    end
    else begin
      let cur = store_get tb (c - 2) in
      match mode with
      | If_absent -> UDone (Some cur)
      | If_value expected when cur != expected -> UDone (Some cur)
      | Always | If_present | If_value _ ->
          let vidx = store_append tb v in
          if vidx < 0 then UBlocked
          else if yp_cas_slot t.metrics yp_insert_cas tb.cells i c (vidx + 2)
          then UDone (Some cur)
          else cell_update t tb i v mode
    end

  let rec probe_update t tb k v mode i steps : 'v upd =
    let ks = Slots.get tb.tkeys i in
    if ks = k then cell_update t tb i v mode
    else if ks = empty_key then begin
      match mode with
      | If_present | If_value _ -> UDone None
      | Always | If_absent ->
          if yp_cas_slot t.metrics yp_claim_cas tb.tkeys i empty_key k then begin
            Atomic.incr tb.used;
            cell_update t tb i v mode
          end
          else probe_update t tb k v mode i steps (* re-examine the slot *)
    end
    else if steps + 1 >= tb.cap then UBlocked (* full: migrate *)
    else probe_update t tb k v mode ((i + 1) land (tb.cap - 1)) (steps + 1)

  let rec min_cell_update t tb v mode : 'v upd =
    let c = Atomic.get tb.min_key_cell in
    if c land frozen_bit <> 0 then UBlocked
    else if c < 2 then begin
      match mode with
      | If_present | If_value _ -> UDone None
      | Always | If_absent ->
          let vidx = store_append tb v in
          if vidx < 0 then UBlocked
          else if yp_cas t.metrics yp_insert_cas tb.min_key_cell c (vidx + 2)
          then begin
            Atomic.incr tb.live;
            UDone None
          end
          else min_cell_update t tb v mode
    end
    else begin
      let cur = store_get tb (c - 2) in
      match mode with
      | If_absent -> UDone (Some cur)
      | If_value expected when cur != expected -> UDone (Some cur)
      | Always | If_present | If_value _ ->
          let vidx = store_append tb v in
          if vidx < 0 then UBlocked
          else if yp_cas t.metrics yp_insert_cas tb.min_key_cell c (vidx + 2)
          then UDone (Some cur)
          else min_cell_update t tb v mode
    end

  let rec update t k v mode : 'v option =
    let tb = Atomic.get t.root in
    match Atomic.get tb.next with
    | Some _ ->
        (* Help-to-completion: never write into a table under
           migration. *)
        help_migrate t tb;
        update t k v mode
    | None -> (
        let r =
          if k = empty_key then min_cell_update t tb v mode
          else probe_update t tb k v mode (hash_of k land (tb.cap - 1)) 0
        in
        match r with
        | UDone prev ->
            maybe_trigger t tb;
            prev
        | UBlocked ->
            trigger_migrate t tb;
            update t k v mode)

  let insert t k v = ignore (update t k v Always)
  let add t k v = update t k v Always
  let put_if_absent t k v = update t k v If_absent
  let replace t k v = update t k v If_present

  let replace_if t k ~expected v =
    match update t k v (If_value expected) with
    | Some p -> p == expected
    | None -> false

  (* ------------------------------ remove ----------------------------- *)

  let rec cell_remove t tb i cond : 'v upd =
    let c = Slots.get tb.cells i in
    if c land frozen_bit <> 0 then UBlocked
    else if c < 2 then UDone None
    else begin
      let cur = store_get tb (c - 2) in
      if not (cond cur) then UDone (Some cur)
      else if yp_cas_slot t.metrics yp_remove_cas tb.cells i c tomb_cell then begin
        Atomic.incr tb.tombs;
        Atomic.decr tb.live;
        Metrics.incr t.metrics Metrics.Entombments;
        UDone (Some cur)
      end
      else cell_remove t tb i cond
    end

  let rec probe_remove t tb k cond i steps : 'v upd =
    let ks = Slots.get tb.tkeys i in
    if ks = k then cell_remove t tb i cond
    else if ks = empty_key then UDone None
    else if steps + 1 >= tb.cap then UDone None
    else probe_remove t tb k cond ((i + 1) land (tb.cap - 1)) (steps + 1)

  let rec min_cell_remove t tb cond : 'v upd =
    let c = Atomic.get tb.min_key_cell in
    if c land frozen_bit <> 0 then UBlocked
    else if c < 2 then UDone None
    else begin
      let cur = store_get tb (c - 2) in
      if not (cond cur) then UDone (Some cur)
      else if yp_cas t.metrics yp_remove_cas tb.min_key_cell c free_cell then begin
        Atomic.decr tb.live;
        Metrics.incr t.metrics Metrics.Entombments;
        UDone (Some cur)
      end
      else min_cell_remove t tb cond
    end

  let rec remove_with t k cond : 'v option =
    let tb = Atomic.get t.root in
    match Atomic.get tb.next with
    | Some _ ->
        help_migrate t tb;
        remove_with t k cond
    | None -> (
        let r =
          if k = empty_key then min_cell_remove t tb cond
          else probe_remove t tb k cond (hash_of k land (tb.cap - 1)) 0
        in
        match r with
        | UDone prev ->
            maybe_trigger t tb;
            prev
        | UBlocked ->
            trigger_migrate t tb;
            remove_with t k cond)

  let remove t k = remove_with t k (fun _ -> true)

  let remove_if t k ~expected =
    match remove_with t k (fun v -> v == expected) with
    | Some p -> p == expected
    | None -> false

  (* --------------------------- batch operations ---------------------- *)

  (* Flat arrays make staging trivial (DESIGN.md §13): the home slot's
     key and cell lines for a whole chunk are hinted before the first
     probe touches any of them, so the one cache miss per key that
     dominates an OA lookup overlaps across the chunk.  Probes past
     the home slot ride the same or the next line.  No scratch state
     is needed — chunks carry their counters through recursion, so the
     read path allocates nothing. *)

  let prefetch_homes tb keys base n =
    let mask = tb.cap - 1 in
    for p = base to base + n - 1 do
      let k = Array.unsafe_get keys p in
      if k <> empty_key then begin
        let i = hash_of k land mask in
        Slots.prefetch tb.tkeys i;
        Slots.prefetch tb.cells i
      end
    done

  let rec resolve_finds tb keys ~miss (out : 'v array) p stop hits =
    if p >= stop then hits
    else
      let k = Array.unsafe_get keys p in
      match table_find tb k with
      | v ->
          Array.unsafe_set out p v;
          resolve_finds tb keys ~miss out (p + 1) stop (hits + 1)
      | exception Not_found ->
          Array.unsafe_set out p miss;
          resolve_finds tb keys ~miss out (p + 1) stop hits

  let rec find_chunks tb keys ~miss out base total hits =
    if base >= total then hits
    else begin
      let n = min chunk_cap (total - base) in
      prefetch_homes tb keys base n;
      let hits = resolve_finds tb keys ~miss out base (base + n) hits in
      find_chunks tb keys ~miss out (base + n) total hits
    end

  let find_batch t keys ~miss out =
    let total = Array.length keys in
    if Array.length out < total then
      invalid_arg "Folklore.find_batch: out array shorter than keys";
    find_chunks (Atomic.get t.root) keys ~miss out 0 total 0

  let rec insert_chunks t keys vals base total =
    if base < total then begin
      let n = min chunk_cap (total - base) in
      prefetch_homes (Atomic.get t.root) keys base n;
      for p = base to base + n - 1 do
        insert t (Array.unsafe_get keys p) (Array.unsafe_get vals p)
      done;
      insert_chunks t keys vals (base + n) total
    end

  let insert_batch t keys vals =
    if Array.length keys <> Array.length vals then
      invalid_arg "Folklore.insert_batch: keys and vals differ in length";
    insert_chunks t keys vals 0 (Array.length keys)

  let rec remove_chunks t keys base total removed =
    if base >= total then removed
    else begin
      let n = min chunk_cap (total - base) in
      prefetch_homes (Atomic.get t.root) keys base n;
      let removed = ref removed in
      for p = base to base + n - 1 do
        match remove t (Array.unsafe_get keys p) with
        | Some _ -> incr removed
        | None -> ()
      done;
      remove_chunks t keys (base + n) total !removed
    end

  let remove_batch t keys = remove_chunks t keys 0 (Array.length keys) 0

  (* ------------------------- aggregate queries ----------------------- *)

  let fold f acc0 t =
    let tb = Atomic.get t.root in
    let acc = ref acc0 in
    for i = 0 to tb.cap - 1 do
      let c = Slots.get tb.cells i land live_mask in
      if c >= 2 then acc := f !acc (Slots.get tb.tkeys i) (store_get tb (c - 2))
    done;
    let c = Atomic.get tb.min_key_cell land live_mask in
    if c >= 2 then acc := f !acc empty_key (store_get tb (c - 2));
    !acc

  let iter f t = fold (fun () k v -> f k v) () t
  let size t = fold (fun n _ _ -> n + 1) 0 t
  let is_empty t = size t = 0
  let to_list t = fold (fun acc k v -> (k, v) :: acc) [] t

  (* Structural invariants, checked during quiescence.  The drifting
     heuristic counters are deliberately not validated (see above);
     everything structural is: no frozen residue outside a migration,
     packed words well formed, value indices in range, no duplicate
     keys, and every binding reachable from its hash home (no empty
     slot on the probe path — claims are permanent, so a reachable
     binding can only become unreachable through a bug). *)
  let validate t =
    let errors = ref [] in
    let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
    let tb = Atomic.get t.root in
    (match Atomic.get tb.next with
    | Some _ -> err "migration in progress during quiescence"
    | None -> ());
    if tb.cap land (tb.cap - 1) <> 0 then err "capacity %d not a power of two" tb.cap;
    let hwm = Atomic.get tb.next_vidx in
    let seen = Hashtbl.create 16 in
    for i = 0 to tb.cap - 1 do
      let ks = Slots.get tb.tkeys i in
      let c = Slots.get tb.cells i in
      if c land frozen_bit <> 0 then
        err "frozen cell %d with no migration pending" i;
      let c = c land live_mask in
      if ks = empty_key then begin
        if c <> free_cell then err "binding or tomb in unclaimed slot %d" i
      end
      else if c >= 2 then begin
        if c - 2 >= hwm then
          err "slot %d value index %d beyond store high-water mark %d" i (c - 2) hwm;
        if Hashtbl.mem seen ks then err "key claimed twice (slot %d)" i
        else Hashtbl.add seen ks ();
        let home = hash_of ks land (tb.cap - 1) in
        let rec reach j =
          if j <> i then
            if Slots.get tb.tkeys j = empty_key then
              err "binding at slot %d unreachable from home %d" i home
            else reach ((j + 1) land (tb.cap - 1))
        in
        reach home
      end
    done;
    (let c = Atomic.get tb.min_key_cell in
     if c land frozen_bit <> 0 then err "frozen min-key cell with no migration pending";
     let c = c land live_mask in
     if c = tomb_cell then err "tombstone in the min-key cell"
     else if c >= 2 && c - 2 >= hwm then err "min-key value index beyond store high-water mark");
    match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))

  (* Scrub: the only multi-step residue an abandoned operation can
     leave is an installed-but-unfinished migration (frozen cells,
     partial copy, unswapped root) — [help_migrate] is exactly the
     helping step any writer would perform, so completing it here is
     safe under live traffic.  A key claimed whose cell CAS never ran
     is not residue: it is a wasted slot with correct semantics,
     reclaimed by the next migration. *)
  let scrub t =
    let tb = Atomic.get t.root in
    match Atomic.get tb.next with
    | None -> 0
    | Some _ ->
        help_migrate t tb;
        Metrics.add t.metrics Metrics.Scrub_repairs 1;
        1

  let metrics t = t.metrics
  let stats t = Metrics.snapshot t.metrics
  let reset_stats t = Metrics.reset t.metrics

  (* Word-cost model (DESIGN.md): two flat int arrays, the chunked
     store spine with its atomic boxes and any installed chunks, six
     atomic boxes, and the table record itself. *)
  let footprint_words t =
    let tb = Atomic.get t.root in
    let arrays = 2 * (1 + ((1 + Slots.overhead_words_per_slot) * tb.cap)) in
    let spine =
      Array.fold_left
        (fun acc c ->
          acc + 2
          + (let a = Atomic.get c in
             if Array.length a = 0 then 1 else 1 + chunk_sz))
        1 tb.spine
    in
    14 + arrays + spine + (6 * 2)
end
