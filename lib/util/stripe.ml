(* One stripe per 16-word (128-byte) stride: a 64-byte line for the
   counter plus its neighbour line, so Intel's adjacent-line prefetcher
   cannot couple two stripes either.  A leading pad keeps stripe 0 off
   the line holding the array header (which every [length]/bounds read
   touches). *)

let stride = 16
let lead = stride

type t = {
  data : int array;
  mask : int;
}

let create ?stripes () =
  let requested =
    match stripes with
    | Some n -> if n < 1 then invalid_arg "Stripe.create" else n
    | None -> Domain.recommended_domain_count ()
  in
  let n = Bits.next_power_of_two requested in
  { data = Array.make (lead + (n * stride)) 0; mask = n - 1 }

let stripes t = t.mask + 1
let mask t = t.mask

let[@inline] slot t i = lead + ((i land t.mask) * stride)
let[@inline] get t i = Array.unsafe_get t.data (slot t i)
let[@inline] set t i v = Array.unsafe_set t.data (slot t i) v

let[@inline] add t i d =
  let s = slot t i in
  Array.unsafe_set t.data s (Array.unsafe_get t.data s + d)

let sum t =
  let acc = ref 0 in
  for i = 0 to t.mask do
    acc := !acc + get t i
  done;
  !acc

let fill t v =
  for i = 0 to t.mask do
    set t i v
  done

let footprint_words t = 1 + Array.length t.data
