(* Per-structure telemetry counters (DESIGN.md §11).

   One [Metrics.t] per map instance, holding every counter of the
   fixed [counter] vocabulary in a single flat int array laid out as
   per-domain blocks: domain [d] bumps word
   [lead + (d land mask) * block + index c].  A block is one 128-byte
   stride (same geometry as [Stripe]), so two domains bumping their own
   counters never share a cache line, and a bump is a plain
   read-add-write of one int — no CAS, no allocation.  Increments lost
   to racy read-modify-write from a domain migrating between blocks are
   tolerated, exactly like [Stripe]: these are statistics, not
   synchronization.

   Counters are always compiled in; [set_enabled false] turns every
   bump into a single load-and-branch, which is what the obs-off side
   of the BENCH_obs.json overhead measurement runs.

   A global registry keeps a weak reference to every live instance so
   exporters can aggregate per family ("cachetrie", "ctrie", ...)
   without the structures registering anywhere explicitly.  Weak, so
   the thousands of short-lived maps the property tests create are
   collected normally. *)

type counter =
  | Cas_attempts
  | Cas_retries
  | Helps
  | Freezes
  | Expansions
  | Compressions
  | Entombments
  | Cache_hits
  | Cache_misses
  | Cache_invalidations
  | Scrub_repairs
  | Sampling_passes
  | Cache_installs
  | Cache_adjustments
  | Retry_exhausted
  | Wal_appends
  | Wal_fsyncs
  | Wal_retries
  | Checkpoints
  | Checkpoint_records
  | Recovery_replayed
  | Tier_hits
  | Tier_misses
  | Tier_negative_hits
  | Tier_evictions
  | Tier_expirations
  | Tier_rejections

(* [@inline] matters: without flambda this match is otherwise a real
   call on every bump, and after inlining at a constant-constructor
   call site it folds to the literal slot offset. *)
let[@inline] index = function
  | Cas_attempts -> 0
  | Cas_retries -> 1
  | Helps -> 2
  | Freezes -> 3
  | Expansions -> 4
  | Compressions -> 5
  | Entombments -> 6
  | Cache_hits -> 7
  | Cache_misses -> 8
  | Cache_invalidations -> 9
  | Scrub_repairs -> 10
  | Sampling_passes -> 11
  | Cache_installs -> 12
  | Cache_adjustments -> 13
  | Retry_exhausted -> 14
  | Wal_appends -> 15
  | Wal_fsyncs -> 16
  | Wal_retries -> 17
  | Checkpoints -> 18
  | Checkpoint_records -> 19
  | Recovery_replayed -> 20
  | Tier_hits -> 21
  | Tier_misses -> 22
  | Tier_negative_hits -> 23
  | Tier_evictions -> 24
  | Tier_expirations -> 25
  | Tier_rejections -> 26

let all =
  [
    Cas_attempts; Cas_retries; Helps; Freezes; Expansions; Compressions;
    Entombments; Cache_hits; Cache_misses; Cache_invalidations; Scrub_repairs;
    Sampling_passes; Cache_installs; Cache_adjustments; Retry_exhausted;
    Wal_appends; Wal_fsyncs; Wal_retries; Checkpoints; Checkpoint_records;
    Recovery_replayed; Tier_hits; Tier_misses; Tier_negative_hits;
    Tier_evictions; Tier_expirations; Tier_rejections;
  ]

let n_counters = List.length all

let label = function
  | Cas_attempts -> "cas_attempts"
  | Cas_retries -> "cas_retries"
  | Helps -> "helps"
  | Freezes -> "freezes"
  | Expansions -> "expansions"
  | Compressions -> "compressions"
  | Entombments -> "entombments"
  | Cache_hits -> "cache_hits"
  | Cache_misses -> "cache_misses"
  | Cache_invalidations -> "cache_invalidations"
  | Scrub_repairs -> "scrub_repairs"
  | Sampling_passes -> "sampling_passes"
  | Cache_installs -> "cache_installs"
  | Cache_adjustments -> "cache_adjustments"
  | Retry_exhausted -> "retry_exhausted"
  | Wal_appends -> "wal_appends"
  | Wal_fsyncs -> "wal_fsyncs"
  | Wal_retries -> "wal_retries"
  | Checkpoints -> "checkpoints"
  | Checkpoint_records -> "checkpoint_records"
  | Recovery_replayed -> "recovery_replayed"
  | Tier_hits -> "tier_hits"
  | Tier_misses -> "tier_misses"
  | Tier_negative_hits -> "tier_negative_hits"
  | Tier_evictions -> "tier_evictions"
  | Tier_expirations -> "tier_expirations"
  | Tier_rejections -> "tier_rejections"

(* 32 words = 256 bytes: two 128-byte strides, still a multiple of the
   line-pair a counter block must own so adjacent domains never share
   (see Stripe).  The vocabulary outgrew one stride when the
   persistence counters landed; all 27 counters of one domain share the
   block — they are bumped by that domain only, so intra-block sharing
   is the point, not a hazard. *)
let block = 32
let lead = block

let () = assert (n_counters <= block)

type t = {
  family : string;
  data : int array;
  mask : int;
}

(* Global on/off gate for every bump in the program.  A plain bool ref:
   toggling races only delay the effect by a few bumps. *)
let enabled = ref true
let set_enabled b = enabled := b
let is_enabled () = !enabled

(* ------------------------------ registry --------------------------- *)

let registry : t Weak.t list Atomic.t = Atomic.make []

let rec push cell =
  let cur = Atomic.get registry in
  if not (Atomic.compare_and_set registry cur (cell :: cur)) then push cell

(* Drop collected entries once they dominate the list.  The CAS only
   succeeds if nobody registered meanwhile; losing the race just skips
   one pruning opportunity. *)
let prune cur =
  if List.length cur > 64 then begin
    let alive = List.filter (fun w -> Weak.check w 0) cur in
    if List.length alive * 2 < List.length cur then
      ignore (Atomic.compare_and_set registry cur alive)
  end

let live () =
  let cur = Atomic.get registry in
  prune cur;
  List.filter_map (fun w -> Weak.get w 0) cur

let create ~family =
  let stripes = Bits.next_power_of_two (Domain.recommended_domain_count ()) in
  let t =
    { family; data = Array.make (lead + (stripes * block)) 0; mask = stripes - 1 }
  in
  let cell = Weak.create 1 in
  Weak.set cell 0 (Some t);
  push cell;
  t

let family t = t.family
let stripes t = t.mask + 1

(* ------------------------------- bumps ----------------------------- *)

let[@inline] slot t c =
  lead + (((Domain.self () :> int) land t.mask) * block) + index c

let[@inline] add t c n =
  if !enabled then begin
    let i = slot t c in
    Array.unsafe_set t.data i (Array.unsafe_get t.data i + n)
  end

let[@inline] incr t c = add t c 1

(* Hot-path variant: capture the domain's block base once per
   operation (where the [Domain.self] C call clobbers nothing of
   value), then bump through it with pure array arithmetic.  -1 while
   disabled, so the per-bump gate is a register test, not a load. *)
let[@inline] cursor t =
  if !enabled then lead + (((Domain.self () :> int) land t.mask) * block)
  else -1

let[@inline] add_at t cur c n =
  if cur >= 0 then begin
    let i = cur + index c in
    Array.unsafe_set t.data i (Array.unsafe_get t.data i + n)
  end

let[@inline] incr_at t cur c = add_at t cur c 1

(* ------------------------------- reads ----------------------------- *)

(* Single-cell read through a cursor: the calling domain's own count of
   [c], not the cross-stripe sum.  Cheap enough to bracket one
   operation with (two array loads), which is what the tracer uses to
   annotate a span with the CAS retries or cache misses that operation
   alone performed — [get] would pay a full stripe sweep and mix in
   every other domain's traffic. *)
let[@inline] get_at t cur c =
  if cur >= 0 then Array.unsafe_get t.data (cur + index c) else 0

let get t c =
  let i = index c in
  let acc = ref 0 in
  for s = 0 to t.mask do
    acc := !acc + t.data.(lead + (s * block) + i)
  done;
  !acc

let snapshot t = List.map (fun c -> (label c, get t c)) all

let reset t = Array.fill t.data 0 (Array.length t.data) 0

(* ---------------------------- aggregation -------------------------- *)

(* Sum every live instance per family; families sorted by name so the
   exporters are deterministic given the same set of live maps. *)
let aggregate () =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun t ->
      let count, totals =
        match Hashtbl.find_opt tbl t.family with
        | Some (c, a) -> (c, a)
        | None ->
            let a = Array.make n_counters 0 in
            Hashtbl.add tbl t.family (ref 0, a);
            (ref 0, a)
      in
      Stdlib.incr count;
      List.iter (fun c -> totals.(index c) <- totals.(index c) + get t c) all)
    (live ());
  Hashtbl.fold
    (fun family (count, totals) acc ->
      ( family,
        !count,
        List.map (fun c -> (label c, totals.(index c))) all )
      :: acc)
    tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
