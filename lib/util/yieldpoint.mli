(** Yield points: named fault-injection hooks inside the lock-free
    algorithms.

    Every CAS, freeze step, transaction announcement and cache install
    in the trie implementations is bracketed by a call to {!here} with
    a registered {!site}.  In production nothing is installed and
    [here] is a single [Atomic.get] of a [None] default — no
    allocation, no branch beyond the option match — so the hooks are
    free to leave enabled unconditionally.

    The chaos layer ([lib/chaos]) installs a hook to stall a victim
    domain at a chosen point, abandon an operation mid-flight
    (simulating a crashed/descheduled domain), or inject randomized
    delays that widen race windows.  This is what lets the test suite
    drive the helping and freeze-completion paths deterministically
    instead of hoping the scheduler produces the adversarial
    interleavings the paper's lock-freedom argument is about.

    Contract at each instrumented operation:
    - [here Before site] fires before the CAS/write is attempted;
    - [here After site] fires only after a {e successful} CAS (or
      after the plain write, for cache installs) — so a hook raising at
      [After] leaves the published value visible, exactly the state a
      domain that died right after publication would leave behind.

    The hook may spin or raise; it must not re-enter the structure
    under test. *)

type phase = Before | After

type site
(** A registered yield point.  Sites are interned by name: registering
    the same name twice returns the same site, so hooks can match on
    physical equality. *)

val register : string -> site
(** [register name] interns a site.  Called at module-initialization
    time by the instrumented libraries; names are dot-separated
    ["structure.operation.step"], e.g. ["cachetrie.expand.publish"]. *)

val register_read : string -> site
(** Like {!register}, but marks the site read-only: the step it
    brackets performs no write that another operation's correctness can
    observe (benign racy cache maintenance excepted).  The
    deterministic scheduler uses this to prune commuting read/read
    interleavings; everything else treats the site like any other. *)

val name : site -> string

val is_read : site -> bool
(** Whether the site was registered with {!register_read}. *)

val all : unit -> site list
(** Every registered site, sorted by name.  Only sites of libraries
    linked into the current program appear. *)

val with_prefix : string -> site list
(** [with_prefix "cachetrie."] — the instrumented points of one
    structure. *)

val here : phase -> site -> unit
(** Fast path.  With no hook installed this is one atomic load. *)

val install : (phase -> site -> unit) -> unit
(** [install f] makes every [here] call run [f].  Installing replaces
    any previous hook; the hook is global (all domains), so injectors
    that target one domain must filter on [Domain.self] themselves. *)

val clear : unit -> unit
(** Remove the hook (back to the production fast path). *)

val active : unit -> bool

val install_observer : (phase -> site -> unit) -> unit
(** [install_observer f] installs a passive listener in a slot
    independent of {!install}: every [here] call runs the observer
    {e before} the main hook, so the observer records the site even
    when the hook parks the domain or raises (the chaos stall/crash
    injectors).  Used by the progress watchdog to note the last yield
    point each domain reached.  The observer must not raise and must
    not re-enter the structure under test. *)

val clear_observer : unit -> unit

val observer_active : unit -> bool

(** {2 Domain-local hooks}

    A third slot, independent of {!install} and {!install_observer},
    that fires only for code running in the domain that installed it.
    This is the per-fiber hook context the deterministic scheduler
    ([lib/mc]) needs: it runs several virtual domains as
    cooperatively-scheduled fibers on one real domain and parks each
    fiber at every yield point by performing an effect from the local
    hook — without filtering on [Domain.self], and without perturbing
    other domains that happen to cross yield points concurrently.

    The local hook runs after the observer and before the global hook.
    When no domain has a local hook installed, [here] pays one extra
    atomic load of a zero counter and never touches domain-local
    storage. *)

val set_local : (phase -> site -> unit) -> unit
(** Install a hook visible only to the calling domain (replacing any
    previous local hook of this domain). *)

val clear_local : unit -> unit
(** Remove the calling domain's local hook, if any. *)

val local_active : unit -> bool
(** Whether the calling domain has a local hook installed. *)

val with_local : (phase -> site -> unit) -> (unit -> 'a) -> 'a
(** [with_local f body] runs [body] with [f] installed as the calling
    domain's local hook, uninstalling it on exit (also on raise). *)
