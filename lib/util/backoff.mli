(** Exponential backoff for CAS retry loops.

    The paper's operations retry immediately; under heavy contention a
    bounded randomized backoff reduces cache-line ping-pong without
    affecting lock-freedom (some thread always makes progress).  Used
    by the benchmark drivers, the striped table and the chaos delay
    injector — the trie algorithms themselves retry bare, as in the
    paper. *)

type t

val create :
  ?min_wait:int ->
  ?max_wait:int ->
  ?budget:int ->
  ?on_exhaust:(unit -> unit) ->
  ?seed:int ->
  unit ->
  t
(** [create ()] makes a backoff controller; [min_wait]/[max_wait] are
    spin iteration counts (defaults 16 and 4096).  [budget] is a soft
    CAS-retry budget: once more than [budget] draws happen without a
    {!reset}, {!over_budget} turns true so the caller can report the
    contention (the watchdog's stuck-site escalation) — it never blocks
    progress.  [budget = 0] (default) disables the check.
    [on_exhaust] fires exactly once per episode, on the draw that
    crosses the budget ({!reset} re-arms it) — the telemetry hook the
    maps and the serving layer point at their
    [Metrics.Retry_exhausted] counter.  It must not raise.  [seed]
    fixes the PRNG drawing the spin lengths; by default each instance
    gets a distinct deterministic seed, so concurrently contending
    domains do not back off in lockstep. *)

val once : t -> unit
(** [once t] spins for the current window and doubles it (capped). *)

val next_wait : t -> int
(** [next_wait t] draws the spin count [once] would use and doubles the
    window, without spinning — for custom waiters (the chaos jitter
    injector) and for testing seed behaviour. *)

val reset : t -> unit
(** [reset t] shrinks the window back to [min_wait] and zeroes the
    per-attempt retry counter (call it when the contended operation
    finally succeeds). *)

val retries : t -> int
(** Draws ({!once}/{!next_wait} calls) since the last {!reset} — the
    CAS-retry count of the current attempt. *)

val total_retries : t -> int
(** Draws over the controller's lifetime (never reset). *)

val over_budget : t -> bool
(** [true] iff a budget was set at {!create} time and the current
    attempt has exceeded it.  Purely advisory. *)
