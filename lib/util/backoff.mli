(** Exponential backoff for CAS retry loops.

    The paper's operations retry immediately; under heavy contention a
    bounded randomized backoff reduces cache-line ping-pong without
    affecting lock-freedom (some thread always makes progress).  Used
    by the benchmark drivers, the striped table and the chaos delay
    injector — the trie algorithms themselves retry bare, as in the
    paper. *)

type t

val create : ?min_wait:int -> ?max_wait:int -> ?seed:int -> unit -> t
(** [create ()] makes a backoff controller; [min_wait]/[max_wait] are
    spin iteration counts (defaults 16 and 4096).  [seed] fixes the
    PRNG drawing the spin lengths; by default each instance gets a
    distinct deterministic seed, so concurrently contending domains do
    not back off in lockstep. *)

val once : t -> unit
(** [once t] spins for the current window and doubles it (capped). *)

val next_wait : t -> int
(** [next_wait t] draws the spin count [once] would use and doubles the
    window, without spinning — for custom waiters (the chaos jitter
    injector) and for testing seed behaviour. *)

val reset : t -> unit
(** [reset t] shrinks the window back to [min_wait]. *)
