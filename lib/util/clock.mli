(** Monotonic nanosecond clock (CLOCK_MONOTONIC via a C stub).

    [Unix.gettimeofday] is wall-clock (it can step backwards) and
    float-valued (it allocates a boxed float); the latency histograms
    need neither.  [monotonic_ns] returns a native int of nanoseconds
    since an arbitrary origin, allocates nothing, and is globally
    comparable across domains on one machine. *)

val monotonic_ns : unit -> int
