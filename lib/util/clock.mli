(** Monotonic nanosecond clock (CLOCK_MONOTONIC via a C stub).

    [Unix.gettimeofday] is wall-clock (it can step backwards under NTP
    and steps forwards on slew) and float-valued (it allocates a boxed
    float); neither deadlines nor latency histograms want either.
    [monotonic_ns] returns a native int of nanoseconds since an
    arbitrary origin, allocates nothing, and is globally comparable
    across domains on one machine.

    Every deadline and elapsed-time computation in the repo must use
    this module — a wall-clock step backwards makes a
    [gettimeofday]-based deadline spin past its timeout, and a step
    forwards silently truncates it. *)

val monotonic_ns : unit -> int
(** The raw CLOCK_MONOTONIC reading.  Allocation-free; use this on
    measurement hot paths (latency spans, throughput timing). *)

val now_ns : unit -> int
(** The virtualizable clock for {e deadline} paths (drain timeouts,
    await loops): identical to {!monotonic_ns} unless a test installed
    a fake source with {!set_source}.  One atomic load and a branch
    dearer than the raw reading — irrelevant next to the sleeps and
    syscalls deadline loops make between calls. *)

val set_source : (unit -> int) option -> unit
(** [set_source (Some f)] makes {!now_ns} read [f] instead of the
    hardware clock; [set_source None] restores it.  Test-only: lets a
    regression test step or freeze time deterministically.  Global —
    callers must restore the previous source. *)
