/* Monotonic nanosecond clock for Ct_util.Clock.
 *
 * CLOCK_MONOTONIC via clock_gettime, returned as a tagged OCaml int:
 * 62 usable bits of nanoseconds wrap after ~73 years of uptime, so
 * differences between two samples taken by the latency histograms are
 * always valid.  [@@noalloc] on the OCaml side — the stub touches no
 * OCaml heap values, so timing reads allocate nothing. */

#include <time.h>
#include <caml/mlvalues.h>

CAMLprim value ct_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  (void)unit;
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
