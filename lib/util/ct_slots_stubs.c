/* CAS on an arbitrary field of a heap block, for Atomic_slots.Flat.
 *
 * caml_atomic_cas_field is the runtime primitive behind
 * Atomic.compare_and_set (an Atomic.t is a 1-field block CASed at
 * index 0); it performs a sequentially-consistent CAS and runs the
 * GC write barrier on success, so storing young pointers into major
 * blocks is safe.  Exported by <caml/memory.h> since OCaml 5.0. */

#include <caml/mlvalues.h>
#include <caml/memory.h>

CAMLprim value ct_slots_cas_stub(value arr, value idx, value oldv, value newv)
{
  return Val_bool(caml_atomic_cas_field(arr, Long_val(idx), oldv, newv));
}
