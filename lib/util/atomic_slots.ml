module type S = sig
  type 'a t

  val repr : string
  val overhead_words_per_slot : int
  val make : int -> 'a -> 'a t
  val length : 'a t -> int
  val get : 'a t -> int -> 'a
  val set : 'a t -> int -> 'a -> unit
  val cas : 'a t -> int -> 'a -> 'a -> bool
  val prefetch : 'a t -> int -> unit
  val iter : ('a -> unit) -> 'a t -> unit
  val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
end

module Boxed : S = struct
  type 'a t = 'a Atomic.t array

  let repr = "boxed"

  (* Each slot points at a separate [Atomic.t]: 1 header + 1 field. *)
  let overhead_words_per_slot = 2

  let make n v = Array.init n (fun _ -> Atomic.make v)
  let length = Array.length

  (* Debug-build bounds guard.  Every caller derives [i] by masking a
     hash with [length a - 1], so a violation here means the caller's
     probe arithmetic wrapped (the folklore table's circular probing is
     the risky client); [Array.unsafe_get] below would silently read a
     neighbouring object instead of failing.  Compiled out by
     [-noassert]. *)
  let[@inline] check a i = assert (i >= 0 && i < Array.length a)

  let[@inline] get a i =
    check a i;
    Atomic.get (Array.unsafe_get a i)

  let[@inline] set a i v =
    check a i;
    Atomic.set (Array.unsafe_get a i) v

  let[@inline] cas a i expected repl =
    check a i;
    Atomic.compare_and_set (Array.unsafe_get a i) expected repl

  (* Two hops per slot here: warm the box pointer's target.  The array
     cell read may itself miss; this layout pays that, which is the
     point of {!Flat}. *)
  let[@inline] prefetch a i =
    check a i;
    Prefetch.read (Array.unsafe_get a i)

  let iter f a = Array.iter (fun b -> f (Atomic.get b)) a
  let fold f acc a = Array.fold_left (fun acc b -> f acc (Atomic.get b)) acc a
end

module Flat : S = struct
  (* A plain array whose fields are CASed in place.  [Obj.t array] and
     not ['a array] so the compiler can never specialize an access into
     the unboxed-float path; [make] additionally rejects arrays the
     runtime would build with [Double_array_tag]. *)
  type 'a t = Obj.t array

  let repr = "flat"
  let overhead_words_per_slot = 0

  (* The runtime's field CAS: SC success ordering, GC write barrier
     included (same primitive [Atomic.compare_and_set] compiles to,
     with an explicit field index). *)
  external unsafe_cas : Obj.t array -> int -> Obj.t -> Obj.t -> bool
    = "ct_slots_cas_stub"
  [@@noalloc]

  let make n v =
    let a = Array.make n (Obj.repr v) in
    if Obj.tag (Obj.repr a) = Obj.double_array_tag then
      invalid_arg "Atomic_slots.Flat.make: float slots are unsupported";
    a

  let length = Array.length

  (* [Obj.field]/[Obj.set_field] rather than [Array.unsafe_get]/[set]:
     the argument type is already [Obj.t array] so an array access
     would be safe too, but going through [Obj] keeps the float-array
     question out of the generated code entirely.  [Obj.set_field] is
     [caml_modify]: a release store plus the GC write barrier, so a
     reader that sees the new pointer sees the object behind it. *)
  let[@inline] get a i : 'a = Obj.obj (Obj.field (Obj.repr a) i)
  let[@inline] set a i (v : 'a) = Obj.set_field (Obj.repr a) i (Obj.repr v)

  let[@inline] cas a i (expected : 'a) (repl : 'a) =
    unsafe_cas a i (Obj.repr expected) (Obj.repr repl)

  (* The slot array IS the node, so the cell address is the miss:
     hint the line without reading the field. *)
  let[@inline] prefetch a i = Prefetch.cell a i

  let iter f a =
    for i = 0 to Array.length a - 1 do
      f (get a i)
    done

  let fold f acc a =
    let acc = ref acc in
    for i = 0 to Array.length a - 1 do
      acc := f !acc (get a i)
    done;
    !acc
end
