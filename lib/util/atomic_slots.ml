module type S = sig
  type 'a t

  val repr : string
  val overhead_words_per_slot : int
  val make : int -> 'a -> 'a t
  val length : 'a t -> int
  val get : 'a t -> int -> 'a
  val set : 'a t -> int -> 'a -> unit
  val cas : 'a t -> int -> 'a -> 'a -> bool
  val iter : ('a -> unit) -> 'a t -> unit
  val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
end

module Boxed : S = struct
  type 'a t = 'a Atomic.t array

  let repr = "boxed"

  (* Each slot points at a separate [Atomic.t]: 1 header + 1 field. *)
  let overhead_words_per_slot = 2

  let make n v = Array.init n (fun _ -> Atomic.make v)
  let length = Array.length

  let[@inline] get a i = Atomic.get (Array.unsafe_get a i)
  let[@inline] set a i v = Atomic.set (Array.unsafe_get a i) v

  let[@inline] cas a i expected repl =
    Atomic.compare_and_set (Array.unsafe_get a i) expected repl

  let iter f a = Array.iter (fun b -> f (Atomic.get b)) a
  let fold f acc a = Array.fold_left (fun acc b -> f acc (Atomic.get b)) acc a
end

module Flat : S = struct
  (* A plain array whose fields are CASed in place.  [Obj.t array] and
     not ['a array] so the compiler can never specialize an access into
     the unboxed-float path; [make] additionally rejects arrays the
     runtime would build with [Double_array_tag]. *)
  type 'a t = Obj.t array

  let repr = "flat"
  let overhead_words_per_slot = 0

  (* The runtime's field CAS: SC success ordering, GC write barrier
     included (same primitive [Atomic.compare_and_set] compiles to,
     with an explicit field index). *)
  external unsafe_cas : Obj.t array -> int -> Obj.t -> Obj.t -> bool
    = "ct_slots_cas_stub"
  [@@noalloc]

  let make n v =
    let a = Array.make n (Obj.repr v) in
    if Obj.tag (Obj.repr a) = Obj.double_array_tag then
      invalid_arg "Atomic_slots.Flat.make: float slots are unsupported";
    a

  let length = Array.length

  (* [Obj.field]/[Obj.set_field] rather than [Array.unsafe_get]/[set]:
     the argument type is already [Obj.t array] so an array access
     would be safe too, but going through [Obj] keeps the float-array
     question out of the generated code entirely.  [Obj.set_field] is
     [caml_modify]: a release store plus the GC write barrier, so a
     reader that sees the new pointer sees the object behind it. *)
  let[@inline] get a i : 'a = Obj.obj (Obj.field (Obj.repr a) i)
  let[@inline] set a i (v : 'a) = Obj.set_field (Obj.repr a) i (Obj.repr v)

  let[@inline] cas a i (expected : 'a) (repl : 'a) =
    unsafe_cas a i (Obj.repr expected) (Obj.repr repl)

  let iter f a =
    for i = 0 to Array.length a - 1 do
      f (get a i)
    done

  let fold f acc a =
    let acc = ref acc in
    for i = 0 to Array.length a - 1 do
      acc := f !acc (get a i)
    done;
    !acc
end
