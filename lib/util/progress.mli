(** Per-domain publication heartbeats for the progress watchdog.

    A [Progress.t] owns a {!Stripe} of heartbeat cells plus, per slot,
    the last yield point the attached domain was seen at.  Worker
    domains call {!attach} once with their slot index; {!install} then
    plugs a listener into the yield-point {e observer} slot (see
    {!Yieldpoint.install_observer}), so heartbeats keep flowing even
    while a chaos injector owns the main hook — that composition is
    what lets the watchdog pinpoint a victim parked by the stall
    injector.

    Only [After]-phase yield points bump the heartbeat: [After] fires
    on successful publication only, so a domain spinning in a CAS
    retry loop (endless [Before]s) registers as stalled, not as alive.
    The [last]-site record is updated at every phase, so a stalled
    domain's report still names the exact site it is parked at. *)

type t

val create : ?slots:int -> unit -> t
(** [create ()] sizes the slot count like {!Stripe.create} (from
    [Domain.recommended_domain_count], rounded to a power of two). *)

val slots : t -> int

val attach : t -> int -> unit
(** [attach t slot] binds the calling domain to [slot] (domain-local;
    raises [Invalid_argument] if out of range). *)

val detach : t -> unit
(** [detach t] vacates the calling domain's slot and clears its
    last-site record, so a worker that left the pool cleanly stops
    reading as stalled. *)

val attached : t -> int option
(** The calling domain's slot, if attached. *)

val beat : t -> unit
(** Manual heartbeat for the calling domain's slot — for progress loops
    that are not yield-point-instrumented (e.g. pure readers). *)

val observe : t -> Yieldpoint.phase -> Yieldpoint.site -> unit
(** The raw listener: records (site, phase) for the calling domain's
    slot and bumps its heartbeat on [After].  Exposed so callers can
    compose it into a larger observer; most use {!install}. *)

val install : t -> unit
(** Install {!observe} as the global yield-point observer. *)

val uninstall : unit -> unit

val beats : t -> int -> int
(** Publication count of one slot. *)

val last : t -> int -> (Yieldpoint.site * Yieldpoint.phase) option
(** Last yield point the slot's domain reached, if any. *)

val snapshot : t -> int array
(** All heartbeat counters at once (racy reads, by design). *)
