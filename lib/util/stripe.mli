(** Cache-line-padded striped integer counters.

    A contended statistic (the cache's miss counters, the harness's
    per-domain throughput counters) is split into [stripes] independent
    slots, each alone on its cache line, so domains incrementing
    different stripes never invalidate each other's lines.  Without the
    padding a plain [int array] packs 8 counters per 64-byte line and
    every increment ping-pongs the line between cores — the false
    sharing this module exists to kill.

    Counters are plain (non-atomic) loads/stores: all users tolerate
    lost updates (the miss counters are a heuristic, the throughput
    counters are read only after the writers join). *)

type t

val create : ?stripes:int -> unit -> t
(** [create ()] sizes the stripe count from
    [Domain.recommended_domain_count ()], rounded up to a power of two.
    [?stripes] overrides (also rounded up to a power of two); values
    [< 1] raise [Invalid_argument]. *)

val stripes : t -> int
(** Number of stripes; always a power of two. *)

val mask : t -> int
(** [stripes t - 1], for deriving a stripe index from a hash. *)

val get : t -> int -> int
(** [get t i] reads stripe [i land mask t]. *)

val set : t -> int -> int -> unit
(** [set t i v] writes stripe [i land mask t]. *)

val add : t -> int -> int -> unit
(** [add t i d] adds [d] to stripe [i land mask t] (plain read-add-write;
    racy updates may be lost, by design). *)

val sum : t -> int
(** Sum of all stripes. *)

val fill : t -> int -> unit
(** Set every stripe to the given value. *)

val footprint_words : t -> int
(** Heap words of the backing array, header included. *)
