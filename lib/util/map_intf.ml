(** Shared signature implemented by all four concurrent maps
    (cache-trie, Ctrie, hash map, skip list), so that the benchmark
    harness, linearizability checker and cross-structure tests are
    generic over the structure under test.

    Semantics follow the JDK [ConcurrentMap] contract the paper
    benchmarks against; every operation is atomic (linearizable) with
    the exception of the aggregate queries ([size], [fold], [iter],
    [to_list]), which are weakly consistent: they observe every key
    present for the whole duration of the call and never observe a key
    absent for the whole duration. *)

module type CONCURRENT_MAP = sig
  type key

  type 'v t

  val name : string
  (** Short structure name used in benchmark reports ("cachetrie",
      "ctrie", "chm", "skiplist", ...). *)

  val create : unit -> 'v t
  (** [create ()] makes an empty map. *)

  val lookup : 'v t -> key -> 'v option
  (** [lookup t k] is the current binding of [k], if any. *)

  val find : 'v t -> key -> 'v
  (** [find t k] is the current binding of [k].
      @raise Not_found if [k] is unbound.  Unlike {!lookup}, a hit
      allocates nothing (no [Some] box): this is the read every
      benchmark measures and every hot caller should prefer. *)

  val mem : 'v t -> key -> bool
  (** [mem t k] is [true] iff [k] is bound.  Allocation-free. *)

  val insert : 'v t -> key -> 'v -> unit
  (** [insert t k v] binds [k] to [v], replacing any previous
      binding (JDK [put] without the return value). *)

  val add : 'v t -> key -> 'v -> 'v option
  (** [add t k v] binds [k] to [v] and returns the previous binding
      (JDK [put]). *)

  val put_if_absent : 'v t -> key -> 'v -> 'v option
  (** [put_if_absent t k v] binds [k] to [v] only if unbound; returns
      the existing binding otherwise (JDK [putIfAbsent]). *)

  val replace : 'v t -> key -> 'v -> 'v option
  (** [replace t k v] rebinds [k] only if already bound; returns the
      previous binding (JDK [replace]). *)

  val replace_if : 'v t -> key -> expected:'v -> 'v -> bool
  (** [replace_if t k ~expected v] atomically rebinds [k] to [v] iff
      its current value is physically equal to [expected] — the JDK
      [replace(key, old, new)], i.e. a compare-and-swap on the
      binding.  For immediate values such as [int], physical equality
      coincides with structural equality. *)

  val remove : 'v t -> key -> 'v option
  (** [remove t k] removes and returns the binding of [k], if any. *)

  val remove_if : 'v t -> key -> expected:'v -> bool
  (** [remove_if t k ~expected] atomically removes [k] iff its current
      value is physically equal to [expected] — the JDK
      [remove(key, value)]. *)

  val find_batch : 'v t -> key array -> miss:'v -> 'v array -> int
  (** [find_batch t keys ~miss out] looks up every [keys.(i)] and
      stores its binding — or [miss] if unbound — into [out.(i)];
      returns the number of keys found.  Semantically identical to a
      left-to-right loop of {!find}: each lookup is individually
      linearizable (there is no atomicity across the batch), and like
      {!find} the call allocates nothing (the [miss] sentinel avoids
      the [option] box).  Structures with staged traversals process
      the keys in lockstep per level, issuing {!Prefetch} hints for the
      next level's nodes before touching them, so the cache misses of
      a batch overlap instead of serializing (DESIGN.md §13); the rest
      fall back to the scalar loop via {!Batch_fallback}.
      @raise Invalid_argument if [out] is shorter than [keys]. *)

  val insert_batch : 'v t -> key array -> 'v array -> unit
  (** [insert_batch t keys vals] binds [keys.(i)] to [vals.(i)] for
      every [i], left to right.  Equivalent to a loop of {!insert}
      (each insert individually linearizable; later duplicates win).
      @raise Invalid_argument if the arrays differ in length. *)

  val remove_batch : 'v t -> key array -> int
  (** [remove_batch t keys] removes every [keys.(i)], left to right;
      returns how many were bound.  Equivalent to a loop of
      {!remove}. *)

  val size : 'v t -> int
  (** Number of bindings; weakly consistent, O(n). *)

  val is_empty : 'v t -> bool

  val fold : ('a -> key -> 'v -> 'a) -> 'a -> 'v t -> 'a
  (** Weakly consistent fold over the bindings. *)

  val iter : (key -> 'v -> unit) -> 'v t -> unit

  val to_list : 'v t -> (key * 'v) list
  (** Bindings in unspecified order. *)

  val footprint_words : 'v t -> int
  (** Structural memory footprint estimate in machine words, using the
      word-cost model documented in DESIGN.md (headers included, keys
      and values counted as one pointer word each).  Single-threaded
      use only. *)

  val validate : 'v t -> (unit, string) result
  (** Structural invariant check.  [Ok ()] on a quiescent,
      residue-free structure; [Error msg] names the first violated
      invariant (including residue a crashed domain left behind:
      frozen subtrees, descriptors, entombed or marked nodes,
      uncommitted transaction boxes).  Read-only — it reports, never
      repairs — and only meaningful during quiescence. *)

  val metrics : 'v t -> Metrics.t
  (** The structure's telemetry counter block (DESIGN.md §11).  Every
      instance owns one, registered under the structure's family name;
      the exporters aggregate them via {!Metrics.aggregate}. *)

  val stats : 'v t -> (string * int) list
  (** Uniform counter snapshot: [(label, total)] for every counter of
      the {!Metrics.counter} vocabulary, in fixed order.  Counters a
      structure never bumps read 0. *)

  val reset_stats : 'v t -> unit
  (** Zero this instance's counters (racy against concurrent bumps). *)

  val scrub : 'v t -> int
  (** [scrub t] actively help-completes every piece of residue an
      abandoned operation may have left behind — the self-healing
      sweep of DESIGN.md §9.  Safe to run concurrently with live
      traffic (it only performs the same helping steps any operation
      would).  Returns the number of repairs performed, so
      [scrub t = 0] witnesses that the structure was already clean:
      on a quiescent structure, [scrub] is idempotent and a second
      call always returns 0.  After a scrub with no concurrent
      writers, {!validate} holds.  Structures with no lock-free
      residue (the lock-striped table, the copy-on-write map) always
      return 0. *)
end

(** A concurrent map construction parameterized by the key type. *)
module type MAKER = functor (H : Hashing.HASHABLE) ->
  CONCURRENT_MAP with type key = H.t

(** A construction available only for integer keys (the folklore
    open-addressing table packs keys into slot words, so it cannot be
    generic).  Any {!MAKER} is also an [INT_MAKER] (functors are
    contravariant in their parameter), so generic batteries written
    against this signature cover both kinds. *)
module type INT_MAKER = functor (H : Hashing.HASHABLE with type t = int) ->
  CONCURRENT_MAP with type key = int

(** Scalar-loop implementation of the batch operations, for structures
    without a staged traversal (lock-striped table, skip list,
    copy-on-write HAMT).  The contract is the batch ops' own: a batch
    IS the corresponding loop, only faster where staging helps. *)
module Batch_fallback (M : sig
  type key
  type 'v t

  val find : 'v t -> key -> 'v
  val insert : 'v t -> key -> 'v -> unit
  val remove : 'v t -> key -> 'v option
end) =
struct
  let find_batch t keys ~miss out =
    let n = Array.length keys in
    if Array.length out < n then
      invalid_arg "find_batch: out array shorter than keys";
    let hits = ref 0 in
    for i = 0 to n - 1 do
      match M.find t (Array.unsafe_get keys i) with
      | v ->
          Array.unsafe_set out i v;
          incr hits
      | exception Not_found -> Array.unsafe_set out i miss
    done;
    !hits

  let insert_batch t keys vals =
    let n = Array.length keys in
    if Array.length vals <> n then
      invalid_arg "insert_batch: keys and vals differ in length";
    for i = 0 to n - 1 do
      M.insert t (Array.unsafe_get keys i) (Array.unsafe_get vals i)
    done

  let remove_batch t keys =
    let removed = ref 0 in
    for i = 0 to Array.length keys - 1 do
      match M.remove t (Array.unsafe_get keys i) with
      | Some _ -> incr removed
      | None -> ()
    done;
    !removed
end
