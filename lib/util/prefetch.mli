(** Software prefetch hints for staged batch traversals (DESIGN.md
    §13).

    A prefetch starts pulling a cache line towards the core without
    blocking or faulting; issuing hints for the next trie level's nodes
    before dispatching on the current level lets the misses of K keys
    overlap instead of serializing.  Pure hints: no allocation, no
    exceptions, no semantic effect — on compilers without
    [__builtin_prefetch] they are no-ops. *)

val read : 'a -> unit
(** [read v] hints that the heap block behind [v] is about to be
    dereferenced.  Safe (and a no-op) on immediate values. *)

val cell : 'a array -> int -> unit
(** [cell a i] hints that [a.(i)] is about to be loaded, {e without}
    loading it — only the cell's address is formed.  Use this when the
    array cell itself is the expected miss (a cache-level entry array,
    a slot array).  [i] must be a valid index. *)
