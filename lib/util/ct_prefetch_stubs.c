/* Software prefetch hints for the staged batch traversals.
 *
 * A prefetch is a pure performance hint: it starts pulling a cache
 * line towards the core without faulting, blocking, or touching
 * program state, so issuing one for an address we are about to
 * dereference lets the miss overlap with other work (DESIGN.md §13).
 * On compilers without __builtin_prefetch both stubs compile to
 * no-ops — callers never depend on the hint happening. */

#include <caml/mlvalues.h>

#if defined(__GNUC__) || defined(__clang__)
/* (addr, rw=read, locality=3: keep in all cache levels) */
#define CT_PREFETCH(p) __builtin_prefetch((p), 0, 3)
#else
#define CT_PREFETCH(p) ((void)(p))
#endif

/* Prefetch the header/first fields of a heap block.  Immediate values
 * carry no cache line, so they are skipped (and must be: Is_block
 * guards the cast). */
CAMLprim value ct_prefetch_block_stub(value v)
{
  if (Is_block(v)) CT_PREFETCH((void *)v);
  return Val_unit;
}

/* Prefetch the cache line holding field [idx] of block [b] WITHOUT
 * reading the field.  This is the hint to use when the array cell
 * itself is the expected miss (a multi-megabyte cache level array):
 * prefetching the cell's address costs nothing now and makes the
 * subsequent real load hit. */
CAMLprim value ct_prefetch_field_stub(value b, value idx)
{
  CT_PREFETCH((void *)&Field(b, Long_val(idx)));
  return Val_unit;
}
