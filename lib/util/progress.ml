(* Per-domain publication heartbeats, fed by the yield-point observer
   slot.  [beats] counts only [After]-phase yield points — i.e. CASes
   that actually succeeded — so a domain spinning in a retry loop
   (firing Before forever) looks just as stalled as one parked inside
   an injector.  [last] records every observed (site, phase), so when
   the watchdog flags a slot it can report exactly where the domain
   stopped. *)

type t = {
  beats : Stripe.t;
  last : (Yieldpoint.site * Yieldpoint.phase) option array;
  slot_key : int option Domain.DLS.key;
}

let create ?slots () =
  let beats = Stripe.create ?stripes:slots () in
  {
    beats;
    last = Array.make (Stripe.stripes beats) None;
    slot_key = Domain.DLS.new_key (fun () -> None);
  }

let slots t = Stripe.stripes t.beats
let attach t slot =
  if slot < 0 || slot >= slots t then invalid_arg "Progress.attach";
  Domain.DLS.set t.slot_key (Some slot)

(* Clearing the site record marks the slot as vacated: a worker that
   left the pool cleanly must not read as stalled forever after. *)
let detach t =
  (match Domain.DLS.get t.slot_key with
  | Some s -> t.last.(s) <- None
  | None -> ());
  Domain.DLS.set t.slot_key None
let attached t = Domain.DLS.get t.slot_key

let beat t =
  match Domain.DLS.get t.slot_key with
  | None -> ()
  | Some s -> Stripe.add t.beats s 1

let observe t phase site =
  match Domain.DLS.get t.slot_key with
  | None -> ()
  | Some s ->
      t.last.(s) <- Some (site, phase);
      if phase = Yieldpoint.After then Stripe.add t.beats s 1

let install t = Yieldpoint.install_observer (observe t)
let uninstall () = Yieldpoint.clear_observer ()
let beats t slot = Stripe.get t.beats slot
let last t slot = t.last.(slot)
let snapshot t = Array.init (slots t) (fun i -> Stripe.get t.beats i)
