(* SplitMix64-style generator over native 63-bit ints.

   The original implementation kept its state in an [int64] and mixed
   with [Int64] arithmetic; every [next] then allocated several boxed
   int64s (the mutable field rebox on advance, the argument and result
   of the finalizer).  That put minor-heap traffic on paths that must
   stay allocation-free — the per-operation hash ([mix64]) and the
   cache's sampling passes.  Native ints lose the top bit of the
   64-bit constants (multiplication wraps mod 2^63), which only
   perturbs the avalanche, not its quality, for hashing and workload
   generation. *)

type t = { mutable state : int }

(* 2^64 / phi, truncated to 63 bits and kept odd. *)
let gamma = 0x1E3779B97F4A7C15

let create seed = { state = seed }

(* SplitMix64 finalizer with the constants truncated to 63 bits. *)
let[@inline] mix64 x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x3F58476D1CE4E5B9 in
  let x = x lxor (x lsr 27) in
  let x = x * 0x14D049BB133111EB in
  let x = x lxor (x lsr 31) in
  x land max_int

let[@inline] next t =
  t.state <- t.state + gamma;
  mix64 t.state

let split t = { state = next t }

let next_int t bound =
  if bound <= 0 then invalid_arg "Rng.next_int";
  (* Rejection-free modulo is fine here: bound is tiny vs 2^62. *)
  next t mod bound

let next_int32 t = next t land 0xFFFFFFFF
let next_float t = float_of_int (next t) *. (1.0 /. 4611686018427387904.0)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = next_int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
