(* [sink] absorbs the spin loop's result so the compiler cannot delete
   the loop.  It used to be one global [ref] shared by every controller
   — a word written by all backing-off domains at once, i.e. false
   sharing at the exact moment the structure is most contended.  It is
   now a per-instance slot inside a padded array: [pad] empty words on
   either side keep it alone on its cache line (and off its neighbour
   line, for the adjacent-line prefetcher), so controllers on different
   domains never write the same line. *)

let pad = 16

type t = {
  min_wait : int;
  max_wait : int;
  mutable wait : int;
  budget : int; (* 0 = unlimited *)
  on_exhaust : unit -> unit; (* fires once per episode, at budget+1 *)
  mutable retries : int; (* draws since last [reset] *)
  mutable total_retries : int; (* draws over the controller's lifetime *)
  rng : Rng.t;
  sink : int array; (* length 2*pad+1; slot [pad] is the live one *)
}

(* Distinct default seed per instance: with a shared constant seed all
   controllers draw identical spin sequences, so contending domains
   back off in lockstep and collide again.  The counter keeps default
   construction deterministic (instance n always gets the same seed)
   while decorrelating concurrent instances. *)
let instances = Atomic.make 0

let create ?(min_wait = 16) ?(max_wait = 4096) ?(budget = 0)
    ?(on_exhaust = fun () -> ()) ?seed () =
  if min_wait <= 0 || max_wait < min_wait || budget < 0 then
    invalid_arg "Backoff.create";
  let seed =
    match seed with
    | Some s -> s
    | None ->
        Rng.mix64 (0x2545F4914F6CDD1D lxor Atomic.fetch_and_add instances 1)
  in
  {
    min_wait;
    max_wait;
    wait = min_wait;
    budget;
    on_exhaust;
    retries = 0;
    total_retries = 0;
    rng = Rng.create seed;
    sink = Array.make ((2 * pad) + 1) 0;
  }

let next_wait t =
  t.retries <- t.retries + 1;
  t.total_retries <- t.total_retries + 1;
  (* Exactly one firing per episode: the draw that crosses the budget.
     [reset] starting a new episode re-arms it. *)
  if t.budget > 0 && t.retries = t.budget + 1 then t.on_exhaust ();
  let n = Rng.next_int t.rng t.wait in
  if t.wait < t.max_wait then t.wait <- t.wait * 2;
  n

let once t =
  let n = next_wait t in
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + i
  done;
  Array.unsafe_set t.sink pad !acc

let reset t =
  t.wait <- t.min_wait;
  t.retries <- 0

let retries t = t.retries
let total_retries t = t.total_retries
let over_budget t = t.budget > 0 && t.retries > t.budget
