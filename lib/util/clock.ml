external monotonic_ns : unit -> int = "ct_clock_monotonic_ns" [@@noalloc]

(* Deadline paths read through an overridable source so tests can step
   time deterministically.  An [Atomic.t] of an option: the common case
   pays one atomic load and a branch — negligible next to the syscalls
   those paths (drain spins, await loops) already make.  Measurement
   paths keep calling [monotonic_ns] directly. *)
let source : (unit -> int) option Atomic.t = Atomic.make None

let set_source s = Atomic.set source s

let now_ns () =
  match Atomic.get source with None -> monotonic_ns () | Some f -> f ()
