external monotonic_ns : unit -> int = "ct_clock_monotonic_ns" [@@noalloc]
