type phase = Before | After

type site = { name : string; read_only : bool }

let registry : site list Atomic.t = Atomic.make []

let register_with ~read_only name =
  let rec go () =
    let cur = Atomic.get registry in
    match List.find_opt (fun s -> s.name = name) cur with
    | Some s -> s
    | None ->
        let s = { name; read_only } in
        if Atomic.compare_and_set registry cur (s :: cur) then s else go ()
  in
  go ()

let register name = register_with ~read_only:false name
let register_read name = register_with ~read_only:true name
let name s = s.name
let is_read s = s.read_only

let all () =
  List.sort (fun a b -> compare a.name b.name) (Atomic.get registry)

let with_prefix prefix =
  let n = String.length prefix in
  List.filter
    (fun s -> String.length s.name >= n && String.sub s.name 0 n = prefix)
    (all ())

let hook : (phase -> site -> unit) option Atomic.t = Atomic.make None

(* A second, independent slot for passive listeners (the progress
   watchdog).  Keeping it separate from [hook] lets a monitor observe
   every yield point while a chaos injector owns the main slot — the
   two concerns compose instead of clobbering each other. *)
let observer : (phase -> site -> unit) option Atomic.t = Atomic.make None

(* Domain-local hook slot for cooperative schedulers (lib/mc): a hook
   that must fire only for code running in the installing domain, with
   no [Domain.self] filtering in the hook body.  The model checker runs
   its virtual domains as fibers on one real domain and parks them here
   by performing an effect; other domains (the test runner's own
   helpers, concurrent suites) never see it.  [locals] counts domains
   with a local hook installed so that the production fast path pays
   one extra atomic load of a counter that is 0, and no DLS access. *)
let locals : int Atomic.t = Atomic.make 0

let local_key : (phase -> site -> unit) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let[@inline] here phase site =
  (match Atomic.get observer with None -> () | Some f -> f phase site);
  (if Atomic.get locals > 0 then
     match !(Domain.DLS.get local_key) with
     | None -> ()
     | Some f -> f phase site);
  match Atomic.get hook with None -> () | Some f -> f phase site

let install f = Atomic.set hook (Some f)
let clear () = Atomic.set hook None
let active () =
  match Atomic.get hook with None -> false | Some _ -> true

let install_observer f = Atomic.set observer (Some f)
let clear_observer () = Atomic.set observer None
let observer_active () =
  match Atomic.get observer with None -> false | Some _ -> true

let set_local f =
  let slot = Domain.DLS.get local_key in
  (match !slot with None -> Atomic.incr locals | Some _ -> ());
  slot := Some f

let clear_local () =
  let slot = Domain.DLS.get local_key in
  match !slot with
  | None -> ()
  | Some _ ->
      slot := None;
      Atomic.decr locals

let local_active () =
  match !(Domain.DLS.get local_key) with None -> false | Some _ -> true

let with_local f body =
  set_local f;
  Fun.protect ~finally:clear_local body
