type phase = Before | After

type site = { name : string }

let registry : site list Atomic.t = Atomic.make []

let register name =
  let rec go () =
    let cur = Atomic.get registry in
    match List.find_opt (fun s -> s.name = name) cur with
    | Some s -> s
    | None ->
        let s = { name } in
        if Atomic.compare_and_set registry cur (s :: cur) then s else go ()
  in
  go ()

let name s = s.name

let all () =
  List.sort (fun a b -> compare a.name b.name) (Atomic.get registry)

let with_prefix prefix =
  let n = String.length prefix in
  List.filter
    (fun s -> String.length s.name >= n && String.sub s.name 0 n = prefix)
    (all ())

let hook : (phase -> site -> unit) option Atomic.t = Atomic.make None

(* A second, independent slot for passive listeners (the progress
   watchdog).  Keeping it separate from [hook] lets a monitor observe
   every yield point while a chaos injector owns the main slot — the
   two concerns compose instead of clobbering each other. *)
let observer : (phase -> site -> unit) option Atomic.t = Atomic.make None

let[@inline] here phase site =
  (match Atomic.get observer with None -> () | Some f -> f phase site);
  match Atomic.get hook with None -> () | Some f -> f phase site

let install f = Atomic.set hook (Some f)
let clear () = Atomic.set hook None
let active () =
  match Atomic.get hook with None -> false | Some _ -> true

let install_observer f = Atomic.set observer (Some f)
let clear_observer () = Atomic.set observer None
let observer_active () =
  match Atomic.get observer with None -> false | Some _ -> true
