(** Per-structure telemetry counters — the metrics registry of the
    observability layer (DESIGN.md §11).

    Every concurrent map owns a [Metrics.t] and bumps a fixed
    vocabulary of counters from its hot paths.  A bump is a plain
    read-add-write of one int in a per-domain 128-byte block — no CAS,
    no allocation, no fence — so the counters are cheap enough to leave
    always-on (the budget enforced by [BENCH_obs.json]: ≤5% on [find],
    0 minor words/op).  Like {!Stripe}, lost updates from domains
    racing on one block are tolerated: these are statistics.

    Instances register themselves in a process-global weak registry, so
    {!aggregate} can sum per structure family for the exporters without
    keeping short-lived maps alive. *)

(** The counter vocabulary shared by all structures.  A structure bumps
    the subset that applies to it and reports 0 for the rest. *)
type counter =
  | Cas_attempts  (** CAS operations attempted (publication tries) *)
  | Cas_retries  (** CAS operations that failed and will be retried *)
  | Helps  (** helping steps completed on behalf of another operation *)
  | Freezes  (** slots/nodes successfully frozen during expansion/compression *)
  | Expansions  (** completed node expansions (ENode; CHM table growth) *)
  | Compressions  (** completed remove-side compressions (XNode) *)
  | Entombments  (** TNode entombments published (Ctrie family) *)
  | Cache_hits  (** cache-trie probes served from a cache level *)
  | Cache_misses  (** cache-trie probes that fell through to the root walk *)
  | Cache_invalidations  (** cache entries cleared (scrub coherence pass) *)
  | Scrub_repairs  (** repairs performed by [scrub] *)
  | Sampling_passes  (** cache-trie depth-sampling passes *)
  | Cache_installs  (** cache-trie cache creations *)
  | Cache_adjustments  (** cache-trie cache level changes *)
  | Retry_exhausted
      (** {!Backoff} retry-budget exhaustions attributed to this
          structure: a budgeted contention episode (a CAS retry loop, a
          full dispatch queue in the serving layer) burned its whole
          budget without succeeding.  Bumped through
          [Backoff.create ~on_exhaust]; structures that never run a
          budgeted backoff read 0. *)
  | Wal_appends  (** records appended to the write-ahead log *)
  | Wal_fsyncs  (** group-commit fsyncs completed by the WAL *)
  | Wal_retries  (** failed fsyncs retried on the WAL's backoff budget *)
  | Checkpoints  (** checkpoint files published (fsync + rename) *)
  | Checkpoint_records  (** bindings serialized across all checkpoints *)
  | Recovery_replayed  (** WAL records replayed by [Recovery.load] *)
  | Tier_hits  (** bounded-cache tier: lookups served a live value *)
  | Tier_misses
      (** bounded-cache tier: lookups that found nothing (includes
          entries dropped for expiry on the read path) *)
  | Tier_negative_hits
      (** bounded-cache tier: lookups answered by a cached [Absent]
          entry — a backing-store miss the tier absorbed *)
  | Tier_evictions  (** bounded-cache tier: entries evicted for budget *)
  | Tier_expirations  (** bounded-cache tier: entries dropped by TTL *)
  | Tier_rejections
      (** bounded-cache tier: puts refused by admission control *)

val all : counter list
(** Every counter, in the fixed export order. *)

val n_counters : int

val label : counter -> string
(** Stable snake_case name used by the exporters ("cas_attempts"). *)

val index : counter -> int
(** Position of the counter in {!all} / in a totals array. *)

type t

val create : family:string -> t
(** [create ~family] makes a zeroed counter block sized from
    [Domain.recommended_domain_count] and registers it (weakly) under
    [family] — the structure name ("cachetrie", "ctrie", ...). *)

val family : t -> string

val stripes : t -> int
(** Number of per-domain blocks (a power of two). *)

val incr : t -> counter -> unit
(** Bump by one on the calling domain's block.  Allocation-free; a
    no-op while disabled. *)

val add : t -> counter -> int -> unit

val cursor : t -> int
(** Precomputed bump target for a run of increments from one domain:
    the calling domain's block base, or [-1] while disabled.  [incr]
    pays a C call ([Domain.self]) on every bump, which clobbers
    caller-saved registers — measurable inside a register-heavy read
    loop.  Hot paths instead take a cursor once at operation entry,
    where little is live, and bump through it with pure array
    arithmetic.  A cursor is only as fresh as its capture: bumps after
    a domain migration land in the old block (tolerated, as with any
    stripe race), and an enable/disable flip is seen at the next
    capture. *)

val incr_at : t -> int -> counter -> unit
(** [incr_at t cursor c]: bump by one through a {!cursor}.  No load,
    no C call, no branch beyond the [cursor >= 0] disabled check. *)

val add_at : t -> int -> counter -> int -> unit

val get_at : t -> int -> counter -> int
(** [get_at t cursor c]: the calling domain's own cell of [c], read
    through a {!cursor} (0 while disabled).  Unlike {!get}, no stripe
    sweep and no cross-domain noise — bracketing one operation with two
    [get_at]s yields the delta that operation alone produced on this
    domain, which is how traced requests annotate their map-op spans
    with per-request CAS-retry counts.  Same freshness caveats as any
    cursor use. *)

val get : t -> counter -> int
(** Sum of one counter across all domain blocks (racy reads). *)

val snapshot : t -> (string * int) list
(** All counters as [(label, total)] pairs in {!all} order — the
    uniform [stats] surface every map exposes. *)

val reset : t -> unit
(** Zero every counter (racy against concurrent bumps, by design). *)

val set_enabled : bool -> unit
(** Global gate over every bump in the program.  Default [true]; the
    obs-off side of the overhead benchmark flips it off.  Reads and
    exporters keep working either way. *)

val is_enabled : unit -> bool

val live : unit -> t list
(** Every instance still alive (weak registry, pruned lazily). *)

val aggregate : unit -> (string * int * (string * int) list) list
(** Per-family totals over {!live}: [(family, live_instances,
    counters)], sorted by family name.  This is what the Prometheus
    and JSON exporters serialize. *)
