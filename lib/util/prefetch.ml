(* Software prefetch hints (C stubs in ct_prefetch_stubs.c).  Both are
   [@@noalloc] leaf calls and compile to a single prefetch instruction
   (or nothing, on compilers without __builtin_prefetch); neither can
   raise, allocate, or affect program semantics. *)

external prefetch_block : Obj.t -> unit = "ct_prefetch_block_stub" [@@noalloc]

external prefetch_field : Obj.t -> int -> unit = "ct_prefetch_field_stub"
[@@noalloc]

(* Hint that the heap block behind [v] is about to be dereferenced.
   Safe on immediates (the stub checks Is_block). *)
let[@inline] read v = prefetch_block (Obj.repr v)

(* Hint that [a.(i)] is about to be loaded, without loading it: only
   the cell's address is formed, so this is the one to use when the
   array cell itself is the expected cache miss.  [i] must be within
   bounds (the address would otherwise point outside the block —
   harmless to the hardware, but meaningless). *)
let[@inline] cell (a : 'a array) i = prefetch_field (Obj.repr a) i
