(* Persistent 32-way bitmapped hash trie with path copying.  Every
   update rebuilds the spine from the modified leaf to the root and
   shares everything else; removal collapses single-leaf branches on
   the way back up so versions stay canonical. *)

module Hashing = Ct_util.Hashing
module Bits = Ct_util.Bits

let w = 5
let branching = 1 lsl w

module Make (H : Hashing.HASHABLE) = struct
  type key = H.t

  type 'v t =
    | Empty
    | Leaf of { hash : int; key : key; value : 'v }
    | Collision of { chash : int; entries : (key * 'v) list }
    | Branch of { bmp : int; children : 'v t array }

  let empty = Empty
  let is_empty t = t = Empty
  let hash_of k = H.hash k land Hashing.mask

  let flagpos h lev bmp =
    let idx = (h lsr lev) land (branching - 1) in
    let flag = 1 lsl idx in
    (flag, Bits.popcount (bmp land (flag - 1)))

  (* ------------------------------ find ------------------------------ *)

  (* [List.assoc_opt] compares with polymorphic [=]; this raising twin
     uses [H.equal] and allocates nothing on a hit. *)
  let rec lassoc k = function
    | [] -> raise_notrace Not_found
    | (k', v) :: rest -> if H.equal k' k then v else lassoc k rest

  (* Allocation-free read primitive: no [Some] box, no closure. *)
  let rec find_at t k h lev =
    match t with
    | Empty -> raise_notrace Not_found
    | Leaf l -> if H.equal l.key k then l.value else raise_notrace Not_found
    | Collision c ->
        if c.chash = h then lassoc k c.entries else raise_notrace Not_found
    | Branch { bmp; children } ->
        (* [flagpos] inlined by hand: its tuple result would be the only
           allocation on this path. *)
        let flag = 1 lsl ((h lsr lev) land (branching - 1)) in
        if bmp land flag = 0 then raise_notrace Not_found
        else find_at children.(Bits.popcount (bmp land (flag - 1))) k h (lev + w)

  let find_exn t k = find_at t k (hash_of k) 0

  let find t k =
    match find_exn t k with v -> Some v | exception Not_found -> None

  let mem t k =
    match find_exn t k with _ -> true | exception Not_found -> false

  (* ------------------------------- add ------------------------------ *)

  let branch_inserted bmp children pos flag child =
    let n = Array.length children in
    let arr = Array.make (n + 1) child in
    Array.blit children 0 arr 0 pos;
    Array.blit children pos arr (pos + 1) (n - pos);
    Branch { bmp = bmp lor flag; children = arr }

  let branch_updated bmp children pos child =
    let arr = Array.copy children in
    arr.(pos) <- child;
    Branch { bmp; children = arr }

  let branch_removed bmp children pos flag =
    let n = Array.length children in
    let arr = Array.make (max 0 (n - 1)) children.(0) in
    Array.blit children 0 arr 0 pos;
    Array.blit children (pos + 1) arr pos (n - 1 - pos);
    Branch { bmp = bmp lxor flag; children = arr }

  (* Join two leaves whose hashes differ below [lev]. *)
  let rec join h1 l1 h2 l2 lev =
    if lev >= Hashing.hash_bits then begin
      assert (h1 = h2);
      match (l1, l2) with
      | Leaf a, Leaf b ->
          Collision { chash = h1; entries = [ (b.key, b.value); (a.key, a.value) ] }
      | _ -> assert false
    end
    else begin
      let i1 = (h1 lsr lev) land (branching - 1)
      and i2 = (h2 lsr lev) land (branching - 1) in
      if i1 <> i2 then
        Branch
          {
            bmp = (1 lsl i1) lor (1 lsl i2);
            children = (if i1 < i2 then [| l1; l2 |] else [| l2; l1 |]);
          }
      else Branch { bmp = 1 lsl i1; children = [| join h1 l1 h2 l2 (lev + w) |] }
    end

  let add t k v =
    let h = hash_of k in
    let prev = ref None in
    let rec go t lev =
      match t with
      | Empty -> Leaf { hash = h; key = k; value = v }
      | Leaf l ->
          if H.equal l.key k then begin
            prev := Some l.value;
            Leaf { hash = h; key = k; value = v }
          end
          else if l.hash = h then
            Collision { chash = h; entries = [ (k, v); (l.key, l.value) ] }
          else join l.hash t h (Leaf { hash = h; key = k; value = v }) lev
      | Collision c ->
          if c.chash = h then begin
            prev := List.assoc_opt k c.entries;
            Collision { c with entries = (k, v) :: List.remove_assoc k c.entries }
          end
          else
            (* Push the collision bucket one level down next to the new
               leaf. *)
            join c.chash t h (Leaf { hash = h; key = k; value = v }) lev
      | Branch { bmp; children } ->
          let flag, pos = flagpos h lev bmp in
          if bmp land flag = 0 then
            branch_inserted bmp children pos flag (Leaf { hash = h; key = k; value = v })
          else branch_updated bmp children pos (go children.(pos) (lev + w))
    in
    let t' = go t 0 in
    (t', !prev)

  (* ------------------------------ remove ---------------------------- *)

  let remove t k =
    let h = hash_of k in
    let prev = ref None in
    let rec go t lev =
      match t with
      | Empty -> Empty
      | Leaf l ->
          if H.equal l.key k then begin
            prev := Some l.value;
            Empty
          end
          else t
      | Collision c ->
          if c.chash <> h then t
          else begin
            match List.assoc_opt k c.entries with
            | None -> t
            | Some v ->
                prev := Some v;
                (match List.remove_assoc k c.entries with
                | [ (k1, v1) ] -> Leaf { hash = h; key = k1; value = v1 }
                | entries -> Collision { c with entries })
          end
      | Branch { bmp; children } -> (
          let flag, pos = flagpos h lev bmp in
          if bmp land flag = 0 then t
          else begin
            match go children.(pos) (lev + w) with
            | Empty -> (
                (* Child vanished: shrink, collapsing singleton leaves. *)
                match branch_removed bmp children pos flag with
                | Branch { children = [| (Leaf _ | Collision _) as only |]; _ }
                  when lev > 0 ->
                    only
                | Branch { children = [||]; _ } -> Empty
                | t' -> t')
            | (Leaf _ | Collision _) as small
              when lev > 0 && Array.length children = 1 ->
                (* Lone child simplified: lift it. *)
                small
            | child -> branch_updated bmp children pos child
          end)
    in
    let t' = go t 0 in
    if !prev = None then (t, None) else (t', !prev)

  (* --------------------------- aggregates --------------------------- *)

  let rec fold f acc t =
    match t with
    | Empty -> acc
    | Leaf l -> f acc l.key l.value
    | Collision c -> List.fold_left (fun acc (k, v) -> f acc k v) acc c.entries
    | Branch { children; _ } -> Array.fold_left (fold f) acc children

  let iter f t = fold (fun () k v -> f k v) () t
  let cardinal t = fold (fun n _ _ -> n + 1) 0 t
  let to_list t = fold (fun acc k v -> (k, v) :: acc) [] t

  let depth_histogram t =
    let hist = Array.make 12 0 in
    let bump d n =
      let d = min d (Array.length hist - 1) in
      hist.(d) <- hist.(d) + n
    in
    let rec go t depth =
      match t with
      | Empty -> ()
      | Leaf _ -> bump depth 1
      | Collision c -> bump depth (List.length c.entries)
      | Branch { children; _ } -> Array.iter (fun c -> go c (depth + 1)) children
    in
    go t 0;
    hist

  let rec footprint_words t =
    match t with
    | Empty -> 0
    | Leaf _ -> 4
    | Collision c -> 3 + (3 * List.length c.entries)
    | Branch { children; _ } ->
        Array.fold_left (fun acc c -> acc + footprint_words c) (2 + 1 + Array.length children)
          children

  let validate t =
    let errors = ref [] in
    let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
    let rec go t lev prefix pmask =
      match t with
      | Empty -> if lev > 0 then err "Empty below the root"
      | Leaf l ->
          if l.hash <> hash_of l.key then err "leaf hash mismatch";
          if l.hash land pmask <> prefix then err "leaf prefix violation at level %d" lev
      | Collision c ->
          if List.length c.entries < 2 then err "collision bucket with < 2 entries";
          List.iter
            (fun (k, _) -> if hash_of k <> c.chash then err "collision hash mismatch")
            c.entries;
          if c.chash land pmask <> prefix then err "collision prefix violation"
      | Branch { bmp; children } ->
          if Bits.popcount bmp <> Array.length children then
            err "bitmap/array mismatch at level %d" lev;
          if lev > 0 && Array.length children = 1 then begin
            match children.(0) with
            | Leaf _ | Collision _ -> err "uncollapsed singleton branch at level %d" lev
            | Empty | Branch _ -> ()
          end;
          let pos = ref 0 in
          for idx = 0 to branching - 1 do
            if bmp land (1 lsl idx) <> 0 then begin
              let child = children.(!pos) in
              incr pos;
              go child (lev + w)
                (prefix lor (idx lsl lev))
                (pmask lor ((branching - 1) lsl lev))
            end
          done
    in
    go t 0 0 0;
    match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))
end
