module Hashing = Ct_util.Hashing
module Metrics = Ct_util.Metrics

module Make (H : Hashing.HASHABLE) = struct
  module P = Hamt.Make (H)

  type key = H.t

  let name = "cow-hamt"

  (* Root version: the persistent trie plus its cardinality (kept
     together so [size] is O(1) and snapshots carry it along). *)
  type 'v root = { trie : 'v P.t; card : int; version : int }

  type 'v t = { root : 'v root Atomic.t; metrics : Metrics.t }

  let create () =
    {
      root = Atomic.make { trie = P.empty; card = 0; version = 0 };
      metrics = Metrics.create ~family:name;
    }

  (* The only CAS in the structure: the root swap. *)
  let root_cas t cur next =
    Metrics.incr t.metrics Metrics.Cas_attempts;
    let ok = Atomic.compare_and_set t.root cur next in
    if not ok then Metrics.incr t.metrics Metrics.Cas_retries;
    ok

  (* [P.find_exn] boxes nothing on a hit, so these three allocate only
     what the caller asks for (the [Some] in [lookup]). *)
  let find t k = P.find_exn (Atomic.get t.root).trie k
  let lookup t k = match find t k with v -> Some v | exception Not_found -> None
  let mem t k = match find t k with _ -> true | exception Not_found -> false

  (* Retry loop: build the next version functionally, CAS the root. *)
  let rec update t k v mode : 'v option =
    let cur = Atomic.get t.root in
    let previous = P.find cur.trie k in
    let proceed =
      match (mode, previous) with
      | `If_absent, Some _ -> false
      | (`If_present | `If_value _), None -> false
      | `If_value expected, Some p -> p == expected
      | (`Always | `If_absent | `If_present), _ -> true
    in
    if not proceed then previous
    else begin
      let trie', prev' = P.add cur.trie k v in
      assert (prev' = previous);
      let card = if previous = None then cur.card + 1 else cur.card in
      let next = { trie = trie'; card; version = cur.version + 1 } in
      if root_cas t cur next then previous else update t k v mode
    end

  let insert t k v = ignore (update t k v `Always)
  let add t k v = update t k v `Always
  let put_if_absent t k v = update t k v `If_absent
  let replace t k v = update t k v `If_present

  let replace_if t k ~expected v =
    match update t k v (`If_value expected) with
    | Some p -> p == expected
    | None -> false

  let rec remove_with t k cond : 'v option =
    let cur = Atomic.get t.root in
    match P.find cur.trie k with
    | None -> None
    | Some v when not (cond v) -> Some v
    | Some _ ->
        let trie', prev = P.remove cur.trie k in
        let next = { trie = trie'; card = cur.card - 1; version = cur.version + 1 } in
        if root_cas t cur next then prev else remove_with t k cond

  let remove t k = remove_with t k (fun _ -> true)

  let remove_if t k ~expected =
    match remove_with t k (fun v -> v == expected) with
    | Some p -> p == expected
    | None -> false

  (* Aggregates read one consistent version: they are all linearizable
     snapshots here, not merely weakly consistent. *)
  let fold f acc t = P.fold f acc (Atomic.get t.root).trie
  let iter f t = P.iter f (Atomic.get t.root).trie
  let size t = (Atomic.get t.root).card
  let is_empty t = size t = 0
  let to_list t = P.to_list (Atomic.get t.root).trie

  let snapshot t =
    {
      root = Atomic.make (Atomic.get t.root);
      metrics = Metrics.create ~family:name;
    }
  let version t = (Atomic.get t.root).version
  let footprint_words t = 4 + 2 + P.footprint_words (Atomic.get t.root).trie

  (* The persistent trie checks its own structure; on top of it only
     the cached cardinality can drift. *)
  let validate t =
    let cur = Atomic.get t.root in
    match P.validate cur.trie with
    | Error _ as e -> e
    | Ok () ->
        let n = P.fold (fun n _ _ -> n + 1) 0 cur.trie in
        if n <> cur.card then
          Error (Printf.sprintf "cached cardinality %d, trie holds %d" cur.card n)
        else Ok ()

  (* Copy-on-write leaves no residue: a writer either swapped the root
     or left no trace.  Nothing to repair. *)
  let scrub _t = 0

  let metrics t = t.metrics
  let stats t = Metrics.snapshot t.metrics
  let reset_stats t = Metrics.reset t.metrics

  (* Every write CASes the whole root, so batched writes would contend
     with themselves; reads walk a persistent trie with no mutable
     levels to stage.  The scalar loop is the honest implementation. *)
  include Ct_util.Map_intf.Batch_fallback (struct
    type nonrec key = key
    type nonrec 'v t = 'v t

    let find = find
    let insert = insert
    let remove = remove
  end)
end
