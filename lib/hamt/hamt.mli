(** Persistent (immutable) hash array mapped trie.

    The immutable dictionary the paper's related-work section traces
    tries back to (Bagwell's ideal hash trees, as popularized by
    functional language runtimes): a 32-way bitmapped trie where every
    update path-copies the spine, sharing the rest of the structure.

    All operations are pure; [add]/[remove] return the new version.
    Structural sharing makes old versions persist for free — which is
    what {!Cow_map} exploits to build a concurrent map with O(1)
    snapshots out of a single atomic root (and why its contended write
    throughput collapses, motivating Ctries). *)

module Make (H : Ct_util.Hashing.HASHABLE) : sig
  type key = H.t

  type 'v t

  val empty : 'v t

  val is_empty : 'v t -> bool

  val find : 'v t -> key -> 'v option

  val find_exn : 'v t -> key -> 'v
  (** Raising twin of {!find}; a hit allocates nothing.
      @raise Not_found if [k] is unbound. *)

  val mem : 'v t -> key -> bool

  val add : 'v t -> key -> 'v -> 'v t * 'v option
  (** [add t k v] is the version with [k] bound to [v], plus the
      previous binding. *)

  val remove : 'v t -> key -> 'v t * 'v option
  (** [remove t k] is the version without [k], plus the removed
      binding ([t] itself when [k] was absent). *)

  val cardinal : 'v t -> int
  (** O(n). *)

  val fold : ('a -> key -> 'v -> 'a) -> 'a -> 'v t -> 'a

  val iter : (key -> 'v -> unit) -> 'v t -> unit

  val to_list : 'v t -> (key * 'v) list

  val depth_histogram : 'v t -> int array
  (** Leaf depths, root children at depth 1 (same convention as the
      concurrent tries). *)

  val footprint_words : 'v t -> int
  (** Word-cost of this version if it were the only one (sharing with
      other versions is not discounted). *)

  val validate : 'v t -> (unit, string) result
  (** Structural invariants: bitmap cardinality, prefix consistency,
      no single-child chains that should have been inlined, collision
      sanity. *)
end
