(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the
   per-record checksum of the WAL and checkpoint formats.  Table-driven
   over native ints; results always fit 32 bits, so they round-trip
   through the u32 frame fields unchanged. *)

let table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let update crc b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Crc32.update";
  let c = ref (crc lxor 0xFFFF_FFFF) in
  for i = off to off + len - 1 do
    c :=
      table.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF)
      lxor (!c lsr 8)
  done;
  !c lxor 0xFFFF_FFFF

let bytes b off len = update 0 b off len

let string s = bytes (Bytes.unsafe_of_string s) 0 (String.length s)
