(* Crash recovery (DESIGN.md §14): load the newest checkpoint, replay
   the WAL suffix beyond it, refuse anything the CRCs or LSNs cannot
   vouch for.

   The refusal policy distinguishes two kinds of damage:

   - A {e torn tail}: the record stream is intact up to some offset of
     the last non-empty segment and then truncated or CRC-broken with
     nothing valid after it.  That is exactly the signature of a crash
     mid group-commit — provably unacknowledged data (an ack requires
     the covering fsync, which never completed).  Strict mode still
     refuses it with [Torn_tail] so the operator sees the damage;
     [~salvage:true] truncates the tail and recovers the good prefix.

   - Anything else — a CRC failure with valid data after it, a gap in
     the LSN sequence, a corrupt published checkpoint — cannot be
     produced by any crash of a correct writer and is refused in both
     modes: better no store than a silently wrong one.

   Replay is idempotent, which is what makes the checkpoint boundary
   safe: the checkpoint may already contain the effect of suffix
   records (appliers run ahead of the log by design — apply, then
   append), and re-applying Put/Remove is absorbing.  Records at or
   below the checkpoint LSN are skipped outright but still decoded and
   CRC-checked: recovery validates everything it reads. *)

module Metrics = Ct_util.Metrics

type error =
  | Corrupt_record of { path : string; off : int; reason : string }
  | Torn_tail of { path : string; off : int; reason : string }
  | Lsn_gap of { path : string; expected : int; found : int }
  | Corrupt_checkpoint of { path : string; reason : string }
  | Io_error of { path : string; msg : string }

let error_to_string = function
  | Corrupt_record { path; off; reason } ->
      Printf.sprintf "corrupt record in %s at offset %d: %s" path off reason
  | Torn_tail { path; off; reason } ->
      Printf.sprintf "torn tail in %s at offset %d: %s" path off reason
  | Lsn_gap { path; expected; found } ->
      Printf.sprintf "LSN gap in %s: expected %d, found %d" path expected found
  | Corrupt_checkpoint { path; reason } ->
      Printf.sprintf "corrupt checkpoint %s: %s" path reason
  | Io_error { path; msg } -> Printf.sprintf "io error on %s: %s" path msg

type stats = {
  checkpoint_lsn : int;  (* 0 when recovering without a checkpoint *)
  checkpoint_records : int;
  replayed : int;  (* WAL records applied (lsn > checkpoint_lsn) *)
  skipped : int;  (* WAL records already covered by the checkpoint *)
  last_lsn : int;  (* resume the log at last_lsn + 1 *)
  salvaged_bytes : int;  (* tail bytes truncated in salvage mode *)
  tmp_discarded : int;  (* partial checkpoint files ignored *)
}

let empty_stats =
  {
    checkpoint_lsn = 0;
    checkpoint_records = 0;
    replayed = 0;
    skipped = 0;
    last_lsn = 0;
    salvaged_bytes = 0;
    tmp_discarded = 0;
  }

let u32 s off = Int32.to_int (String.get_int32_be s off) land 0xFFFF_FFFF

let file_size path = match (Unix.stat path).Unix.st_size with n -> n | exception _ -> 0

(* One segment's record stream.  [emit off lsn op] per valid record;
   returns [Ok ()] or [`Tail (off, reason)] (truncation / final-frame
   CRC failure: salvageable iff nothing follows) or a hard error. *)
let scan_segment ~path ~contents ~emit =
  let n = String.length contents in
  let rec go pos =
    if pos = n then Ok ()
    else if pos + 8 > n then Error (`Tail (pos, "partial frame header"))
    else
      let len = u32 contents pos in
      if len < 17 || len > (1 lsl 21) then
        (* An implausible length field.  If it claims data past EOF it
           is indistinguishable from a truncated write → tail;
           otherwise the stream is structurally broken mid-file. *)
        if pos + 8 + len > n then
          Error (`Tail (pos, Printf.sprintf "bad record length %d" len))
        else Error (`Hard (pos, Printf.sprintf "bad record length %d" len))
      else if pos + 8 + len > n then
        Error (`Tail (pos, "truncated record"))
      else
        let crc = u32 contents (pos + 4) in
        let actual = Crc32.bytes (Bytes.unsafe_of_string contents) (pos + 8) len in
        if crc <> actual then
          if pos + 8 + len = n then Error (`Tail (pos, "crc mismatch on final record"))
          else Error (`Hard (pos, "crc mismatch"))
        else
          let payload = Bytes.of_string (String.sub contents (pos + 8) len) in
          match Wal.decode_payload payload with
          | Error reason -> Error (`Hard (pos, reason))
          | Ok (lsn, op) -> (
              match emit pos lsn op with
              | Ok () -> go (pos + 8 + len)
              | Error _ as e -> e)
  in
  ignore path;
  go 0

let load ?(salvage = false) ?metrics ~dir ~put ~remove () =
  if not (Sys.file_exists dir) then Ok empty_stats
  else begin
    let tmp_discarded = List.length (Checkpoint.tmp_leftovers ~dir) in
    (* 1. Newest published checkpoint, if any.  A published checkpoint
       was fsynced before its rename: damage there is never a torn
       tail, so it is refused in both modes. *)
    let ckpt =
      match Checkpoint.latest ~dir with
      | None -> Ok (0, 0)
      | Some (_, path) -> (
          match Checkpoint.read ~path ~add:put with
          | Ok (lsn, count) -> Ok (lsn, count)
          | Error reason -> Error (Corrupt_checkpoint { path; reason }))
    in
    match ckpt with
    | Error e -> Error e
    | Ok (checkpoint_lsn, checkpoint_records) -> (
        (* 2. Replay the segments in LSN order.  Contiguity is enforced
           across segment boundaries: rotation hands the next segment
           the very next LSN, so any gap means lost data. *)
        let starts = Wal.segment_starts dir in
        let replayed = ref 0 and skipped = ref 0 in
        let last_lsn = ref checkpoint_lsn in
        let expected = ref None in
        let salvaged = ref 0 in
        let apply op =
          match op with
          | Wal.Put (k, v) -> put k v
          | Wal.Remove k -> remove k
        in
        let rec segments = function
          | [] -> Ok ()
          | start :: rest -> (
              let path = Wal.seg_path dir start in
              match In_channel.with_open_bin path In_channel.input_all with
              | exception Sys_error msg -> Error (Io_error { path; msg })
              | contents -> (
                  let emit _off lsn op =
                    (match !expected with
                    | Some e when lsn <> e ->
                        Error (`Gap (e, lsn))
                    (* The first record anchors against the checkpoint:
                       everything after [checkpoint_lsn] must be on the
                       log, so a first record beyond [checkpoint_lsn + 1]
                       means a covered-looking segment was lost. *)
                    | None when lsn > checkpoint_lsn + 1 ->
                        Error (`Gap (checkpoint_lsn + 1, lsn))
                    | _ ->
                        expected := Some (lsn + 1);
                        if lsn > !last_lsn then last_lsn := lsn;
                        if lsn <= checkpoint_lsn then Stdlib.incr skipped
                        else begin
                          apply op;
                          Stdlib.incr replayed;
                          match metrics with
                          | Some m -> Metrics.incr m Metrics.Recovery_replayed
                          | None -> ()
                        end;
                        Ok ())
                  in
                  match scan_segment ~path ~contents ~emit with
                  | Ok () -> segments rest
                  | Error (`Gap (e, found)) ->
                      Error (Lsn_gap { path; expected = e; found })
                  | Error (`Hard (off, reason)) ->
                      Error (Corrupt_record { path; off; reason })
                  | Error (`Tail (off, reason)) ->
                      (* Salvageable only if this really is the tail of
                         the whole log: every later segment is empty
                         (which is what a crash mid-rotation leaves). *)
                      let trailing_data =
                        List.exists
                          (fun s -> file_size (Wal.seg_path dir s) > 0)
                          rest
                      in
                      if trailing_data then
                        Error (Corrupt_record { path; off; reason })
                      else if not salvage then
                        Error (Torn_tail { path; off; reason })
                      else begin
                        (* Truncate the provably-unacked tail in place so
                           the next strict load passes. *)
                        let cut = String.length contents - off in
                        match
                          let fd =
                            Unix.openfile path [ Unix.O_WRONLY ] 0o644
                          in
                          Fun.protect
                            ~finally:(fun () ->
                              try Unix.close fd with _ -> ())
                            (fun () -> Unix.ftruncate fd off)
                        with
                        | () ->
                            salvaged := !salvaged + cut;
                            Ok ()
                        | exception Unix.Unix_error (e, _, _) ->
                            Error
                              (Io_error
                                 { path; msg = Unix.error_message e })
                      end))
        in
        match segments starts with
        | Error e -> Error e
        | Ok () ->
            Ok
              {
                checkpoint_lsn;
                checkpoint_records;
                replayed = !replayed;
                skipped = !skipped;
                last_lsn = !last_lsn;
                salvaged_bytes = !salvaged;
                tmp_discarded;
              })
  end
