(** Group-commit write-ahead log (DESIGN.md §14).

    Appends are cheap (encode into a buffer, take the next LSN); a
    committer thread turns the buffer into one contiguous write plus
    one fsync every [commit_interval] — the group commit.  Durability
    acks are callbacks ({!subscribe}), fired by an independent pump
    thread, so a stalled disk turns into typed [Timed_out] acks rather
    than unbounded latency.  Failed fsyncs retry on a budgeted backoff
    and then trip the log into a terminal degraded state. *)

type op = Put of int * string | Remove of int

type ack =
  | Durable  (** the covering fsync completed *)
  | Timed_out  (** the deadline expired before the covering fsync *)
  | Degraded  (** the log tripped read-only before the covering fsync *)
  | Lost  (** simulated process death: no reply at all *)

type config = {
  commit_interval : float;  (** group-commit fsync period, seconds *)
  fsync_retries : int;  (** budgeted retries before degrading *)
  max_buffer : int;  (** buffered bytes that force an inline flush *)
}

val default_config : config
(** 2 ms commit interval, 4 fsync retries, 1 MiB buffer cap. *)

type t

val open_ :
  ?config:config ->
  ?metrics:Ct_util.Metrics.t ->
  dir:string ->
  next_lsn:int ->
  unit ->
  t
(** Open (creating if needed) segment [wal-<next_lsn>.log] in [dir] and
    start the committer and pump threads.  [next_lsn] is 1 for a fresh
    store, or [Recovery] stats' [last_lsn + 1] after a restart. *)

val append : t -> op -> (int, [ `Degraded | `Closed | `Halted ]) result
(** Assign the next LSN and buffer the record.  Returns immediately;
    durability comes later via {!subscribe}.  Values over 1 MiB raise
    [Invalid_argument]. *)

val subscribe : t -> lsn:int -> deadline_ns:int -> (ack -> unit) -> unit
(** Call the callback exactly once when [lsn]'s fate is known:
    [Durable] once a completed fsync covers it, [Timed_out] if the
    absolute {!Ct_util.Clock.monotonic_ns} deadline passes first,
    [Degraded]/[Lost] if the log dies first.  May fire synchronously
    (already-durable LSNs); otherwise fires on the pump thread.  The
    callback must not raise and must not block. *)

val flush : t -> (unit, [ `Degraded | `Closed | `Halted ]) result
(** Force a group commit now: everything appended so far is durable on
    [Ok].  Used by graceful drain. *)

val rotate : t -> (int, [ `Degraded | `Closed | `Halted ]) result
(** Seal the current segment (final write + fsync) and switch appends
    to a fresh [wal-<next_lsn>.log].  Returns the boundary — the last
    LSN of the sealed segment; every record [<= boundary] is durable.
    The checkpointer calls this first, then snapshots, so the
    checkpoint covers the whole sealed prefix. *)

val drop_segments_below : t -> lsn:int -> int
(** Unlink every segment whose records are all [<= lsn] (never the
    current one).  Returns the number of segments removed.  Called
    after a checkpoint at [lsn] is published. *)

val last_lsn : t -> int
val durable_lsn : t -> int

val degraded : t -> bool
(** The log has tripped read-only (fsync budget exhausted). *)

val pending_acks : t -> int
val metrics : t -> Ct_util.Metrics.t

val close : t -> (unit, [ `Degraded | `Closed | `Halted ]) result
(** Graceful shutdown: final flush, stop both threads, fire remaining
    subscriptions, close the fd.  [Ok] means everything appended is on
    disk. *)

val abandon : t -> unit
(** Post-crash teardown for tests and harnesses: join the threads and
    drop the fd without flushing or acking — the process "died". *)

(** {2 Record format} (exposed for recovery and for tests) *)

val encode_record : lsn:int -> op -> Bytes.t
(** [u32 len | u32 crc32(payload) | payload]. *)

val decode_payload : Bytes.t -> (int * op, string) result
(** Parse [u64 lsn | u8 tag | i64 key | value]. *)

val seg_name : int -> string
val seg_path : string -> int -> string
val seg_start_of_name : string -> int option
val segment_starts : string -> int list
(** Sorted start-LSNs of the segments present in a directory. *)
