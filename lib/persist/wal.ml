(* Group-commit write-ahead log (DESIGN.md §14).

   Record framing reuses the Protocol idiom — a length prefix and
   fixed big-endian header fields — plus a CRC32 so recovery can tell
   a torn tail from good data:

     u32 payload_len | u32 crc32(payload) | payload
     payload = u64 lsn | u8 op (0 Put, 1 Remove) | i64 key | value

   LSNs are assigned contiguously under the data mutex, so a gap in a
   recovered log can only mean corruption.  [append] is cheap: encode
   into an in-memory buffer and return the LSN.  Durability is batched:
   a committer thread wakes every [commit_interval], writes the
   buffered records in one contiguous write and fsyncs once — the
   group commit that lets thousands of acks share one disk flush.
   Callers that need the ack register a callback with {!subscribe};
   a separate pump thread fires callbacks when the durable LSN covers
   them, when their deadline expires first (a stalled disk degrades to
   a typed timeout, never unbounded latency), or when the log dies.

   Failure ladder: a failed fsync retries on a budgeted {!Backoff}
   (counted as [wal_retries]); when the budget burns out the log trips
   into a terminal [`Degraded] state — appends refuse, pending acks
   fire [Degraded], reads (recovery) remain possible.  A simulated
   kill -9 ({!Io.Halted}) stops both threads where they stand, leaving
   whatever prefix reached the disk — recovery's problem, by design.

   Segments: the log is a sequence of [wal-<start_lsn>.log] files.
   {!rotate} (the checkpointer's hook) seals the current segment with
   a final write+fsync and opens the next; fully-checkpointed segments
   are unlinked by {!drop_segments_below}. *)

module Metrics = Ct_util.Metrics
module Backoff = Ct_util.Backoff
module Clock = Ct_util.Clock

type op = Put of int * string | Remove of int

type ack =
  | Durable  (* the covering fsync completed *)
  | Timed_out  (* deadline expired before the covering fsync *)
  | Degraded  (* the log tripped read-only before the covering fsync *)
  | Lost  (* the process "died" (simulated kill): no reply at all *)

type config = {
  commit_interval : float;  (* group-commit fsync period, seconds *)
  fsync_retries : int;  (* budgeted retries before degrading *)
  max_buffer : int;  (* bytes buffered before an inline flush *)
}

let default_config =
  { commit_interval = 0.002; fsync_retries = 4; max_buffer = 1 lsl 20 }

let max_value = 1 lsl 20

type pending = { p_lsn : int; p_deadline : int; p_cb : ack -> unit }

type state = Running | Degraded_s | Closed

type t = {
  dir : string;
  cfg : config;
  metrics : Metrics.t;
  mu : Mutex.t;  (* data: buffer, lsns, state, pending, fd identity *)
  io_mu : Mutex.t;  (* serializes segment I/O (flush, rotate) *)
  bo : Backoff.t;
  mutable fd : Unix.file_descr;
  mutable path : string;
  mutable next_lsn : int;
  mutable buffered_to : int;  (* last lsn encoded into [buf] *)
  mutable durable : int;  (* last lsn covered by a completed fsync *)
  buf : Buffer.t;
  mutable pending : pending list;
  mutable state : state;
  mutable committer : Thread.t option;
  mutable pump : Thread.t option;
}

(* ------------------------------ encoding ---------------------------- *)

let payload_fixed = 8 + 1 + 8 (* lsn, op tag, key *)

let encode_payload ~lsn op =
  let key, value, tag =
    match op with Put (k, v) -> (k, v, 0) | Remove k -> (k, "", 1)
  in
  if String.length value > max_value then invalid_arg "Wal: oversized value";
  let n = payload_fixed + String.length value in
  let p = Bytes.create n in
  Bytes.set_int64_be p 0 (Int64.of_int lsn);
  Bytes.set_uint8 p 8 tag;
  Bytes.set_int64_be p 9 (Int64.of_int key);
  Bytes.blit_string value 0 p payload_fixed (String.length value);
  p

let encode_record ~lsn op =
  let p = encode_payload ~lsn op in
  let n = Bytes.length p in
  let b = Bytes.create (8 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.set_int32_be b 4 (Int32.of_int (Crc32.bytes p 0 n));
  Bytes.blit p 0 b 8 n;
  b

let decode_payload p =
  let n = Bytes.length p in
  if n < payload_fixed then Error "short record payload"
  else
    let lsn = Int64.to_int (Bytes.get_int64_be p 0) in
    let key = Int64.to_int (Bytes.get_int64_be p 9) in
    match Bytes.get_uint8 p 8 with
    | 0 -> Ok (lsn, Put (key, Bytes.sub_string p payload_fixed (n - payload_fixed)))
    | 1 -> Ok (lsn, Remove key)
    | tag -> Error (Printf.sprintf "unknown op tag %d" tag)

(* ------------------------------ segments ---------------------------- *)

let seg_name start = Printf.sprintf "wal-%016d.log" start

let seg_path dir start = Filename.concat dir (seg_name start)

let seg_start_of_name name =
  if
    String.length name = 24
    && String.sub name 0 4 = "wal-"
    && String.sub name 20 4 = ".log"
  then int_of_string_opt (String.sub name 4 16)
  else None

let segment_starts dir =
  match Sys.readdir dir with
  | entries ->
      Array.to_list entries
      |> List.filter_map seg_start_of_name
      |> List.sort compare
  | exception _ -> []

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ------------------------------- flush ------------------------------ *)

let degrade_locked t = if t.state = Running then t.state <- Degraded_s

(* One group commit: swap the buffer out under [mu], then write + fsync
   under [io_mu] only — appends proceed while the disk works. *)
let flush t =
  Mutex.lock t.io_mu;
  Mutex.lock t.mu;
  let r =
    if t.state <> Running then begin
      let r =
        match t.state with Degraded_s -> Error `Degraded | _ -> Error `Closed
      in
      Mutex.unlock t.mu;
      r
    end
    else begin
      let data = Buffer.to_bytes t.buf in
      Buffer.clear t.buf;
      let target = t.buffered_to in
      let fd = t.fd and path = t.path in
      Mutex.unlock t.mu;
      let len = Bytes.length data in
      (* Background span covering the write + fsync of one group
         commit.  Trace id 0 (no single request owns it); [a] carries
         the byte count so a Perfetto view shows which fsync a traced
         request's fsync-wait overlapped.  One atomic load when no
         tracer is installed. *)
      let io0 = Clock.monotonic_ns () in
      match
        if len > 0 then Io.write_all fd ~path data 0 len;
        let rec sync attempt =
          match Io.fsync fd ~path with
          | () -> Ok ()
          | exception Io.Halted -> Error `Halted
          | exception Unix.Unix_error _ ->
              Metrics.incr t.metrics Metrics.Wal_retries;
              if attempt >= t.cfg.fsync_retries then Error `Degraded
              else begin
                Backoff.once t.bo;
                sync (attempt + 1)
              end
        in
        sync 0
      with
      | Ok () ->
          Metrics.incr t.metrics Metrics.Wal_fsyncs;
          Obs.Trace.record_sink Obs.Trace.none Obs.Trace.Wal_fsync
            ~start_ns:io0
            ~dur_ns:(Clock.monotonic_ns () - io0)
            ~a:len ~b:0;
          Backoff.reset t.bo;
          Mutex.lock t.mu;
          if target > t.durable then t.durable <- target;
          Mutex.unlock t.mu;
          Ok ()
      | Error `Halted -> Error `Halted
      | Error `Degraded ->
          Mutex.lock t.mu;
          degrade_locked t;
          Mutex.unlock t.mu;
          Error `Degraded
      | exception Io.Halted -> Error `Halted
      | exception Unix.Unix_error _ ->
          (* A failed or torn data write: the segment tail is suspect,
             and the cleared buffer cannot be replayed without risking
             duplicate bytes.  Terminal; nothing in it was acked. *)
          Mutex.lock t.mu;
          degrade_locked t;
          Mutex.unlock t.mu;
          Error `Degraded
    end
  in
  Mutex.unlock t.io_mu;
  r

(* ------------------------------ threads ----------------------------- *)

let committer t () =
  let rec loop () =
    Unix.sleepf t.cfg.commit_interval;
    if Io.is_halted () then ()
    else begin
      Mutex.lock t.mu;
      let state = t.state in
      Mutex.unlock t.mu;
      match state with
      | Closed | Degraded_s -> ()
      | Running -> (
          match flush t with
          | Ok () -> loop ()
          | Error (`Degraded | `Halted | `Closed) -> ())
    end
  in
  loop ()

let pump_interval cfg = Float.max 2e-4 (Float.min 1e-3 (cfg.commit_interval /. 2.))

let pump t () =
  let rec loop () =
    Unix.sleepf (pump_interval t.cfg);
    let halted = Io.is_halted () in
    Mutex.lock t.mu;
    let durable = t.durable and state = t.state in
    let now = Clock.monotonic_ns () in
    let fire, keep =
      List.partition_map
        (fun p ->
          if halted then Either.Left (p, Lost)
          else if p.p_lsn <= durable then Either.Left (p, Durable)
          else if state <> Running then Either.Left (p, Degraded)
          else if now > p.p_deadline then Either.Left (p, Timed_out)
          else Either.Right p)
        t.pending
    in
    t.pending <- keep;
    Mutex.unlock t.mu;
    List.iter (fun (p, o) -> try p.p_cb o with _ -> ()) fire;
    if halted || (state = Closed && keep = []) then () else loop ()
  in
  loop ()

(* ----------------------------- lifecycle ---------------------------- *)

let open_ ?(config = default_config) ?metrics ~dir ~next_lsn () =
  if config.commit_interval <= 0.0 || config.fsync_retries < 0 || next_lsn < 1
  then invalid_arg "Wal.open_";
  mkdir_p dir;
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ~family:"persist"
  in
  let path = seg_path dir next_lsn in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  let t =
    {
      dir;
      cfg = config;
      metrics;
      mu = Mutex.create ();
      io_mu = Mutex.create ();
      bo = Backoff.create ~min_wait:64 ~max_wait:8192 ();
      fd;
      path;
      next_lsn;
      buffered_to = next_lsn - 1;
      durable = next_lsn - 1;
      buf = Buffer.create 8192;
      pending = [];
      state = Running;
      committer = None;
      pump = None;
    }
  in
  t.committer <- Some (Thread.create (committer t) ());
  t.pump <- Some (Thread.create (pump t) ());
  t

let append t op =
  if Io.is_halted () then Error `Halted
  else begin
    Mutex.lock t.mu;
    match t.state with
    | Degraded_s ->
        Mutex.unlock t.mu;
        Error `Degraded
    | Closed ->
        Mutex.unlock t.mu;
        Error `Closed
    | Running ->
        let lsn = t.next_lsn in
        t.next_lsn <- lsn + 1;
        Buffer.add_bytes t.buf (encode_record ~lsn op);
        t.buffered_to <- lsn;
        Metrics.incr t.metrics Metrics.Wal_appends;
        let pressure = Buffer.length t.buf >= t.cfg.max_buffer in
        Mutex.unlock t.mu;
        if pressure then ignore (flush t);
        Ok lsn
  end

let subscribe t ~lsn ~deadline_ns cb =
  Mutex.lock t.mu;
  let immediate =
    if Io.is_halted () then Some Lost
    else if lsn <= t.durable then Some Durable
    else if t.state <> Running then Some Degraded
    else begin
      t.pending <- { p_lsn = lsn; p_deadline = deadline_ns; p_cb = cb } :: t.pending;
      None
    end
  in
  Mutex.unlock t.mu;
  match immediate with Some o -> cb o | None -> ()

let rotate t =
  Mutex.lock t.io_mu;
  Mutex.lock t.mu;
  if t.state <> Running then begin
    let r =
      match t.state with Degraded_s -> Error `Degraded | _ -> Error `Closed
    in
    Mutex.unlock t.mu;
    Mutex.unlock t.io_mu;
    r
  end
  else begin
    let data = Buffer.to_bytes t.buf in
    Buffer.clear t.buf;
    let boundary = t.next_lsn - 1 in
    let old_fd = t.fd and old_path = t.path in
    match
      Unix.openfile (seg_path t.dir t.next_lsn)
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
        0o644
    with
    | exception e ->
        (* Could not open the next segment: keep writing the old one.
           The unwritten records go back in front of the buffer — no
           appends happened since the swap (we hold [mu]). *)
        let tail = Buffer.to_bytes t.buf in
        Buffer.clear t.buf;
        Buffer.add_bytes t.buf data;
        Buffer.add_bytes t.buf tail;
        Mutex.unlock t.mu;
        Mutex.unlock t.io_mu;
        ignore e;
        Error `Degraded
    | new_fd -> (
        t.fd <- new_fd;
        t.path <- seg_path t.dir t.next_lsn;
        Mutex.unlock t.mu;
        (* Seal the old segment: its records must be durable before the
           checkpoint that supersedes them can unlink it. *)
        let sealed =
          match
            let len = Bytes.length data in
            if len > 0 then Io.write_all old_fd ~path:old_path data 0 len;
            Io.fsync old_fd ~path:old_path
          with
          | () ->
              Metrics.incr t.metrics Metrics.Wal_fsyncs;
              Mutex.lock t.mu;
              if boundary > t.durable then t.durable <- boundary;
              Mutex.unlock t.mu;
              Ok boundary
          | exception Io.Halted -> Error `Halted
          | exception Unix.Unix_error _ ->
              Mutex.lock t.mu;
              degrade_locked t;
              Mutex.unlock t.mu;
              Error `Degraded
        in
        (try Unix.close old_fd with _ -> ());
        Mutex.unlock t.io_mu;
        sealed)
  end

(* Unlink every segment all of whose records are <= [lsn].  A segment's
   records end where the next segment starts, so segment [s_i] is dead
   iff [s_{i+1} <= lsn + 1]; the current (last) segment never dies. *)
let drop_segments_below t ~lsn =
  let starts = segment_starts t.dir in
  let dropped = ref 0 in
  let rec go = function
    | s :: (s' :: _ as rest) ->
        if s' <= lsn + 1 then begin
          (try
             Sys.remove (seg_path t.dir s);
             incr dropped
           with _ -> ());
          go rest
        end
        else go rest
    | _ -> ()
  in
  go starts;
  !dropped

let last_lsn t =
  Mutex.lock t.mu;
  let l = t.next_lsn - 1 in
  Mutex.unlock t.mu;
  l

let durable_lsn t =
  Mutex.lock t.mu;
  let l = t.durable in
  Mutex.unlock t.mu;
  l

let degraded t =
  Mutex.lock t.mu;
  let d = t.state = Degraded_s in
  Mutex.unlock t.mu;
  d

let pending_acks t =
  Mutex.lock t.mu;
  let n = List.length t.pending in
  Mutex.unlock t.mu;
  n

let metrics t = t.metrics

let join_threads t =
  (match t.committer with Some th -> Thread.join th | None -> ());
  (match t.pump with Some th -> Thread.join th | None -> ());
  t.committer <- None;
  t.pump <- None

let close t =
  let r = flush t in
  Mutex.lock t.mu;
  if t.state = Running then t.state <- Closed;
  Mutex.unlock t.mu;
  join_threads t;
  (* Fire anything the pump left behind (it exits on Degraded only
     after clearing; this is belt-and-braces for the halted path). *)
  Mutex.lock t.mu;
  let left = t.pending in
  t.pending <- [];
  let durable = t.durable in
  Mutex.unlock t.mu;
  List.iter
    (fun p ->
      try p.p_cb (if p.p_lsn <= durable then Durable else Lost) with _ -> ())
    left;
  (try Unix.close t.fd with _ -> ());
  r

(* Post-crash teardown: no flush, no final acks — the process "died".
   Joins the threads (they exit on the halted flag) and drops the fd. *)
let abandon t =
  Mutex.lock t.mu;
  if t.state = Running then t.state <- Closed;
  t.pending <- [];
  Mutex.unlock t.mu;
  join_threads t;
  try Unix.close t.fd with _ -> ()
