(* Fault-injectable storage seam (DESIGN.md §14).

   Every byte the persistence layer puts on disk goes through this
   module, and every call consults a single process-global injector
   slot — the same last-installed-wins idiom as
   [Ct_util.Yieldpoint.install].  The production fast path is one
   atomic load; [Chaos.Disk] installs an injector that turns the same
   calls into torn writes, short writes, failed or delayed fsyncs.

   A {e torn} write is the simulated [kill -9]: a prefix of the buffer
   reaches the file, the process-wide {!halted} flag flips, and
   {!Halted} propagates.  While halted, every subsequent operation
   refuses immediately — exactly what a dead process would have done —
   so a crash-storm harness can abandon the store mid-commit or
   mid-checkpoint and recover from whatever prefix made it to disk.
   {!resurrect} starts the next incarnation. *)

exception Halted

type write_directive =
  | W_ok
  | W_short of int  (* persist only this many bytes, report partial success *)
  | W_torn of int  (* persist this many bytes, then halt: simulated kill -9 *)
  | W_error  (* the write fails with EIO *)

type fsync_directive =
  | F_ok
  | F_error  (* fsync fails with EIO *)
  | F_delay of float  (* a stalled disk: sleep, then fsync normally *)
  | F_halt  (* kill -9 at the fsync boundary *)

type injector = {
  on_write : path:string -> len:int -> write_directive;
  on_fsync : path:string -> fsync_directive;
}

let injector : injector option Atomic.t = Atomic.make None
let install i = Atomic.set injector (Some i)
let clear () = Atomic.set injector None

let halted = Atomic.make false
let halt () = Atomic.set halted true
let is_halted () = Atomic.get halted
let resurrect () = Atomic.set halted false

let check_alive () = if Atomic.get halted then raise Halted

(* Write [len] bytes of [b] from [off], honouring injected faults.
   Short writes (injected or real) loop — a partial write is not an
   error, and every retry re-consults the injector so one call can
   suffer several faults. *)
let write_all fd ~path b off len =
  check_alive ();
  let pos = ref off and stop = off + len in
  while !pos < stop do
    check_alive ();
    let remaining = stop - !pos in
    let directive =
      match Atomic.get injector with
      | None -> W_ok
      | Some i -> i.on_write ~path ~len:remaining
    in
    match directive with
    | W_ok ->
        let n = Unix.write fd b !pos remaining in
        if n <= 0 then raise (Unix.Unix_error (Unix.EIO, "write", path));
        pos := !pos + n
    | W_short n ->
        let n = max 1 (min n remaining) in
        let n = Unix.write fd b !pos n in
        if n <= 0 then raise (Unix.Unix_error (Unix.EIO, "write", path));
        pos := !pos + n
    | W_torn n ->
        let n = min (max 0 n) remaining in
        (if n > 0 then try ignore (Unix.write fd b !pos n) with _ -> ());
        halt ();
        raise Halted
    | W_error -> raise (Unix.Unix_error (Unix.EIO, "write", path))
  done

let fsync fd ~path =
  check_alive ();
  let directive =
    match Atomic.get injector with
    | None -> F_ok
    | Some i -> i.on_fsync ~path
  in
  match directive with
  | F_ok -> Unix.fsync fd
  | F_error -> raise (Unix.Unix_error (Unix.EIO, "fsync", path))
  | F_delay d ->
      Unix.sleepf d;
      check_alive ();
      Unix.fsync fd
  | F_halt ->
      halt ();
      raise Halted

(* Directory entries (the rename publishing a checkpoint) are made
   durable by fsyncing the directory fd.  Not injectable: the faults
   worth injecting live on the data path. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () -> try Unix.fsync fd with _ -> ())
  | exception _ -> ()
