(* Snapshot checkpoints (DESIGN.md §14).

   A checkpoint is the materialized map at a WAL boundary: replaying it
   plus the WAL suffix [> lsn] reconstructs the store.  The durable
   layer produces the bindings with [Ctrie_snap.fold_snapshot] — an
   O(1) snapshot the writers never wait on — so checkpointing is a
   background reader, not a stop-the-world pause.

   File format ([checkpoint-<lsn>.ckpt]):

     magic "ctkv-ckpt v1\n" | u64 lsn
     records: u32 len | u32 crc32(payload) | payload = i64 key | value
     u32 0 terminator
     footer: u64 count | u32 crc32(count bytes)

   The footer makes truncation detectable even at a record boundary.

   Publication is crash-atomic: write [checkpoint-<lsn>.tmp] through
   the fault-injectable {!Io} seam, fsync it, rename to [.ckpt], fsync
   the directory.  A crash mid-write leaves only a [.tmp], which
   recovery ignores (and counts); a published [.ckpt] is complete or
   the CRCs say otherwise. *)

module Metrics = Ct_util.Metrics

let magic = "ctkv-ckpt v1\n"

let ckpt_name lsn = Printf.sprintf "checkpoint-%016d.ckpt" lsn
let tmp_name lsn = Printf.sprintf "checkpoint-%016d.tmp" lsn

let name_lsn ~suffix name =
  if
    String.length name = 11 + 16 + String.length suffix
    && String.sub name 0 11 = "checkpoint-"
    && String.sub name 27 (String.length suffix) = suffix
  then int_of_string_opt (String.sub name 11 16)
  else None

let ckpt_lsn_of_name = name_lsn ~suffix:".ckpt"
let tmp_lsn_of_name = name_lsn ~suffix:".tmp"

let list_files dir =
  match Sys.readdir dir with a -> Array.to_list a | exception _ -> []

let latest ~dir =
  list_files dir
  |> List.filter_map (fun n ->
         match ckpt_lsn_of_name n with
         | Some l -> Some (l, Filename.concat dir n)
         | None -> None)
  |> List.sort (fun (a, _) (b, _) -> compare b a)
  |> function
  | [] -> None
  | best :: _ -> Some best

let tmp_leftovers ~dir =
  list_files dir |> List.filter (fun n -> tmp_lsn_of_name n <> None)

(* ------------------------------- write ------------------------------ *)

let chunk = 64 * 1024

let write ?metrics ~dir ~lsn ~iter () =
  let tmp = Filename.concat dir (tmp_name lsn) in
  let final = Filename.concat dir (ckpt_name lsn) in
  match
    Unix.openfile tmp
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644
  with
  | exception Unix.Unix_error (e, _, _) ->
      Error (`Io_error (Printf.sprintf "%s: %s" tmp (Unix.error_message e)))
  | fd -> (
      let buf = Buffer.create chunk in
      let scratch = Bytes.create 16 in
      let count = ref 0 in
      let flush () =
        if Buffer.length buf > 0 then begin
          let b = Buffer.to_bytes buf in
          Buffer.clear buf;
          Io.write_all fd ~path:tmp b 0 (Bytes.length b)
        end
      in
      let emit key value =
        let n = 8 + String.length value in
        Bytes.set_int32_be scratch 0 (Int32.of_int n);
        Bytes.set_int64_be scratch 8 (Int64.of_int key);
        let crc = Crc32.bytes scratch 8 8 in
        let crc = Crc32.update crc (Bytes.unsafe_of_string value) 0 (String.length value) in
        Bytes.set_int32_be scratch 4 (Int32.of_int crc);
        Buffer.add_subbytes buf scratch 0 16;
        Buffer.add_string buf value;
        incr count;
        if Buffer.length buf >= chunk then flush ()
      in
      match
        Buffer.add_string buf magic;
        Bytes.set_int64_be scratch 0 (Int64.of_int lsn);
        Buffer.add_subbytes buf scratch 0 8;
        iter emit;
        (* terminator + footer *)
        Bytes.set_int32_be scratch 0 0l;
        Bytes.set_int64_be scratch 4 (Int64.of_int !count);
        Bytes.set_int32_be scratch 12 (Int32.of_int (Crc32.bytes scratch 4 8));
        Buffer.add_subbytes buf scratch 0 16;
        flush ();
        Io.fsync fd ~path:tmp
      with
      | () ->
          (try Unix.close fd with _ -> ());
          (match Unix.rename tmp final with
          | () ->
              Io.fsync_dir dir;
              (match metrics with
              | Some m ->
                  Metrics.incr m Metrics.Checkpoints;
                  Metrics.add m Metrics.Checkpoint_records !count
              | None -> ());
              Ok !count
          | exception Unix.Unix_error (e, _, _) ->
              Error
                (`Io_error (Printf.sprintf "rename %s: %s" tmp (Unix.error_message e))))
      | exception Io.Halted ->
          (try Unix.close fd with _ -> ());
          Error `Halted
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with _ -> ());
          (try Sys.remove tmp with _ -> ());
          Error (`Io_error (Printf.sprintf "%s: %s" tmp (Unix.error_message e))))

(* ------------------------------- read ------------------------------- *)

let u32 s off = Int32.to_int (String.get_int32_be s off) land 0xFFFF_FFFF

let read ~path ~add =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | s -> (
      let n = String.length s in
      let hdr = String.length magic in
      if n < hdr + 8 then Error "truncated header"
      else if String.sub s 0 hdr <> magic then Error "bad magic"
      else begin
        let lsn = Int64.to_int (String.get_int64_be s hdr) in
        let count = ref 0 in
        let rec records pos =
          if pos + 4 > n then Error "truncated at record length"
          else
            let len = u32 s pos in
            if len = 0 then begin
              (* terminator; footer follows *)
              if pos + 4 + 12 > n then Error "truncated footer"
              else
                let declared = Int64.to_int (String.get_int64_be s (pos + 4)) in
                let crc = u32 s (pos + 12) in
                let actual =
                  Crc32.bytes (Bytes.unsafe_of_string s) (pos + 4) 8
                in
                if crc <> actual then Error "footer crc mismatch"
                else if declared <> !count then
                  Error
                    (Printf.sprintf "record count mismatch: footer %d, read %d"
                       declared !count)
                else Ok (lsn, !count)
            end
            else if len < 8 then
              Error (Printf.sprintf "bad record length %d at offset %d" len pos)
            else if pos + 8 + len > n then
              Error (Printf.sprintf "truncated record at offset %d" pos)
            else begin
              let crc = u32 s (pos + 4) in
              let actual = Crc32.bytes (Bytes.unsafe_of_string s) (pos + 8) len in
              if crc <> actual then
                Error (Printf.sprintf "record crc mismatch at offset %d" pos)
              else begin
                let key = Int64.to_int (String.get_int64_be s (pos + 8)) in
                let value = String.sub s (pos + 16) (len - 8) in
                add key value;
                incr count;
                records (pos + 8 + len)
              end
            end
        in
        records (hdr + 8)
      end)

(* -------------------------------- gc -------------------------------- *)

(* Remove superseded checkpoints (lsn < keep) and crash leftovers
   (any .tmp — only one checkpointer runs, so a .tmp on disk when gc
   runs is a dead incarnation's).  Returns the number removed. *)
let gc ~dir ~keep =
  let removed = ref 0 in
  List.iter
    (fun name ->
      let kill =
        match ckpt_lsn_of_name name with
        | Some l -> l < keep
        | None -> tmp_lsn_of_name name <> None
      in
      if kill then
        try
          Sys.remove (Filename.concat dir name);
          incr removed
        with _ -> ())
    (list_files dir);
  !removed
