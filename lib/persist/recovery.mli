(** Crash recovery: newest checkpoint + WAL suffix replay, with typed
    refusal of anything the CRCs or LSN sequence cannot vouch for.

    Strict mode (the default) refuses {e all} damage, including a torn
    tail — the truncated/CRC-broken end of the last segment that a
    crash mid group-commit leaves behind.  [~salvage:true] truncates
    such a tail (provably unacknowledged: acks require the covering
    fsync, which never completed) and recovers the good prefix;
    mid-file corruption, LSN gaps and corrupt published checkpoints are
    refused in both modes. *)

type error =
  | Corrupt_record of { path : string; off : int; reason : string }
      (** CRC/structure failure with valid data after it — not a crash
          artifact; refused in both modes. *)
  | Torn_tail of { path : string; off : int; reason : string }
      (** Truncated or CRC-broken log tail with nothing valid after
          it — the crash signature; salvageable. *)
  | Lsn_gap of { path : string; expected : int; found : int }
  | Corrupt_checkpoint of { path : string; reason : string }
  | Io_error of { path : string; msg : string }

val error_to_string : error -> string

type stats = {
  checkpoint_lsn : int;  (** 0 when recovering without a checkpoint *)
  checkpoint_records : int;
  replayed : int;  (** WAL records applied (lsn > checkpoint_lsn) *)
  skipped : int;  (** records already covered by the checkpoint *)
  last_lsn : int;  (** resume the log at [last_lsn + 1] *)
  salvaged_bytes : int;  (** tail bytes truncated in salvage mode *)
  tmp_discarded : int;  (** partial checkpoint files ignored *)
}

val empty_stats : stats

val load :
  ?salvage:bool ->
  ?metrics:Ct_util.Metrics.t ->
  dir:string ->
  put:(int -> string -> unit) ->
  remove:(int -> unit) ->
  unit ->
  (stats, error) result
(** Rebuild the store into [put]/[remove]: checkpoint bindings first,
    then the WAL suffix in LSN order.  Every record read is CRC-checked
    (even ones the checkpoint already covers).  Replay is idempotent,
    so the deliberate checkpoint/WAL overlap is harmless.  A missing
    [dir] is an empty store, not an error. *)
