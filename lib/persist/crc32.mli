(** CRC-32 (IEEE, reflected) over bytes — the record checksum of the
    WAL and checkpoint file formats.  Values are in [0, 0xFFFFFFFF]. *)

val update : int -> Bytes.t -> int -> int -> int
(** [update crc b off len] extends a running checksum.  [update 0]
    starts a fresh one. *)

val bytes : Bytes.t -> int -> int -> int

val string : string -> int
