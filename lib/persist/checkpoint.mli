(** Snapshot checkpoints: the materialized map at a WAL boundary,
    published crash-atomically (write [.tmp] → fsync → rename to
    [.ckpt] → directory fsync).  Replaying the newest checkpoint plus
    the WAL suffix beyond its LSN reconstructs the store. *)

val write :
  ?metrics:Ct_util.Metrics.t ->
  dir:string ->
  lsn:int ->
  iter:((int -> string -> unit) -> unit) ->
  unit ->
  (int, [ `Halted | `Io_error of string ]) result
(** [write ~dir ~lsn ~iter ()] streams the bindings produced by [iter]
    (typically [Ctrie_snap.fold_snapshot] applied to a snapshot) into
    [checkpoint-<lsn>.ckpt], through the fault-injectable {!Io} seam.
    Returns the number of bindings written.  On [`Halted] the [.tmp]
    is left behind, exactly as a killed process would leave it. *)

val read : path:string -> add:(int -> string -> unit) -> (int * int, string) result
(** Validate and stream a checkpoint file: [add key value] per binding.
    Returns [(lsn, count)] or a reason ([Recovery] wraps it in its
    typed error).  Every record CRC and the count footer are checked. *)

val latest : dir:string -> (int * string) option
(** Newest published checkpoint as [(lsn, path)]. *)

val tmp_leftovers : dir:string -> string list
(** Names of partial [.tmp] checkpoints (crash debris) in [dir]. *)

val gc : dir:string -> keep:int -> int
(** Remove checkpoints with [lsn < keep] and all [.tmp] leftovers;
    returns the number of files removed. *)

val ckpt_name : int -> string
val tmp_name : int -> string
val ckpt_lsn_of_name : string -> int option
val tmp_lsn_of_name : string -> int option
