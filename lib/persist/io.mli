(** Fault-injectable storage seam.

    All WAL and checkpoint bytes go through {!write_all}/{!fsync},
    which consult a process-global injector slot (last installed wins,
    like [Ct_util.Yieldpoint]).  [Chaos.Disk] is the production
    injector; the directives below are the faults it can return.

    {!Halted} models [kill -9]: once raised (via a [W_torn]/[F_halt]
    directive or an explicit {!halt}), every subsequent operation
    refuses until {!resurrect} — the files keep whatever prefix made
    it to disk, exactly like a dead process's. *)

exception Halted

type write_directive =
  | W_ok
  | W_short of int
      (** persist only this many bytes; the caller's loop continues *)
  | W_torn of int
      (** persist this many bytes, then {!halt} and raise {!Halted} *)
  | W_error  (** fail with [EIO] *)

type fsync_directive =
  | F_ok
  | F_error  (** fail with [EIO] *)
  | F_delay of float  (** stalled disk: sleep, then fsync *)
  | F_halt  (** {!halt} and raise {!Halted} *)

type injector = {
  on_write : path:string -> len:int -> write_directive;
  on_fsync : path:string -> fsync_directive;
}

val install : injector -> unit
val clear : unit -> unit

val halt : unit -> unit
(** Simulated [kill -9] from this instant on. *)

val is_halted : unit -> bool

val resurrect : unit -> unit
(** Start the next incarnation (the recovery side of a crash test). *)

val write_all : Unix.file_descr -> path:string -> Bytes.t -> int -> int -> unit
(** [write_all fd ~path b off len] writes all [len] bytes, looping
    over partial writes, consulting the injector each round.
    Raises {!Halted} or [Unix.Unix_error]. *)

val fsync : Unix.file_descr -> path:string -> unit

val fsync_dir : string -> unit
(** Make a directory entry durable (best-effort, not injectable). *)
