type op =
  | Lookup of int
  | Insert of int * int
  | Remove of int
  | Put_if_absent of int * int
  | Replace of int * int
  | Replace_if of int * int * int
  | Remove_if of int * int

type event = {
  thread : int;
  op : op;
  result : int option;
  inv : int;
  res : int;
}

module type IMAP = Ct_util.Map_intf.CONCURRENT_MAP with type key = int

(* ------------------------------ recording -------------------------- *)

let record (module M : IMAP) (scripts : op list list) : event list =
  let t = M.create () in
  let clock = Atomic.make 0 in
  let n = List.length scripts in
  let barrier = Atomic.make 0 in
  let run thread script =
    Atomic.incr barrier;
    while Atomic.get barrier < n do
      Domain.cpu_relax ()
    done;
    List.map
      (fun op ->
        let inv = Atomic.fetch_and_add clock 1 in
        let result =
          match op with
          | Lookup k -> M.lookup t k
          | Insert (k, v) -> M.add t k v
          | Remove k -> M.remove t k
          | Put_if_absent (k, v) -> M.put_if_absent t k v
          | Replace (k, v) -> M.replace t k v
          | Replace_if (k, expected, v) ->
              if M.replace_if t k ~expected v then Some 1 else Some 0
          | Remove_if (k, expected) ->
              if M.remove_if t k ~expected then Some 1 else Some 0
        in
        let res = Atomic.fetch_and_add clock 1 in
        { thread; op; result; inv; res })
      script
  in
  let domains =
    List.mapi (fun i script -> Domain.spawn (fun () -> run i script)) scripts
  in
  List.concat_map Domain.join domains

(* ------------------------- sequential spec ------------------------- *)

let sequential_apply model op =
  let find k = List.assoc_opt k model in
  match op with
  | Lookup k -> (model, find k)
  | Insert (k, v) ->
      let prev = find k in
      ((k, v) :: List.remove_assoc k model, prev)
  | Remove k ->
      let prev = find k in
      (List.remove_assoc k model, prev)
  | Put_if_absent (k, v) -> (
      match find k with
      | Some _ as prev -> (model, prev)
      | None -> ((k, v) :: model, None))
  | Replace (k, v) -> (
      match find k with
      | Some _ as prev -> ((k, v) :: List.remove_assoc k model, prev)
      | None -> (model, None))
  | Replace_if (k, expected, v) -> (
      match find k with
      | Some cur when cur = expected -> ((k, v) :: List.remove_assoc k model, Some 1)
      | Some _ | None -> (model, Some 0))
  | Remove_if (k, expected) -> (
      match find k with
      | Some cur when cur = expected -> (List.remove_assoc k model, Some 1)
      | Some _ | None -> (model, Some 0))

(* ------------------------------ checking --------------------------- *)

(* Wing-Gong search: pick any minimal operation (per-thread program
   order + real-time order) whose recorded result matches the model,
   apply it, recurse.  Memoize on (per-thread progress, model). *)
let check (history : event list) : bool =
  let threads =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun e ->
        let cur = try Hashtbl.find tbl e.thread with Not_found -> [] in
        Hashtbl.replace tbl e.thread (e :: cur))
      history;
    Hashtbl.fold
      (fun _ evs acc ->
        (* [evs] accumulated in reverse; [List.rev] restores the
           history's per-thread order and the stable sort keeps it when
           stamps tie.  A plain sort on [inv] alone could flip two
           equal-stamp events of one thread, inventing a program order
           the thread never executed. *)
        let in_order = List.rev evs in
        Array.of_list (List.stable_sort (fun a b -> compare a.inv b.inv) in_order)
        :: acc)
      tbl []
    |> Array.of_list
  in
  let n_threads = Array.length threads in
  let total = List.length history in
  let visited = Hashtbl.create 1024 in
  let canonical model = List.sort compare model in
  let rec dfs (progress : int array) model done_count =
    if done_count = total then true
    else begin
      let key = (Array.to_list progress, canonical model) in
      if Hashtbl.mem visited key then false
      else begin
        Hashtbl.add visited key ();
        (* Earliest response among all pending heads: any op invoked
           after that response cannot linearize first. *)
        let min_res = ref max_int in
        for i = 0 to n_threads - 1 do
          if progress.(i) < Array.length threads.(i) then
            min_res := min !min_res threads.(i).(progress.(i)).res
        done;
        let ok = ref false in
        let i = ref 0 in
        while (not !ok) && !i < n_threads do
          (if progress.(!i) < Array.length threads.(!i) then begin
             let e = threads.(!i).(progress.(!i)) in
             if e.inv <= !min_res then begin
               let model', expected = sequential_apply model e.op in
               if expected = e.result then begin
                 progress.(!i) <- progress.(!i) + 1;
                 if dfs progress model' (done_count + 1) then ok := true
                 else progress.(!i) <- progress.(!i) - 1
               end
             end
           end);
          incr i
        done;
        !ok
      end
    end
  in
  dfs (Array.make n_threads 0) [] 0

(* --------------------------- random driver ------------------------- *)

let run_random (module M : IMAP) ~seed ~threads ~ops_per_thread ~key_range =
  let rng = Ct_util.Rng.create seed in
  let random_op () =
    let k = Ct_util.Rng.next_int rng key_range in
    let v = Ct_util.Rng.next_int rng 100 in
    match Ct_util.Rng.next_int rng 7 with
    | 0 -> Lookup k
    | 1 -> Insert (k, v)
    | 2 -> Remove k
    | 3 -> Put_if_absent (k, v)
    | 4 -> Replace_if (k, Ct_util.Rng.next_int rng 100, v)
    | 5 -> Remove_if (k, Ct_util.Rng.next_int rng 100)
    | _ -> Replace (k, v)
  in
  let scripts =
    List.init threads (fun _ -> List.init ops_per_thread (fun _ -> random_op ()))
  in
  check (record (module M) scripts)
