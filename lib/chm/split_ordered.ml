(* Split-ordered hash map: one Harris-style lock-free ordered list over
   bit-reversed hashes, plus a growable table of bucket sentinels.

   Split-order keys: regular nodes use reverse(hash) | 1 (odd), bucket
   sentinels use reverse(bucket) (even), so a bucket's sentinel sorts
   just before the regular nodes that hash into it.  Doubling the
   table splits each bucket in two without moving any list node.

   A binding's value and liveness share a single atomic [state] word
   (Live v / Dead): every logical transition of a binding is one CAS on
   it, which is what makes in-place value updates (including the
   replace_if compare-and-swap) linearizable.  A Dead node's link is
   then marked and unlinked as pure physical cleanup. *)

module Hashing = Ct_util.Hashing
module Bits = Ct_util.Bits
module Slots = Ct_util.Slots
module Yp = Ct_util.Yieldpoint
module Metrics = Ct_util.Metrics
module Prefetch = Ct_util.Prefetch

(* Yield points (DESIGN.md "Fault injection & robustness"): one site
   per distinct CAS, so the chaos layer can crash a victim between the
   logical and physical steps of an operation — a binding killed but
   not buried, a node marked but not unlinked, a sentinel spliced into
   the list but never published in the bucket table. *)
let yp_insert_splice = Yp.register "chm.insert.splice"
let yp_update_value = Yp.register "chm.update.value"
let yp_remove_kill = Yp.register "chm.remove.kill"
let yp_bury_mark = Yp.register "chm.bury.mark"
let yp_unlink = Yp.register "chm.unlink"
let yp_bucket_splice = Yp.register "chm.bucket.splice"
let yp_bucket_publish = Yp.register "chm.bucket.publish"
let yp_grow = Yp.register "chm.grow"

(* Read-path yield point, fired once per node the wait-free lookup
   traverses, so the deterministic scheduler (lib/mc) can park a read
   mid-list between a writer's kill and bury steps. *)
let yp_read_walk = Yp.register_read "chm.read.walk"

let yp_cas m site slot expected repl =
  Metrics.incr m Metrics.Cas_attempts;
  Yp.here Yp.Before site;
  let ok = Atomic.compare_and_set slot expected repl in
  if ok then Yp.here Yp.After site else Metrics.incr m Metrics.Cas_retries;
  ok

let yp_cas_slot m site slots pos expected repl =
  Metrics.incr m Metrics.Cas_attempts;
  Yp.here Yp.Before site;
  let ok = Slots.cas slots pos expected repl in
  if ok then Yp.here Yp.After site else Metrics.incr m Metrics.Cas_retries;
  ok

let initial_buckets = 16
let max_buckets = 1 lsl 22

(* Average bindings per bucket before doubling; JDK 8's CHM keeps bins
   near 0.75 entries, so growth triggers at 1. *)
let load_factor = 1

module Make (H : Hashing.HASHABLE) = struct
  type key = H.t

  let name = "chm"

  type 'v node = {
    sokey : int;  (* split-order key: reversed hash, odd for regular nodes *)
    kind : 'v kind;
    next : 'v link Atomic.t;
  }

  and 'v kind =
    | Sentinel  (* bucket dummy *)
    | Binding of { hash : int; key : key; state : 'v state Atomic.t }

  and 'v state = Live of 'v | Dead

  and 'v link = { succ : 'v node option; marked : bool }

  (* Staged-batch traversal state (DESIGN.md §13), pooled per domain so
     steady-state [find_batch] allocates nothing.  [s_node] holds the
     [succ] options already boxed inside link records, so storing them
     costs no allocation. *)
  type 'v scratch = {
    s_h : int array;
    s_so : int array;  (** split-order key *)
    s_node : 'v node option array;
    s_act : int array;
    mutable s_nact : int;
    mutable s_hits : int;
  }

  type 'v t = {
    table : 'v node option Slots.t Atomic.t;
    count : int Atomic.t;
    list_head : 'v node;  (* sentinel of bucket 0 *)
    metrics : Metrics.t;
    scratch_pool : 'v scratch Atomic.t array;
    scratch_dummy : 'v scratch;
  }

  let regular_sokey h = (Bits.reverse_bits32 h lsl 1) lor 1
  let sentinel_sokey b = Bits.reverse_bits32 b lsl 1
  let chunk_cap = 64

  let pool_slots =
    let n = Domain.recommended_domain_count () in
    let rec p2 x = if x >= n then x else p2 (x * 2) in
    p2 1

  let create () =
    let head =
      {
        sokey = sentinel_sokey 0;
        kind = Sentinel;
        next = Atomic.make { succ = None; marked = false };
      }
    in
    let table = Slots.make initial_buckets None in
    Slots.set table 0 (Some head);
    let scratch_dummy =
      { s_h = [||]; s_so = [||]; s_node = [||]; s_act = [||]; s_nact = 0; s_hits = 0 }
    in
    {
      table = Atomic.make table;
      count = Atomic.make 0;
      list_head = head;
      metrics = Metrics.create ~family:name;
      scratch_pool = Array.init pool_slots (fun _ -> Atomic.make scratch_dummy);
      scratch_dummy;
    }

  let hash_of k = H.hash k land Hashing.mask

  (* ----------------------- the underlying list ---------------------- *)

  (* Mark a dead node's link so traversals unlink it. *)
  let rec bury m (node : 'v node) =
    let link = Atomic.get node.next in
    if not link.marked then
      if
        not
          (yp_cas m yp_bury_mark node.next link { succ = link.succ; marked = true })
      then bury m node

  (* Position in the list after [start] for ([sokey], [key]):
     [pred, curr] with [pred.sokey <= sokey <= curr.sokey]; when the
     exact binding exists, [curr] is it.  Physically unlinks marked
     nodes on the way (Harris). *)
  let rec list_find m (start : 'v node) sokey key : 'v node * 'v node option =
    let rec advance (pred : 'v node) (plink : 'v link) =
      match plink.succ with
      | None -> (pred, None)
      | Some curr ->
          let clink = Atomic.get curr.next in
          if clink.marked then begin
            (* Unlink the dead node.  The stored replacement link must
               be the exact record we keep using (CAS compares
               identities).  Unlinking someone else's marked node is a
               helping step. *)
            let repl = { succ = clink.succ; marked = false } in
            if yp_cas m yp_unlink pred.next plink repl then begin
              Metrics.incr m Metrics.Helps;
              advance pred repl
            end
            else list_find m start sokey key
          end
          else if curr.sokey < sokey then advance curr clink
          else if curr.sokey > sokey then (pred, Some curr)
          else begin
            (* Equal split-order key: scan the equal-key run for the
               matching binding. *)
            match curr.kind with
            | Binding b when H.equal b.key key -> (pred, Some curr)
            | Binding _ | Sentinel -> advance curr clink
          end
    in
    advance start (Atomic.get start.next)

  (* --------------------------- bucket table ------------------------- *)

  let parent_bucket b =
    (* Clear the most significant set bit. *)
    if b = 0 then 0 else b lxor (1 lsl (31 - Bits.count_leading_zeros32 b))

  let rec get_bucket t (table : 'v node option Slots.t) b : 'v node =
    match Slots.get table b with
    | Some sentinel -> sentinel
    | None ->
        (* Initialize recursively from the parent bucket. *)
        let parent = get_bucket t table (parent_bucket b) in
        let sokey = sentinel_sokey b in
        let rec install () =
          (* A sentinel has no key; find the splice point by sokey
             alone. *)
          let rec splice_point (pred : 'v node) =
            let plink = Atomic.get pred.next in
            match plink.succ with
            | Some curr when curr.sokey < sokey ->
                let clink = Atomic.get curr.next in
                if clink.marked then begin
                  let repl = { succ = clink.succ; marked = false } in
                  if yp_cas t.metrics yp_unlink pred.next plink repl then
                    splice_point pred
                  else splice_point parent
                end
                else splice_point curr
            | Some curr when curr.sokey = sokey && curr.kind = Sentinel ->
                `Exists curr
            | _ -> `Splice (pred, plink)
          in
          match splice_point parent with
          | `Exists sentinel -> sentinel
          | `Splice (pred, plink) ->
              if plink.marked then install ()
              else begin
                let sentinel = { sokey; kind = Sentinel; next = Atomic.make plink } in
                if
                  yp_cas t.metrics yp_bucket_splice pred.next plink
                    { succ = Some sentinel; marked = false }
                then sentinel
                else install ()
              end
        in
        let sentinel = install () in
        ignore (yp_cas_slot t.metrics yp_bucket_publish table b None (Some sentinel));
        (* Another thread may have installed a different-but-equivalent
           sentinel pointer first; always use the published one. *)
        (match Slots.get table b with Some s -> s | None -> sentinel)

  let bucket_for t h =
    let table = Atomic.get t.table in
    let b = h land (Slots.length table - 1) in
    get_bucket t table b

  let bucket_count t = Slots.length (Atomic.get t.table)

  (* Double the bucket table when the load factor is exceeded.  The
     new array reuses initialized buckets; lazy initialization fills
     the rest. *)
  let maybe_grow t =
    let table = Atomic.get t.table in
    let buckets = Slots.length table in
    if buckets < max_buckets && Atomic.get t.count > buckets * load_factor then begin
      let bigger = Slots.make (buckets * 2) None in
      for b = 0 to buckets - 1 do
        Slots.set bigger b (Slots.get table b)
      done;
      if yp_cas t.metrics yp_grow t.table table bigger then
        Metrics.incr t.metrics Metrics.Expansions
    end

  (* ------------------------------ lookup ---------------------------- *)

  (* Wait-free read: traverse skipping marked nodes without helping.
     Top-level recursion (the old local [go] closure allocated per
     lookup) raising (notrace) on a miss, so a read allocates nothing
     once the bucket sentinel exists. *)
  let rec find_in_list (node : 'v node option) sokey k : 'v =
    Yp.here Yp.Before yp_read_walk;
    match node with
    | None -> raise_notrace Not_found
    | Some n ->
        if n.sokey < sokey then find_in_list (Atomic.get n.next).succ sokey k
        else if n.sokey > sokey then raise_notrace Not_found
        else begin
          match n.kind with
          | Binding b when H.equal b.key k -> (
              match Atomic.get b.state with
              | Live v -> v
              | Dead -> raise_notrace Not_found)
          | Binding _ | Sentinel -> find_in_list (Atomic.get n.next).succ sokey k
        end

  let find t k =
    let h = hash_of k in
    let start = bucket_for t h in
    find_in_list (Atomic.get start.next).succ (regular_sokey h) k

  let lookup t k = match find t k with v -> Some v | exception Not_found -> None
  let mem t k = match find t k with _ -> true | exception Not_found -> false

  (* ------------------------------ updates --------------------------- *)

  type 'v mode = Always | If_absent | If_present | If_value of 'v

  let rec update t k v mode : 'v option =
    let h = hash_of k in
    let sokey = regular_sokey h in
    let start = bucket_for t h in
    let pred, curr = list_find t.metrics start sokey k in
    match curr with
    | Some n when n.sokey = sokey -> (
        match n.kind with
        | Binding b -> (
            match Atomic.get b.state with
            | Dead ->
                (* Logically removed but not yet unlinked: help, retry. *)
                Metrics.incr t.metrics Metrics.Helps;
                bury t.metrics n;
                ignore (list_find t.metrics start sokey k);
                update t k v mode
            | Live existing as live -> (
                match mode with
                | If_absent -> Some existing
                | If_value expected when existing != expected -> Some existing
                | Always | If_present | If_value _ ->
                    if yp_cas t.metrics yp_update_value b.state live (Live v)
                    then Some existing
                    else update t k v mode))
        | Sentinel -> assert false)
    | _ ->
        if (match mode with If_present | If_value _ -> true | Always | If_absent -> false)
        then None
        else begin
          let node =
            {
              sokey;
              kind = Binding { hash = h; key = k; state = Atomic.make (Live v) };
              next = Atomic.make { succ = curr; marked = false };
            }
          in
          let plink = Atomic.get pred.next in
          let same_succ =
            match (plink.succ, curr) with
            | None, None -> true
            | Some a, Some b -> a == b
            | None, Some _ | Some _, None -> false
          in
          if plink.marked || not same_succ then update t k v mode
          else if
            yp_cas t.metrics yp_insert_splice pred.next plink
              { succ = Some node; marked = false }
          then begin
            Atomic.incr t.count;
            maybe_grow t;
            None
          end
          else update t k v mode
        end

  let insert t k v = ignore (update t k v Always)
  let add t k v = update t k v Always
  let put_if_absent t k v = update t k v If_absent
  let replace t k v = update t k v If_present

  let replace_if t k ~expected v =
    match update t k v (If_value expected) with
    | Some p -> p == expected
    | None -> false

  let rec remove_with t k cond : 'v option =
    let h = hash_of k in
    let sokey = regular_sokey h in
    let start = bucket_for t h in
    let _, curr = list_find t.metrics start sokey k in
    match curr with
    | Some n when n.sokey = sokey -> (
        match n.kind with
        | Binding b -> (
            match Atomic.get b.state with
            | Dead ->
                Metrics.incr t.metrics Metrics.Helps;
                bury t.metrics n;
                ignore (list_find t.metrics start sokey k);
                None
            | Live v as live ->
                if not (cond v) then Some v
                else if yp_cas t.metrics yp_remove_kill b.state live Dead
                then begin
                  (* Removal linearized; clean up physically. *)
                  Atomic.decr t.count;
                  bury t.metrics n;
                  ignore (list_find t.metrics start sokey k);
                  Some v
                end
                else remove_with t k cond)
        | Sentinel -> assert false)
    | _ -> None

  let remove t k = remove_with t k (fun _ -> true)

  let remove_if t k ~expected =
    match remove_with t k (fun v -> v == expected) with
    | Some p -> p == expected
    | None -> false

  (* --------------------------- batch operations --------------------- *)

  (* Staged traversal (DESIGN.md §13).  Stage 0 hints every key's
     bucket slot before any sentinel is touched, then the chunk walks
     the ordered list in lockstep — one hop per key per round, the
     successor prefetched one round before it is dispatched on — so up
     to [chunk_cap] independent pointer chases overlap.  The read walk
     mirrors [find_in_list]: wait-free, skips marked nodes without
     helping, treats a Dead binding as a miss. *)

  let scratch_make () =
    {
      s_h = Array.make chunk_cap 0;
      s_so = Array.make chunk_cap 0;
      s_node = Array.make chunk_cap None;
      s_act = Array.make chunk_cap 0;
      s_nact = 0;
      s_hits = 0;
    }

  (* Per-domain scratch pool: [exchange] with the shared dummy instead
     of an option so take/release allocate nothing. *)
  let scratch_take t =
    let slot = (Domain.self () :> int) land (Array.length t.scratch_pool - 1) in
    let s = Atomic.exchange t.scratch_pool.(slot) t.scratch_dummy in
    if Array.length s.s_h = chunk_cap then s else scratch_make ()

  let scratch_release t s =
    let slot = (Domain.self () :> int) land (Array.length t.scratch_pool - 1) in
    Atomic.set t.scratch_pool.(slot) s

  let find_chunk t scr keys ~miss (out : 'v array) base n =
    (* Stage 0: hash every key and hint its bucket slot. *)
    let table = Atomic.get t.table in
    let nb = Slots.length table in
    for p = 0 to n - 1 do
      let h = hash_of (Array.unsafe_get keys (base + p)) in
      scr.s_h.(p) <- h;
      scr.s_so.(p) <- regular_sokey h;
      Slots.prefetch table (h land (nb - 1));
      scr.s_act.(p) <- p
    done;
    (* Stage 1: resolve sentinels (lazily installing missing ones) and
       line up each key at its bucket's first regular position. *)
    for p = 0 to n - 1 do
      let start = bucket_for t scr.s_h.(p) in
      let succ = (Atomic.get start.next).succ in
      (match succ with Some nn -> Prefetch.read nn | None -> ());
      scr.s_node.(p) <- succ
    done;
    scr.s_nact <- n;
    (* Lockstep walk: one hop per active key per round. *)
    while scr.s_nact > 0 do
      let nact = scr.s_nact in
      scr.s_nact <- 0;
      for a = 0 to nact - 1 do
        let p = Array.unsafe_get scr.s_act a in
        let sokey = scr.s_so.(p) in
        Yp.here Yp.Before yp_read_walk;
        match scr.s_node.(p) with
        | None -> Array.unsafe_set out (base + p) miss
        | Some nd ->
            if nd.sokey > sokey then Array.unsafe_set out (base + p) miss
            else begin
              let advance =
                if nd.sokey < sokey then true
                else
                  match nd.kind with
                  | Binding b when H.equal b.key (Array.unsafe_get keys (base + p))
                    ->
                      (match Atomic.get b.state with
                      | Live v ->
                          Array.unsafe_set out (base + p) v;
                          scr.s_hits <- scr.s_hits + 1
                      | Dead -> Array.unsafe_set out (base + p) miss);
                      false
                  | Binding _ | Sentinel -> true
              in
              if advance then begin
                let succ = (Atomic.get nd.next).succ in
                (match succ with Some nn -> Prefetch.read nn | None -> ());
                scr.s_node.(p) <- succ;
                scr.s_act.(scr.s_nact) <- p;
                scr.s_nact <- scr.s_nact + 1
              end
            end
      done
    done

  let rec find_chunks t scr keys ~miss out base total =
    if base < total then begin
      let n = min chunk_cap (total - base) in
      find_chunk t scr keys ~miss out base n;
      find_chunks t scr keys ~miss out (base + n) total
    end

  let find_batch t keys ~miss out =
    let total = Array.length keys in
    if Array.length out < total then
      invalid_arg "Split_ordered.find_batch: out array shorter than keys";
    let scr = scratch_take t in
    scr.s_hits <- 0;
    find_chunks t scr keys ~miss out 0 total;
    let hits = scr.s_hits in
    scratch_release t scr;
    hits

  (* Warm-up for batched writers: hint every key's bucket slot, ensure
     the sentinel exists and pull in its first successor, then run the
     scalar CAS machinery — [update]/[remove_with] redo [bucket_for]
     against now-warm lines.  Writers mutate shared list links, so
     there is no lockstep CAS phase to stage beyond this. *)
  let warm_chunk t scr keys base n =
    let table = Atomic.get t.table in
    let nb = Slots.length table in
    for p = 0 to n - 1 do
      let h = hash_of (Array.unsafe_get keys (base + p)) in
      scr.s_h.(p) <- h;
      Slots.prefetch table (h land (nb - 1))
    done;
    for p = 0 to n - 1 do
      let start = bucket_for t scr.s_h.(p) in
      match (Atomic.get start.next).succ with
      | Some nn -> Prefetch.read nn
      | None -> ()
    done

  let rec insert_chunks t scr keys vals base total =
    if base < total then begin
      let n = min chunk_cap (total - base) in
      warm_chunk t scr keys base n;
      for p = 0 to n - 1 do
        insert t (Array.unsafe_get keys (base + p)) (Array.unsafe_get vals (base + p))
      done;
      insert_chunks t scr keys vals (base + n) total
    end

  let insert_batch t keys vals =
    if Array.length keys <> Array.length vals then
      invalid_arg "Split_ordered.insert_batch: keys and vals differ in length";
    let scr = scratch_take t in
    insert_chunks t scr keys vals 0 (Array.length keys);
    scratch_release t scr

  let rec remove_chunks t scr keys base total =
    if base < total then begin
      let n = min chunk_cap (total - base) in
      warm_chunk t scr keys base n;
      for p = 0 to n - 1 do
        match remove t (Array.unsafe_get keys (base + p)) with
        | Some _ -> scr.s_hits <- scr.s_hits + 1
        | None -> ()
      done;
      remove_chunks t scr keys (base + n) total
    end

  let remove_batch t keys =
    let scr = scratch_take t in
    scr.s_hits <- 0;
    remove_chunks t scr keys 0 (Array.length keys);
    let removed = scr.s_hits in
    scratch_release t scr;
    removed

  (* ------------------------- aggregate queries ---------------------- *)

  let fold f acc t =
    let rec go acc (node : 'v node option) =
      match node with
      | None -> acc
      | Some n ->
          let acc =
            match n.kind with
            | Binding b -> (
                match Atomic.get b.state with
                | Live v -> f acc b.key v
                | Dead -> acc)
            | Sentinel -> acc
          in
          go acc (Atomic.get n.next).succ
    in
    go acc (Atomic.get t.list_head.next).succ

  let iter f t = fold (fun () k v -> f k v) () t
  let size t = fold (fun n _ _ -> n + 1) 0 t
  let is_empty t = size t = 0
  let to_list t = fold (fun acc k v -> (k, v) :: acc) [] t

  (* Structural invariants, checked during quiescence. *)
  let validate t =
    let errors = ref [] in
    let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
    let rec walk (node : 'v node option) last =
      match node with
      | None -> ()
      | Some n ->
          let link = Atomic.get n.next in
          if link.marked then err "marked node reachable during quiescence";
          if n.sokey < last then err "split-order keys not sorted"
          else if n.sokey = last && n.sokey land 1 = 0 then
            err "duplicate sentinel sokey %#x" n.sokey;
          (match n.kind with
          | Sentinel ->
              if n.sokey land 1 <> 0 then err "sentinel with odd sokey"
          | Binding b -> (
              if n.sokey land 1 <> 1 then err "binding with even sokey";
              if regular_sokey b.hash <> n.sokey then err "binding sokey mismatch";
              if hash_of b.key <> b.hash then err "binding hash mismatch";
              match Atomic.get b.state with
              | Dead -> err "dead binding reachable during quiescence"
              | Live _ -> ()));
          walk link.succ n.sokey
    in
    walk (Some t.list_head) min_int;
    let table = Atomic.get t.table in
    for b = 0 to Slots.length table - 1 do
      match Slots.get table b with
      | None -> ()
      | Some sentinel ->
          if sentinel.kind <> Sentinel then err "bucket %d points at a binding" b;
          if sentinel.sokey <> sentinel_sokey b then
            err "bucket %d sentinel has wrong sokey" b
    done;
    match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))

  (* Scrub: active residue sweep (DESIGN.md §9).  One pred-based pass
     over the whole list finishes every abandoned removal (Dead
     bindings get their link marked, marked nodes get unlinked) and
     every abandoned bucket initialisation (a sentinel spliced into the
     list whose table slot is still empty gets published).  Each step
     is the same helping/cleanup a regular operation performs, so
     scrubbing is safe under live traffic.  Lazily uninitialized
     buckets whose sentinel was never created are NOT residue — they
     are the normal resting state — so a quiescent clean map yields
     0 repairs. *)
  let scrub t =
    let repairs = ref 0 in
    let publish_orphan (sentinel : 'v node) =
      let table = Atomic.get t.table in
      (* sokey = reverse_bits32 b lsl 1, and reversal is an involution. *)
      let b = Bits.reverse_bits32 (sentinel.sokey lsr 1) in
      if b >= 0 && b < Slots.length table then
        match Slots.get table b with
        | None ->
            if yp_cas_slot t.metrics yp_bucket_publish table b None (Some sentinel)
            then incr repairs
        | Some _ -> ()
    in
    let rec sweep (pred : 'v node) budget =
      if budget > 0 then
        let plink = Atomic.get pred.next in
        match plink.succ with
        | None -> ()
        | Some curr ->
            let clink = Atomic.get curr.next in
            if clink.marked then begin
              let repl = { succ = clink.succ; marked = false } in
              if yp_cas t.metrics yp_unlink pred.next plink repl then incr repairs;
              (* Either way re-examine [pred]: the link changed. *)
              sweep pred (budget - 1)
            end
            else begin
              (match curr.kind with
              | Binding b -> (
                  match Atomic.get b.state with
                  | Dead ->
                      (* Killed but never buried: finish the removal. *)
                      bury t.metrics curr;
                      incr repairs
                  | Live _ -> ())
              | Sentinel -> publish_orphan curr);
              if (Atomic.get curr.next).marked then
                (* Just buried (or marked concurrently): unlink it
                   before moving on. *)
                sweep pred (budget - 1)
              else sweep curr budget
            end
    in
    (* The budget bounds re-examination under concurrent writers; a
       quiescent list needs exactly one pass. *)
    sweep t.list_head (1 lsl 22);
    Metrics.add t.metrics Metrics.Scrub_repairs !repairs;
    !repairs

  let metrics t = t.metrics
  let stats t = Metrics.snapshot t.metrics
  let reset_stats t = Metrics.reset t.metrics

  (* Word-cost model (DESIGN.md): node = 4 + link box 2 + link record 3;
     binding payload = 4 + state box 2 + Live box 2; table = array +
     per-slot overhead + Some boxes for initialized buckets. *)
  let footprint_words t =
    let rec go acc (node : 'v node option) =
      match node with
      | None -> acc
      | Some n ->
          let words = match n.kind with Sentinel -> 9 | Binding _ -> 9 + 8 in
          go (acc + words) (Atomic.get n.next).succ
    in
    let table = Atomic.get t.table in
    let table_words =
      Slots.fold
        (fun acc slot -> acc + (match slot with None -> 0 | Some _ -> 2))
        (1 + ((1 + Slots.overhead_words_per_slot) * Slots.length table))
        table
    in
    go table_words (Some t.list_head)
end
