(** Lock-free extensible hash map with recursive split-ordering
    (Shalev & Shavit, "Split-Ordered Lists", JACM 2006) — the
    [ConcurrentHashMap] stand-in for the paper's evaluation.

    All bindings live in a single lock-free ordered linked list keyed
    by the bit-reversed 32-bit hash ("split-order key"); the bucket
    table is an array of lazily-initialized sentinel ("dummy") nodes
    pointing into the list.  Doubling the table never moves a binding:
    a new bucket's sentinel is spliced next to its parent bucket's,
    which is what makes growth lock-free — and is the "resize" cost
    the cache-trie paper contrasts tries against.

    Values are updated in place through a per-node [Atomic.t], with a
    deletion-mark recheck that keeps updates linearizable. *)

module Make (H : Ct_util.Hashing.HASHABLE) : sig
  include Ct_util.Map_intf.CONCURRENT_MAP with type key = H.t

  val bucket_count : 'v t -> int
  (** Current size of the bucket table (doubles as the map grows). *)

  (** [validate] (from {!Ct_util.Map_intf.CONCURRENT_MAP}) checks, for
      a quiescent map: the list is strictly sorted by split-order key
      (sentinels even, bindings odd), no marked or dead nodes remain
      reachable, and every initialized bucket points at a sentinel
      with the right split-order key.  [scrub] buries dead bindings,
      unlinks marked nodes, and publishes any sentinel present in the
      list but missing from the bucket table (abandoned bucket
      initialisation). *)
end
