(* Lock-striped chaining hash table with wait-free reads: bucket heads
   live in an atomic slot array (Ct_util.Slots) holding immutable
   lists; writers take the stripe lock for their bucket, readers never
   lock.  Resize locks all stripes in order.  A bucket store under the
   stripe lock needs no CAS — [Slots.set]'s release ordering is enough
   to publish the new cons cell to lock-free readers. *)

module Hashing = Ct_util.Hashing
module Slots = Ct_util.Slots
module Metrics = Ct_util.Metrics

let n_stripes = 16
let initial_buckets = 16
let load_factor = 4
let max_buckets = 1 lsl 22

module Make (H : Hashing.HASHABLE) = struct
  type key = H.t

  let name = "chm-striped"

  type 'v bucket = (int * key * 'v) list

  type 'v t = {
    mutable table : 'v bucket Slots.t;  (* replaced under all locks *)
    stripes : Mutex.t array;
    count : int Atomic.t;
    metrics : Metrics.t;
  }

  let create () =
    {
      table = Slots.make initial_buckets [];
      stripes = Array.init n_stripes (fun _ -> Mutex.create ());
      count = Atomic.make 0;
      metrics = Metrics.create ~family:name;
    }

  let hash_of k = H.hash k land Hashing.mask
  let bucket_count t = Slots.length t.table

  (* Manual unlock on both exits instead of [Fun.protect]: protect
     allocates its [finally] closure and exception-wrapping machinery
     on every write. *)
  let with_stripe t h f =
    let m = t.stripes.(h land (n_stripes - 1)) in
    Mutex.lock m;
    match f () with
    | r ->
        Mutex.unlock m;
        r
    | exception e ->
        Mutex.unlock m;
        raise e

  let with_all_stripes t f =
    Array.iter Mutex.lock t.stripes;
    match f () with
    | r ->
        Array.iter Mutex.unlock t.stripes;
        r
    | exception e ->
        Array.iter Mutex.unlock t.stripes;
        raise e

  let rec find_bucket entries h k =
    match entries with
    | [] -> None
    | (h', k', v') :: rest ->
        if h' = h && H.equal k' k then Some v' else find_bucket rest h k

  (* Raising twin of [find_bucket] for the allocation-free read path. *)
  let rec find_in_bucket entries h k =
    match entries with
    | [] -> raise_notrace Not_found
    | (h', k', v') :: rest ->
        if h' = h && H.equal k' k then v' else find_in_bucket rest h k

  let find t k =
    let h = hash_of k in
    let table = t.table in
    find_in_bucket (Slots.get table (h land (Slots.length table - 1))) h k

  let lookup t k = match find t k with v -> Some v | exception Not_found -> None
  let mem t k = match find t k with _ -> true | exception Not_found -> false

  let resize_if_needed t =
    if
      Atomic.get t.count > bucket_count t * load_factor
      && bucket_count t < max_buckets
    then
      with_all_stripes t (fun () ->
          let old = t.table in
          if Atomic.get t.count > Slots.length old * load_factor then begin
            let size = Slots.length old * 2 in
            let fresh = Slots.make size [] in
            Slots.iter
              (fun entries ->
                List.iter
                  (fun ((h, _, _) as e) ->
                    let idx = h land (size - 1) in
                    Slots.set fresh idx (e :: Slots.get fresh idx))
                  entries)
              old;
            t.table <- fresh;
            Metrics.incr t.metrics Metrics.Expansions
          end)

  type 'v mode = Always | If_absent | If_present | If_value of 'v

  let update t k v mode : 'v option =
    let h = hash_of k in
    let previous =
      with_stripe t h (fun () ->
          let table = t.table in
          let idx = h land (Slots.length table - 1) in
          let entries = Slots.get table idx in
          let previous = find_bucket entries h k in
          let proceed =
            match (mode, previous) with
            | If_absent, Some _ -> false
            | (If_present | If_value _), None -> false
            | If_value expected, Some p -> p == expected
            | (Always | If_absent | If_present), _ -> true
          in
          if proceed then begin
            let without =
              if previous = None then entries
              else List.filter (fun (h', k', _) -> not (h' = h && H.equal k' k)) entries
            in
            Slots.set table idx ((h, k, v) :: without);
            if previous = None then Atomic.incr t.count
          end;
          previous)
    in
    resize_if_needed t;
    previous

  let insert t k v = ignore (update t k v Always)
  let add t k v = update t k v Always
  let put_if_absent t k v = update t k v If_absent
  let replace t k v = update t k v If_present

  let replace_if t k ~expected v =
    match update t k v (If_value expected) with
    | Some p -> p == expected
    | None -> false

  let remove_with t k cond : 'v option =
    let h = hash_of k in
    with_stripe t h (fun () ->
        let table = t.table in
        let idx = h land (Slots.length table - 1) in
        let entries = Slots.get table idx in
        match find_bucket entries h k with
        | None -> None
        | Some v as previous ->
            if cond v then begin
              Slots.set table idx
                (List.filter (fun (h', k', _) -> not (h' = h && H.equal k' k)) entries);
              Atomic.decr t.count
            end;
            previous)

  let remove t k = remove_with t k (fun _ -> true)

  let remove_if t k ~expected =
    match remove_with t k (fun v -> v == expected) with
    | Some p -> p == expected
    | None -> false

  let fold f acc t =
    Slots.fold
      (fun acc entries ->
        List.fold_left (fun acc (_, k, v) -> f acc k v) acc entries)
      acc t.table

  let iter f t = fold (fun () k v -> f k v) () t
  let size t = fold (fun n _ _ -> n + 1) 0 t
  let is_empty t = size t = 0
  let to_list t = fold (fun acc k v -> (k, v) :: acc) [] t

  (* Structural invariants, checked during quiescence: every entry
     hangs in the bucket its hash selects, stored hashes agree with the
     key hash, no bucket holds a duplicate key, and the count matches
     the entries. *)
  let validate t =
    let errors = ref [] in
    let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
    let table = t.table in
    let nbuckets = Slots.length table in
    if nbuckets land (nbuckets - 1) <> 0 then
      err "bucket count %d is not a power of two" nbuckets;
    let entries = ref 0 in
    for idx = 0 to nbuckets - 1 do
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (h, k, _) ->
          incr entries;
          if h <> hash_of k then
            err "bucket %d: stored hash %#x differs from key hash %#x" idx h
              (hash_of k);
          if h land (nbuckets - 1) <> idx then
            err "entry with hash %#x misplaced in bucket %d" h idx;
          if Hashtbl.mem seen (h, k) then err "bucket %d holds a duplicate key" idx
          else Hashtbl.add seen (h, k) ())
        (Slots.get table idx)
    done;
    if !entries <> Atomic.get t.count then
      err "count %d does not match %d stored entries" (Atomic.get t.count) !entries;
    match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))

  (* Lock-based writers leave no lock-free residue: an operation either
     holds the stripe lock or has fully published.  Nothing to repair. *)
  let scrub _t = 0

  let metrics t = t.metrics
  let stats t = Metrics.snapshot t.metrics
  let reset_stats t = Metrics.reset t.metrics

  (* Word-cost model: table array + per-slot overhead + 7-word cells
     (cons 3 + tuple of 3 = 4 words). *)
  let footprint_words t =
    let cells = Atomic.get t.count in
    1
    + ((1 + Slots.overhead_words_per_slot) * bucket_count t)
    + (7 * cells) + n_stripes

  (* Writers serialize on stripe locks, so staging would only reorder
     lock acquisitions; reads are one bucket load + a short list walk.
     The scalar loop is the honest implementation. *)
  include Ct_util.Map_intf.Batch_fallback (struct
    type nonrec key = key
    type nonrec 'v t = 'v t

    let find = find
    let insert = insert
    let remove = remove
  end)
end
