(* Quickstart: the cache-trie public API in two minutes.

     dune exec examples/quickstart.exe *)

(* Instantiate the map for your key type.  Ct_util.Hashing ships ready
   key modules for int and string; any type with [equal] and a
   well-distributed [hash] works. *)
module Dict = Cachetrie.Make (Ct_util.Hashing.String_key)

let () =
  let t : int Dict.t = Dict.create () in

  (* Basic operations: every one of these is lock-free and safe to call
     from any number of domains concurrently. *)
  Dict.insert t "mercury" 1;
  Dict.insert t "venus" 2;
  Dict.insert t "earth" 3;
  assert (Dict.lookup t "earth" = Some 3);
  assert (Dict.lookup t "pluto" = None);

  (* put/putIfAbsent/replace follow the JDK ConcurrentMap contract. *)
  assert (Dict.add t "earth" 30 = Some 3);
  assert (Dict.put_if_absent t "mars" 4 = None);
  assert (Dict.put_if_absent t "mars" 44 = Some 4);
  assert (Dict.replace t "pluto" 9 = None);
  assert (Dict.remove t "venus" = Some 2);

  (* replace_if is a compare-and-swap on the binding: the building
     block for atomic read-modify-write loops. *)
  let rec bump key =
    match Dict.lookup t key with
    | None -> ignore (Dict.put_if_absent t key 1)
    | Some v -> if not (Dict.replace_if t key ~expected:v (v + 1)) then bump key
  in
  bump "earth";

  (* Weakly consistent aggregates. *)
  Printf.printf "size: %d\n" (Dict.size t);
  Dict.iter (fun k v -> Printf.printf "  %-8s -> %d\n" k v) t;

  (* The trie exposes its paper-level internals for inspection. *)
  let stats = Dict.cache_stats t in
  Printf.printf "expansions so far: %d (cache level: %s)\n"
    stats.Cachetrie.expansions
    (match stats.Cachetrie.cache_level with
    | None -> "not yet installed — the trie is small"
    | Some l -> string_of_int l);

  (* Concurrent use: spawn domains freely. *)
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to 999 do
              Dict.insert t (Printf.sprintf "key-%d-%d" d i) i
            done))
  in
  List.iter Domain.join domains;
  Printf.printf "after 4 domains x 1000 inserts: size = %d\n" (Dict.size t);
  print_endline "quickstart OK"
