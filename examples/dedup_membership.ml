(* Parallel graph exploration with a shared visited-set — the
   deduplication workload where a concurrent trie shines: the set only
   grows, almost every probe is a lookup, and put_if_absent arbitrates
   ownership of newly discovered nodes exactly once.

   The graph is a synthetic random digraph over 2^20 vertices; domains
   run a work-list BFS from random seeds and claim vertices through
   one shared cache-trie.

     dune exec examples/dedup_membership.exe *)

module Visited = Cachetrie.Make (Ct_util.Hashing.Int_key)
module Rng = Ct_util.Rng

let n_vertices = 1 lsl 18
let out_degree = 4
let n_domains = 4

(* Edges computed on the fly from a hash — the graph never needs to be
   materialized. *)
let successors v =
  List.init out_degree (fun i ->
      Rng.mix64 ((v * out_degree) + i) land (n_vertices - 1))

let () =
  let visited : int Visited.t = Visited.create () in
  let claimed = Array.make n_domains 0 in
  let dt =
    Harness.Parallel.run_timed ~domains:n_domains (fun d ->
        let stack = Stack.create () in
        (* Distinct seeds per domain; frontiers overlap quickly, so the
           visited set gets heavily shared. *)
        Stack.push (Rng.mix64 (d + 1) land (n_vertices - 1)) stack;
        let mine = ref 0 in
        while not (Stack.is_empty stack) do
          let v = Stack.pop stack in
          (* put_if_absent returns None exactly once per vertex: the
             winner expands it, everyone else skips. *)
          if Visited.put_if_absent visited v d = None then begin
            incr mine;
            List.iter
              (fun s -> if not (Visited.mem visited s) then Stack.push s stack)
              (successors v)
          end
        done;
        claimed.(d) <- !mine)
  in
  let total_claimed = Array.fold_left ( + ) 0 claimed in
  let set_size = Visited.size visited in
  (* Every visited vertex was claimed exactly once. *)
  assert (total_claimed = set_size);
  Printf.printf "explored %d vertices in %.0f ms (%d domains)\n" set_size
    (dt *. 1000.0) n_domains;
  Array.iteri (fun d c -> Printf.printf "  domain %d claimed %d\n" d c) claimed;
  let stats = Visited.cache_stats visited in
  Printf.printf "cache level: %s, expansions: %d\n"
    (match stats.Cachetrie.cache_level with
    | None -> "-"
    | Some l -> string_of_int l)
    stats.Cachetrie.expansions;
  print_endline "dedup_membership OK"
