(* KV serving layer end to end — start an overload-hardened server
   over a cache-trie, then drive it with the synchronous client:
   put/get/remove round-trips, and a request whose deadline budget
   expires while a worker stall holds the queue, coming back as a
   typed [Deadline_exceeded] instead of a silent hang.

     dune exec examples/kv_client.exe *)

module Map = Cachetrie.Make (Ct_util.Hashing.Int_key)
module Server = Kv.Server.Make (Map)

let show what reply =
  Printf.printf "%-28s -> %s\n%!" what (Kv.Protocol.reply_label reply)

let () =
  let map = Map.create () in
  let config =
    { (Kv.Server.default_config ()) with Kv.Server.workers = 2 }
  in
  let srv = Server.start ~config map in
  let c = Kv.Client.connect ~port:(Server.port srv) () in

  (* Plain KV traffic: every reply is typed, including misses. *)
  Printf.printf "server on 127.0.0.1:%d, ping %b\n\n" (Server.port srv)
    (Kv.Client.ping c);
  show "put 1 \"one\"" (Kv.Client.put c 1 "one");
  show "put 1 \"uno\" (replace)" (Kv.Client.put c 1 "uno");
  show "get 1" (Kv.Client.get c 1);
  (match Kv.Client.get c 1 with
  | Kv.Protocol.Value v -> Printf.printf "  (value = %S)\n" v
  | _ -> ());
  show "get 2 (absent)" (Kv.Client.get c 2);
  show "remove 1" (Kv.Client.remove c 1);
  show "get 1 (after remove)" (Kv.Client.get c 1);

  (* Deadline-exceeded path: a blocker request trips a one-shot 0.3s
     stall at the worker's yield-point site, so a second request on
     the same key (same worker shard) expires its 50ms budget while
     queued behind it.  The budget is checked at dequeue, before the
     map is touched, and the server answers with a typed reply rather
     than leaving the client waiting. *)
  print_newline ();
  let stall =
    Chaos.Net.stall_sites ~one_in:1 ~max_stalls:1 ~duration:0.3
      "server.worker."
  in
  let blocker =
    Thread.create
      (fun () ->
        let c2 = Kv.Client.connect ~port:(Server.port srv) () in
        ignore (Kv.Client.get c2 2);
        Kv.Client.close c2)
      ()
  in
  Thread.delay 0.05;
  show "get 2 with 50ms deadline"
    (Kv.Client.get c ~deadline_ns:50_000_000 2);
  Printf.printf "  (worker stalls fired: %d)\n" (Chaos.Net.stalls_fired stall);
  Thread.join blocker;
  Chaos.clear ();

  (* A comfortable budget on a healthy server succeeds as usual. *)
  show "get 2 with 5s deadline" (Kv.Client.get c ~deadline_ns:5_000_000_000 2);

  Kv.Client.close c;
  let flushed = Server.drain srv in
  Printf.printf "\ndrained (flushed=%b); executed=%d deadline_expired=%d\n"
    flushed (Server.stat srv "executed")
    (Server.stat srv "deadline_expired")
