(* repro — command-line front end for the paper's experiments.

   Each subcommand regenerates one table/figure of the evaluation:

     repro fig9 [--full]     memory footprint (Figure 9)
     repro fig10 [--full]    single-threaded lookup/insert (Figure 10)
     repro fig11 [--full]    contended parallel insert (Figure 11)
     repro fig12 [--full]    disjoint parallel insert (Figure 12)
     repro fig13 [--full]    parallel lookup (Figure 13)
     repro hist [--full]     level-occupancy histograms (Artifact A.5.1)
     repro theory [--full]   Theorems 4.1-4.4 vs a real trie
     repro ablation [--full] cache on/off and max_misses sweep
     repro obs [--full|--demo] observability exports / flight-recorder demo
     repro cache [--full]    bounded cache tier self-check (budget, TTL,
                             negative caching, serving-layer cache mode)
     repro recover [--crashes N] durable-mode crash-recovery storm
     repro trace [--out F]   end-to-end tracing self-check (span trees,
                             tail exemplars, Chrome trace export)
     repro all [--full]      everything above *)

open Cmdliner

let scale_term =
  let doc = "Run at paper-like sizes (minutes) instead of quick smoke sizes." in
  let full = Arg.(value & flag & info [ "full" ] ~doc) in
  Term.(const (fun f -> if f then Harness.Suites.Full else Harness.Suites.Quick) $ full)

let timeout_term =
  let doc =
    "Kill the run after $(docv) seconds with exit status 124 — the hard \
     deadline CI relies on when an experiment wedges instead of failing."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)

(* A detached watchdog thread, not an alarm: bechamel and the domains
   it spawns must keep their signal dispositions untouched. *)
let arm_timeout = function
  | None -> ()
  | Some seconds ->
      if seconds <= 0.0 then begin
        prerr_endline "repro: --timeout must be positive";
        exit 2
      end;
      ignore
        (Thread.create
           (fun () ->
             Unix.sleepf seconds;
             Printf.eprintf "repro: timeout of %gs exceeded\n%!" seconds;
             exit 124)
           ())

(* Nonzero exit on any experiment failure, so CI and scripts can trust
   the status code instead of scraping output. *)
let guarded timeout f scale =
  arm_timeout timeout;
  match f scale with
  | () -> 0
  | exception e ->
      Printf.eprintf "repro: experiment failed: %s\n%!" (Printexc.to_string e);
      1

let experiment name doc f =
  let run timeout scale = guarded timeout f scale in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ timeout_term $ scale_term)

let all_experiments =
  [
    ("fig9", "Memory footprint comparison (Figure 9, Artifact A.5.2).",
     Harness.Suites.fig9_footprint);
    ("fig10", "Single-threaded lookup and insert (Figure 10).",
     Harness.Suites.fig10_single_threaded);
    ("fig11", "Multi-threaded insert, high contention (Figure 11).",
     Harness.Suites.fig11_insert_high_contention);
    ("fig12", "Multi-threaded insert, low contention (Figure 12).",
     Harness.Suites.fig12_insert_low_contention);
    ("fig13", "Multi-threaded lookup (Figure 13).",
     Harness.Suites.fig13_parallel_lookup);
    ("hist", "Level-occupancy histograms (Artifact A.5.1).",
     Harness.Suites.histograms);
    ("theory", "Depth-distribution theory, Theorems 4.1-4.4 (Section 4.1).",
     Harness.Suites.theory);
    ("ablation", "Cache ablation: on/off and max_misses sweep.",
     Harness.Suites.ablation_cache);
    ("ablation-narrow", "Narrow-node (4-slot) ablation: insert time and footprint.",
     Harness.Suites.ablation_narrow);
    ("mixed", "Extension: YCSB-style mixed workloads across structures.",
     Harness.Suites.mixed_workload);
    ("zipf", "Extension: Zipf-skewed lookup throughput.",
     Harness.Suites.zipf_lookup);
    ("remove", "Extension: remove throughput and compression behaviour.",
     Harness.Suites.remove_throughput);
    ("replay", "Extension: production-style trace replay across structures.",
     Harness.Suites.trace_replay);
  ]

(* --------------------------- obs subcommand ------------------------- *)

(* repro obs [--full]        traced workload with metrics + latency +
                             exports; exits nonzero if the counter
                             invariants fail or an export is empty
   repro obs --demo          chaos crash-storm with the flight recorder
                             installed; prints the watchdog post-mortem
                             and exits nonzero if the flight dump is
                             empty or out of stamp order *)

module Yp = Ct_util.Yieldpoint
module Rng = Ct_util.Rng
module Progress = Ct_util.Progress
module Json = Harness.Report.Json
module Obs_map = Cachetrie.Make (Ct_util.Hashing.Int_key)
module Obs_replay = Harness.Trace.Replay (Obs_map)

let obs_await what f =
  (* Monotonic deadline: a wall-clock step must not stretch or cut
     the wait window (same rule as Server.drain). *)
  let deadline = Ct_util.Clock.now_ns () + 10_000_000_000 in
  while (not (f ())) && Ct_util.Clock.now_ns () < deadline do
    Unix.sleepf 1e-4
  done;
  if not (f ()) then failwith ("repro obs: timed out waiting for " ^ what)

(* Traced workload: a single-domain replay whose lookup count the
   structure's own cache counters must reproduce exactly (every probe
   classified once), then a multi-domain timed replay feeding the
   latency histogram, then both exports. *)
let obs_export scale =
  let failures = ref [] in
  let check what ok =
    if not ok then failures := what :: !failures;
    Printf.printf "%-52s %s\n" what (if ok then "ok" else "FAIL")
  in
  let n =
    match scale with Harness.Suites.Quick -> 100_000 | Full -> 2_000_000
  in
  let trace = Harness.Trace.generate Harness.Trace.churn n in
  (* Phase 1 — accounting, one domain so no retry can re-probe. *)
  let t = Obs_map.create () in
  let prefill = Harness.Trace.churn.Harness.Trace.universe / 2 in
  let o1 =
    Obs_replay.replay ~prefill t
      (Array.sub trace 0 (min n 50_000))
  in
  let stats = Obs_map.stats t in
  let stat l = match List.assoc_opt l stats with Some v -> v | None -> 0 in
  check "cache_hits + cache_misses = lookups issued"
    (stat "cache_hits" + stat "cache_misses" = o1.Harness.Trace.hits + o1.Harness.Trace.misses);
  check "cas_retries <= cas_attempts (all families)"
    (Harness.Obs_report.invariants () = []);
  List.iter print_endline (Harness.Obs_report.invariants ());
  (* Phase 2 — timed parallel replay into the histogram. *)
  let t2 = Obs_map.create () in
  let hist = Obs.Latency.create ~label:"trace-op" in
  let domains = min 4 (Harness.Parallel.available_domains ()) in
  let o2 = Obs_replay.replay_parallel ~prefill ~latency:hist t2 ~domains trace in
  (match o2.Harness.Trace.latency with
  | None -> check "timed replay produced a latency summary" false
  | Some l ->
      Printf.printf
        "%d ops over %d domains: p50 %.0f ns, p99 %.0f ns, p99.9 %.0f ns\n"
        l.Harness.Trace.timed_ops domains l.Harness.Trace.p50_ns
        l.Harness.Trace.p99_ns l.Harness.Trace.p999_ns;
      check "histogram count matches timed ops"
        (Obs.Latency.total hist = l.Harness.Trace.timed_ops));
  (* Exports: deterministic JSON and Prometheus text. *)
  let json =
    Json.Obj
      [
        ("metrics", Harness.Obs_report.metrics_json ());
        ("latency", Harness.Obs_report.latency_json [ ("trace-op", hist) ]);
      ]
  in
  Json.write_file "obs_metrics.json" json;
  let prom = Obs.Export.prometheus ~histograms:[ ("trace-op", hist) ] () in
  let oc = open_out "obs_metrics.prom" in
  output_string oc prom;
  close_out oc;
  print_endline "wrote obs_metrics.prom";
  check "prometheus export has counter samples"
    (String.length prom > 0
    && String.split_on_char '\n' prom
       |> List.exists (fun l ->
              String.length l > 0 && l.[0] <> '#'));
  check "json export is non-trivial" (String.length (Json.to_string json) > 64);
  !failures

(* Crash-storm demo: flight recorder + progress share the observer
   slot; a parked victim makes the watchdog stall report fire, and the
   post-mortem embeds the stamp-ordered event dump. *)
let obs_demo () =
  let failures = ref [] in
  let check what ok =
    if not ok then failures := what :: !failures;
    Printf.printf "%-52s %s\n" what (if ok then "ok" else "FAIL")
  in
  let progress = Progress.create ~slots:4 () in
  let flight = Obs.Flight.create ~size:512 () in
  Obs.Flight.install_with_progress flight progress;
  let finally () =
    Chaos.clear ();
    Obs.Flight.uninstall ()
  in
  Fun.protect ~finally @@ fun () ->
  let t = Obs_map.create () in
  for k = 0 to 63 do
    Obs_map.insert t (1_000_000 + k) k
  done;
  (* Storm: crash victims mid-operation at random yield points. *)
  let sites = Array.of_list (Yp.with_prefix "cachetrie.") in
  let rng = Rng.create 0xD00D in
  let crashes = ref 0 in
  for k = 1 to 100 do
    let s = sites.(Rng.next_int rng (Array.length sites)) in
    let phase = if Rng.next_int rng 2 = 0 then Yp.Before else Yp.After in
    let inj = Chaos.crash ~phase ~skip:(Rng.next_int rng 2) s in
    let crashed =
      Domain.join
        (Domain.spawn (fun () ->
             Progress.attach progress 0;
             let r =
               Chaos.as_victim inj (fun () ->
                   try
                     (if Rng.next_int rng 2 = 0 then Obs_map.insert t k k
                      else ignore (Obs_map.remove t k));
                     false
                   with Chaos.Injected_crash _ -> true)
             in
             Progress.detach progress;
             r))
    in
    Chaos.clear ();
    if crashed then incr crashes
  done;
  Printf.printf "storm: %d/100 operations crashed mid-flight\n" !crashes;
  check "storm fired crashes" (!crashes > 0);
  (* Park one victim so the watchdog has a live stall to report. *)
  let announce =
    List.find (fun s -> Yp.name s = "cachetrie.txn.announce") (Yp.all ())
  in
  let inj = Chaos.stall ~phase:Yp.After announce in
  Obs_map.insert t 7 1;
  let victim =
    Domain.spawn (fun () ->
        Progress.attach progress 0;
        Chaos.as_victim inj (fun () -> Obs_map.insert t 7 2);
        Progress.detach progress)
  in
  obs_await "victim parked mid-transaction" (fun () -> Chaos.stalled inj);
  let wd = Harness.Watchdog.create ~stall_epochs:2 ~flight progress in
  for _ = 1 to 3 do
    ignore (Harness.Watchdog.step wd)
  done;
  let pm = Harness.Watchdog.post_mortem wd in
  print_newline ();
  print_string pm;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check "watchdog reports the parked victim"
    (Harness.Watchdog.stalled wd <> []);
  check "post-mortem embeds the flight dump" (contains pm "flight recorder");
  (* Honest flight-dump checks: nonempty and strictly stamp-ordered. *)
  let dump = Obs.Flight.dump flight in
  check "flight dump is non-empty" (dump <> []);
  let rec ordered = function
    | a :: (b :: _ as rest) ->
        a.Obs.Flight.stamp < b.Obs.Flight.stamp && ordered rest
    | _ -> true
  in
  check "flight dump is strictly stamp-ordered" (ordered dump);
  check "recorder saw the storm's yield points"
    (Obs.Flight.recorded flight > 0);
  (* Heal and release. *)
  let repairs = Obs_map.scrub t in
  check "scrub committed the parked transaction"
    (repairs >= 1 && Obs_map.lookup t 7 = Some 2);
  Chaos.release inj;
  Domain.join victim;
  check "structure validates after the storm"
    (Obs_map.validate t = Ok ());
  !failures

let obs_run timeout demo scale =
  arm_timeout timeout;
  match if demo then obs_demo () else obs_export scale with
  | [] -> 0
  | failures ->
      List.iter
        (fun f -> Printf.eprintf "repro obs: FAILED: %s\n%!" f)
        (List.rev failures);
      1
  | exception e ->
      Printf.eprintf "repro obs: failed: %s\n%!" (Printexc.to_string e);
      1

let obs_cmd =
  let demo_term =
    Arg.(
      value & flag
      & info [ "demo" ]
          ~doc:
            "Run the chaos crash-storm demo with the flight recorder and \
             print the watchdog post-mortem, instead of the export flow.")
  in
  Cmd.v
    (Cmd.info "obs"
       ~doc:
         "Observability: replay a traced workload with metrics and latency \
          histograms, check the counter invariants, and export JSON + \
          Prometheus text; or (--demo) run a crash storm with the flight \
          recorder and print a stamp-ordered post-mortem.")
    Term.(const obs_run $ timeout_term $ demo_term $ scale_term)

(* --------------------------- mc subcommand -------------------------- *)

(* repro mc                          explore the whole catalogue
   repro mc --scenario NAME          explore one scenario
   repro mc --trace FILE             replay a recorded counterexample

   Replay exits 0 only when the trace reproduces its failure exactly;
   a schedule that diverges (the structure's yield sequence changed) or
   no longer fails (the bug is gone — update the pinned trace) exits
   nonzero, so CI can keep minimized counterexamples honest. *)

let mc_explore_one sc =
  match Mc.explore ~preemption_bound:3 ~max_schedules:60_000 sc with
  | Mc.Pass { executions; complete } ->
      Printf.printf "%-40s pass (%d schedules%s)\n%!" sc.Mc.sname executions
        (if complete then ", complete" else ", budget exhausted");
      true
  | Mc.Fail c ->
      Printf.printf "%-40s FAIL: %s\n%s%!" sc.Mc.sname
        (Mc.pp_failure c.Mc.c_failure)
        (Mc.trace_to_string c);
      false

let mc_run timeout scenario trace =
  arm_timeout timeout;
  match trace with
  | Some file -> (
      let contents =
        let ic = open_in file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      match Mc.trace_of_string contents with
      | Error e ->
          Printf.eprintf "repro mc: cannot parse %s: %s\n%!" file e;
          2
      | Ok t -> (
          match Mc.Scenarios.find t.Mc.t_scenario with
          | None ->
              Printf.eprintf "repro mc: unknown scenario %s\n%!" t.Mc.t_scenario;
              2
          | Some sc -> (
              match Mc.replay sc t with
              | Mc.Reproduced f ->
                  Printf.printf "reproduced: %s\n%!" (Mc.pp_failure f);
                  0
              | Mc.Vanished ->
                  Printf.eprintf
                    "repro mc: schedule replays cleanly — failure vanished\n%!";
                  1
              | Mc.Diverged m ->
                  Printf.eprintf "repro mc: replay diverged: %s\n%!" m;
                  1)))
  | None -> (
      let scenarios =
        match scenario with
        | None -> Mc.Scenarios.all
        | Some name -> (
            match Mc.Scenarios.find name with
            | Some sc -> [ sc ]
            | None ->
                Printf.eprintf "repro mc: unknown scenario %s\n%!" name;
                exit 2)
      in
      let ok = List.for_all mc_explore_one scenarios in
      if ok then 0 else 1)

let mc_cmd =
  let scenario_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"NAME" ~doc:"Explore a single scenario.")
  in
  let trace_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Replay a recorded counterexample trace instead of exploring.")
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:
         "Deterministic schedule exploration: enumerate fiber interleavings \
          over the structures' yield points, or replay a minimized \
          counterexample trace.")
    Term.(const mc_run $ timeout_term $ scenario_term $ trace_term)

(* -------------------------- serve subcommand ------------------------ *)

(* repro serve                  overload soak: calibrate capacity on a
                                quiet run, then offer 2x with the
                                traffic-path chaos plan and bounded
                                worker stalls; verifies the load
                                generator ledger (zero silent drops),
                                the accepted-p99 bound, and that the
                                watchdog emitted a post-mortem for any
                                injected stall; ends with a drain
                                under live traffic
   repro serve --trace-out F    also save the soak's kvload trace
   repro serve --replay F       replay a saved kvload trace against a
                                fresh server and verify its ledger *)

module Loadgen = Kv.Loadgen

let serve_config ~workers =
  {
    (Kv.Server.default_config ()) with
    Kv.Server.workers;
    queue_capacity = 64;
    enqueue_budget = 4;
    p99_bound_ns = 150_000_000;
    p99_window = 32;
    tick_interval = 0.01;
    idle_timeout = 0.15;
    write_timeout = 0.5;
  }

(* Mild ambient hostility for the soak: rare connection severs and
   read pauses, plus an occasional slow-loris that the 0.15s idle
   timeout is expected to cut off mid-frame. *)
let serve_chaos_plan =
  {
    Chaos.Net.seed = 0xBAD5EED;
    drop_one_in = 400;
    loris_one_in = 2000;
    loris_chunk = 8;
    loris_delay = 0.2;
    pause_reads_one_in = 300;
    pause_reads_s = 0.05;
  }

let serve_deadline_ns = 80_000_000

let serve_workers () = max 2 (min 4 (Domain.recommended_domain_count () - 2))

(* The serving soak is generic over the map it fronts: [--map] picks
   the structure, running the same overload/chaos/drain gauntlet
   against the trie or the flat open-addressing contender. *)
module Serve (M : Ct_util.Map_intf.CONCURRENT_MAP with type key = int) = struct
  module Srv = Kv.Server.Make (M)

  let serve_soak scale trace_out =
  let failures = ref [] in
  let check what ok =
    if not ok then failures := what :: !failures;
    Printf.printf "%-56s %s\n%!" what (if ok then "ok" else "FAIL")
  in
  let duration, cal_n, soak_cap =
    match scale with
    | Harness.Suites.Quick -> (2.0, 20_000, 150_000)
    | Full -> (8.0, 60_000, 600_000)
  in
  let workers = serve_workers () in
  let progress = Progress.create ~slots:workers () in
  let flight = Obs.Flight.create ~size:1024 () in
  Obs.Flight.install_with_progress flight progress;
  Fun.protect
    ~finally:(fun () ->
      Chaos.clear ();
      Obs.Flight.uninstall ())
  @@ fun () ->
  let map = M.create () in
  let srv = Srv.start ~config:(serve_config ~workers) ~progress map in
  let port = Srv.port srv in
  (* Watchdog over the worker heartbeats; any stall episode prints a
     post-mortem with the flight dump. *)
  let stall_reports = Atomic.make 0 in
  let pm_emitted = ref "" in
  let wd = ref None in
  let on_stall r =
    Atomic.incr stall_reports;
    Printf.printf "watchdog: %s\n%!" (Harness.Watchdog.report_to_string r);
    match !wd with
    | Some w when !pm_emitted = "" ->
        let pm = Harness.Watchdog.post_mortem w in
        pm_emitted := pm;
        print_string pm;
        print_newline ()
    | _ -> ()
  in
  let w = Harness.Watchdog.create ~stall_epochs:3 ~on_stall ~flight progress in
  wd := Some w;
  Harness.Watchdog.start w ~interval:0.05;
  (* Phase 1 — calibrate: quiet network, saturating offered rate; the
     measured goodput is the capacity the soak doubles. *)
  let cal_plan =
    {
      Loadgen.default_plan with
      Loadgen.n = cal_n;
      conns = 8;
      rate = 60_000.0;
      deadline_ns = serve_deadline_ns;
      net = Chaos.Net.quiet;
    }
  in
  let cal = Loadgen.run ~port cal_plan in
  Printf.printf "calibration: %!";
  Format.printf "%a@." Loadgen.pp_summary cal;
  check "calibration ledger verifies" (Loadgen.verify cal = Ok ());
  let capacity = max 2_000.0 cal.Loadgen.ok_rate in
  (* Phase 2 — the soak: 2x measured capacity, chaos on, bounded
     worker stalls injected at the server's own yield points. *)
  let offered = 2.0 *. capacity in
  let n = min soak_cap (int_of_float (offered *. duration)) in
  let soak_plan =
    {
      Loadgen.default_plan with
      Loadgen.seed = 0x50AC;
      n;
      conns = 8;
      rate = offered;
      deadline_ns = serve_deadline_ns;
      net = serve_chaos_plan;
    }
  in
  (match trace_out with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (Loadgen.to_string soak_plan);
      close_out oc;
      Printf.printf "wrote %s\n%!" file);
  let stall =
    Chaos.Net.stall_sites ~seed:41 ~one_in:5_000 ~max_stalls:3 ~duration:0.3
      "server.worker."
  in
  Printf.printf "soak: offering %.0f req/s (2x measured capacity) for %d requests, chaos on\n%!"
    offered n;
  let s = Loadgen.run ~port soak_plan in
  Chaos.clear ();
  Format.printf "%a@." Loadgen.pp_summary s;
  check "soak ledger verifies (zero silent drops)" (Loadgen.verify s = Ok ());
  check "typed sheds observed under 2x overload" (Loadgen.shed s >= 1);
  let p99 = Obs.Latency.percentile (Srv.latency srv) 99.0 in
  Printf.printf "accepted-request p99 (server histogram): %.1f ms\n%!"
    (p99 /. 1e6);
  check "accepted p99 under the configured bound"
    (p99 <= float_of_int (serve_config ~workers).Kv.Server.p99_bound_ns);
  let server_sheds =
    Srv.stat srv "shed_queue_full"
    + Srv.stat srv "shed_latency_breach"
    + Srv.stat srv "shed_shutdown"
    + Srv.stat srv "deadline_expired"
  in
  (* The generator can only ever see a subset of the server's typed
     sheds (replies on connections that died in flight are lost). *)
  check "server accounted at least the client-observed sheds"
    (server_sheds >= Loadgen.shed s);
  Printf.printf "worker stalls injected: %d, watchdog stall reports: %d\n%!"
    (Chaos.Net.stalls_fired stall)
    (Atomic.get stall_reports);
  check "watchdog caught every injected stall episode"
    (Chaos.Net.stalls_fired stall = 0 || Atomic.get stall_reports >= 1);
  check "stall post-mortem embeds the flight dump"
    (Atomic.get stall_reports = 0
    ||
    let pm = !pm_emitted in
    String.length pm > 0
    &&
    let nn = String.length "flight recorder" in
    let rec go i =
      i + nn <= String.length pm
      && (String.sub pm i nn = "flight recorder" || go (i + 1))
    in
    go 0);
  if Srv.stat srv "shed_queue_full" > 0 then
    check "retry-budget exhaustion surfaced on the map's stats"
      (match List.assoc_opt "retry_exhausted" (M.stats map) with
      | Some v -> v >= 1
      | None -> false);
  (* Phase 3 — graceful drain under live traffic. *)
  let drain_plan =
    {
      soak_plan with
      Loadgen.seed = 0xD7A1;
      n = min 40_000 (int_of_float capacity);
      rate = capacity;
      net = Chaos.Net.quiet;
    }
  in
  let drain_result = ref None in
  let gen =
    Thread.create
      (fun () -> drain_result := Some (Loadgen.run ~port drain_plan))
      ()
  in
  Unix.sleepf 0.1;
  check "drain flushed every queued request" (Srv.drain ~timeout:10.0 srv);
  Thread.join gen;
  (match !drain_result with
  | None -> check "drain-phase load generator finished" false
  | Some d ->
      Format.printf "%a@." Loadgen.pp_summary d;
      check "drain-phase ledger verifies" (Loadgen.verify d = Ok ());
      check "drain produced typed shutdown replies or accounted drops"
        (d.Loadgen.shutting_down >= 1 || d.Loadgen.dropped >= 1));
  (* Workers detached on drain: a clean shutdown must not read as a
     stall. *)
  Harness.Watchdog.stop w;
  let post_drain_stalls = ref 0 in
  for _ = 1 to 3 do
    post_drain_stalls :=
      !post_drain_stalls + List.length (Harness.Watchdog.step w)
  done;
  check "clean drain leaves no stall reports" (!post_drain_stalls = 0);
  print_endline "server stats:";
  List.iter
    (fun (l, v) -> if v > 0 then Printf.printf "  %-24s %d\n" l v)
    (Srv.stats srv);
  !failures

  let serve_replay file =
  let failures = ref [] in
  let check what ok =
    if not ok then failures := what :: !failures;
    Printf.printf "%-56s %s\n%!" what (if ok then "ok" else "FAIL")
  in
  let contents =
    let ic = open_in file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  match Loadgen.of_string contents with
  | Error e ->
      Printf.eprintf "repro serve: cannot parse %s: %s\n%!" file e;
      [ "trace parses" ]
  | Ok plan ->
      let map = M.create () in
      let srv = Srv.start ~config:(serve_config ~workers:(serve_workers ())) map in
      Fun.protect ~finally:(fun () -> ignore (Srv.drain ~timeout:10.0 srv))
      @@ fun () ->
      let s = Loadgen.run ~port:(Srv.port srv) plan in
      Format.printf "%a@." Loadgen.pp_summary s;
      check "replayed ledger verifies (zero silent drops)"
        (Loadgen.verify s = Ok ());
      !failures

  (* repro trace — end-to-end tracing self-check (DESIGN.md §16).

     Phase 1, propagation: a sampled context survives the frame
     encode/decode roundtrip bit-exactly, a frame whose trace
     extension was truncated in flight degrades to an untraced
     request (never a decode error), and a pre-extension frame
     parses with no trace.

     Phase 2, the soak: calibrate capacity on a quiet run, then
     offer 2x with the traffic-path chaos plan, bounded worker
     stalls, 1-in-64 head sampling and the span collector installed.
     Afterwards the server latency histogram's tail exemplar must
     resolve to a complete resident span tree covering the p99 tail,
     and the partition stages (queue wait + exec + fsync wait) must
     sum to the request span within 5%.  The resident window is also
     exported as Chrome trace-event JSON for Perfetto. *)
  let serve_trace scale out =
  let failures = ref [] in
  let check what ok =
    if not ok then failures := what :: !failures;
    Printf.printf "%-56s %s\n%!" what (if ok then "ok" else "FAIL")
  in
  (* Phase 1 — propagation. *)
  let module P = Kv.Protocol in
  let payload req =
    let b = P.encode_request req in
    Bytes.sub b 4 (Bytes.length b - 4)
  in
  let ctx = Obs.Trace.make ~sampled:true 0x1234_5678_9ABC in
  let req = { P.id = 7; deadline_ns = 1_000_000; op = P.Put (3, "v"); trace = ctx } in
  check "sampled context roundtrips the frame"
    (match P.decode_request (payload req) with
    | Ok got ->
        got = req
        && Obs.Trace.id got.P.trace = Obs.Trace.id ctx
        && Obs.Trace.sampled got.P.trace
    | Error _ -> false);
  let unsampled = Obs.Trace.make ~sampled:false 42 in
  check "unsampled-but-traced flag survives"
    (match P.decode_request (payload { req with P.trace = unsampled }) with
    | Ok got -> got.P.trace = unsampled && not (Obs.Trace.sampled got.P.trace)
    | Error _ -> false);
  let get_req = { P.id = 9; deadline_ns = 0; op = P.Get 5; trace = ctx } in
  let gp = payload get_req in
  check "truncated extension degrades to an untraced request"
    (match P.decode_request (Bytes.sub gp 0 (Bytes.length gp - 4)) with
    | Ok got -> got.P.trace = Obs.Trace.none && got.P.op = P.Get 5
    | Error _ -> false);
  check "pre-extension frame parses with no trace"
    (match P.decode_request (payload { get_req with P.trace = Obs.Trace.none }) with
    | Ok got -> got.P.trace = Obs.Trace.none && got = { get_req with P.trace = 0 }
    | Error _ -> false);
  (* Phase 2 — the traced soak. *)
  let duration, cal_n, soak_cap =
    match scale with
    | Harness.Suites.Quick -> (2.0, 20_000, 120_000)
    | Full -> (6.0, 60_000, 400_000)
  in
  let workers = serve_workers () in
  let tr = Obs.Trace.create ~size:32768 () in
  Obs.Trace.install tr;
  Fun.protect
    ~finally:(fun () ->
      Chaos.clear ();
      Obs.Trace.uninstall ())
  @@ fun () ->
  let map = M.create () in
  let srv = Srv.start ~config:(serve_config ~workers) map in
  let port = Srv.port srv in
  let cal_plan =
    {
      Loadgen.default_plan with
      Loadgen.n = cal_n;
      conns = 8;
      rate = 60_000.0;
      deadline_ns = serve_deadline_ns;
      net = Chaos.Net.quiet;
    }
  in
  let cal = Loadgen.run ~port cal_plan in
  check "calibration ledger verifies" (Loadgen.verify cal = Ok ());
  let capacity = max 2_000.0 cal.Loadgen.ok_rate in
  let offered = 2.0 *. capacity in
  let n = min soak_cap (int_of_float (offered *. duration)) in
  (* Sampling rate picked so the whole soak's spans stay resident: the
     slowest requests cluster early (the injected stalls), so a wrapped
     ring would evict exactly the tail exemplars' trees.  At most 4096
     sampled requests x ~6 spans fits the 32768-span ring with slack,
     while 1-in-16 at quick scale keeps ~tens of sampled occupants
     above the p99 bucket. *)
  let one_in = max 16 (n / 4096) in
  let soak_plan =
    {
      Loadgen.default_plan with
      Loadgen.seed = 0x7ACE;
      n;
      conns = 8;
      rate = offered;
      deadline_ns = serve_deadline_ns;
      net = serve_chaos_plan;
      trace_one_in = one_in;
    }
  in
  let stall =
    Chaos.Net.stall_sites ~seed:41 ~one_in:5_000 ~max_stalls:3 ~duration:0.3
      "server.worker."
  in
  Printf.printf
    "soak: offering %.0f req/s (2x capacity) for %d requests, 1-in-%d sampled, chaos on\n%!"
    offered n one_in;
  let s = Loadgen.run ~port soak_plan in
  Chaos.clear ();
  ignore (Chaos.Net.stalls_fired stall);
  Format.printf "%a@." Loadgen.pp_summary s;
  check "soak ledger verifies (zero silent drops)" (Loadgen.verify s = Ok ());
  check "soak minted trace ids for every request"
    (Array.length s.Loadgen.trace_ids = n
    && Array.for_all (fun id -> id <> 0) s.Loadgen.trace_ids);
  ignore (Srv.drain ~timeout:10.0 srv);
  check "sampled requests recorded spans" (Obs.Trace.recorded tr > 0);
  print_endline "stage summary (resident spans):";
  List.iter
    (fun (name, count, sum) ->
      Printf.printf "  %-12s count=%-7d total=%8.3f ms\n" name count
        (float_of_int sum /. 1e6))
    (Obs.Trace.stage_summary tr);
  (* Every resident complete tree must satisfy the partition
     identity: queue wait + exec (+ fsync wait) = request, within
     5% (by construction they share clock captures, so this is
     really a torn-read tolerance). *)
  let has st spans =
    List.exists (fun (sp : Obs.Trace.span) -> sp.Obs.Trace.stage = st) spans
  in
  let complete spans =
    has Obs.Trace.Request spans
    && has Obs.Trace.Queue_wait spans
    && has Obs.Trace.Exec spans
  in
  let stage_dur st spans =
    List.fold_left
      (fun acc (sp : Obs.Trace.span) ->
        if sp.Obs.Trace.stage = st then acc + sp.Obs.Trace.dur_ns else acc)
      0 spans
  in
  let sums_within spans =
    let request = stage_dur Obs.Trace.Request spans in
    let parts =
      stage_dur Obs.Trace.Queue_wait spans
      + stage_dur Obs.Trace.Exec spans
      + stage_dur Obs.Trace.Fsync_wait spans
    in
    request > 0 && abs (request - parts) * 20 <= request
  in
  let by_id = Hashtbl.create 256 in
  List.iter
    (fun (sp : Obs.Trace.span) ->
      if sp.Obs.Trace.trace_id <> 0 then
        Hashtbl.replace by_id sp.Obs.Trace.trace_id
          (sp :: (try Hashtbl.find by_id sp.Obs.Trace.trace_id with Not_found -> [])))
    (Obs.Trace.spans tr);
  let trees = ref 0 and within = ref 0 in
  Hashtbl.iter
    (fun _ spans ->
      if complete spans then begin
        incr trees;
        if sums_within spans then incr within
      end)
    by_id;
  Printf.printf "resident complete span trees: %d (%d sum within 5%%)\n%!"
    !trees !within;
  check "resident window holds complete span trees" (!trees > 0);
  check "at least 90% of complete trees sum within 5%"
    (!within * 10 >= !trees * 9);
  (* The tail exemplar: walk the latency histogram's exemplar cells
     from the slowest bucket down and resolve the first complete
     resident tree.  Its bucket must cover the p99 of the sampled
     population (the exemplar machinery indexed the slowest sampled
     request correctly) and the p90 of all served requests (the
     sampled tail is representative — ~servedx10%/rate occupants, so
     this is stable; whether a sampled request lands above the
     overall p99 is luck when the extreme tail is a single stalled
     queue of 64). *)
  let lat = Srv.latency srv in
  let p99 = Obs.Latency.percentile lat 99.0 in
  let p90 = Obs.Latency.percentile lat 90.0 in
  let sampled_p99 =
    let durs =
      Hashtbl.fold
        (fun _ spans acc ->
          if complete spans then stage_dur Obs.Trace.Request spans :: acc
          else acc)
        by_id []
      |> List.sort compare |> Array.of_list
    in
    let n = Array.length durs in
    if n = 0 then 0.0 else float_of_int durs.(min (n - 1) (n * 99 / 100))
  in
  List.iter
    (fun (bucket, id) ->
      Printf.printf "exemplar: bucket %2d (<%.0f ns) trace %016x (%d resident spans)\n"
        bucket
        (Obs.Latency.bucket_upper_ns bucket)
        id
        (List.length (Obs.Trace.spans_of tr ~id)))
    (Obs.Latency.exemplars lat);
  let found =
    List.find_map
      (fun (bucket, id) ->
        let spans = Obs.Trace.spans_of tr ~id in
        if complete spans then Some (bucket, id, spans) else None)
      (List.rev (Obs.Latency.exemplars lat))
  in
  (match found with
  | None -> check "tail exemplar resolves to a complete span tree" false
  | Some (bucket, id, spans) ->
      check "tail exemplar resolves to a complete span tree" true;
      Printf.printf
        "tail exemplar: trace %016x, bucket %d (<%.0f ns); served p90 %.0f ns, \
         p99 %.0f ns, sampled p99 %.0f ns\n%!"
        id bucket
        (Obs.Latency.bucket_upper_ns bucket)
        p90 p99 sampled_p99;
      List.iter
        (fun sp -> print_endline ("  " ^ Obs.Trace.span_to_string sp))
        spans;
      check "tail exemplar covers the sampled population's p99"
        (Obs.Latency.bucket_upper_ns bucket >= sampled_p99);
      check "tail exemplar covers the served p90 tail"
        (Obs.Latency.bucket_upper_ns bucket >= p90);
      check "tail exemplar stages sum to its request span (within 5%)"
        (sums_within spans));
  (match out with
  | None -> ()
  | Some file ->
      Json.write_file file (Harness.Obs_report.chrome_trace_json tr);
      Printf.printf "wrote %s (open in Perfetto or chrome://tracing)\n%!" file);
  !failures
end

module Folklore_map = Oa.Folklore.Make (Ct_util.Hashing.Int_key)
module Serve_cachetrie = Serve (Obs_map)
module Serve_folklore = Serve (Folklore_map)

let serve_run timeout map_name replay trace_out scale =
  arm_timeout timeout;
  let soak, rep =
    match map_name with
    | "oa-folklore" -> (Serve_folklore.serve_soak, Serve_folklore.serve_replay)
    | _ -> (Serve_cachetrie.serve_soak, Serve_cachetrie.serve_replay)
  in
  match
    match replay with
    | Some file -> rep file
    | None -> soak scale trace_out
  with
  | [] -> 0
  | failures ->
      List.iter
        (fun f -> Printf.eprintf "repro serve: FAILED: %s\n%!" f)
        (List.rev failures);
      1
  | exception e ->
      Printf.eprintf "repro serve: failed: %s\n%!" (Printexc.to_string e);
      1

let serve_cmd =
  let replay_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a saved kvload trace against a fresh server and verify \
             its ledger, instead of running the soak.")
  in
  let trace_out_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write the soak's kvload trace to $(docv) for later --replay.")
  in
  let map_term =
    Arg.(
      value
      & opt (enum [ ("cachetrie", "cachetrie"); ("oa-folklore", "oa-folklore") ])
          "cachetrie"
      & info [ "map" ] ~docv:"MAP"
          ~doc:
            "Structure the server fronts: $(b,cachetrie) (default) or \
             $(b,oa-folklore).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Overload-hardened KV serving soak: calibrate capacity, offer 2x \
          with traffic-path chaos and injected worker stalls, verify the \
          zero-silent-drop ledger, the accepted-p99 bound and the watchdog \
          post-mortem, then drain under live traffic.")
    Term.(
      const serve_run $ timeout_term $ map_term $ replay_term $ trace_out_term
      $ scale_term)

(* -------------------------- trace subcommand ------------------------ *)

let trace_run timeout out scale =
  arm_timeout timeout;
  match Serve_cachetrie.serve_trace scale (Some out) with
  | [] -> 0
  | failures ->
      List.iter
        (fun f -> Printf.eprintf "repro trace: FAILED: %s\n%!" f)
        (List.rev failures);
      1
  | exception e ->
      Printf.eprintf "repro trace: failed: %s\n%!" (Printexc.to_string e);
      1

let trace_cmd =
  let out_term =
    Arg.(
      value
      & opt string "trace_spans.json"
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the soak's resident span window as Chrome trace-event \
             JSON to $(docv) (load it in Perfetto or chrome://tracing).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "End-to-end tracing self-check: frame propagation roundtrip, then \
          a chaos soak at 2x capacity with head sampling sized so the soak \
          stays ring-resident; verifies every ledger row minted its trace \
          id, the rings hold complete span trees whose stage durations sum \
          to the request span within 5%, and the latency histogram's tail \
          exemplar resolves to a complete tree covering the sampled \
          population's p99; exports Chrome trace-event JSON.")
    Term.(const trace_run $ timeout_term $ out_term $ scale_term)

(* ------------------------- recover subcommand ----------------------- *)

(* repro recover [--crashes N] [--seed S] [--dir D] [--keep]

   Crash-recovery storm for the durable serving mode (DESIGN.md §14).
   Each iteration: recover the store from disk, serve it, drive seeded
   partitioned traffic with the storage-fault injector armed to kill
   the process at a seeded point of group commit or checkpoint
   publication, then recover the next incarnation and verify against
   the load generator's ledger that every durably-acked operation
   survived and no unacknowledged operation was invented.  Torn tails
   must first draw the strict typed refusal before --salvage-style
   truncation is allowed to proceed.  On any failure the store's
   files, the kvload trace and the reason are saved under
   _recover_failures/ for offline replay. *)

module Durable = Kv.Durable
module Dsrv = Kv.Server.Make (Kv.Durable.Map)
module Recovery = Persist.Recovery

let recover_store_dir = "_recover_store"
let recover_artifacts_dir = "_recover_failures"

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let copy_file src dst =
  let ic = open_in_bin src in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc s;
  close_out oc

(* Everything offline replay needs: the store's files as the crash
   left them, the exact traffic, and why verification refused. *)
let save_recover_artifacts ~dir ~iter ~plan ~reason =
  let mkdir d =
    try Unix.mkdir d 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  in
  mkdir recover_artifacts_dir;
  let dst =
    Filename.concat recover_artifacts_dir (Printf.sprintf "crash_%03d" iter)
  in
  mkdir dst;
  (try
     Array.iter
       (fun f ->
         let p = Filename.concat dir f in
         if not (Sys.is_directory p) then copy_file p (Filename.concat dst f))
       (Sys.readdir dir)
   with Sys_error _ -> ());
  (match plan with
  | None -> ()
  | Some p ->
      let oc = open_out (Filename.concat dst "plan.kvload") in
      output_string oc (Loadgen.to_string p);
      close_out oc);
  let oc = open_out (Filename.concat dst "reason.txt") in
  output_string oc reason;
  output_char oc '\n';
  close_out oc;
  dst

(* Fast group commit so armed kills land early, checkpoints every few
   hundred records so checkpoint publication is a real kill target
   inside a sub-second run. *)
let recover_durable_config =
  {
    Kv.Durable.wal =
      { Persist.Wal.default_config with Persist.Wal.commit_interval = 0.001 };
    checkpoint_every = 300;
    checkpoint_interval = 0.003;
  }

let recover_server_config () =
  {
    (Kv.Server.default_config ()) with
    Kv.Server.workers = 2;
    queue_capacity = 256;
    p99_bound_ns = 2_000_000_000;
    tick_interval = 0.01;
  }

(* Ambient storage hostility under the armed kill: short writes the
   write loop must absorb, occasional fsync failures the retry budget
   must eat, occasional stalled fsyncs the deadline must bound. *)
let recover_disk_plan seed =
  {
    Chaos.Disk.seed;
    target = "";
    torn_one_in = 0;
    short_one_in = 7;
    fsync_fail_one_in = 150;
    fsync_delay_one_in = 60;
    fsync_delay_s = 0.002;
  }

(* Partitioned keys are the verification precondition: one connection
   owns each key, so per-key histories are totally ordered. *)
let recover_plan ~seed i =
  {
    Loadgen.seed = seed + (997 * i);
    n = 1_500;
    conns = 4;
    rate = 30_000.0;
    profile = Harness.Trace.write_heavy;
    deadline_ns = 250_000_000;
    value_bytes = 24;
    partition = true;
    net = Chaos.Net.quiet;
    trace_one_in = 0;
  }

let recover_storm ~crashes ~seed ~dir ~keep =
  let failures = ref [] in
  let check what ok =
    if not ok then failures := what :: !failures;
    Printf.printf "%-56s %s\n%!" what (if ok then "ok" else "FAIL")
  in
  rm_rf dir;
  let crashes_fired = ref 0
  and wal_kills = ref 0
  and ckpt_kills = ref 0
  and clean_runs = ref 0
  and strict_refusals = ref 0
  and salvages = ref 0
  and recovery_failures = ref 0
  and verify_failures = ref 0
  and ledger_failures = ref 0
  and total_replayed = ref 0
  and total_skipped = ref 0
  and total_ckpt_records = ref 0
  and tmp_discarded = ref 0 in
  let rng = Rng.create (Ct_util.Rng.mix64 (seed lxor 0x5707)) in
  (* Strict first, always: a torn tail must draw the typed refusal
     before salvage truncates it; anything else refusing is a bug. *)
  let reopen ~iter ~plan =
    match Durable.open_ ~config:recover_durable_config ~dir () with
    | Ok (st, stats) -> Some (st, stats)
    | Error (Recovery.Torn_tail _ as e) -> (
        incr strict_refusals;
        Printf.printf "  [%03d] strict refusal (expected): %s\n%!" iter
          (Recovery.error_to_string e);
        match
          Durable.open_ ~config:recover_durable_config ~salvage:true ~dir ()
        with
        | Ok (st, stats) ->
            incr salvages;
            Some (st, stats)
        | Error e ->
            incr recovery_failures;
            let reason =
              "salvage recovery refused: " ^ Recovery.error_to_string e
            in
            let saved = save_recover_artifacts ~dir ~iter ~plan ~reason in
            Printf.printf "  [%03d] %s (artifacts: %s)\n%!" iter reason saved;
            None)
    | Error e ->
        incr recovery_failures;
        let reason = "strict recovery refused: " ^ Recovery.error_to_string e in
        let saved = save_recover_artifacts ~dir ~iter ~plan ~reason in
        Printf.printf "  [%03d] %s (artifacts: %s)\n%!" iter reason saved;
        None
  in
  let bindings st =
    Durable.Map.fold_snapshot (fun acc k v -> (k, v) :: acc) [] (Durable.map st)
  in
  let verify_incarnation ~iter ~pending ~recovered =
    match pending with
    | None -> ()
    | Some (s, run_base, plan) -> (
        match Loadgen.verify_recovered s ~base:run_base ~bindings:recovered with
        | Ok () -> ()
        | Error msg ->
            incr verify_failures;
            let reason = "durability verification failed: " ^ msg in
            let saved =
              save_recover_artifacts ~dir ~iter ~plan:(Some plan) ~reason
            in
            Printf.printf "  [%03d] %s (artifacts: %s)\n%!" iter reason saved)
  in
  (* pending = the crashed run awaiting verification: its summary, the
     store content when it started, and its plan (for artifacts). *)
  let pending = ref None in
  for i = 1 to crashes do
    let plan = recover_plan ~seed i in
    match reopen ~iter:i ~plan:(Some plan) with
    | None ->
        (* Unrecoverable by policy: wipe and continue the storm so one
           refusal surfaces as one counted failure, not a cascade. *)
        rm_rf dir;
        pending := None
    | Some (st, stats) ->
        total_replayed := !total_replayed + stats.Recovery.replayed;
        total_skipped := !total_skipped + stats.Recovery.skipped;
        total_ckpt_records :=
          !total_ckpt_records + stats.Recovery.checkpoint_records;
        tmp_discarded := !tmp_discarded + stats.Recovery.tmp_discarded;
        let recovered = bindings st in
        verify_incarnation ~iter:i ~pending:!pending ~recovered;
        let srv =
          Dsrv.start
            ~config:(recover_server_config ())
            ~durable:(Durable.hooks st) (Durable.map st)
        in
        let disk = Chaos.Disk.install ~salt:i (recover_disk_plan seed) in
        (* Seeded kill placement sweep: mostly mid group commit, the
           rest mid checkpoint publication; both write and fsync
           phases. *)
        let on_wal = Rng.next_int rng 3 < 2 in
        let target, after =
          if on_wal then ("wal-", 1 + Rng.next_int rng 25)
          else ("checkpoint-", Rng.next_int rng 3)
        in
        let at_fsync = Rng.next_int rng 2 = 0 in
        Chaos.Disk.arm_kill disk ~target ~at_fsync ~after ();
        (* The in-process kill -9: the instant the storage layer halts,
           sever every connection so clients see the death, not a
           wedged socket. *)
        let stop_watch = Atomic.make false in
        let watcher =
          Thread.create
            (fun () ->
              while
                (not (Atomic.get stop_watch)) && not (Persist.Io.is_halted ())
              do
                Unix.sleepf 0.0005
              done;
              if Persist.Io.is_halted () then Dsrv.kill srv)
            ()
        in
        let s = Loadgen.run ~port:(Dsrv.port srv) plan in
        (* A checkpoint-armed kill that found no organic checkpoint in
           a short run: force one cycle so the placement still fires. *)
        if Chaos.Disk.kill_armed disk then ignore (Durable.checkpoint_now st);
        Atomic.set stop_watch true;
        Thread.join watcher;
        let crashed = Persist.Io.is_halted () in
        if crashed then begin
          incr crashes_fired;
          if on_wal then incr wal_kills else incr ckpt_kills;
          Dsrv.kill srv;
          Durable.abandon st
        end
        else begin
          incr clean_runs;
          ignore (Dsrv.drain ~timeout:10.0 srv);
          ignore (Durable.close st)
        end;
        Chaos.Disk.clear ();
        Persist.Io.resurrect ();
        (match Loadgen.verify s with
        | Ok () -> ()
        | Error msg ->
            incr ledger_failures;
            Printf.printf "  [%03d] ledger: %s\n%!" i msg);
        pending := Some (s, recovered, plan)
  done;
  (* The last crash still awaits its recovery-side verdict. *)
  (match reopen ~iter:(crashes + 1) ~plan:None with
  | None -> ()
  | Some (st, stats) ->
      total_replayed := !total_replayed + stats.Recovery.replayed;
      verify_incarnation ~iter:(crashes + 1) ~pending:!pending
        ~recovered:(bindings st);
      ignore (Durable.close st));
  Printf.printf
    "storm: %d/%d runs crashed (%d mid-commit, %d mid-checkpoint), %d ran \
     clean\n\
     recovery: %d strict torn-tail refusals -> salvaged %d, %d partial \
     checkpoints discarded\n\
     replayed %d WAL records, skipped %d checkpoint-covered, loaded %d \
     checkpoint records\n%!"
    !crashes_fired crashes !wal_kills !ckpt_kills !clean_runs !strict_refusals
    !salvages !tmp_discarded !total_replayed !total_skipped !total_ckpt_records;
  check "storm actually killed the process" (!crashes_fired >= crashes / 2);
  check "every incarnation recovered (typed refusals only where salvage \
         applies)"
    (!recovery_failures = 0);
  check "torn tails drew the strict refusal before salvage"
    (!salvages = !strict_refusals);
  check "every durably-acked op survived; nothing invented"
    (!verify_failures = 0);
  check "every run's ledger verified (zero silent drops)"
    (!ledger_failures = 0);
  if !failures = [] && not keep then rm_rf dir;
  !failures

let recover_run timeout crashes seed dir keep =
  arm_timeout timeout;
  if crashes < 1 then begin
    prerr_endline "repro recover: --crashes must be positive";
    2
  end
  else
    match recover_storm ~crashes ~seed ~dir ~keep with
    | [] -> 0
    | failures ->
        List.iter
          (fun f -> Printf.eprintf "repro recover: FAILED: %s\n%!" f)
          (List.rev failures);
        1
    | exception e ->
        Printf.eprintf "repro recover: failed: %s\n%!" (Printexc.to_string e);
        1

let recover_cmd =
  let crashes_term =
    Arg.(
      value & opt int 100
      & info [ "crashes" ] ~docv:"N"
          ~doc:"Storm iterations (crash + recover cycles).")
  in
  let seed_term =
    Arg.(
      value & opt int 0xC4A54
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Master seed for traffic, faults and kill placement.")
  in
  let dir_term =
    Arg.(
      value & opt string recover_store_dir
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Store directory (wiped at start; removed on success).")
  in
  let keep_term =
    Arg.(
      value & flag
      & info [ "keep" ] ~doc:"Keep the store directory even on success.")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Crash-recovery storm for the durable serving mode: seeded kills \
          mid group-commit and mid checkpoint, strict-then-salvage \
          recovery, and ledger verification that every durably-acked \
          operation survives while nothing unacknowledged is invented.")
    Term.(
      const recover_run $ timeout_term $ crashes_term $ seed_term $ dir_term
      $ keep_term)

(* -------------------------- cache subcommand ------------------------ *)

(* repro cache [--full]    deterministic self-check of the bounded
   cache tier (DESIGN.md §15): the budget invariant and exact
   accounting under a zipfian read-through load for every policy,
   deterministic TTL expiry on an injected clock, negative-caching
   stampede absorption, and the serving layer's opt-in cache mode end
   to end — including the tier counters showing up in the Prometheus
   export.  Nonzero exit on any failed check. *)

module Cache_map = Cachetrie.Make (Ct_util.Hashing.Int_key)
module Cache_tier = Cache.Make (Cache_map)
module Cache_server = Kv.Server.Make (Cache_map)

let cache_run timeout scale =
  arm_timeout timeout;
  let failures = ref [] in
  let check what ok =
    if not ok then failures := what :: !failures;
    Printf.printf "%-56s %s\n" what (if ok then "ok" else "FAIL")
  in
  (try
     let n =
       match scale with Harness.Suites.Quick -> 200_000 | Full -> 2_000_000
     in
     let budget = 1 lsl 15 in
     let universe = 50_000 in
     let keys =
       Harness.Workload.zipf_keys ~seed:0xCAC4E ~n ~universe 0.99
     in
     (* Phase 1 — budget + accounting per policy under skewed load. *)
     List.iter
       (fun policy ->
         let cfg =
           { (Cache.default_config ~budget_words:budget) with Cache.policy }
         in
         let t = Cache_tier.create ~config:cfg () in
         let load k = Some (string_of_int k) in
         Array.iter (fun k -> ignore (Cache_tier.get_or_load t k ~load)) keys;
         let name = Cache.policy_name policy in
         let s = Cache_tier.stats t in
         check
           (Printf.sprintf "%s: resident footprint within budget" name)
           (s.Cache.used_words <= budget);
         check
           (Printf.sprintf "%s: quiescent accounting reconciles" name)
           (Cache_tier.validate t = Ok ());
         check
           (Printf.sprintf "%s: skewed load hits at least 30%%" name)
           (float_of_int s.Cache.hits
            >= 0.3 *. float_of_int (s.Cache.hits + s.Cache.misses));
         check
           (Printf.sprintf "%s: eviction happened (universe >> budget)" name)
           (s.Cache.evictions > 0))
       [ Cache.Fifo; Cache.Clock_hand; Cache.Slru ];
     (* Phase 2 — deterministic TTL on an injected clock. *)
     let clk = Atomic.make 0 in
     let tcfg =
       {
         (Cache.default_config ~budget_words:budget) with
         Cache.wheel_tick_ns = 10;
         wheel_slots = 16;
       }
     in
     let tc =
       Cache_tier.create ~config:tcfg ~now:(fun () -> Atomic.get clk) ()
     in
     ignore (Cache_tier.put ~ttl_ns:100 tc 1 "short");
     ignore (Cache_tier.put tc 2 "forever");
     check "ttl: live before its deadline" (Cache_tier.get tc 1 = Some "short");
     Atomic.set clk 150;
     check "ttl: dead past its deadline" (Cache_tier.get tc 1 = None);
     check "ttl: wheel reclaims without reads" (Cache_tier.expire_now tc >= 0
                                               && Cache_tier.resident tc = 1);
     check "ttl: immortal entry unaffected"
       (Cache_tier.get tc 2 = Some "forever");
     (* Phase 3 — negative caching absorbs an absent-key storm. *)
     let loads = ref 0 in
     let load _ = incr loads; None in
     ignore (Cache_tier.get_or_load tc 404 ~load);
     for _ = 1 to 1_000 do
       ignore (Cache_tier.get_or_load tc 404 ~load)
     done;
     check "negative: storm on an absent key costs one load" (!loads = 1);
     (* Phase 4 — serving layer cache mode, end to end. *)
     let backing = Cache_map.create () in
     let front =
       Cache_tier.create
         ~config:(Cache.default_config ~budget_words:budget)
         ()
     in
     let cache_ops =
       {
         Kv.Server.c_get =
           (fun k ->
             Cache_tier.get_or_load front k ~load:(fun k ->
                 Cache_map.lookup backing k));
         c_put =
           (fun k v ->
             Cache_map.insert backing k v;
             ignore (Cache_tier.put front k v);
             true);
         c_remove =
           (fun k ->
             ignore (Cache_tier.remove front k);
             Cache_map.remove backing k <> None);
       }
     in
     let srv =
       Cache_server.start
         ~config:
           { (Kv.Server.default_config ()) with Kv.Server.workers = 2 }
         ~cache:cache_ops (Cache_map.create ())
     in
     Fun.protect
       ~finally:(fun () -> ignore (Cache_server.drain ~timeout:5.0 srv))
       (fun () ->
         let c = Kv.Client.connect ~port:(Cache_server.port srv) () in
         Fun.protect
           ~finally:(fun () -> Kv.Client.close c)
           (fun () ->
             check "serve: put through the cache tier"
               (Kv.Client.put c 1 "one" = Kv.Protocol.Stored true);
             check "serve: read back through the tier"
               (Kv.Client.get c 1 = Kv.Protocol.Value "one");
             check "serve: absent key is Nil"
               (Kv.Client.get c 99 = Kv.Protocol.Nil);
             check "serve: absent key again (cached negative)"
               (Kv.Client.get c 99 = Kv.Protocol.Nil);
             check "serve: remove through the tier"
               (Kv.Client.remove c 1 = Kv.Protocol.Removed);
             check "serve: removed key gone"
               (Kv.Client.get c 1 = Kv.Protocol.Nil)));
     let s = Cache_tier.stats front in
     check "serve: tier counted hits" (s.Cache.hits >= 1);
     check "serve: tier counted a negative hit" (s.Cache.negative_hits >= 1);
     let prom = Obs.Export.prometheus () in
     let has needle =
       let ln = String.length needle and lp = String.length prom in
       let rec go i = i + ln <= lp && (String.sub prom i ln = needle || go (i + 1)) in
       go 0
     in
     check "export: tier_hits in the Prometheus export" (has "tier_hits");
     check "export: cache-tier family labelled" (has "cache-tier")
   with e ->
     check ("no exception: " ^ Printexc.to_string e) false);
  if !failures = [] then begin
    print_endline "repro cache: all checks passed";
    0
  end
  else begin
    List.iter (fun f -> Printf.eprintf "repro cache: FAILED: %s\n%!" f) !failures;
    1
  end

let cache_cmd =
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Self-check of the bounded cache tier: budget invariant and exact \
          accounting per policy under zipfian load, deterministic TTL expiry \
          on an injected clock, negative-caching stampede absorption, and \
          the serving layer's cache mode with exported tier counters.")
    Term.(const cache_run $ timeout_term $ scale_term)

let all_cmd =
  let run timeout scale =
    guarded timeout (fun scale ->
        List.iter (fun (_, _, f) -> f scale) all_experiments)
      scale
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment in sequence.")
    Term.(const run $ timeout_term $ scale_term)

let () =
  let info =
    Cmd.info "repro" ~version:"1.0"
      ~doc:"Reproduce the evaluation of the Cache-Tries paper (PPoPP 2018)."
  in
  let cmds =
    (all_cmd :: List.map (fun (n, d, f) -> experiment n d f) all_experiments)
    @ [ mc_cmd; obs_cmd; cache_cmd; serve_cmd; trace_cmd; recover_cmd ]
  in
  exit (Cmd.eval' (Cmd.group info cmds))
