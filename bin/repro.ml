(* repro — command-line front end for the paper's experiments.

   Each subcommand regenerates one table/figure of the evaluation:

     repro fig9 [--full]     memory footprint (Figure 9)
     repro fig10 [--full]    single-threaded lookup/insert (Figure 10)
     repro fig11 [--full]    contended parallel insert (Figure 11)
     repro fig12 [--full]    disjoint parallel insert (Figure 12)
     repro fig13 [--full]    parallel lookup (Figure 13)
     repro hist [--full]     level-occupancy histograms (Artifact A.5.1)
     repro theory [--full]   Theorems 4.1-4.4 vs a real trie
     repro ablation [--full] cache on/off and max_misses sweep
     repro obs [--full|--demo] observability exports / flight-recorder demo
     repro all [--full]      everything above *)

open Cmdliner

let scale_term =
  let doc = "Run at paper-like sizes (minutes) instead of quick smoke sizes." in
  let full = Arg.(value & flag & info [ "full" ] ~doc) in
  Term.(const (fun f -> if f then Harness.Suites.Full else Harness.Suites.Quick) $ full)

let timeout_term =
  let doc =
    "Kill the run after $(docv) seconds with exit status 124 — the hard \
     deadline CI relies on when an experiment wedges instead of failing."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)

(* A detached watchdog thread, not an alarm: bechamel and the domains
   it spawns must keep their signal dispositions untouched. *)
let arm_timeout = function
  | None -> ()
  | Some seconds ->
      if seconds <= 0.0 then begin
        prerr_endline "repro: --timeout must be positive";
        exit 2
      end;
      ignore
        (Thread.create
           (fun () ->
             Unix.sleepf seconds;
             Printf.eprintf "repro: timeout of %gs exceeded\n%!" seconds;
             exit 124)
           ())

(* Nonzero exit on any experiment failure, so CI and scripts can trust
   the status code instead of scraping output. *)
let guarded timeout f scale =
  arm_timeout timeout;
  match f scale with
  | () -> 0
  | exception e ->
      Printf.eprintf "repro: experiment failed: %s\n%!" (Printexc.to_string e);
      1

let experiment name doc f =
  let run timeout scale = guarded timeout f scale in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ timeout_term $ scale_term)

let all_experiments =
  [
    ("fig9", "Memory footprint comparison (Figure 9, Artifact A.5.2).",
     Harness.Suites.fig9_footprint);
    ("fig10", "Single-threaded lookup and insert (Figure 10).",
     Harness.Suites.fig10_single_threaded);
    ("fig11", "Multi-threaded insert, high contention (Figure 11).",
     Harness.Suites.fig11_insert_high_contention);
    ("fig12", "Multi-threaded insert, low contention (Figure 12).",
     Harness.Suites.fig12_insert_low_contention);
    ("fig13", "Multi-threaded lookup (Figure 13).",
     Harness.Suites.fig13_parallel_lookup);
    ("hist", "Level-occupancy histograms (Artifact A.5.1).",
     Harness.Suites.histograms);
    ("theory", "Depth-distribution theory, Theorems 4.1-4.4 (Section 4.1).",
     Harness.Suites.theory);
    ("ablation", "Cache ablation: on/off and max_misses sweep.",
     Harness.Suites.ablation_cache);
    ("ablation-narrow", "Narrow-node (4-slot) ablation: insert time and footprint.",
     Harness.Suites.ablation_narrow);
    ("mixed", "Extension: YCSB-style mixed workloads across structures.",
     Harness.Suites.mixed_workload);
    ("zipf", "Extension: Zipf-skewed lookup throughput.",
     Harness.Suites.zipf_lookup);
    ("remove", "Extension: remove throughput and compression behaviour.",
     Harness.Suites.remove_throughput);
    ("trace", "Extension: production-style trace replay across structures.",
     Harness.Suites.trace_replay);
  ]

(* --------------------------- obs subcommand ------------------------- *)

(* repro obs [--full]        traced workload with metrics + latency +
                             exports; exits nonzero if the counter
                             invariants fail or an export is empty
   repro obs --demo          chaos crash-storm with the flight recorder
                             installed; prints the watchdog post-mortem
                             and exits nonzero if the flight dump is
                             empty or out of stamp order *)

module Yp = Ct_util.Yieldpoint
module Rng = Ct_util.Rng
module Progress = Ct_util.Progress
module Json = Harness.Report.Json
module Obs_map = Cachetrie.Make (Ct_util.Hashing.Int_key)
module Obs_replay = Harness.Trace.Replay (Obs_map)

let obs_await what f =
  let deadline = Unix.gettimeofday () +. 10.0 in
  while not (f ()) && Unix.gettimeofday () < deadline do
    Unix.sleepf 1e-4
  done;
  if not (f ()) then failwith ("repro obs: timed out waiting for " ^ what)

(* Traced workload: a single-domain replay whose lookup count the
   structure's own cache counters must reproduce exactly (every probe
   classified once), then a multi-domain timed replay feeding the
   latency histogram, then both exports. *)
let obs_export scale =
  let failures = ref [] in
  let check what ok =
    if not ok then failures := what :: !failures;
    Printf.printf "%-52s %s\n" what (if ok then "ok" else "FAIL")
  in
  let n =
    match scale with Harness.Suites.Quick -> 100_000 | Full -> 2_000_000
  in
  let trace = Harness.Trace.generate Harness.Trace.churn n in
  (* Phase 1 — accounting, one domain so no retry can re-probe. *)
  let t = Obs_map.create () in
  let prefill = Harness.Trace.churn.Harness.Trace.universe / 2 in
  let o1 =
    Obs_replay.replay ~prefill t
      (Array.sub trace 0 (min n 50_000))
  in
  let stats = Obs_map.stats t in
  let stat l = match List.assoc_opt l stats with Some v -> v | None -> 0 in
  check "cache_hits + cache_misses = lookups issued"
    (stat "cache_hits" + stat "cache_misses" = o1.Harness.Trace.hits + o1.Harness.Trace.misses);
  check "cas_retries <= cas_attempts (all families)"
    (Harness.Obs_report.invariants () = []);
  List.iter print_endline (Harness.Obs_report.invariants ());
  (* Phase 2 — timed parallel replay into the histogram. *)
  let t2 = Obs_map.create () in
  let hist = Obs.Latency.create ~label:"trace-op" in
  let domains = min 4 (Harness.Parallel.available_domains ()) in
  let o2 = Obs_replay.replay_parallel ~prefill ~latency:hist t2 ~domains trace in
  (match o2.Harness.Trace.latency with
  | None -> check "timed replay produced a latency summary" false
  | Some l ->
      Printf.printf
        "%d ops over %d domains: p50 %.0f ns, p99 %.0f ns, p99.9 %.0f ns\n"
        l.Harness.Trace.timed_ops domains l.Harness.Trace.p50_ns
        l.Harness.Trace.p99_ns l.Harness.Trace.p999_ns;
      check "histogram count matches timed ops"
        (Obs.Latency.total hist = l.Harness.Trace.timed_ops));
  (* Exports: deterministic JSON and Prometheus text. *)
  let json =
    Json.Obj
      [
        ("metrics", Harness.Obs_report.metrics_json ());
        ("latency", Harness.Obs_report.latency_json [ ("trace-op", hist) ]);
      ]
  in
  Json.write_file "obs_metrics.json" json;
  let prom = Obs.Export.prometheus ~histograms:[ ("trace-op", hist) ] () in
  let oc = open_out "obs_metrics.prom" in
  output_string oc prom;
  close_out oc;
  print_endline "wrote obs_metrics.prom";
  check "prometheus export has counter samples"
    (String.length prom > 0
    && String.split_on_char '\n' prom
       |> List.exists (fun l ->
              String.length l > 0 && l.[0] <> '#'));
  check "json export is non-trivial" (String.length (Json.to_string json) > 64);
  !failures

(* Crash-storm demo: flight recorder + progress share the observer
   slot; a parked victim makes the watchdog stall report fire, and the
   post-mortem embeds the stamp-ordered event dump. *)
let obs_demo () =
  let failures = ref [] in
  let check what ok =
    if not ok then failures := what :: !failures;
    Printf.printf "%-52s %s\n" what (if ok then "ok" else "FAIL")
  in
  let progress = Progress.create ~slots:4 () in
  let flight = Obs.Flight.create ~size:512 () in
  Obs.Flight.install_with_progress flight progress;
  let finally () =
    Chaos.clear ();
    Obs.Flight.uninstall ()
  in
  Fun.protect ~finally @@ fun () ->
  let t = Obs_map.create () in
  for k = 0 to 63 do
    Obs_map.insert t (1_000_000 + k) k
  done;
  (* Storm: crash victims mid-operation at random yield points. *)
  let sites = Array.of_list (Yp.with_prefix "cachetrie.") in
  let rng = Rng.create 0xD00D in
  let crashes = ref 0 in
  for k = 1 to 100 do
    let s = sites.(Rng.next_int rng (Array.length sites)) in
    let phase = if Rng.next_int rng 2 = 0 then Yp.Before else Yp.After in
    let inj = Chaos.crash ~phase ~skip:(Rng.next_int rng 2) s in
    let crashed =
      Domain.join
        (Domain.spawn (fun () ->
             Progress.attach progress 0;
             let r =
               Chaos.as_victim inj (fun () ->
                   try
                     (if Rng.next_int rng 2 = 0 then Obs_map.insert t k k
                      else ignore (Obs_map.remove t k));
                     false
                   with Chaos.Injected_crash _ -> true)
             in
             Progress.detach progress;
             r))
    in
    Chaos.clear ();
    if crashed then incr crashes
  done;
  Printf.printf "storm: %d/100 operations crashed mid-flight\n" !crashes;
  check "storm fired crashes" (!crashes > 0);
  (* Park one victim so the watchdog has a live stall to report. *)
  let announce =
    List.find (fun s -> Yp.name s = "cachetrie.txn.announce") (Yp.all ())
  in
  let inj = Chaos.stall ~phase:Yp.After announce in
  Obs_map.insert t 7 1;
  let victim =
    Domain.spawn (fun () ->
        Progress.attach progress 0;
        Chaos.as_victim inj (fun () -> Obs_map.insert t 7 2);
        Progress.detach progress)
  in
  obs_await "victim parked mid-transaction" (fun () -> Chaos.stalled inj);
  let wd = Harness.Watchdog.create ~stall_epochs:2 ~flight progress in
  for _ = 1 to 3 do
    ignore (Harness.Watchdog.step wd)
  done;
  let pm = Harness.Watchdog.post_mortem wd in
  print_newline ();
  print_string pm;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check "watchdog reports the parked victim"
    (Harness.Watchdog.stalled wd <> []);
  check "post-mortem embeds the flight dump" (contains pm "flight recorder");
  (* Honest flight-dump checks: nonempty and strictly stamp-ordered. *)
  let dump = Obs.Flight.dump flight in
  check "flight dump is non-empty" (dump <> []);
  let rec ordered = function
    | a :: (b :: _ as rest) ->
        a.Obs.Flight.stamp < b.Obs.Flight.stamp && ordered rest
    | _ -> true
  in
  check "flight dump is strictly stamp-ordered" (ordered dump);
  check "recorder saw the storm's yield points"
    (Obs.Flight.recorded flight > 0);
  (* Heal and release. *)
  let repairs = Obs_map.scrub t in
  check "scrub committed the parked transaction"
    (repairs >= 1 && Obs_map.lookup t 7 = Some 2);
  Chaos.release inj;
  Domain.join victim;
  check "structure validates after the storm"
    (Obs_map.validate t = Ok ());
  !failures

let obs_run timeout demo scale =
  arm_timeout timeout;
  match if demo then obs_demo () else obs_export scale with
  | [] -> 0
  | failures ->
      List.iter
        (fun f -> Printf.eprintf "repro obs: FAILED: %s\n%!" f)
        (List.rev failures);
      1
  | exception e ->
      Printf.eprintf "repro obs: failed: %s\n%!" (Printexc.to_string e);
      1

let obs_cmd =
  let demo_term =
    Arg.(
      value & flag
      & info [ "demo" ]
          ~doc:
            "Run the chaos crash-storm demo with the flight recorder and \
             print the watchdog post-mortem, instead of the export flow.")
  in
  Cmd.v
    (Cmd.info "obs"
       ~doc:
         "Observability: replay a traced workload with metrics and latency \
          histograms, check the counter invariants, and export JSON + \
          Prometheus text; or (--demo) run a crash storm with the flight \
          recorder and print a stamp-ordered post-mortem.")
    Term.(const obs_run $ timeout_term $ demo_term $ scale_term)

(* --------------------------- mc subcommand -------------------------- *)

(* repro mc                          explore the whole catalogue
   repro mc --scenario NAME          explore one scenario
   repro mc --trace FILE             replay a recorded counterexample

   Replay exits 0 only when the trace reproduces its failure exactly;
   a schedule that diverges (the structure's yield sequence changed) or
   no longer fails (the bug is gone — update the pinned trace) exits
   nonzero, so CI can keep minimized counterexamples honest. *)

let mc_explore_one sc =
  match Mc.explore ~preemption_bound:3 ~max_schedules:60_000 sc with
  | Mc.Pass { executions; complete } ->
      Printf.printf "%-40s pass (%d schedules%s)\n%!" sc.Mc.sname executions
        (if complete then ", complete" else ", budget exhausted");
      true
  | Mc.Fail c ->
      Printf.printf "%-40s FAIL: %s\n%s%!" sc.Mc.sname
        (Mc.pp_failure c.Mc.c_failure)
        (Mc.trace_to_string c);
      false

let mc_run timeout scenario trace =
  arm_timeout timeout;
  match trace with
  | Some file -> (
      let contents =
        let ic = open_in file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      match Mc.trace_of_string contents with
      | Error e ->
          Printf.eprintf "repro mc: cannot parse %s: %s\n%!" file e;
          2
      | Ok t -> (
          match Mc.Scenarios.find t.Mc.t_scenario with
          | None ->
              Printf.eprintf "repro mc: unknown scenario %s\n%!" t.Mc.t_scenario;
              2
          | Some sc -> (
              match Mc.replay sc t with
              | Mc.Reproduced f ->
                  Printf.printf "reproduced: %s\n%!" (Mc.pp_failure f);
                  0
              | Mc.Vanished ->
                  Printf.eprintf
                    "repro mc: schedule replays cleanly — failure vanished\n%!";
                  1
              | Mc.Diverged m ->
                  Printf.eprintf "repro mc: replay diverged: %s\n%!" m;
                  1)))
  | None -> (
      let scenarios =
        match scenario with
        | None -> Mc.Scenarios.all
        | Some name -> (
            match Mc.Scenarios.find name with
            | Some sc -> [ sc ]
            | None ->
                Printf.eprintf "repro mc: unknown scenario %s\n%!" name;
                exit 2)
      in
      let ok = List.for_all mc_explore_one scenarios in
      if ok then 0 else 1)

let mc_cmd =
  let scenario_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"NAME" ~doc:"Explore a single scenario.")
  in
  let trace_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Replay a recorded counterexample trace instead of exploring.")
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:
         "Deterministic schedule exploration: enumerate fiber interleavings \
          over the structures' yield points, or replay a minimized \
          counterexample trace.")
    Term.(const mc_run $ timeout_term $ scenario_term $ trace_term)

let all_cmd =
  let run timeout scale =
    guarded timeout (fun scale ->
        List.iter (fun (_, _, f) -> f scale) all_experiments)
      scale
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment in sequence.")
    Term.(const run $ timeout_term $ scale_term)

let () =
  let info =
    Cmd.info "repro" ~version:"1.0"
      ~doc:"Reproduce the evaluation of the Cache-Tries paper (PPoPP 2018)."
  in
  let cmds =
    (all_cmd :: List.map (fun (n, d, f) -> experiment n d f) all_experiments)
    @ [ mc_cmd; obs_cmd ]
  in
  exit (Cmd.eval' (Cmd.group info cmds))
