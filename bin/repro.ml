(* repro — command-line front end for the paper's experiments.

   Each subcommand regenerates one table/figure of the evaluation:

     repro fig9 [--full]     memory footprint (Figure 9)
     repro fig10 [--full]    single-threaded lookup/insert (Figure 10)
     repro fig11 [--full]    contended parallel insert (Figure 11)
     repro fig12 [--full]    disjoint parallel insert (Figure 12)
     repro fig13 [--full]    parallel lookup (Figure 13)
     repro hist [--full]     level-occupancy histograms (Artifact A.5.1)
     repro theory [--full]   Theorems 4.1-4.4 vs a real trie
     repro ablation [--full] cache on/off and max_misses sweep
     repro obs [--full|--demo] observability exports / flight-recorder demo
     repro all [--full]      everything above *)

open Cmdliner

let scale_term =
  let doc = "Run at paper-like sizes (minutes) instead of quick smoke sizes." in
  let full = Arg.(value & flag & info [ "full" ] ~doc) in
  Term.(const (fun f -> if f then Harness.Suites.Full else Harness.Suites.Quick) $ full)

let timeout_term =
  let doc =
    "Kill the run after $(docv) seconds with exit status 124 — the hard \
     deadline CI relies on when an experiment wedges instead of failing."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)

(* A detached watchdog thread, not an alarm: bechamel and the domains
   it spawns must keep their signal dispositions untouched. *)
let arm_timeout = function
  | None -> ()
  | Some seconds ->
      if seconds <= 0.0 then begin
        prerr_endline "repro: --timeout must be positive";
        exit 2
      end;
      ignore
        (Thread.create
           (fun () ->
             Unix.sleepf seconds;
             Printf.eprintf "repro: timeout of %gs exceeded\n%!" seconds;
             exit 124)
           ())

(* Nonzero exit on any experiment failure, so CI and scripts can trust
   the status code instead of scraping output. *)
let guarded timeout f scale =
  arm_timeout timeout;
  match f scale with
  | () -> 0
  | exception e ->
      Printf.eprintf "repro: experiment failed: %s\n%!" (Printexc.to_string e);
      1

let experiment name doc f =
  let run timeout scale = guarded timeout f scale in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ timeout_term $ scale_term)

let all_experiments =
  [
    ("fig9", "Memory footprint comparison (Figure 9, Artifact A.5.2).",
     Harness.Suites.fig9_footprint);
    ("fig10", "Single-threaded lookup and insert (Figure 10).",
     Harness.Suites.fig10_single_threaded);
    ("fig11", "Multi-threaded insert, high contention (Figure 11).",
     Harness.Suites.fig11_insert_high_contention);
    ("fig12", "Multi-threaded insert, low contention (Figure 12).",
     Harness.Suites.fig12_insert_low_contention);
    ("fig13", "Multi-threaded lookup (Figure 13).",
     Harness.Suites.fig13_parallel_lookup);
    ("hist", "Level-occupancy histograms (Artifact A.5.1).",
     Harness.Suites.histograms);
    ("theory", "Depth-distribution theory, Theorems 4.1-4.4 (Section 4.1).",
     Harness.Suites.theory);
    ("ablation", "Cache ablation: on/off and max_misses sweep.",
     Harness.Suites.ablation_cache);
    ("ablation-narrow", "Narrow-node (4-slot) ablation: insert time and footprint.",
     Harness.Suites.ablation_narrow);
    ("mixed", "Extension: YCSB-style mixed workloads across structures.",
     Harness.Suites.mixed_workload);
    ("zipf", "Extension: Zipf-skewed lookup throughput.",
     Harness.Suites.zipf_lookup);
    ("remove", "Extension: remove throughput and compression behaviour.",
     Harness.Suites.remove_throughput);
    ("trace", "Extension: production-style trace replay across structures.",
     Harness.Suites.trace_replay);
  ]

(* --------------------------- obs subcommand ------------------------- *)

(* repro obs [--full]        traced workload with metrics + latency +
                             exports; exits nonzero if the counter
                             invariants fail or an export is empty
   repro obs --demo          chaos crash-storm with the flight recorder
                             installed; prints the watchdog post-mortem
                             and exits nonzero if the flight dump is
                             empty or out of stamp order *)

module Yp = Ct_util.Yieldpoint
module Rng = Ct_util.Rng
module Progress = Ct_util.Progress
module Json = Harness.Report.Json
module Obs_map = Cachetrie.Make (Ct_util.Hashing.Int_key)
module Obs_replay = Harness.Trace.Replay (Obs_map)

let obs_await what f =
  let deadline = Unix.gettimeofday () +. 10.0 in
  while not (f ()) && Unix.gettimeofday () < deadline do
    Unix.sleepf 1e-4
  done;
  if not (f ()) then failwith ("repro obs: timed out waiting for " ^ what)

(* Traced workload: a single-domain replay whose lookup count the
   structure's own cache counters must reproduce exactly (every probe
   classified once), then a multi-domain timed replay feeding the
   latency histogram, then both exports. *)
let obs_export scale =
  let failures = ref [] in
  let check what ok =
    if not ok then failures := what :: !failures;
    Printf.printf "%-52s %s\n" what (if ok then "ok" else "FAIL")
  in
  let n =
    match scale with Harness.Suites.Quick -> 100_000 | Full -> 2_000_000
  in
  let trace = Harness.Trace.generate Harness.Trace.churn n in
  (* Phase 1 — accounting, one domain so no retry can re-probe. *)
  let t = Obs_map.create () in
  let prefill = Harness.Trace.churn.Harness.Trace.universe / 2 in
  let o1 =
    Obs_replay.replay ~prefill t
      (Array.sub trace 0 (min n 50_000))
  in
  let stats = Obs_map.stats t in
  let stat l = match List.assoc_opt l stats with Some v -> v | None -> 0 in
  check "cache_hits + cache_misses = lookups issued"
    (stat "cache_hits" + stat "cache_misses" = o1.Harness.Trace.hits + o1.Harness.Trace.misses);
  check "cas_retries <= cas_attempts (all families)"
    (Harness.Obs_report.invariants () = []);
  List.iter print_endline (Harness.Obs_report.invariants ());
  (* Phase 2 — timed parallel replay into the histogram. *)
  let t2 = Obs_map.create () in
  let hist = Obs.Latency.create ~label:"trace-op" in
  let domains = min 4 (Harness.Parallel.available_domains ()) in
  let o2 = Obs_replay.replay_parallel ~prefill ~latency:hist t2 ~domains trace in
  (match o2.Harness.Trace.latency with
  | None -> check "timed replay produced a latency summary" false
  | Some l ->
      Printf.printf
        "%d ops over %d domains: p50 %.0f ns, p99 %.0f ns, p99.9 %.0f ns\n"
        l.Harness.Trace.timed_ops domains l.Harness.Trace.p50_ns
        l.Harness.Trace.p99_ns l.Harness.Trace.p999_ns;
      check "histogram count matches timed ops"
        (Obs.Latency.total hist = l.Harness.Trace.timed_ops));
  (* Exports: deterministic JSON and Prometheus text. *)
  let json =
    Json.Obj
      [
        ("metrics", Harness.Obs_report.metrics_json ());
        ("latency", Harness.Obs_report.latency_json [ ("trace-op", hist) ]);
      ]
  in
  Json.write_file "obs_metrics.json" json;
  let prom = Obs.Export.prometheus ~histograms:[ ("trace-op", hist) ] () in
  let oc = open_out "obs_metrics.prom" in
  output_string oc prom;
  close_out oc;
  print_endline "wrote obs_metrics.prom";
  check "prometheus export has counter samples"
    (String.length prom > 0
    && String.split_on_char '\n' prom
       |> List.exists (fun l ->
              String.length l > 0 && l.[0] <> '#'));
  check "json export is non-trivial" (String.length (Json.to_string json) > 64);
  !failures

(* Crash-storm demo: flight recorder + progress share the observer
   slot; a parked victim makes the watchdog stall report fire, and the
   post-mortem embeds the stamp-ordered event dump. *)
let obs_demo () =
  let failures = ref [] in
  let check what ok =
    if not ok then failures := what :: !failures;
    Printf.printf "%-52s %s\n" what (if ok then "ok" else "FAIL")
  in
  let progress = Progress.create ~slots:4 () in
  let flight = Obs.Flight.create ~size:512 () in
  Obs.Flight.install_with_progress flight progress;
  let finally () =
    Chaos.clear ();
    Obs.Flight.uninstall ()
  in
  Fun.protect ~finally @@ fun () ->
  let t = Obs_map.create () in
  for k = 0 to 63 do
    Obs_map.insert t (1_000_000 + k) k
  done;
  (* Storm: crash victims mid-operation at random yield points. *)
  let sites = Array.of_list (Yp.with_prefix "cachetrie.") in
  let rng = Rng.create 0xD00D in
  let crashes = ref 0 in
  for k = 1 to 100 do
    let s = sites.(Rng.next_int rng (Array.length sites)) in
    let phase = if Rng.next_int rng 2 = 0 then Yp.Before else Yp.After in
    let inj = Chaos.crash ~phase ~skip:(Rng.next_int rng 2) s in
    let crashed =
      Domain.join
        (Domain.spawn (fun () ->
             Progress.attach progress 0;
             let r =
               Chaos.as_victim inj (fun () ->
                   try
                     (if Rng.next_int rng 2 = 0 then Obs_map.insert t k k
                      else ignore (Obs_map.remove t k));
                     false
                   with Chaos.Injected_crash _ -> true)
             in
             Progress.detach progress;
             r))
    in
    Chaos.clear ();
    if crashed then incr crashes
  done;
  Printf.printf "storm: %d/100 operations crashed mid-flight\n" !crashes;
  check "storm fired crashes" (!crashes > 0);
  (* Park one victim so the watchdog has a live stall to report. *)
  let announce =
    List.find (fun s -> Yp.name s = "cachetrie.txn.announce") (Yp.all ())
  in
  let inj = Chaos.stall ~phase:Yp.After announce in
  Obs_map.insert t 7 1;
  let victim =
    Domain.spawn (fun () ->
        Progress.attach progress 0;
        Chaos.as_victim inj (fun () -> Obs_map.insert t 7 2);
        Progress.detach progress)
  in
  obs_await "victim parked mid-transaction" (fun () -> Chaos.stalled inj);
  let wd = Harness.Watchdog.create ~stall_epochs:2 ~flight progress in
  for _ = 1 to 3 do
    ignore (Harness.Watchdog.step wd)
  done;
  let pm = Harness.Watchdog.post_mortem wd in
  print_newline ();
  print_string pm;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check "watchdog reports the parked victim"
    (Harness.Watchdog.stalled wd <> []);
  check "post-mortem embeds the flight dump" (contains pm "flight recorder");
  (* Honest flight-dump checks: nonempty and strictly stamp-ordered. *)
  let dump = Obs.Flight.dump flight in
  check "flight dump is non-empty" (dump <> []);
  let rec ordered = function
    | a :: (b :: _ as rest) ->
        a.Obs.Flight.stamp < b.Obs.Flight.stamp && ordered rest
    | _ -> true
  in
  check "flight dump is strictly stamp-ordered" (ordered dump);
  check "recorder saw the storm's yield points"
    (Obs.Flight.recorded flight > 0);
  (* Heal and release. *)
  let repairs = Obs_map.scrub t in
  check "scrub committed the parked transaction"
    (repairs >= 1 && Obs_map.lookup t 7 = Some 2);
  Chaos.release inj;
  Domain.join victim;
  check "structure validates after the storm"
    (Obs_map.validate t = Ok ());
  !failures

let obs_run timeout demo scale =
  arm_timeout timeout;
  match if demo then obs_demo () else obs_export scale with
  | [] -> 0
  | failures ->
      List.iter
        (fun f -> Printf.eprintf "repro obs: FAILED: %s\n%!" f)
        (List.rev failures);
      1
  | exception e ->
      Printf.eprintf "repro obs: failed: %s\n%!" (Printexc.to_string e);
      1

let obs_cmd =
  let demo_term =
    Arg.(
      value & flag
      & info [ "demo" ]
          ~doc:
            "Run the chaos crash-storm demo with the flight recorder and \
             print the watchdog post-mortem, instead of the export flow.")
  in
  Cmd.v
    (Cmd.info "obs"
       ~doc:
         "Observability: replay a traced workload with metrics and latency \
          histograms, check the counter invariants, and export JSON + \
          Prometheus text; or (--demo) run a crash storm with the flight \
          recorder and print a stamp-ordered post-mortem.")
    Term.(const obs_run $ timeout_term $ demo_term $ scale_term)

(* --------------------------- mc subcommand -------------------------- *)

(* repro mc                          explore the whole catalogue
   repro mc --scenario NAME          explore one scenario
   repro mc --trace FILE             replay a recorded counterexample

   Replay exits 0 only when the trace reproduces its failure exactly;
   a schedule that diverges (the structure's yield sequence changed) or
   no longer fails (the bug is gone — update the pinned trace) exits
   nonzero, so CI can keep minimized counterexamples honest. *)

let mc_explore_one sc =
  match Mc.explore ~preemption_bound:3 ~max_schedules:60_000 sc with
  | Mc.Pass { executions; complete } ->
      Printf.printf "%-40s pass (%d schedules%s)\n%!" sc.Mc.sname executions
        (if complete then ", complete" else ", budget exhausted");
      true
  | Mc.Fail c ->
      Printf.printf "%-40s FAIL: %s\n%s%!" sc.Mc.sname
        (Mc.pp_failure c.Mc.c_failure)
        (Mc.trace_to_string c);
      false

let mc_run timeout scenario trace =
  arm_timeout timeout;
  match trace with
  | Some file -> (
      let contents =
        let ic = open_in file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      match Mc.trace_of_string contents with
      | Error e ->
          Printf.eprintf "repro mc: cannot parse %s: %s\n%!" file e;
          2
      | Ok t -> (
          match Mc.Scenarios.find t.Mc.t_scenario with
          | None ->
              Printf.eprintf "repro mc: unknown scenario %s\n%!" t.Mc.t_scenario;
              2
          | Some sc -> (
              match Mc.replay sc t with
              | Mc.Reproduced f ->
                  Printf.printf "reproduced: %s\n%!" (Mc.pp_failure f);
                  0
              | Mc.Vanished ->
                  Printf.eprintf
                    "repro mc: schedule replays cleanly — failure vanished\n%!";
                  1
              | Mc.Diverged m ->
                  Printf.eprintf "repro mc: replay diverged: %s\n%!" m;
                  1)))
  | None -> (
      let scenarios =
        match scenario with
        | None -> Mc.Scenarios.all
        | Some name -> (
            match Mc.Scenarios.find name with
            | Some sc -> [ sc ]
            | None ->
                Printf.eprintf "repro mc: unknown scenario %s\n%!" name;
                exit 2)
      in
      let ok = List.for_all mc_explore_one scenarios in
      if ok then 0 else 1)

let mc_cmd =
  let scenario_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"NAME" ~doc:"Explore a single scenario.")
  in
  let trace_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Replay a recorded counterexample trace instead of exploring.")
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:
         "Deterministic schedule exploration: enumerate fiber interleavings \
          over the structures' yield points, or replay a minimized \
          counterexample trace.")
    Term.(const mc_run $ timeout_term $ scenario_term $ trace_term)

(* -------------------------- serve subcommand ------------------------ *)

(* repro serve                  overload soak: calibrate capacity on a
                                quiet run, then offer 2x with the
                                traffic-path chaos plan and bounded
                                worker stalls; verifies the load
                                generator ledger (zero silent drops),
                                the accepted-p99 bound, and that the
                                watchdog emitted a post-mortem for any
                                injected stall; ends with a drain
                                under live traffic
   repro serve --trace-out F    also save the soak's kvload trace
   repro serve --replay F       replay a saved kvload trace against a
                                fresh server and verify its ledger *)

module Loadgen = Kv.Loadgen

let serve_config ~workers =
  {
    (Kv.Server.default_config ()) with
    Kv.Server.workers;
    queue_capacity = 64;
    enqueue_budget = 4;
    p99_bound_ns = 150_000_000;
    p99_window = 32;
    tick_interval = 0.01;
    idle_timeout = 0.15;
    write_timeout = 0.5;
  }

(* Mild ambient hostility for the soak: rare connection severs and
   read pauses, plus an occasional slow-loris that the 0.15s idle
   timeout is expected to cut off mid-frame. *)
let serve_chaos_plan =
  {
    Chaos.Net.seed = 0xBAD5EED;
    drop_one_in = 400;
    loris_one_in = 2000;
    loris_chunk = 8;
    loris_delay = 0.2;
    pause_reads_one_in = 300;
    pause_reads_s = 0.05;
  }

let serve_deadline_ns = 80_000_000

let serve_workers () = max 2 (min 4 (Domain.recommended_domain_count () - 2))

(* The serving soak is generic over the map it fronts: [--map] picks
   the structure, running the same overload/chaos/drain gauntlet
   against the trie or the flat open-addressing contender. *)
module Serve (M : Ct_util.Map_intf.CONCURRENT_MAP with type key = int) = struct
  module Srv = Kv.Server.Make (M)

  let serve_soak scale trace_out =
  let failures = ref [] in
  let check what ok =
    if not ok then failures := what :: !failures;
    Printf.printf "%-56s %s\n%!" what (if ok then "ok" else "FAIL")
  in
  let duration, cal_n, soak_cap =
    match scale with
    | Harness.Suites.Quick -> (2.0, 20_000, 150_000)
    | Full -> (8.0, 60_000, 600_000)
  in
  let workers = serve_workers () in
  let progress = Progress.create ~slots:workers () in
  let flight = Obs.Flight.create ~size:1024 () in
  Obs.Flight.install_with_progress flight progress;
  Fun.protect
    ~finally:(fun () ->
      Chaos.clear ();
      Obs.Flight.uninstall ())
  @@ fun () ->
  let map = M.create () in
  let srv = Srv.start ~config:(serve_config ~workers) ~progress map in
  let port = Srv.port srv in
  (* Watchdog over the worker heartbeats; any stall episode prints a
     post-mortem with the flight dump. *)
  let stall_reports = Atomic.make 0 in
  let pm_emitted = ref "" in
  let wd = ref None in
  let on_stall r =
    Atomic.incr stall_reports;
    Printf.printf "watchdog: %s\n%!" (Harness.Watchdog.report_to_string r);
    match !wd with
    | Some w when !pm_emitted = "" ->
        let pm = Harness.Watchdog.post_mortem w in
        pm_emitted := pm;
        print_string pm;
        print_newline ()
    | _ -> ()
  in
  let w = Harness.Watchdog.create ~stall_epochs:3 ~on_stall ~flight progress in
  wd := Some w;
  Harness.Watchdog.start w ~interval:0.05;
  (* Phase 1 — calibrate: quiet network, saturating offered rate; the
     measured goodput is the capacity the soak doubles. *)
  let cal_plan =
    {
      Loadgen.default_plan with
      Loadgen.n = cal_n;
      conns = 8;
      rate = 60_000.0;
      deadline_ns = serve_deadline_ns;
      net = Chaos.Net.quiet;
    }
  in
  let cal = Loadgen.run ~port cal_plan in
  Printf.printf "calibration: %!";
  Format.printf "%a@." Loadgen.pp_summary cal;
  check "calibration ledger verifies" (Loadgen.verify cal = Ok ());
  let capacity = max 2_000.0 cal.Loadgen.ok_rate in
  (* Phase 2 — the soak: 2x measured capacity, chaos on, bounded
     worker stalls injected at the server's own yield points. *)
  let offered = 2.0 *. capacity in
  let n = min soak_cap (int_of_float (offered *. duration)) in
  let soak_plan =
    {
      Loadgen.default_plan with
      Loadgen.seed = 0x50AC;
      n;
      conns = 8;
      rate = offered;
      deadline_ns = serve_deadline_ns;
      net = serve_chaos_plan;
    }
  in
  (match trace_out with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (Loadgen.to_string soak_plan);
      close_out oc;
      Printf.printf "wrote %s\n%!" file);
  let stall =
    Chaos.Net.stall_sites ~seed:41 ~one_in:5_000 ~max_stalls:3 ~duration:0.3
      "server.worker."
  in
  Printf.printf "soak: offering %.0f req/s (2x measured capacity) for %d requests, chaos on\n%!"
    offered n;
  let s = Loadgen.run ~port soak_plan in
  Chaos.clear ();
  Format.printf "%a@." Loadgen.pp_summary s;
  check "soak ledger verifies (zero silent drops)" (Loadgen.verify s = Ok ());
  check "typed sheds observed under 2x overload" (Loadgen.shed s >= 1);
  let p99 = Obs.Latency.percentile (Srv.latency srv) 99.0 in
  Printf.printf "accepted-request p99 (server histogram): %.1f ms\n%!"
    (p99 /. 1e6);
  check "accepted p99 under the configured bound"
    (p99 <= float_of_int (serve_config ~workers).Kv.Server.p99_bound_ns);
  let server_sheds =
    Srv.stat srv "shed_queue_full"
    + Srv.stat srv "shed_latency_breach"
    + Srv.stat srv "shed_shutdown"
    + Srv.stat srv "deadline_expired"
  in
  (* The generator can only ever see a subset of the server's typed
     sheds (replies on connections that died in flight are lost). *)
  check "server accounted at least the client-observed sheds"
    (server_sheds >= Loadgen.shed s);
  Printf.printf "worker stalls injected: %d, watchdog stall reports: %d\n%!"
    (Chaos.Net.stalls_fired stall)
    (Atomic.get stall_reports);
  check "watchdog caught every injected stall episode"
    (Chaos.Net.stalls_fired stall = 0 || Atomic.get stall_reports >= 1);
  check "stall post-mortem embeds the flight dump"
    (Atomic.get stall_reports = 0
    ||
    let pm = !pm_emitted in
    String.length pm > 0
    &&
    let nn = String.length "flight recorder" in
    let rec go i =
      i + nn <= String.length pm
      && (String.sub pm i nn = "flight recorder" || go (i + 1))
    in
    go 0);
  if Srv.stat srv "shed_queue_full" > 0 then
    check "retry-budget exhaustion surfaced on the map's stats"
      (match List.assoc_opt "retry_exhausted" (M.stats map) with
      | Some v -> v >= 1
      | None -> false);
  (* Phase 3 — graceful drain under live traffic. *)
  let drain_plan =
    {
      soak_plan with
      Loadgen.seed = 0xD7A1;
      n = min 40_000 (int_of_float capacity);
      rate = capacity;
      net = Chaos.Net.quiet;
    }
  in
  let drain_result = ref None in
  let gen =
    Thread.create
      (fun () -> drain_result := Some (Loadgen.run ~port drain_plan))
      ()
  in
  Unix.sleepf 0.1;
  check "drain flushed every queued request" (Srv.drain ~timeout:10.0 srv);
  Thread.join gen;
  (match !drain_result with
  | None -> check "drain-phase load generator finished" false
  | Some d ->
      Format.printf "%a@." Loadgen.pp_summary d;
      check "drain-phase ledger verifies" (Loadgen.verify d = Ok ());
      check "drain produced typed shutdown replies or accounted drops"
        (d.Loadgen.shutting_down >= 1 || d.Loadgen.dropped >= 1));
  (* Workers detached on drain: a clean shutdown must not read as a
     stall. *)
  Harness.Watchdog.stop w;
  let post_drain_stalls = ref 0 in
  for _ = 1 to 3 do
    post_drain_stalls :=
      !post_drain_stalls + List.length (Harness.Watchdog.step w)
  done;
  check "clean drain leaves no stall reports" (!post_drain_stalls = 0);
  print_endline "server stats:";
  List.iter
    (fun (l, v) -> if v > 0 then Printf.printf "  %-24s %d\n" l v)
    (Srv.stats srv);
  !failures

  let serve_replay file =
  let failures = ref [] in
  let check what ok =
    if not ok then failures := what :: !failures;
    Printf.printf "%-56s %s\n%!" what (if ok then "ok" else "FAIL")
  in
  let contents =
    let ic = open_in file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  match Loadgen.of_string contents with
  | Error e ->
      Printf.eprintf "repro serve: cannot parse %s: %s\n%!" file e;
      [ "trace parses" ]
  | Ok plan ->
      let map = M.create () in
      let srv = Srv.start ~config:(serve_config ~workers:(serve_workers ())) map in
      Fun.protect ~finally:(fun () -> ignore (Srv.drain ~timeout:10.0 srv))
      @@ fun () ->
      let s = Loadgen.run ~port:(Srv.port srv) plan in
      Format.printf "%a@." Loadgen.pp_summary s;
      check "replayed ledger verifies (zero silent drops)"
        (Loadgen.verify s = Ok ());
      !failures
end

module Folklore_map = Oa.Folklore.Make (Ct_util.Hashing.Int_key)
module Serve_cachetrie = Serve (Obs_map)
module Serve_folklore = Serve (Folklore_map)

let serve_run timeout map_name replay trace_out scale =
  arm_timeout timeout;
  let soak, rep =
    match map_name with
    | "oa-folklore" -> (Serve_folklore.serve_soak, Serve_folklore.serve_replay)
    | _ -> (Serve_cachetrie.serve_soak, Serve_cachetrie.serve_replay)
  in
  match
    match replay with
    | Some file -> rep file
    | None -> soak scale trace_out
  with
  | [] -> 0
  | failures ->
      List.iter
        (fun f -> Printf.eprintf "repro serve: FAILED: %s\n%!" f)
        (List.rev failures);
      1
  | exception e ->
      Printf.eprintf "repro serve: failed: %s\n%!" (Printexc.to_string e);
      1

let serve_cmd =
  let replay_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a saved kvload trace against a fresh server and verify \
             its ledger, instead of running the soak.")
  in
  let trace_out_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write the soak's kvload trace to $(docv) for later --replay.")
  in
  let map_term =
    Arg.(
      value
      & opt (enum [ ("cachetrie", "cachetrie"); ("oa-folklore", "oa-folklore") ])
          "cachetrie"
      & info [ "map" ] ~docv:"MAP"
          ~doc:
            "Structure the server fronts: $(b,cachetrie) (default) or \
             $(b,oa-folklore).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Overload-hardened KV serving soak: calibrate capacity, offer 2x \
          with traffic-path chaos and injected worker stalls, verify the \
          zero-silent-drop ledger, the accepted-p99 bound and the watchdog \
          post-mortem, then drain under live traffic.")
    Term.(
      const serve_run $ timeout_term $ map_term $ replay_term $ trace_out_term
      $ scale_term)

let all_cmd =
  let run timeout scale =
    guarded timeout (fun scale ->
        List.iter (fun (_, _, f) -> f scale) all_experiments)
      scale
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment in sequence.")
    Term.(const run $ timeout_term $ scale_term)

let () =
  let info =
    Cmd.info "repro" ~version:"1.0"
      ~doc:"Reproduce the evaluation of the Cache-Tries paper (PPoPP 2018)."
  in
  let cmds =
    (all_cmd :: List.map (fun (n, d, f) -> experiment n d f) all_experiments)
    @ [ mc_cmd; obs_cmd; serve_cmd ]
  in
  exit (Cmd.eval' (Cmd.group info cmds))
