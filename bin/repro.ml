(* repro — command-line front end for the paper's experiments.

   Each subcommand regenerates one table/figure of the evaluation:

     repro fig9 [--full]     memory footprint (Figure 9)
     repro fig10 [--full]    single-threaded lookup/insert (Figure 10)
     repro fig11 [--full]    contended parallel insert (Figure 11)
     repro fig12 [--full]    disjoint parallel insert (Figure 12)
     repro fig13 [--full]    parallel lookup (Figure 13)
     repro hist [--full]     level-occupancy histograms (Artifact A.5.1)
     repro theory [--full]   Theorems 4.1-4.4 vs a real trie
     repro ablation [--full] cache on/off and max_misses sweep
     repro all [--full]      everything above *)

open Cmdliner

let scale_term =
  let doc = "Run at paper-like sizes (minutes) instead of quick smoke sizes." in
  let full = Arg.(value & flag & info [ "full" ] ~doc) in
  Term.(const (fun f -> if f then Harness.Suites.Full else Harness.Suites.Quick) $ full)

let timeout_term =
  let doc =
    "Kill the run after $(docv) seconds with exit status 124 — the hard \
     deadline CI relies on when an experiment wedges instead of failing."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)

(* A detached watchdog thread, not an alarm: bechamel and the domains
   it spawns must keep their signal dispositions untouched. *)
let arm_timeout = function
  | None -> ()
  | Some seconds ->
      if seconds <= 0.0 then begin
        prerr_endline "repro: --timeout must be positive";
        exit 2
      end;
      ignore
        (Thread.create
           (fun () ->
             Unix.sleepf seconds;
             Printf.eprintf "repro: timeout of %gs exceeded\n%!" seconds;
             exit 124)
           ())

(* Nonzero exit on any experiment failure, so CI and scripts can trust
   the status code instead of scraping output. *)
let guarded timeout f scale =
  arm_timeout timeout;
  match f scale with
  | () -> 0
  | exception e ->
      Printf.eprintf "repro: experiment failed: %s\n%!" (Printexc.to_string e);
      1

let experiment name doc f =
  let run timeout scale = guarded timeout f scale in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ timeout_term $ scale_term)

let all_experiments =
  [
    ("fig9", "Memory footprint comparison (Figure 9, Artifact A.5.2).",
     Harness.Suites.fig9_footprint);
    ("fig10", "Single-threaded lookup and insert (Figure 10).",
     Harness.Suites.fig10_single_threaded);
    ("fig11", "Multi-threaded insert, high contention (Figure 11).",
     Harness.Suites.fig11_insert_high_contention);
    ("fig12", "Multi-threaded insert, low contention (Figure 12).",
     Harness.Suites.fig12_insert_low_contention);
    ("fig13", "Multi-threaded lookup (Figure 13).",
     Harness.Suites.fig13_parallel_lookup);
    ("hist", "Level-occupancy histograms (Artifact A.5.1).",
     Harness.Suites.histograms);
    ("theory", "Depth-distribution theory, Theorems 4.1-4.4 (Section 4.1).",
     Harness.Suites.theory);
    ("ablation", "Cache ablation: on/off and max_misses sweep.",
     Harness.Suites.ablation_cache);
    ("ablation-narrow", "Narrow-node (4-slot) ablation: insert time and footprint.",
     Harness.Suites.ablation_narrow);
    ("mixed", "Extension: YCSB-style mixed workloads across structures.",
     Harness.Suites.mixed_workload);
    ("zipf", "Extension: Zipf-skewed lookup throughput.",
     Harness.Suites.zipf_lookup);
    ("remove", "Extension: remove throughput and compression behaviour.",
     Harness.Suites.remove_throughput);
    ("trace", "Extension: production-style trace replay across structures.",
     Harness.Suites.trace_replay);
  ]

(* --------------------------- mc subcommand -------------------------- *)

(* repro mc                          explore the whole catalogue
   repro mc --scenario NAME          explore one scenario
   repro mc --trace FILE             replay a recorded counterexample

   Replay exits 0 only when the trace reproduces its failure exactly;
   a schedule that diverges (the structure's yield sequence changed) or
   no longer fails (the bug is gone — update the pinned trace) exits
   nonzero, so CI can keep minimized counterexamples honest. *)

let mc_explore_one sc =
  match Mc.explore ~preemption_bound:3 ~max_schedules:60_000 sc with
  | Mc.Pass { executions; complete } ->
      Printf.printf "%-40s pass (%d schedules%s)\n%!" sc.Mc.sname executions
        (if complete then ", complete" else ", budget exhausted");
      true
  | Mc.Fail c ->
      Printf.printf "%-40s FAIL: %s\n%s%!" sc.Mc.sname
        (Mc.pp_failure c.Mc.c_failure)
        (Mc.trace_to_string c);
      false

let mc_run timeout scenario trace =
  arm_timeout timeout;
  match trace with
  | Some file -> (
      let contents =
        let ic = open_in file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      match Mc.trace_of_string contents with
      | Error e ->
          Printf.eprintf "repro mc: cannot parse %s: %s\n%!" file e;
          2
      | Ok t -> (
          match Mc.Scenarios.find t.Mc.t_scenario with
          | None ->
              Printf.eprintf "repro mc: unknown scenario %s\n%!" t.Mc.t_scenario;
              2
          | Some sc -> (
              match Mc.replay sc t with
              | Mc.Reproduced f ->
                  Printf.printf "reproduced: %s\n%!" (Mc.pp_failure f);
                  0
              | Mc.Vanished ->
                  Printf.eprintf
                    "repro mc: schedule replays cleanly — failure vanished\n%!";
                  1
              | Mc.Diverged m ->
                  Printf.eprintf "repro mc: replay diverged: %s\n%!" m;
                  1)))
  | None -> (
      let scenarios =
        match scenario with
        | None -> Mc.Scenarios.all
        | Some name -> (
            match Mc.Scenarios.find name with
            | Some sc -> [ sc ]
            | None ->
                Printf.eprintf "repro mc: unknown scenario %s\n%!" name;
                exit 2)
      in
      let ok = List.for_all mc_explore_one scenarios in
      if ok then 0 else 1)

let mc_cmd =
  let scenario_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"NAME" ~doc:"Explore a single scenario.")
  in
  let trace_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Replay a recorded counterexample trace instead of exploring.")
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:
         "Deterministic schedule exploration: enumerate fiber interleavings \
          over the structures' yield points, or replay a minimized \
          counterexample trace.")
    Term.(const mc_run $ timeout_term $ scenario_term $ trace_term)

let all_cmd =
  let run timeout scale =
    guarded timeout (fun scale ->
        List.iter (fun (_, _, f) -> f scale) all_experiments)
      scale
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment in sequence.")
    Term.(const run $ timeout_term $ scale_term)

let () =
  let info =
    Cmd.info "repro" ~version:"1.0"
      ~doc:"Reproduce the evaluation of the Cache-Tries paper (PPoPP 2018)."
  in
  let cmds =
    (all_cmd :: List.map (fun (n, d, f) -> experiment n d f) all_experiments)
    @ [ mc_cmd ]
  in
  exit (Cmd.eval' (Cmd.group info cmds))
