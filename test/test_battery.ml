(* A generic test battery applied to every concurrent map in the
   repository: the same sequential semantics, collision handling,
   model-agreement properties and multi-domain stress checks must hold
   for the cache-trie, the Ctrie, both hash maps, the skip list and the
   folklore open-addressing table.  The parameter is INT_MAKER rather
   than MAKER so the battery also covers constructions that only exist
   for integer keys (folklore packs keys into slot words); every
   generic MAKER coerces to INT_MAKER by functor contravariance. *)

open Ct_util

module Battery (Maker : Map_intf.INT_MAKER) = struct
  module M = Maker (Hashing.Int_key)
  module C = Maker (Hashing.Constant_hash_int)

  let check_int = Alcotest.(check int)
  let check_opt = Alcotest.(check (option int))
  let check_bool = Alcotest.(check bool)

  (* ------------------------- sequential ---------------------------- *)

  let test_empty () =
    let t = M.create () in
    check_opt "lookup" None (M.lookup t 1);
    check_bool "mem" false (M.mem t 1);
    check_int "size" 0 (M.size t);
    check_bool "is_empty" true (M.is_empty t);
    check_opt "remove" None (M.remove t 1);
    check_opt "replace" None (M.replace t 1 1)

  let test_basic_ops () =
    let t = M.create () in
    M.insert t 1 10;
    M.insert t 2 20;
    check_opt "k1" (Some 10) (M.lookup t 1);
    check_opt "k2" (Some 20) (M.lookup t 2);
    check_opt "absent" None (M.lookup t 3);
    check_int "size" 2 (M.size t);
    check_bool "not empty" false (M.is_empty t)

  let test_overwrite () =
    let t = M.create () in
    M.insert t 5 1;
    M.insert t 5 2;
    check_opt "latest" (Some 2) (M.lookup t 5);
    check_int "size" 1 (M.size t)

  let test_add_prev () =
    let t = M.create () in
    check_opt "first" None (M.add t 7 70);
    check_opt "second" (Some 70) (M.add t 7 71);
    check_opt "final" (Some 71) (M.lookup t 7)

  let test_put_if_absent () =
    let t = M.create () in
    check_opt "installs" None (M.put_if_absent t 3 30);
    check_opt "declines" (Some 30) (M.put_if_absent t 3 31);
    check_opt "kept" (Some 30) (M.lookup t 3)

  let test_replace () =
    let t = M.create () in
    check_opt "absent no-op" None (M.replace t 4 40);
    check_opt "still absent" None (M.lookup t 4);
    M.insert t 4 40;
    check_opt "replaces" (Some 40) (M.replace t 4 41);
    check_opt "new value" (Some 41) (M.lookup t 4)

  let test_replace_if () =
    let t = M.create () in
    check_bool "absent fails" false (M.replace_if t 1 ~expected:0 5);
    M.insert t 1 10;
    check_bool "wrong expected fails" false (M.replace_if t 1 ~expected:11 5);
    check_opt "unchanged" (Some 10) (M.lookup t 1);
    check_bool "right expected wins" true (M.replace_if t 1 ~expected:10 5);
    check_opt "changed" (Some 5) (M.lookup t 1)

  let test_remove_if () =
    let t = M.create () in
    check_bool "absent fails" false (M.remove_if t 1 ~expected:0);
    M.insert t 1 10;
    check_bool "wrong expected fails" false (M.remove_if t 1 ~expected:11);
    check_opt "still there" (Some 10) (M.lookup t 1);
    check_bool "right expected removes" true (M.remove_if t 1 ~expected:10);
    check_opt "gone" None (M.lookup t 1);
    check_bool "second attempt fails" false (M.remove_if t 1 ~expected:10)

  let test_remove () =
    let t = M.create () in
    M.insert t 1 10;
    M.insert t 2 20;
    check_opt "removed" (Some 10) (M.remove t 1);
    check_opt "gone" None (M.lookup t 1);
    check_opt "survivor" (Some 20) (M.lookup t 2);
    check_opt "again" None (M.remove t 1);
    check_int "size" 1 (M.size t)

  let test_churn () =
    let t = M.create () in
    for round = 1 to 4 do
      for i = 0 to 199 do
        M.insert t i (i + round)
      done;
      for i = 0 to 199 do
        if M.lookup t i <> Some (i + round) then Alcotest.failf "round %d lost %d" round i
      done;
      for i = 0 to 199 do
        if M.remove t i <> Some (i + round) then Alcotest.failf "round %d remove %d" round i
      done;
      check_int "emptied" 0 (M.size t)
    done

  let test_many_keys () =
    let n = 10_000 in
    let t = M.create () in
    for i = 0 to n - 1 do
      M.insert t i (i * 2)
    done;
    check_int "size" n (M.size t);
    for i = 0 to n - 1 do
      if M.lookup t i <> Some (i * 2) then Alcotest.failf "lost %d" i
    done;
    for i = n to n + 50 do
      check_opt "absent" None (M.lookup t i)
    done

  let test_negative_keys () =
    let t = M.create () in
    let keys = [ min_int; -12345; -1; 0; 1; 12345; max_int ] in
    List.iteri (fun i k -> M.insert t k i) keys;
    List.iteri (fun i k -> check_opt "neg key" (Some i) (M.lookup t k)) keys;
    check_int "distinct" (List.length keys) (M.size t)

  let test_aggregates () =
    let t = M.create () in
    for i = 1 to 50 do
      M.insert t i i
    done;
    check_int "fold" 1275 (M.fold (fun a _ v -> a + v) 0 t);
    let seen = ref 0 in
    M.iter (fun k v -> if k = v then incr seen) t;
    check_int "iter" 50 !seen;
    let l = M.to_list t in
    check_int "to_list" 50 (List.length l);
    Alcotest.(check (list int))
      "sorted keys" (List.init 50 (fun i -> i + 1))
      (List.sort compare (List.map fst l))

  let test_footprint () =
    let t = M.create () in
    let empty = M.footprint_words t in
    for i = 0 to 499 do
      M.insert t i i
    done;
    let filled = M.footprint_words t in
    check_bool "empty >= 0" true (empty >= 0);
    check_bool "filled > empty" true (filled > empty)

  (* ------------------------- collisions ---------------------------- *)

  let test_full_collisions () =
    let t = C.create () in
    for i = 0 to 15 do
      C.insert t i (100 + i)
    done;
    check_int "size" 16 (C.size t);
    for i = 0 to 15 do
      check_opt "collider" (Some (100 + i)) (C.lookup t i)
    done;
    check_opt "absent" None (C.lookup t 99);
    C.insert t 7 777;
    check_opt "updated" (Some 777) (C.lookup t 7);
    for i = 0 to 14 do
      check_bool "removed" true (C.remove t i <> None)
    done;
    check_int "one left" 1 (C.size t);
    check_opt "survivor" (Some 115) (C.lookup t 15)

  (* --------------------- read-path agreement ----------------------- *)

  (* [find], [mem] and [lookup] are three renderings of one read: on a
     random history they must agree at every step, both on the
     well-hashed map and on the all-collisions map (LNode path). *)
  let test_read_agreement () =
    let rng = Rng.create 0xA9EE in
    let t = M.create () in
    let c = C.create () in
    for _ = 1 to 2_000 do
      let k = Rng.next_int rng 64 in
      (match Rng.next_int rng 3 with
      | 0 ->
          M.insert t k (k * 3);
          C.insert c k (k * 3)
      | 1 ->
          ignore (M.remove t k);
          ignore (C.remove c k)
      | _ -> ());
      let l = M.lookup t k in
      check_bool "mem agrees with lookup" (l <> None) (M.mem t k);
      (match M.find t k with
      | v -> check_opt "find agrees with lookup" (Some v) l
      | exception Not_found -> check_opt "find agrees with lookup" None l);
      let lc = C.lookup c k in
      check_bool "collision mem agrees" (lc <> None) (C.mem c k);
      match C.find c k with
      | v -> check_opt "collision find agrees" (Some v) lc
      | exception Not_found -> check_opt "collision find agrees" None lc
    done

  (* --------------------------- batch ops --------------------------- *)

  (* Sequential batch contract: a batch IS the corresponding scalar
     loop.  Runs against both hash regimes — the staged trie/probe
     descent and the all-collisions chain paths — with batches larger
     than any implementation's chunk size (64) so the multi-chunk path
     executes, and with the extreme keys so packed-key edge cases
     (the folklore table's reserved [min_int]) are covered. *)
  module Batch_checks (X : Map_intf.CONCURRENT_MAP with type key = int) =
  struct
    let check_int = Alcotest.(check int)

    let roundtrip () =
      let t = X.create () in
      let n = 300 in
      let keys =
        Array.append
          (Array.init n (fun i -> i * 131 mod n))
          [| min_int; max_int; -7 |]
      in
      let m = Array.length keys in
      (* Odd values, so an even [miss] sentinel is never a real hit. *)
      let vals = Array.map (fun k -> (k * 2) + 1) keys in
      X.insert_batch t keys vals;
      check_int "size after insert_batch" m (X.size t);
      let out = Array.make m 0 in
      check_int "all keys hit" m (X.find_batch t keys ~miss:0 out);
      Array.iteri
        (fun i v ->
          if v <> vals.(i) then Alcotest.failf "slot %d: %d <> %d" i v vals.(i))
        out;
      (* Remove half, plus keys that were never present. *)
      let half = m / 2 in
      let to_remove =
        Array.append (Array.sub keys 0 half) [| 999_999; 888_888 |]
      in
      check_int "remove_batch counts bound keys" half (X.remove_batch t to_remove);
      check_int "hits after remove" (m - half) (X.find_batch t keys ~miss:0 out);
      Array.iteri
        (fun i v ->
          let expect = if i < half then 0 else vals.(i) in
          if v <> expect then
            Alcotest.failf "slot %d after remove: %d <> %d" i v expect)
        out;
      (* Later duplicates win within one insert batch. *)
      X.insert_batch t [| 5; 5; 5 |] [| 100; 200; 300 |];
      (match X.lookup t 5 with
      | Some 300 -> ()
      | Some v -> Alcotest.failf "dup insert batch kept %d" v
      | None -> Alcotest.fail "dup insert batch lost the key");
      (* A key removed by an earlier slot of the same batch counts once. *)
      X.insert t 1_000_000 1;
      check_int "dup remove counts once" 1 (X.remove_batch t [| 1_000_000; 1_000_000 |]);
      (* Empty batches are no-ops. *)
      check_int "empty find" 0 (X.find_batch t [||] ~miss:0 [||]);
      X.insert_batch t [||] [||];
      check_int "empty remove" 0 (X.remove_batch t [||]);
      (* Argument validation. *)
      (match X.find_batch t [| 1; 2 |] ~miss:0 [| 0 |] with
      | _ -> Alcotest.fail "short out array accepted"
      | exception Invalid_argument _ -> ());
      match X.insert_batch t [| 1 |] [| 1; 2 |] with
      | () -> Alcotest.fail "length mismatch accepted"
      | exception Invalid_argument _ -> ()
  end

  module MB = Batch_checks (M)
  module CB = Batch_checks (C)

  (* ----------------------- model agreement ------------------------- *)

  let prop_model ops =
    let t = M.create () in
    let model = Hashtbl.create 64 in
    List.iter
      (fun (tag, k, v) ->
        match tag mod 4 with
        | 0 ->
            let pm = Hashtbl.find_opt model k in
            let pt = M.add t k v in
            Hashtbl.replace model k v;
            if pm <> pt then QCheck.Test.fail_reportf "add prev mismatch on %d" k
        | 1 ->
            let pm = Hashtbl.find_opt model k in
            let pt = M.remove t k in
            Hashtbl.remove model k;
            if pm <> pt then QCheck.Test.fail_reportf "remove prev mismatch on %d" k
        | 2 ->
            if M.lookup t k <> Hashtbl.find_opt model k then
              QCheck.Test.fail_reportf "lookup mismatch on %d" k
        | _ ->
            let pm = Hashtbl.find_opt model k in
            let pt = M.put_if_absent t k v in
            if pm = None then Hashtbl.replace model k v;
            if pm <> pt then QCheck.Test.fail_reportf "pia mismatch on %d" k)
      ops;
    Hashtbl.fold
      (fun k v ok -> ok && M.lookup t k = Some v)
      model
      (M.size t = Hashtbl.length model)

  let model_test =
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:120 ~name:"agrees with Hashtbl model"
         QCheck.(list (triple small_nat (int_bound 47) (int_bound 999)))
         prop_model)

  (* ------------------------- concurrency --------------------------- *)

  let n_domains = 4

  let spawn_all n f =
    let barrier = Atomic.make 0 in
    List.init n (fun d ->
        Domain.spawn (fun () ->
            Atomic.incr barrier;
            while Atomic.get barrier < n do
              Domain.cpu_relax ()
            done;
            f d))
    |> List.map Domain.join

  let test_conc_disjoint () =
    let t = M.create () in
    let per = 5_000 in
    ignore
      (spawn_all n_domains (fun d ->
           for i = 0 to per - 1 do
             M.insert t ((d * per) + i) d
           done));
    check_int "all present" (n_domains * per) (M.size t);
    for d = 0 to n_domains - 1 do
      for i = 0 to per - 1 do
        if M.lookup t ((d * per) + i) <> Some d then
          Alcotest.failf "lost key %d" ((d * per) + i)
      done
    done

  let test_conc_overlapping () =
    let t = M.create () in
    let n = 8_000 in
    ignore
      (spawn_all n_domains (fun d ->
           for i = 0 to n - 1 do
             M.insert t i d
           done));
    check_int "n keys" n (M.size t);
    for i = 0 to n - 1 do
      match M.lookup t i with
      | Some v when v >= 0 && v < n_domains -> ()
      | _ -> Alcotest.failf "bad value for %d" i
    done

  let test_conc_pia_winners () =
    let t = M.create () in
    let n = 4_000 in
    let wins =
      spawn_all n_domains (fun d ->
          let w = ref 0 in
          for i = 0 to n - 1 do
            if M.put_if_absent t i d = None then incr w
          done;
          !w)
    in
    check_int "one winner per key" n (List.fold_left ( + ) 0 wins)

  let test_conc_insert_remove () =
    let t = M.create () in
    let per = 2_000 in
    ignore
      (spawn_all n_domains (fun d ->
           let base = d * per in
           for round = 1 to 4 do
             for i = 0 to per - 1 do
               M.insert t (base + i) round
             done;
             for i = 0 to per - 1 do
               if M.remove t (base + i) = None then
                 failwith (Printf.sprintf "domain %d lost %d" d (base + i))
             done
           done));
    check_int "emptied" 0 (M.size t)

  let test_conc_mixed_single_key () =
    let t = M.create () in
    ignore
      (spawn_all n_domains (fun d ->
           for i = 1 to 5_000 do
             match (i + d) land 3 with
             | 0 -> M.insert t 99 ((d * 10_000) + i)
             | 1 -> ignore (M.lookup t 99)
             | 2 -> ignore (M.remove t 99)
             | _ -> ignore (M.put_if_absent t 99 d)
           done));
    (* Converge to a known state. *)
    M.insert t 99 1234;
    check_opt "usable after contention" (Some 1234) (M.lookup t 99)

  let test_conc_counter_exact () =
    (* Lost-update detection: every increment goes through the
       replace_if compare-and-swap, so the final sum must be exact. *)
    let t = M.create () in
    let keys = 16 and per_domain = 2_000 in
    for k = 0 to keys - 1 do
      M.insert t k 0
    done;
    ignore
      (spawn_all n_domains (fun d ->
           let rng = Ct_util.Rng.create (d + 1) in
           for _ = 1 to per_domain do
             let k = Ct_util.Rng.next_int rng keys in
             let rec bump () =
               match M.lookup t k with
               | Some v -> if not (M.replace_if t k ~expected:v (v + 1)) then bump ()
               | None -> bump ()
             in
             bump ()
           done));
    check_int "no lost updates" (n_domains * per_domain)
      (M.fold (fun a _ v -> a + v) 0 t)

  let test_weak_aggregates_under_churn () =
    (* Weak-consistency contract of the aggregates: while writers churn
       a volatile key range, iteration must always include every key of
       a stable range (present throughout) and never double-count it. *)
    let t = M.create () in
    let stable = 500 and volatile = 500 in
    for i = 0 to stable - 1 do
      M.insert t i 1
    done;
    let stop = Atomic.make false in
    let writer =
      Domain.spawn (fun () ->
          let i = ref 0 in
          while not (Atomic.get stop) do
            let k = stable + (!i mod volatile) in
            M.insert t k 1;
            ignore (M.remove t (stable + ((!i + (volatile / 2)) mod volatile)));
            incr i
          done)
    in
    for _pass = 1 to 50 do
      let stable_seen = Array.make stable 0 in
      M.iter (fun k _ -> if k < stable then stable_seen.(k) <- stable_seen.(k) + 1) t;
      Array.iteri
        (fun k c ->
          if c <> 1 then begin
            Atomic.set stop true;
            Alcotest.failf "stable key %d seen %d times in iter" k c
          end)
        stable_seen;
      let n = M.size t in
      if n < stable || n > stable + volatile then begin
        Atomic.set stop true;
        Alcotest.failf "size %d outside [%d, %d]" n stable (stable + volatile)
      end
    done;
    Atomic.set stop true;
    Domain.join writer

  (* ----------------------- validate & scrub ------------------------ *)

  let check_valid what = function
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s: validate failed: %s" what e

  let test_validate_quiescent () =
    let t = M.create () in
    check_valid "empty" (M.validate t);
    for i = 0 to 499 do
      M.insert t i (i * 7)
    done;
    for i = 0 to 499 do
      if i land 3 = 0 then ignore (M.remove t i)
    done;
    check_valid "after churn" (M.validate t);
    let c = C.create () in
    for i = 0 to 15 do
      C.insert c i i
    done;
    for i = 0 to 7 do
      ignore (C.remove c i)
    done;
    check_valid "collision map" (C.validate c)

  (* No domain crashed, so quiescence implies residue-freedom: every
     completed operation cleaned up after itself. *)
  let test_validate_after_contention () =
    let t = M.create () in
    ignore
      (spawn_all n_domains (fun d ->
           let rng = Ct_util.Rng.create (0x5C4B + d) in
           for _ = 1 to 3_000 do
             let k = Ct_util.Rng.next_int rng 256 in
             match Ct_util.Rng.next_int rng 3 with
             | 0 -> M.insert t k (k + d)
             | 1 -> ignore (M.remove t k)
             | _ -> ignore (M.lookup t k)
           done));
    check_valid "quiescent after contention" (M.validate t)

  (* Scrub on a quiescent structure: preserves the contents exactly,
     leaves it valid, and a second pass finds nothing left to repair
     (idempotence).  The first pass may legitimately count repairs —
     e.g. clearing benignly-stale cache entries — but never a second
     time. *)
  let prop_scrub ops =
    let t = M.create () in
    List.iter
      (fun (tag, k, v) ->
        match tag mod 3 with
        | 0 -> M.insert t k v
        | 1 -> ignore (M.remove t k)
        | _ -> ignore (M.put_if_absent t k v))
      ops;
    let sorted l = List.sort compare l in
    let before = sorted (M.to_list t) in
    let _first_pass : int = M.scrub t in
    (match M.validate t with
    | Ok () -> ()
    | Error e -> QCheck.Test.fail_reportf "validate after scrub: %s" e);
    if sorted (M.to_list t) <> before then
      QCheck.Test.fail_reportf "scrub changed the contents";
    let second = M.scrub t in
    if second <> 0 then
      QCheck.Test.fail_reportf "second scrub repaired %d things" second;
    true

  let scrub_test =
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:60
         ~name:"scrub is idempotent and content-preserving"
         QCheck.(list (triple small_nat (int_bound 47) (int_bound 999)))
         prop_scrub)

  let test_conc_collisions () =
    let t = C.create () in
    ignore
      (spawn_all n_domains (fun d ->
           for round = 1 to 100 do
             for k = 0 to 7 do
               C.insert t k ((d * 1000) + round);
               if (k + d) land 1 = 0 then ignore (C.remove t k);
               ignore (C.lookup t k)
             done
           done));
    for k = 0 to 7 do
      C.insert t k k
    done;
    for k = 0 to 7 do
      check_opt "collider converged" (Some k) (C.lookup t k)
    done

  (* Batch/scalar read agreement under concurrent writers: writers only
     ever bind k to k*7, so every find_batch slot must read either the
     miss sentinel or k*7, and the returned hit count must match the
     non-miss slots.  Once the writers join, batch and scalar reads
     must agree exactly. *)
  let test_batch_scalar_agreement () =
    let t = M.create () in
    let universe = 1024 in
    let stop = Atomic.make false in
    let writers =
      List.init 2 (fun d ->
          Domain.spawn (fun () ->
              let rng = Ct_util.Rng.create (0xBA7C + d) in
              while not (Atomic.get stop) do
                let k = Ct_util.Rng.next_int rng universe in
                if Ct_util.Rng.next_int rng 2 = 0 then M.insert t k (k * 7)
                else ignore (M.remove t k)
              done))
    in
    (* A permutation, so chunks mix hot and cold trie paths. *)
    let keys = Array.init universe (fun i -> i * 37 mod universe) in
    let out = Array.make universe (-1) in
    for _pass = 1 to 50 do
      let hits = M.find_batch t keys ~miss:(-1) out in
      let counted = ref 0 in
      Array.iteri
        (fun i v ->
          if v <> -1 then begin
            let k = keys.(i) in
            if v <> k * 7 then begin
              Atomic.set stop true;
              Alcotest.failf "key %d read %d (neither miss nor %d)" k v (k * 7)
            end;
            incr counted
          end)
        out;
      if !counted <> hits then begin
        Atomic.set stop true;
        Alcotest.failf "hit count %d but %d non-miss slots" hits !counted
      end
    done;
    Atomic.set stop true;
    List.iter Domain.join writers;
    let hits = M.find_batch t keys ~miss:(-1) out in
    let scalar_hits = ref 0 in
    Array.iteri
      (fun i v ->
        let k = keys.(i) in
        match M.find t k with
        | sv ->
            incr scalar_hits;
            if v <> sv then Alcotest.failf "quiescent: key %d batch %d scalar %d" k v sv
        | exception Not_found ->
            if v <> -1 then Alcotest.failf "quiescent: key %d batch %d scalar miss" k v)
      out;
    check_int "quiescent hit counts agree" !scalar_hits hits

  let suite =
    [
      ("empty", `Quick, test_empty);
      ("basic_ops", `Quick, test_basic_ops);
      ("overwrite", `Quick, test_overwrite);
      ("add_prev", `Quick, test_add_prev);
      ("put_if_absent", `Quick, test_put_if_absent);
      ("replace", `Quick, test_replace);
      ("replace_if", `Quick, test_replace_if);
      ("remove_if", `Quick, test_remove_if);
      ("remove", `Quick, test_remove);
      ("churn", `Quick, test_churn);
      ("many_keys", `Quick, test_many_keys);
      ("negative_keys", `Quick, test_negative_keys);
      ("aggregates", `Quick, test_aggregates);
      ("footprint", `Quick, test_footprint);
      ("full_collisions", `Quick, test_full_collisions);
      ("read_agreement", `Quick, test_read_agreement);
      ("batch_roundtrip", `Quick, MB.roundtrip);
      ("batch_collisions", `Quick, CB.roundtrip);
      ("validate_quiescent", `Quick, test_validate_quiescent);
      model_test;
      scrub_test;
      ("conc_disjoint", `Slow, test_conc_disjoint);
      ("conc_overlapping", `Slow, test_conc_overlapping);
      ("conc_pia_winners", `Slow, test_conc_pia_winners);
      ("conc_insert_remove", `Slow, test_conc_insert_remove);
      ("conc_mixed_single_key", `Slow, test_conc_mixed_single_key);
      ("conc_counter_exact", `Slow, test_conc_counter_exact);
      ("weak_aggregates_under_churn", `Slow, test_weak_aggregates_under_churn);
      ("conc_collisions", `Slow, test_conc_collisions);
      ("batch_scalar_agreement", `Slow, test_batch_scalar_agreement);
      ("validate_after_contention", `Slow, test_validate_after_contention);
    ]
end

module Cachetrie_battery = Battery (Cachetrie.Make)

(* The boxed-slot twin runs the identical battery: the layout swap must
   be behaviourally invisible. *)
module Cachetrie_boxed_battery = Battery (Cachetrie_boxed.Make)
module Ctrie_battery = Battery (Ctrie.Make)
module Ctrie_snap_battery = Battery (Ctrie_snap.Make)
module Chm_battery = Battery (Chm.Split_ordered.Make)
module Striped_battery = Battery (Chm.Striped.Make)
module Skiplist_battery = Battery (Skiplist.Make)
module Cow_battery = Battery (Hamts.Cow_map.Make)

(* The folklore open-addressing table only constructs over int keys
   (it packs them into slot words); the INT_MAKER battery covers it in
   full, including the migration paths its growth thresholds hit. *)
module Folklore_battery = Battery (Oa.Folklore.Make)
