(* Crash-storm soak: the self-healing story end to end (DESIGN.md §9).

   For each lock-free structure we repeatedly crash a victim domain
   mid-operation at a randomly drawn (yield point, phase, occurrence),
   accumulating whatever residue the abandoned operations leave behind
   — live descriptors, announced transactions, half-frozen subtrees,
   entombed/marked nodes, uncommitted GCAS/RDCSS boxes, unburied dead
   bindings.  Then ONE [scrub] must heal everything:

   - [validate] returns [Ok ()] afterwards, with no ordinary traffic
     having help-completed anything in between;
   - a second [scrub] returns 0 (nothing left — idempotence);
   - the surviving contents agree exactly with a sequential model in
     which every crashed operation either happened atomically or not
     at all (the linearizability of abandoned operations: scrub may
     commit an announced change or discard an unannounced one, but
     never expose a half-applied state).

   Each crash targets a fresh key, so after the scrub a single lookup
   per key decides which way the abandoned operation resolved; the
   resolved model is then compared against the structure's full
   contents.

   The storm is seeded (SOAK_SEED) and bounded (SOAK_CRASHES fired
   crashes per structure, default 200) so CI can run it under a hard
   timeout; SOAK_REPORT names a file that receives one summary line
   per structure, uploaded as an artifact on failure. *)

module Yp = Ct_util.Yieldpoint
module Rng = Ct_util.Rng
module Hashing = Ct_util.Hashing
module Progress = Ct_util.Progress
module Watchdog = Harness.Watchdog
module CT = Cachetrie.Make (Hashing.Int_key)

module type MAP = Ct_util.Map_intf.CONCURRENT_MAP with type key = int

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default)
  | None -> default

let report_line fmt =
  Printf.ksprintf
    (fun line ->
      match Sys.getenv_opt "SOAK_REPORT" with
      | None -> ()
      | Some path ->
          let oc =
            open_out_gen [ Open_append; Open_creat ] 0o644 path
          in
          output_string oc (line ^ "\n");
          close_out oc)
    fmt

let site name =
  match List.find_opt (fun s -> Yp.name s = name) (Yp.all ()) with
  | Some s -> s
  | None -> Alcotest.failf "yield point %s is not registered" name

let check_valid what = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: validate failed: %s" what e

let await ?(what = "condition") f =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 1e-4;
      go ()
    end
  in
  go ()

(* --------------------------- crash storm --------------------------- *)

(* One storm iteration crashes one operation on one fresh key; the
   permissible post-scrub states are the operation's atomic before/
   after values. *)
type episode = { key : int; allowed : int option list }

let prefill_base = 1_000_000
let prefill_n = 64

let storm (module M : MAP) sname prefix () =
  (* Flight recorder on the observer slot: the crash injectors live in
     the main hook, so both run — and an oracle failure below can name
     the exact yield-point event sequence that led up to it. *)
  let flight = Obs.Flight.create ~size:1024 () in
  Obs.Flight.install flight;
  let finally () =
    Chaos.clear ();
    Obs.Flight.uninstall ()
  in
  Fun.protect ~finally @@ fun () ->
  let dump_flight () =
    let d = Obs.Flight.dump_to_string ~limit:64 flight in
    report_line "%s: flight recorder:\n%s" sname d;
    Printf.printf "-- flight recorder (last 64 events) --\n%s\n%!" d
  in
  let sites = Array.of_list (Yp.with_prefix prefix) in
  check_bool (prefix ^ " has instrumented points") true
    (Array.length sites > 0);
  let seed = env_int "SOAK_SEED" 0xC0FFEE in
  let quota = env_int "SOAK_CRASHES" 200 in
  let rng = Rng.create (seed + Hashtbl.hash sname) in
  let t = M.create () in
  (* A prefilled contended range gives the storm structural depth
     (expansions, entombments, towers) without touching storm keys. *)
  for k = 0 to prefill_n - 1 do
    M.insert t (prefill_base + k) k
  done;
  let episodes = ref [] in
  let crashes = ref 0 and iters = ref 0 in
  let max_iters = quota * 25 in
  while !crashes < quota && !iters < max_iters do
    incr iters;
    let k = !iters in
    let s = sites.(Rng.next_int rng (Array.length sites)) in
    let phase = if Rng.next_int rng 2 = 0 then Yp.Before else Yp.After in
    let skip = Rng.next_int rng 2 in
    let flavor = Rng.next_int rng 3 in
    let v0 = 1000 + k and v1 = 2000 + k in
    (* Flavors 1 and 2 first bind the key cleanly, then crash the
       remove / overwrite — the residue states differ per flavor. *)
    if flavor > 0 then M.insert t k v0;
    let inj = Chaos.crash ~phase ~skip s in
    let crashed =
      Domain.join
        (Domain.spawn (fun () ->
             Chaos.as_victim inj (fun () ->
                 try
                   (match flavor with
                   | 0 -> M.insert t k v0
                   | 1 -> ignore (M.remove t k)
                   | _ -> M.insert t k v1);
                   false
                 with Chaos.Injected_crash _ -> true)))
    in
    Chaos.clear ();
    if crashed then incr crashes;
    let allowed =
      match (flavor, crashed) with
      | 0, false -> [ Some v0 ]
      | 0, true -> [ None; Some v0 ]
      | 1, false -> [ None ]
      | 1, true -> [ Some v0; None ]
      | _, false -> [ Some v1 ]
      | _, true -> [ Some v0; Some v1 ]
    in
    episodes := { key = k; allowed } :: !episodes
  done;
  if !crashes < quota then
    Alcotest.failf "%s: only %d/%d crashes fired in %d iterations" sname
      !crashes quota !iters;
  (* One scrub heals the whole storm's residue at once. *)
  let repairs = M.scrub t in
  (match M.validate t with
  | Ok () -> ()
  | Error e ->
      report_line "%s: FAILED validate after scrub: %s" sname e;
      dump_flight ();
      Alcotest.failf "%s: invalid after scrub (%d repairs): %s" sname repairs e);
  let second = M.scrub t in
  if second <> 0 then begin
    report_line "%s: FAILED second scrub repaired %d" sname second;
    dump_flight ();
    Alcotest.failf "%s: second scrub repaired %d things" sname second
  end;
  (* Resolve each abandoned operation and rebuild the sequential
     model; then the structure's full contents must match it exactly. *)
  let model = Hashtbl.create 1024 in
  for k = 0 to prefill_n - 1 do
    Hashtbl.replace model (prefill_base + k) k
  done;
  List.iter
    (fun { key; allowed } ->
      let actual = M.lookup t key in
      if not (List.mem actual allowed) then begin
        dump_flight ();
        Alcotest.failf "%s: key %d resolved to %s, allowed {%s}" sname key
          (match actual with None -> "absent" | Some v -> string_of_int v)
          (String.concat ", "
             (List.map
                (function None -> "absent" | Some v -> string_of_int v)
                allowed))
      end;
      match actual with
      | Some v -> Hashtbl.replace model key v
      | None -> Hashtbl.remove model key)
    !episodes;
  let sorted l = List.sort compare l in
  let actual = sorted (M.to_list t) in
  let expected =
    sorted (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [])
  in
  if actual <> expected then begin
    dump_flight ();
    Alcotest.failf "%s: contents diverge from the sequential model (%d vs %d bindings)"
      sname (List.length actual) (List.length expected)
  end;
  report_line "%s: %d crashes in %d iterations, %d repairs, validate ok" sname
    !crashes !iters repairs

(* ----------------------- scrub vs live traffic ---------------------- *)

(* Scrub only performs helping steps any operation could, so running it
   in a tight loop against mutating peers must neither wedge nor
   corrupt: afterwards the structure validates and every key holds one
   of the values some writer actually wrote. *)
let test_scrub_live_traffic () =
  let t = CT.create () in
  let keys = 256 in
  for k = 0 to keys - 1 do
    CT.insert t k 0
  done;
  let stop = Atomic.make false in
  let writers =
    List.init 3 (fun d ->
        Domain.spawn (fun () ->
            let rng = Rng.create (0xACE + d) in
            while not (Atomic.get stop) do
              let k = Rng.next_int rng keys in
              match Rng.next_int rng 4 with
              | 0 -> CT.insert t k ((d * 1000) + k)
              | 1 -> ignore (CT.remove t k)
              | 2 -> ignore (CT.put_if_absent t k ((d * 1000) + k))
              | _ -> ignore (CT.lookup t k)
            done))
  in
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < 0.3 do
    ignore (CT.scrub t)
  done;
  Atomic.set stop true;
  List.iter Domain.join writers;
  ignore (CT.scrub t);
  check_valid "after concurrent scrubbing" (CT.validate t);
  check_int "quiescent scrub is a no-op" 0 (CT.scrub t);
  for k = 0 to keys - 1 do
    match CT.lookup t k with
    | None -> ()
    | Some v ->
        if not (v = 0 || (v mod 1000 = k && v / 1000 <= 2)) then
          Alcotest.failf "key %d holds %d, never written" k v
  done

(* ------------------------ watchdog pinpoint ------------------------ *)

(* A victim parked by the stall injector mid-transaction must be (a)
   detected by the watchdog, (b) attributed to the exact yield-point
   site it is parked at, and (c) recoverable around: the escalation
   scrub commits its announced transaction while it is still parked. *)
let test_watchdog_pinpoint () =
  let progress = Progress.create ~slots:4 () in
  let finally () =
    Chaos.clear ();
    Progress.uninstall ()
  in
  Fun.protect ~finally @@ fun () ->
  Progress.install progress;
  let s = site "cachetrie.txn.announce" in
  let inj = Chaos.stall ~phase:Yp.After s in
  let t = CT.create () in
  CT.insert t 7 1;
  let victim =
    Domain.spawn (fun () ->
        Progress.attach progress 0;
        Chaos.as_victim inj (fun () -> CT.insert t 7 2);
        Progress.detach progress)
  in
  await ~what:"victim parked mid-transaction" (fun () -> Chaos.stalled inj);
  let escalations = ref [] in
  let wd =
    Watchdog.create ~stall_epochs:2
      ~on_stall:(fun r -> escalations := r :: !escalations)
      progress
  in
  (* Main keeps beating on its own slot: it must never be flagged.
     (Manual beats, not trie traffic — an insert whose key happened to
     share the victim's root slot would help-commit the parked
     transaction and steal the scrub's repair below.) *)
  Progress.attach progress 1;
  let reports = ref [] in
  for _ = 1 to 4 do
    Progress.beat progress;
    reports := Watchdog.step wd
  done;
  Progress.detach progress;
  (match !reports with
  | [ r ] ->
      check_int "stalled slot" 0 r.Watchdog.slot;
      check_bool "epochs accumulate" true (r.Watchdog.epochs_stalled >= 2);
      (match r.Watchdog.site with
      | Some rs ->
          Alcotest.(check string)
            "watchdog names the parked site" (Yp.name s) (Yp.name rs)
      | None -> Alcotest.fail "watchdog lost the stalled site");
      check_bool "parked after publication" true
        (r.Watchdog.phase = Some Yp.After);
      check_bool "report renders" true
        (String.length (Watchdog.report_to_string r) > 0)
  | rs -> Alcotest.failf "expected exactly the victim stalled, got %d reports"
            (List.length rs));
  check_int "escalation ran once per episode" 1 (List.length !escalations);
  List.iter
    (fun r -> report_line "watchdog: %s" (Watchdog.report_to_string r))
    !reports;
  (* Escalation: scrub commits the parked domain's announced Replace. *)
  let repairs = CT.scrub t in
  check_bool "scrub repaired the announced txn" true (repairs >= 1);
  check_valid "valid while victim still parked" (CT.validate t);
  check_bool "announced write committed by scrub" true (CT.lookup t 7 = Some 2);
  Chaos.release inj;
  Domain.join victim;
  Chaos.clear ();
  check_valid "after victim resumes" (CT.validate t);
  (* The victim detached on exit: its stall episode is over. *)
  ignore (Watchdog.step wd);
  check_int "no stalls after release" 0 (List.length (Watchdog.stalled wd))

(* The background monitor thread drives epochs off a wall-clock
   interval and escalates without any stepping from the test. *)
let test_watchdog_monitor_thread () =
  let progress = Progress.create ~slots:4 () in
  let finally () =
    Chaos.clear ();
    Progress.uninstall ()
  in
  Fun.protect ~finally @@ fun () ->
  Progress.install progress;
  let s = site "cachetrie.txn.announce" in
  let inj = Chaos.stall ~phase:Yp.After s in
  let t = CT.create () in
  CT.insert t 3 1;
  let victim =
    Domain.spawn (fun () ->
        Progress.attach progress 0;
        Chaos.as_victim inj (fun () -> CT.insert t 3 2))
  in
  await ~what:"victim parked" (fun () -> Chaos.stalled inj);
  let healed = Atomic.make false in
  let wd =
    Watchdog.create ~stall_epochs:2
      ~on_stall:(fun _ ->
        ignore (CT.scrub t);
        Atomic.set healed true)
      progress
  in
  Watchdog.start wd ~interval:0.01;
  await ~what:"monitor escalates to scrub" (fun () -> Atomic.get healed);
  Watchdog.stop wd;
  check_valid "healed while victim parked" (CT.validate t);
  check_bool "committed" true (CT.lookup t 3 = Some 2);
  Chaos.release inj;
  Domain.join victim

(* ------------------------------ suite ------------------------------ *)

let storm_case name (module M : MAP) prefix =
  (Printf.sprintf "storm_%s" name, `Slow, storm (module M : MAP) name prefix)

module CTR = Ctrie.Make (Hashing.Int_key)
module CSN = Ctrie_snap.Make (Hashing.Int_key)
module CHM = Chm.Split_ordered.Make (Hashing.Int_key)
module SKL = Skiplist.Make (Hashing.Int_key)

let suite =
  [
    ("watchdog_pinpoint", `Quick, test_watchdog_pinpoint);
    ("watchdog_monitor_thread", `Quick, test_watchdog_monitor_thread);
    ("scrub_live_traffic", `Slow, test_scrub_live_traffic);
    storm_case "cachetrie" (module CT) "cachetrie.";
    storm_case "ctrie" (module CTR) "ctrie.";
    storm_case "ctrie_snap" (module CSN) "ctrie_snap.";
    storm_case "chm" (module CHM) "chm.";
    storm_case "skiplist" (module SKL) "skiplist.";
  ]
