(* Multi-domain stress tests for the cache-trie. *)

open Ct_util
module CT = Cachetrie.Make (Hashing.Int_key)

let n_domains = 4

(* Spin barrier so domains start their critical section together. *)
let make_barrier n =
  let waiting = Atomic.make 0 in
  fun () ->
    Atomic.incr waiting;
    while Atomic.get waiting < n do
      Domain.cpu_relax ()
    done

let run_domains n f =
  let barrier = make_barrier n in
  let domains =
    List.init n (fun i -> Domain.spawn (fun () -> barrier (); f i))
  in
  List.map Domain.join domains

let test_disjoint_inserts () =
  let t = CT.create () in
  let per = 20_000 in
  ignore
    (run_domains n_domains (fun d ->
         for i = 0 to per - 1 do
           CT.insert t ((d * per) + i) d
         done));
  Alcotest.(check int) "all present" (n_domains * per) (CT.size t);
  for d = 0 to n_domains - 1 do
    for i = 0 to per - 1 do
      let k = (d * per) + i in
      if CT.lookup t k <> Some d then Alcotest.failf "lost key %d" k
    done
  done;
  match CT.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariant: %s" e

let test_overlapping_inserts () =
  (* All domains insert the same keys (paper's high-contention bench):
     every key must end up present exactly once, value from some domain. *)
  let t = CT.create () in
  let n = 30_000 in
  ignore
    (run_domains n_domains (fun d ->
         for i = 0 to n - 1 do
           CT.insert t i d
         done));
  Alcotest.(check int) "exactly n keys" n (CT.size t);
  for i = 0 to n - 1 do
    match CT.lookup t i with
    | Some v when v >= 0 && v < n_domains -> ()
    | Some v -> Alcotest.failf "key %d has impossible value %d" i v
    | None -> Alcotest.failf "key %d missing" i
  done;
  match CT.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariant: %s" e

let test_concurrent_insert_lookup () =
  (* Writers fill disjoint ranges while readers continuously scan; a
     reader must never see a key disappear once observed. *)
  let t = CT.create () in
  let per = 15_000 in
  let writers = 2 and readers = 2 in
  let results =
    run_domains (writers + readers) (fun d ->
        if d < writers then begin
          for i = 0 to per - 1 do
            CT.insert t ((d * per) + i) i
          done;
          0
        end
        else begin
          let regressions = ref 0 in
          let seen = Hashtbl.create 64 in
          for _pass = 1 to 20 do
            for k = 0 to (writers * per) - 1 do
              match CT.lookup t k with
              | Some _ -> Hashtbl.replace seen k true
              | None -> if Hashtbl.mem seen k then incr regressions
            done
          done;
          !regressions
        end)
  in
  List.iteri
    (fun i r -> Alcotest.(check int) (Printf.sprintf "no regressions (domain %d)" i) 0 r)
    results;
  Alcotest.(check int) "final size" (writers * per) (CT.size t)

let test_concurrent_insert_remove () =
  (* Each domain owns a key range and repeatedly inserts/removes it;
     at the end everything must be gone and the trie valid. *)
  let t = CT.create () in
  let per = 4_000 in
  ignore
    (run_domains n_domains (fun d ->
         let base = d * per in
         for round = 1 to 5 do
           for i = 0 to per - 1 do
             CT.insert t (base + i) round
           done;
           for i = 0 to per - 1 do
             if CT.remove t (base + i) = None then
               failwith (Printf.sprintf "domain %d lost its own key %d" d (base + i))
           done
         done));
  Alcotest.(check int) "emptied" 0 (CT.size t);
  match CT.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariant: %s" e

let test_contended_single_key () =
  (* Hammer one key from all domains with mixed operations; the final
     state must be one of the possible outcomes and lookups must never
     see a value nobody wrote. *)
  let t = CT.create () in
  let iters = 20_000 in
  ignore
    (run_domains n_domains (fun d ->
         for i = 1 to iters do
           if i land 3 = 0 then ignore (CT.remove t 42)
           else CT.insert t 42 ((d * iters) + i)
         done));
  (match CT.lookup t 42 with
  | None -> ()
  | Some v ->
      Alcotest.(check bool) "value was written by someone" true
        (v >= 1 && v <= n_domains * iters));
  match CT.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariant: %s" e

let test_contended_collisions () =
  (* All keys collide into LNodes; concurrent churn on the list. *)
  let module C = Cachetrie.Make (Hashing.Constant_hash_int) in
  let t = C.create () in
  ignore
    (run_domains n_domains (fun d ->
         for round = 1 to 200 do
           for k = 0 to 15 do
             C.insert t k ((d * 1000) + round);
             if (k + d) land 1 = 0 then ignore (C.remove t k);
             ignore (C.lookup t k)
           done
         done));
  (* Converge: reinsert all and verify. *)
  for k = 0 to 15 do
    C.insert t k k
  done;
  for k = 0 to 15 do
    Alcotest.(check (option int)) "collider present" (Some k) (C.lookup t k)
  done;
  Alcotest.(check int) "16 colliders" 16 (C.size t)

let test_put_if_absent_unique_winner () =
  (* Exactly one domain must win each put_if_absent. *)
  let t = CT.create () in
  let n = 10_000 in
  let winners = Array.init n_domains (fun _ -> ref 0) in
  ignore
    (run_domains n_domains (fun d ->
         for i = 0 to n - 1 do
           if CT.put_if_absent t i d = None then incr winners.(d)
         done));
  let total = Array.fold_left (fun acc r -> acc + !r) 0 winners in
  Alcotest.(check int) "each key won exactly once" n total;
  for i = 0 to n - 1 do
    match CT.lookup t i with
    | Some v when v >= 0 && v < n_domains -> ()
    | _ -> Alcotest.failf "bad winner for %d" i
  done

let test_concurrent_with_fast_paths () =
  (* Force a cache (low trigger), then run mixed traffic through it. *)
  let config =
    {
      Cachetrie.default_config with
      cache_trigger_level = 4;
      min_cache_level = 4;
      max_misses = 32;
      sample_paths = 8;
    }
  in
  let t = CT.create_with ~config () in
  for i = 0 to 9_999 do
    CT.insert t i i
  done;
  for i = 0 to 9_999 do
    ignore (CT.lookup t i)
  done;
  ignore
    (run_domains n_domains (fun d ->
         for round = 1 to 3 do
           for i = 0 to 9_999 do
             match (i + d + round) land 3 with
             | 0 -> CT.insert t i (i + round)
             | 1 -> ignore (CT.lookup t i)
             | 2 -> ignore (CT.remove t i)
             | _ -> ignore (CT.put_if_absent t i i)
           done
         done));
  (* Quiesce and verify the map still answers consistently. *)
  for i = 0 to 9_999 do
    CT.insert t i (-i)
  done;
  for i = 0 to 9_999 do
    if CT.lookup t i <> Some (-i) then Alcotest.failf "fast-path corruption at %d" i
  done;
  match CT.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariant: %s" e

let test_linear_counter_increments () =
  (* Lost-update detection: domains CAS-increment counters stored in
     the map via put/replace loops; the sum must be exact. *)
  let t = CT.create () in
  let keys = 64 and per_domain = 5_000 in
  for k = 0 to keys - 1 do
    CT.insert t k 0
  done;
  ignore
    (run_domains n_domains (fun d ->
         let rng = Rng.create (d + 1) in
         for _ = 1 to per_domain do
           let k = Rng.next_int rng keys in
           let rec bump () =
             match CT.lookup t k with
             | Some v -> if not (CT.replace_if t k ~expected:v (v + 1)) then bump ()
             | None -> bump ()
           in
           bump ()
         done));
  let total = CT.fold (fun acc _ v -> acc + v) 0 t in
  Alcotest.(check int) "no lost updates" (n_domains * per_domain) total

module CT_bad = Cachetrie.Make (Hashing.Bad_hash_int)

let test_deep_chain_churn () =
  (* Identity hashes force long narrow-node chains; concurrent insert/
     remove churn exercises expansion and compression racing each
     other on the same paths. *)
  let t = CT_bad.create () in
  ignore
    (run_domains n_domains (fun d ->
         for round = 1 to 10 do
           for i = 0 to 399 do
             let k = i * 1024 in
             match (i + d + round) land 3 with
             | 0 | 1 -> CT_bad.insert t k (d + i)
             | 2 -> ignore (CT_bad.remove t k)
             | _ -> ignore (CT_bad.lookup t k)
           done
         done));
  (* Converge to a known state and verify. *)
  for i = 0 to 399 do
    CT_bad.insert t (i * 1024) i
  done;
  for i = 0 to 399 do
    if CT_bad.lookup t (i * 1024) <> Some i then
      Alcotest.failf "deep churn lost %d" (i * 1024)
  done;
  Alcotest.(check int) "size" 400 (CT_bad.size t);
  (match CT_bad.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "deep churn invariant: %s" e);
  let s = CT_bad.cache_stats t in
  Alcotest.(check bool) "expansions under churn" true (s.Cachetrie.expansions > 0);
  Alcotest.(check bool) "compressions under churn" true (s.Cachetrie.compressions > 0)

let test_removal_storm_then_empty () =
  (* All domains remove overlapping ranges so most removals race;
     afterwards the trie must be fully empty and structurally clean. *)
  let t = CT.create () in
  let n = 20_000 in
  for i = 0 to n - 1 do
    CT.insert t i i
  done;
  let removed_counts =
    run_domains n_domains (fun _d ->
        let mine = ref 0 in
        for i = 0 to n - 1 do
          if CT.remove t i <> None then incr mine
        done;
        !mine)
  in
  Alcotest.(check int) "each key removed exactly once" n
    (List.fold_left ( + ) 0 removed_counts);
  Alcotest.(check int) "empty" 0 (CT.size t);
  match CT.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "post-storm invariant: %s" e

let suite =
  [
    ("deep_chain_churn", `Slow, test_deep_chain_churn);
    ("removal_storm_then_empty", `Slow, test_removal_storm_then_empty);
    ("disjoint_inserts", `Slow, test_disjoint_inserts);
    ("overlapping_inserts", `Slow, test_overlapping_inserts);
    ("concurrent_insert_lookup", `Slow, test_concurrent_insert_lookup);
    ("concurrent_insert_remove", `Slow, test_concurrent_insert_remove);
    ("contended_single_key", `Slow, test_contended_single_key);
    ("contended_collisions", `Slow, test_contended_collisions);
    ("put_if_absent_unique_winner", `Slow, test_put_if_absent_unique_winner);
    ("concurrent_with_fast_paths", `Slow, test_concurrent_with_fast_paths);
    ("linear_counter_increments", `Slow, test_linear_counter_increments);
  ]
