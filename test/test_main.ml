(* Aggregated alcotest entry point for all suites. *)

let () =
  Alcotest.run "cachetries"
    [
      ("util", Test_util.suite);
      ("cachetrie", Test_cachetrie.suite);
      ("cachetrie-concurrent", Test_cachetrie_concurrent.suite);
      ("cachetrie-props", Test_cachetrie_props.suite);
      ("battery-cachetrie", Test_battery.Cachetrie_battery.suite);
      ("battery-cachetrie-boxed", Test_battery.Cachetrie_boxed_battery.suite);
      ("battery-ctrie", Test_battery.Ctrie_battery.suite);
      ("battery-ctrie-snap", Test_battery.Ctrie_snap_battery.suite);
      ("battery-chm", Test_battery.Chm_battery.suite);
      ("battery-chm-striped", Test_battery.Striped_battery.suite);
      ("battery-skiplist", Test_battery.Skiplist_battery.suite);
      ("battery-cow-hamt", Test_battery.Cow_battery.suite);
      ("battery-oa-folklore", Test_battery.Folklore_battery.suite);
      ("ctrie", Test_ctrie.suite);
      ("ctrie-snap", Test_ctrie_snap.suite);
      ("skiplist", Test_skiplist.suite);
      ("chm", Test_chm.suite);
      ("hamt", Test_hamt.suite);
      ("analysis", Test_analysis.suite);
      ("lincheck", Test_lincheck.suite);
      ("chaos", Test_chaos.suite);
      ("soak", Test_soak.suite);
      ("mc", Test_mc.suite);
      ("harness", Test_harness.suite);
      ("obs", Test_obs.suite);
      ("cache", Test_cache.suite);
      ("server", Test_server.suite);
      ("persist", Test_persist.suite);
    ]
