(* Bounded cache tier (DESIGN.md §15): budget-never-exceeded under
   sequential and concurrent churn, deterministic TTL expiry via an
   injected clock, per-policy eviction order (FIFO / CLOCK / SLRU),
   negative caching as stampede protection, admission rejection of
   oversized entries, and the ring/wheel substrates in isolation. *)

module M = Cachetrie.Make (Ct_util.Hashing.Int_key)
module C = Cache.Make (M)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ov = Cache.entry_overhead_words

(* Deterministic caches: one stripe (so replacement order is a single
   FIFO), zero-cost values (every entry costs exactly [ov]), and an
   injected counter clock. *)
let make ?(policy = Cache.Fifo) ?(entries = 3) ?clk () =
  let cfg =
    {
      (Cache.default_config ~budget_words:(entries * ov)) with
      Cache.policy;
      stripes = 1;
      max_entry_frac = 1.0;
      wheel_slots = 8;
      wheel_tick_ns = 10;
    }
  in
  let now =
    match clk with Some c -> fun () -> Atomic.get c | None -> fun () -> 0
  in
  C.create ~config:cfg ~now ~cost:(fun _ _ -> 0) ()

let check_ok what t =
  match C.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: validate: %s" what e

(* ------------------------------- ring ------------------------------ *)

let test_ring_fifo () =
  let r = Ring.create ~capacity:4 in
  check_int "rounded capacity" 4 (Ring.capacity r);
  let displaced = ref [] in
  let keep k = displaced := k :: !displaced in
  List.iter (fun k -> Ring.push r k ~on_displace:keep) [ 1; 2; 3; 4 ];
  check_int "nothing displaced while roomy" 0 (List.length !displaced);
  Ring.push r 5 ~on_displace:keep;
  check_bool "full push displaces the oldest" true (!displaced = [ 1 ]);
  let drained = List.filter_map (fun _ -> Ring.pop r) [ (); (); (); () ] in
  check_bool "FIFO drain order" true (drained = [ 2; 3; 4; 5 ]);
  check_bool "then empty" true (Ring.pop r = None);
  check_int "length empty" 0 (Ring.length r)

let test_ring_concurrent () =
  let r = Ring.create ~capacity:1024 in
  let per = 2_000 and dom = 4 in
  let popped = Array.init dom (fun _ -> Atomic.make 0) in
  let displaced = Atomic.make 0 in
  let workers =
    Array.init dom (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              Ring.push r
                ((d * per) + i)
                ~on_displace:(fun _ -> Atomic.incr displaced);
              if i land 1 = 0 then
                match Ring.pop r with
                | Some _ -> Atomic.incr popped.(d)
                | None -> ()
            done))
  in
  Array.iter Domain.join workers;
  let rec drain n = match Ring.pop r with Some _ -> drain (n + 1) | None -> n in
  let final = drain 0 in
  let pops = Array.fold_left (fun a c -> a + Atomic.get c) 0 popped in
  (* Every push landed; accounts may only diverge by abandoned slots,
     which are lost, never duplicated. *)
  check_bool "no element duplicated" true
    (pops + Atomic.get displaced + final <= dom * per)

(* ------------------------------- wheel ----------------------------- *)

let test_wheel_fires_due () =
  let w = Wheel.create ~slots:4 ~tick_ns:10 ~now:0 in
  Wheel.add w 1 ~expires_at:25;
  Wheel.add w 2 ~expires_at:1000;
  check_int "both pending" 2 (Wheel.pending w);
  let fired = ref [] in
  let n = Wheel.advance w ~now:30 ~expire:(fun k -> fired := k :: !fired) in
  check_int "one due item fired" 1 n;
  check_bool "the due one" true (!fired = [ 1 ]);
  (* The far item re-queues until its revolution comes around. *)
  check_int "future item still pending" 1 (Wheel.pending w);
  let n2 = Wheel.advance w ~now:1000 ~expire:(fun k -> fired := k :: !fired) in
  check_int "fires on its revolution" 1 n2;
  check_int "wheel drained" 0 (Wheel.pending w)

let test_wheel_no_tick_no_work () =
  let w = Wheel.create ~slots:4 ~tick_ns:1_000_000 ~now:0 in
  Wheel.add w 1 ~expires_at:10;
  (* Same tick as the cursor: nothing to walk yet. *)
  check_int "no boundary crossed" 0
    (Wheel.advance w ~now:999 ~expire:(fun _ -> assert false))

(* ----------------------------- admission --------------------------- *)

let test_budget_and_accounting () =
  let t = make ~entries:4 () in
  check_int "empty uses nothing" 0 (C.used_words t);
  for k = 1 to 3 do
    check_bool "admitted" true (C.put t k (k * 10))
  done;
  check_int "three resident reservations" (3 * ov) (C.used_words t);
  check_int "resident" 3 (C.resident t);
  check_ok "loaded cache" t;
  (* Overwrite below full occupancy (at capacity the conservative
     pre-[add] reservation of prev + new would evict first). *)
  check_bool "overwrite admitted" true (C.put t 2 222);
  check_int "overwrite releases the old reservation" (3 * ov) (C.used_words t);
  check_bool "overwritten value visible" true (C.get t 2 = Some 222);
  check_bool "remove" true (C.remove t 2);
  check_int "remove releases" (2 * ov) (C.used_words t);
  check_bool "remove missing" false (C.remove t 2);
  check_ok "after churn" t

let test_oversized_rejected () =
  let cfg =
    {
      (Cache.default_config ~budget_words:(100 * ov)) with
      Cache.stripes = 1;
      max_entry_frac = 0.1;
    }
  in
  let t = C.create ~config:cfg ~cost:(fun _ v -> v) () in
  check_bool "whale refused" false (C.put t 1 10_000);
  check_bool "nothing resident" true (C.resident t = 0 && C.used_words t = 0);
  check_bool "modest entry still admitted" true (C.put t 2 10);
  check_int "one rejection counted" 1 (C.stats t).Cache.rejections;
  check_ok "after rejection" t

let test_eviction_fifo () =
  let t = make ~policy:Cache.Fifo ~entries:3 () in
  List.iter (fun k -> ignore (C.put t k k)) [ 1; 2 ];
  (* FIFO ignores recency: touching 1 must not save it... *)
  check_bool "hit 1" true (C.get t 1 = Some 1);
  (* ...and overwriting 1 (below capacity, so no transient eviction)
     must not refresh its admission-order position either. *)
  check_bool "overwrite keeps order" true (C.put t 1 11);
  check_bool "admit 3" true (C.put t 3 3);
  check_bool "admit 4 evicts" true (C.put t 4 4);
  check_bool "oldest (1) evicted despite touch+overwrite" true
    (C.get t 1 = None);
  check_bool "2 survives" true (C.get t 2 = Some 2);
  check_bool "3 survives" true (C.get t 3 = Some 3);
  check_bool "4 resident" true (C.get t 4 = Some 4);
  check_int "exactly one eviction" 1 (C.stats t).Cache.evictions;
  check_int "still within budget" (3 * ov) (C.used_words t);
  check_ok "fifo" t

let test_eviction_clock_second_chance () =
  let t = make ~policy:Cache.Clock_hand ~entries:3 () in
  List.iter (fun k -> ignore (C.put t k k)) [ 1; 2; 3 ];
  check_bool "touch 1" true (C.get t 1 = Some 1);
  check_bool "admit 4" true (C.put t 4 4);
  (* CLOCK: 1 was touched, so it gets a second chance; untouched 2 is
     the victim. *)
  check_bool "touched 1 survives" true (C.get t 1 = Some 1);
  check_bool "untouched 2 evicted" true (C.get t 2 = None);
  check_bool "3 survives" true (C.get t 3 = Some 3);
  check_ok "clock" t

let test_eviction_slru_probation_first () =
  let t = make ~policy:Cache.Slru ~entries:3 () in
  List.iter (fun k -> ignore (C.put t k k)) [ 1; 2; 3 ];
  (* Promote 1 into the protected segment. *)
  check_bool "promoting hit" true (C.get t 1 = Some 1);
  check_bool "admit 4" true (C.put t 4 4);
  check_bool "protected 1 survives" true (C.get t 1 = Some 1);
  check_bool "probation 2 evicted" true (C.get t 2 = None);
  check_bool "probation 3 survives" true (C.get t 3 = Some 3);
  check_ok "slru" t

(* -------------------------------- TTL ------------------------------ *)

let test_ttl_deterministic () =
  let clk = Atomic.make 0 in
  let t = make ~entries:8 ~clk () in
  check_bool "put with ttl" true (C.put ~ttl_ns:100 t 1 1);
  check_bool "put forever" true (C.put t 2 2);
  check_bool "live before deadline" true (C.get t 1 = Some 1);
  Atomic.set clk 100;
  (* expires_at = 100 <= now: dead exactly at the deadline, and the
     read path both misses and reclaims. *)
  check_bool "dead at deadline" true (C.get t 1 = None);
  check_int "read path reclaimed it" 1 (C.resident t);
  check_int "reservation released" ov (C.used_words t);
  check_bool "no-ttl entry unaffected" true (C.get t 2 = Some 2);
  check_int "one expiration counted" 1 (C.stats t).Cache.expirations;
  check_ok "after expiry" t

let test_ttl_wheel_reclaims () =
  let clk = Atomic.make 0 in
  let t = make ~entries:8 ~clk () in
  for k = 1 to 4 do
    ignore (C.put ~ttl_ns:50 t k k)
  done;
  check_int "resident before" 4 (C.resident t);
  Atomic.set clk 200;
  (* No reads: only the wheel reclaims. *)
  check_int "wheel fires all four" 4 (C.expire_now t);
  check_int "wheel reclaimed" 0 (C.resident t);
  check_int "all reservations released" 0 (C.used_words t);
  check_ok "after wheel" t

let test_ttl_refresh_wins_race () =
  let clk = Atomic.make 0 in
  let t = make ~entries:8 ~clk () in
  ignore (C.put ~ttl_ns:50 t 1 1);
  Atomic.set clk 60;
  (* Refresh after the old deadline: the stale wheel item must not
     reap the new entry. *)
  ignore (C.put ~ttl_ns:1_000 t 1 11);
  ignore (C.expire_now t);
  check_bool "refreshed entry survives stale schedule" true
    (C.get t 1 = Some 11);
  check_ok "after refresh" t

(* -------------------------- negative caching ----------------------- *)

let test_negative_caching () =
  let clk = Atomic.make 0 in
  let t = make ~entries:8 ~clk () in
  let loads = ref 0 in
  let load _ =
    incr loads;
    None
  in
  check_bool "first lookup loads and misses" true
    (C.get_or_load t 404 ~load = None);
  check_int "one load" 1 !loads;
  for _ = 1 to 50 do
    check_bool "served from the Absent entry" true
      (C.get_or_load t 404 ~load = None)
  done;
  check_int "negative entry absorbed the storm" 1 !loads;
  check_int "negative hits counted" 50 (C.stats t).Cache.negative_hits;
  (* After the negative TTL the backing store is consulted again. *)
  Atomic.set clk 2_000_000_000;
  check_bool "still none" true (C.get_or_load t 404 ~load = None);
  check_int "reloaded after negative ttl" 2 !loads;
  check_ok "negative" t

let test_negative_stampede_concurrent () =
  let t = make ~entries:8 () in
  let loads = Atomic.make 0 in
  let load _ =
    Atomic.incr loads;
    None
  in
  (* Warm the Absent entry, then storm it from several domains: the
     cached negative answers everyone without touching the backer. *)
  ignore (C.get_or_load t 7 ~load);
  let doms =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 5_000 do
              assert (C.get_or_load t 7 ~load = None)
            done))
  in
  Array.iter Domain.join doms;
  check_int "storm cost one load total" 1 (Atomic.get loads)

let test_get_or_load_positive () =
  let t = make ~entries:8 () in
  let loads = ref 0 in
  let load k =
    incr loads;
    Some (k * 2)
  in
  check_bool "loads on miss" true (C.get_or_load t 5 ~load = Some 10);
  check_bool "then hits" true (C.get_or_load t 5 ~load = Some 10);
  check_int "loaded once" 1 !loads;
  check_int "hit counted" 1 (C.stats t).Cache.hits

(* ----------------------- budget under churn ------------------------ *)

(* Sequential QCheck property: an arbitrary op sequence (sized puts,
   gets, removes, TTL puts, clock steps) never takes [used] above the
   budget, and accounting reconciles exactly afterwards. *)
let prop_budget_sequential =
  let open QCheck in
  let ops = list_of_size Gen.(return 400) (triple (int_bound 5) (int_bound 63) (int_bound 200)) in
  Test.make ~count:20 ~name:"cache_budget_sequential" ops (fun ops ->
      let clk = Atomic.make 0 in
      let budget = 16 * ov in
      let cfg =
        {
          (Cache.default_config ~budget_words:budget) with
          Cache.stripes = 1;
          max_entry_frac = 1.0;
          wheel_slots = 8;
          wheel_tick_ns = 10;
        }
      in
      let t =
        C.create ~config:cfg
          ~now:(fun () -> Atomic.get clk)
          ~cost:(fun _ v -> String.length v / 8)
          ()
      in
      List.iter
        (fun (op, k, sz) ->
          (match op with
          | 0 | 1 -> ignore (C.put t k (String.make sz 'x'))
          | 2 -> ignore (C.put ~ttl_ns:(sz + 1) t k (String.make sz 'x'))
          | 3 -> ignore (C.get t k)
          | 4 -> ignore (C.remove t k)
          | _ ->
              ignore (Atomic.fetch_and_add clk (sz + 1));
              ignore (C.expire_now t));
          if C.used_words t > budget then
            QCheck.Test.fail_reportf "used %d > budget %d" (C.used_words t)
              budget)
        ops;
      match C.validate t with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "validate: %s" e)

(* Concurrent churn: worker domains hammer put/get/remove with sized
   values while a sampler reads [used_words] continuously — the budget
   bound must hold at every sampled instant, not just at rest. *)
let test_budget_concurrent_churn () =
  let budget = 64 * ov in
  let cfg =
    {
      (Cache.default_config ~budget_words:budget) with
      Cache.policy = Cache.Clock_hand;
      max_entry_frac = 1.0;
    }
  in
  let t = C.create ~config:cfg ~cost:(fun _ v -> String.length v / 8) () in
  let stop = Atomic.make false in
  let violations = Atomic.make 0 in
  let sampler =
    Domain.spawn (fun () ->
        let samples = ref 0 in
        while not (Atomic.get stop) do
          if C.used_words t > budget then Atomic.incr violations;
          incr samples;
          if !samples land 63 = 0 then Domain.cpu_relax ()
        done;
        !samples)
  in
  let workers =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            let rng = Random.State.make [| 0xC0FFEE; d |] in
            for _ = 1 to 20_000 do
              let k = Random.State.int rng 256 in
              match Random.State.int rng 4 with
              | 0 | 1 ->
                  ignore (C.put t k (String.make (Random.State.int rng 128) 'v'))
              | 2 -> ignore (C.get t k)
              | _ -> ignore (C.remove t k)
            done))
  in
  Array.iter Domain.join workers;
  Atomic.set stop true;
  let samples = Domain.join sampler in
  check_bool "sampler actually sampled" true (samples > 1_000);
  check_int "budget held at every sampled instant" 0 (Atomic.get violations);
  check_ok "quiescent accounting reconciles" t;
  let s = C.stats t in
  check_bool "churn evicted something" true (s.Cache.evictions > 0)

let suite =
  [
    ("ring_fifo", `Quick, test_ring_fifo);
    ("ring_concurrent", `Quick, test_ring_concurrent);
    ("wheel_fires_due", `Quick, test_wheel_fires_due);
    ("wheel_no_tick_no_work", `Quick, test_wheel_no_tick_no_work);
    ("budget_and_accounting", `Quick, test_budget_and_accounting);
    ("oversized_rejected", `Quick, test_oversized_rejected);
    ("eviction_fifo", `Quick, test_eviction_fifo);
    ("eviction_clock_second_chance", `Quick, test_eviction_clock_second_chance);
    ("eviction_slru_probation_first", `Quick, test_eviction_slru_probation_first);
    ("ttl_deterministic", `Quick, test_ttl_deterministic);
    ("ttl_wheel_reclaims", `Quick, test_ttl_wheel_reclaims);
    ("ttl_refresh_wins_race", `Quick, test_ttl_refresh_wins_race);
    ("negative_caching", `Quick, test_negative_caching);
    ("negative_stampede_concurrent", `Slow, test_negative_stampede_concurrent);
    ("get_or_load_positive", `Quick, test_get_or_load_positive);
    QCheck_alcotest.to_alcotest prop_budget_sequential;
    ("budget_concurrent_churn", `Slow, test_budget_concurrent_churn);
  ]
