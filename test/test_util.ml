(* Unit tests for the Ct_util substrate. *)

open Ct_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------ Bits ------------------------------ *)

let test_ctz () =
  check_int "ctz 1" 0 (Bits.count_trailing_zeros 1);
  check_int "ctz 2" 1 (Bits.count_trailing_zeros 2);
  check_int "ctz 96" 5 (Bits.count_trailing_zeros 96);
  check_int "ctz 0" 63 (Bits.count_trailing_zeros 0);
  check_int "ctz 2^40" 40 (Bits.count_trailing_zeros (1 lsl 40))

let test_clz32 () =
  check_int "clz 0" 32 (Bits.count_leading_zeros32 0);
  check_int "clz 1" 31 (Bits.count_leading_zeros32 1);
  check_int "clz max" 0 (Bits.count_leading_zeros32 0xFFFFFFFF);
  check_int "clz 0x8000" 16 (Bits.count_leading_zeros32 0x8000)

let test_popcount () =
  check_int "pop 0" 0 (Bits.popcount 0);
  check_int "pop 0xFF" 8 (Bits.popcount 0xFF);
  check_int "pop 0b1010101" 4 (Bits.popcount 0b1010101)

let test_powers_of_two () =
  check_bool "1 is pow2" true (Bits.is_power_of_two 1);
  check_bool "16 is pow2" true (Bits.is_power_of_two 16);
  check_bool "0 not pow2" false (Bits.is_power_of_two 0);
  check_bool "12 not pow2" false (Bits.is_power_of_two 12);
  check_int "next_pow2 1" 1 (Bits.next_power_of_two 1);
  check_int "next_pow2 17" 32 (Bits.next_power_of_two 17);
  check_int "log2 16" 4 (Bits.log2_exact 16);
  Alcotest.check_raises "log2 12 raises" (Invalid_argument "Bits.log2_exact")
    (fun () -> ignore (Bits.log2_exact 12))

let test_reverse_bits () =
  check_int "rev 0" 0 (Bits.reverse_bits32 0);
  check_int "rev 1" 0x80000000 (Bits.reverse_bits32 1);
  check_int "rev 0x80000000" 1 (Bits.reverse_bits32 0x80000000);
  (* Involution on a spread of values. *)
  let rng = Rng.create 7 in
  for _ = 1 to 100 do
    let x = Rng.next_int32 rng in
    check_int "rev involutive" x (Bits.reverse_bits32 (Bits.reverse_bits32 x))
  done

let test_extract () =
  check_int "extract lo" 0x5 (Bits.extract ~hash:0x12345 ~level:0 ~width:16);
  check_int "extract mid" 0x4 (Bits.extract ~hash:0x12345 ~level:4 ~width:16);
  check_int "extract narrow" 0x1 (Bits.extract ~hash:0x12345 ~level:0 ~width:4)

(* ------------------------------ Rng ------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 50 do
    check_int "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 20 do
    if Rng.next a = Rng.next b then incr same
  done;
  check_bool "streams differ" true (!same < 3)

let test_rng_bounds () =
  let r = Rng.create 9 in
  for _ = 1 to 1000 do
    let x = Rng.next_int r 7 in
    check_bool "in [0,7)" true (x >= 0 && x < 7)
  done;
  for _ = 1 to 1000 do
    let x = Rng.next_int32 r in
    check_bool "32-bit" true (x >= 0 && x <= 0xFFFFFFFF)
  done;
  for _ = 1 to 1000 do
    let f = Rng.next_float r in
    check_bool "unit float" true (f >= 0.0 && f < 1.0)
  done

let test_rng_uniformity () =
  (* Chi-square-ish sanity: 16 buckets over 32k draws. *)
  let r = Rng.create 123 in
  let buckets = Array.make 16 0 in
  let n = 32768 in
  for _ = 1 to n do
    let b = Rng.next_int32 r land 15 in
    buckets.(b) <- buckets.(b) + 1
  done;
  let expected = n / 16 in
  Array.iteri
    (fun i c ->
      check_bool (Printf.sprintf "bucket %d balanced (%d)" i c) true
        (abs (c - expected) < expected / 4))
    buckets

let test_rng_split () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let overlaps = ref 0 in
  for _ = 1 to 20 do
    if Rng.next a = Rng.next b then incr overlaps
  done;
  check_bool "split independent" true (!overlaps < 3)

let test_shuffle () =
  let r = Rng.create 77 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted;
  check_bool "actually moved" true (a <> Array.init 100 Fun.id)

(* ----------------------------- Hashing ---------------------------- *)

let test_mix_masks () =
  for i = 0 to 1000 do
    let h = Hashing.mix i in
    check_bool "32-bit" true (h >= 0 && h <= Hashing.mask)
  done

let test_mix_avalanche () =
  (* Nearby inputs land in different low nibbles most of the time. *)
  let same_nibble = ref 0 in
  for i = 0 to 999 do
    if Hashing.mix i land 15 = Hashing.mix (i + 1) land 15 then incr same_nibble
  done;
  check_bool "low nibble spread" true (!same_nibble < 200)

let test_fnv1a () =
  check_bool "distinct strings" true (Hashing.fnv1a "hello" <> Hashing.fnv1a "world");
  check_int "stable" (Hashing.fnv1a "abc") (Hashing.fnv1a "abc");
  check_bool "32-bit" true (Hashing.fnv1a "xyz" <= 0xFFFFFFFF)

let test_key_modules () =
  check_bool "int keys equal" true (Hashing.Int_key.equal 3 3);
  check_bool "string hash differs" true
    (Hashing.String_key.hash "a" <> Hashing.String_key.hash "b");
  check_int "constant hash" (Hashing.Constant_hash_int.hash 1)
    (Hashing.Constant_hash_int.hash 999);
  check_int "bad hash is identity" 12345 (Hashing.Bad_hash_int.hash 12345)

(* ------------------------------ Stats ----------------------------- *)

let feq msg a b = Alcotest.(check (float 1e-9)) msg a b

let test_mean_stddev () =
  feq "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  feq "stddev" 1.0 (Stats.stddev [| 1.0; 2.0; 3.0 |]);
  feq "stddev singleton" 0.0 (Stats.stddev [| 5.0 |])

let test_summary () =
  let s = Stats.summarize [| 4.0; 1.0; 3.0; 2.0 |] in
  check_int "n" 4 s.Stats.n;
  feq "mean" 2.5 s.Stats.mean;
  feq "min" 1.0 s.Stats.min;
  feq "max" 4.0 s.Stats.max;
  feq "median" 2.5 s.Stats.median

let test_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  feq "p0" 10.0 (Stats.percentile xs 0.0);
  feq "p100" 40.0 (Stats.percentile xs 100.0);
  feq "p50" 25.0 (Stats.percentile xs 50.0)

let test_warmup () =
  check_bool "stable tail" true
    (Stats.warmed_up [| 9.0; 5.0; 1.0; 1.0; 1.0; 1.0; 1.0 |]);
  check_bool "noisy tail" false
    (Stats.warmed_up [| 1.0; 9.0; 1.0; 9.0; 1.0; 9.0; 1.0 |]);
  check_bool "too short" false (Stats.warmed_up [| 1.0; 1.0 |])

let test_confidence_interval () =
  let lo, hi = Stats.confidence_interval95 [| 10.0; 10.0; 10.0; 10.0 |] in
  feq "degenerate lo" 10.0 lo;
  feq "degenerate hi" 10.0 hi;
  let lo, hi = Stats.confidence_interval95 [| 8.0; 12.0; 9.0; 11.0; 10.0 |] in
  check_bool "mean inside" true (lo < 10.0 && 10.0 < hi);
  check_bool "interval ordered" true (lo < hi);
  let lo1, hi1 = Stats.confidence_interval95 [| 5.0 |] in
  feq "singleton" 5.0 lo1;
  feq "singleton hi" 5.0 hi1;
  (* More samples shrink the interval. *)
  let wide = Stats.confidence_interval95 [| 8.0; 12.0 |] in
  let narrow =
    Stats.confidence_interval95 (Array.concat (List.init 10 (fun _ -> [| 8.0; 12.0 |])))
  in
  check_bool "narrower with more samples" true
    (snd narrow -. fst narrow < snd wide -. fst wide)

let test_speedup () =
  feq "2x" 2.0 (Stats.speedup ~baseline:10.0 5.0);
  feq "slowdown" 0.5 (Stats.speedup ~baseline:5.0 10.0);
  Alcotest.check_raises "zero raises" (Invalid_argument "Stats.speedup") (fun () ->
      ignore (Stats.speedup ~baseline:1.0 0.0))

(* ----------------------------- Backoff ---------------------------- *)

let test_backoff () =
  let b = Backoff.create ~min_wait:2 ~max_wait:8 () in
  (* Just exercise growth and reset paths; behaviour is timing-only. *)
  Backoff.once b;
  Backoff.once b;
  Backoff.once b;
  Backoff.reset b;
  Backoff.once b;
  check_bool "alive" true true;
  Alcotest.check_raises "bad args" (Invalid_argument "Backoff.create") (fun () ->
      ignore (Backoff.create ~min_wait:0 ~max_wait:1 ()))

let test_backoff_seeding () =
  let draws b = List.init 16 (fun _ -> Backoff.next_wait b) in
  (* Same explicit seed -> identical wait sequences (reproducibility). *)
  let b1 = Backoff.create ~min_wait:2 ~max_wait:64 ~seed:42 () in
  let b2 = Backoff.create ~min_wait:2 ~max_wait:64 ~seed:42 () in
  check_bool "same seed, same waits" true (draws b1 = draws b2);
  (* Default-seeded instances get distinct streams, so contending
     domains do not back off in lock-step. *)
  let d1 = Backoff.create ~min_wait:2 ~max_wait:64 () in
  let d2 = Backoff.create ~min_wait:2 ~max_wait:64 () in
  check_bool "default seeds diverge" true (draws d1 <> draws d2);
  (* next_wait stays within the current doubling window. *)
  let b = Backoff.create ~min_wait:4 ~max_wait:8 ~seed:7 () in
  check_bool "waits bounded" true
    (List.for_all (fun n -> n >= 0 && n < 8) (draws b))

let test_backoff_budget () =
  (* Unbudgeted: never over budget no matter how many retries. *)
  let b = Backoff.create ~min_wait:2 ~max_wait:8 () in
  for _ = 1 to 100 do
    ignore (Backoff.next_wait b)
  done;
  check_bool "unlimited never over" false (Backoff.over_budget b);
  check_int "retries counted" 100 (Backoff.retries b);
  (* Budgeted: over after budget+1 draws, reset clears the episode but
     not the lifetime total. *)
  let b = Backoff.create ~min_wait:2 ~max_wait:8 ~budget:3 () in
  for _ = 1 to 3 do
    ignore (Backoff.next_wait b)
  done;
  check_bool "at budget, not over" false (Backoff.over_budget b);
  ignore (Backoff.next_wait b);
  check_bool "over budget" true (Backoff.over_budget b);
  Backoff.reset b;
  check_bool "reset re-arms" false (Backoff.over_budget b);
  check_int "episode cleared" 0 (Backoff.retries b);
  check_int "lifetime total survives reset" 4 (Backoff.total_retries b);
  Alcotest.check_raises "negative budget" (Invalid_argument "Backoff.create")
    (fun () -> ignore (Backoff.create ~budget:(-1) ()))

(* ----------------------------- Progress ---------------------------- *)

let test_progress () =
  let p = Progress.create ~slots:4 () in
  check_int "slots" 4 (Progress.slots p);
  check_bool "not attached" true (Progress.attached p = None);
  Progress.beat p;
  check_int "beat without slot ignored" 0 (Progress.beats p 0);
  Progress.attach p 2;
  check_bool "attached" true (Progress.attached p = Some 2);
  Progress.beat p;
  Progress.beat p;
  check_int "manual beats" 2 (Progress.beats p 2);
  (* Observed yield points: every phase updates [last], only [After]
     beats — a spinning retry loop must read as stalled. *)
  let s = Yieldpoint.register "test.progress.site" in
  Progress.observe p Yieldpoint.Before s;
  check_int "Before does not beat" 2 (Progress.beats p 2);
  check_bool "Before recorded" true
    (Progress.last p 2 = Some (s, Yieldpoint.Before));
  Progress.observe p Yieldpoint.After s;
  check_int "After beats" 3 (Progress.beats p 2);
  check_bool "snapshot" true (Progress.snapshot p = [| 0; 0; 3; 0 |]);
  Progress.detach p;
  check_bool "detach vacates" true
    (Progress.attached p = None && Progress.last p 2 = None);
  Alcotest.check_raises "attach out of range"
    (Invalid_argument "Progress.attach") (fun () -> Progress.attach p 4)

let test_progress_observer_install () =
  let p = Progress.create ~slots:4 () in
  let s = Yieldpoint.register "test.progress.hooked" in
  Progress.attach p 0;
  Progress.install p;
  Fun.protect ~finally:(fun () ->
      Progress.uninstall ();
      Progress.detach p)
  @@ fun () ->
  check_bool "observer active" true (Yieldpoint.observer_active ());
  Yieldpoint.here Yieldpoint.After s;
  check_int "here feeds the heartbeat" 1 (Progress.beats p 0);
  (* The observer coexists with a main hook and runs first. *)
  let hook_saw = ref false in
  Yieldpoint.install (fun _ _ -> hook_saw := true);
  Fun.protect ~finally:Yieldpoint.clear @@ fun () ->
  Yieldpoint.here Yieldpoint.After s;
  check_bool "main hook still runs" true !hook_saw;
  check_int "observer ran too" 2 (Progress.beats p 0)

(* -------------------------- Atomic_slots --------------------------- *)

(* The same battery runs against both slot representations: whatever
   [Ct_util.Slots] resolves to at build time, the other layout must
   behave identically. *)
module Slots_battery (S : Atomic_slots.S) = struct
  let label name = Printf.sprintf "slots[%s].%s" S.repr name

  let test_basic () =
    let a = S.make 8 0 in
    check_int "length" 8 (S.length a);
    for i = 0 to 7 do
      check_int "init" 0 (S.get a i)
    done;
    S.set a 3 42;
    check_int "set/get" 42 (S.get a 3);
    check_int "neighbours untouched" 0 (S.get a 2);
    check_int "fold" 42 (S.fold ( + ) 0 a);
    let seen = ref 0 in
    S.iter (fun v -> seen := !seen + v) a;
    check_int "iter" 42 !seen

  let test_cas () =
    let a = S.make 4 "init" in
    check_bool "cas hits on phys-eq" true (S.cas a 1 "init" "next");
    check_bool "cas updated" true (S.get a 1 == "next");
    check_bool "cas misses on stale" false (S.cas a 1 "init" "other");
    check_bool "still next" true (S.get a 1 == "next");
    (* Physical, not structural, comparison: a fresh equal string is
       a different block and must not match. *)
    let twin = String.init 4 (String.get "next") in
    check_bool "cas is physical" false (S.cas a 1 twin "other")

  let test_boxed_values () =
    (* Pointers (variant blocks) survive a set/cas round-trip — the
       GC write barrier path. *)
    let a = S.make 4 None in
    S.set a 0 (Some 7);
    check_bool "boxed set" true (S.get a 0 = Some 7);
    let cur = S.get a 0 in
    check_bool "boxed cas" true (S.cas a 0 cur (Some 8));
    check_bool "boxed cas value" true (S.get a 0 = Some 8)

  let test_float_guard () =
    if S.repr = "flat" then
      Alcotest.check_raises "flat rejects float slots"
        (Invalid_argument "Atomic_slots.Flat.make: float slots are unsupported")
        (fun () -> ignore (S.make 4 1.0))

  let test_concurrent_cas () =
    (* [domains] workers CAS-push onto every slot of a shared array;
       every push must land exactly once. *)
    let slots = 8 and domains = 4 and per = 500 in
    let a = S.make slots ([] : int list) in
    let workers =
      List.init domains (fun d ->
          Domain.spawn (fun () ->
              for i = 0 to per - 1 do
                let idx = i land (slots - 1) in
                let rec push () =
                  let cur = S.get a idx in
                  if not (S.cas a idx cur ((d * per) + i :: cur)) then push ()
                in
                push ()
              done))
    in
    List.iter Domain.join workers;
    let total = S.fold (fun acc l -> acc + List.length l) 0 a in
    check_int "no lost pushes" (domains * per) total;
    let all = S.fold (fun acc l -> List.rev_append l acc) [] a in
    check_int "all values distinct" (domains * per)
      (List.length (List.sort_uniq compare all))

  (* Prefetching is semantically a no-op: it must neither fault nor
     disturb slot contents, on every index of both layouts (the flat
     layout hints the cell line, the boxed layout warms the box). *)
  let test_prefetch_noop () =
    let a = S.make 8 0 in
    S.set a 5 55;
    for i = 0 to 7 do
      S.prefetch a i
    done;
    check_int "contents survive prefetch" 55 (S.get a 5);
    check_int "fold after prefetch" 55 (S.fold ( + ) 0 a)

  (* [assert false] survives [-noassert], so probe with a computed
     condition to learn whether this build compiled assertions in. *)
  let asserts_enabled =
    try
      assert (1 = 2);
      false
    with Assert_failure _ -> true

  (* Debug builds must catch a probe index that escaped the length
     mask: the boxed layout asserts bounds before its unsafe access
     (the folklore table's circular probing is the risky caller; an
     unchecked [Array.unsafe_get] would silently read a neighbouring
     heap object instead of failing). *)
  let test_boxed_bounds_guard () =
    if S.repr = "boxed" && asserts_enabled then begin
      let a = S.make 8 0 in
      (match S.get a 8 with
      | _ -> Alcotest.fail "out-of-bounds get not caught"
      | exception Assert_failure _ -> ());
      (match S.get a (-1) with
      | _ -> Alcotest.fail "negative get not caught"
      | exception Assert_failure _ -> ());
      (match S.set a 9 1 with
      | () -> Alcotest.fail "out-of-bounds set not caught"
      | exception Assert_failure _ -> ());
      (match S.cas a 8 0 1 with
      | _ -> Alcotest.fail "out-of-bounds cas not caught"
      | exception Assert_failure _ -> ());
      match S.prefetch a (-3) with
      | () -> Alcotest.fail "out-of-bounds prefetch not caught"
      | exception Assert_failure _ -> ()
    end

  let tests =
    [
      (label "basic", `Quick, test_basic);
      (label "cas", `Quick, test_cas);
      (label "boxed_values", `Quick, test_boxed_values);
      (label "float_guard", `Quick, test_float_guard);
      (label "prefetch_noop", `Quick, test_prefetch_noop);
      (label "bounds_guard", `Quick, test_boxed_bounds_guard);
      (label "concurrent_cas", `Slow, test_concurrent_cas);
    ]
end

module Slots_flat_tests = Slots_battery (Atomic_slots.Flat)
module Slots_boxed_tests = Slots_battery (Atomic_slots.Boxed)

let test_slots_metadata () =
  check_int "flat overhead" 0 Atomic_slots.Flat.overhead_words_per_slot;
  check_int "boxed overhead" 2 Atomic_slots.Boxed.overhead_words_per_slot;
  check_bool "reprs differ" true
    (Atomic_slots.Flat.repr <> Atomic_slots.Boxed.repr);
  (* The build-selected alias is one of the two. *)
  check_bool "Slots is flat or boxed" true
    (Slots.repr = "flat" || Slots.repr = "boxed")

(* ----------------------------- Stripe ------------------------------ *)

let test_stripe_shape () =
  let s = Stripe.create ~stripes:4 () in
  check_int "stripes" 4 (Stripe.stripes s);
  check_int "mask" 3 (Stripe.mask s);
  (* Stripe counts round up to a power of two. *)
  check_int "rounded up" 8 (Stripe.stripes (Stripe.create ~stripes:5 ()));
  let d = Stripe.create () in
  check_bool "default is a power of two" true
    (Bits.is_power_of_two (Stripe.stripes d));
  Alcotest.check_raises "stripes < 1 rejected"
    (Invalid_argument "Stripe.create") (fun () ->
      ignore (Stripe.create ~stripes:0 ()))

let test_stripe_ops () =
  let s = Stripe.create ~stripes:4 () in
  Stripe.set s 0 5;
  Stripe.add s 1 7;
  Stripe.add s 1 1;
  check_int "get 0" 5 (Stripe.get s 0);
  check_int "get 1" 8 (Stripe.get s 1);
  (* Indexes are masked, so any int is a valid stripe id. *)
  check_int "masked index" 5 (Stripe.get s 4);
  Stripe.add s (-4) 2;
  check_int "negative index masked" 7 (Stripe.get s 0);
  check_int "sum" 15 (Stripe.sum s);
  Stripe.fill s 0;
  check_int "fill" 0 (Stripe.sum s)

let test_stripe_padding () =
  (* Each counter must sit on its own cache line: the backing array
     spans at least [stripes * 16] words plus the leading pad. *)
  let s = Stripe.create ~stripes:8 () in
  check_bool "padded footprint" true (Stripe.footprint_words s >= 8 * 16)

(* --------------------------- Yieldpoint ---------------------------- *)

let test_yieldpoint_registry () =
  let s1 = Yieldpoint.register "test_util.yp.alpha" in
  let s2 = Yieldpoint.register "test_util.yp.alpha" in
  check_bool "interned by name" true (s1 == s2);
  check_bool "name round-trips" true (Yieldpoint.name s1 = "test_util.yp.alpha");
  let _ = Yieldpoint.register "test_util.yp.beta" in
  let mine = Yieldpoint.with_prefix "test_util.yp." in
  check_bool "with_prefix finds both" true (List.length mine = 2);
  (* The instrumented structures register their sites at start-up. *)
  check_bool "cachetrie sites present" true
    (Yieldpoint.with_prefix "cachetrie." <> []);
  check_bool "ctrie sites present" true (Yieldpoint.with_prefix "ctrie." <> []);
  check_bool "ctrie_snap sites present" true
    (Yieldpoint.with_prefix "ctrie_snap." <> [])

let test_yieldpoint_hook () =
  Fun.protect ~finally:Yieldpoint.clear @@ fun () ->
  let s = Yieldpoint.register "test_util.yp.hook" in
  let fired = ref [] in
  check_bool "inactive by default" false (Yieldpoint.active ());
  (* Disabled hook: here is a no-op. *)
  Yieldpoint.here Yieldpoint.Before s;
  check_bool "no-op when disabled" true (!fired = []);
  Yieldpoint.install (fun ph site -> fired := (ph, Yieldpoint.name site) :: !fired);
  check_bool "active after install" true (Yieldpoint.active ());
  Yieldpoint.here Yieldpoint.Before s;
  Yieldpoint.here Yieldpoint.After s;
  check_bool "hook saw both phases" true
    (List.rev !fired
    = [ (Yieldpoint.Before, "test_util.yp.hook"); (Yieldpoint.After, "test_util.yp.hook") ]);
  Yieldpoint.clear ();
  check_bool "inactive after clear" false (Yieldpoint.active ());
  Yieldpoint.here Yieldpoint.Before s;
  check_bool "no-op after clear" true (List.length !fired = 2)

let suite =
  [
    ("bits.ctz", `Quick, test_ctz);
    ("bits.clz32", `Quick, test_clz32);
    ("bits.popcount", `Quick, test_popcount);
    ("bits.powers_of_two", `Quick, test_powers_of_two);
    ("bits.reverse_bits32", `Quick, test_reverse_bits);
    ("bits.extract", `Quick, test_extract);
    ("rng.deterministic", `Quick, test_rng_deterministic);
    ("rng.seeds_differ", `Quick, test_rng_seeds_differ);
    ("rng.bounds", `Quick, test_rng_bounds);
    ("rng.uniformity", `Quick, test_rng_uniformity);
    ("rng.split", `Quick, test_rng_split);
    ("rng.shuffle", `Quick, test_shuffle);
    ("hashing.mix_masks", `Quick, test_mix_masks);
    ("hashing.mix_avalanche", `Quick, test_mix_avalanche);
    ("hashing.fnv1a", `Quick, test_fnv1a);
    ("hashing.key_modules", `Quick, test_key_modules);
    ("stats.mean_stddev", `Quick, test_mean_stddev);
    ("stats.summary", `Quick, test_summary);
    ("stats.percentile", `Quick, test_percentile);
    ("stats.warmup", `Quick, test_warmup);
    ("stats.confidence_interval", `Quick, test_confidence_interval);
    ("stats.speedup", `Quick, test_speedup);
    ("backoff.basic", `Quick, test_backoff);
    ("backoff.seeding", `Quick, test_backoff_seeding);
    ("backoff.budget", `Quick, test_backoff_budget);
    ("progress.heartbeats", `Quick, test_progress);
    ("progress.observer", `Quick, test_progress_observer_install);
    ("yieldpoint.registry", `Quick, test_yieldpoint_registry);
    ("yieldpoint.hook", `Quick, test_yieldpoint_hook);
    ("slots.metadata", `Quick, test_slots_metadata);
    ("stripe.shape", `Quick, test_stripe_shape);
    ("stripe.ops", `Quick, test_stripe_ops);
    ("stripe.padding", `Quick, test_stripe_padding);
  ]
  @ Slots_flat_tests.tests @ Slots_boxed_tests.tests
