(* Deterministic schedule exploration (DESIGN.md §10): run the model
   checker exhaustively over every scenario in the catalogue, pin the
   bugs it historically flushed out, and test its own machinery
   (scheduler, minimizer, trace round-trip, replay). *)

module Yp = Ct_util.Yieldpoint

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Failing schedules are written here so the CI job can upload them as
   artifacts. *)
let artifact_dir = "_mc_failures"

let save_trace c =
  (try Unix.mkdir artifact_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let file = Filename.concat artifact_dir (c.Mc.c_scenario ^ ".trace") in
  let oc = open_out file in
  output_string oc (Mc.trace_to_string c);
  close_out oc;
  file

(* Exploration bounds pinned for CI: small enough to finish the whole
   catalogue well inside the job timeout, large enough that every
   2-fiber script in the catalogue is explored completely. *)
let bound = 3
let max_schedules = 60_000

let assert_pass sc =
  match Mc.explore ~preemption_bound:bound ~max_schedules sc with
  | Mc.Pass { complete; executions } ->
      check_bool
        (Printf.sprintf "%s: exploration complete (%d schedules)"
           sc.Mc.sname executions)
        true complete
  | Mc.Fail c ->
      let file = save_trace c in
      Alcotest.failf "%s: %s\nminimized schedule written to %s\n%s"
        c.Mc.c_scenario (Mc.pp_failure c.Mc.c_failure) file
        (Mc.trace_to_string c)

let test_scenario sc () = assert_pass sc

(* ------------------- the explorer finds planted bugs ---------------- *)

(* A deliberately racy "counter": read, yield, write.  The lost-update
   interleaving needs exactly one preemption; the explorer must find
   it, the minimizer must shrink it, and replay must reproduce it. *)
let racy_site = Yp.register "mc-test.racy.write"

let racy_counter_scenario () =
  let prepare () =
    let cell = ref 0 in
    let bump () =
      let v = !cell in
      Yp.here Yp.Before racy_site;
      cell := v + 1
    in
    let oracle ~crashed:_ =
      if !cell = 2 then Ok ()
      else Error (Printf.sprintf "lost update: counter = %d" !cell)
    in
    { Mc.bodies = [ bump; bump ]; oracle }
  in
  Mc.scenario "test.racy-counter" prepare

let test_finds_planted_race () =
  match Mc.explore ~preemption_bound:2 (racy_counter_scenario ()) with
  | Mc.Pass _ -> Alcotest.fail "explorer missed the planted lost update"
  | Mc.Fail c ->
      (match c.Mc.c_failure with
      | Mc.Oracle m ->
          check_bool "reports the lost update" true
            (String.length m > 0)
      | f -> Alcotest.failf "wrong failure kind: %s" (Mc.pp_failure f));
      (* The minimal schedule interleaves the two 2-slice fibers; the
         guide needs at most the one forced switch plus its return. *)
      check_bool "minimizer shrank the guide" true
        (Array.length c.Mc.c_choices <= 2);
      (* Round-trip: print, parse, replay: the bug must reproduce. *)
      let trace = Mc.trace_to_string c in
      (match Mc.trace_of_string trace with
      | Error e -> Alcotest.failf "trace did not parse: %s" e
      | Ok t -> (
          check_bool "scenario name survives" true
            (t.Mc.t_scenario = "test.racy-counter");
          match Mc.replay (racy_counter_scenario ()) t with
          | Mc.Reproduced (Mc.Oracle _) -> ()
          | Mc.Reproduced f ->
              Alcotest.failf "replay reproduced the wrong failure: %s"
                (Mc.pp_failure f)
          | Mc.Vanished -> Alcotest.fail "replay no longer fails"
          | Mc.Diverged m -> Alcotest.failf "replay diverged: %s" m))

let test_random_walk_finds_race () =
  match
    Mc.random_walk ~seed:42 ~schedules:500 (racy_counter_scenario ())
  with
  | Mc.Fail _ -> ()
  | Mc.Pass _ -> Alcotest.fail "random walk missed the planted lost update"

(* A fiber that spins forever across a yield point: the step bound must
   flag it as a lock-freedom violation instead of hanging. *)
let spin_site = Yp.register "mc-test.spin"

let test_divergence_detected () =
  let prepare () =
    let spin () =
      while true do
        Yp.here Yp.Before spin_site
      done
    in
    { Mc.bodies = [ spin ]; oracle = (fun ~crashed:_ -> Ok ()) }
  in
  let sc = Mc.scenario "test.spin" prepare in
  match Mc.explore ~max_steps:200 ~max_schedules:1 sc with
  | Mc.Fail { c_failure = Mc.Divergence _; _ } -> ()
  | Mc.Fail c -> Alcotest.failf "wrong failure: %s" (Mc.pp_failure c.Mc.c_failure)
  | Mc.Pass _ -> Alcotest.fail "divergence not detected"

(* Crash injection: the fiber must die at its n-th yield and the
   scheduler must report the execution as crashed. *)
let test_crash_injection () =
  let progress = ref 0 in
  let prepare () =
    progress := 0;
    let body () =
      incr progress;
      Yp.here Yp.Before racy_site;
      incr progress;
      Yp.here Yp.Before racy_site;
      incr progress
    in
    { Mc.bodies = [ body ]; oracle = (fun ~crashed -> if crashed then Ok () else Error "did not crash") }
  in
  let sc = Mc.scenario ~crash_at:(0, 2) "test.crash" prepare in
  match Mc.explore sc with
  | Mc.Pass _ -> check_int "died between yields 2 and 3" 2 !progress
  | Mc.Fail c -> Alcotest.failf "unexpected failure: %s" (Mc.pp_failure c.Mc.c_failure)

(* ------------------------ pinned regressions ------------------------ *)

(* Minimized counterexample found by [Mc.explore] against the
   pre-contraction cachetrie remove path: insert two fully-colliding
   keys, remove one — the old code republished the LNode with a single
   entry instead of contracting it to an SNode, and [validate]'s
   "LNode with fewer than 2 entries" rule flags the residue.  The
   schedule needs no preemption (the residue was left on every remove),
   which is why plain unit tests should have caught it; it is pinned
   here as a replayable trace so the exact published-node sequence
   stays honest: [Vanished] = the schedule replays step-for-step and
   the bug stays fixed, [Diverged] = the remove path's yield sequence
   changed and the trace must be re-minimized, [Reproduced] = the bug
   is back. *)
let pinned_lnode_remove_trace =
  "mc-trace v1\n\
   scenario cachetrie.lnode-remove\n\
   0 yield before cachetrie.insert.null\n\
   0 yield after cachetrie.insert.null\n\
   0 done\n\
   1 yield before cachetrie.txn.announce\n\
   1 yield after cachetrie.txn.announce\n\
   1 yield before cachetrie.txn.commit\n\
   1 yield after cachetrie.txn.commit\n\
   1 yield before cachetrie.remove.lnode\n\
   1 yield after cachetrie.remove.lnode\n\
   1 done\n"

let test_pinned_lnode_remove () =
  match Mc.trace_of_string pinned_lnode_remove_trace with
  | Error e -> Alcotest.failf "pinned trace did not parse: %s" e
  | Ok t -> (
      match Mc.Scenarios.find t.Mc.t_scenario with
      | None -> Alcotest.failf "scenario %s disappeared" t.Mc.t_scenario
      | Some sc -> (
          match Mc.replay sc t with
          | Mc.Vanished -> ()
          | Mc.Reproduced f ->
              Alcotest.failf "LNode residue bug is back: %s" (Mc.pp_failure f)
          | Mc.Diverged m ->
              Alcotest.failf
                "remove path drifted; re-minimize the pinned trace: %s" m))

(* ----------------- hostile equality (the lassoc family) ------------- *)

(* Keys whose structural equality disagrees with H.equal: the pair's
   second component is a "nonce" H.equal ignores.  Collision-heavy hash
   forces every binding through the LNode / binding-list code, which
   historically used polymorphic List.assoc_opt / List.remove_assoc and
   so treated (0,0) and (0,1) as different keys. *)
module Nonce_key = struct
  type t = int * int

  let equal (a, _) (b, _) = Int.equal a b
  let hash (a, _) = a land 1 (* two hash classes: heavy collisions *)
end

module Hostile_equality (M : Ct_util.Map_intf.CONCURRENT_MAP with type key = Nonce_key.t) =
struct
  let check_valid what = function
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s: validate failed: %s" what e

  let test () =
    let t = M.create () in
    M.insert t (0, 0) 1;
    M.insert t (2, 0) 2;
    (* key classes 0 and 2 collide fully (hash 0): LNode of two entries. *)
    check_int "collision size" 2 (M.size t);
    (* Insert under an H.equal-but-structurally-different key must
       replace, not duplicate. *)
    check_bool "replaces through nonce" true (M.add t (0, 7) 3 = Some 1);
    check_int "no duplicate entry" 2 (M.size t);
    check_bool "lookup through nonce" true (M.lookup t (0, 99) = Some 3);
    check_valid "after nonce replace" (M.validate t);
    (* Remove under a nonce key must actually remove. *)
    check_bool "removes through nonce" true (M.remove t (2, 42) = Some 2);
    check_int "entry gone" 1 (M.size t);
    check_bool "other entry intact" true (M.lookup t (0, 0) = Some 3);
    check_valid "after nonce remove (no LNode residue)" (M.validate t);
    check_bool "last removal" true (M.remove t (0, 1) = Some 3);
    check_int "empty" 0 (M.size t);
    check_valid "empty again" (M.validate t)
end

module HE_CT = Hostile_equality (Cachetrie.Make (Nonce_key))
module HE_CTR = Hostile_equality (Ctrie.Make (Nonce_key))
module HE_CSN = Hostile_equality (Ctrie_snap.Make (Nonce_key))
module HE_SO = Hostile_equality (Chm.Split_ordered.Make (Nonce_key))
module HE_SL = Hostile_equality (Skiplist.Make (Nonce_key))

(* --------------------- extreme / negative raw hashes ---------------- *)

(* Raw hashes with the sign bit set (min_int, -1, 1 lsl 31 on 64-bit,
   max_int).  Every structure must mask them into the 32-bit hash
   domain before shifting, indexing or bit-reversing; a missed mask
   shows up as a negative array index, a wrong bucket, or a broken
   sort order in the split-ordered list. *)
module Extreme_battery (M : Ct_util.Map_intf.CONCURRENT_MAP with type key = int) =
struct
  module K = Mc.Scenarios.Extreme_hash_key

  let test () =
    let t = M.create () in
    let keys = [ 0; 1; 2; 3; 4 ] in
    List.iter (fun k -> M.insert t k (k * 10)) keys;
    List.iter
      (fun k ->
        check_bool
          (Printf.sprintf "lookup key %d (raw hash %d)" k (K.hash k))
          true
          (M.lookup t k = Some (k * 10)))
      keys;
    check_int "all present" (List.length keys) (M.size t);
    (match M.validate t with
    | Ok () -> ()
    | Error e -> Alcotest.failf "validate with extreme hashes: %s" e);
    List.iter
      (fun k ->
        check_bool
          (Printf.sprintf "remove key %d" k)
          true
          (M.remove t k = Some (k * 10)))
      keys;
    check_int "emptied" 0 (M.size t);
    match M.validate t with
    | Ok () -> ()
    | Error e -> Alcotest.failf "validate after removals: %s" e
end

module EX_CT = Extreme_battery (Cachetrie.Make (Mc.Scenarios.Extreme_hash_key))
module EX_CTR = Extreme_battery (Ctrie.Make (Mc.Scenarios.Extreme_hash_key))
module EX_CSN = Extreme_battery (Ctrie_snap.Make (Mc.Scenarios.Extreme_hash_key))
module EX_SO =
  Extreme_battery (Chm.Split_ordered.Make (Mc.Scenarios.Extreme_hash_key))
module EX_SL = Extreme_battery (Skiplist.Make (Mc.Scenarios.Extreme_hash_key))

(* ----------------------------- the suite ---------------------------- *)

let scenario_cases =
  List.map
    (fun sc -> (sc.Mc.sname, `Slow, test_scenario sc))
    Mc.Scenarios.all

let suite =
  [
    ("finds_planted_race", `Quick, test_finds_planted_race);
    ("random_walk_finds_race", `Quick, test_random_walk_finds_race);
    ("divergence_detected", `Quick, test_divergence_detected);
    ("crash_injection", `Quick, test_crash_injection);
    ("pinned_lnode_remove", `Quick, test_pinned_lnode_remove);
    ("hostile_equality_cachetrie", `Quick, HE_CT.test);
    ("hostile_equality_ctrie", `Quick, HE_CTR.test);
    ("hostile_equality_ctrie_snap", `Quick, HE_CSN.test);
    ("hostile_equality_split_ordered", `Quick, HE_SO.test);
    ("hostile_equality_skiplist", `Quick, HE_SL.test);
    ("extreme_hash_cachetrie", `Quick, EX_CT.test);
    ("extreme_hash_ctrie", `Quick, EX_CTR.test);
    ("extreme_hash_ctrie_snap", `Quick, EX_CSN.test);
    ("extreme_hash_split_ordered", `Quick, EX_SO.test);
    ("extreme_hash_skiplist", `Quick, EX_SL.test);
  ]
  @ scenario_cases
