(* Tests for the benchmark harness substrate. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_barrier_releases_all () =
  let n = 4 in
  let b = Harness.Barrier.create n in
  let counter = Atomic.make 0 in
  let workers =
    List.init n (fun _ ->
        Domain.spawn (fun () ->
            Atomic.incr counter;
            Harness.Barrier.await b;
            (* After the barrier, every participant must have arrived. *)
            Atomic.get counter))
  in
  let results = List.map Domain.join workers in
  List.iter (fun seen -> check_int "saw all arrivals" n seen) results

let test_barrier_reusable () =
  let n = 3 in
  let b = Harness.Barrier.create n in
  let phase = Atomic.make 0 in
  let workers =
    List.init n (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 5 do
              Harness.Barrier.await b;
              Atomic.incr phase;
              Harness.Barrier.await b
            done;
            true))
  in
  let oks = List.map Domain.join workers in
  check_bool "all joined" true (List.for_all Fun.id oks);
  check_int "phases" (5 * n) (Atomic.get phase)

let test_run_timed () =
  let hits = Atomic.make 0 in
  let dt = Harness.Parallel.run_timed ~domains:3 (fun _ -> Atomic.incr hits) in
  check_int "every domain ran" 3 (Atomic.get hits);
  check_bool "time positive" true (dt >= 0.0)

let test_run_collect_order () =
  let results = Harness.Parallel.run_collect ~domains:4 (fun d -> d * 10) in
  Alcotest.(check (list int)) "in index order" [ 0; 10; 20; 30 ] results

let test_shuffled_keys () =
  let keys = Harness.Workload.shuffled_keys 1000 in
  check_int "length" 1000 (Array.length keys);
  let sorted = Array.copy keys in
  Array.sort compare sorted;
  Alcotest.(check bool) "permutation of 0..n-1" true
    (Array.to_list sorted = List.init 1000 Fun.id);
  (* Deterministic in the seed. *)
  Alcotest.(check bool) "deterministic" true
    (Harness.Workload.shuffled_keys 1000 = keys);
  Alcotest.(check bool) "different seed differs" true
    (Harness.Workload.shuffled_keys ~seed:7 1000 <> keys)

let test_disjoint_ranges () =
  let ranges = Harness.Workload.disjoint_ranges ~domains:3 ~total:10 in
  check_int "three ranges" 3 (Array.length ranges);
  let all = Array.to_list ranges |> List.concat_map Array.to_list in
  Alcotest.(check (list int)) "covers total" (List.init 10 Fun.id) (List.sort compare all);
  let sizes = Array.map Array.length ranges in
  check_bool "balanced" true
    (Array.for_all (fun s -> abs (s - 3) <= 1) sizes)

let test_zipf () =
  let keys = Harness.Workload.zipf_keys ~n:10_000 ~universe:100 1.0 in
  check_int "n draws" 10_000 (Array.length keys);
  Array.iter (fun k -> check_bool "in range" true (k >= 0 && k < 100)) keys;
  (* Rank 0 must be drawn much more often than rank 50. *)
  let count x = Array.fold_left (fun a k -> if k = x then a + 1 else a) 0 keys in
  check_bool "skewed" true (count 0 > 5 * count 50)

let test_batches () =
  let keys = [| 10; 11; 12; 13; 14; 15; 16 |] in
  let bs = Harness.Workload.batches ~batch:3 keys in
  check_int "chunk count" 3 (Array.length bs);
  Alcotest.(check (list int)) "order preserved, last chunk short"
    (Array.to_list keys)
    (Array.to_list bs |> List.concat_map Array.to_list);
  check_int "full chunk" 3 (Array.length bs.(0));
  check_int "tail chunk" 1 (Array.length bs.(2));
  (* An exact multiple leaves no runt chunk. *)
  let exact = Harness.Workload.batches ~batch:2 [| 1; 2; 3; 4 |] in
  check_int "exact split" 2 (Array.length exact);
  check_int "empty input" 0 (Array.length (Harness.Workload.batches ~batch:4 [||]));
  Alcotest.check_raises "batch <= 0 rejected"
    (Invalid_argument "Workload.batches") (fun () ->
      ignore (Harness.Workload.batches ~batch:0 keys))

let test_batched_lookups () =
  let keys = Harness.Workload.shuffled_keys 100 in
  let bs = Harness.Workload.batched_lookups ~batch:16 keys in
  check_int "chunk count" 7 (Array.length bs);
  let flat = Array.to_list bs |> List.concat_map Array.to_list in
  Alcotest.(check (list int)) "permutation of the key set"
    (List.init 100 Fun.id) (List.sort compare flat);
  (* Deterministic in the seed, and the same shuffle [lookup_order]
     produces, just pre-sliced. *)
  check_bool "deterministic" true
    (Harness.Workload.batched_lookups ~batch:16 keys = bs);
  check_bool "matches lookup_order" true
    (flat = Array.to_list (Harness.Workload.lookup_order keys));
  check_bool "different seed differs" true
    (Harness.Workload.batched_lookups ~seed:9 ~batch:16 keys <> bs)

let test_measure_run () =
  let calls = ref 0 in
  let r =
    Harness.Measure.run ~warmup_limit:2 ~repetitions:3 ~ops:100 (fun () -> incr calls)
  in
  check_bool "ran warmup + reps" true (!calls >= 3);
  check_int "ops recorded" 100 r.Harness.Measure.ops;
  check_bool "ns/op sane" true (Harness.Measure.ns_per_op r >= 0.0);
  check_bool "mops sane" true (Harness.Measure.mops r >= 0.0)

let test_footprint () =
  let small = Harness.Footprint.reachable_words [| 1; 2; 3 |] in
  let big = Harness.Footprint.reachable_words (Array.make 1000 0) in
  check_bool "bigger is bigger" true (big > small);
  Alcotest.(check (float 1e-9)) "kb conversion" 8.0
    (Harness.Footprint.words_to_kb 1024)

let test_report_table () =
  let s =
    Harness.Report.table ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  check_bool "contains header" true
    (String.length s > 0 && String.index_opt s 'a' <> None);
  (* Columns aligned: every line has the same length. *)
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' s) in
  let lens = List.map String.length lines in
  check_bool "aligned" true (List.for_all (fun l -> l = List.hd lens) lens)

let test_structures_registry () =
  check_int "nine structures" 9 (List.length Harness.Suites.structures);
  check_bool "cachetrie present" true
    (Harness.Suites.find_structure "cachetrie" <> None);
  check_bool "unknown absent" true (Harness.Suites.find_structure "nope" = None)

module CT_for_trace = Cachetrie.Make (Ct_util.Hashing.Int_key)
module Replay_ct = Harness.Trace.Replay (CT_for_trace)

let test_trace_generate () =
  let trace = Harness.Trace.generate Harness.Trace.read_mostly 10_000 in
  check_int "length" 10_000 (Array.length trace);
  let reads = ref 0 and writes = ref 0 and removes = ref 0 in
  Array.iter
    (function
      | Harness.Trace.Lookup _ -> incr reads
      | Harness.Trace.Insert _ -> incr writes
      | Harness.Trace.Remove _ -> incr removes)
    trace;
  (* 95/4/1 profile within sampling noise. *)
  check_bool "read share" true (!reads > 9_300 && !reads < 9_700);
  check_bool "all accounted" true (!reads + !writes + !removes = 10_000);
  (* Deterministic. *)
  check_bool "deterministic" true
    (Harness.Trace.generate Harness.Trace.read_mostly 10_000 = trace);
  Alcotest.check_raises "bad profile"
    (Invalid_argument "Trace.generate: percentages must sum to 100") (fun () ->
      ignore
        (Harness.Trace.generate
           { Harness.Trace.read_mostly with Harness.Trace.reads = 10 }
           5))

let test_trace_replay_counts () =
  let trace = Harness.Trace.generate Harness.Trace.churn 20_000 in
  let t = CT_for_trace.create () in
  let o = Replay_ct.replay ~prefill:50_000 t trace in
  let reads =
    Array.fold_left
      (fun a -> function Harness.Trace.Lookup _ -> a + 1 | _ -> a)
      0 trace
  in
  check_int "hits+misses = lookups" reads Harness.Trace.(o.hits + o.misses);
  check_bool "elapsed positive" true (o.Harness.Trace.elapsed >= 0.0);
  (* Half the universe was prefilled, so both hits and misses occur. *)
  check_bool "hits happen" true (o.Harness.Trace.hits > 0);
  check_bool "misses happen" true (o.Harness.Trace.misses > 0)

let test_trace_replay_parallel_counts () =
  let trace = Harness.Trace.generate Harness.Trace.churn 20_000 in
  let t = CT_for_trace.create () in
  let o = Replay_ct.replay_parallel ~prefill:50_000 t ~domains:3 trace in
  let reads =
    Array.fold_left
      (fun a -> function Harness.Trace.Lookup _ -> a + 1 | _ -> a)
      0 trace
  in
  (* Round-robin slicing covers every op exactly once. *)
  check_int "parallel hits+misses = lookups" reads Harness.Trace.(o.hits + o.misses)

(* A worker domain that detaches and exits cleanly mid-run must never
   read as stalled — its slot is vacated (this is what the KV server's
   workers do on drain) — while a slot that goes silent with the
   domain still attached is caught as before. *)
let test_watchdog_clean_worker_exit () =
  let site = Ct_util.Yieldpoint.register "test.harness.worker" in
  let progress = Ct_util.Progress.create ~slots:4 () in
  let wd = Harness.Watchdog.create ~stall_epochs:2 progress in
  let keep_beating = Atomic.make true in
  (* Publish like an instrumented worker: [observe] records the site
     (marking the slot attached for the watchdog) and bumps the beat. *)
  let publish () =
    Ct_util.Progress.observe progress Ct_util.Yieldpoint.After site
  in
  (* Slot 0: beats a little, then exits cleanly mid-run. *)
  let d0 =
    Domain.spawn (fun () ->
        Ct_util.Progress.attach progress 0;
        for _ = 1 to 3 do
          publish ();
          Unix.sleepf 0.002
        done;
        Ct_util.Progress.detach progress)
  in
  (* Slot 1: keeps beating for the whole run. *)
  let d1 =
    Domain.spawn (fun () ->
        Ct_util.Progress.attach progress 1;
        while Atomic.get keep_beating do
          publish ();
          Unix.sleepf 0.001
        done;
        Ct_util.Progress.detach progress)
  in
  Domain.join d0;
  (* Many epochs after the clean exit: the vacated slot must not
     surface as a stall while the live worker keeps beating. *)
  for _ = 1 to 6 do
    check_int "no stall after clean worker exit" 0
      (List.length (Harness.Watchdog.step wd));
    Unix.sleepf 0.002
  done;
  Atomic.set keep_beating false;
  Domain.join d1;
  (* Control: going silent while still attached IS a stall. *)
  let d2 =
    Domain.spawn (fun () ->
        Ct_util.Progress.attach progress 2;
        publish ())
  in
  Domain.join d2;
  let caught = ref false in
  for _ = 1 to 4 do
    if
      List.exists
        (fun r -> r.Harness.Watchdog.slot = 2)
        (Harness.Watchdog.step wd)
    then caught := true
  done;
  check_bool "undetached silent slot is still caught" true !caught

let suite =
  [
    ("watchdog_clean_worker_exit", `Quick, test_watchdog_clean_worker_exit);
    ("trace_generate", `Quick, test_trace_generate);
    ("trace_replay_counts", `Quick, test_trace_replay_counts);
    ("trace_replay_parallel_counts", `Slow, test_trace_replay_parallel_counts);
    ("barrier_releases_all", `Quick, test_barrier_releases_all);
    ("barrier_reusable", `Quick, test_barrier_reusable);
    ("run_timed", `Quick, test_run_timed);
    ("run_collect_order", `Quick, test_run_collect_order);
    ("shuffled_keys", `Quick, test_shuffled_keys);
    ("disjoint_ranges", `Quick, test_disjoint_ranges);
    ("zipf", `Quick, test_zipf);
    ("batches", `Quick, test_batches);
    ("batched_lookups", `Quick, test_batched_lookups);
    ("measure_run", `Quick, test_measure_run);
    ("footprint", `Quick, test_footprint);
    ("report_table", `Quick, test_report_table);
    ("structures_registry", `Quick, test_structures_registry);
  ]
