(* Sequential unit tests for the cache-trie. *)

open Ct_util

module CT = Cachetrie.Make (Hashing.Int_key)
module CT_str = Cachetrie.Make (Hashing.String_key)
module CT_collide = Cachetrie.Make (Hashing.Constant_hash_int)
module CT_bad = Cachetrie.Make (Hashing.Bad_hash_int)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_opt = Alcotest.(check (option int))

let assert_valid name t =
  match CT.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: invariant violation: %s" name e

(* ------------------------- basic operations ----------------------- *)

let test_empty () =
  let t = CT.create () in
  check_opt "lookup empty" None (CT.lookup t 1);
  check_bool "mem empty" false (CT.mem t 1);
  check_int "size empty" 0 (CT.size t);
  check_bool "is_empty" true (CT.is_empty t);
  check_opt "remove empty" None (CT.remove t 1);
  assert_valid "empty" t

let test_insert_lookup () =
  let t = CT.create () in
  CT.insert t 1 100;
  CT.insert t 2 200;
  check_opt "k1" (Some 100) (CT.lookup t 1);
  check_opt "k2" (Some 200) (CT.lookup t 2);
  check_opt "absent" None (CT.lookup t 3);
  check_int "size" 2 (CT.size t);
  check_bool "not empty" false (CT.is_empty t);
  assert_valid "insert_lookup" t

let test_insert_overwrite () =
  let t = CT.create () in
  CT.insert t 7 1;
  CT.insert t 7 2;
  CT.insert t 7 3;
  check_opt "latest wins" (Some 3) (CT.lookup t 7);
  check_int "size 1" 1 (CT.size t);
  assert_valid "overwrite" t

let test_add_returns_previous () =
  let t = CT.create () in
  check_opt "first add" None (CT.add t 5 50);
  check_opt "second add" (Some 50) (CT.add t 5 51);
  check_opt "third add" (Some 51) (CT.add t 5 52);
  check_opt "now" (Some 52) (CT.lookup t 5)

let test_put_if_absent () =
  let t = CT.create () in
  check_opt "installs" None (CT.put_if_absent t 9 90);
  check_opt "declines" (Some 90) (CT.put_if_absent t 9 91);
  check_opt "kept original" (Some 90) (CT.lookup t 9);
  assert_valid "put_if_absent" t

let test_replace () =
  let t = CT.create () in
  check_opt "absent: no-op" None (CT.replace t 4 40);
  check_opt "still absent" None (CT.lookup t 4);
  CT.insert t 4 40;
  check_opt "present: replaces" (Some 40) (CT.replace t 4 41);
  check_opt "new value" (Some 41) (CT.lookup t 4);
  assert_valid "replace" t

let test_remove () =
  let t = CT.create () in
  CT.insert t 1 10;
  CT.insert t 2 20;
  check_opt "removes" (Some 10) (CT.remove t 1);
  check_opt "gone" None (CT.lookup t 1);
  check_opt "other alive" (Some 20) (CT.lookup t 2);
  check_opt "re-remove" None (CT.remove t 1);
  check_int "size" 1 (CT.size t);
  assert_valid "remove" t

let test_remove_reinsert () =
  let t = CT.create () in
  for round = 1 to 5 do
    for i = 0 to 99 do
      CT.insert t i (i * round)
    done;
    for i = 0 to 99 do
      check_opt "present" (Some (i * round)) (CT.lookup t i)
    done;
    for i = 0 to 99 do
      check_opt "removed" (Some (i * round)) (CT.remove t i)
    done;
    check_int "emptied" 0 (CT.size t)
  done;
  assert_valid "remove_reinsert" t

let test_many_keys () =
  let n = 20_000 in
  let t = CT.create () in
  for i = 0 to n - 1 do
    CT.insert t i i
  done;
  check_int "size" n (CT.size t);
  for i = 0 to n - 1 do
    if CT.lookup t i <> Some i then Alcotest.failf "lost key %d" i
  done;
  for i = n to n + 100 do
    check_opt "absent" None (CT.lookup t i)
  done;
  assert_valid "many_keys" t

let test_negative_and_extreme_keys () =
  let t = CT.create () in
  let keys = [ min_int; -1; 0; 1; max_int; 0xFFFFFFFF; 1 lsl 61 ] in
  List.iteri (fun i k -> CT.insert t k i) keys;
  List.iteri (fun i k -> check_opt "extreme" (Some i) (CT.lookup t k)) keys;
  check_int "all distinct" (List.length keys) (CT.size t);
  assert_valid "extreme" t

let test_string_keys () =
  let t = CT_str.create () in
  CT_str.insert t "alpha" 1;
  CT_str.insert t "beta" 2;
  CT_str.insert t "" 3;
  Alcotest.(check (option int)) "alpha" (Some 1) (CT_str.lookup t "alpha");
  Alcotest.(check (option int)) "empty string key" (Some 3) (CT_str.lookup t "");
  Alcotest.(check (option int)) "absent" None (CT_str.lookup t "gamma");
  Alcotest.(check int) "size" 3 (CT_str.size t)

(* ----------------------- aggregate queries ------------------------ *)

let test_fold_iter_to_list () =
  let t = CT.create () in
  for i = 1 to 100 do
    CT.insert t i (2 * i)
  done;
  let sum = CT.fold (fun acc _ v -> acc + v) 0 t in
  check_int "fold sum" (2 * 5050) sum;
  let count = ref 0 in
  CT.iter (fun k v -> if v = 2 * k then incr count) t;
  check_int "iter consistent" 100 !count;
  let l = CT.to_list t in
  check_int "to_list length" 100 (List.length l);
  let sorted = List.sort compare (List.map fst l) in
  Alcotest.(check (list int)) "keys" (List.init 100 (fun i -> i + 1)) sorted

let test_to_seq () =
  let t = CT.create () in
  for i = 1 to 500 do
    CT.insert t i (3 * i)
  done;
  let l = List.of_seq (CT.to_seq t) in
  check_int "seq yields all" 500 (List.length l);
  Alcotest.(check (list int))
    "same keys as to_list"
    (List.sort compare (List.map fst (CT.to_list t)))
    (List.sort compare (List.map fst l));
  List.iter (fun (k, v) -> if v <> 3 * k then Alcotest.failf "seq pair %d" k) l;
  (* Laziness: taking a prefix does not force the whole trie. *)
  let first_three = List.of_seq (Seq.take 3 (CT.to_seq t)) in
  check_int "prefix" 3 (List.length first_three);
  check_int "empty seq" 0 (List.length (List.of_seq (CT.to_seq (CT.create ()))))

(* ----------------------- hash collisions -------------------------- *)

let test_full_collisions_lnode () =
  (* Every key hashes to 42: all land in one LNode. *)
  let t = CT_collide.create () in
  for i = 0 to 19 do
    CT_collide.insert t i (100 + i)
  done;
  check_int "size" 20 (CT_collide.size t);
  for i = 0 to 19 do
    Alcotest.(check (option int)) "colliding key" (Some (100 + i)) (CT_collide.lookup t i)
  done;
  Alcotest.(check (option int)) "absent collider" None (CT_collide.lookup t 99)

let test_collision_update_and_remove () =
  let t = CT_collide.create () in
  for i = 0 to 9 do
    CT_collide.insert t i i
  done;
  (* Update within the list. *)
  CT_collide.insert t 5 505;
  Alcotest.(check (option int)) "updated in lnode" (Some 505) (CT_collide.lookup t 5);
  Alcotest.(check (option int)) "pia declines" (Some 505) (CT_collide.put_if_absent t 5 9);
  Alcotest.(check (option int)) "replace works" (Some 505) (CT_collide.replace t 5 506);
  (* Remove down to one element: LNode contracts back to an SNode. *)
  for i = 0 to 8 do
    Alcotest.(check bool) "removed" true (CT_collide.remove t i <> None)
  done;
  Alcotest.(check int) "one left" 1 (CT_collide.size t);
  Alcotest.(check (option int)) "survivor" (Some 9) (CT_collide.lookup t 9);
  (* And the survivor is still updatable. *)
  CT_collide.insert t 9 99;
  Alcotest.(check (option int)) "survivor updated" (Some 99) (CT_collide.lookup t 9)

let test_bad_hash_deep_trie () =
  (* Identity hashes: keys 0..n-1 share long low-bit prefixes, forcing
     deep paths and repeated narrow-node expansion. *)
  let t = CT_bad.create () in
  let n = 4096 in
  for i = 0 to n - 1 do
    CT_bad.insert t (i * 16) i (* same low nibble, differs at level 4+ *)
  done;
  Alcotest.(check int) "size" n (CT_bad.size t);
  for i = 0 to n - 1 do
    if CT_bad.lookup t (i * 16) <> Some i then Alcotest.failf "bad-hash lost %d" i
  done;
  match CT_bad.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "bad-hash invariant: %s" e

(* --------------------- expansion & compression -------------------- *)

let test_expansions_happen () =
  let t = CT.create () in
  for i = 0 to 9_999 do
    CT.insert t i i
  done;
  let s = CT.cache_stats t in
  check_bool "narrow nodes expanded" true (s.Cachetrie.expansions > 0);
  assert_valid "expansions" t

let test_compression_reclaims () =
  let t = CT_bad.create () in
  (* Two keys colliding through several levels build a deep chain; after
     removing both, compression should fire at least once. *)
  for i = 0 to 999 do
    CT_bad.insert t (i * 1024) i
  done;
  for i = 0 to 999 do
    ignore (CT_bad.remove t (i * 1024))
  done;
  Alcotest.(check int) "empty" 0 (CT_bad.size t);
  let s = CT_bad.cache_stats t in
  Alcotest.(check bool) "compressions happened" true (s.Cachetrie.compressions > 0);
  (match CT_bad.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "compression invariant: %s" e);
  (* Structure stays usable after compression. *)
  CT_bad.insert t 2048 7;
  Alcotest.(check (option int)) "reusable" (Some 7) (CT_bad.lookup t 2048)

(* --------------------------- the cache ---------------------------- *)

let test_cache_gets_installed () =
  let t = CT.create () in
  let n = 200_000 in
  for i = 0 to n - 1 do
    CT.insert t i i
  done;
  (* Drive lookups so misses accumulate and sampling fires. *)
  for round = 1 to 3 do
    ignore round;
    for i = 0 to n - 1 do
      if CT.lookup t i <> Some i then Alcotest.failf "lookup lost %d" i
    done
  done;
  let s = CT.cache_stats t in
  check_bool "cache installed" true (s.Cachetrie.cache_level <> None);
  check_bool "sampling ran" true (s.Cachetrie.sampling_passes > 0);
  assert_valid "cache_installed" t

let test_cache_correct_after_removals () =
  let t = CT.create () in
  let n = 100_000 in
  for i = 0 to n - 1 do
    CT.insert t i i
  done;
  for i = 0 to n - 1 do
    ignore (CT.lookup t i)
  done;
  (* Remove half the keys; cached pointers to them must be rejected. *)
  for i = 0 to (n / 2) - 1 do
    ignore (CT.remove t i)
  done;
  for i = 0 to (n / 2) - 1 do
    if CT.lookup t i <> None then Alcotest.failf "stale cached key %d" i
  done;
  for i = n / 2 to n - 1 do
    if CT.lookup t i <> Some i then Alcotest.failf "lost surviving key %d" i
  done;
  check_int "half size" (n / 2) (CT.size t)

let test_cache_correct_after_updates () =
  let t = CT.create () in
  let n = 100_000 in
  for i = 0 to n - 1 do
    CT.insert t i i
  done;
  for i = 0 to n - 1 do
    ignore (CT.lookup t i)
  done;
  for i = 0 to n - 1 do
    CT.insert t i (i + 1)
  done;
  for i = 0 to n - 1 do
    if CT.lookup t i <> Some (i + 1) then Alcotest.failf "stale cached value %d" i
  done

let test_no_cache_variant () =
  let config = { Cachetrie.default_config with enable_cache = false } in
  let t = CT.create_with ~config () in
  let n = 150_000 in
  for i = 0 to n - 1 do
    CT.insert t i i
  done;
  for i = 0 to n - 1 do
    if CT.lookup t i <> Some i then Alcotest.failf "no-cache lost %d" i
  done;
  let s = CT.cache_stats t in
  check_bool "no cache ever" true (s.Cachetrie.cache_level = None);
  check_int "no installs" 0 (s.Cachetrie.cache_installs)

let test_no_narrow_variant () =
  let config = { Cachetrie.default_config with narrow_nodes = false } in
  let t = CT.create_with ~config () in
  for i = 0 to 9_999 do
    CT.insert t i i
  done;
  for i = 0 to 9_999 do
    if CT.lookup t i <> Some i then Alcotest.failf "wide-only lost %d" i
  done;
  let s = CT.cache_stats t in
  check_int "no expansions without narrow nodes" 0 s.Cachetrie.expansions;
  assert_valid "wide-only" t

let test_low_trigger_cache () =
  (* A low trigger level makes even small tries install a cache, which
     exercises the fast paths deterministically. *)
  let config =
    {
      Cachetrie.default_config with
      cache_trigger_level = 4;
      min_cache_level = 4;
      max_misses = 16;
      sample_paths = 8;
    }
  in
  let t = CT.create_with ~config () in
  for i = 0 to 4_999 do
    CT.insert t i i
  done;
  for _round = 1 to 4 do
    for i = 0 to 4_999 do
      if CT.lookup t i <> Some i then Alcotest.failf "low-trigger lost %d" i
    done
  done;
  let s = CT.cache_stats t in
  check_bool "cache on" true (s.Cachetrie.cache_level <> None);
  (* Mutations through the fast path stay correct. *)
  for i = 0 to 4_999 do
    CT.insert t i (i * 3)
  done;
  for i = 0 to 4_999 do
    if CT.lookup t i <> Some (i * 3) then Alcotest.failf "fast update lost %d" i
  done;
  for i = 0 to 4_999 do
    ignore (CT.remove t i)
  done;
  check_int "fast removes emptied" 0 (CT.size t)

let drive_lookups t n rounds =
  for _ = 1 to rounds do
    for i = 0 to n - 1 do
      ignore (CT.lookup t i)
    done
  done

let test_cache_level_tracks_theory () =
  (* Theorem 4.4: the cache settles a constant distance from the
     expected key depth.  After sampling stabilizes, the cache level
     must equal 4 * (best adjacent pair) from Theorem 4.2 (paper depth
     d corresponds to trie level 4 * (d + 1)). *)
  let n = 200_000 in
  let t = CT.create () in
  for i = 0 to n - 1 do
    CT.insert t i i
  done;
  drive_lookups t n 4;
  let s = CT.cache_stats t in
  (match s.Cachetrie.cache_level with
  | None -> Alcotest.fail "no cache installed"
  | Some lv ->
      let expected = 4 * (Analysis.Depth_theory.best_pair n + 1) in
      check_bool
        (Printf.sprintf "cache level %d within one level of theory %d" lv expected)
        true
        (abs (lv - expected) <= 4));
  check_bool "sampling ran" true (s.Cachetrie.sampling_passes > 0)

let test_cache_adjusts_up_on_growth () =
  let config = { Cachetrie.default_config with max_misses = 128 } in
  let t = CT.create_with ~config () in
  for i = 0 to 29_999 do
    CT.insert t i i
  done;
  drive_lookups t 30_000 3;
  let lv_small =
    match (CT.cache_stats t).Cachetrie.cache_level with
    | Some lv -> lv
    | None -> Alcotest.fail "no cache after small phase"
  in
  (* Grow by an order of magnitude; the keys sink a level deeper. *)
  for i = 30_000 to 499_999 do
    CT.insert t i i
  done;
  drive_lookups t 500_000 3;
  let lv_big =
    match (CT.cache_stats t).Cachetrie.cache_level with
    | Some lv -> lv
    | None -> Alcotest.fail "no cache after growth"
  in
  check_bool
    (Printf.sprintf "cache deepened (%d -> %d)" lv_small lv_big)
    true (lv_big > lv_small);
  (* Correctness through the adjusted cache. *)
  for i = 0 to 499_999 do
    if CT.lookup t i <> Some i then Alcotest.failf "lost %d after adjustment" i
  done

let test_cache_aligned_after_shrink () =
  (* After mass removal the trie compacts along removal paths, but
     fast-path removes enter at the cache level, so nodes above it may
     keep single-child chains.  The operational guarantee (Theorem 4.4)
     is alignment: the cache level must cover the most populated
     adjacent depth pair of the *actual* post-shrink distribution, so
     lookups stay O(1). *)
  let config = { Cachetrie.default_config with max_misses = 128 } in
  let t = CT.create_with ~config () in
  let n = 300_000 in
  for i = 0 to n - 1 do
    CT.insert t i i
  done;
  drive_lookups t n 3;
  (* Remove 99% of the keys, then keep looking up the survivors. *)
  for i = 1_000 to n - 1 do
    ignore (CT.remove t i)
  done;
  drive_lookups t 1_000 400;
  let lv =
    match (CT.cache_stats t).Cachetrie.cache_level with
    | Some lv -> lv
    | None -> Alcotest.fail "cache vanished after shrink"
  in
  let d, frac = Analysis.Histogram.top_pair_fraction (CT.depth_histogram t) in
  check_bool
    (Printf.sprintf "cache level %d covers top pair starting at depth %d" lv d)
    true
    (lv = 4 * d || lv = 4 * (d + 1) || lv = 4 * (d - 1));
  check_bool "keys still concentrated" true (frac > 0.87);
  (* Compression did reclaim structure along removal paths. *)
  check_bool "compressions happened" true ((CT.cache_stats t).Cachetrie.compressions > 0);
  for i = 0 to 999 do
    if CT.lookup t i <> Some i then Alcotest.failf "survivor %d lost" i
  done

let test_slow_path_removal_compacts () =
  (* Without a cache every removal walks from the root, so the cascade
     compaction can float survivors all the way up: the end state must
     match the natural trie of the surviving keys. *)
  let config = { Cachetrie.default_config with enable_cache = false } in
  let t = CT.create_with ~config () in
  let n = 200_000 in
  for i = 0 to n - 1 do
    CT.insert t i i
  done;
  for i = 100 to n - 1 do
    ignore (CT.remove t i)
  done;
  let hist = CT.depth_histogram t in
  check_int "survivors" 100 (Array.fold_left ( + ) 0 hist);
  (* 100 uniform keys naturally live at depths 2-3 (~98%); chains whose
     single child is an inner node are not lifted, so allow a small
     residue deeper.  Without compaction survivors would sit at the
     original depths 4-5. *)
  check_bool
    (Printf.sprintf "compact: d1=%d d2=%d d3=%d d4=%d" hist.(1) hist.(2) hist.(3) hist.(4))
    true
    (hist.(1) + hist.(2) + hist.(3) >= 90 && hist.(4) + hist.(5) + hist.(6) <= 10);
  assert_valid "slow_path_compact" t

let test_single_level_cache_variant () =
  (* Ablation: with dual_level_cache off only the head level is
     inhabited; correctness must be unaffected. *)
  let config =
    { Cachetrie.default_config with dual_level_cache = false; max_misses = 128 }
  in
  let t = CT.create_with ~config () in
  let n = 150_000 in
  for i = 0 to n - 1 do
    CT.insert t i i
  done;
  drive_lookups t n 3;
  check_bool "cache on" true ((CT.cache_stats t).Cachetrie.cache_level <> None);
  for i = 0 to n - 1 do
    if CT.lookup t i <> Some i then Alcotest.failf "single-level lost %d" i
  done;
  for i = 0 to 999 do
    CT.insert t i (-i)
  done;
  for i = 0 to 999 do
    if CT.lookup t i <> Some (-i) then Alcotest.failf "single-level stale %d" i
  done

(* ----------------------- introspection ---------------------------- *)

let test_depth_histogram () =
  let t = CT.create () in
  let n = 50_000 in
  for i = 0 to n - 1 do
    CT.insert t i i
  done;
  let hist = CT.depth_histogram t in
  check_int "histogram counts all keys" n (Array.fold_left ( + ) 0 hist);
  check_int "no keys at depth 0" 0 hist.(0);
  (* Theorem 4.2: some adjacent pair of depths holds >= ~87% of keys. *)
  let best = ref 0 in
  for d = 0 to Array.length hist - 2 do
    best := max !best (hist.(d) + hist.(d + 1))
  done;
  check_bool
    (Printf.sprintf "adjacent pair holds 87%% (got %.1f%%)"
       (100.0 *. float_of_int !best /. float_of_int n))
    true
    (float_of_int !best /. float_of_int n > 0.87)

let test_footprint_grows () =
  let t = CT.create () in
  let base = CT.footprint_words t in
  check_bool "empty footprint positive" true (base > 0);
  for i = 0 to 999 do
    CT.insert t i i
  done;
  let after = CT.footprint_words t in
  check_bool "footprint grows" true (after > base + (1000 * 5));
  for i = 0 to 999 do
    ignore (CT.remove t i)
  done;
  let emptied = CT.footprint_words t in
  check_bool "footprint shrinks after removals" true (emptied < after)

let test_stats_shape () =
  let t = CT.create () in
  let s = CT.cache_stats t in
  check_bool "fresh trie has no cache" true (s.Cachetrie.cache_level = None);
  check_int "no expansions yet" 0 s.Cachetrie.expansions;
  check_int "no compressions yet" 0 s.Cachetrie.compressions;
  Alcotest.(check (list int)) "empty chain" [] s.Cachetrie.cache_chain

let suite =
  [
    ("empty", `Quick, test_empty);
    ("insert_lookup", `Quick, test_insert_lookup);
    ("insert_overwrite", `Quick, test_insert_overwrite);
    ("add_returns_previous", `Quick, test_add_returns_previous);
    ("put_if_absent", `Quick, test_put_if_absent);
    ("replace", `Quick, test_replace);
    ("remove", `Quick, test_remove);
    ("remove_reinsert", `Quick, test_remove_reinsert);
    ("many_keys", `Quick, test_many_keys);
    ("negative_and_extreme_keys", `Quick, test_negative_and_extreme_keys);
    ("string_keys", `Quick, test_string_keys);
    ("fold_iter_to_list", `Quick, test_fold_iter_to_list);
    ("to_seq", `Quick, test_to_seq);
    ("full_collisions_lnode", `Quick, test_full_collisions_lnode);
    ("collision_update_and_remove", `Quick, test_collision_update_and_remove);
    ("bad_hash_deep_trie", `Quick, test_bad_hash_deep_trie);
    ("expansions_happen", `Quick, test_expansions_happen);
    ("compression_reclaims", `Quick, test_compression_reclaims);
    ("cache_gets_installed", `Slow, test_cache_gets_installed);
    ("cache_correct_after_removals", `Slow, test_cache_correct_after_removals);
    ("cache_correct_after_updates", `Slow, test_cache_correct_after_updates);
    ("no_cache_variant", `Slow, test_no_cache_variant);
    ("no_narrow_variant", `Quick, test_no_narrow_variant);
    ("low_trigger_cache", `Quick, test_low_trigger_cache);
    ("cache_level_tracks_theory", `Slow, test_cache_level_tracks_theory);
    ("cache_adjusts_up_on_growth", `Slow, test_cache_adjusts_up_on_growth);
    ("cache_aligned_after_shrink", `Slow, test_cache_aligned_after_shrink);
    ("single_level_cache_variant", `Slow, test_single_level_cache_variant);
    ("slow_path_removal_compacts", `Slow, test_slow_path_removal_compacts);
    ("depth_histogram", `Slow, test_depth_histogram);
    ("footprint_grows", `Quick, test_footprint_grows);
    ("stats_shape", `Quick, test_stats_shape);
  ]
