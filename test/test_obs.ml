(* Observability layer (DESIGN.md §11): percentile/histogram edge
   cases, latency bucketing, flight-recorder wraparound and concurrent
   dumps, the uniform stats surface across every structure, and the
   exporters' accounting invariants. *)

module Stats = Ct_util.Stats
module Metrics = Ct_util.Metrics
module Histogram = Analysis.Histogram
module Hashing = Ct_util.Hashing
module Yp = Ct_util.Yieldpoint
module Suites = Harness.Suites
module CT = Cachetrie.Make (Hashing.Int_key)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let check_float what expected actual =
  Alcotest.(check (float 1e-9)) what expected actual

let check_raises_invalid what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument _ -> ()

(* ------------------- Stats.percentile edge cases ------------------- *)

let test_percentile_edges () =
  check_raises_invalid "empty array" (fun () -> Stats.percentile [||] 50.0);
  check_raises_invalid "p below range" (fun () ->
      Stats.percentile [| 1.0 |] (-1.0));
  check_raises_invalid "p above range" (fun () ->
      Stats.percentile [| 1.0 |] 100.5);
  (* Singleton: every percentile is the sample. *)
  check_float "singleton p0" 42.0 (Stats.percentile [| 42.0 |] 0.0);
  check_float "singleton p50" 42.0 (Stats.percentile [| 42.0 |] 50.0);
  check_float "singleton p100" 42.0 (Stats.percentile [| 42.0 |] 100.0);
  (* p0/p100 are the extremes regardless of input order. *)
  let xs = [| 9.0; 1.0; 5.0; 3.0; 7.0 |] in
  check_float "p0 is the min" 1.0 (Stats.percentile xs 0.0);
  check_float "p100 is the max" 9.0 (Stats.percentile xs 100.0);
  check_float "p50 is the median" 5.0 (Stats.percentile xs 50.0);
  (* Interpolation between ranks. *)
  check_float "p50 of three is the middle" 2.0
    (Stats.percentile [| 1.0; 2.0; 3.0 |] 50.0);
  check_float "p75 over four" 3.25 (Stats.percentile [| 1.0; 2.0; 3.0; 4.0 |] 75.0)

(* ---------------------- Histogram.merge cases ---------------------- *)

let test_histogram_merge () =
  (* Disjoint ranges: the short histogram pads with zeros. *)
  let a = [| 1; 2 |] and b = [| 0; 0; 0; 7 |] in
  let m = Histogram.merge a b in
  Alcotest.(check (array int)) "disjoint ranges" [| 1; 2; 0; 7 |] m;
  (* Inputs are not mutated. *)
  Alcotest.(check (array int)) "left unmutated" [| 1; 2 |] a;
  Alcotest.(check (array int)) "right unmutated" [| 0; 0; 0; 7 |] b;
  (* Symmetry in the length argument. *)
  Alcotest.(check (array int)) "longer-first" [| 1; 2; 0; 7 |]
    (Histogram.merge b a);
  (* Empty operands. *)
  Alcotest.(check (array int)) "both empty" [||] (Histogram.merge [||] [||]);
  Alcotest.(check (array int)) "left empty" [| 3; 4 |]
    (Histogram.merge [||] [| 3; 4 |]);
  (* Overlap sums bucket-wise. *)
  Alcotest.(check (array int)) "overlap" [| 5; 7 |]
    (Histogram.merge [| 2; 3 |] [| 3; 4 |])

(* -------------------------- Latency buckets ------------------------ *)

let test_latency_buckets () =
  check_int "0 ns" 0 (Obs.Latency.bucket_of_ns 0);
  check_int "1 ns" 0 (Obs.Latency.bucket_of_ns 1);
  check_int "2 ns" 1 (Obs.Latency.bucket_of_ns 2);
  check_int "3 ns" 1 (Obs.Latency.bucket_of_ns 3);
  check_int "4 ns" 2 (Obs.Latency.bucket_of_ns 4);
  check_int "1023 ns" 9 (Obs.Latency.bucket_of_ns 1023);
  check_int "1024 ns" 10 (Obs.Latency.bucket_of_ns 1024);
  (* max_int is 2^62 - 1 on 64-bit OCaml: floor(log2) = 61, safely
     inside the 64-bucket range. *)
  check_int "max_int" 61 (Obs.Latency.bucket_of_ns max_int);
  let h = Obs.Latency.create ~label:"test" in
  check_int "fresh histogram is empty" 0 (Obs.Latency.total h);
  List.iter (Obs.Latency.record_ns h) [ 1; 3; 3; 100; 5000 ];
  check_int "five samples" 5 (Obs.Latency.total h);
  check_int "exact ns sum" 5107 (Obs.Latency.sum_ns h);
  let counts = Obs.Latency.counts h in
  check_int "bucket 0 holds the 1" 1 counts.(0);
  check_int "bucket 1 holds both 3s" 2 counts.(1);
  check_int "bucket 6 holds the 100" 1 counts.(6);
  check_int "bucket 12 holds the 5000" 1 counts.(12);
  (* Percentile lands inside the winning bucket's power-of-two span. *)
  let p99 = Obs.Latency.percentile h 99.0 in
  check_bool "p99 inside the top bucket" true (p99 >= 4096.0 && p99 <= 8192.0);
  let p0 = Obs.Latency.percentile h 0.0 in
  check_bool "p0 inside the bottom bucket" true (p0 >= 0.0 && p0 <= 2.0);
  (* Negative samples (clock hiccup) count as 0, not a crash. *)
  Obs.Latency.record_ns h (-5);
  check_int "negative clamps to bucket 0" 2 (Obs.Latency.counts h).(0);
  Obs.Latency.reset h;
  check_int "reset empties" 0 (Obs.Latency.total h);
  check_int "reset zeroes the sum" 0 (Obs.Latency.sum_ns h);
  check_raises_invalid "percentile of empty" (fun () ->
      Obs.Latency.percentile h 50.0);
  check_raises_invalid "percentile out of range" (fun () ->
      Obs.Latency.percentile_of_counts [| 1 |] 101.0)

let test_latency_merge () =
  let a = Obs.Latency.create ~label:"a" in
  let b = Obs.Latency.create ~label:"b" in
  (* Disjoint ranges: a holds small samples, b large ones. *)
  List.iter (Obs.Latency.record_ns a) [ 1; 2; 3 ];
  List.iter (Obs.Latency.record_ns b) [ 10_000; 20_000 ];
  let m = Obs.Latency.merged_counts [ a; b ] in
  check_int "merged total" 5 (Array.fold_left ( + ) 0 m);
  check_bool "merged p100 in b's range" true
    (Obs.Latency.percentile_of_counts m 100.0 >= 8192.0);
  check_bool "merged p0 in a's range" true
    (Obs.Latency.percentile_of_counts m 0.0 <= 2.0)

(* Regression: the server's admission ticker diffs successive striped
   [counts] snapshots.  Stripe sums are racy, so a bucket can read
   lower than the previous snapshot; [diff_counts] must clamp those to
   zero instead of feeding a negative rate into the p99 window. *)
let test_latency_diff_counts_clamps () =
  let prev = [| 0; 5; 7; 2 |] in
  let now = [| 3; 5; 4; 10 |] in
  let d = Obs.Latency.diff_counts ~prev ~now in
  check_bool "forward buckets diff" true (d.(0) = 3 && d.(1) = 0 && d.(3) = 8);
  check_int "torn (backwards) bucket clamps to zero" 0 d.(2);
  check_bool "never negative" true (Array.for_all (fun x -> x >= 0) d);
  check_raises_invalid "length mismatch refused" (fun () ->
      ignore (Obs.Latency.diff_counts ~prev:[| 1 |] ~now:[| 1; 2 |]));
  (* Live histograms: a snapshot diffed against itself is all-zero. *)
  let h = Obs.Latency.create ~label:"diff" in
  List.iter (Obs.Latency.record_ns h) [ 1; 100; 10_000 ];
  let c = Obs.Latency.counts h in
  check_int "self-diff is zero" 0
    (Array.fold_left ( + ) 0 (Obs.Latency.diff_counts ~prev:c ~now:c))

(* ------------------------- flight recorder ------------------------- *)

let sites_for_test =
  (* Interned once: registering the same names twice is fine. *)
  Array.init 4 (fun i -> Yp.register (Printf.sprintf "obs.test.site%d" i))

let test_flight_wraparound () =
  let size = 16 in
  let f = Obs.Flight.create ~size () in
  check_int "ring capacity" size (Obs.Flight.size f);
  check_bool "fresh dump is empty" true (Obs.Flight.dump f = []);
  (* Overfill the ring 3x: only the newest [size] events survive, in
     strict stamp order. *)
  let total = 3 * size in
  for i = 0 to total - 1 do
    Obs.Flight.record f
      (if i mod 2 = 0 then Yp.Before else Yp.After)
      sites_for_test.(i mod 4)
  done;
  check_int "clock counts every event" total (Obs.Flight.recorded f);
  let dump = Obs.Flight.dump f in
  check_int "ring keeps the last size events" size (List.length dump);
  let stamps = List.map (fun e -> e.Obs.Flight.stamp) dump in
  check_bool "stamps are the newest window" true
    (stamps = List.init size (fun i -> total - size + i));
  (* Rendering honours the limit and stays oldest-first. *)
  let s = Obs.Flight.dump_to_string ~limit:4 f in
  check_int "limited render has 4 lines" 4
    (List.length (String.split_on_char '\n' s));
  Obs.Flight.reset f;
  check_bool "reset forgets everything" true (Obs.Flight.dump f = []);
  check_int "reset rewinds the clock" 0 (Obs.Flight.recorded f)

let test_flight_concurrent_dump () =
  let f = Obs.Flight.create ~size:64 () in
  let stop = Atomic.make false in
  let recorder =
    Domain.spawn (fun () ->
        let i = ref 0 in
        while not (Atomic.get stop) do
          Obs.Flight.record f
            (if !i land 1 = 0 then Yp.Before else Yp.After)
            sites_for_test.(!i land 3);
          incr i
        done)
  in
  (* Don't start dumping until the recorder domain is actually running,
     or a fast main thread can finish all 200 dumps before the spawned
     domain is scheduled at all. *)
  while Obs.Flight.recorded f = 0 do
    Domain.cpu_relax ()
  done;
  (* Dump repeatedly while the recorder is overwriting: every dump must
     come back stamp-sorted and strictly increasing, never crash. *)
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) ->
        a.Obs.Flight.stamp < b.Obs.Flight.stamp && strictly_increasing rest
    | _ -> true
  in
  for _ = 1 to 200 do
    let d = Obs.Flight.dump f in
    check_bool "concurrent dump is strictly stamp-ordered" true
      (strictly_increasing d);
    check_bool "concurrent dump fits the ring" true
      (List.length d <= 64 * 2)
  done;
  Atomic.set stop true;
  Domain.join recorder;
  check_bool "events were recorded meanwhile" true (Obs.Flight.recorded f > 0)

(* ------------------- uniform stats across all maps ------------------ *)

let all_labels = List.map Metrics.label Metrics.all

let test_uniform_stats () =
  List.iter
    (fun (module M : Suites.IMAP) ->
      let t = M.create () in
      for k = 0 to 999 do
        M.insert t k k
      done;
      for k = 0 to 999 do
        ignore (M.lookup t k)
      done;
      for k = 0 to 499 do
        ignore (M.remove t k)
      done;
      ignore (M.scrub t);
      let stats = M.stats t in
      Alcotest.(check (list string))
        (M.name ^ ": stats exposes the full vocabulary in order")
        all_labels (List.map fst stats);
      let stat l = List.assoc l stats in
      check_bool
        (M.name ^ ": retries <= attempts")
        true
        (stat "cas_retries" <= stat "cas_attempts");
      check_bool
        (M.name ^ ": counters are non-negative")
        true
        (List.for_all (fun (_, v) -> v >= 0) stats);
      check_bool
        (M.name ^ ": metrics handle agrees with stats")
        true
        (Metrics.snapshot (M.metrics t) = stats);
      M.reset_stats t;
      check_bool
        (M.name ^ ": reset zeroes every counter")
        true
        (List.for_all (fun (_, v) -> v = 0) (M.stats t)))
    Suites.structures

(* The cache-trie's legacy record is a view over the same registry. *)
let test_cachetrie_view_agrees () =
  let t = CT.create () in
  for k = 0 to 9_999 do
    CT.insert t k k
  done;
  for _ = 1 to 3 do
    for k = 0 to 9_999 do
      ignore (CT.lookup t k)
    done
  done;
  let view = CT.cache_stats t in
  let stats = CT.stats t in
  let stat l = List.assoc l stats in
  check_int "expansions agree" (stat "expansions") view.Cachetrie.expansions;
  check_int "compressions agree" (stat "compressions")
    view.Cachetrie.compressions;
  check_int "sampling passes agree" (stat "sampling_passes")
    view.Cachetrie.sampling_passes;
  check_int "cache installs agree" (stat "cache_installs")
    view.Cachetrie.cache_installs;
  check_int "cache adjustments agree" (stat "cache_adjustments")
    view.Cachetrie.cache_adjustments;
  check_bool "lookups were classified" true
    (stat "cache_hits" + stat "cache_misses" > 0)

(* The global gate makes every bump a no-op while disabled. *)
let test_enabled_gate () =
  let t = CT.create () in
  Metrics.set_enabled false;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled true) @@ fun () ->
  for k = 0 to 99 do
    CT.insert t k k;
    ignore (CT.lookup t k)
  done;
  check_bool "disabled bumps count nothing" true
    (List.for_all (fun (_, v) -> v = 0) (CT.stats t))

(* --------------------------- timed wrapper ------------------------- *)

let test_timed_wrapper () =
  let module T = Obs.Timed.Make (CT) in
  let t = T.create () in
  for k = 0 to 99 do
    T.insert t k k
  done;
  for k = 0 to 99 do
    check_int "timed find returns the value" k (T.find t k)
  done;
  (* The Not_found path must be timed too, and still raise. *)
  (match T.find t 12345 with
  | _ -> Alcotest.fail "find of absent key must raise"
  | exception Not_found -> ());
  ignore (T.remove t 0);
  ignore (T.remove t 1);
  let lat = List.assoc "read" (T.latencies t) in
  check_int "reads timed (incl. the miss)" 101 (Obs.Latency.total lat);
  check_int "inserts timed" 100
    (Obs.Latency.total (List.assoc "insert" (T.latencies t)));
  check_int "removes timed" 2
    (Obs.Latency.total (List.assoc "remove" (T.latencies t)));
  check_bool "timed ops recorded positive spans" true (Obs.Latency.sum_ns lat >= 0);
  check_bool "wrapper delegates the stats surface" true
    (T.stats t = CT.stats (T.base t))

(* ---------------------------- exporters ---------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_exporters () =
  let t = CT.create () in
  for k = 0 to 999 do
    CT.insert t k k
  done;
  for k = 0 to 999 do
    ignore (CT.lookup t k)
  done;
  let h = Obs.Latency.create ~label:"op" in
  List.iter (Obs.Latency.record_ns h) [ 5; 50; 500 ];
  let prom = Obs.Export.prometheus ~histograms:[ ("op", h) ] () in
  check_bool "prometheus names the cachetrie family" true
    (contains prom "ct_counter_total{family=\"cachetrie\",counter=\"cas_attempts\"}");
  check_bool "prometheus emits the derived lookups" true
    (contains prom "derived=\"cache_lookups\"");
  check_bool "prometheus emits histogram buckets" true
    (contains prom "ct_latency_ns_bucket{op=\"op\",le=\"8\"} 1");
  check_bool "prometheus closes with +Inf" true
    (contains prom "le=\"+Inf\"} 3");
  check_bool "prometheus emits the exact sum" true
    (contains prom "ct_latency_ns_sum{op=\"op\"} 555");
  (* Derived consistency: hits + misses = lookups, by construction and
     in the export. *)
  let counters = [ ("cache_hits", 7); ("cache_misses", 3) ] in
  check_int "derived lookups" 10
    (List.assoc "cache_lookups" (Obs.Export.derived counters));
  check_bool "registry invariants hold after a workout" true
    (Harness.Obs_report.invariants () = []);
  (* JSON twin renders deterministically and mentions the same family. *)
  let json = Harness.Report.Json.to_string (Harness.Obs_report.metrics_json ()) in
  check_bool "json export names the cachetrie family" true
    (contains json "\"family\": \"cachetrie\"");
  let lat_json =
    Harness.Report.Json.to_string (Harness.Obs_report.latency_json [ ("op", h) ])
  in
  check_bool "latency json carries count and sum" true
    (contains lat_json "\"count\": 3" && contains lat_json "\"sum_ns\": 555");
  (* Keep [t] reachable until here: the registry holds it weakly, and
     the family assertions above depend on its counters being live. *)
  ignore (Sys.opaque_identity (CT.stats t))

(* Hostile label values must not break the Prometheus text exposition:
   backslash, double quote and newline become their two-character
   escapes; clean labels pass through unchanged (same string). *)
let test_escape_label () =
  Alcotest.(check string)
    "hostile label escapes" "a\\\\b\\\"c\\nd"
    (Obs.Export.escape_label "a\\b\"c\nd");
  let clean = "plain_label-99" in
  check_bool "clean label passes through untouched" true
    (Obs.Export.escape_label clean == clean);
  let h = Obs.Latency.create ~label:"evil" in
  Obs.Latency.record_ns h 5;
  let prom = Obs.Export.prometheus ~histograms:[ ("evil\"op\nx\\", h) ] () in
  check_bool "histogram op label is escaped in the export" true
    (contains prom "op=\"evil\\\"op\\nx\\\\\"");
  (* No exposition line may contain a raw quote-newline break: every
     physical line stays a complete sample or comment. *)
  check_bool "no sample line is severed by a raw newline" true
    (String.split_on_char '\n' prom
    |> List.for_all (fun l ->
           l = "" || l.[0] = '#' || contains l " " || contains l "{"))

(* --------------------- tail-latency exemplars ---------------------- *)

let test_latency_exemplars () =
  let h = Obs.Latency.create ~label:"exem" in
  check_bool "fresh histogram has no exemplars" true
    (Obs.Latency.exemplars h = []);
  check_raises_invalid "exemplar bucket out of range" (fun () ->
      Obs.Latency.exemplar h Obs.Latency.n_buckets);
  Obs.Latency.record_ns_traced h 1_000 ~trace_id:42;
  let b_fast = Obs.Latency.bucket_of_ns 1_000 in
  check_int "exemplar stamped into its bucket" 42
    (Obs.Latency.exemplar h b_fast);
  Alcotest.(check (list (pair int int)))
    "exemplars lists the stamped bucket"
    [ (b_fast, 42) ]
    (Obs.Latency.exemplars h);
  (* A slower unsampled occupant (trace id 0) leaves no exemplar, so
     the top-exemplar probe falls back downward to the nearest bucket
     that has one. *)
  Obs.Latency.record_ns_traced h 1_000_000 ~trace_id:0;
  (match Obs.Latency.top_exemplar h (Obs.Latency.counts h) with
  | Some (b, id) ->
      check_int "fallback bucket" b_fast b;
      check_int "fallback id" 42 id
  | None -> Alcotest.fail "expected a fallback exemplar");
  (* A slower sampled occupant takes over; a second one overwrites it
     (last writer wins is the wanted semantics). *)
  Obs.Latency.record_ns_traced h 1_000_000 ~trace_id:77;
  Obs.Latency.record_ns_traced h 1_000_000 ~trace_id:78;
  (match Obs.Latency.top_exemplar h (Obs.Latency.counts h) with
  | Some (b, id) ->
      check_int "top bucket" (Obs.Latency.bucket_of_ns 1_000_000) b;
      check_int "most recent occupant wins" 78 id
  | None -> Alcotest.fail "expected a top exemplar");
  Obs.Latency.reset h;
  check_bool "reset clears exemplars" true (Obs.Latency.exemplars h = [])

(* ----------------------- trace context + ring ---------------------- *)

let test_trace_ctx () =
  let module T = Obs.Trace in
  check_bool "none is untraced" true (not (T.is_traced T.none));
  check_int "none has id 0" 0 (T.id T.none);
  let c = T.make ~sampled:true 0xABCDE in
  check_bool "sampled ctx" true (T.sampled c && T.is_traced c);
  check_int "id roundtrips" 0xABCDE (T.id c);
  let u = T.make ~sampled:false 0xABCDE in
  check_bool "unsampled ctx still traced" true
    (T.is_traced u && not (T.sampled u));
  (* Id 0 is coerced away so "untraced" stays unambiguous; ids are
     masked to 62 bits. *)
  check_bool "zero id is coerced nonzero" true (T.id (T.make ~sampled:true 0) <> 0);
  check_bool "id is masked to 62 bits" true
    (T.id (T.make ~sampled:false max_int) <= (1 lsl 62) - 1);
  let wid, s = T.to_wire c in
  check_bool "wire roundtrip" true (T.of_wire ~wire_id:wid ~sampled:s = c);
  check_bool "zero wire id decodes to none" true
    (T.of_wire ~wire_id:0 ~sampled:true = T.none);
  (* Stage indexing is total and stable. *)
  List.iter
    (fun st -> check_bool "stage index roundtrips" true
        (T.stage_of_index (T.stage_index st) = st))
    T.all_stages

let test_trace_ring () =
  let module T = Obs.Trace in
  let tr = T.create ~size:4 () in
  check_int "size rounds to a power of two" 4 (T.size tr);
  let c1 = T.make ~sampled:true 101 and c2 = T.make ~sampled:true 202 in
  T.record tr c1 T.Queue_wait ~start_ns:10 ~dur_ns:5 ~a:0 ~b:0;
  T.record tr c1 T.Exec ~start_ns:15 ~dur_ns:3 ~a:1 ~b:2;
  T.record tr c2 T.Request ~start_ns:10 ~dur_ns:9 ~a:0 ~b:0;
  check_int "recorded counts all spans" 3 (T.recorded tr);
  let spans = T.spans tr in
  check_int "all spans resident" 3 (List.length spans);
  check_bool "spans come out stamp-ordered" true
    (List.map (fun (s : T.span) -> s.T.stamp) spans = [ 0; 1; 2 ]);
  let mine = T.spans_of tr ~id:(T.id c1) in
  check_int "spans_of filters by trace id" 2 (List.length mine);
  check_bool "span fields survive" true
    (match mine with
    | [ q; e ] ->
        q.T.stage = T.Queue_wait && q.T.dur_ns = 5 && e.T.stage = T.Exec
        && e.T.a = 1 && e.T.b = 2
    | _ -> false);
  (* Negative durations (clock steps) clamp to zero. *)
  T.record tr c2 T.Exec ~start_ns:20 ~dur_ns:(-7) ~a:0 ~b:0;
  check_bool "negative duration clamps to 0" true
    (List.exists
       (fun (s : T.span) -> s.T.stage = T.Exec && s.T.dur_ns = 0)
       (T.spans_of tr ~id:(T.id c2)));
  (* Wraparound: the ring keeps the most recent [size] spans per slot
     and the dump stays stamp-ordered. *)
  for i = 1 to 6 do
    T.record tr c1 T.Map_op ~start_ns:(100 + i) ~dur_ns:1 ~a:0 ~b:0
  done;
  let after = T.spans tr in
  check_int "ring kept at most size spans" 4 (List.length after);
  check_bool "wrapped dump still stamp-ordered" true
    (let stamps = List.map (fun (s : T.span) -> s.T.stamp) after in
     List.sort compare stamps = stamps);
  check_int "recorded keeps counting past the wrap" 10 (T.recorded tr);
  (* Stage summary aggregates resident spans in stage order. *)
  check_bool "stage summary names map_op" true
    (List.exists (fun (n, c, _) -> n = "map_op" && c > 0) (T.stage_summary tr));
  T.reset tr;
  check_bool "reset empties the ring" true (T.spans tr = []);
  check_int "reset rewinds the recorded count" 0 (T.recorded tr)

let test_trace_sink_and_ambient () =
  let module T = Obs.Trace in
  let tr = T.create ~size:8 () in
  (* Without a sink, record_sink and timed_ambient are no-ops. *)
  T.record_sink (T.make ~sampled:true 7) T.Wal_fsync ~start_ns:0 ~dur_ns:1 ~a:0
    ~b:0;
  check_int "no sink, no spans" 0 (T.recorded tr);
  T.install tr;
  Fun.protect ~finally:T.uninstall @@ fun () ->
  check_bool "sink is installed" true (T.sink () = Some tr);
  T.record_sink (T.make ~sampled:true 7) T.Wal_fsync ~start_ns:0 ~dur_ns:1 ~a:9
    ~b:0;
  check_int "sink routes to the collector" 1 (T.recorded tr);
  (* Ambient context: default none, scoped by with_ctx (restored on
     raise), and timed_ambient records only when sampled. *)
  check_bool "ambient defaults to none" true (T.current () = T.none);
  let c = T.make ~sampled:true 55 in
  T.with_ctx c (fun () ->
      check_bool "with_ctx installs" true (T.current () = c));
  check_bool "with_ctx restores" true (T.current () = T.none);
  (match T.with_ctx c (fun () -> raise Exit) with
  | _ -> Alcotest.fail "expected Exit"
  | exception Exit -> ());
  check_bool "with_ctx restores on raise" true (T.current () = T.none);
  let before = T.recorded tr in
  ignore (T.timed_ambient T.Cache_lookup (fun () -> 1 + 1));
  check_int "unsampled ambient records nothing" before (T.recorded tr);
  T.with_ctx c (fun () ->
      check_int "timed_ambient returns the result" 3
        (T.timed_ambient T.Cache_lookup (fun () -> 3)));
  check_int "sampled ambient records one span" (before + 1) (T.recorded tr);
  check_bool "ambient span carries the ambient id" true
    (T.spans_of tr ~id:55 <> [])

(* Batch operations are timed as one whole-batch sample per call into
   the matching histogram. *)
let test_timed_batch () =
  let module T = Obs.Timed.Make (CT) in
  let t = T.create () in
  let keys = Array.init 64 (fun i -> i) in
  let vals = Array.init 64 (fun i -> i * 2) in
  T.insert_batch t keys vals;
  let out = Array.make 64 (-1) in
  let found = T.find_batch t keys ~miss:(-1) out in
  check_int "batch find finds every key" 64 found;
  check_bool "batch find fills the out array" true
    (Array.to_list out = Array.to_list vals);
  let removed = T.remove_batch t (Array.sub keys 0 8) in
  check_int "batch remove counts" 8 removed;
  check_int "one read sample per find_batch" 1
    (Obs.Latency.total (List.assoc "read" (T.latencies t)));
  check_int "one insert sample per insert_batch" 1
    (Obs.Latency.total (List.assoc "insert" (T.latencies t)));
  check_int "one remove sample per remove_batch" 1
    (Obs.Latency.total (List.assoc "remove" (T.latencies t)))

(* ------------------- watchdog post-mortem wiring ------------------- *)

let test_post_mortem_embeds_flight () =
  let progress = Ct_util.Progress.create ~slots:2 () in
  let flight = Obs.Flight.create ~size:32 () in
  Obs.Flight.install_with_progress flight progress;
  Fun.protect ~finally:Obs.Flight.uninstall @@ fun () ->
  Ct_util.Progress.attach progress 0;
  let t = CT.create () in
  for k = 0 to 31 do
    CT.insert t k k
  done;
  Ct_util.Progress.detach progress;
  check_bool "observer fed both progress and the recorder" true
    (Obs.Flight.recorded flight > 0);
  let wd = Harness.Watchdog.create ~flight progress in
  let pm = Harness.Watchdog.post_mortem wd in
  check_bool "post-mortem has the flight section" true
    (contains pm "flight recorder");
  check_bool "post-mortem shows recorded events" true (contains pm "cachetrie.");
  let wd_bare = Harness.Watchdog.create progress in
  check_bool "post-mortem without a recorder omits the section" true
    (not (contains (Harness.Watchdog.post_mortem wd_bare) "flight recorder"))

(* With a tracer pair wired in, the post-mortem resolves the latency
   histogram's tail exemplar to its resident span tree. *)
let test_post_mortem_tail_exemplar () =
  let module T = Obs.Trace in
  let progress = Ct_util.Progress.create ~slots:2 () in
  let tr = T.create ~size:32 () in
  let lat = Obs.Latency.create ~label:"pm" in
  let ctx = T.make ~sampled:true 0xFACE in
  T.record tr ctx T.Request ~start_ns:100 ~dur_ns:5_000_000 ~a:0 ~b:0;
  Obs.Latency.record_ns_traced lat 5_000_000 ~trace_id:(T.id ctx);
  Obs.Latency.record_ns_traced lat 10 ~trace_id:0;
  let wd = Harness.Watchdog.create ~tracer:(tr, lat) progress in
  let pm = Harness.Watchdog.post_mortem wd in
  check_bool "post-mortem names the tail exemplar" true
    (contains pm "tail exemplar: trace 000000000000face");
  check_bool "post-mortem dumps its span tree" true (contains pm "request");
  (* Exemplar resident in the histogram but already evicted from the
     ring: the dump says so instead of printing nothing. *)
  T.reset tr;
  check_bool "evicted tree is reported as overwritten" true
    (contains (Harness.Watchdog.post_mortem wd) "already overwritten")

let suite =
  [
    ("percentile_edges", `Quick, test_percentile_edges);
    ("histogram_merge", `Quick, test_histogram_merge);
    ("latency_buckets", `Quick, test_latency_buckets);
    ("latency_merge", `Quick, test_latency_merge);
    ("latency_diff_counts_clamps", `Quick, test_latency_diff_counts_clamps);
    ("flight_wraparound", `Quick, test_flight_wraparound);
    ("flight_concurrent_dump", `Quick, test_flight_concurrent_dump);
    ("uniform_stats", `Quick, test_uniform_stats);
    ("cachetrie_view_agrees", `Quick, test_cachetrie_view_agrees);
    ("enabled_gate", `Quick, test_enabled_gate);
    ("timed_wrapper", `Quick, test_timed_wrapper);
    ("exporters", `Quick, test_exporters);
    ("escape_label", `Quick, test_escape_label);
    ("latency_exemplars", `Quick, test_latency_exemplars);
    ("trace_ctx", `Quick, test_trace_ctx);
    ("trace_ring", `Quick, test_trace_ring);
    ("trace_sink_and_ambient", `Quick, test_trace_sink_and_ambient);
    ("timed_batch", `Quick, test_timed_batch);
    ("post_mortem_embeds_flight", `Quick, test_post_mortem_embeds_flight);
    ("post_mortem_tail_exemplar", `Quick, test_post_mortem_tail_exemplar);
  ]
