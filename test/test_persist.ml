(* Persistence layer (DESIGN.md §14): CRC32 vectors, WAL append /
   group-commit acks / rotation, checkpoint round-trips, recovery's
   typed refusals (torn tail strict vs salvage, mid-file corruption,
   LSN gaps, corrupt checkpoints), the durable serving loop end to
   end, and the property that salvage recovery after a randomly placed
   crash is exactly a prefix of the appended operations. *)

module Wal = Persist.Wal
module Checkpoint = Persist.Checkpoint
module Recovery = Persist.Recovery
module Crc32 = Persist.Crc32
module Io = Persist.Io
module Disk = Chaos.Disk

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let dir_counter = ref 0

let with_dir f =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ct_persist_%d_%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let await what f =
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (f ())) && Unix.gettimeofday () < deadline do
    Unix.sleepf 1e-3
  done;
  if not (f ()) then Alcotest.failf "timed out waiting for %s" what

(* Recover [dir] into a fresh table; salvage off unless asked. *)
let load_tbl ?(salvage = false) dir =
  let tbl = Hashtbl.create 16 in
  let r =
    Recovery.load ~salvage ~dir
      ~put:(fun k v -> Hashtbl.replace tbl k v)
      ~remove:(fun k -> Hashtbl.remove tbl k)
      ()
  in
  (tbl, r)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

(* ------------------------------- crc32 ------------------------------ *)

let test_crc_vectors () =
  (* The IEEE 802.3 check value every CRC-32 implementation must hit. *)
  check_int "check vector" 0xCBF43926 (Crc32.string "123456789");
  check_int "empty" 0 (Crc32.string "");
  (* Incremental updates compose to the one-shot digest. *)
  let b = Bytes.of_string "123456789" in
  let half = Crc32.update 0 b 0 4 in
  check_int "incremental" (Crc32.string "123456789")
    (Crc32.update half b 4 5);
  (* A single flipped bit never goes unnoticed. *)
  let c0 = Crc32.string "hello world" in
  let b = Bytes.of_string "hello world" in
  Bytes.set b 4 (Char.chr (Char.code (Bytes.get b 4) lxor 1));
  check_bool "bit flip detected" true (Crc32.bytes b 0 (Bytes.length b) <> c0)

(* -------------------------------- wal ------------------------------- *)

let test_wal_roundtrip () =
  with_dir @@ fun dir ->
  let w = Wal.open_ ~dir ~next_lsn:1 () in
  check_bool "lsn 1" true (Wal.append w (Wal.Put (1, "one")) = Ok 1);
  check_bool "lsn 2" true (Wal.append w (Wal.Put (2, "two")) = Ok 2);
  check_bool "lsn 3" true (Wal.append w (Wal.Remove 1) = Ok 3);
  check_int "last_lsn" 3 (Wal.last_lsn w);
  (* Group commit: the subscription fires Durable once the covering
     fsync lands, without an explicit flush. *)
  let acked = ref None in
  Wal.subscribe w ~lsn:3 ~deadline_ns:max_int (fun a -> acked := Some a);
  await "durable ack" (fun () -> !acked <> None);
  check_bool "ack is Durable" true (!acked = Some Wal.Durable);
  check_bool "durable covers lsn 3" true (Wal.durable_lsn w >= 3);
  (* An already-durable LSN acks synchronously. *)
  let now = ref None in
  Wal.subscribe w ~lsn:1 ~deadline_ns:max_int (fun a -> now := Some a);
  check_bool "covered lsn acks immediately" true (!now = Some Wal.Durable);
  check_bool "close flushes" true (Wal.close w = Ok ());
  let tbl, r = load_tbl dir in
  (match r with
  | Ok stats ->
      check_int "replayed" 3 stats.Recovery.replayed;
      check_int "last_lsn recovered" 3 stats.Recovery.last_lsn;
      check_int "no checkpoint" 0 stats.Recovery.checkpoint_lsn
  | Error e -> Alcotest.failf "recovery: %s" (Recovery.error_to_string e));
  check_bool "bindings" true (sorted_bindings tbl = [ (2, "two") ])

let test_wal_rotate_and_gap () =
  with_dir @@ fun dir ->
  let w = Wal.open_ ~dir ~next_lsn:1 () in
  for i = 1 to 5 do
    ignore (Wal.append w (Wal.Put (i, string_of_int i)))
  done;
  (match Wal.rotate w with
  | Ok b -> check_int "boundary = last sealed lsn" 5 b
  | Error _ -> Alcotest.fail "rotate");
  check_bool "sealed segment is durable" true (Wal.durable_lsn w >= 5);
  for i = 6 to 8 do
    ignore (Wal.append w (Wal.Put (i, string_of_int i)))
  done;
  check_bool "two segments" true (Wal.segment_starts dir = [ 1; 6 ]);
  check_bool "flush pushes the new segment's records" true
    (Wal.flush w = Ok ());
  let tbl, r = load_tbl dir in
  check_bool "full replay across segments" true
    (match r with Ok s -> s.Recovery.replayed = 8 | Error _ -> false);
  check_int "all keys present" 8 (Hashtbl.length tbl);
  (* Dropping a covered segment is only sound under a checkpoint; with
     none, recovery must refuse the hole as a typed LSN gap. *)
  check_int "dropped the sealed segment" 1 (Wal.drop_segments_below w ~lsn:5);
  check_bool "current segment survives" true (Wal.segment_starts dir = [ 6 ]);
  ignore (Wal.close w);
  let _, r = load_tbl dir in
  (match r with
  | Error (Recovery.Lsn_gap { expected; found; _ }) ->
      check_int "expected lsn" 1 expected;
      check_int "found lsn" 6 found
  | Ok _ -> Alcotest.fail "gap recovered silently"
  | Error e -> Alcotest.failf "wrong refusal: %s" (Recovery.error_to_string e))

(* ----------------------------- checkpoint --------------------------- *)

let test_checkpoint_roundtrip () =
  with_dir @@ fun dir ->
  let bindings = [ (1, "a"); (2, "bb"); (3, "") ] in
  let iter emit = List.iter (fun (k, v) -> emit k v) bindings in
  (match Checkpoint.write ~dir ~lsn:42 ~iter () with
  | Ok n -> check_int "bindings written" 3 n
  | Error _ -> Alcotest.fail "checkpoint write");
  (match Checkpoint.latest ~dir with
  | Some (42, path) -> (
      let tbl = Hashtbl.create 8 in
      match Checkpoint.read ~path ~add:(Hashtbl.replace tbl) with
      | Ok (lsn, n) ->
          check_int "lsn" 42 lsn;
          check_int "count" 3 n;
          check_bool "bindings round-trip" true
            (sorted_bindings tbl = List.sort compare bindings)
      | Error e -> Alcotest.failf "checkpoint read: %s" e)
  | _ -> Alcotest.fail "latest");
  (* A newer checkpoint supersedes; gc reaps the old one. *)
  ignore (Checkpoint.write ~dir ~lsn:100 ~iter ());
  check_bool "gc removed the stale file" true (Checkpoint.gc ~dir ~keep:100 >= 1);
  (match Checkpoint.latest ~dir with
  | Some (100, _) -> ()
  | _ -> Alcotest.fail "latest after gc");
  (* Recovery composes checkpoint + WAL suffix beyond its LSN. *)
  let w = Wal.open_ ~dir ~next_lsn:101 () in
  ignore (Wal.append w (Wal.Put (9, "nine")));
  ignore (Wal.append w (Wal.Remove 1));
  ignore (Wal.close w);
  let tbl, r = load_tbl dir in
  (match r with
  | Ok s ->
      check_int "checkpoint lsn" 100 s.Recovery.checkpoint_lsn;
      check_int "checkpoint records" 3 s.Recovery.checkpoint_records;
      check_int "wal suffix replayed" 2 s.Recovery.replayed
  | Error e -> Alcotest.failf "recovery: %s" (Recovery.error_to_string e));
  check_bool "composed state" true
    (sorted_bindings tbl = [ (2, "bb"); (3, ""); (9, "nine") ])

let flip_byte path off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd

let test_checkpoint_corruption_refused () =
  with_dir @@ fun dir ->
  let iter emit = emit 1 "payload-bytes-here" in
  ignore (Checkpoint.write ~dir ~lsn:7 ~iter ());
  let path = Filename.concat dir (Checkpoint.ckpt_name 7) in
  (* Flip a payload byte well past the magic + lsn header. *)
  flip_byte path 30;
  check_bool "direct read refuses" true
    (Result.is_error (Checkpoint.read ~path ~add:(fun _ _ -> ())));
  (* A corrupt published checkpoint is refused even in salvage mode:
     it was fsynced before rename, so damage is not a crash artifact. *)
  List.iter
    (fun salvage ->
      match load_tbl ~salvage dir with
      | _, Error (Recovery.Corrupt_checkpoint _) -> ()
      | _, Ok _ -> Alcotest.fail "corrupt checkpoint recovered silently"
      | _, Error e ->
          Alcotest.failf "wrong refusal: %s" (Recovery.error_to_string e))
    [ false; true ]

(* ------------------------- recovery refusals ------------------------ *)

(* Hand-build a segment from encoded records so damage lands at exact
   offsets. *)
let write_segment dir records =
  let path = Filename.concat dir (Wal.seg_name 1) in
  let oc = open_out_bin path in
  List.iter (fun b -> output_bytes oc b) records;
  close_out oc;
  path

let test_torn_tail_strict_vs_salvage () =
  with_dir @@ fun dir ->
  let r1 = Wal.encode_record ~lsn:1 (Wal.Put (7, "seven")) in
  let r2 = Wal.encode_record ~lsn:2 (Wal.Put (8, "eight")) in
  let path = write_segment dir [ r1; r2 ] in
  let full = Bytes.length r1 + Bytes.length r2 in
  Unix.truncate path (full - 3);
  (* Strict: the torn tail is a typed refusal naming the spot. *)
  (match load_tbl dir with
  | _, Error (Recovery.Torn_tail { off; _ }) ->
      check_int "tear located at the record boundary" (Bytes.length r1) off
  | _, Ok _ -> Alcotest.fail "torn tail recovered silently"
  | _, Error e ->
      Alcotest.failf "wrong refusal: %s" (Recovery.error_to_string e));
  (* Salvage: truncate the provably-unacked tail, keep the prefix. *)
  let tbl, r = load_tbl ~salvage:true dir in
  (match r with
  | Ok s ->
      check_int "prefix replayed" 1 s.Recovery.replayed;
      check_bool "tail bytes truncated" true (s.Recovery.salvaged_bytes > 0)
  | Error e -> Alcotest.failf "salvage: %s" (Recovery.error_to_string e));
  check_bool "prefix state" true (sorted_bindings tbl = [ (7, "seven") ]);
  (* The salvage healed the file: strict now accepts it. *)
  check_bool "strict accepts after salvage" true
    (match load_tbl dir with _, Ok s -> s.Recovery.replayed = 1 | _ -> false)

let test_midfile_corruption_refused () =
  with_dir @@ fun dir ->
  let r1 = Wal.encode_record ~lsn:1 (Wal.Put (7, "seven")) in
  let r2 = Wal.encode_record ~lsn:2 (Wal.Put (8, "eight")) in
  let path = write_segment dir [ r1; r2 ] in
  (* Damage record 1's payload: valid data follows, so this is disk
     rot, not a crash — refused in both modes. *)
  flip_byte path 12;
  List.iter
    (fun salvage ->
      match load_tbl ~salvage dir with
      | _, Error (Recovery.Corrupt_record { off; _ }) ->
          check_int "damage located" 0 off
      | _, Ok _ -> Alcotest.fail "mid-file corruption recovered silently"
      | _, Error e ->
          Alcotest.failf "wrong refusal: %s" (Recovery.error_to_string e))
    [ false; true ]

let test_lsn_gap_refused () =
  with_dir @@ fun dir ->
  let r1 = Wal.encode_record ~lsn:1 (Wal.Put (1, "a")) in
  let r3 = Wal.encode_record ~lsn:3 (Wal.Put (3, "c")) in
  ignore (write_segment dir [ r1; r3 ]);
  List.iter
    (fun salvage ->
      match load_tbl ~salvage dir with
      | _, Error (Recovery.Lsn_gap { expected = 2; found = 3; _ }) -> ()
      | _, Ok _ -> Alcotest.fail "lsn gap recovered silently"
      | _, Error e ->
          Alcotest.failf "wrong refusal: %s" (Recovery.error_to_string e))
    [ false; true ]

(* --------------------------- durable serving ------------------------ *)

module DS = Kv.Server.Make (Kv.Durable.Map)

let test_durable_server_survives_restart () =
  with_dir @@ fun dir ->
  (match Kv.Durable.open_ ~dir () with
  | Error e -> Alcotest.failf "open: %s" (Recovery.error_to_string e)
  | Ok (st, _) ->
      let srv =
        DS.start
          ~durable:(Kv.Durable.hooks st)
          (Kv.Durable.map st)
      in
      let c = Kv.Client.connect ~port:(DS.port srv) () in
      check_bool "put acked durably" true
        (Kv.Client.put c 5 "five" = Kv.Protocol.Stored false);
      check_bool "remove acked durably" true
        (Kv.Client.put c 6 "six" = Kv.Protocol.Stored false
        && Kv.Client.remove c 6 = Kv.Protocol.Removed);
      check_bool "get serves" true (Kv.Client.get c 5 = Kv.Protocol.Value "five");
      Kv.Client.close c;
      check_bool "drain flushes" true (DS.drain ~timeout:5.0 srv);
      check_bool "close" true (Kv.Durable.close st = Ok ()));
  (* Next incarnation: acked effects are all there, removed key is
     gone. *)
  match Kv.Durable.open_ ~dir () with
  | Error e -> Alcotest.failf "reopen: %s" (Recovery.error_to_string e)
  | Ok (st, stats) ->
      check_bool "replayed the acked ops" true (stats.Recovery.replayed >= 3);
      check_bool "value survived" true
        (Kv.Durable.Map.lookup (Kv.Durable.map st) 5 = Some "five");
      check_bool "removed key stayed removed" true
        (Kv.Durable.Map.lookup (Kv.Durable.map st) 6 = None);
      ignore (Kv.Durable.close st)

(* ------------------------ crash-point property ---------------------- *)

(* Chaos.Disk kills the WAL at a random point (write or fsync, after a
   random count); salvage recovery must then be EXACTLY a prefix of
   the appended operations — same effects, no reordering, nothing
   invented.  This is the in-memory reference replay the crash storm's
   ledger check builds on. *)

type pop = int * string option  (* key, Some v = put, None = remove *)

let pop_gen =
  QCheck.Gen.(
    pair (int_bound 7)
      (frequency
         [
           (3, map (fun n -> Some (string_of_int n)) (int_bound 99));
           (1, return None);
         ]))

let show_pop (k, v) =
  match v with
  | Some v -> Printf.sprintf "put %d %s" k v
  | None -> Printf.sprintf "rm %d" k

let crash_case_gen =
  QCheck.Gen.(
    triple
      (list_size (int_range 1 60) pop_gen)
      (int_bound 20) bool)

let crash_case_arb =
  QCheck.make
    ~print:(fun (ops, after, at_fsync) ->
      Printf.sprintf "[%s] after=%d at_fsync=%b"
        (String.concat "; " (List.map show_pop ops))
        after at_fsync)
    crash_case_gen

let apply_pop tbl (k, v) =
  match v with
  | Some v -> Hashtbl.replace tbl k v
  | None -> Hashtbl.remove tbl k

let crash_prefix_prop (ops, after, at_fsync) =
  with_dir @@ fun dir ->
  let quiet_kill =
    {
      Disk.seed = 0x9E5;
      target = "wal-";
      torn_one_in = 0;
      short_one_in = 0;
      fsync_fail_one_in = 0;
      fsync_delay_one_in = 0;
      fsync_delay_s = 0.0;
    }
  in
  let disk = Disk.install ~salt:(after + Bool.to_int at_fsync) quiet_kill in
  Fun.protect ~finally:(fun () ->
      Disk.clear ();
      Io.resurrect ())
  @@ fun () ->
  Disk.arm_kill disk ~target:"wal-" ~at_fsync ~after ();
  let config =
    { Wal.default_config with Wal.commit_interval = 0.0005 }
  in
  let w = Wal.open_ ~config ~dir ~next_lsn:1 () in
  let appended = ref 0 in
  List.iter
    (fun (k, v) ->
      let op = match v with Some v -> Wal.Put (k, v) | None -> Wal.Remove k in
      match Wal.append w op with
      | Ok _ -> incr appended
      | Error _ -> ())
    ops;
  (* Push everything buffered at the crash site; then tear down the
     incarnation the way the crash left it. *)
  ignore (Wal.flush w);
  if Io.is_halted () then Wal.abandon w else ignore (Wal.close w);
  Io.resurrect ();
  Disk.clear ();
  let tbl, r = load_tbl ~salvage:true dir in
  match r with
  | Error e ->
      QCheck.Test.fail_reportf "salvage refused: %s"
        (Recovery.error_to_string e)
  | Ok stats ->
      let p = stats.Recovery.replayed in
      if p > !appended then
        QCheck.Test.fail_reportf "replayed %d > appended %d" p !appended;
      let reference = Hashtbl.create 8 in
      List.iteri
        (fun i op -> if i < p then apply_pop reference op)
        ops;
      if sorted_bindings tbl <> sorted_bindings reference then
        QCheck.Test.fail_reportf
          "recovered state is not the %d-op prefix: got %s, want %s" p
          (String.concat ","
             (List.map
                (fun (k, v) -> Printf.sprintf "%d=%s" k v)
                (sorted_bindings tbl)))
          (String.concat ","
             (List.map
                (fun (k, v) -> Printf.sprintf "%d=%s" k v)
                (sorted_bindings reference)));
      true

let qtests =
  [
    QCheck.Test.make ~count:40
      ~name:"salvage recovery is a prefix of appends at random crash points"
      crash_case_arb crash_prefix_prop;
  ]

let suite =
  [
    Alcotest.test_case "crc_vectors" `Quick test_crc_vectors;
    Alcotest.test_case "wal_roundtrip" `Quick test_wal_roundtrip;
    Alcotest.test_case "wal_rotate_and_gap" `Quick test_wal_rotate_and_gap;
    Alcotest.test_case "checkpoint_roundtrip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint_corruption_refused" `Quick
      test_checkpoint_corruption_refused;
    Alcotest.test_case "torn_tail_strict_vs_salvage" `Quick
      test_torn_tail_strict_vs_salvage;
    Alcotest.test_case "midfile_corruption_refused" `Quick
      test_midfile_corruption_refused;
    Alcotest.test_case "lsn_gap_refused" `Quick test_lsn_gap_refused;
    Alcotest.test_case "durable_server_survives_restart" `Quick
      test_durable_server_survives_restart;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qtests
