(* Tests for the linearizability checker itself, plus linearizability
   runs against all four concurrent maps (paper Section 4.2). *)

open Lincheck

let check_bool = Alcotest.(check bool)

(* ------------------- the sequential specification ------------------ *)

let test_sequential_spec () =
  let m0 = [] in
  let m1, r1 = sequential_apply m0 (Insert (1, 10)) in
  check_bool "insert new" true (r1 = None);
  let _, r2 = sequential_apply m1 (Lookup 1) in
  check_bool "lookup hit" true (r2 = Some 10);
  let m3, r3 = sequential_apply m1 (Put_if_absent (1, 99)) in
  check_bool "pia declines" true (r3 = Some 10 && List.assoc 1 m3 = 10);
  let m4, r4 = sequential_apply m1 (Replace (1, 11)) in
  check_bool "replace hits" true (r4 = Some 10 && List.assoc 1 m4 = 11);
  let m5, r5 = sequential_apply m1 (Remove 1) in
  check_bool "remove" true (r5 = Some 10 && m5 = []);
  let _, r6 = sequential_apply [] (Replace (7, 1)) in
  check_bool "replace miss" true (r6 = None)

(* ---------------- checker on hand-crafted histories ---------------- *)

let ev thread op result inv res = { thread; op; result; inv; res }

let test_accepts_sequential_history () =
  let h =
    [
      ev 0 (Insert (1, 10)) None 0 1;
      ev 0 (Lookup 1) (Some 10) 2 3;
      ev 0 (Remove 1) (Some 10) 4 5;
      ev 0 (Lookup 1) None 6 7;
    ]
  in
  check_bool "legal sequential" true (check h)

let test_accepts_overlapping_history () =
  (* Two overlapping inserts on one key: either order is legal as long
     as results are consistent with some order. *)
  let h =
    [
      ev 0 (Insert (1, 10)) None 0 3;
      ev 1 (Insert (1, 20)) (Some 10) 1 4;
      ev 0 (Lookup 1) (Some 20) 5 6;
    ]
  in
  check_bool "overlap linearizes" true (check h)

let test_rejects_stale_read () =
  (* A lookup that starts after a completed remove must not see the
     removed value. *)
  let h =
    [
      ev 0 (Insert (1, 10)) None 0 1;
      ev 0 (Remove 1) (Some 10) 2 3;
      ev 1 (Lookup 1) (Some 10) 4 5;
    ]
  in
  check_bool "stale read rejected" false (check h)

let test_rejects_lost_update () =
  (* Both threads' put_if_absent claiming to win is impossible. *)
  let h =
    [
      ev 0 (Put_if_absent (1, 10)) None 0 2;
      ev 1 (Put_if_absent (1, 20)) None 1 3;
    ]
  in
  check_bool "double winner rejected" false (check h)

let test_rejects_value_from_nowhere () =
  let h = [ ev 0 (Lookup 5) (Some 42) 0 1 ] in
  check_bool "phantom value rejected" false (check h)

let test_respects_program_order () =
  (* Within one thread the later op cannot linearize first. *)
  let h =
    [
      ev 0 (Insert (1, 10)) None 0 1;
      ev 0 (Insert (1, 20)) (Some 10) 2 3;
      ev 0 (Lookup 1) (Some 10) 4 5;
    ]
  in
  check_bool "final lookup must see 20" false (check h)

(* ------------------------ equal-stamp histories --------------------- *)

(* Histories produced by the deterministic scheduler (lib/mc) have
   unique stamps, but hand-built and merged histories may not.  Two
   contracts on ties:
   1. equal stamps never order two events (no spurious real-time
      edge): an op invoked exactly at another's response stamp counts
      as concurrent;
   2. within one thread, events with equal stamps keep the order they
      appear in the history — the per-thread grouping used to reverse
      them (reversed accumulation + a sort keyed only on [inv]),
      inventing a program order the thread never executed. *)

let test_equal_stamps_keep_program_order () =
  (* Insert then Lookup in thread 0, all stamps equal.  In history
     order this is trivially linearizable; with the tie flipped the
     lookup would precede its own insert and be rejected. *)
  let h =
    [
      ev 0 (Insert (1, 10)) None 0 0;
      ev 0 (Lookup 1) (Some 10) 0 0;
    ]
  in
  check_bool "program order preserved on ties" true (check h)

let test_equal_stamps_respect_history_order () =
  (* The mirrored history really is illegal: the thread looked up the
     value before inserting it.  Guards against "fixing" ties by
     accepting either order. *)
  let h =
    [
      ev 0 (Lookup 1) (Some 10) 0 0;
      ev 0 (Insert (1, 10)) None 0 0;
    ]
  in
  check_bool "flipped program order still rejected" false (check h)

let test_equal_stamps_are_concurrent () =
  (* The lookup's invocation stamp equals the insert's response stamp:
     no real-time edge, so the lookup may linearize first and miss the
     insert. *)
  let h =
    [
      ev 0 (Insert (1, 10)) None 0 1;
      ev 1 (Lookup 1) None 1 2;
    ]
  in
  check_bool "stamp tie means concurrent" true (check h)

(* -------------- conditional ops (Replace_if / Remove_if) ------------ *)

(* Result encoding for the conditional ops: Some 1 = succeeded,
   Some 0 = failed (see lincheck.mli). *)

let test_rejects_replace_if_wrong_witness () =
  (* The CAS claims success although the expected value never was the
     binding at any legal linearization point. *)
  let h =
    [
      ev 0 (Insert (1, 10)) None 0 1;
      ev 0 (Replace_if (1, 20, 30)) (Some 1) 2 3;
    ]
  in
  check_bool "replace_if with wrong witness rejected" false (check h)

let test_rejects_replace_if_spurious_failure () =
  (* No concurrent op can explain the failure: the binding is 10 for
     the whole duration, so replace(1, 10, 20) must succeed. *)
  let h =
    [
      ev 0 (Insert (1, 10)) None 0 1;
      ev 0 (Replace_if (1, 10, 20)) (Some 0) 2 3;
    ]
  in
  check_bool "spurious replace_if failure rejected" false (check h)

let test_rejects_double_remove_if () =
  (* Two overlapping conditional removes of the same binding cannot
     both win. *)
  let h =
    [
      ev 0 (Insert (1, 10)) None 0 1;
      ev 0 (Remove_if (1, 10)) (Some 1) 2 5;
      ev 1 (Remove_if (1, 10)) (Some 1) 3 6;
    ]
  in
  check_bool "double remove_if winner rejected" false (check h)

let test_rejects_replace_if_remove_if_conflict () =
  (* Whichever linearizes first invalidates the other's witness, so
     both succeeding is impossible in every order. *)
  let h =
    [
      ev 0 (Insert (1, 10)) None 0 1;
      ev 0 (Remove_if (1, 10)) (Some 1) 2 5;
      ev 1 (Replace_if (1, 10, 20)) (Some 1) 3 6;
    ]
  in
  check_bool "conflicting conditional winners rejected" false (check h)

let test_accepts_replace_if_then_remove_if () =
  (* Sanity guard against over-rejection: here both CAN win, in the
     order replace (10 -> 20) then remove-of-20. *)
  let h =
    [
      ev 0 (Insert (1, 10)) None 0 1;
      ev 0 (Replace_if (1, 10, 20)) (Some 1) 2 5;
      ev 1 (Remove_if (1, 20)) (Some 1) 3 6;
      ev 0 (Lookup 1) None 7 8;
    ]
  in
  check_bool "chained conditional winners accepted" true (check h)

(* ------------------- real structures, random runs ------------------ *)

module CT = Cachetrie.Make (Ct_util.Hashing.Int_key)
module CTB = Cachetrie_boxed.Make (Ct_util.Hashing.Int_key)
module CTR = Ctrie.Make (Ct_util.Hashing.Int_key)
module SO = Chm.Split_ordered.Make (Ct_util.Hashing.Int_key)
module ST = Chm.Striped.Make (Ct_util.Hashing.Int_key)
module SL = Skiplist.Make (Ct_util.Hashing.Int_key)
module CW = Hamts.Cow_map.Make (Ct_util.Hashing.Int_key)
module CSN = Ctrie_snap.Make (Ct_util.Hashing.Int_key)
module FK = Oa.Folklore.Make (Ct_util.Hashing.Int_key)

(* Folklore migration under the checker.  The growth script claims 18
   distinct keys across three domains — past the cap-16 occupancy
   threshold — so freeze/copy/publish run concurrently with the
   recorded inserts, removes and lookups.  The churn script removes
   most of what it inserted, crossing the tombstone threshold instead
   (a same-capacity compaction migration).  Each script records fresh
   interleavings per repetition. *)
let test_folklore_migration_histories () =
  let growth =
    List.init 3 (fun d ->
        List.init 6 (fun i -> Insert ((d * 6) + i, (d * 10) + i))
        @ [ Remove (d * 6); Lookup ((d * 6) + 1) ])
  in
  let churn =
    List.init 3 (fun d ->
        List.init 4 (fun i -> Insert ((d * 4) + i, i))
        @ List.init 4 (fun i -> Remove ((d * 4) + i)))
  in
  List.iter
    (fun (what, scripts) ->
      for _rep = 1 to 5 do
        if not (check (record (module FK) scripts)) then
          Alcotest.failf "folklore %s-migration history not linearizable" what
      done)
    [ ("growth", growth); ("tombstone", churn) ]

let random_battery name (module M : IMAP) =
  ( Printf.sprintf "linearizable: %s" name,
    `Slow,
    fun () ->
      for seed = 1 to 30 do
        if
          not
            (run_random (module M) ~seed ~threads:3 ~ops_per_thread:5 ~key_range:3)
        then Alcotest.failf "%s: non-linearizable history at seed %d" name seed
      done )

let suite =
  [
    ("sequential_spec", `Quick, test_sequential_spec);
    ("accepts_sequential_history", `Quick, test_accepts_sequential_history);
    ("accepts_overlapping_history", `Quick, test_accepts_overlapping_history);
    ("rejects_stale_read", `Quick, test_rejects_stale_read);
    ("rejects_lost_update", `Quick, test_rejects_lost_update);
    ("rejects_value_from_nowhere", `Quick, test_rejects_value_from_nowhere);
    ("respects_program_order", `Quick, test_respects_program_order);
    ( "equal_stamps_keep_program_order",
      `Quick,
      test_equal_stamps_keep_program_order );
    ( "equal_stamps_respect_history_order",
      `Quick,
      test_equal_stamps_respect_history_order );
    ("equal_stamps_are_concurrent", `Quick, test_equal_stamps_are_concurrent);
    ( "rejects_replace_if_wrong_witness",
      `Quick,
      test_rejects_replace_if_wrong_witness );
    ( "rejects_replace_if_spurious_failure",
      `Quick,
      test_rejects_replace_if_spurious_failure );
    ("rejects_double_remove_if", `Quick, test_rejects_double_remove_if);
    ( "rejects_replace_if_remove_if_conflict",
      `Quick,
      test_rejects_replace_if_remove_if_conflict );
    ( "accepts_replace_if_then_remove_if",
      `Quick,
      test_accepts_replace_if_then_remove_if );
    random_battery "cachetrie" (module CT);
    random_battery "cachetrie-boxed" (module CTB);
    random_battery "ctrie" (module CTR);
    random_battery "chm" (module SO);
    random_battery "chm-striped" (module ST);
    random_battery "skiplist" (module SL);
    random_battery "cow-hamt" (module CW);
    random_battery "ctrie-snap" (module CSN);
    random_battery "oa-folklore" (module FK);
    ("folklore_migration_histories", `Slow, test_folklore_migration_histories);
  ]
