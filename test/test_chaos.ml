(* Chaos suite: fault injection at the yield points (see DESIGN.md
   "Fault injection & robustness").

   Three properties of the paper's correctness story are forced, not
   hoped for:

   - crash recovery: a domain abandons an operation mid-flight (ENode
     published but not committed, half-frozen narrow node, announced
     SNode txn, live XNode, uncommitted GCAS box, pending RDCSS root
     descriptor) and a peer's next ordinary operation help-completes
     the residue — [validate] returns [Ok ()] and no binding is lost;
   - lock-freedom: with one domain suspended at each instrumented
     yield point in turn, 3 peers still complete 10k operations each;
   - linearizability under jitter: randomized delays at every yield
     point widen race windows and [Lincheck.run_random] still accepts
     every history. *)

module Yp = Ct_util.Yieldpoint
module Rng = Ct_util.Rng
module Hashing = Ct_util.Hashing
module CT = Cachetrie.Make (Hashing.Int_key)
module CTR = Ctrie.Make (Hashing.Int_key)
module CSN = Ctrie_snap.Make (Hashing.Int_key)

let check_bool = Alcotest.(check bool)

let site name =
  match List.find_opt (fun s -> Yp.name s = name) (Yp.all ()) with
  | Some s -> s
  | None -> Alcotest.failf "yield point %s is not registered" name

let check_valid what = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: validate failed: %s" what e

let check_residue what r =
  check_bool (what ^ ": crash residue visible to validate") true
    (Result.is_error r)

(* Run [f] as the injector's victim in a fresh domain; true iff the
   injected crash fired. *)
let crash_in_domain inj f =
  Domain.join
    (Domain.spawn (fun () ->
         Chaos.as_victim inj (fun () ->
             try
               f ();
               false
             with Chaos.Injected_crash _ -> true)))

let in_domain f = Domain.join (Domain.spawn f)

let await ?(what = "condition") f =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 1e-4;
      go ()
    end
  in
  go ()

(* ------------------------ deterministic keys ----------------------- *)

let ct_hash k = Hashing.Int_key.hash k land Hashing.mask

(* Keys [a; b; c] such that inserting [a] then [b] builds a narrow
   ANode at level 4 (same root slot, different narrow positions), and
   inserting [c] afterwards lands on [a]'s occupied narrow slot with a
   different hash — forcing the expansion path (ENode at the root). *)
let expansion_trio () =
  let low4 h = h land 15 and npos h = (h lsr 4) land 3 in
  let a = 0 in
  let ha = ct_hash a in
  let rec find p k = if p (ct_hash k) && k <> a then k else find p (k + 1) in
  let b = find (fun h -> low4 h = low4 ha && npos h <> npos ha) 1 in
  let c = find (fun h -> low4 h = low4 ha && npos h = npos ha && h <> ha) 1 in
  (a, b, c)

(* Keys [a; b] colliding on the Ctrie's first 5 hash bits but not the
   next 5: inserting both builds an I-node child; removing [b] entombs
   [a] into a TNode of that child. *)
let ctrie_pair () =
  let low5 h = h land 31 and n5 h = (h lsr 5) land 31 in
  let a = 0 in
  let ha = ct_hash a in
  let rec find k =
    let h = ct_hash k in
    if low5 h = low5 ha && n5 h <> n5 ha && k <> a then k else find (k + 1)
  in
  (a, find 1)

(* ------------------------- crash recovery -------------------------- *)

(* Crash right after the ENode is published: e_wide is still None, the
   narrow node is not even frozen. *)
let test_crash_expansion_publish () =
  Fun.protect ~finally:Chaos.clear @@ fun () ->
  let a, b, c = expansion_trio () in
  let t = CT.create () in
  CT.insert t a 100;
  CT.insert t b 101;
  let inj = Chaos.crash ~phase:Yp.After (site "cachetrie.expand.publish") in
  let crashed = crash_in_domain inj (fun () -> CT.insert t c 102) in
  check_bool "victim crashed mid-expansion" true crashed;
  check_residue "ENode" (CT.validate t);
  (* Lookups stay wait-free through the live descriptor. *)
  check_bool "lookup through live ENode" true (CT.lookup t a = Some 100);
  Chaos.clear ();
  (* A peer's own insert of the same key help-completes the expansion. *)
  in_domain (fun () -> CT.insert t c 102);
  check_valid "after help" (CT.validate t);
  check_bool "a survives" true (CT.lookup t a = Some 100);
  check_bool "b survives" true (CT.lookup t b = Some 101);
  check_bool "c arrives" true (CT.lookup t c = Some 102);
  check_bool "expansion completed by helper" true ((CT.cache_stats t).expansions >= 1)

(* Crash mid-freeze: the ENode is live and the narrow node is half
   frozen (one SNode txn already Frozen_snode). *)
let test_crash_mid_freeze () =
  Fun.protect ~finally:Chaos.clear @@ fun () ->
  let a, b, c = expansion_trio () in
  let t = CT.create () in
  CT.insert t a 100;
  CT.insert t b 101;
  let inj = Chaos.crash ~phase:Yp.After (site "cachetrie.freeze.txn") in
  let crashed = crash_in_domain inj (fun () -> CT.insert t c 102) in
  check_bool "victim crashed mid-freeze" true crashed;
  check_residue "half-frozen narrow node" (CT.validate t);
  Chaos.clear ();
  in_domain (fun () -> CT.insert t c 102);
  check_valid "after help" (CT.validate t);
  check_bool "no binding lost" true
    (CT.lookup t a = Some 100 && CT.lookup t b = Some 101
   && CT.lookup t c = Some 102)

(* Crash after the wide node is agreed on (e_wide committed) but
   before it is swung into the parent slot. *)
let test_crash_expand_wide () =
  Fun.protect ~finally:Chaos.clear @@ fun () ->
  let a, b, c = expansion_trio () in
  let t = CT.create () in
  CT.insert t a 100;
  CT.insert t b 101;
  let inj = Chaos.crash ~phase:Yp.After (site "cachetrie.expand.wide") in
  let crashed = crash_in_domain inj (fun () -> CT.insert t c 102) in
  check_bool "victim crashed before commit" true crashed;
  check_residue "uncommitted wide node" (CT.validate t);
  Chaos.clear ();
  in_domain (fun () -> CT.insert t c 102);
  check_valid "after help" (CT.validate t);
  check_bool "no binding lost" true
    (CT.lookup t a = Some 100 && CT.lookup t b = Some 101
   && CT.lookup t c = Some 102)

(* Crash between announcing a Replace on an SNode's txn field and
   committing it into the parent slot. *)
let test_crash_txn_announce_replace () =
  Fun.protect ~finally:Chaos.clear @@ fun () ->
  let t = CT.create () in
  CT.insert t 7 1;
  let inj = Chaos.crash ~phase:Yp.After (site "cachetrie.txn.announce") in
  let crashed = crash_in_domain inj (fun () -> CT.insert t 7 2) in
  check_bool "victim crashed mid-replace" true crashed;
  check_residue "announced Replace" (CT.validate t);
  Chaos.clear ();
  in_domain (fun () -> CT.insert t 7 3);
  check_valid "after help" (CT.validate t);
  check_bool "peer's write wins" true (CT.lookup t 7 = Some 3)

(* Same for an announced Removed: the removal is decided; a peer's
   insert first help-commits it, then rebinds the key. *)
let test_crash_txn_announce_removed () =
  Fun.protect ~finally:Chaos.clear @@ fun () ->
  let t = CT.create () in
  CT.insert t 7 1;
  CT.insert t 8 2;
  let inj = Chaos.crash ~phase:Yp.After (site "cachetrie.txn.announce") in
  let crashed = crash_in_domain inj (fun () -> ignore (CT.remove t 7)) in
  check_bool "victim crashed mid-remove" true crashed;
  check_residue "announced Removed" (CT.validate t);
  Chaos.clear ();
  in_domain (fun () -> ignore (CT.put_if_absent t 7 9));
  check_valid "after help" (CT.validate t);
  check_bool "removal took effect, rebind visible" true (CT.lookup t 7 = Some 9);
  check_bool "unrelated binding survives" true (CT.lookup t 8 = Some 2)

(* Crash right after publishing a compression descriptor (XNode). *)
let test_crash_compression_publish () =
  Fun.protect ~finally:Chaos.clear @@ fun () ->
  let a, b, _ = expansion_trio () in
  let t = CT.create () in
  CT.insert t a 100;
  CT.insert t b 101;
  let inj = Chaos.crash ~phase:Yp.After (site "cachetrie.compress.publish") in
  let crashed = crash_in_domain inj (fun () -> ignore (CT.remove t b)) in
  check_bool "victim crashed mid-compression" true crashed;
  check_residue "XNode" (CT.validate t);
  check_bool "removal committed before crash" true (CT.lookup t b = None);
  Chaos.clear ();
  in_domain (fun () -> CT.insert t a 111);
  check_valid "after help" (CT.validate t);
  check_bool "survivor present" true (CT.lookup t a = Some 111);
  check_bool "compression completed by helper" true
    ((CT.cache_stats t).compressions >= 1)

(* Ctrie: crash after entombing a TNode, before clean_parent. *)
let test_crash_ctrie_tnode () =
  Fun.protect ~finally:Chaos.clear @@ fun () ->
  let a, b = ctrie_pair () in
  let t = CTR.create () in
  CTR.insert t a 100;
  CTR.insert t b 101;
  let inj = Chaos.crash ~phase:Yp.After (site "ctrie.remove.cas") in
  let crashed = crash_in_domain inj (fun () -> ignore (CTR.remove t b)) in
  check_bool "victim crashed after entomb" true crashed;
  check_residue "TNode" (CTR.validate t);
  Chaos.clear ();
  (* Any traversal through the entombed I-node cleans it. *)
  check_bool "lookup through TNode" true
    (in_domain (fun () -> CTR.lookup t a) = Some 100);
  check_valid "after clean" (CTR.validate t);
  check_bool "b stays removed" true (CTR.lookup t b = None)

(* Snapshotting Ctrie: crash between the GCAS publish and its commit;
   a peer's plain lookup completes the commit. *)
let test_crash_gcas_publish () =
  Fun.protect ~finally:Chaos.clear @@ fun () ->
  let t = CSN.create () in
  CSN.insert t 5 1;
  let inj = Chaos.crash ~phase:Yp.After (site "ctrie_snap.gcas.publish") in
  let crashed = crash_in_domain inj (fun () -> CSN.insert t 5 2) in
  check_bool "victim crashed mid-GCAS" true crashed;
  check_residue "uncommitted GCAS box" (CSN.validate t);
  Chaos.clear ();
  check_bool "peer lookup commits the pending update" true
    (in_domain (fun () -> CSN.lookup t 5) = Some 2);
  check_valid "after commit" (CSN.validate t)

(* Snapshotting Ctrie: crash with the RDCSS descriptor in the root. *)
let test_crash_rdcss_publish () =
  Fun.protect ~finally:Chaos.clear @@ fun () ->
  let t = CSN.create () in
  CSN.insert t 5 1;
  CSN.insert t 6 2;
  let inj = Chaos.crash ~phase:Yp.After (site "ctrie_snap.rdcss.publish") in
  let crashed = crash_in_domain inj (fun () -> ignore (CSN.snapshot t)) in
  check_bool "victim crashed mid-snapshot" true crashed;
  check_residue "pending RDCSS descriptor" (CSN.validate t);
  Chaos.clear ();
  check_bool "peer lookup completes the root swap" true
    (in_domain (fun () -> CSN.lookup t 5) = Some 1);
  check_valid "after completion" (CSN.validate t);
  check_bool "no binding lost" true (CSN.lookup t 6 = Some 2)

(* Direct helping demonstration: the victim is parked (not crashed)
   right after publishing an ENode, and while it is suspended a peer
   inserting the same key completes the whole expansion. *)
let test_stall_helping_expansion () =
  Fun.protect ~finally:Chaos.clear @@ fun () ->
  let a, b, c = expansion_trio () in
  let t = CT.create () in
  CT.insert t a 100;
  CT.insert t b 101;
  let inj = Chaos.stall ~phase:Yp.After (site "cachetrie.expand.publish") in
  let victim =
    Domain.spawn (fun () -> Chaos.as_victim inj (fun () -> CT.insert t c 102))
  in
  await ~what:"victim parked at the ENode" (fun () -> Chaos.stalled inj);
  (* Victim is suspended holding a live ENode; the peer completes. *)
  in_domain (fun () -> CT.insert t c 102);
  check_valid "helper completed the expansion" (CT.validate t);
  check_bool "binding visible while victim is parked" true
    (CT.lookup t c = Some 102);
  Chaos.release inj;
  Domain.join victim;
  Chaos.clear ();
  check_valid "after victim resumes" (CT.validate t);
  check_bool "no binding lost" true
    (CT.lookup t a = Some 100 && CT.lookup t b = Some 101
   && CT.lookup t c = Some 102)

(* ----------------------- lock-freedom battery ---------------------- *)

(* A chaos subject: one shared instance of a structure plus a mixed
   workload step and a quiescent validator. *)
type subject = {
  s_step : int -> Rng.t -> unit;
  s_validate : unit -> (unit, string) result;
  s_last : string array;
}

let key_range = 1024

let cachetrie_subject ~cache () =
  let config = { Cachetrie.default_config with enable_cache = cache } in
  let t = CT.create_with ~config () in
  for k = 0 to key_range - 1 do
    CT.insert t k k
  done;
  let last = Array.make 4 "" in
  let step slot rng =
    let k = Rng.next_int rng key_range in
    match Rng.next_int rng 10 with
    | 0 | 1 | 2 | 3 ->
        last.(slot) <- Printf.sprintf "insert %d" k;
        CT.insert t k (k + 1)
    | 4 | 5 | 6 ->
        last.(slot) <- Printf.sprintf "remove %d" k;
        ignore (CT.remove t k)
    | _ ->
        last.(slot) <- Printf.sprintf "lookup %d" k;
        ignore (CT.lookup t k)
  in
  { s_step = step; s_validate = (fun () -> CT.validate t); s_last = last }

let ctrie_subject () =
  let t = CTR.create () in
  for k = 0 to key_range - 1 do
    CTR.insert t k k
  done;
  let last = Array.make 4 "" in
  let step slot rng =
    let k = Rng.next_int rng key_range in
    match Rng.next_int rng 10 with
    | 0 | 1 | 2 | 3 ->
        last.(slot) <- Printf.sprintf "insert %d" k;
        CTR.insert t k (k + 1)
    | 4 | 5 | 6 ->
        last.(slot) <- Printf.sprintf "remove %d" k;
        ignore (CTR.remove t k)
    | _ ->
        last.(slot) <- Printf.sprintf "lookup %d" k;
        ignore (CTR.lookup t k)
  in
  { s_step = step; s_validate = (fun () -> CTR.validate t); s_last = last }

let ctrie_snap_subject () =
  let t = CSN.create () in
  for k = 0 to key_range - 1 do
    CSN.insert t k k
  done;
  let last = Array.make 4 "" in
  let step slot rng =
    let k = Rng.next_int rng key_range in
    match Rng.next_int rng 10 with
    | 0 | 1 | 2 | 3 ->
        last.(slot) <- Printf.sprintf "insert %d" k;
        CSN.insert t k (k + 1)
    | 4 | 5 | 6 ->
        last.(slot) <- Printf.sprintf "remove %d" k;
        ignore (CSN.remove t k)
    | 7 when Rng.next_int rng 100 = 0 ->
        last.(slot) <- "snapshot";
        ignore (CSN.snapshot t)
    | _ ->
        last.(slot) <- Printf.sprintf "lookup %d" k;
        ignore (CSN.lookup t k)
  in
  { s_step = step; s_validate = (fun () -> CSN.validate t); s_last = last }

module FK = Oa.Folklore.Make (Hashing.Int_key)

(* The folklore table's lock-freedom rests on help-to-completion
   migration: a victim parked mid-freeze, mid-copy or just before the
   root publish holds nothing exclusive, and any writer observing the
   frozen residue finishes the whole migration itself.  The workload
   skews toward removes so the tombstone threshold keeps triggering
   same-capacity compaction migrations while the victim is parked. *)
let folklore_subject () =
  let t = FK.create () in
  for k = 0 to key_range - 1 do
    FK.insert t k k
  done;
  let last = Array.make 4 "" in
  let step slot rng =
    let k = Rng.next_int rng key_range in
    match Rng.next_int rng 10 with
    | 0 | 1 | 2 ->
        last.(slot) <- Printf.sprintf "insert %d" k;
        FK.insert t k (k + 1)
    | 3 | 4 | 5 | 6 ->
        last.(slot) <- Printf.sprintf "remove %d" k;
        ignore (FK.remove t k)
    | _ ->
        last.(slot) <- Printf.sprintf "lookup %d" k;
        ignore (FK.lookup t k)
  in
  { s_step = step; s_validate = (fun () -> FK.validate t); s_last = last }

let peer_ops = 10_000

(* Park the victim at (site, phase); 3 peers must still finish 10k
   mixed operations each.  Joining the peers IS the lock-freedom
   assertion — if helping were broken this hangs (the CI job runs the
   chaos suite under a hard timeout for exactly that reason). *)
let stall_scenario mk_subject (sname : string) phase s =
  let subject = mk_subject () in
  let inj = Chaos.stall ~phase s in
  let stop = Atomic.make false in
  let peers_done = Atomic.make 0 in
  let victim_done = Atomic.make false in
  let quiesced = Atomic.make false in
  (* Domains idle here (sleeping = blocking section, so they keep
     answering STW requests) instead of terminating: domain teardown
     concurrent with allocating mutators occasionally wedges this
     OCaml's STW machinery, which would read as a bogus lock-freedom
     failure. *)
  let park () =
    while not (Atomic.get quiesced) do
      Unix.sleepf 1e-4
    done
  in
  let victim =
    Domain.spawn (fun () ->
        Chaos.as_victim inj (fun () ->
            let rng = Rng.create 0xFEED in
            while not (Atomic.get stop) do
              subject.s_step 3 rng
            done);
        Atomic.set victim_done true;
        park ())
  in
  let counters = Array.init 3 (fun _ -> Atomic.make 0) in
  let peers =
    List.init 3 (fun i ->
        Domain.spawn (fun () ->
            let rng = Rng.create (0xBEEF + (i * 7919)) in
            for _ = 1 to peer_ops do
              subject.s_step i rng;
              Atomic.incr counters.(i)
            done;
            Atomic.incr peers_done;
            park ()))
  in
  (* The lock-freedom assertion: every peer finishes its quota even
     though the victim may be parked the whole time. *)
  let t0 = Unix.gettimeofday () in
  while Atomic.get peers_done < 3 do
    Unix.sleepf 1e-4;
    if Unix.gettimeofday () -. t0 > 60.0 then begin
      (* Lock-freedom violated: at least one peer is stuck inside a
         single operation while the victim is parked.  Release
         everything we can (the livelocked peer may never exit, so we
         deliberately do NOT join) and fail with a snapshot of where
         each domain last was — this caught a clean_parent livelock in
         ctrie_snap once, so keep the diagnostics rich. *)
      Atomic.set stop true;
      Chaos.release inj;
      Atomic.set quiesced true;
      Alcotest.failf
        "%s: peers stuck while victim parked at %s (%s): peers_done=%d \
         counters=%d,%d,%d stalled=%b last=[%s | %s | %s] victim=[%s]"
        sname (Yp.name s)
        (match phase with Yp.Before -> "before" | Yp.After -> "after")
        (Atomic.get peers_done) (Atomic.get counters.(0))
        (Atomic.get counters.(1)) (Atomic.get counters.(2))
        (Chaos.stalled inj) subject.s_last.(0) subject.s_last.(1)
        subject.s_last.(2) subject.s_last.(3)
    end
  done;
  Atomic.set stop true;
  Chaos.release inj;
  while not (Atomic.get victim_done) do
    Unix.sleepf 1e-4
  done;
  Atomic.set quiesced true;
  List.iter Domain.join peers;
  Domain.join victim;
  Chaos.clear ();
  match subject.s_validate () with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "%s: invalid after stall at %s (%s): %s" sname (Yp.name s)
        (match phase with Yp.Before -> "before" | Yp.After -> "after")
        e

(* After-phase stalls only matter at publication points (the victim
   then parks holding a live descriptor/announcement). *)
let after_sites =
  [
    "cachetrie.expand.publish";
    "cachetrie.compress.publish";
    "cachetrie.txn.announce";
    "cachetrie.freeze.txn";
    "ctrie_snap.gcas.publish";
    "ctrie_snap.rdcss.publish";
  ]

let lock_freedom_battery sname prefix mk_subject () =
  let sites = Yp.with_prefix prefix in
  check_bool (prefix ^ " has instrumented points") true (sites <> []);
  List.iter
    (fun s ->
      stall_scenario mk_subject sname Yp.Before s;
      if List.mem (Yp.name s) after_sites then
        stall_scenario mk_subject sname Yp.After s)
    sites

(* --------------------- linearizability under jitter ----------------- *)

module CT_nocache = struct
  include CT

  let name = "cachetrie-nc"

  let create () =
    create_with
      ~config:{ Cachetrie.default_config with enable_cache = false }
      ()
end

let jitter_battery name (module M : Lincheck.IMAP) () =
  Fun.protect ~finally:Chaos.clear @@ fun () ->
  for seed = 1 to 10 do
    ignore (Chaos.jitter ~seed ~one_in:2 ~max_spin:2048 () : Chaos.t);
    if
      not
        (Lincheck.run_random
           (module M)
           ~seed ~threads:3 ~ops_per_thread:5 ~key_range:3)
    then Alcotest.failf "%s: non-linearizable history under jitter, seed %d" name seed
  done

let suite =
  [
    ("crash_expansion_publish", `Quick, test_crash_expansion_publish);
    ("crash_mid_freeze", `Quick, test_crash_mid_freeze);
    ("crash_expand_wide", `Quick, test_crash_expand_wide);
    ("crash_txn_announce_replace", `Quick, test_crash_txn_announce_replace);
    ("crash_txn_announce_removed", `Quick, test_crash_txn_announce_removed);
    ("crash_compression_publish", `Quick, test_crash_compression_publish);
    ("crash_ctrie_tnode", `Quick, test_crash_ctrie_tnode);
    ("crash_gcas_publish", `Quick, test_crash_gcas_publish);
    ("crash_rdcss_publish", `Quick, test_crash_rdcss_publish);
    ("stall_helping_expansion", `Quick, test_stall_helping_expansion);
    ( "lock_freedom_cachetrie",
      `Slow,
      lock_freedom_battery "cachetrie" "cachetrie."
        (cachetrie_subject ~cache:true) );
    ( "lock_freedom_cachetrie_nocache",
      `Slow,
      lock_freedom_battery "cachetrie-nc" "cachetrie."
        (cachetrie_subject ~cache:false) );
    ("lock_freedom_ctrie", `Slow, lock_freedom_battery "ctrie" "ctrie." ctrie_subject);
    ( "lock_freedom_ctrie_snap",
      `Slow,
      lock_freedom_battery "ctrie-snap" "ctrie_snap." ctrie_snap_subject );
    ("jitter_lincheck_cachetrie", `Slow, jitter_battery "cachetrie" (module CT));
    ( "jitter_lincheck_cachetrie_nocache",
      `Slow,
      jitter_battery "cachetrie-nc" (module CT_nocache) );
    ( "lock_freedom_oa_folklore",
      `Slow,
      lock_freedom_battery "oa-folklore" "oa." folklore_subject );
    ("jitter_lincheck_ctrie", `Slow, jitter_battery "ctrie" (module CTR));
    ("jitter_lincheck_ctrie_snap", `Slow, jitter_battery "ctrie-snap" (module CSN));
    ("jitter_lincheck_oa_folklore", `Slow, jitter_battery "oa-folklore" (module FK));
  ]
